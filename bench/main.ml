(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation on this repository's substrate.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig3    -- one experiment
       (table1 fig3 fig4 bert speedup fuzzmodes sddmm table2 cloudsc
        ablation equiv analysis deps engine micro interp)

   Absolute numbers differ from the paper (interpreter vs generated C++);
   the *shapes* — who wins, by what factor, where input reductions land —
   are the reproduction target. EXPERIMENTS.md records both. *)

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let default_inputs g ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.filter_map
    (fun (c, (d : Sdfg.Graph.datadesc)) ->
      if d.transient then None
      else
        let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
        Some (c, Array.init n (fun i -> (0.05 *. float_of_int ((i * 13 mod 31) - 15)) +. 0.5)))
    (Sdfg.Graph.containers g)

(* ------------------------------------------------------------------ *)
(* Table 1: requirements for localized optimization testing            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: requirements for localized optimization testing";
  print_string (Fuzzyflow.Requirements.to_table ());
  Printf.printf "parametric dataflow uniquely satisfies all requirements: %b\n"
    (Fuzzyflow.Requirements.parametric_dataflow_is_complete ())

(* ------------------------------------------------------------------ *)
(* Figs. 2-3: the off-by-one tiling bug on the matrix chain            *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Figs. 2-3: off-by-one tiling of the matrix chain";
  let g, sid, mm2 = Workloads.Chain.build_with_site () in
  let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"tile mm2" in
  Printf.printf "%-6s %-12s %-28s %-28s\n" "N" "variant" "cutout verdict" "whole-program verdict";
  List.iter
    (fun n ->
      List.iter
        (fun (vname, variant) ->
          let x = Transforms.Map_tiling.make ~tile_size:3 variant in
          let config =
            {
              Fuzzyflow.Difftest.default_config with
              trials = 10;
              max_size = n;
              concretization = [ ("N", n) ];
            }
          in
          let r, t_cut = time (fun () -> Fuzzyflow.Difftest.test_instance ~config g x site) in
          let w, t_whole = time (fun () -> Fuzzyflow.Difftest.test_whole_program ~config g x site) in
          let verdict = function
            | Fuzzyflow.Difftest.Pass -> "PASS"
            | Fuzzyflow.Difftest.Fail f -> "FAIL (" ^ Fuzzyflow.Difftest.class_to_string f.klass ^ ")"
          in
          Printf.printf "%-6d %-12s %-28s %-28s\n" n vname
            (Printf.sprintf "%s %.0fms" (verdict r.verdict) (1000. *. t_cut))
            (Printf.sprintf "%s %.0fms" (verdict (fst w)) (1000. *. t_whole)))
        [ ("correct", Transforms.Map_tiling.Correct); ("off-by-one", Transforms.Map_tiling.Off_by_one) ])
    [ 8; 16 ];
  let cut =
    Fuzzyflow.Cutout.extract_dataflow
      ~options:{ Fuzzyflow.Cutout.symbols = [ ("N", 8) ] }
      g ~state:sid ~nodes:[ mm2 ]
  in
  Format.printf "Fig. 3 cutout: %a@." Fuzzyflow.Cutout.pp cut;
  Printf.printf "paper: cutout = second multiplication, inputs {N, C, U}, system state {V}\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: minimum input-flow cut on the f/g/h chain                   *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Fig. 4: minimum input-flow cut";
  let g, sid, seed = Workloads.Fig4.build_with_seed () in
  List.iter
    (fun n ->
      let symbols = [ ("N", n) ] in
      let cut =
        Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
          ~nodes:seed
      in
      let cut', stats = Fuzzyflow.Min_cut.minimize g cut ~symbols in
      Printf.printf
        "N=%-5d inputs {%s} = %d elements  ->  {%s} = %d elements (cut value %s)\n" n
        (String.concat "," cut.input_config)
        stats.original_elements
        (String.concat "," cut'.input_config)
        stats.minimized_elements
        (Flownet.Cap.to_string stats.cut_value))
    [ 16; 64; 256 ];
  Printf.printf "paper: {y, z} -> {x}, halving the input space\n"

(* ------------------------------------------------------------------ *)
(* Sec 6.1 / Fig. 5: BERT input-space reduction                        *)
(* ------------------------------------------------------------------ *)

let bert () =
  header "Sec. 6.1 / Fig. 5: BERT MHA input-space reduction";
  let g, sid, scaling = Workloads.Bert.build_with_site () in
  List.iter
    (fun (label, symbols) ->
      let cut =
        Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
          ~nodes:[ scaling ]
      in
      let cut', stats = Fuzzyflow.Min_cut.minimize g cut ~symbols in
      Printf.printf "%-28s {%s} = %7d elements -> {%s} = %7d (%.0f%% reduction)\n" label
        (String.concat "," cut.input_config)
        stats.original_elements
        (String.concat "," cut'.input_config)
        stats.minimized_elements
        (100. *. (1. -. (float_of_int stats.minimized_elements /. float_of_int stats.original_elements))))
    [
      ("paper shape (P = SM/8)", Workloads.Bert.default_symbols);
      ("larger (B=4 H=4 SM=64 P=8)", [ ("B", 4); ("H", 4); ("SM", 64); ("P", 8) ]);
    ];
  Printf.printf "paper: {tmp, scale} -> {A, B, scale}, 75%% input reduction\n"

(* ------------------------------------------------------------------ *)
(* Sec 6.1: testing-speedup and sampling-speedup shapes                *)
(* ------------------------------------------------------------------ *)

let speedup () =
  header "Sec. 6.1: cutout testing speedup vs whole-application runs";
  (* 48 encoder passes ~ BERT-large's 24 layers, forward + backward. The
     deep graph prices whole-application runs; cutout analyses use the
     single-layer graph (inside the layer loop, the attention scores are
     loop-carried, so the min-cut rightly refuses to drop them — see the
     min_cut tests). *)
  let layers = 48 in
  let g_app, _asid, _ = Workloads.Bert.build_with_site ~layers () in
  let g, _sid, scaling = Workloads.Bert.build_with_site () in
  let symbols = Workloads.Bert.default_symbols in
  let inputs = default_inputs g_app ~symbols in
  (* whole-application run time *)
  let _, t_app =
    time (fun () ->
        match Interp.Exec.run g_app ~symbols ~inputs with
        | Ok _ -> ()
        | Error f -> failwith (Interp.Exec.fault_to_string f))
  in
  Printf.printf "whole application (%d encoder passes): %.1f ms per run\n" layers (1000. *. t_app);
  (* fuzzing-trial rate on the scaling-nest cutout, with and without min-cut *)
  let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Correct in
  let site =
    List.find (fun (s : Transforms.Xform.site) -> s.nodes = [ scaling ]) (x.find g)
  in
  List.iter
    (fun (label, use_min_cut) ->
      let config =
        {
          Fuzzyflow.Difftest.default_config with
          trials = 40;
          concretization = symbols;
          custom_constraints =
            List.map (fun (s, v) -> (s, (v, v))) symbols;
          use_min_cut;
        }
      in
      let r, t = time (fun () -> Fuzzyflow.Difftest.test_instance ~config g x site) in
      let per_trial = t /. float_of_int r.trials_run in
      Printf.printf
        "cutout trials (%-11s): %.2f ms/trial = %.1f trials/s -> %.0fx faster than app runs\n"
        label (1000. *. per_trial)
        (1. /. per_trial)
        (t_app /. per_trial))
    [ ("min-cut off", false); ("min-cut on", true) ];
  (* the paper's 2x sampling speedup: time to sample one input configuration
     before and after the min-cut *)
  (* measure at a larger sequence length so array filling dominates the
     fixed per-trial overhead (the paper's BERT-large is larger still) *)
  let big_symbols = [ ("B", 2); ("H", 2); ("SM", 128); ("P", 16) ] in
  let sample_time (cut : Fuzzyflow.Cutout.t) =
    let constraints =
      Fuzzyflow.Constraints.derive
        ~custom:(List.map (fun (s, v) -> (s, (v, v))) big_symbols)
        ~original:g cut
    in
    let rng = Fuzzyflow.Sampler.create 1 in
    (* warm up, then measure input sampling under fixed symbol values *)
    ignore (Fuzzyflow.Sampler.sample_inputs rng constraints cut ~symbols:big_symbols);
    let reps = 500 in
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Fuzzyflow.Sampler.sample_inputs rng constraints cut ~symbols:big_symbols)
          done)
    in
    t /. float_of_int reps
  in
  let cut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:_sid
      ~nodes:[ scaling ]
  in
  let cut', _ = Fuzzyflow.Min_cut.minimize g cut ~symbols in
  let t_before = sample_time cut and t_after = sample_time cut' in
  Printf.printf "input sampling: %.1f us before min-cut, %.1f us after (%.1fx faster)\n"
    (1e6 *. t_before) (1e6 *. t_after) (t_before /. t_after);
  Printf.printf
    "note: the min-cut trades sampling volume for recomputation (Sec. 4); under an\n\
     interpreter the recomputed contraction costs relatively more than under MKL,\n\
     so per-trial time favors the unminimized cutout here while sampling and\n\
     coverage favor the minimized one\n";
  Printf.printf "paper: 43.7 trials/s, 528x faster than whole-application testing,\n";
  Printf.printf "       2x faster input sampling after the min-cut reduction\n"

(* ------------------------------------------------------------------ *)
(* Sec 6.1: fuzzing strategies (AFL-style vs gray-box)                 *)
(* ------------------------------------------------------------------ *)

let fuzzmodes () =
  header "Sec. 6.1: trials to discover the size-dependent vectorization bug";
  let g, _, scaling = Workloads.Bert.build_with_site () in
  let symbols = Workloads.Bert.default_symbols in
  let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
  let site =
    List.find (fun (s : Transforms.Xform.site) -> s.nodes = [ scaling ]) (x.find g)
  in
  let g' = Sdfg.Graph.copy g in
  let cs = x.apply g' site in
  let cut = Fuzzyflow.Cutout.extract ~options:{ Fuzzyflow.Cutout.symbols } g cs in
  let transformed = Sdfg.Graph.copy cut.program in
  ignore (x.apply transformed site);
  let seeds = List.init 25 (fun i -> i + 1) in
  List.iter
    (fun mode ->
      let found = ref [] and missed = ref 0 and crashes = ref 0 and total = ref 0 in
      List.iter
        (fun seed ->
          let r =
            Fuzzyflow.Fuzzer.run
              ~config:{ Fuzzyflow.Fuzzer.default_config with seed; max_trials = 500 }
              mode ~original:g ~cutout:cut ~transformed
          in
          crashes := !crashes + r.uninteresting_crashes;
          total := !total + r.trials_run;
          match r.trials_to_failure with
          | Some t -> found := t :: !found
          | None -> incr missed)
        seeds;
      let mean =
        if !found = [] then Float.nan
        else float_of_int (List.fold_left ( + ) 0 !found) /. float_of_int (List.length !found)
      in
      Printf.printf
        "%-16s mean trials to discovery %5.1f (max %3d, %d/%d seeds; %.0f%% trials wasted on crashes)\n"
        (Fuzzyflow.Fuzzer.mode_to_string mode)
        mean
        (List.fold_left max 0 !found)
        (List.length !found) (List.length seeds)
        (100. *. float_of_int !crashes /. float_of_int (max 1 !total)))
    [ Fuzzyflow.Fuzzer.Uniform; Fuzzyflow.Fuzzer.Coverage; Fuzzyflow.Fuzzer.Graybox ];
  Printf.printf "paper: AFL++ needs 157 trials on average; gray-box constraints need 1\n"

(* ------------------------------------------------------------------ *)
(* Sec 6.2 / Fig. 6: SDDMM from multi-node to single-node              *)
(* ------------------------------------------------------------------ *)

let sddmm () =
  header "Sec. 6.2 / Fig. 6: SDDMM single-node testing";
  let rank_prog, state, kernel = Workloads.Sddmm.rank_program () in
  let symbols = [ ("LROWS", 8); ("NCOLS", 8); ("K", 4) ] in
  let cut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } rank_prog ~state
      ~nodes:[ kernel ]
  in
  Printf.printf "kernel cutout inputs {%s}, system state {%s} -- no collectives included\n"
    (String.concat ", " cut.input_config)
    (String.concat ", " cut.system_state);
  (* distributed cost vs single-rank trial cost *)
  let rows = 32 and cols = 8 and k = 4 in
  let h1 = Array.init (rows * k) (fun i -> Float.cos (float_of_int i)) in
  let h2 = Array.init (cols * k) (fun i -> Float.sin (float_of_int i)) in
  let mask = Array.init (rows * cols) (fun i -> if i mod 3 = 0 then 1. else 0.) in
  List.iter
    (fun ranks ->
      let _, t =
        time (fun () -> ignore (Workloads.Sddmm.distributed ~ranks ~rows ~cols ~k ~h1 ~h2 ~mask))
      in
      let comm = Mpi_sim.Mpi.create ranks in
      Printf.printf "distributed run, %d ranks: %.2f ms (+ %d simulated messages)\n" ranks
        (1000. *. t)
        (Mpi_sim.Mpi.bcast_messages comm + (2 * Mpi_sim.Mpi.allreduce_messages comm)))
    [ 2; 4; 8 ];
  let x = Transforms.Vectorization.make ~width:2 Transforms.Vectorization.Correct in
  let site = Transforms.Xform.dataflow_site ~state ~nodes:[ kernel ] ~descr:"vectorize" in
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 20; max_size = 8; concretization = symbols }
  in
  let r, t = time (fun () -> Fuzzyflow.Difftest.test_instance ~config rank_prog x site) in
  Printf.printf "single-rank cutout testing: %d trials in %.2f ms (%s)\n" r.trials_run (1000. *. t)
    (match r.verdict with Fuzzyflow.Difftest.Pass -> "PASS" | _ -> "FAIL");
  Printf.printf "paper: optimizations not touching communication are tested on one node\n"

(* ------------------------------------------------------------------ *)
(* Sec 6.3 / Table 2: the NPBench campaign                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Sec. 6.3 / Table 2: built-in transformations over the NPBench suite";
  let config =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 10;
      max_size = 10;
      step_limit = 200_000;
      concretization = [ ("N", 8); ("T", 3); ("H", 4); ("R", 3); ("Q", 4); ("P", 3) ];
    }
  in
  let programs = Workloads.Npbench.all () @ Workloads.Npb_frontend.all () in
  let c, t =
    time (fun () -> Fuzzyflow.Campaign.run ~config programs (Transforms.Registry.as_shipped ()))
  in
  Printf.printf "%d kernels, %d transformation instances, %.1f s\n\n" (List.length programs)
    c.total_instances t;
  print_string (Fuzzyflow.Campaign.to_table c);
  print_newline ();
  Printf.printf "paper (52 apps, 3,280 instances): BufferTiling X, TaskletFusion X,\n";
  Printf.printf "Vectorization /!\\, MapExpansion ->, MapReduceFusion, StateAssignElimination,\n";
  Printf.printf "SymbolAliasPromotion failing; all other built-ins pass\n"

(* ------------------------------------------------------------------ *)
(* Sec 6.4: the CLOUDSC campaigns                                      *)
(* ------------------------------------------------------------------ *)

let cloudsc () =
  header "Sec. 6.4: CLOUDSC optimization campaigns";
  let program = Workloads.Cloudsc.build () in
  let symbols = Workloads.Cloudsc.default_symbols in
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 10; max_size = 12; concretization = symbols }
  in
  Printf.printf "%-22s %-16s %-16s %s\n" "transformation" "ours (inst/fail)" "paper (inst/fail)"
    "mean trials to expose";
  List.iter
    (fun (name, x, paper) ->
      let sites = x.Transforms.Xform.find program in
      let failing = ref 0 and trials = ref [] in
      List.iter
        (fun site ->
          let r = Fuzzyflow.Difftest.test_instance ~config program x site in
          match r.verdict with
          | Fuzzyflow.Difftest.Pass -> ()
          | Fuzzyflow.Difftest.Fail f ->
              incr failing;
              if f.first_trial > 0 then trials := f.first_trial :: !trials)
        sites;
      let mean =
        match !trials with
        | [] -> 0.
        | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
      in
      Printf.printf "%-22s %-16s %-16s %.1f\n" name
        (Printf.sprintf "%d / %d" (List.length sites) !failing)
        paper mean)
    [
      ( "ExtractGpuKernels",
        Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Full_copy_back,
        "62 / 48" );
      ( "LoopUnrolling",
        Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Negative_step_sign_error,
        "19 / 1" );
      ( "WriteElimination",
        Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Ignore_system_state,
        "136 / 1" );
    ];
  Printf.printf "paper: GPU-extraction failures exposed in 1-2 trials each (43 s); the same\n";
  Printf.printf "bug took an engineer over 16 hours to isolate by hand\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices (DESIGN.md)                         *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablations";
  (* 1. min-cut on/off: input bytes of the BERT scaling cutout *)
  let g, sid, scaling = Workloads.Bert.build_with_site () in
  let symbols = Workloads.Bert.default_symbols in
  let cut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
      ~nodes:[ scaling ]
  in
  let cut', _ = Fuzzyflow.Min_cut.minimize g cut ~symbols in
  Printf.printf "min-cut         off: %6d input bytes   on: %6d input bytes\n"
    (Fuzzyflow.Cutout.input_bytes cut ~symbols)
    (Fuzzyflow.Cutout.input_bytes cut' ~symbols);
  (* 1b. sub-region container minimization: cutout memory footprint *)
  let prefix_prog = Frontend.Lang.compile {|
    program prefix
    symbol N
    input  f64 big[N]
    output f64 y[10]
    map i = 0 to 9 { y[i] = big[i] * 2.0 }
  |} in
  let psid = Sdfg.Graph.start_state prefix_prog in
  let pentry =
    List.hd (Transforms.Xform.map_entries (Sdfg.Graph.state prefix_prog psid))
  in
  let psyms = [ ("N", 4096) ] in
  let pcut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols = psyms } prefix_prog
      ~state:psid ~nodes:[ pentry ]
  in
  let _, sstats = Fuzzyflow.Cutout.shrink_containers pcut ~symbols:psyms in
  Printf.printf "container shrink off: %6d cutout bytes  on: %6d cutout bytes (%d resized)\n"
    sstats.original_bytes sstats.shrunk_bytes (List.length sstats.resized);
  (* 2. gray-box constraints on/off: trials to expose the size bug *)
  let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
  let site = List.find (fun (s : Transforms.Xform.site) -> s.nodes = [ scaling ]) (x.find g) in
  let g' = Sdfg.Graph.copy g in
  let cs = x.apply g' site in
  let cutv = Fuzzyflow.Cutout.extract ~options:{ Fuzzyflow.Cutout.symbols } g cs in
  let transformed = Sdfg.Graph.copy cutv.program in
  ignore (x.apply transformed site);
  List.iter
    (fun (label, mode) ->
      let r =
        Fuzzyflow.Fuzzer.run
          ~config:{ Fuzzyflow.Fuzzer.default_config with max_trials = 60 }
          mode ~original:g ~cutout:cutv ~transformed
      in
      Printf.printf "constraints %-4s: bug exposed at %s (of %d trials run)\n" label
        (match r.trials_to_failure with Some t -> Printf.sprintf "trial %d" t | None -> "never")
        r.trials_run)
    [ ("off", Fuzzyflow.Fuzzer.Uniform); ("on", Fuzzyflow.Fuzzer.Graybox) ];
  (* 3. coverage guidance: distinct coverage reached per trial budget, on a
     passing instance so the full budget is spent *)
  let xc = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Correct in
  let sitec = List.find (fun (s : Transforms.Xform.site) -> s.nodes = [ scaling ]) (xc.find g) in
  let gc = Sdfg.Graph.copy g in
  let csc = xc.apply gc sitec in
  let cutc = Fuzzyflow.Cutout.extract ~options:{ Fuzzyflow.Cutout.symbols } g csc in
  let transformedc = Sdfg.Graph.copy cutc.program in
  ignore (xc.apply transformedc sitec);
  List.iter
    (fun (label, mode) ->
      let r =
        Fuzzyflow.Fuzzer.run
          ~config:{ Fuzzyflow.Fuzzer.default_config with max_trials = 30 }
          mode ~original:g ~cutout:cutc ~transformed:transformedc
      in
      Printf.printf "coverage guidance %-3s: %d distinct coverage points in %d trials\n" label
        r.distinct_coverage r.trials_run)
    [ ("off", Fuzzyflow.Fuzzer.Graybox); ("on", Fuzzyflow.Fuzzer.Coverage) ]

(* ------------------------------------------------------------------ *)
(* Paper future work: transformation-parameter fuzzing + localization   *)
(* ------------------------------------------------------------------ *)

let futurework () =
  header "Conclusion / future work: parameter fuzzing & divergence localization";
  (* fuzz the tile size of a tiling optimization (paper's example) *)
  let g = Workloads.Npbench.scale () in
  let sid = Sdfg.Graph.start_state g in
  let entry = List.hd (Transforms.Xform.map_entries (Sdfg.Graph.state g sid)) in
  let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:"tile" in
  let cfg =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 10;
      concretization = [ ("N", 12) ];
      custom_constraints = [ ("N", (12, 12)) ];
    }
  in
  let r =
    Fuzzyflow.Tuning.sweep ~config:cfg g
      ~family:(fun ts ->
        Transforms.Map_tiling.make ~tile_size:ts Transforms.Map_tiling.No_remainder)
      ~params:[ 2; 3; 4; 5; 6; 7; 8 ] ~site
  in
  Printf.printf "tile-size sweep of no-remainder tiling at N=12:
";
  Format.printf "%a" Fuzzyflow.Tuning.pp_result r;
  (* localize where values first diverge for the Fig. 2 bug *)
  let g, csid, mm2 = Workloads.Chain.build_with_site () in
  let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
  let csite = Transforms.Xform.dataflow_site ~state:csid ~nodes:[ mm2 ] ~descr:"tile mm2" in
  let ccfg =
    { Fuzzyflow.Difftest.default_config with trials = 10; max_size = 8; concretization = [ ("N", 8) ] }
  in
  let report = Fuzzyflow.Difftest.test_instance ~config:ccfg g x csite in
  (match Fuzzyflow.Localize.of_report ~config:ccfg ~original:g ~xform:x report with
  | Some (d :: _) ->
      Format.printf "divergence localization on the Fig. 2 bug: %a@."
        Fuzzyflow.Localize.pp_divergence d
  | _ -> print_endline "no divergence localized");
  Printf.printf "paper: proposed as future work (Sec. 9); both implemented here
"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let g, sid, mm2 = Workloads.Chain.build_with_site () in
  let symbols = [ ("N", 8) ] in
  let opts = { Fuzzyflow.Cutout.symbols } in
  let inputs = default_inputs g ~symbols in
  let bert_g, bert_sid, bert_scaling = Workloads.Bert.build_with_site () in
  let bert_syms = Workloads.Bert.default_symbols in
  let bert_cut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols = bert_syms } bert_g
      ~state:bert_sid ~nodes:[ bert_scaling ]
  in
  let tiling = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
  let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"t" in
  let tests =
    [
      Test.make ~name:"interp: matmul chain N=8"
        (Staged.stage (fun () ->
             match Interp.Exec.run g ~symbols ~inputs with Ok _ -> () | Error _ -> ()));
      Test.make ~name:"cutout extraction (Fig. 3)"
        (Staged.stage (fun () ->
             ignore (Fuzzyflow.Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ mm2 ])));
      Test.make ~name:"min input-flow cut (BERT)"
        (Staged.stage (fun () ->
             ignore (Fuzzyflow.Min_cut.minimize bert_g bert_cut ~symbols:bert_syms)));
      Test.make ~name:"transformation apply (tiling)"
        (Staged.stage (fun () ->
             let g' = Sdfg.Graph.copy g in
             ignore (tiling.apply g' site)));
      Test.make ~name:"structural diff (chain)"
        (Staged.stage (fun () ->
             let g' = Sdfg.Graph.copy g in
             ignore (tiling.apply g' site);
             ignore (Sdfg.Diff.compute ~original:g ~transformed:g')));
      Test.make ~name:"validation (cloudsc)"
        (let cl = Workloads.Cloudsc.build () in
         Staged.stage (fun () -> ignore (Sdfg.Validate.check cl)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-34s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)

(* B1: analysis cost vs program size — a chain of k elementwise stages *)
let scaling () =
  header "Analysis-cost scaling with program size (B1)";
  let build_chain k =
    let g = Sdfg.Graph.create (Printf.sprintf "chain%d" k) in
    Sdfg.Graph.add_symbol g "N";
    let n = Symbolic.Expr.sym "N" in
    Sdfg.Graph.add_array g "x" Sdfg.Dtype.F64 [ n ];
    Sdfg.Graph.add_array g "y" Sdfg.Dtype.F64 [ n ];
    for i = 0 to k - 1 do
      Sdfg.Graph.add_array g ~transient:true (Printf.sprintf "t%d" i) Sdfg.Dtype.F64 [ n ]
    done;
    let sid = Sdfg.Graph.add_state g "main" in
    let st = Sdfg.Graph.state g sid in
    let prev = ref ("x", None) in
    let last_entry = ref (-1) in
    for i = 0 to k - 1 do
      let src, src_node = !prev in
      let dst = if i = k - 1 then "y" else Printf.sprintf "t%d" i in
      let m =
        Builder.Build.mapped_tasklet g st ~label:(Printf.sprintf "stage%d" i)
          ~map:[ ("j", "0:N-1") ]
          ~inputs:[ ("v", Builder.Build.mem src "j") ]
          ~code:"o = v * 1.0001 + 0.5"
          ~outputs:[ ("o", Builder.Build.mem dst "j") ]
          ?input_nodes:(Option.map (fun nd -> [ (src, nd) ]) src_node)
          ()
      in
      last_entry := m.entry;
      prev := (dst, Some (List.assoc dst m.out_access))
    done;
    (g, sid, !last_entry)
  in
  let symbols = [ ("N", 64) ] in
  Printf.printf "%-8s %-10s %-14s %-14s %-14s
" "stages" "nodes" "extract (us)" "min-cut (us)" "difftest ms/instance";
  List.iter
    (fun k ->
      let g, sid, entry = build_chain k in
      let reps = 20 in
      let _, t_ex =
        time (fun () ->
            for _ = 1 to reps do
              ignore
                (Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g
                   ~state:sid ~nodes:[ entry ])
            done)
      in
      let cut =
        Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
          ~nodes:[ entry ]
      in
      let _, t_mc =
        time (fun () ->
            for _ = 1 to reps do
              ignore (Fuzzyflow.Min_cut.minimize g cut ~symbols)
            done)
      in
      let x = Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.Correct in
      let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:"tile" in
      let cfg =
        { Fuzzyflow.Difftest.default_config with trials = 10; concretization = symbols; max_size = 16 }
      in
      let _, t_dt = time (fun () -> ignore (Fuzzyflow.Difftest.test_instance ~config:cfg g x site)) in
      Printf.printf "%-8d %-10d %-14.1f %-14.1f %-14.1f
" k
        (Sdfg.State.num_nodes (Sdfg.Graph.state g sid))
        (1e6 *. t_ex /. float_of_int reps)
        (1e6 *. t_mc /. float_of_int reps)
        (1000. *. t_dt))
    [ 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Translation validation: fuzz trials saved by the equivalence gate   *)
(* ------------------------------------------------------------------ *)

let equiv () =
  header "Translation validation: trials saved by the equivalence gate";
  let workloads =
    [
      ("scale", Workloads.Npbench.scale ());
      ("axpy", Workloads.Npbench.axpy ());
      ("gemm", Workloads.Npbench.gemm ());
      ("mvt", Workloads.Npbench.mvt ());
      ("softmax", Workloads.Npbench.softmax ());
      ("fig4", Workloads.Fig4.build ());
    ]
  in
  let config =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 10;
      max_size = 8;
      concretization = [ ("N", 8); ("T", 3) ];
    }
  in
  let xforms = Transforms.Registry.as_shipped () in
  Printf.printf "%-14s %10s %12s %12s %8s %8s\n" "workload" "instances" "trials(off)"
    "trials(on)" "saved" "proved";
  let rows =
    List.map
      (fun (name, g) ->
        let off, t_off = time (fun () -> Fuzzyflow.Campaign.run ~config [ (name, g) ] xforms) in
        let on, t_on =
          time (fun () -> Fuzzyflow.Campaign.run ~config ~certify_gate:true [ (name, g) ] xforms)
        in
        let toff = Fuzzyflow.Campaign.trials_spent off
        and ton = Fuzzyflow.Campaign.trials_spent on in
        Printf.printf "%-14s %10d %12d %12d %8d %8d  (%.2fs -> %.2fs)\n" name
          off.total_instances toff ton (toff - ton) on.total_proved t_off t_on;
        Printf.sprintf
          "{\"bench\":\"equiv\",\"workload\":\"%s\",\"instances\":%d,\"trials_gate_off\":%d,\"trials_gate_on\":%d,\"saved\":%d,\"proved\":%d}"
          name off.total_instances toff ton (toff - ton) on.total_proved)
      workloads
  in
  let oc = open_out "BENCH_equiv.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_equiv.json (%d rows)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Interstate dataflow analyses: per-pass runtime over the workload     *)
(* suite, fixpoint convergence, and certify verdicts upgraded from      *)
(* Unknown by interval facts                                            *)
(* ------------------------------------------------------------------ *)

let analysis () =
  header "Dataflow analyses: per-pass runtime and interval-fact certify upgrades";
  let programs =
    Workloads.Npbench.all () @ Workloads.Npb_frontend.all ()
    @ [
        ("bert", Workloads.Bert.build ());
        ("cloudsc", Workloads.Cloudsc.build ());
        ("fig4", Workloads.Fig4.build ());
        ("sddmm", (let g, _, _ = Workloads.Sddmm.rank_program () in g));
      ]
  in
  let symbols_for g =
    let base =
      match Sdfg.Graph.name g with
      | "bert_encoder" -> Workloads.Bert.default_symbols
      | "cloudsc_synth" -> Workloads.Cloudsc.default_symbols
      | "sddmm_rank" -> [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ]
      | _ -> [ ("N", 8); ("T", 3) ]
    in
    List.filter (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g)) base
  in
  (* per-pass wall clock, summed over the whole suite *)
  let max_iters = ref 0 in
  let passes =
    [
      ("liveness", fun g -> List.length (Analysis.Liveness.check g));
      ("reachdef", fun g -> List.length (Analysis.Reachdef.check g));
      ( "intervals",
        fun g ->
          let sol = Analysis.Intervals.solve ~symbols:(symbols_for g) g in
          if not sol.Analysis.Fixpoint.converged then max_iters := max_int
          else max_iters := max !max_iters sol.Analysis.Fixpoint.iterations;
          List.length (Analysis.Intervals.facts ~symbols:(symbols_for g) g) );
      ("defuse", fun g -> List.length (Analysis.Defuse.check g));
      ("footprint", fun g -> List.length (Analysis.Footprint.check ~symbols:(symbols_for g) g));
      ("oracle", fun g -> List.length (Analysis.Oracle.analyze ~symbols:(symbols_for g) g));
    ]
  in
  Printf.printf "%-12s %10s %10s\n" "pass" "total (ms)" "findings";
  let pass_rows =
    List.map
      (fun (name, f) ->
        let n = ref 0 in
        let _, t = time (fun () -> List.iter (fun (_, g) -> n := !n + f g) programs) in
        Printf.printf "%-12s %10.1f %10d\n" name (1000. *. t) !n;
        Printf.sprintf "{\"bench\":\"analysis\",\"pass\":\"%s\",\"total_ms\":%.2f,\"findings\":%d}"
          name (1000. *. t) !n)
      passes
  in
  Printf.printf "interval fixpoint: max %d passes to convergence over %d workloads\n" !max_iters
    (List.length programs);
  (* certify with and without interval facts: how many Unknown verdicts do
     the envelope bounds upgrade to a definite answer? *)
  let xforms =
    Transforms.Registry.as_shipped () @ Transforms.Registry.all_correct ()
    |> List.fold_left
         (fun acc (x : Transforms.Xform.t) ->
           if List.exists (fun (y : Transforms.Xform.t) -> y.name = x.name) acc then acc
           else x :: acc)
         []
    |> List.rev
  in
  let instances = ref 0
  and unknown_off = ref 0
  and upgraded_equivalent = ref 0
  and upgraded_refuted = ref 0 in
  let _, t_certify =
    time (fun () ->
        List.iter
          (fun (_, g) ->
            let symbols = symbols_for g in
            List.iter
              (fun (x : Transforms.Xform.t) ->
                List.iter
                  (fun site ->
                    incr instances;
                    match
                      Analysis.Equiv.certify ~use_intervals:false ~use_deps:false ~symbols g
                        x site
                    with
                    | Some (Analysis.Equiv.Unknown _) -> (
                        incr unknown_off;
                        match Analysis.Equiv.certify ~symbols g x site with
                        | Some (Analysis.Equiv.Equivalent _) -> incr upgraded_equivalent
                        | Some (Analysis.Equiv.Refuted _) -> incr upgraded_refuted
                        | _ -> ())
                    | _ -> ())
                  (x.find g))
              xforms)
          programs)
  in
  Printf.printf
    "certify: %d instances, %d unknown without interval facts, %d upgraded to equivalent, %d to \
     refuted (%.2fs)\n"
    !instances !unknown_off !upgraded_equivalent !upgraded_refuted t_certify;
  let upgrade_row =
    Printf.sprintf
      "{\"bench\":\"analysis\",\"certify_instances\":%d,\"unknown_without_intervals\":%d,\"upgraded_equivalent\":%d,\"upgraded_refuted\":%d,\"max_fixpoint_passes\":%d}"
      !instances !unknown_off !upgraded_equivalent !upgraded_refuted !max_iters
  in
  let rows = pass_rows @ [ upgrade_row ] in
  let oc = open_out "BENCH_analysis.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_analysis.json (%d rows)\n" (List.length rows);
  if !upgraded_equivalent + !upgraded_refuted = 0 then begin
    Printf.eprintf "analysis bench: interval facts upgraded no certify verdicts\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Exact dependence engine: what fraction of intra-scope access pairs   *)
(* does the Fourier–Motzkin tier decide outright, what does a decision  *)
(* cost, and how many certify verdicts does the exact tier upgrade?     *)
(* Gates: decided fraction >= BENCH_DEPS_MIN_FRACTION (default 0.6)     *)
(* and full-engine Equivalent count > BENCH_DEPS_MIN_EQUIVALENT         *)
(* (default 39, the interval-facts-only baseline).                      *)
(* ------------------------------------------------------------------ *)

let deps () =
  header "Exact dependence engine: decided pairs, solve cost, certify upgrades";
  let min_fraction =
    match Sys.getenv_opt "BENCH_DEPS_MIN_FRACTION" with
    | Some s -> float_of_string s
    | None -> 0.6
  in
  let min_equivalent =
    match Sys.getenv_opt "BENCH_DEPS_MIN_EQUIVALENT" with
    | Some s -> int_of_string s
    | None -> 39
  in
  let programs = Workloads.Npbench.all () @ Workloads.Npb_frontend.all () in
  let symbols_for g =
    List.filter
      (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g))
      [ ("N", 8); ("T", 3) ]
  in
  Printf.printf "%-16s %6s %8s %8s %8s %10s\n" "workload" "pairs" "disjoint" "overlap"
    "sampled" "ms";
  let total = ref Analysis.Races.stats_zero and total_ms = ref 0. in
  let rows =
    List.map
      (fun (name, g) ->
        let stats = ref Analysis.Races.stats_zero in
        (* carried dependences count, as in the campaign's static channel:
           write/read pairs of sequential scopes are dependence queries too *)
        let _, t =
          time (fun () ->
              let _, s =
                Analysis.Oracle.analyze_stats ~carried:true ~symbols:(symbols_for g) g
              in
              stats := s)
        in
        let s = !stats in
        total := Analysis.Races.stats_add !total s;
        total_ms := !total_ms +. (1000. *. t);
        Printf.printf "%-16s %6d %8d %8d %8d %10.2f\n" name s.Analysis.Races.pairs
          s.Analysis.Races.exact_disjoint s.Analysis.Races.exact_overlap
          s.Analysis.Races.sampled (1000. *. t);
        Printf.sprintf
          "{\"bench\":\"deps\",\"workload\":\"%s\",\"pairs\":%d,\"exact_disjoint\":%d,\"exact_overlap\":%d,\"sampled\":%d,\"ms\":%.2f}"
          name s.Analysis.Races.pairs s.Analysis.Races.exact_disjoint
          s.Analysis.Races.exact_overlap s.Analysis.Races.sampled (1000. *. t))
      programs
  in
  let decided = !total.Analysis.Races.exact_disjoint + !total.Analysis.Races.exact_overlap in
  let fraction =
    if !total.Analysis.Races.pairs = 0 then 0.
    else float_of_int decided /. float_of_int !total.Analysis.Races.pairs
  in
  let per_pair =
    if !total.Analysis.Races.pairs = 0 then 0.
    else !total_ms /. float_of_int !total.Analysis.Races.pairs
  in
  Printf.printf
    "exact tier: %d/%d access pairs decided (%.0f%%), %d sampled, %.3f ms per pair\n" decided
    !total.Analysis.Races.pairs (100. *. fraction) !total.Analysis.Races.sampled per_pair;
  (* registry-wide certify sweep: exact tier off vs on *)
  let xforms =
    Transforms.Registry.as_shipped () @ Transforms.Registry.all_correct ()
    |> List.fold_left
         (fun acc (x : Transforms.Xform.t) ->
           if List.exists (fun (y : Transforms.Xform.t) -> y.name = x.name) acc then acc
           else x :: acc)
         []
    |> List.rev
  in
  let sweep ~use_deps =
    let eq = ref 0 and refuted = ref 0 and unknown = ref 0 and n = ref 0 in
    List.iter
      (fun (_, g) ->
        let symbols = symbols_for g in
        List.iter
          (fun (x : Transforms.Xform.t) ->
            List.iter
              (fun site ->
                incr n;
                match Analysis.Equiv.certify ~use_deps ~symbols g x site with
                | Some (Analysis.Equiv.Equivalent _) -> incr eq
                | Some (Analysis.Equiv.Refuted _) -> incr refuted
                | Some (Analysis.Equiv.Unknown _) -> incr unknown
                | None -> decr n)
              (x.find g))
          xforms)
      programs;
    (!n, !eq, !refuted, !unknown)
  in
  let (n_off, eq_off, rf_off, un_off), t_off = time (fun () -> sweep ~use_deps:false) in
  let (n_on, eq_on, rf_on, un_on), t_on = time (fun () -> sweep ~use_deps:true) in
  Printf.printf
    "certify without deps: %d instances, %d equivalent, %d refuted, %d unknown (%.2fs)\n" n_off
    eq_off rf_off un_off t_off;
  Printf.printf
    "certify with deps:    %d instances, %d equivalent, %d refuted, %d unknown (%.2fs)\n" n_on
    eq_on rf_on un_on t_on;
  let summary =
    Printf.sprintf
      "{\"bench\":\"deps\",\"pairs\":%d,\"decided\":%d,\"sampled\":%d,\"fraction\":%.4f,\"ms_per_pair\":%.4f,\"certify_instances\":%d,\"equivalent_without_deps\":%d,\"equivalent_with_deps\":%d,\"refuted_with_deps\":%d,\"unknown_with_deps\":%d,\"min_fraction\":%.2f,\"min_equivalent\":%d}"
      !total.Analysis.Races.pairs decided !total.Analysis.Races.sampled fraction per_pair n_on
      eq_off eq_on rf_on un_on min_fraction min_equivalent
  in
  let rows = rows @ [ summary ] in
  let oc = open_out "BENCH_deps.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_deps.json (%d rows)\n" (List.length rows);
  if fraction < min_fraction then begin
    Printf.eprintf "deps bench: exact tier decided %.0f%% of pairs, floor is %.0f%%\n"
      (100. *. fraction) (100. *. min_fraction);
    exit 1
  end;
  if eq_on <= min_equivalent then begin
    Printf.eprintf "deps bench: %d certify instances equivalent, floor is more than %d\n" eq_on
      min_equivalent;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Campaign engine: wall-clock vs worker count, scheduling overhead     *)
(* ------------------------------------------------------------------ *)

let engine () =
  header "Campaign engine: wall-clock at 1/2/4 workers";
  let programs =
    [
      ("scale", Workloads.Npbench.scale ());
      ("axpy", Workloads.Npbench.axpy ());
      ("gemm", Workloads.Npbench.gemm ());
      ("mvt", Workloads.Npbench.mvt ());
      ("softmax", Workloads.Npbench.softmax ());
      ("fig4", Workloads.Fig4.build ());
    ]
  in
  let xforms = Transforms.Registry.as_shipped () in
  (* enough trials per instance that the fork/marshal cost amortizes — the
     regime a real campaign runs in *)
  let config =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 200;
      max_size = 12;
      concretization = [ ("N", 8); ("T", 3) ];
    }
  in
  (* serial in-process reference: the work itself, no forks *)
  let serial, t_serial = time (fun () -> Fuzzyflow.Campaign.run ~config programs xforms) in
  let cores =
    try
      let ic = Unix.open_process_in "nproc 2>/dev/null" in
      let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
      ignore (Unix.close_process_in ic);
      n
    with _ -> 1
  in
  Printf.printf "(%d cores available; speedup is bounded by min(j, cores))\n" cores;
  Printf.printf "%-10s %10s %10s %10s %10s\n" "workers" "wall (s)" "speedup" "inst/s" "overhead";
  Printf.printf "%-10s %10.2f %10s %10.1f %10s\n" "in-process" t_serial "1.00x"
    (float_of_int serial.total_instances /. t_serial) "-";
  let rows =
    List.map
      (fun j ->
        let c, t =
          time (fun () ->
              Engine.Worker.run_campaign
                ~options:{ Engine.Worker.default_options with j }
                ~config programs xforms)
        in
        assert (c.Fuzzyflow.Campaign.total_instances = serial.Fuzzyflow.Campaign.total_instances);
        (* scheduling overhead: how much slower one engine worker is than the
           bare serial loop — the price of fork + marshal + polling *)
        let overhead = (t -. (t_serial /. float_of_int j)) /. t_serial in
        Printf.printf "%-10s %10.2f %9.2fx %10.1f %9.0f%%\n"
          (Printf.sprintf "-j %d" j)
          t (t_serial /. t)
          (float_of_int c.Fuzzyflow.Campaign.total_instances /. t)
          (100. *. overhead);
        Printf.sprintf
          "{\"bench\":\"engine\",\"j\":%d,\"cores\":%d,\"wall_s\":%.3f,\"serial_s\":%.3f,\"speedup\":%.3f,\"instances\":%d,\"instances_per_s\":%.1f}"
          j cores t t_serial (t_serial /. t) c.Fuzzyflow.Campaign.total_instances
          (float_of_int c.Fuzzyflow.Campaign.total_instances /. t))
      [ 1; 2; 4 ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_engine.json (%d rows)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Faultlab: does the stack catch what we seed, and at what cost?       *)
(* ------------------------------------------------------------------ *)

let faultlab () =
  header "Faultlab: seeded-fault detection rates and injection overhead";
  let seed = 42 and trials = 6 in
  let report, t_campaign = time (fun () -> Faultlab.Selfcheck.run ~j:2 ~trials ~seed ()) in
  let t = Faultlab.Selfcheck.totals report in
  (* detection rate per fault class: interp specs by injection slug, transform
     specs by mutation kind, mpi specs by disturbance name *)
  let class_of (s : Faultlab.Plan.spec) =
    match (s.Faultlab.Plan.payload, String.split_on_char '/' s.Faultlab.Plan.id) with
    | Faultlab.Plan.Interp_fault _, [ _; _; slug ] -> "interp/" ^ slug
    | Faultlab.Plan.Transform_fault { kind; _ }, _ ->
        "xform/" ^ Faultlab.Mutate.kind_to_string kind
    | _ -> s.Faultlab.Plan.id
  in
  let classes =
    List.sort_uniq compare
      (List.map (fun (r : Faultlab.Selfcheck.row) -> class_of r.Faultlab.Selfcheck.spec)
         report.Faultlab.Selfcheck.rows)
  in
  Printf.printf "%-24s %9s %9s\n" "fault class" "seeded" "detected";
  let class_rows =
    List.map
      (fun cls ->
        let rows =
          List.filter
            (fun (r : Faultlab.Selfcheck.row) -> class_of r.Faultlab.Selfcheck.spec = cls)
            report.Faultlab.Selfcheck.rows
        in
        let detected =
          List.length
            (List.filter
               (fun (r : Faultlab.Selfcheck.row) ->
                 match r.Faultlab.Selfcheck.outcome with
                 | Faultlab.Selfcheck.Detected _ -> true
                 | _ -> false)
               rows)
        in
        Printf.printf "%-24s %9d %9d\n" cls (List.length rows) detected;
        Printf.sprintf
          "{\"bench\":\"faultlab\",\"row\":\"class\",\"class\":\"%s\",\"seeded\":%d,\"detected\":%d}"
          cls (List.length rows) detected)
      classes
  in
  (* injection overhead: the same identity-transform difftest with and without
     an armed interpreter fault — the cost of the write-intercept path *)
  let g = Faultlab.Plan.workload_by_name "scale" in
  let x = Faultlab.Mutate.identity () in
  let site = List.hd (x.Transforms.Xform.find g) in
  let config =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 50;
      max_size = 8;
      concretization = List.map (fun s -> (s, 8)) (Sdfg.Graph.all_free_syms g);
    }
  in
  let measure inject =
    let config = { config with Fuzzyflow.Difftest.inject_transformed = inject } in
    ignore (Fuzzyflow.Difftest.test_instance ~config g x site);
    let reps = 5 in
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Fuzzyflow.Difftest.test_instance ~config g x site)
          done)
    in
    t /. float_of_int reps
  in
  let t_clean = measure None in
  let t_inj = measure (Some (Interp.Exec.Flip_bit { nth_write = 0; bit = 62 })) in
  Printf.printf
    "injection overhead: %.2f ms clean vs %.2f ms armed (%.2fx) over %d trials\n"
    (1000. *. t_clean) (1000. *. t_inj) (t_inj /. t_clean) config.Fuzzyflow.Difftest.trials;
  Printf.printf
    "campaign: %d specs in %.1f s -- %d detected, %d missed, %d misclassified, %d quarantined, %d retries\n"
    t.Faultlab.Selfcheck.specs t_campaign t.Faultlab.Selfcheck.detected
    t.Faultlab.Selfcheck.missed t.Faultlab.Selfcheck.misclassified
    t.Faultlab.Selfcheck.quarantined t.Faultlab.Selfcheck.extra_attempts;
  Printf.printf "localization ground truth: %d/%d accurate\n" t.Faultlab.Selfcheck.loc_accurate
    t.Faultlab.Selfcheck.loc_checked;
  let summary =
    Printf.sprintf
      "{\"bench\":\"faultlab\",\"row\":\"summary\",\"seed\":%d,\"specs\":%d,\"detected\":%d,\"missed\":%d,\"misclassified\":%d,\"quarantined\":%d,\"retries\":%d,\"detection_rate\":%.4f,\"loc_checked\":%d,\"loc_accurate\":%d,\"wall_s\":%.3f,\"clean_ms\":%.3f,\"injected_ms\":%.3f,\"injection_overhead\":%.3f}"
      seed t.Faultlab.Selfcheck.specs t.Faultlab.Selfcheck.detected t.Faultlab.Selfcheck.missed
      t.Faultlab.Selfcheck.misclassified t.Faultlab.Selfcheck.quarantined
      t.Faultlab.Selfcheck.extra_attempts
      (Faultlab.Selfcheck.detection_rate report)
      t.Faultlab.Selfcheck.loc_checked t.Faultlab.Selfcheck.loc_accurate t_campaign
      (1000. *. t_clean) (1000. *. t_inj) (t_inj /. t_clean)
  in
  let oc = open_out "BENCH_faultlab.json" in
  output_string oc (String.concat "\n" (class_rows @ [ summary ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_faultlab.json (%d rows)\n" (List.length class_rows + 1)

(* ------------------------------------------------------------------ *)
(* Interpreter throughput: compile-once plans vs the tree-walk          *)
(* ------------------------------------------------------------------ *)

(* Trial throughput at fuzzer-typical repetition counts: the tree-walk
   re-derives all structure per run, the plan path compiles once and
   executes many times, and the kernel tier batches N trials per sweep
   (structure-of-arrays). Compile cost is measured and reported separately
   so the JSON shows both the amortized and the cold story.

     BENCH_INTERP_TRIALS             trials per workload (default 1000)
     BENCH_INTERP_MIN_SPEEDUP        exit non-zero below this (default 1.0)
     BENCH_INTERP_BATCH_MIN_SPEEDUP  batch-64 kernel-vs-plan floor; at least
                                     half the workloads must clear it
                                     (default 2.0) *)
let interp () =
  header "Interpreter throughput: batched kernels vs execution plans vs tree-walk";
  let trials =
    match Sys.getenv_opt "BENCH_INTERP_TRIALS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> 1000)
    | None -> 1000
  in
  let min_speedup =
    match Sys.getenv_opt "BENCH_INTERP_MIN_SPEEDUP" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let min_batch_speedup =
    match Sys.getenv_opt "BENCH_INTERP_BATCH_MIN_SPEEDUP" with
    | Some s -> (try float_of_string s with _ -> 2.0)
    | None -> 2.0
  in
  let batch_widths = [ 1; 8; 64 ] in
  let workloads =
    [
      ("scale", Workloads.Npbench.scale ());
      ("axpy", Workloads.Npbench.axpy ());
      ("gemm", Workloads.Npbench.gemm ());
      ("mvt", Workloads.Npbench.mvt ());
      ("softmax", Workloads.Npbench.softmax ());
      ("fig4", Workloads.Fig4.build ());
    ]
  in
  Printf.printf "trials per workload: %d\n" trials;
  Printf.printf "%-10s %10s %12s %12s %9s  %s\n" "workload" "compile" "tree-walk" "plan" "speedup"
    "kernel b1/b8/b64 (vs plan)";
  let worst = ref infinity in
  let batch64_cleared = ref 0 in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let symbols =
          List.map (fun s -> (s, if s = "T" then 3 else 16)) (Sdfg.Graph.all_free_syms g)
        in
        let inputs = default_inputs g ~symbols in
        (* parity gate: a fast wrong answer is worthless *)
        let o_tree = Interp.Exec.run_tree g ~symbols ~inputs in
        let o_plan = Interp.Exec.run g ~symbols ~inputs in
        let o_kernel = Interp.Exec.run ~tier:Interp.Exec.Kernel g ~symbols ~inputs in
        let same a b =
          a.Interp.Exec.steps = b.Interp.Exec.steps
          && Hashtbl.fold
               (fun n (buf : Interp.Value.buffer) acc ->
                 acc
                 && buf.data = (Interp.Value.buffer b.Interp.Exec.memory n).Interp.Value.data)
               a.Interp.Exec.memory true
        in
        (match (o_tree, o_plan, o_kernel) with
        | Ok a, Ok b, Ok k when same a b && same a k -> ()
        | _ ->
            Printf.eprintf "interp bench: tier divergence on %s\n" name;
            exit 1);
        let plan, t_compile =
          time (fun () ->
              match Interp.Plan.compile g ~symbols with
              | Ok p -> p
              | Error f -> (Printf.eprintf "%s: %s\n" name (Interp.Exec.fault_to_string f); exit 1))
        in
        let kernel, t_kcompile =
          time (fun () ->
              match Interp.Kernel.compile g ~symbols with
              | Ok k -> k
              | Error f -> (Printf.eprintf "%s: %s\n" name (Interp.Exec.fault_to_string f); exit 1))
        in
        let _, t_tree =
          time (fun () ->
              for _ = 1 to trials do
                ignore (Interp.Exec.run_tree g ~symbols ~inputs)
              done)
        in
        let _, t_plan =
          time (fun () ->
              for _ = 1 to trials do
                ignore (Interp.Plan.execute plan ~inputs)
              done)
        in
        let tps_tree = float_of_int trials /. t_tree in
        let tps_plan = float_of_int trials /. t_plan in
        let speedup = t_tree /. t_plan in
        if speedup < !worst then worst := speedup;
        (* batched kernel sweeps: each lane gets distinct values so the
           measurement prices real fuzzer batches, not a degenerate
           all-identical one *)
        let batch_rows =
          List.map
            (fun width ->
              let lanes =
                Array.init width (fun l ->
                    List.map
                      (fun (c, a) ->
                        (c, Array.map (fun v -> v +. (0.001 *. float_of_int l)) a))
                      inputs)
              in
              let sweeps = (trials + width - 1) / width in
              let _, t_kernel =
                time (fun () ->
                    for _ = 1 to sweeps do
                      ignore (Interp.Kernel.execute_batch kernel ~inputs:lanes)
                    done)
              in
              let tps_kernel = float_of_int (sweeps * width) /. t_kernel in
              let vs_plan = tps_kernel /. tps_plan in
              if width = 64 && vs_plan >= min_batch_speedup then incr batch64_cleared;
              ( width,
                vs_plan,
                Printf.sprintf
                  "{\"bench\":\"interp_batch\",\"workload\":\"%s\",\"batch\":%d,\"kernel_compile_ms\":%.3f,\"kernel_trials_per_s\":%.1f,\"plan_trials_per_s\":%.1f,\"speedup_vs_plan\":%.3f}"
                  name width (1000. *. t_kcompile) tps_kernel tps_plan vs_plan ))
            batch_widths
        in
        let batch_note =
          String.concat "/"
            (List.map (fun (_, vs, _) -> Printf.sprintf "%.2fx" vs) batch_rows)
        in
        Printf.printf "%-10s %8.2fms %9.0f/s %9.0f/s %8.2fx  %s\n" name (1000. *. t_compile)
          tps_tree tps_plan speedup batch_note;
        Printf.sprintf
          "{\"bench\":\"interp\",\"workload\":\"%s\",\"trials\":%d,\"compile_ms\":%.3f,\"tree_trials_per_s\":%.1f,\"plan_trials_per_s\":%.1f,\"tree_total_s\":%.4f,\"plan_total_s\":%.4f,\"speedup\":%.3f}"
          name trials (1000. *. t_compile) tps_tree tps_plan t_tree t_plan speedup
        :: List.map (fun (_, _, row) -> row) batch_rows)
      workloads
  in
  let oc = open_out "BENCH_interp.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_interp.json (%d rows)\n" (List.length rows);
  if !worst < min_speedup then begin
    Printf.eprintf "interp bench: worst speedup %.2fx below required %.2fx\n" !worst min_speedup;
    exit 1
  end;
  let n_workloads = List.length workloads in
  if 2 * !batch64_cleared < n_workloads then begin
    Printf.eprintf
      "interp bench: only %d/%d workloads reached %.2fx kernel-vs-plan at batch 64\n"
      !batch64_cleared n_workloads min_batch_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Program generator: production rate, admission cost, difftest parity  *)
(* ------------------------------------------------------------------ *)

let gen_bench () =
  header "Generator: graphs/s, admission fraction per style, difftest throughput";
  let seed = 42 in
  (* raw production rate: candidates per second, no admission gate *)
  let raw_n = 200 in
  let style_rows =
    List.map
      (fun (style : Gen.Styles.t) ->
        let _, t_raw =
          time (fun () ->
              for index = 0 to raw_n - 1 do
                ignore (Gen.Generate.candidate ~style ~seed index)
              done)
        in
        let graphs_per_s = float_of_int raw_n /. t_raw in
        let (_ : Gen.Generate.t list), stats =
          Gen.Admit.batch ~style ~seed ~n:20 ()
        in
        let fraction =
          float_of_int stats.Gen.Admit.admitted /. float_of_int stats.Gen.Admit.generated
        in
        let _, t_gate =
          time (fun () -> ignore (Gen.Admit.batch ~style ~seed ~n:20 ()))
        in
        Printf.printf "%-8s %8.0f graphs/s   admission %3.0f%%   gate %.2f s for 20 admits\n"
          style.Gen.Styles.name graphs_per_s (100. *. fraction) t_gate;
        Printf.sprintf
          "{\"bench\":\"gen\",\"row\":\"style\",\"style\":\"%s\",\"graphs_per_s\":%.1f,\"generated\":%d,\"admitted\":%d,\"admission_fraction\":%.4f,\"gate_wall_s\":%.3f}"
          style.Gen.Styles.name graphs_per_s stats.Gen.Admit.generated stats.Gen.Admit.admitted
          fraction t_gate)
      Gen.Styles.all
  in
  (* differential-testing throughput: identity-transform difftest over a
     generated program vs a hand-built workload of similar shape *)
  let difftest_rate name g =
    let x = Faultlab.Mutate.identity () in
    let site = List.hd (x.Transforms.Xform.find g) in
    let trials = 50 in
    let config =
      {
        Fuzzyflow.Difftest.default_config with
        trials;
        max_size = 8;
        concretization = List.map (fun s -> (s, 8)) (Sdfg.Graph.all_free_syms g);
      }
    in
    ignore (Fuzzyflow.Difftest.test_instance ~config g x site);
    let reps = 5 in
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Fuzzyflow.Difftest.test_instance ~config g x site)
          done)
    in
    let per_s = float_of_int (reps * trials) /. t in
    Printf.printf "difftest over %-20s %8.0f trials/s\n" name per_s;
    (name, per_s)
  in
  let fusion = List.hd Gen.Styles.all in
  let admitted, _ = Gen.Admit.batch ~style:fusion ~seed ~n:1 () in
  let gen_name, gen_rate =
    match admitted with
    | c :: _ -> difftest_rate c.Gen.Generate.name c.Gen.Generate.graph
    | [] -> ("none", 0.)
  in
  let hand_name, hand_rate = difftest_rate "scale" (Faultlab.Plan.workload_by_name "scale") in
  let summary =
    Printf.sprintf
      "{\"bench\":\"gen\",\"row\":\"summary\",\"seed\":%d,\"difftest_generated\":\"%s\",\"generated_trials_per_s\":%.1f,\"difftest_handbuilt\":\"%s\",\"handbuilt_trials_per_s\":%.1f}"
      seed gen_name gen_rate hand_name hand_rate
  in
  let rows = style_rows @ [ summary ] in
  let oc = open_out "BENCH_gen.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_gen.json (%d rows)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Distributed campaign service: wall-clock and recovery cost of remote
   dispatch — serial local reference, two live workers, and two workers with
   one SIGKILLed mid-campaign. Every scenario must reproduce the reference
   verdicts; the chaos row also reports what the recovery cost in retries. *)
let dist () =
  header "Distributed service: local vs remote workers vs worker loss";
  let programs =
    [ ("scale", Workloads.Npbench.scale ()); ("axpy", Workloads.Npbench.axpy ()) ]
  in
  let xforms = Transforms.Registry.as_shipped () in
  let config =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 100;
      max_size = 12;
      concretization = [ ("N", 8) ];
    }
  in
  let instance_lines path =
    let ic = open_in path in
    let ls = ref [] in
    (try
       while true do
         let l = input_line ic in
         if String.length l >= 18 && String.sub l 0 18 = {|{"type":"instance"|} then
           ls := l :: !ls
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !ls
  in
  let footer_of path =
    List.find_map
      (function Engine.Journal.Footer f -> Some f | _ -> None)
      (List.rev (Engine.Journal.load path))
  in
  let spawn_worker () =
    let sock, port = Engine.Supervisor.listen_on ~port:0 () in
    match Unix.fork () with
    | 0 ->
        (try Engine.Supervisor.serve_worker ~catalog:xforms sock with _ -> ());
        Unix._exit 0
    | pid ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (pid, port)
  in
  let stop_worker pid =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let run_scenario name ~workers ~kill_after =
    let path = Filename.temp_file "ffbench_dist" ".jsonl" in
    let spawned = List.init workers (fun _ -> spawn_worker ()) in
    let remote =
      if spawned = [] then None
      else
        Some
          (Engine.Supervisor.executor
             ~workers:
               (List.map
                  (fun (_, port) -> { Engine.Supervisor.host = "127.0.0.1"; port })
                  spawned)
             ())
    in
    let seen = ref 0 in
    let sink l =
      if String.length l >= 18 && String.sub l 0 18 = {|{"type":"instance"|} then begin
        incr seen;
        match kill_after with
        | Some k when !seen = k -> (
            match spawned with
            | (pid, _) :: _ -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            | [] -> ())
        | _ -> ()
      end
    in
    let c, t =
      time (fun () ->
          Engine.Worker.run_campaign
            ~options:
              {
                Engine.Worker.default_options with
                journal_path = Some path;
                remote;
                journal_sink = (if kill_after = None then None else Some sink);
              }
            ~config programs xforms)
    in
    List.iter (fun (pid, _) -> stop_worker pid) spawned;
    (name, c, t, path)
  in
  let scenarios =
    [
      run_scenario "local-j1" ~workers:0 ~kill_after:None;
      run_scenario "remote-2w" ~workers:2 ~kill_after:None;
      run_scenario "remote-2w-kill1" ~workers:2 ~kill_after:(Some 1);
    ]
  in
  let _, _, _, ref_path = List.hd scenarios in
  let reference = instance_lines ref_path in
  Printf.printf "%-18s %10s %10s %8s %8s %10s %10s\n" "scenario" "wall (s)" "inst/s"
    "retries" "lost" "degraded" "verdicts";
  let rows =
    List.map
      (fun (name, (c : Fuzzyflow.Campaign.t), t, path) ->
        let identical = instance_lines path = reference in
        (* the whole point of the supervisor: any topology, any failure
           schedule, byte-identical verdicts *)
        assert identical;
        let retries, lost, degraded =
          match footer_of path with
          | Some f ->
              (f.Engine.Journal.retries, f.Engine.Journal.worker_lost, f.Engine.Journal.degraded)
          | None -> (0, 0, false)
        in
        Printf.printf "%-18s %10.2f %10.1f %8d %8d %10s %10s\n" name t
          (float_of_int c.Fuzzyflow.Campaign.total_instances /. t)
          retries lost
          (if degraded then "yes" else "no")
          (if identical then "identical" else "DIVERGED");
        Sys.remove path;
        Printf.sprintf
          "{\"bench\":\"dist\",\"scenario\":\"%s\",\"wall_s\":%.3f,\"instances\":%d,\"instances_per_s\":%.1f,\"retries\":%d,\"worker_lost\":%d,\"degraded\":%b,\"verdicts_identical\":%b}"
          name t c.Fuzzyflow.Campaign.total_instances
          (float_of_int c.Fuzzyflow.Campaign.total_instances /. t)
          retries lost degraded identical)
      scenarios
  in
  let oc = open_out "BENCH_dist.json" in
  output_string oc (String.concat "\n" rows);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_dist.json (%d rows)\n" (List.length rows)

let experiments =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("bert", bert);
    ("speedup", speedup);
    ("fuzzmodes", fuzzmodes);
    ("sddmm", sddmm);
    ("table2", table2);
    ("cloudsc", cloudsc);
    ("ablation", ablation);
    ("equiv", equiv);
    ("analysis", analysis);
    ("deps", deps);
    ("engine", engine);
    ("dist", dist);
    ("faultlab", faultlab);
    ("gen", gen_bench);
    ("scaling", scaling);
    ("futurework", futurework);
    ("micro", micro);
    ("interp", interp);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> [ "all" ]
  in
  let run name =
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
        Printf.eprintf "unknown experiment %s; available: all %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1
  in
  if requested = [ "all" ] then List.iter (fun (_, f) -> f ()) experiments
  else List.iter run requested;
  print_newline ()
