#!/bin/sh
# Formatting gate: run `dune build @fmt` when ocamlformat is available.
# The check is advisory on machines without ocamlformat (the builder image
# does not ship it) — it must not turn a clean tree into a red build there.
set -eu
cd "$(dirname "$0")/.."
if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-fmt: ocamlformat not installed; skipping formatting check"
  exit 0
fi
exec dune build @fmt
