examples/quickstart.ml: Format Fuzzyflow List Printf Sdfg Transforms Workloads
