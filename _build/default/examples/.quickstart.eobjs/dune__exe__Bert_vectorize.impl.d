examples/bert_vectorize.ml: Float Format Fuzzyflow List Printf Sdfg String Transforms Workloads
