examples/sddmm_single_node.mli:
