examples/sddmm_single_node.ml: Array Float Fuzzyflow Printf String Transforms Unix Workloads
