examples/bert_vectorize.mli:
