examples/cloudsc_debugging.mli:
