examples/guarded_optimize.mli:
