examples/quickstart.mli:
