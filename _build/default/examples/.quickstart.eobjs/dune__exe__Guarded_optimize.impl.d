examples/guarded_optimize.ml: Array Float Format Fuzzyflow Interp List Printf Sdfg Transforms Workloads
