examples/cloudsc_debugging.ml: Format Fuzzyflow List Printf Transforms Workloads
