(* Sec. 6.2: from multi-node to single-node.

   The SDDMM kernel of Vanilla Attention runs distributed: H2 is broadcast,
   each rank computes a row block, and an allreduce assembles the result.
   Testing an optimization of the kernel does not need any of that — the
   cutout contains only the kernel's dataflow, so each trial runs on one
   simulated rank. We demonstrate by testing a (buggy) vectorization of the
   kernel on the single-rank cutout, then confirm the distributed pipeline
   agrees with the dense reference.

   Run with: dune exec examples/sddmm_single_node.exe *)

let () =
  let rank_prog, state, kernel = Workloads.Sddmm.rank_program () in
  let symbols = [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ] in

  (* the distributed baseline: 4 simulated ranks, with collectives *)
  let rows = 16 and cols = 6 and k = 3 in
  let h1 = Array.init (rows * k) (fun i -> Float.cos (float_of_int i)) in
  let h2 = Array.init (cols * k) (fun i -> Float.sin (float_of_int (i * 3))) in
  let mask = Array.init (rows * cols) (fun i -> if i mod 3 = 0 then 1. else 0.) in
  let t0 = Unix.gettimeofday () in
  let dist = Workloads.Sddmm.distributed ~ranks:4 ~rows ~cols ~k ~h1 ~h2 ~mask in
  let t_dist = Unix.gettimeofday () -. t0 in
  let reference = Workloads.Sddmm.reference ~rows ~cols ~k ~h1 ~h2 ~mask in
  let agree = Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) dist reference in
  Printf.printf "distributed SDDMM (4 ranks, bcast + allreduce): %s in %.1f ms\n"
    (if agree then "matches dense reference" else "MISMATCH")
    (1000. *. t_dist);

  (* the cutout of the kernel excludes both collectives *)
  let cut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } rank_prog ~state
      ~nodes:[ kernel ]
  in
  Printf.printf "\nkernel cutout: inputs {%s}, system state {%s}\n"
    (String.concat ", " cut.input_config)
    (String.concat ", " cut.system_state);
  Printf.printf "-> data received via Bcast (H2) is just another input; no communication left\n";

  (* test a transformation of the kernel entirely on one rank *)
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 15; max_size = 8; concretization = symbols }
  in
  let site = Transforms.Xform.dataflow_site ~state ~nodes:[ kernel ] ~descr:"vectorize sddmm" in
  let test name x =
    let t0 = Unix.gettimeofday () in
    let r = Fuzzyflow.Difftest.test_instance ~config rank_prog x site in
    Printf.printf "%-34s %-4s (%.1f ms for %d single-rank trials)\n" name
      (match r.verdict with Fuzzyflow.Difftest.Pass -> "PASS" | _ -> "FAIL")
      (1000. *. (Unix.gettimeofday () -. t0))
      r.trials_run
  in
  print_newline ();
  test "Vectorization (correct)" (Transforms.Vectorization.make ~width:2 Transforms.Vectorization.Correct);
  test "Vectorization (assume-divisible)"
    (Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible)
