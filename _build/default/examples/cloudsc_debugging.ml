(* Sec. 6.4: debugging the CLOUDSC optimization campaign.

   Engineers applied three custom transformations while porting the
   microphysics scheme to accelerators; FuzzyFlow isolates which instances
   break and emits minimal reproduction bundles — the debugging that took
   16+ person-hours by hand. This example runs all three campaigns on the
   synthetic CLOUDSC stand-in and saves the failing test cases to
   _cloudsc_cases/.

   Run with: dune exec examples/cloudsc_debugging.exe *)

let () =
  let program = Workloads.Cloudsc.build () in
  let symbols = Workloads.Cloudsc.default_symbols in
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 10; max_size = 12; concretization = symbols }
  in
  let campaigns =
    [
      ( "ExtractGpuKernels",
        Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Full_copy_back );
      ( "LoopUnrolling",
        Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Negative_step_sign_error );
      ( "WriteElimination",
        Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Ignore_system_state );
    ]
  in
  let dir = "_cloudsc_cases" in
  List.iter
    (fun (name, x) ->
      let sites = x.Transforms.Xform.find program in
      let failing = ref 0 in
      let first_trials = ref [] in
      List.iter
        (fun site ->
          let r = Fuzzyflow.Difftest.test_instance ~config program x site in
          match r.verdict with
          | Fuzzyflow.Difftest.Pass -> ()
          | Fuzzyflow.Difftest.Fail f ->
              incr failing;
              if f.first_trial > 0 then first_trials := f.first_trial :: !first_trials;
              (* emit the reproduction bundle for the first few failures *)
              if !failing <= 3 then begin
                (match Fuzzyflow.Testcase.of_report ~config ~original:program r with
                | Some tc ->
                    let files = Fuzzyflow.Testcase.save dir tc in
                    List.iter (fun f -> Printf.printf "    wrote %s\n" f) files
                | None -> ());
                (* where along the dataflow do values first diverge? *)
                match Fuzzyflow.Localize.of_report ~config ~original:program ~xform:x r with
                | Some (d :: _) ->
                    Format.printf "    first divergence: %a@." Fuzzyflow.Localize.pp_divergence d
                | _ -> ()
              end)
        sites;
      let mean_first =
        match !first_trials with
        | [] -> 0.
        | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
      in
      Printf.printf "%-20s %2d instances tested, %2d alter semantics" name (List.length sites)
        !failing;
      if !failing > 0 then Printf.printf " (mean first failing trial: %.1f)" mean_first;
      print_newline ())
    campaigns;
  Printf.printf "\nreproduction bundles in %s/ — each replays on a workstation with\n" dir;
  Printf.printf "Fuzzyflow.Testcase.replay; no supercomputer or full-size run needed.\n"
