(* Sec. 6.1: optimizing a BERT-style encoder.

   Vectorizes every loop nest of the multi-head-attention block, testing each
   instance with FuzzyFlow first (the workflow of Fig. 1). The vectorization
   carries DaCe's input-size-dependence bug, so instances are flagged unless
   the spans divide by the vector width. Also demonstrates the minimum
   input-flow cut: the scaling nest's inputs shrink from {tmp, scale} to
   {A, Bt, scale} — 75 % fewer input elements with the paper's shape
   relations (P = SM/8).

   Run with: dune exec examples/bert_vectorize.exe *)

let () =
  let program, state, scaling = Workloads.Bert.build_with_site () in
  let symbols = Workloads.Bert.default_symbols in
  Printf.printf "BERT encoder block, symbols:";
  List.iter (fun (s, v) -> Printf.printf " %s=%d" s v) symbols;
  print_newline ();

  (* --- minimum input-flow cut on the Fig. 5 scaling nest --- *)
  let cut =
    Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } program ~state
      ~nodes:[ scaling ]
  in
  let cut', stats = Fuzzyflow.Min_cut.minimize program cut ~symbols in
  Printf.printf "\nscaling-nest cutout inputs : {%s} = %d elements\n"
    (String.concat ", " cut.input_config) stats.original_elements;
  Printf.printf "after min input-flow cut   : {%s} = %d elements (%.0f%% reduction)\n"
    (String.concat ", " cut'.input_config) stats.minimized_elements
    (100. *. (1. -. (float_of_int stats.minimized_elements /. float_of_int stats.original_elements)));

  (* --- test every vectorization instance before applying (Fig. 1) --- *)
  let vec = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 15; max_size = 12; concretization = symbols }
  in
  print_endline "\ntesting each vectorization instance:";
  let sites = vec.find program in
  let applied = ref 0 in
  List.iter
    (fun site ->
      let r = Fuzzyflow.Difftest.test_instance ~config program vec site in
      (match r.verdict with
      | Fuzzyflow.Difftest.Pass ->
          incr applied;
          Format.printf "  %-40s PASS -> safe to apply for these sizes@."
            (Format.asprintf "%a" Transforms.Xform.pp_site site)
      | Fuzzyflow.Difftest.Fail f ->
          Format.printf "  %-40s FAIL (%s, trial %d)@."
            (Format.asprintf "%a" Transforms.Xform.pp_site site)
            (Fuzzyflow.Difftest.class_to_string f.klass)
            f.first_trial))
    sites;
  Printf.printf "%d/%d instances safe under varying sizes\n" !applied (List.length sites);

  (* --- fuzzing-strategy comparison on the scaling nest (Sec. 6.1) --- *)
  print_endline "\nfuzzing strategies on the scaling-nest instance:";
  let site =
    List.find (fun (s : Transforms.Xform.site) -> s.nodes = [ scaling ]) sites
  in
  let g' = Sdfg.Graph.copy program in
  let cs = vec.apply g' site in
  let cut = Fuzzyflow.Cutout.extract ~options:{ Fuzzyflow.Cutout.symbols } program cs in
  let transformed = Sdfg.Graph.copy cut.program in
  ignore (vec.apply transformed site);
  List.iter
    (fun mode ->
      let trials = ref [] in
      for seed = 1 to 10 do
        let r =
          Fuzzyflow.Fuzzer.run
            ~config:{ Fuzzyflow.Fuzzer.default_config with seed; max_trials = 300 }
            mode ~original:program ~cutout:cut ~transformed
        in
        match r.trials_to_failure with Some t -> trials := t :: !trials | None -> ()
      done;
      let mean =
        if !trials = [] then Float.nan
        else List.fold_left ( + ) 0 !trials |> float_of_int |> fun s -> s /. float_of_int (List.length !trials)
      in
      Printf.printf "  %-16s mean trials to discovery: %.1f (over %d seeds that found it)\n"
        (Fuzzyflow.Fuzzer.mode_to_string mode)
        mean (List.length !trials))
    [ Fuzzyflow.Fuzzer.Uniform; Fuzzyflow.Fuzzer.Coverage; Fuzzyflow.Fuzzer.Graybox ]
