(* The end-to-end workflow of Fig. 1: a performance engineer applies an
   aggressive transformation set across a whole application, with FuzzyFlow
   gating every instance. Buggy instances are rejected with a reproducible
   reason; the surviving program is verified to behave like the original.

   Run with: dune exec examples/guarded_optimize.exe *)

let () =
  let program = Workloads.Npbench.softmax () in
  let symbols = [ ("N", 8) ] in
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 12; max_size = 10; concretization = symbols }
  in
  (* the transformation set "as shipped" — including the seven bugs the paper
     found in DaCe's built-ins *)
  let xforms = Transforms.Registry.as_shipped () in
  Printf.printf "optimizing %s with %d transformations (shipped set, bugs included)\n\n"
    (Sdfg.Graph.name program) (List.length xforms);
  let optimized, log = Fuzzyflow.Pipeline.optimize ~config program xforms in
  Format.printf "%a@." Fuzzyflow.Pipeline.pp_log log;

  (* the gated result must behave exactly like the original *)
  let n = 8 in
  let inputs =
    [
      ("inp", Array.init (n * n) (fun i -> Float.sin (float_of_int i)));
      ("out", Array.make (n * n) 0.);
    ]
  in
  match
    ( Interp.Exec.run program ~symbols ~inputs,
      Interp.Exec.run optimized ~symbols ~inputs )
  with
  | Ok o1, Ok o2 ->
      let b1 = (Interp.Value.buffer o1.memory "out").data in
      let b2 = (Interp.Value.buffer o2.memory "out").data in
      let same = Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) b1 b2 in
      Printf.printf "optimized program %s the original (%d graph nodes vs %d)\n"
        (if same then "matches" else "DIVERGES FROM")
        (Sdfg.State.num_nodes (Sdfg.Graph.state optimized (Sdfg.Graph.start_state optimized)))
        (Sdfg.State.num_nodes (Sdfg.Graph.state program (Sdfg.Graph.start_state program)));
      if not same then exit 1
  | _ ->
      print_endline "a run failed";
      exit 1
