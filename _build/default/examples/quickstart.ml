(* Quickstart: find an optimization bug in three steps.

   We build the paper's motivating program (Fig. 2) — a matrix chain
   multiplication R = ((A·B)·C)·D — then test a tiling transformation with an
   off-by-one bound bug against it. FuzzyFlow extracts the second
   multiplication as a cutout (inputs {U, C}, system state {V}) and the
   differential fuzzer reports the divergence with a reproducible test case.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. a dataflow program (Fig. 2 of the paper) *)
  let program, state, mm2_entry = Workloads.Chain.build_with_site () in
  Printf.printf "program: %s (%d states, %d containers)\n"
    (Sdfg.Graph.name program)
    (List.length (Sdfg.Graph.state_ids program))
    (List.length (Sdfg.Graph.containers program));

  (* 2. a transformation to test: tiling with the <= bound bug *)
  let tiling = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
  let site =
    Transforms.Xform.dataflow_site ~state ~nodes:[ mm2_entry ] ~descr:"tile second matmul"
  in

  (* 3. run the FuzzyFlow pipeline: change isolation, cutout extraction,
     input minimization, gray-box differential fuzzing *)
  let config =
    {
      Fuzzyflow.Difftest.default_config with
      trials = 20;
      max_size = 10;
      concretization = [ ("N", 8) ];
    }
  in
  let report = Fuzzyflow.Difftest.test_instance ~config program tiling site in

  Format.printf "@.%a@.@." Fuzzyflow.Difftest.pp_report report;
  Format.printf "extracted %a@." Fuzzyflow.Cutout.pp report.cutout;

  (* the fault-inducing inputs are reproducible from the report *)
  (match Fuzzyflow.Testcase.of_report ~config ~original:program report with
  | Some tc ->
      print_newline ();
      print_string (Fuzzyflow.Testcase.render tc)
  | None -> print_endline "transformation passed — nothing to reproduce");

  (* sanity: the fixed transformation passes the same pipeline *)
  let fixed = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
  let report2 = Fuzzyflow.Difftest.test_instance ~config program fixed site in
  Format.printf "@.%a@." Fuzzyflow.Difftest.pp_report report2
