lib/workloads/sddmm.ml: Array Builder Dtype Graph Interp List Memlet Mpi_sim Node Sdfg Symbolic
