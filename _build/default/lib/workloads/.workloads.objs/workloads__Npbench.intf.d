lib/workloads/npbench.mli: Sdfg
