lib/workloads/fig4.mli: Sdfg
