lib/workloads/cloudsc.mli: Sdfg
