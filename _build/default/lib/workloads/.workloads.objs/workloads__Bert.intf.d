lib/workloads/bert.mli: Sdfg
