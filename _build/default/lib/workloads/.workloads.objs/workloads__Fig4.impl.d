lib/workloads/fig4.ml: Builder Dtype Graph List Printf Sdfg Symbolic
