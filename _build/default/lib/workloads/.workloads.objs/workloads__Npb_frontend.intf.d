lib/workloads/npb_frontend.mli: Sdfg
