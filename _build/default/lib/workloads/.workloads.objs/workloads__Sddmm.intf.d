lib/workloads/sddmm.mli: Sdfg
