lib/workloads/cloudsc.ml: Builder Dtype Graph List Memlet Node Printf Sdfg State Symbolic Tcode
