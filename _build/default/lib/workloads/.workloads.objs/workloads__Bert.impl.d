lib/workloads/bert.ml: Builder Dtype Graph List Memlet Sdfg Symbolic
