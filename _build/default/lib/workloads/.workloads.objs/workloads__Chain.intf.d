lib/workloads/chain.mli: Sdfg
