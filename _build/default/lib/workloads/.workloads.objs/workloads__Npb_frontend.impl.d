lib/workloads/npb_frontend.ml: Frontend List Sdfg
