lib/workloads/npbench.ml: Builder Chain Dtype Graph List Memlet Node Sdfg State Symbolic
