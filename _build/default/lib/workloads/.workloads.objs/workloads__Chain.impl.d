lib/workloads/chain.ml: Builder Dtype Graph List Memlet Sdfg Symbolic
