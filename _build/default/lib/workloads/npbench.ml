open Sdfg

let sym = Symbolic.Expr.sym
let ( -- ) a b = Symbolic.Expr.sub a b
let i1 = Symbolic.Expr.one
let mem = Builder.Build.mem
let mt = Builder.Build.mapped_tasklet

let fresh name =
  let g = Graph.create name in
  Graph.add_symbol g "N";
  g

let single_state g = Graph.state g (Graph.add_state g "main")

(* z = a * x + y *)
let axpy () =
  let g = fresh "axpy" in
  Graph.add_scalar g "a" Dtype.F64;
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y"; "z" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"axpy"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("a", mem "a" ""); ("xv", mem "x" "i"); ("yv", mem "y" "i") ]
       ~code:"o = a * xv + yv"
       ~outputs:[ ("o", mem "z" "i") ]
       ());
  g

(* y = a * x *)
let scale () =
  let g = fresh "scale" in
  Graph.add_scalar g "a" Dtype.F64;
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"scale"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("a", mem "a" ""); ("xv", mem "x" "i") ]
       ~code:"o = a * xv"
       ~outputs:[ ("o", mem "y" "i") ]
       ());
  g

(* out = sum(x), via the Reduce library operator *)
let sum1d () =
  let g = fresh "sum1d" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_scalar g "out" Dtype.F64;
  let st = single_state g in
  ignore
    (Builder.Build.library g st ~label:"sum" ~kind:(Node.Reduce (Memlet.Wcr_sum, [ 0 ]))
       ~inputs:[ ("in", mem "x" "0:N-1") ]
       ~outputs:[ ("out", mem "out" "") ]
       ());
  g

(* C = alpha * A@B + beta * C, contraction written as a WCR map *)
let gemm () =
  let g = fresh "gemm" in
  List.iter (fun s -> Graph.add_scalar g s Dtype.F64) [ "alpha"; "beta" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "A"; "B"; "C" ];
  Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N"; sym "N" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"contract"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("k", "0:N-1") ]
      ~inputs:[ ("a", mem "A" "i, k"); ("b", mem "B" "k, j") ]
      ~code:"o = a * b"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "tmp" "i, j") ]
      ()
  in
  ignore
    (mt g st ~label:"update"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:
         [
           ("al", mem "alpha" "");
           ("be", mem "beta" "");
           ("t", mem "tmp" "i, j");
           ("c", mem "C" "i, j");
         ]
       ~code:"o = al * t + be * c"
       ~outputs:[ ("o", mem "C" "i, j") ]
       ~input_nodes:[ ("tmp", List.assoc "tmp" m1.out_access) ]
       ());
  g

(* C = A@B via the MatMul library node *)
let mm_lib () =
  let g = fresh "mm_lib" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "A"; "B"; "C" ];
  let st = single_state g in
  ignore
    (Builder.Build.library g st ~label:"matmul" ~kind:Node.Mat_mul
       ~inputs:[ ("A", mem "A" "0:N-1, 0:N-1"); ("B", mem "B" "0:N-1, 0:N-1") ]
       ~outputs:[ ("C", mem "C" "0:N-1, 0:N-1") ]
       ());
  g

(* x1 += A @ y1;  x2 += A^T @ y2 *)
let mvt () =
  let g = fresh "mvt" in
  Graph.add_array g "A" Dtype.F64 [ sym "N"; sym "N" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x1"; "x2"; "y1"; "y2" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"mvt1"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("a", mem "A" "i, j"); ("y", mem "y1" "j") ]
       ~code:"o = a * y"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "x1" "i") ]
       ());
  ignore
    (mt g st ~label:"mvt2"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("a", mem "A" "j, i"); ("y", mem "y2" "j") ]
       ~code:"o = a * y"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "x2" "i") ]
       ());
  g

(* y = A^T @ (A @ x); the 1-D transient between the two products is a
   BufferTiling candidate *)
let atax () =
  let g = fresh "atax" in
  Graph.add_array g "A" Dtype.F64 [ sym "N"; sym "N" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y" ];
  Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"ax"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("a", mem "A" "i, j"); ("xv", mem "x" "j") ]
      ~code:"o = a * xv"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "tmp" "i") ]
      ()
  in
  ignore
    (mt g st ~label:"aty"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("a", mem "A" "j, i"); ("t", mem "tmp" "j") ]
       ~code:"o = a * t"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "y" "i") ]
       ~input_nodes:[ ("tmp", List.assoc "tmp" m1.out_access) ]
       ());
  g

(* s = A^T @ r;  q = A @ p *)
let bicg () =
  let g = fresh "bicg" in
  Graph.add_array g "A" Dtype.F64 [ sym "N"; sym "N" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "p"; "r"; "s"; "q" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"s"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("a", mem "A" "j, i"); ("rv", mem "r" "j") ]
       ~code:"o = a * rv"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "s" "i") ]
       ());
  ignore
    (mt g st ~label:"q"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("a", mem "A" "i, j"); ("pv", mem "p" "j") ]
       ~code:"o = a * pv"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "q" "i") ]
       ());
  g

(* A2 = A + u1 v1^T + u2 v2^T; x += beta * A2^T y; x += z; w += alpha * A2 x *)
let gemver () =
  let g = fresh "gemver" in
  List.iter (fun s -> Graph.add_scalar g s Dtype.F64) [ "alpha"; "beta" ];
  Graph.add_array g "A" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g ~transient:true "A2" Dtype.F64 [ sym "N"; sym "N" ];
  List.iter
    (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ])
    [ "u1"; "v1"; "u2"; "v2"; "x"; "y"; "z"; "w" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"rank2"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:
        [
          ("a", mem "A" "i, j");
          ("p", mem "u1" "i");
          ("q", mem "v1" "j");
          ("r", mem "u2" "i");
          ("s", mem "v2" "j");
        ]
      ~code:"o = a + p * q + r * s"
      ~outputs:[ ("o", mem "A2" "i, j") ]
      ()
  in
  let a2 = List.assoc "A2" m1.out_access in
  let m2 =
    mt g st ~label:"xupdate"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("be", mem "beta" ""); ("a", mem "A2" "j, i"); ("yv", mem "y" "j") ]
      ~code:"o = be * a * yv"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "x" "i") ]
      ~input_nodes:[ ("A2", a2) ]
      ()
  in
  let m3 =
    mt g st ~label:"xz"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("xv", mem "x" "i"); ("zv", mem "z" "i") ]
      ~code:"o = xv + zv"
      ~outputs:[ ("o", mem "x" "i") ]
      ~input_nodes:[ ("x", List.assoc "x" m2.out_access) ]
      ()
  in
  ignore
    (mt g st ~label:"wupdate"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("al", mem "alpha" ""); ("a", mem "A2" "i, j"); ("xv", mem "x" "j") ]
       ~code:"o = al * a * xv"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "w" "i") ]
       ~input_nodes:[ ("A2", a2); ("x", List.assoc "x" m3.out_access) ]
       ());
  g

(* D = (alpha * A@B) @ C + beta * D, with library matmuls *)
let two_mm () =
  let g = fresh "two_mm" in
  List.iter (fun s -> Graph.add_scalar g s Dtype.F64) [ "alpha"; "beta" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "A"; "B"; "C"; "D" ];
  List.iter
    (fun c -> Graph.add_array g ~transient:true c Dtype.F64 [ sym "N"; sym "N" ])
    [ "t1"; "t2"; "t3" ];
  let st = single_state g in
  let _, _, out1 =
    Builder.Build.library g st ~label:"mm1" ~kind:Node.Mat_mul
      ~inputs:[ ("A", mem "A" "0:N-1, 0:N-1"); ("B", mem "B" "0:N-1, 0:N-1") ]
      ~outputs:[ ("C", mem "t1" "0:N-1, 0:N-1") ]
      ()
  in
  let m2 =
    mt g st ~label:"scale_t1"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("al", mem "alpha" ""); ("t", mem "t1" "i, j") ]
      ~code:"o = al * t"
      ~outputs:[ ("o", mem "t2" "i, j") ]
      ~input_nodes:[ ("t1", List.assoc "t1" out1) ]
      ()
  in
  let _, _, out3 =
    Builder.Build.library g st ~label:"mm2" ~kind:Node.Mat_mul
      ~inputs:[ ("A", mem "t2" "0:N-1, 0:N-1"); ("B", mem "C" "0:N-1, 0:N-1") ]
      ~outputs:[ ("C", mem "t3" "0:N-1, 0:N-1") ]
      ~input_nodes:[ ("t2", List.assoc "t2" m2.out_access) ]
      ()
  in
  ignore
    (mt g st ~label:"dupdate"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("be", mem "beta" ""); ("t", mem "t3" "i, j"); ("d", mem "D" "i, j") ]
       ~code:"o = t + be * d"
       ~outputs:[ ("o", mem "D" "i, j") ]
       ~input_nodes:[ ("t3", List.assoc "t3" out3) ]
       ());
  g

(* G = (A@B) @ (C@D) *)
let three_mm () =
  let g = fresh "three_mm" in
  List.iter
    (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ])
    [ "A"; "B"; "C"; "D"; "G" ];
  List.iter
    (fun c -> Graph.add_array g ~transient:true c Dtype.F64 [ sym "N"; sym "N" ])
    [ "E"; "F" ];
  let st = single_state g in
  let full2 = "0:N-1, 0:N-1" in
  let _, _, oe =
    Builder.Build.library g st ~label:"mmE" ~kind:Node.Mat_mul
      ~inputs:[ ("A", mem "A" full2); ("B", mem "B" full2) ]
      ~outputs:[ ("C", mem "E" full2) ]
      ()
  in
  let _, _, of_ =
    Builder.Build.library g st ~label:"mmF" ~kind:Node.Mat_mul
      ~inputs:[ ("A", mem "C" full2); ("B", mem "D" full2) ]
      ~outputs:[ ("C", mem "F" full2) ]
      ()
  in
  ignore
    (Builder.Build.library g st ~label:"mmG" ~kind:Node.Mat_mul
       ~inputs:[ ("A", mem "E" full2); ("B", mem "F" full2) ]
       ~outputs:[ ("C", mem "G" full2) ]
       ~input_nodes:[ ("E", List.assoc "E" oe); ("F", List.assoc "F" of_) ]
       ());
  g

(* row-wise softmax with max-shift *)
let softmax () =
  let g = fresh "softmax" in
  Graph.add_array g "inp" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g "out" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g ~transient:true "rowmax" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "e" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g ~transient:true "rowsum" Dtype.F64 [ sym "N" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"rowmax"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("x", mem "inp" "i, j") ]
      ~code:"o = x"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_max "rowmax" "i") ]
      ()
  in
  let m2 =
    mt g st ~label:"exp"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("x", mem "inp" "i, j"); ("m", mem "rowmax" "i") ]
      ~code:"o = exp(x - m)"
      ~outputs:[ ("o", mem "e" "i, j") ]
      ~input_nodes:[ ("rowmax", List.assoc "rowmax" m1.out_access) ]
      ()
  in
  let e_acc = List.assoc "e" m2.out_access in
  let m3 =
    mt g st ~label:"rowsum"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("x", mem "e" "i, j") ]
      ~code:"o = x"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "rowsum" "i") ]
      ~input_nodes:[ ("e", e_acc) ]
      ()
  in
  ignore
    (mt g st ~label:"normalize"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("x", mem "e" "i, j"); ("s", mem "rowsum" "i") ]
       ~code:"o = x / s"
       ~outputs:[ ("o", mem "out" "i, j") ]
       ~input_nodes:[ ("e", e_acc); ("rowsum", List.assoc "rowsum" m3.out_access) ]
       ());
  g

(* T steps of the 1-D Jacobi smoother, alternating A -> B -> A *)
let jacobi_1d () =
  let g = fresh "jacobi_1d" in
  Graph.add_symbol g "T";
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "A"; "B" ];
  let s0 = Graph.add_state g "init" in
  let _, body, _ =
    Builder.Build.for_loop g ~entry_from:s0 ~var:"t" ~init:Symbolic.Expr.zero
      ~cond:(Symbolic.Cond.Lt (sym "t", sym "T"))
      ~update:(Symbolic.Expr.add (sym "t") i1)
      ~body_label:"step" ~after_label:"done"
  in
  let st = Graph.state g body in
  let m1 =
    mt g st ~label:"fwd"
      ~map:[ ("i", "1:N-2") ]
      ~inputs:[ ("a", mem "A" "i-1"); ("b", mem "A" "i"); ("c", mem "A" "i+1") ]
      ~code:"o = 0.33333 * (a + b + c)"
      ~outputs:[ ("o", mem "B" "i") ]
      ()
  in
  ignore
    (mt g st ~label:"bwd"
       ~map:[ ("i", "1:N-2") ]
       ~inputs:[ ("a", mem "B" "i-1"); ("b", mem "B" "i"); ("c", mem "B" "i+1") ]
       ~code:"o = 0.33333 * (a + b + c)"
       ~outputs:[ ("o", mem "A" "i") ]
       ~input_nodes:[ ("B", List.assoc "B" m1.out_access) ]
       ());
  g

(* T steps of the 2-D Jacobi smoother *)
let jacobi_2d () =
  let g = fresh "jacobi_2d" in
  Graph.add_symbol g "T";
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "A"; "B" ];
  let s0 = Graph.add_state g "init" in
  let _, body, _ =
    Builder.Build.for_loop g ~entry_from:s0 ~var:"t" ~init:Symbolic.Expr.zero
      ~cond:(Symbolic.Cond.Lt (sym "t", sym "T"))
      ~update:(Symbolic.Expr.add (sym "t") i1)
      ~body_label:"step" ~after_label:"done"
  in
  let st = Graph.state g body in
  let stencil out inp dep =
    mt g st ~label:("jac_" ^ out)
      ~map:[ ("i", "1:N-2"); ("j", "1:N-2") ]
      ~inputs:
        [
          ("c", mem inp "i, j");
          ("n", mem inp "i-1, j");
          ("s", mem inp "i+1, j");
          ("w", mem inp "i, j-1");
          ("e", mem inp "i, j+1");
        ]
      ~code:"o = 0.2 * (c + n + s + w + e)"
      ~outputs:[ ("o", mem out "i, j") ]
      ?input_nodes:dep ()
  in
  let m1 = stencil "B" "A" None in
  ignore (stencil "A" "B" (Some [ ("B", List.assoc "B" m1.out_access) ]));
  g

(* simplified 2-D FDTD time loop (three coupled stencil updates per step) *)
let fdtd_2d () =
  let g = fresh "fdtd_2d" in
  Graph.add_symbol g "T";
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "ex"; "ey"; "hz" ];
  let s0 = Graph.add_state g "init" in
  let _, body, _ =
    Builder.Build.for_loop g ~entry_from:s0 ~var:"t" ~init:Symbolic.Expr.zero
      ~cond:(Symbolic.Cond.Lt (sym "t", sym "T"))
      ~update:(Symbolic.Expr.add (sym "t") i1)
      ~body_label:"tick" ~after_label:"done"
  in
  let st = Graph.state g body in
  let m1 =
    mt g st ~label:"ey_up"
      ~map:[ ("i", "1:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("e", mem "ey" "i, j"); ("h", mem "hz" "i, j"); ("hm", mem "hz" "i-1, j") ]
      ~code:"o = e - 0.5 * (h - hm)"
      ~outputs:[ ("o", mem "ey" "i, j") ]
      ()
  in
  let m2 =
    mt g st ~label:"ex_up"
      ~map:[ ("i", "0:N-1"); ("j", "1:N-1") ]
      ~inputs:[ ("e", mem "ex" "i, j"); ("h", mem "hz" "i, j"); ("hm", mem "hz" "i, j-1") ]
      ~code:"o = e - 0.5 * (h - hm)"
      ~outputs:[ ("o", mem "ex" "i, j") ]
      ()
  in
  ignore
    (mt g st ~label:"hz_up"
       ~map:[ ("i", "0:N-2"); ("j", "0:N-2") ]
       ~inputs:
         [
           ("h", mem "hz" "i, j");
           ("exv", mem "ex" "i, j+1");
           ("ex0", mem "ex" "i, j");
           ("eyv", mem "ey" "i+1, j");
           ("ey0", mem "ey" "i, j");
         ]
       ~code:"o = h - 0.7 * (exv - ex0 + eyv - ey0)"
       ~outputs:[ ("o", mem "hz" "i, j") ]
       ~input_nodes:
         [ ("ex", List.assoc "ex" m2.out_access); ("ey", List.assoc "ey" m1.out_access) ]
       ());
  g

(* one 5-point stencil application *)
let stencil5 () =
  let g = fresh "stencil5" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "inp"; "out" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"stencil"
       ~map:[ ("i", "1:N-2"); ("j", "1:N-2") ]
       ~inputs:
         [
           ("c", mem "inp" "i, j");
           ("n", mem "inp" "i-1, j");
           ("s", mem "inp" "i+1, j");
           ("w", mem "inp" "i, j-1");
           ("e", mem "inp" "i, j+1");
         ]
       ~code:"o = c + 0.25 * (n + s + w + e)"
       ~outputs:[ ("o", mem "out" "i, j") ]
       ());
  g

(* 3x3 convolution as a 4-parameter WCR map *)
let conv2d () =
  let g = fresh "conv2d" in
  let np2 = Symbolic.Expr.add (sym "N") (Symbolic.Expr.int 2) in
  Graph.add_array g "inp" Dtype.F64 [ np2; np2 ];
  Graph.add_array g "w" Dtype.F64 [ Symbolic.Expr.int 3; Symbolic.Expr.int 3 ];
  Graph.add_array g "out" Dtype.F64 [ sym "N"; sym "N" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"conv"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("ki", "0:2"); ("kj", "0:2") ]
       ~inputs:[ ("x", mem "inp" "i+ki, j+kj"); ("wv", mem "w" "ki, kj") ]
       ~code:"o = x * wv"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "out" "i, j") ]
       ());
  g

(* pairwise 1-D gravitational forces; the i != j guard is a Select coverage
   point *)
let nbody_force () =
  let g = fresh "nbody_force" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "pos"; "mass"; "force" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"forces"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:
         [
           ("xi", mem "pos" "i");
           ("xj", mem "pos" "j");
           ("mi", mem "mass" "i");
           ("mj", mem "mass" "j");
         ]
       ~code:"d = xj - xi; o = select(i != j, mi * mj * d / (abs(d * d * d) + 0.001), 0.0)"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "force" "i") ]
       ());
  g

(* two chained tasklets over a transient element buffer inside one map scope:
   the canonical TaskletFusion site *)
let go_fast () =
  let g = fresh "go_fast" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y" ];
  Graph.add_array g ~transient:true "t" Dtype.F64 [ sym "N" ];
  let st = single_state g in
  let m =
    mt g st ~label:"stage1"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("xv", mem "x" "i") ]
      ~code:"o = tanh(xv) + 1.0"
      ~outputs:[ ("o", mem "t" "i") ]
      ()
  in
  (* second tasklet inside the same scope, fed through the transient *)
  let t2 = State.add_node st (Node.tasklet "stage2" "o = tv * tv") in
  let tacc = State.add_node st (Node.Access "t") in
  let yacc = State.add_node st (Node.Access "y") in
  ignore (State.add_edge st ~src_conn:"o" ~memlet:(mem "t" "i") m.tasklet tacc);
  ignore (State.add_edge st ~dst_conn:"tv" ~memlet:(mem "t" "i") tacc t2);
  ignore (State.add_edge st ~src_conn:"o" ~dst_conn:"IN_y" ~memlet:(mem "y" "i") t2 m.exit);
  ignore
    (State.add_edge st ~src_conn:"OUT_y" ~memlet:(mem "y" "0:N-1") m.exit yacc);
  (* drop the original direct write of stage1 to t at the exit *)
  List.iter
    (fun (e : State.edge) ->
      match e.memlet with
      | Some mm when mm.data = "t" && e.src = m.tasklet && e.dst = m.exit -> State.remove_edge st e.e_id
      | _ -> ())
    (State.edges st);
  List.iter
    (fun (e : State.edge) ->
      match e.memlet with
      | Some mm when mm.data = "t" && e.src = m.exit -> State.remove_edge st e.e_id
      | _ -> ())
    (State.edges st);
  (* remove the now-disconnected outer access node for t *)
  List.iter
    (fun (id, n) ->
      match n with
      | Node.Access "t" when State.in_edges st id = [] && State.out_edges st id = [] ->
          State.remove_node st id
      | _ -> ())
    (State.nodes st);
  g

(* like go_fast, but the transient is read again in a later state: the buggy
   TaskletFusion drops a live write here *)
let fusion_live () =
  let g = go_fast () in
  let sid = Graph.start_state g in
  Graph.add_array g "z" Dtype.F64 [ sym "N" ];
  let s2 = Graph.add_state_after g sid "reuse" in
  let st2 = Graph.state g s2 in
  ignore
    (mt g st2 ~label:"reuse_t"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("tv", mem "t" "i") ]
       ~code:"o = tv + 1.0"
       ~outputs:[ ("o", mem "z" "i") ]
       ());
  g

(* interstate symbol aliasing with a later redefinition: the
   SymbolAliasPromotion clobber site *)
let alias_chain () =
  let g = fresh "alias_chain" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y"; "w" ];
  let s0 = Graph.add_state g "start" in
  let s1 = Graph.add_state g "first" in
  let s2 = Graph.add_state g "second" in
  let s3 = Graph.add_state g "third" in
  (* off := N-1; off2 := off; off := 0; use both *)
  ignore (Graph.add_istate_edge g ~assigns:[ ("off", sym "N" -- i1) ] s0 s1);
  ignore (Graph.add_istate_edge g ~assigns:[ ("off2", sym "off") ] s1 s2);
  ignore (Graph.add_istate_edge g ~assigns:[ ("off", Symbolic.Expr.zero) ] s2 s3);
  let st1 = Graph.state g s1 in
  ignore
    (mt g st1 ~label:"use_off" ~inputs:[ ("xv", mem "x" "off") ] ~code:"o = xv * 2.0"
       ~outputs:[ ("o", mem "y" "off") ]
       ());
  let st3 = Graph.state g s3 in
  ignore
    (mt g st3 ~label:"use_both"
       ~inputs:[ ("a", mem "x" "off"); ("b", mem "x" "off2") ]
       ~code:"o = a + b"
       ~outputs:[ ("o", mem "w" "off2") ]
       ());
  g

(* y += (mask * A) @ x, a dense formulation of SpMV *)
let spmv_dense () =
  let g = fresh "spmv_dense" in
  Graph.add_array g "A" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g "mask" Dtype.F64 [ sym "N"; sym "N" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y" ];
  let st = single_state g in
  ignore
    (mt g st ~label:"spmv"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
       ~inputs:[ ("m", mem "mask" "i, j"); ("a", mem "A" "i, j"); ("xv", mem "x" "j") ]
       ~code:"o = m * a * xv"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "y" "i") ]
       ());
  g

(* column means, centering, and the covariance contraction *)
let covariance () =
  let g = fresh "covariance" in
  Graph.add_array g "data" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g "cov" Dtype.F64 [ sym "N"; sym "N" ];
  Graph.add_array g ~transient:true "meanv" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "cent" Dtype.F64 [ sym "N"; sym "N" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"mean"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("d", mem "data" "i, j") ]
      ~code:"o = d / N"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "meanv" "j") ]
      ()
  in
  let m2 =
    mt g st ~label:"center"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1") ]
      ~inputs:[ ("d", mem "data" "i, j"); ("m", mem "meanv" "j") ]
      ~code:"o = d - m"
      ~outputs:[ ("o", mem "cent" "i, j") ]
      ~input_nodes:[ ("meanv", List.assoc "meanv" m1.out_access) ]
      ()
  in
  ignore
    (mt g st ~label:"contract"
       ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("k", "0:N-1") ]
       ~inputs:[ ("a", mem "cent" "k, i"); ("b", mem "cent" "k, j") ]
       ~code:"o = a * b / max(N - 1, 1)"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "cov" "i, j") ]
       ~input_nodes:[ ("cent", List.assoc "cent" m2.out_access) ]
       ());
  g

(* a vertical-advection-style chain of dependent elementwise updates *)
let vadv_chain () =
  let g = fresh "vadv_chain" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "wfield"; "ccol"; "dcol"; "res" ];
  Graph.add_array g ~transient:true "gav" Dtype.F64 [ sym "N" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"gav"
      ~map:[ ("i", "1:N-1") ]
      ~inputs:[ ("w", mem "wfield" "i") ]
      ~code:"o = -0.25 * w"
      ~outputs:[ ("o", mem "gav" "i") ]
      ()
  in
  let m2 =
    mt g st ~label:"ccol"
      ~map:[ ("i", "1:N-1") ]
      ~inputs:[ ("gv", mem "gav" "i") ]
      ~code:"o = gv * 0.5"
      ~outputs:[ ("o", mem "ccol" "i") ]
      ~input_nodes:[ ("gav", List.assoc "gav" m1.out_access) ]
      ()
  in
  ignore
    (mt g st ~label:"res"
       ~map:[ ("i", "1:N-1") ]
       ~inputs:[ ("c", mem "ccol" "i"); ("d", mem "dcol" "i") ]
       ~code:"o = d - c"
       ~outputs:[ ("o", mem "res" "i") ]
       ~input_nodes:[ ("ccol", List.assoc "ccol" m2.out_access) ]
       ());
  g

(* the Fig. 2 matrix chain R = ((A B) C) D, WCR-map formulation *)
let matmul_chain () = Chain.build ()

(* integer/bool mix: thresholding with an i32 accumulator *)
let crc_mix () =
  let g = fresh "crc_mix" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_array g "bits" Dtype.I32 [ sym "N" ];
  Graph.add_scalar g "count" Dtype.I64;
  let st = single_state g in
  let m1 =
    mt g st ~label:"threshold"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("xv", mem "x" "i") ]
      ~code:"o = select(xv > 0.5, 1.0, 0.0)"
      ~outputs:[ ("o", mem "bits" "i") ]
      ()
  in
  ignore
    (mt g st ~label:"popcount"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("b", mem "bits" "i") ]
       ~code:"o = b"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "count" "") ]
       ~input_nodes:[ ("bits", List.assoc "bits" m1.out_access) ]
       ());
  g

(* squares into a transient, then a library reduction: the MapReduceFusion
   pattern *)
let l2norm () =
  let g = fresh "l2norm" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_scalar g "out" Dtype.F64;
  Graph.add_array g ~transient:true "sq" Dtype.F64 [ sym "N" ];
  let st = single_state g in
  let m1 =
    mt g st ~label:"square"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("xv", mem "x" "i") ]
      ~code:"o = xv * xv"
      ~outputs:[ ("o", mem "sq" "i") ]
      ()
  in
  ignore
    (Builder.Build.library g st ~label:"sum_sq" ~kind:(Node.Reduce (Memlet.Wcr_sum, [ 0 ]))
       ~inputs:[ ("in", mem "sq" "0:N-1") ]
       ~outputs:[ ("out", mem "out" "") ]
       ~input_nodes:[ ("sq", List.assoc "sq" m1.out_access) ]
       ());
  g

(* a whole-array copy of a read-only input: the RedundantArrayRemoval site *)
let copy_chain () =
  let g = fresh "copy_chain" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N" ]) [ "x"; "y" ];
  Graph.add_array g ~transient:true "xc" Dtype.F64 [ sym "N" ];
  let st = single_state g in
  let _, xc_node = Builder.Build.copy g st ~src:"x" ~dst:"xc" () in
  ignore
    (mt g st ~label:"use_copy"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", mem "xc" "i") ]
       ~code:"o = v * 2.0"
       ~outputs:[ ("o", mem "y" "i") ]
       ~input_nodes:[ ("xc", xc_node) ]
       ());
  g

(* a hand-built perfect map nest: the MapCollapse site *)
let nested_scale () =
  let g = fresh "nested_scale" in
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ sym "N"; sym "N" ]) [ "x"; "y" ];
  let st = single_state g in
  let xin = State.add_node st (Node.Access "x") in
  let yout = State.add_node st (Node.Access "y") in
  let range () = Symbolic.Subset.dim Symbolic.Expr.zero (sym "N" -- i1) in
  let outer =
    State.add_node st
      (Node.Map_entry
         { label = "rows"; params = [ "i" ]; ranges = [ range () ]; schedule = Node.Sequential })
  in
  let oexit = State.add_node st (Node.Map_exit { entry = outer }) in
  let inner =
    State.add_node st
      (Node.Map_entry
         { label = "cols"; params = [ "j" ]; ranges = [ range () ]; schedule = Node.Sequential })
  in
  let iexit = State.add_node st (Node.Map_exit { entry = inner }) in
  let t = State.add_node st (Node.tasklet "scale2" "o = v * 2.0") in
  let full = mem "x" "0:N-1, 0:N-1" in
  let fully = mem "y" "0:N-1, 0:N-1" in
  ignore (State.add_edge st ~dst_conn:"IN_x" ~memlet:full xin outer);
  ignore (State.add_edge st ~src_conn:"OUT_x" ~dst_conn:"IN_x" ~memlet:full outer inner);
  ignore (State.add_edge st ~src_conn:"OUT_x" ~dst_conn:"v" ~memlet:(mem "x" "i, j") inner t);
  ignore (State.add_edge st ~src_conn:"o" ~dst_conn:"IN_y" ~memlet:(mem "y" "i, j") t iexit);
  ignore (State.add_edge st ~src_conn:"OUT_y" ~dst_conn:"IN_y" ~memlet:fully iexit oexit);
  ignore (State.add_edge st ~src_conn:"OUT_y" ~memlet:fully oexit yout);
  g

let all () =
  [
    ("axpy", axpy ());
    ("scale", scale ());
    ("sum1d", sum1d ());
    ("gemm", gemm ());
    ("mm_lib", mm_lib ());
    ("mvt", mvt ());
    ("atax", atax ());
    ("bicg", bicg ());
    ("gemver", gemver ());
    ("2mm", two_mm ());
    ("3mm", three_mm ());
    ("softmax", softmax ());
    ("jacobi_1d", jacobi_1d ());
    ("jacobi_2d", jacobi_2d ());
    ("fdtd_2d", fdtd_2d ());
    ("stencil5", stencil5 ());
    ("conv2d", conv2d ());
    ("nbody_force", nbody_force ());
    ("go_fast", go_fast ());
    ("fusion_live", fusion_live ());
    ("alias_chain", alias_chain ());
    ("spmv_dense", spmv_dense ());
    ("covariance", covariance ());
    ("vadv_chain", vadv_chain ());
    ("matmul_chain", matmul_chain ());
    ("crc_mix", crc_mix ());
    ("l2norm", l2norm ());
    ("copy_chain", copy_chain ());
    ("nested_scale", nested_scale ());
  ]
