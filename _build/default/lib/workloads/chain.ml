open Sdfg

let build_with_site () =
  let g = Graph.create "matmul_chain" in
  let n = Symbolic.Expr.sym "N" in
  Graph.add_symbol g "N";
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ n; n ]) [ "A"; "B"; "C"; "D"; "R" ];
  List.iter (fun c -> Graph.add_array g ~transient:true c Dtype.F64 [ n; n ]) [ "U"; "V" ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  let mem = Builder.Build.mem in
  let mm label x y out ?input_nodes () =
    Builder.Build.mapped_tasklet g st ~label
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("k", "0:N-1") ]
      ~inputs:[ ("a", mem x "i, k"); ("b", mem y "k, j") ]
      ~code:"o = a * b"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum out "i, j") ]
      ?input_nodes ()
  in
  let m1 = mm "mm1" "A" "B" "U" () in
  let m2 = mm "mm2" "U" "C" "V" ~input_nodes:[ ("U", List.assoc "U" m1.out_access) ] () in
  let m3 = mm "mm3" "V" "D" "R" ~input_nodes:[ ("V", List.assoc "V" m2.out_access) ] () in
  ignore m3;
  (g, sid, m2.entry)

let build () =
  let g, _, _ = build_with_site () in
  g
