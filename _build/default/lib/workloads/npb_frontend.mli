(** NPBench kernels written in the {!Frontend.Lang} source language.

    These extend the builder-based suite of {!Npbench} toward the paper's 52
    applications and double as end-to-end exercise of the textual frontend:
    every kernel is compiled from source at construction time. *)

val sources : (string * string) list
(** Kernel name and program text. *)

val all : unit -> (string * Sdfg.Graph.t) list
(** Compiled and validated. Compilation failures raise {!Frontend.Lang.Error}
    — the test suite pins every kernel. *)
