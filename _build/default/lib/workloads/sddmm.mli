(** Sampled Dense-Dense Matrix Multiplication from Vanilla Attention
    (Sec. 6.2, Fig. 6).

    The per-rank program computes, for a local row block,
    values\[i,j\] += mask\[i,j\] · Σ_k H1\[i,k\]·H2\[j,k\], where H2 arrives
    via broadcast and the result is summed with an allreduce. (The paper's
    CSR indices become a dense mask here — an equivalent dataflow with only
    affine accesses, see DESIGN.md.)

    The cutout of the SDDMM kernel excludes both collectives, so a
    transformation on it is tested on a single simulated rank. *)

(** The per-rank program. Symbols: LROWS (local rows), NCOLS, K. Containers:
    H1 \[LROWS,K\], H2 \[NCOLS,K\], mask \[LROWS,NCOLS\],
    values \[LROWS,NCOLS\]. Also returns the state id and kernel map entry
    (the transformation site). *)
val rank_program : unit -> Sdfg.Graph.t * int * int

(** [distributed ~ranks ~rows ~cols ~k ~h1 ~h2 ~mask] runs the full simulated
    multi-node pipeline: scatter H1 row blocks, broadcast H2, run each rank's
    program through the interpreter, allreduce the (zero-padded global)
    results. Returns the global values matrix.
    @raise Invalid_argument when [rows] is not divisible by [ranks]. *)
val distributed :
  ranks:int ->
  rows:int ->
  cols:int ->
  k:int ->
  h1:float array ->
  h2:float array ->
  mask:float array ->
  float array

(** Single-process reference implementation for checking the simulation. *)
val reference :
  rows:int -> cols:int -> k:int -> h1:float array -> h2:float array -> mask:float array ->
  float array
