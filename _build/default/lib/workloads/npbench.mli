(** NPBench-style kernel suite (Sec. 6.3).

    Re-implementations of representative NPBench benchmarks against this
    repository's IR builder. Together they cover every program feature the
    campaign exercises: elementwise maps, write-conflict reductions, library
    operators, transient intermediates, multi-state time loops, interstate
    symbol arithmetic, and data-dependent selects.

    Each builder returns a validated, runnable {!Sdfg.Graph.t}. [all]
    enumerates the suite with its canonical names. *)

val all : unit -> (string * Sdfg.Graph.t) list

(** Individual kernels (see [all] for the full set). *)

val axpy : unit -> Sdfg.Graph.t
val scale : unit -> Sdfg.Graph.t
val sum1d : unit -> Sdfg.Graph.t
val gemm : unit -> Sdfg.Graph.t
val mm_lib : unit -> Sdfg.Graph.t
val mvt : unit -> Sdfg.Graph.t
val atax : unit -> Sdfg.Graph.t
val bicg : unit -> Sdfg.Graph.t
val gemver : unit -> Sdfg.Graph.t
val two_mm : unit -> Sdfg.Graph.t
val three_mm : unit -> Sdfg.Graph.t
val softmax : unit -> Sdfg.Graph.t
val jacobi_1d : unit -> Sdfg.Graph.t
val jacobi_2d : unit -> Sdfg.Graph.t
val fdtd_2d : unit -> Sdfg.Graph.t
val stencil5 : unit -> Sdfg.Graph.t
val conv2d : unit -> Sdfg.Graph.t
val nbody_force : unit -> Sdfg.Graph.t
val go_fast : unit -> Sdfg.Graph.t
val fusion_live : unit -> Sdfg.Graph.t
val alias_chain : unit -> Sdfg.Graph.t
val spmv_dense : unit -> Sdfg.Graph.t
val covariance : unit -> Sdfg.Graph.t
val vadv_chain : unit -> Sdfg.Graph.t
val matmul_chain : unit -> Sdfg.Graph.t
val crc_mix : unit -> Sdfg.Graph.t
val l2norm : unit -> Sdfg.Graph.t
val copy_chain : unit -> Sdfg.Graph.t
val nested_scale : unit -> Sdfg.Graph.t
