open Sdfg

let default_symbols = [ ("KLEV", 10); ("KLON", 12) ]

let sym = Symbolic.Expr.sym
let mem = Builder.Build.mem
let mt = Builder.Build.mapped_tasklet

(* One microphysics-like kernel: a parallel map over (part of) the grid. When
   [partial] is set the kernel writes only levels 0..KLEV-2 — the sub-region
   writes that expose the GPU extraction bug. *)
let kernel g st ~label ~partial ~code ~ins ~out ?input_nodes () =
  let krange = if partial then "0:KLEV-2" else "0:KLEV-1" in
  mt g st ~label ~schedule:Node.Parallel
    ~map:[ ("k", krange); ("c", "0:KLON-1") ]
    ~inputs:(List.map (fun (conn, data) -> (conn, mem data "k, c")) ins)
    ~code
    ~outputs:[ ("o", mem out "k, c") ]
    ?input_nodes ()

let build () =
  let g = Graph.create "cloudsc_synth" in
  List.iter (Graph.add_symbol g) [ "KLEV"; "KLON" ];
  let shape = [ sym "KLEV"; sym "KLON" ] in
  (* prognostic fields (externally visible state) *)
  List.iter
    (fun c -> Graph.add_array g c Dtype.F64 shape)
    [ "t"; "q"; "ql"; "qi"; "lude"; "supsat"; "tend_t"; "tend_q"; "fplsl"; "fplsn" ];
  (* transients *)
  List.iter
    (fun c -> Graph.add_array g ~transient:true c Dtype.F64 shape)
    [ "zliq"; "zice"; "zcond"; "zevap"; "zfall"; "corr" ];
  Graph.add_array g ~transient:true "zsum" Dtype.F64 [ sym "KLON" ];

  (* phase 1: saturation adjustment — four parallel kernels, three of which
     write partial level ranges *)
  let s1 = Graph.add_state g "saturation" in
  let st1 = Graph.state g s1 in
  let k1 =
    kernel g st1 ~label:"liq_frac" ~partial:false ~code:"o = max(0.0, tv - 273.15) * 0.05"
      ~ins:[ ("tv", "t") ] ~out:"zliq" ()
  in
  let k2 =
    kernel g st1 ~label:"ice_frac" ~partial:true ~code:"o = max(0.0, 273.15 - tv) * 0.05"
      ~ins:[ ("tv", "t") ] ~out:"zice" ()
  in
  let k3 =
    kernel g st1 ~label:"condense" ~partial:true ~code:"o = max(qv - sv, 0.0) * 0.5"
      ~ins:[ ("qv", "q"); ("sv", "supsat") ]
      ~out:"zcond" ()
  in
  ignore
    (kernel g st1 ~label:"cloud_liq" ~partial:true ~code:"o = lv + zl * 0.3 + zc * 0.2"
       ~ins:[ ("lv", "ql"); ("zl", "zliq"); ("zc", "zcond") ]
       ~out:"ql"
       ~input_nodes:
         [ ("zliq", List.assoc "zliq" k1.out_access); ("zcond", List.assoc "zcond" k3.out_access) ]
       ());
  ignore
    (kernel g st1 ~label:"cloud_ice" ~partial:true ~code:"o = iv + zi * 0.3"
       ~ins:[ ("iv", "qi"); ("zi", "zice") ]
       ~out:"qi"
       ~input_nodes:[ ("zice", List.assoc "zice" k2.out_access) ]
       ());

  (* phase 2: evaporation with a chained transient (write-elimination sites).
     corr is written through a two-tasklet chain inside the map; corr is read
     again in phase 4 -> dropping the write is a caught bug. *)
  let s2 = Graph.add_state_after g s1 "evaporation" in
  let st2 = Graph.state g s2 in
  let ev =
    kernel g st2 ~label:"evap_base" ~partial:false ~code:"o = max(sv * 0.1, 0.0)"
      ~ins:[ ("sv", "supsat") ] ~out:"zevap" ()
  in
  (* chain a second tasklet through a volume-1 transient inside the scope *)
  let chain st (m : Builder.Build.mapped) ~tmp ~out ~code2 =
    let t2 = State.add_node st (Node.tasklet "chain2" code2) in
    let tacc = State.add_node st (Node.Access tmp) in
    let oacc = State.add_node st (Node.Access out) in
    ignore (State.add_edge st ~src_conn:"o2" ~memlet:(mem tmp "k, c") m.tasklet tacc);
    ignore (State.add_edge st ~dst_conn:"tv" ~memlet:(mem tmp "k, c") tacc t2);
    ignore (State.add_edge st ~src_conn:"o" ~dst_conn:("IN_" ^ out) ~memlet:(mem out "k, c") t2 m.exit);
    ignore
      (State.add_edge st ~src_conn:("OUT_" ^ out)
         ~memlet:(mem out "0:KLEV-1, 0:KLON-1") m.exit oacc)
  in
  (* extend evap_base's tasklet with a second output and chain through corr *)
  (match State.node st2 ev.tasklet with
  | Node.Tasklet { label; code } ->
      let extra = ("o2", Tcode.Bin (Tcode.Mul, Tcode.Ref "o", Tcode.Fconst 0.5)) in
      let code' = Tcode.make (code.Tcode.assignments @ [ extra ]) in
      State.replace_node st2 ev.tasklet (Node.Tasklet { label; code = code' })
  | _ -> assert false);
  chain st2 ev ~tmp:"corr" ~out:"tend_q" ~code2:"o = tv + 0.01";

  (* phase 3: a negative-step constant loop over the topmost 4 levels (the
     unrolling bug target) plus a forward constant loop *)
  let _, body, after =
    Builder.Build.for_loop g ~entry_from:s2 ~var:"lev" ~init:(Symbolic.Expr.int 4)
      ~cond:(Symbolic.Cond.Ge (sym "lev", Symbolic.Expr.one))
      ~update:(Symbolic.Expr.sub (sym "lev") Symbolic.Expr.one)
      ~body_label:"sediment" ~after_label:"sediment_done"
  in
  let stb = Graph.state g body in
  ignore
    (mt g stb ~label:"fall"
       ~map:[ ("c", "0:KLON-1") ]
       ~inputs:[ ("f", mem "zfall" "lev, c"); ("lv", mem "ql" "lev, c") ]
       ~code:"o = f * 0.9 + lv * 0.1"
       ~outputs:[ ("o", mem "zfall" "lev-1, c") ]
       ());
  let _, body2, after2 =
    Builder.Build.for_loop g ~entry_from:after ~var:"it" ~init:Symbolic.Expr.zero
      ~cond:(Symbolic.Cond.Lt (sym "it", Symbolic.Expr.int 3))
      ~update:(Symbolic.Expr.add (sym "it") Symbolic.Expr.one)
      ~body_label:"relax" ~after_label:"relax_done"
  in
  let stb2 = Graph.state g body2 in
  ignore
    (mt g stb2 ~label:"relax_step"
       ~map:[ ("c", "0:KLON-1") ]
       ~inputs:[ ("v", mem "zsum" "c") ]
       ~code:"o = v * 0.5"
       ~outputs:[ ("o", mem "zsum" "c") ]
       ());

  (* phase 4: flux accumulation — reads corr (keeping its write live) and
     produces the surface fluxes; two more partial-writing parallel kernels *)
  let s4 = Graph.add_state_after g after2 "fluxes" in
  let st4 = Graph.state g s4 in
  (* the flux kernels write their outputs without reading them, over partial
     level ranges: exactly the Fig. 7 situation *)
  ignore
    (kernel g st4 ~label:"flux_liq" ~partial:true ~code:"o = zf * 0.4 + cr * 0.1"
       ~ins:[ ("zf", "zfall"); ("cr", "corr") ]
       ~out:"fplsl" ());
  ignore
    (kernel g st4 ~label:"flux_ice" ~partial:true ~code:"o = zi * 0.2"
       ~ins:[ ("zi", "zice") ]
       ~out:"fplsn" ());
  ignore
    (kernel g st4 ~label:"tend_heat" ~partial:false ~code:"o = tt + ev * 0.05"
       ~ins:[ ("tt", "tend_t"); ("ev", "zevap") ]
       ~out:"tend_t" ());

  (* phase 5: diagnostics, mostly partial write-only kernels over external
     fields (the GPU-extraction failure majority), a few full writers that
     survive extraction *)
  List.iter (fun c -> Graph.add_array g c Dtype.F64 shape)
    [ "diag_rain"; "diag_snow"; "diag_cover"; "diag_rh"; "diag_lwc"; "diag_iwc" ];
  let s5 = Graph.add_state_after g s4 "diagnostics" in
  let st5 = Graph.state g s5 in
  ignore
    (kernel g st5 ~label:"diag_rain" ~partial:true ~code:"o = max(qv - 0.2, 0.0) * tv * 0.001"
       ~ins:[ ("qv", "q"); ("tv", "t") ] ~out:"diag_rain" ());
  ignore
    (kernel g st5 ~label:"diag_snow" ~partial:true ~code:"o = max(0.0, 263.15 - tv) * 0.002"
       ~ins:[ ("tv", "t") ] ~out:"diag_snow" ());
  ignore
    (kernel g st5 ~label:"diag_cover" ~partial:true ~code:"o = min(1.0, lv * 5.0 + iv * 5.0)"
       ~ins:[ ("lv", "ql"); ("iv", "qi") ] ~out:"diag_cover" ());
  ignore
    (kernel g st5 ~label:"diag_rh" ~partial:true ~code:"o = qv / (sv + 0.001)"
       ~ins:[ ("qv", "q"); ("sv", "supsat") ] ~out:"diag_rh" ());
  ignore
    (kernel g st5 ~label:"diag_lwc" ~partial:false ~code:"o = lv * 1000.0"
       ~ins:[ ("lv", "ql") ] ~out:"diag_lwc" ());
  ignore
    (kernel g st5 ~label:"diag_iwc" ~partial:false ~code:"o = iv * 1000.0"
       ~ins:[ ("iv", "qi") ] ~out:"diag_iwc" ());

  (* phase 6: post-processing kernels chained through *dead* transients —
     write-elimination sites where the buggy TaskletFusion is harmless, so
     the campaign shows one live-write failure among several passes *)
  List.iter
    (fun c -> Graph.add_array g ~transient:true c Dtype.F64 shape)
    [ "scratch1"; "scratch2"; "scratch3"; "scratch4" ];
  List.iter (fun c -> Graph.add_array g c Dtype.F64 shape) [ "post_t"; "post_q"; "post_l"; "post_i" ];
  let s6 = Graph.add_state_after g s5 "postproc" in
  let st6 = Graph.state g s6 in
  let chained label ~scratch ~inp ~out =
    let m =
      kernel g st6 ~label ~partial:true ~code:(Printf.sprintf "o = %s; o2 = o * 2.0" "iv * 0.5")
        ~ins:[ ("iv", inp) ] ~out
    in
    let m = m () in
    (* reroute: tasklet o2 -> scratch -> second tasklet -> exit *)
    let t2 = State.add_node st6 (Node.tasklet (label ^ "_b") "o = tv - 0.25") in
    let tacc = State.add_node st6 (Node.Access scratch) in
    ignore (State.add_edge st6 ~src_conn:"o2" ~memlet:(mem scratch "k, c") m.tasklet tacc);
    ignore (State.add_edge st6 ~dst_conn:"tv" ~memlet:(mem scratch "k, c") tacc t2);
    ignore
      (State.add_edge st6 ~src_conn:"o" ~dst_conn:("IN2_" ^ out) ~memlet:(mem out ~wcr:Memlet.Wcr_sum "k, c") t2 m.exit);
    let oacc = List.assoc out m.out_access in
    ignore
      (State.add_edge st6 ~src_conn:("OUT2_" ^ out)
         ~memlet:(mem out "0:KLEV-1, 0:KLON-1") m.exit oacc)
  in
  chained "post_heat" ~scratch:"scratch1" ~inp:"t" ~out:"post_t";
  chained "post_moist" ~scratch:"scratch2" ~inp:"q" ~out:"post_q";
  chained "post_liq" ~scratch:"scratch3" ~inp:"ql" ~out:"post_l";
  chained "post_ice" ~scratch:"scratch4" ~inp:"qi" ~out:"post_i";
  g
