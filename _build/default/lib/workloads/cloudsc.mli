(** A synthetic stand-in for the ECMWF CLOUDSC cloud-microphysics scheme
    (Sec. 6.4).

    The real CLOUDSC is 3,163 lines of Fortran; this stand-in reproduces the
    program *features* the paper's three Sec. 6.4 campaigns need, over a
    KLEV×KLON (levels × columns) grid:

    - a sequence of top-level parallel kernels, most of which write only a
      sub-region of their output containers — the GPU-kernel-extraction bug
      (Fig. 7) corrupts exactly those;
    - constant-trip loops including one iterating k = 4 down to 1 with step
      −1 — the loop-unrolling bug unrolls it twice instead of four times;
    - chained tasklets over transients, one of which is read again later —
      the write-elimination bug drops that live write. *)

val build : unit -> Sdfg.Graph.t

val default_symbols : (string * int) list
