(** A BERT-style multi-head-attention encoder core (Sec. 6.1, Fig. 5).

    Shapes follow the paper's parameterization: batch B, heads H, sequence
    length SM, projection size P. The attention-score contraction
    tmp\[b,h,i,j\] = Σ_p A\[p,b,h,i\]·Bt\[p,b,h,j\] feeds the scaling loop
    nest of Fig. 5 (beta = tmp · scale), followed by a softmax and the
    value contraction. The program optionally repeats the encoder block L
    times (interstate loop) so whole-application testing costs realistically
    more than cutout trials.

    With P = SM/8 the minimum input-flow cut turns the scaling cutout's
    input configuration {tmp, scale} into {A, Bt, scale} — a 75 % reduction,
    the paper's headline number. *)

(** [build ~layers ()] returns the graph, the state id of the encoder body,
    and the map-entry node of the Fig. 5 scaling loop nest (the
    vectorization / min-cut target). *)
val build_with_site : ?layers:int -> unit -> Sdfg.Graph.t * int * int

val build : unit -> Sdfg.Graph.t

(** The paper's BERT-large symbol values scaled down with identical shape
    relations (P = SM/8): B, H, SM, P. *)
val default_symbols : (string * int) list
