open Sdfg

let build_with_seed () =
  let g = Graph.create "fig4" in
  let n = Symbolic.Expr.sym "N" in
  Graph.add_symbol g "N";
  Graph.add_array g "x" Dtype.F64 [ n ];
  Graph.add_array g "w" Dtype.F64 [ n ];
  List.iter (fun c -> Graph.add_array g ~transient:true c Dtype.F64 [ n ]) [ "y"; "z"; "tmp" ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  let mem = Builder.Build.mem in
  let unary label f inp out ?input_nodes () =
    Builder.Build.mapped_tasklet g st ~label
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("v", mem inp "i") ]
      ~code:(Printf.sprintf "o = %s" f)
      ~outputs:[ ("o", mem out "i") ]
      ?input_nodes ()
  in
  let mf = unary "f" "tanh(v)" "x" "y" () in
  let y_acc = List.assoc "y" mf.out_access in
  let mg = unary "g" "v * v + 1.0" "y" "z" ~input_nodes:[ ("y", y_acc) ] () in
  let mmul =
    unary "mul2" "v * 2.0" "z" "tmp" ~input_nodes:[ ("z", List.assoc "z" mg.out_access) ] ()
  in
  let mh =
    Builder.Build.mapped_tasklet g st ~label:"h"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("t", mem "tmp" "i"); ("yv", mem "y" "i") ]
      ~code:"o = sqrt(abs(t)) + yv"
      ~outputs:[ ("o", mem "w" "i") ]
      ~input_nodes:[ ("tmp", List.assoc "tmp" mmul.out_access); ("y", y_acc) ]
      ()
  in
  (g, sid, [ mmul.entry; mh.entry ])

let build () =
  let g, _, _ = build_with_seed () in
  g
