open Sdfg

let rank_program () =
  let g = Graph.create "sddmm_rank" in
  List.iter (Graph.add_symbol g) [ "LROWS"; "NCOLS"; "K" ];
  let lr = Symbolic.Expr.sym "LROWS"
  and nc = Symbolic.Expr.sym "NCOLS"
  and k = Symbolic.Expr.sym "K" in
  Graph.add_array g "H1" Dtype.F64 [ lr; k ];
  Graph.add_array g "H2" Dtype.F64 [ nc; k ];
  Graph.add_array g "mask" Dtype.F64 [ lr; nc ];
  Graph.add_array g "values" Dtype.F64 [ lr; nc ];
  let sid = Graph.add_state g "sddmm" in
  let st = Graph.state g sid in
  let mem = Builder.Build.mem in
  let m =
    Builder.Build.mapped_tasklet g st ~label:"sddmm" ~schedule:Node.Parallel
      ~map:[ ("i", "0:LROWS-1"); ("j", "0:NCOLS-1"); ("kk", "0:K-1") ]
      ~inputs:
        [
          ("h1", mem "H1" "i, kk");
          ("h2", mem "H2" "j, kk");
          ("mv", mem "mask" "i, j");
        ]
      ~code:"o = mv * h1 * h2"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "values" "i, j") ]
      ()
  in
  (g, sid, m.entry)

let reference ~rows ~cols ~k ~h1 ~h2 ~mask =
  let out = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let acc = ref 0. in
      for kk = 0 to k - 1 do
        acc := !acc +. (h1.((i * k) + kk) *. h2.((j * k) + kk))
      done;
      out.((i * cols) + j) <- mask.((i * cols) + j) *. !acc
    done
  done;
  out

let distributed ~ranks ~rows ~cols ~k ~h1 ~h2 ~mask =
  if rows mod ranks <> 0 then invalid_arg "Sddmm.distributed: rows must divide by ranks";
  let comm = Mpi_sim.Mpi.create ranks in
  let lrows = rows / ranks in
  (* scatter H1 row blocks *)
  let h1_local = Array.init ranks (fun _ -> Array.make (lrows * k) 0.) in
  Mpi_sim.Mpi.scatter comm ~root:0 ~src:h1 h1_local;
  (* broadcast H2 (root owns it) *)
  let h2_local = Array.init ranks (fun r -> if r = 0 then Array.copy h2 else Array.make (cols * k) 0.) in
  Mpi_sim.Mpi.bcast comm ~root:0 h2_local;
  (* scatter the mask row blocks *)
  let mask_local = Array.init ranks (fun _ -> Array.make (lrows * cols) 0.) in
  Mpi_sim.Mpi.scatter comm ~root:0 ~src:mask mask_local;
  (* each rank computes its block with the interpreter *)
  let prog, _, _ = rank_program () in
  let global = Array.init ranks (fun _ -> Array.make (rows * cols) 0.) in
  for r = 0 to ranks - 1 do
    match
      Interp.Exec.run prog
        ~symbols:[ ("LROWS", lrows); ("NCOLS", cols); ("K", k) ]
        ~inputs:
          [
            ("H1", h1_local.(r));
            ("H2", h2_local.(r));
            ("mask", mask_local.(r));
            ("values", Array.make (lrows * cols) 0.);
          ]
    with
    | Ok o ->
        let v = Interp.Value.buffer o.memory "values" in
        (* place the local block into the rank's zero-padded global view *)
        Array.blit v.data 0 global.(r) (r * lrows * cols) (lrows * cols)
    | Error f -> failwith ("sddmm rank failed: " ^ Interp.Exec.fault_to_string f)
  done;
  (* allreduce: every rank ends with the assembled result *)
  Mpi_sim.Mpi.allreduce_sum comm global;
  global.(0)
