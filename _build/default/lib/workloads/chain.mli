(** The motivating example of Figs. 2–3: a matrix chain multiplication
    R = ((A·B)·C)·D with N×N matrices, written as three WCR contraction maps
    over transients U = A·B and V = U·C. Tiling the second multiplication
    with the off-by-one bug corrupts V — the cutout of that map has input
    configuration {U, C, N} and system state {V}, exactly the paper's
    figure. *)

(** Returns the graph plus the state id and the map-entry node of the second
    multiplication (the transformation target). *)
val build_with_site : unit -> Sdfg.Graph.t * int * int

val build : unit -> Sdfg.Graph.t
