open Sdfg

let default_symbols = [ ("B", 2); ("H", 2); ("SM", 32); ("P", 4) ]

let build_with_site ?(layers = 1) () =
  let g = Graph.create "bert_encoder" in
  List.iter (Graph.add_symbol g) [ "B"; "H"; "SM"; "P" ];
  let b = Symbolic.Expr.sym "B"
  and h = Symbolic.Expr.sym "H"
  and sm = Symbolic.Expr.sym "SM"
  and p = Symbolic.Expr.sym "P" in
  (* query/key/value projections, pre-transposed to [P, B, H, SM] *)
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ p; b; h; sm ]) [ "Aq"; "Bk"; "Vv" ];
  Graph.add_scalar g "scale" Dtype.F64;
  Graph.add_array g "out" Dtype.F64 [ Symbolic.Expr.sym "P"; b; h; sm ];
  List.iter
    (fun c -> Graph.add_array g ~transient:true c Dtype.F64 [ b; h; sm; sm ])
    [ "tmp"; "beta"; "gamma"; "omega" ];
  Graph.add_array g ~transient:true "denom" Dtype.F64 [ b; h; sm ];
  let sid =
    if layers <= 1 then Graph.add_state g "encoder"
    else begin
      let s0 = Graph.add_state g "init" in
      let _, body, _ =
        Builder.Build.for_loop g ~entry_from:s0 ~var:"layer" ~init:Symbolic.Expr.zero
          ~cond:(Symbolic.Cond.Lt (Symbolic.Expr.sym "layer", Symbolic.Expr.int layers))
          ~update:(Symbolic.Expr.add (Symbolic.Expr.sym "layer") Symbolic.Expr.one)
          ~body_label:"encoder" ~after_label:"done"
      in
      body
    end
  in
  let st = Graph.state g sid in
  let mem = Builder.Build.mem in
  let mt = Builder.Build.mapped_tasklet in
  let bhij = [ ("b", "0:B-1"); ("h", "0:H-1"); ("i", "0:SM-1"); ("j", "0:SM-1") ] in
  (* attention scores: tmp[b,h,i,j] = sum_p Aq[p,b,h,i] * Bk[p,b,h,j] *)
  let scores =
    mt g st ~label:"qk_scores"
      ~map:(bhij @ [ ("pp", "0:P-1") ])
      ~inputs:[ ("a", mem "Aq" "pp, b, h, i"); ("k", mem "Bk" "pp, b, h, j") ]
      ~code:"o = a * k"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "tmp" "b, h, i, j") ]
      ()
  in
  (* the Fig. 5 scaling loop nest: beta = tmp * scale *)
  let scaling =
    mt g st ~label:"beta_scale" ~map:bhij
      ~inputs:[ ("t", mem "tmp" "b, h, i, j"); ("s", mem "scale" "") ]
      ~code:"o = t * s"
      ~outputs:[ ("o", mem "beta" "b, h, i, j") ]
      ~input_nodes:[ ("tmp", List.assoc "tmp" scores.out_access) ]
      ()
  in
  (* softmax over j: exp, row-sum, normalize *)
  let expm =
    mt g st ~label:"att_exp" ~map:bhij
      ~inputs:[ ("x", mem "beta" "b, h, i, j") ]
      ~code:"o = exp(x)"
      ~outputs:[ ("o", mem "gamma" "b, h, i, j") ]
      ~input_nodes:[ ("beta", List.assoc "beta" scaling.out_access) ]
      ()
  in
  let gamma_acc = List.assoc "gamma" expm.out_access in
  let sum =
    mt g st ~label:"att_sum" ~map:bhij
      ~inputs:[ ("x", mem "gamma" "b, h, i, j") ]
      ~code:"o = x"
      ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "denom" "b, h, i") ]
      ~input_nodes:[ ("gamma", gamma_acc) ]
      ()
  in
  let norm =
    mt g st ~label:"att_norm" ~map:bhij
      ~inputs:[ ("x", mem "gamma" "b, h, i, j"); ("d", mem "denom" "b, h, i") ]
      ~code:"o = x / (d + 1e-9)"
      ~outputs:[ ("o", mem "omega" "b, h, i, j") ]
      ~input_nodes:[ ("gamma", gamma_acc); ("denom", List.assoc "denom" sum.out_access) ]
      ()
  in
  (* output contraction: out[p,b,h,i] = sum_j Vv[p,b,h,j] * omega[b,h,i,j] *)
  ignore
    (mt g st ~label:"att_out"
       ~map:(bhij @ [ ("pp", "0:P-1") ])
       ~inputs:[ ("v", mem "Vv" "pp, b, h, j"); ("w", mem "omega" "b, h, i, j") ]
       ~code:"o = v * w"
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum "out" "pp, b, h, i") ]
       ~input_nodes:[ ("omega", List.assoc "omega" norm.out_access) ]
       ());
  (g, sid, scaling.entry)

let build () =
  let g, _, _ = build_with_site () in
  g
