(** The minimum input-flow cut illustration of Fig. 4:

    {v y = f(x);  z = g(y);  tmp = z * 2;  w = h(tmp, y) v}

    The cutout seeded at the multiplication and the call to h has the input
    configuration {y, z}; growing it with f and g (one min-cut step) shrinks
    the inputs to {x}, halving the input space. *)

(** Returns the graph, the state id, and the seed nodes (the mul map entry
    and the h map entry) for cutout extraction. *)
val build_with_seed : unit -> Sdfg.Graph.t * int * int list

val build : unit -> Sdfg.Graph.t
