let sources =
  [
    ( "arc_distance",
      {|
      program arc_distance
      symbol N
      input  f64 t1[N]
      input  f64 p1[N]
      input  f64 t2[N]
      input  f64 p2[N]
      output f64 dist[N]
      map i = 0 to N-1 {
        dist[i] = sin((t2[i] - t1[i]) / 2.0) ** 2.0
                  + cos(t1[i]) * cos(t2[i]) * sin((p2[i] - p1[i]) / 2.0) ** 2.0
      }
    |} );
    ( "compute",
      {|
      program compute
      symbol N
      input  f64 a[N, N]
      input  f64 b[N, N]
      input  f64 c[N, N]
      output f64 res[N, N]
      map i = 0 to N-1, j = 0 to N-1 {
        res[i, j] = select(a[i, j] > 0.5, a[i, j] * b[i, j] - c[i, j], tanh(a[i, j]))
      }
    |} );
    ( "gesummv",
      {|
      program gesummv
      symbol N
      input  f64 alpha
      input  f64 beta
      input  f64 A[N, N]
      input  f64 B[N, N]
      input  f64 x[N]
      output f64 y[N]
      temp   f64 t1[N]
      temp   f64 t2[N]
      map i = 0 to N-1, j = 0 to N-1 { t1[i] += A[i, j] * x[j] }
      map i = 0 to N-1, j = 0 to N-1 { t2[i] += B[i, j] * x[j] }
      map i = 0 to N-1 { y[i] = alpha * t1[i] + beta * t2[i] }
    |} );
    ( "syrk",
      {|
      program syrk
      symbol N
      input  f64 alpha
      input  f64 beta
      input  f64 A[N, N]
      inout  f64 C[N, N]
      map i = 0 to N-1, j = 0 to N-1 { C[i, j] = beta * C[i, j] }
      map i = 0 to N-1, j = 0 to N-1, k = 0 to N-1 {
        C[i, j] += alpha * A[i, k] * A[j, k]
      }
    |} );
    ( "syr2k",
      {|
      program syr2k
      symbol N
      input  f64 alpha
      input  f64 beta
      input  f64 A[N, N]
      input  f64 B[N, N]
      inout  f64 C[N, N]
      map i = 0 to N-1, j = 0 to N-1 { C[i, j] = beta * C[i, j] }
      map i = 0 to N-1, j = 0 to N-1, k = 0 to N-1 {
        C[i, j] += alpha * (A[i, k] * B[j, k] + B[i, k] * A[j, k])
      }
    |} );
    ( "trisolv",
      {|
      program trisolv
      symbol N
      input  f64 L[N, N]
      input  f64 b[N]
      output f64 x[N]
      temp   f64 acc
      for i = 0 to N-1 {
        acc = 0.0
        map j = 0 to i-1 { acc += L[i, j] * x[j] }
        x[i] = (b[i] - acc) / (L[i, i] + 1e-9)
      }
    |} );
    ( "floyd_warshall",
      {|
      program floyd_warshall
      symbol N
      inout  f64 dist[N, N]
      for k = 0 to N-1 {
        map i = 0 to N-1, j = 0 to N-1 {
          dist[i, j] min= dist[i, k] + dist[k, j]
        }
      }
    |} );
    ( "hdiff",
      {|
      program hdiff
      symbol N
      input  f64 fin[N, N]
      temp   f64 lap[N, N]
      temp   f64 flx[N, N]
      output f64 fout[N, N]
      map i = 1 to N-2, j = 1 to N-2 {
        lap[i, j] = 4.0 * fin[i, j] - (fin[i-1, j] + fin[i+1, j] + fin[i, j-1] + fin[i, j+1])
      }
      map i = 1 to N-3, j = 1 to N-2 {
        flx[i, j] = lap[i+1, j] - lap[i, j]
      }
      map i = 2 to N-3, j = 1 to N-2 {
        fout[i, j] = fin[i, j] - 0.25 * (flx[i, j] - flx[i-1, j])
      }
    |} );
    ( "heat_3d",
      {|
      program heat_3d
      symbol N, T
      inout  f64 A[N, N, N]
      inout  f64 B[N, N, N]
      for t = 0 to T-1 {
        map i = 1 to N-2, j = 1 to N-2, k = 1 to N-2 {
          B[i, j, k] = 0.125 * (A[i+1, j, k] - 2.0 * A[i, j, k] + A[i-1, j, k])
                     + 0.125 * (A[i, j+1, k] - 2.0 * A[i, j, k] + A[i, j-1, k])
                     + 0.125 * (A[i, j, k+1] - 2.0 * A[i, j, k] + A[i, j, k-1])
                     + A[i, j, k]
        }
        map i = 1 to N-2, j = 1 to N-2, k = 1 to N-2 {
          A[i, j, k] = 0.125 * (B[i+1, j, k] - 2.0 * B[i, j, k] + B[i-1, j, k])
                     + 0.125 * (B[i, j+1, k] - 2.0 * B[i, j, k] + B[i, j-1, k])
                     + 0.125 * (B[i, j, k+1] - 2.0 * B[i, j, k] + B[i, j, k-1])
                     + B[i, j, k]
        }
      }
    |} );
    ( "mlp",
      {|
      program mlp
      symbol N, H
      input  f64 x[N]
      input  f64 W1[H, N]
      input  f64 W2[N, H]
      temp   f64 h1[H]
      temp   f64 h1r[H]
      output f64 out[N]
      map i = 0 to H-1, j = 0 to N-1 { h1[i] += W1[i, j] * x[j] }
      map i = 0 to H-1 { h1r[i] = max(h1[i], 0.0) }
      map i = 0 to N-1, j = 0 to H-1 { out[i] += W2[i, j] * h1r[j] }
    |} );
  ]

let more_sources =
  [
    ( "doitgen",
      {|
      program doitgen
      symbol R, Q, P
      inout  f64 A[R, Q, P]
      input  f64 C4[P, P]
      temp   f64 summ[R, Q, P]
      map r = 0 to R-1, q = 0 to Q-1, p = 0 to P-1, k = 0 to P-1 {
        summ[r, q, p] += A[r, q, k] * C4[k, p]
      }
      map r = 0 to R-1, q = 0 to Q-1, p = 0 to P-1 {
        A[r, q, p] = summ[r, q, p]
      }
    |} );
    ( "correlation",
      {|
      program correlation
      symbol N
      input  f64 data[N, N]
      temp   f64 mean[N]
      temp   f64 stddev[N]
      temp   f64 cent[N, N]
      output f64 corr[N, N]
      map i = 0 to N-1, j = 0 to N-1 { mean[j] += data[i, j] / N }
      map i = 0 to N-1, j = 0 to N-1 { stddev[j] += (data[i, j] - mean[j]) ** 2.0 / N }
      map i = 0 to N-1, j = 0 to N-1 {
        cent[i, j] = (data[i, j] - mean[j]) / sqrt(stddev[j] + 0.1)
      }
      map i = 0 to N-1, j = 0 to N-1, k = 0 to N-1 {
        corr[i, j] += cent[k, i] * cent[k, j] / N
      }
    |} );
    ( "adi_lite",
      {|
      program adi_lite
      symbol N, T
      inout  f64 u[N, N]
      temp   f64 v[N, N]
      for t = 0 to T-1 {
        map i = 1 to N-2, j = 1 to N-2 {
          v[i, j] = 0.25 * (u[i, j-1] + 2.0 * u[i, j] + u[i, j+1])
        }
        map i = 1 to N-2, j = 1 to N-2 {
          u[i, j] = 0.25 * (v[i-1, j] + 2.0 * v[i, j] + v[i+1, j])
        }
      }
    |} );
    ( "lu",
      {|
      program lu
      symbol N
      inout  f64 A[N, N]
      temp   f64 acc
      for i = 0 to N-1 {
        for j = 0 to i-1 {
          acc = 0.0
          map k = 0 to j-1 { acc += A[i, k] * A[k, j] }
          A[i, j] = (A[i, j] - acc) / (A[j, j] + 1e-6)
        }
        for j = i to N-1 {
          acc = 0.0
          map k = 0 to i-1 { acc += A[i, k] * A[k, j] }
          A[i, j] = A[i, j] - acc
        }
      }
    |} );
    ( "gramschmidt",
      {|
      program gramschmidt
      symbol N
      inout  f64 A[N, N]
      output f64 R[N, N]
      temp   f64 nrm
      for k = 0 to N-1 {
        nrm = 0.0
        map i = 0 to N-1 { nrm += A[i, k] * A[i, k] }
        R[k, k] = sqrt(nrm) + 1e-6
        map i = 0 to N-1 { A[i, k] = A[i, k] / (sqrt(nrm) + 1e-6) }
        map j = k+1 to N-1, i = 0 to N-1 { R[k, j] += A[i, k] * A[i, j] }
        map j = k+1 to N-1, i = 0 to N-1 { A[i, j] = A[i, j] - A[i, k] * R[k, j] }
      }
    |} );
    ( "mandelbrot_fixed",
      {|
      program mandelbrot_fixed
      symbol N, T
      input  f64 cr[N, N]
      input  f64 ci[N, N]
      temp   f64 zr[N, N]
      temp   f64 zi[N, N]
      temp   f64 zr2[N, N]
      output f64 inside[N, N]
      for t = 0 to T-1 {
        map i = 0 to N-1, j = 0 to N-1 {
          zr2[i, j] = zr[i, j] * zr[i, j] - zi[i, j] * zi[i, j] + cr[i, j]
        }
        map i = 0 to N-1, j = 0 to N-1 {
          zi[i, j] = 2.0 * zr[i, j] * zi[i, j] + ci[i, j]
        }
        map i = 0 to N-1, j = 0 to N-1 { zr[i, j] = zr2[i, j] }
      }
      map i = 0 to N-1, j = 0 to N-1 {
        inside[i, j] = select(zr[i, j] * zr[i, j] + zi[i, j] * zi[i, j] < 4.0, 1.0, 0.0)
      }
    |} );
  ]

let final_sources =
  [
    ( "cholesky",
      {|
      program cholesky
      symbol N
      inout  f64 A[N, N]
      temp   f64 acc
      for i = 0 to N-1 {
        for j = 0 to i-1 {
          acc = 0.0
          map k = 0 to j-1 { acc += A[i, k] * A[j, k] }
          A[i, j] = (A[i, j] - acc) / (A[j, j] + 1e-6)
        }
        acc = 0.0
        map k = 0 to i-1 { acc += A[i, k] * A[i, k] }
        A[i, i] = sqrt(abs(A[i, i] - acc)) + 1e-6
      }
    |} );
    ( "durbin",
      {|
      program durbin
      symbol N
      input  f64 r[N]
      output f64 y[N]
      temp   f64 z[N]
      temp   f64 alpha
      temp   f64 beta
      temp   f64 summ
      y[0] = 0.0 - r[0]
      beta = 1.0
      alpha = 0.0 - r[0]
      for k = 1 to N-1 {
        beta = (1.0 - alpha * alpha) * beta
        summ = 0.0
        map i = 0 to k-1 { summ += r[k-i-1] * y[i] }
        alpha = 0.0 - (r[k] + summ) / (beta + 1e-6)
        map i = 0 to k-1 { z[i] = y[i] + alpha * y[k-i-1] }
        map i = 0 to k-1 { y[i] = z[i] }
        y[k] = alpha
      }
    |} );
    ( "seidel_2d",
      {|
      program seidel_2d
      symbol N, T
      inout  f64 A[N, N]
      for t = 0 to T-1 {
        for i = 1 to N-2 {
          map j = 1 to N-2 {
            A[i, j] = 0.2 * (A[i, j-1] + A[i, j] + A[i, j+1] + A[i-1, j] + A[i+1, j])
          }
        }
      }
    |} );
    ( "symm",
      {|
      program symm
      symbol N
      input  f64 alpha
      input  f64 beta
      input  f64 A[N, N]
      input  f64 B[N, N]
      inout  f64 C[N, N]
      map i = 0 to N-1, j = 0 to N-1 { C[i, j] = beta * C[i, j] }
      map i = 0 to N-1, j = 0 to N-1, k = 0 to N-1 {
        C[i, j] += alpha * B[k, j] * select(k <= i, A[i, k], A[k, i])
      }
    |} );
    ( "trmm",
      {|
      program trmm
      symbol N
      input  f64 alpha
      input  f64 A[N, N]
      inout  f64 B[N, N]
      temp   f64 acc
      for i = 0 to N-1 {
        for j = 0 to N-1 {
          acc = 0.0
          map k = i+1 to N-1 { acc += A[k, i] * B[k, j] }
          B[i, j] = alpha * (B[i, j] + acc)
        }
      }
    |} );
    ( "lenet_conv",
      {|
      program lenet_conv
      symbol N
      input  f64 img[N, N]
      input  f64 w1[3, 3]
      input  f64 w2[3, 3]
      temp   f64 c1[N, N]
      temp   f64 r1[N, N]
      output f64 c2[N, N]
      map i = 0 to N-3, j = 0 to N-3, ki = 0 to 2, kj = 0 to 2 {
        c1[i, j] += img[i+ki, j+kj] * w1[ki, kj]
      }
      map i = 0 to N-1, j = 0 to N-1 { r1[i, j] = max(c1[i, j], 0.0) }
      map i = 0 to N-3, j = 0 to N-3, ki = 0 to 2, kj = 0 to 2 {
        c2[i, j] += r1[i+ki, j+kj] * w2[ki, kj]
      }
    |} );
    ( "softmax_xent",
      {|
      program softmax_xent
      symbol N
      input  f64 logits[N, N]
      input  f64 labels[N, N]
      temp   f64 rowmax[N]
      temp   f64 e[N, N]
      temp   f64 rowsum[N]
      output f64 loss
      map i = 0 to N-1, j = 0 to N-1 { rowmax[i] max= logits[i, j] }
      map i = 0 to N-1, j = 0 to N-1 { e[i, j] = exp(logits[i, j] - rowmax[i]) }
      map i = 0 to N-1, j = 0 to N-1 { rowsum[i] += e[i, j] }
      map i = 0 to N-1, j = 0 to N-1 {
        loss += 0.0 - labels[i, j] * log(e[i, j] / rowsum[i] + 1e-12) / N
      }
    |} );
  ]

let sources = sources @ more_sources @ final_sources

let all () =
  List.map
    (fun (name, src) ->
      let g = Frontend.Lang.compile src in
      Sdfg.Validate.check_exn g;
      (name, g))
    sources
