lib/flownet/maxflow.mli: Cap
