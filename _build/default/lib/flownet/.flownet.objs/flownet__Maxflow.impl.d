lib/flownet/maxflow.ml: Array Cap List Queue
