lib/flownet/cap.mli: Format
