lib/flownet/cap.ml: Format Stdlib
