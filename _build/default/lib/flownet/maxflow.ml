(* Infinite capacities are handled exactly: any value strictly greater than
   the sum of all finite capacities can never participate in a minimum cut, so
   Inf is represented internally by (sum of finite caps + 1) computed at solve
   time. A computed flow reaching that bound means s and t are joined by an
   all-infinite path. *)

type arc = { dst : int; mutable cap : int; rev : int; infinite : bool }

type t = { mutable adj : arc array array; mutable n : int; mutable arcs : (int * int * Cap.t) list }

let create () = { adj = [||]; n = 0; arcs = [] }

let add_node g =
  let id = g.n in
  g.n <- id + 1;
  id

let add_edge g u v cap =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Maxflow.add_edge: bad node";
  g.arcs <- (u, v, cap) :: g.arcs

let num_nodes g = g.n

type result = { max_flow : Cap.t; source_side : bool array }

let build g =
  let adj = Array.make g.n [] in
  let finite_sum =
    List.fold_left
      (fun acc (_, _, c) -> match c with Cap.Finite n -> acc + n | Cap.Inf -> acc)
      0 g.arcs
  in
  let big = finite_sum + 1 in
  List.iter
    (fun (u, v, c) ->
      let cap, infinite = match c with Cap.Finite n -> (n, false) | Cap.Inf -> (big, true) in
      let iu = List.length adj.(u) and iv = List.length adj.(v) in
      adj.(u) <- adj.(u) @ [ { dst = v; cap; rev = iv; infinite } ];
      adj.(v) <- adj.(v) @ [ { dst = u; cap = 0; rev = iu; infinite = false } ])
    (List.rev g.arcs);
  (Array.map Array.of_list adj, big)

let max_flow g ~s ~t =
  if s < 0 || s >= g.n || t < 0 || t >= g.n then invalid_arg "Maxflow.max_flow: bad node";
  let adj, big = build g in
  let flow = ref 0 in
  let prev = Array.make g.n (-1, -1) in
  let rec loop () =
    Array.fill prev 0 g.n (-1, -1);
    prev.(s) <- (s, -1);
    let queue = Queue.create () in
    Queue.add s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iteri
        (fun i a ->
          if a.cap > 0 && fst prev.(a.dst) = -1 then begin
            prev.(a.dst) <- (u, i);
            if a.dst = t then found := true else Queue.add a.dst queue
          end)
        adj.(u)
    done;
    if !found then begin
      (* bottleneck *)
      let rec bottleneck v acc =
        if v = s then acc
        else
          let u, i = prev.(v) in
          bottleneck u (min acc adj.(u).(i).cap)
      in
      let b = bottleneck t max_int in
      let rec push v =
        if v <> s then begin
          let u, i = prev.(v) in
          let a = adj.(u).(i) in
          a.cap <- a.cap - b;
          let r = adj.(v).(a.rev) in
          r.cap <- r.cap + b;
          push u
        end
      in
      push t;
      flow := !flow + b;
      if !flow < big then loop ()
    end
  in
  loop ();
  (* residual reachability from s *)
  let side = Array.make g.n false in
  let queue = Queue.create () in
  side.(s) <- true;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun a ->
        if a.cap > 0 && not side.(a.dst) then begin
          side.(a.dst) <- true;
          Queue.add a.dst queue
        end)
      adj.(u)
  done;
  let mf = if !flow >= big then Cap.Inf else Cap.Finite !flow in
  { max_flow = mf; source_side = side }

let cut_edges g result =
  List.filter_map
    (fun (u, v, c) ->
      if result.source_side.(u) && not result.source_side.(v) then Some (u, v, c) else None)
    (List.rev g.arcs)
