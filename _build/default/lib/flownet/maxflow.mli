(** Maximum flow / minimum s-t cut via Edmonds–Karp (BFS Ford–Fulkerson).

    The minimum input-flow cut of Sec. 4.2 reduces minimizing a cutout's input
    configuration to a minimum s-t cut; the max-flow min-cut theorem lets us
    compute it with augmenting paths in O(|E|²|V|). *)

type t

val create : unit -> t

(** [add_node g] returns a fresh node id. *)
val add_node : t -> int

(** [add_edge g u v cap] adds a directed edge. Parallel edges accumulate.
    A reverse residual edge of capacity 0 is added implicitly. *)
val add_edge : t -> int -> int -> Cap.t -> unit

val num_nodes : t -> int

(** Result of a max-flow computation. *)
type result = {
  max_flow : Cap.t;  (** [Inf] when s and t are connected by ∞ paths *)
  source_side : bool array;  (** residual reachability from s after saturation *)
}

(** [max_flow g ~s ~t]. When the flow is infinite (an all-∞ augmenting path
    exists), augmentation stops along those paths and [source_side] still
    describes a valid partition of the finite-capacity residual graph.
    @raise Invalid_argument if [s] or [t] is not a node. *)
val max_flow : t -> s:int -> t:int -> result

(** Edges crossing the cut, as [(u, v, capacity)] with [u] on the source side
    and [v] on the sink side. *)
val cut_edges : t -> result -> (int * int * Cap.t) list
