(** Edge capacities for flow networks: non-negative integers plus infinity.

    Infinite capacities encode edges the minimum input-flow cut preparation of
    Sec. 4.2 must never cut (e.g. outgoing edges of data nodes). *)

type t = Finite of int | Inf

val zero : t
val finite : int -> t
(** @raise Invalid_argument on negative input. *)

val is_zero : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] with [b <= a]; [Inf - x = Inf].
    @raise Invalid_argument if the result would be negative or [Inf - Inf]. *)

val min : t -> t -> t
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
