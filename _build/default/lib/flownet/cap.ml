type t = Finite of int | Inf

let zero = Finite 0

let finite n =
  if n < 0 then invalid_arg "Cap.finite: negative capacity";
  Finite n

let is_zero = function Finite 0 -> true | _ -> false

let add a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Finite x, Finite y -> Finite (x + y)

let sub a b =
  match (a, b) with
  | Inf, Finite _ -> Inf
  | Finite x, Finite y ->
      if y > x then invalid_arg "Cap.sub: negative result";
      Finite (x - y)
  | _, Inf -> invalid_arg "Cap.sub: subtracting Inf"

let min a b =
  match (a, b) with
  | Inf, x | x, Inf -> x
  | Finite x, Finite y -> Finite (Stdlib.min x y)

let compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Finite _ -> 1
  | Finite _, Inf -> -1
  | Finite x, Finite y -> Stdlib.compare x y

let to_string = function Finite n -> string_of_int n | Inf -> "inf"
let pp fmt t = Format.pp_print_string fmt (to_string t)
