type t = {
  name : string;
  cutout : Cutout.t;
  symbols : (string * int) list;
  inputs : (string * float array) list;
  failure : Difftest.failure_kind;
}

(* Reconstruct the fault-inducing inputs: re-run the deterministic sampling
   sequence up to the failing trial. *)
let site_slug (s : Transforms.Xform.site) =
  if s.state >= 0 then
    Printf.sprintf "s%d_n%s" s.state (String.concat "-" (List.map string_of_int s.nodes))
  else Printf.sprintf "states_%s" (String.concat "-" (List.map string_of_int s.states))

let of_report ?(config = Difftest.default_config) ~original (report : Difftest.report) =
  match report.verdict with
  | Difftest.Pass -> None
  | Difftest.Fail f when f.first_trial <= 0 ->
      Some
        {
          name = report.xform_name ^ "." ^ site_slug report.site;
          cutout = report.cutout;
          symbols = [];
          inputs = [];
          failure = f.kind;
        }
  | Difftest.Fail f ->
      let constraints =
        Constraints.derive ~max_size:config.max_size ~custom:config.custom_constraints ~original
          report.cutout
      in
      let rng = Sampler.create config.seed in
      let result = ref None in
      for trial = 1 to f.first_trial do
        let r = Sampler.split rng in
        let symbols = Sampler.sample_symbols r constraints in
        let inputs = Sampler.sample_inputs r constraints report.cutout ~symbols in
        if trial = f.first_trial then result := Some (symbols, inputs)
      done;
      Option.map
        (fun (symbols, inputs) ->
          {
            name = report.xform_name ^ "." ^ site_slug report.site;
            cutout = report.cutout;
            symbols;
            inputs;
            failure = f.kind;
          })
        !result

let render tc =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== FuzzyFlow test case: %s ===\n" tc.name);
  Buffer.add_string buf (Format.asprintf "%a@." Cutout.pp tc.cutout);
  Buffer.add_string buf (Format.asprintf "failure: %a@." Difftest.pp_failure tc.failure);
  Buffer.add_string buf "symbols:\n";
  List.iter (fun (s, v) -> Buffer.add_string buf (Printf.sprintf "  %s = %d\n" s v)) tc.symbols;
  Buffer.add_string buf "inputs:\n";
  List.iter
    (fun (c, arr) ->
      let n = Array.length arr in
      let preview = Array.to_list (Array.sub arr 0 (min 8 n)) in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d elements [%s%s]\n" c n
           (String.concat ", " (List.map (Printf.sprintf "%g") preview))
           (if n > 8 then ", ..." else "")))
    tc.inputs;
  Buffer.contents buf

let save dir tc =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let safe c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
    | _ -> '_'
  in
  let base = Filename.concat dir (String.map safe tc.name) in
  let txt = base ^ ".case.txt" in
  let dot = base ^ ".cutout.dot" in
  let sdfg = base ^ ".cutout.sdfg" in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  write txt (render tc);
  write dot (Sdfg.Dot.to_dot tc.cutout.program);
  write sdfg (Sdfg.Serialize.to_string tc.cutout.program);
  [ txt; dot; sdfg ]

let replay ?(step_limit = 5_000_000) tc =
  let config = { Interp.Exec.default_config with step_limit } in
  Interp.Exec.run ~config tc.cutout.program ~symbols:tc.symbols ~inputs:tc.inputs
