(** Transformation-parameter fuzzing.

    The paper's conclusion proposes fuzzing not just a cutout's inputs but
    the {e parameters of the transformation itself} — e.g. the tile size of a
    tiling optimization — to test transformations under even more varying
    conditions. [sweep] runs the full FuzzyFlow pipeline once per parameter
    value of a transformation family and reports which values are safe. *)

type outcome = {
  param : int;
  verdict : Difftest.verdict;
  elapsed_s : float;
}

type result = {
  outcomes : outcome list;
  safe : int list;  (** parameter values whose instance passed *)
  unsafe : int list;
}

(** [sweep g ~family ~params ~site] instantiates [family p] for every [p] and
    tests it at [site]. *)
val sweep :
  ?config:Difftest.config ->
  Sdfg.Graph.t ->
  family:(int -> Transforms.Xform.t) ->
  params:int list ->
  site:Transforms.Xform.site ->
  result

val pp_result : Format.formatter -> result -> unit
