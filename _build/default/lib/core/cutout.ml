open Sdfg

type t = {
  program : Graph.t;
  kind : kind;
  input_config : string list;
  system_state : string list;
  free_symbols : string list;
}

and kind =
  | Dataflow of { state : int; nodes : int list }
  | Multistate of { states : int list }

type options = { symbols : (string * int) list }

let default_options = { symbols = [] }

(* Conservative overlap: missing symbol bindings mean "may overlap". *)
let subsets_overlap env a b =
  try
    Symbolic.Subset.overlaps (Symbolic.Subset.concretize env a) (Symbolic.Subset.concretize env b)
  with Symbolic.Expr.Unbound_symbol _ | Symbolic.Expr.Division_by_zero | Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Closure of the seed node set (Sec. 3, step 3)                       *)
(* ------------------------------------------------------------------ *)

(* Expand a seed set to something executable: whole map scopes (including all
   enclosing scopes) plus the access nodes of every direct data dependency. *)
let closure st seed =
  let set = Hashtbl.create 32 in
  let queue = Queue.create () in
  let add n =
    if State.has_node st n && not (Hashtbl.mem set n) then begin
      Hashtbl.replace set n ();
      Queue.add n queue
    end
  in
  List.iter add seed;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    (match State.node st n with
    | Node.Map_entry _ ->
        (match State.exit_of st n with ex -> add ex | exception Not_found -> ());
        List.iter add (State.scope_nodes st n)
    | Node.Map_exit { entry } ->
        add entry;
        List.iter add (State.scope_nodes st entry)
    | _ -> ());
    (match State.scope_of st n with Some e -> add e | None -> ());
    (match State.node st n with
    | Node.Access _ -> ()
    | _ ->
        List.iter
          (fun (e : State.edge) ->
            match State.node_opt st e.src with Some (Node.Access _) -> add e.src | _ -> ())
          (State.in_edges st n);
        List.iter
          (fun (e : State.edge) ->
            match State.node_opt st e.dst with Some (Node.Access _) -> add e.dst | _ -> ())
          (State.out_edges st n))
  done;
  Hashtbl.fold (fun n () acc -> n :: acc) set [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Read / write sets                                                   *)
(* ------------------------------------------------------------------ *)

(* Reads and writes carried by one edge. A write with conflict resolution
   also reads the previous contents. Copy edges read [memlet] and write
   [dst_memlet]. *)
let edge_accesses st (e : State.edge) =
  let reads = ref [] and writes = ref [] in
  (match (e.memlet, State.node_opt st e.src) with
  | Some m, Some (Node.Access _) -> reads := (m.data, m.subset) :: !reads
  | _ -> ());
  (match State.node_opt st e.dst with
  | Some (Node.Access _) -> (
      let wm = match e.dst_memlet with Some dm -> Some dm | None -> e.memlet in
      match wm with
      | Some m ->
          writes := (m.data, m.subset) :: !writes;
          if m.wcr <> None then reads := (m.data, m.subset) :: !reads
      | None -> ())
  | _ -> ());
  (!reads, !writes)

let accesses_of_nodes st nodes =
  let in_set n = List.mem n nodes in
  List.fold_left
    (fun (rs, ws) (e : State.edge) ->
      if in_set e.src && in_set e.dst then
        let r, w = edge_accesses st e in
        (r @ rs, w @ ws)
      else (rs, ws))
    ([], []) (State.edges st)

let accesses_of_state st =
  accesses_of_nodes st (State.node_ids st)

(* Scalar containers read by interstate conditions / assignment RHSs. *)
let interstate_reads g (e : Graph.istate_edge) =
  let syms =
    Symbolic.Cond.free_syms e.cond
    @ List.concat_map (fun (_, rhs) -> Symbolic.Expr.free_syms rhs) e.assigns
  in
  List.filter_map
    (fun s ->
      match Graph.container_opt g s with
      | Some d when d.shape = [] -> Some (s, ([] : Symbolic.Subset.t))
      | _ -> None)
    syms

(* ------------------------------------------------------------------ *)
(* System state & input configuration (Sec. 3.1 / 3.2)                 *)
(* ------------------------------------------------------------------ *)

(* [before] / [after]: accesses in program regions that execute before (may
   produce cutout inputs) or after (may consume cutout outputs) the cutout.
   Same-state accesses outside the cutout count on both sides — conservative
   with respect to unordered dataflow. *)
type surroundings = {
  before_writes : (string * Symbolic.Subset.t) list;
  after_reads : (string * Symbolic.Subset.t) list;
}

let surroundings_dataflow g sid nodes =
  let st = Graph.state g sid in
  let outside = List.filter (fun n -> not (List.mem n nodes)) (State.node_ids st) in
  let same_r, same_w = accesses_of_nodes st outside in
  (* cross-boundary edges (one endpoint in the cutout) also access data *)
  let br = ref [] and ar = ref [] in
  List.iter
    (fun (e : State.edge) ->
      let src_in = List.mem e.src nodes and dst_in = List.mem e.dst nodes in
      if src_in <> dst_in then begin
        let r, w = edge_accesses st e in
        if src_in then ar := r @ !ar (* outside node reads what the edge moves *)
        else br := w @ !br
      end)
    (State.edges st);
  let before_states = Graph.coreachable_states g sid in
  let after_states = Graph.reachable_states g sid in
  let collect sids f =
    List.concat_map
      (fun s -> match Graph.state_opt g s with Some st -> f (accesses_of_state st) | None -> [])
      sids
  in
  let before_writes = same_w @ !br @ collect before_states snd in
  let istate_after =
    List.concat_map
      (fun (e : Graph.istate_edge) ->
        if e.src = sid || List.mem e.src after_states then interstate_reads g e else [])
      (Graph.istate_edges g)
  in
  let after_reads = same_r @ !ar @ collect after_states fst @ istate_after in
  { before_writes; after_reads }

let surroundings_multistate g region =
  let before_states =
    List.concat_map (fun s -> Graph.coreachable_states g s) region
    |> List.sort_uniq compare
    |> List.filter (fun s -> not (List.mem s region))
  in
  let after_states =
    List.concat_map (fun s -> Graph.reachable_states g s) region
    |> List.sort_uniq compare
    |> List.filter (fun s -> not (List.mem s region))
  in
  let collect sids f =
    List.concat_map
      (fun s -> match Graph.state_opt g s with Some st -> f (accesses_of_state st) | None -> [])
      sids
  in
  let istate_reads_of sids =
    List.concat_map
      (fun (e : Graph.istate_edge) -> if List.mem e.src sids then interstate_reads g e else [])
      (Graph.istate_edges g)
  in
  {
    before_writes = collect before_states snd;
    after_reads = collect after_states fst @ istate_reads_of after_states;
  }

(* The two analyses of Secs. 3.1-3.2, given the cutout's own read/write sets
   and its surroundings. *)
let classify g env ~reads ~writes ~surr =
  let external_ c =
    match Graph.container_opt g c with Some d -> not d.transient | None -> false
  in
  let input_config =
    List.filter_map
      (fun (c, sub) ->
        if external_ c then Some c
        else if
          List.exists (fun (c', sub') -> c' = c && subsets_overlap env sub sub') surr.before_writes
        then Some c
        else None)
      reads
    |> List.sort_uniq compare
  in
  let system_state =
    List.filter_map
      (fun (c, sub) ->
        if external_ c then Some c
        else if
          List.exists (fun (c', sub') -> c' = c && subsets_overlap env sub sub') surr.after_reads
        then Some c
        else None)
      writes
    |> List.sort_uniq compare
  in
  (input_config, system_state)

(* ------------------------------------------------------------------ *)
(* Building the standalone program                                     *)
(* ------------------------------------------------------------------ *)

let referenced_containers_of_state st =
  let from_edges = State.referenced_containers st in
  let from_nodes =
    List.filter_map (fun (_, n) -> match n with Node.Access d -> Some d | _ -> None)
      (State.nodes st)
  in
  List.sort_uniq compare (from_edges @ from_nodes)

let declare_containers p c states_in_c ~input_config ~system_state ~extra =
  let referenced =
    List.concat_map (fun st -> referenced_containers_of_state st) states_in_c @ extra
    |> List.sort_uniq compare
  in
  List.iter
    (fun name ->
      match Graph.container_opt p name with
      | None -> ()
      | Some desc ->
          let visible = List.mem name input_config || List.mem name system_state in
          Graph.add_container c name { desc with transient = not visible })
    referenced

let subgraph_state st nodes =
  let st' = State.create (State.label st ^ "_cut") in
  List.iter (fun n -> State.add_node_with_id st' n (State.node st n)) nodes;
  List.iter
    (fun (e : State.edge) ->
      if List.mem e.src nodes && List.mem e.dst nodes then
        ignore
          (State.add_edge st' ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
             ?dst_memlet:e.dst_memlet e.src e.dst))
    (State.edges st);
  st'

let extract_dataflow ?(options = default_options) p ~state:sid ~nodes:seed =
  let env = Symbolic.Expr.Env.of_list options.symbols in
  let st = Graph.state p sid in
  let nodes = closure st seed in
  if nodes = [] then invalid_arg "Cutout.extract_dataflow: empty seed";
  let reads, writes = accesses_of_nodes st nodes in
  let surr = surroundings_dataflow p sid nodes in
  let input_config, system_state = classify p env ~reads ~writes ~surr in
  let c = Graph.create (Graph.name p ^ "_cutout") in
  List.iter (Graph.add_symbol c) (Graph.symbols p);
  let st' = subgraph_state st nodes in
  Graph.add_state_with_id c sid st';
  declare_containers p c [ st' ] ~input_config ~system_state ~extra:[];
  {
    program = c;
    kind = Dataflow { state = sid; nodes };
    input_config;
    system_state;
    free_symbols = Graph.all_free_syms c;
  }

let extract_multistate ?(options = default_options) p region =
  let env = Symbolic.Expr.Env.of_list options.symbols in
  let region = List.sort_uniq compare region in
  let rw = List.map (fun sid -> accesses_of_state (Graph.state p sid)) region in
  let reads = List.concat_map fst rw
  and writes = List.concat_map snd rw in
  (* interstate edges inside the region read scalars too *)
  let inner_iedges =
    List.filter
      (fun (e : Graph.istate_edge) -> List.mem e.src region && List.mem e.dst region)
      (Graph.istate_edges p)
  in
  let reads = reads @ List.concat_map (interstate_reads p) inner_iedges in
  let surr = surroundings_multistate p region in
  let input_config, system_state = classify p env ~reads ~writes ~surr in
  let c = Graph.create (Graph.name p ^ "_cutout") in
  List.iter (Graph.add_symbol c) (Graph.symbols p);
  (* the region entry: the first region state in program BFS order *)
  let entry =
    match List.find_opt (fun s -> List.mem s region) (Graph.states_bfs p) with
    | Some s -> s
    | None -> List.hd region
  in
  let states' =
    List.map
      (fun sid ->
        let st' = State.copy (Graph.state p sid) in
        Graph.add_state_with_id c sid st';
        st')
      region
  in
  List.iter
    (fun (e : Graph.istate_edge) ->
      ignore (Graph.add_istate_edge c ~cond:e.cond ~assigns:e.assigns e.src e.dst))
    inner_iedges;
  (* synthetic entry state replicating the assignments of the (unique)
     entering edge, so loop variables stay bound inside the cutout *)
  let entering =
    List.filter
      (fun (e : Graph.istate_edge) -> e.dst = entry && not (List.mem e.src region))
      (Graph.istate_edges p)
  in
  let pre = Graph.add_state c "__cutout_entry" in
  let assigns = match entering with [ e ] -> e.assigns | _ -> [] in
  ignore (Graph.add_istate_edge c ~assigns pre entry);
  Graph.set_start_state c pre;
  let scalars_in_conds =
    List.concat_map (fun e -> List.map fst (interstate_reads p e)) inner_iedges
    @ List.map fst (List.concat_map (interstate_reads p) entering)
  in
  declare_containers p c states' ~input_config ~system_state ~extra:scalars_in_conds;
  {
    program = c;
    kind = Multistate { states = region };
    input_config;
    system_state;
    free_symbols = Graph.all_free_syms c;
  }

let extract ?(options = default_options) p (cs : Diff.change_set) =
  if Diff.is_empty cs then invalid_arg "Cutout.extract: empty change set";
  let node_states = List.sort_uniq compare (List.map fst cs.nodes) in
  match (cs.states, node_states) with
  | [], [ sid ] -> extract_dataflow ~options p ~state:sid ~nodes:(List.map snd cs.nodes)
  | _ -> extract_multistate ~options p (List.sort_uniq compare (cs.states @ node_states))

type shrink_stats = {
  original_bytes : int;
  shrunk_bytes : int;
  resized : (string * int * int) list;
}

(* All subsets touching container [c] anywhere in [g], widened through every
   enclosing map scope so that parameter-dependent inner accesses become
   parameter-free bounding boxes (same over-approximation as memlet
   propagation). *)
let subsets_of g c =
  List.concat_map
    (fun (_, st) ->
      (* innermost-to-outermost chain of enclosing map entries for a node *)
      let rec chain n =
        match State.scope_of st n with None -> [] | Some e -> e :: chain e
      in
      let widen_for_node n subset =
        List.fold_left
          (fun sub entry ->
            match State.node st entry with
            | Node.Map_entry { params; ranges; _ } ->
                Propagate.through_map ~params ~ranges sub
            | _ -> sub)
          subset (chain n)
      in
      List.concat_map
        (fun (e : State.edge) ->
          (* widen through the deeper endpoint's scope chain *)
          let deeper =
            if List.length (chain e.src) >= List.length (chain e.dst) then e.src else e.dst
          in
          let pick = function
            | Some (m : Memlet.t) when m.data = c -> [ widen_for_node deeper m.subset ]
            | _ -> []
          in
          pick e.memlet @ pick e.dst_memlet)
        (State.edges st))
    (Graph.states g)

let container_bytes env (name, (d : Graph.datadesc)) =
  ignore name;
  Dtype.size_bytes d.dtype
  * List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 d.shape

let shrink_containers t ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  let g = Graph.copy t.program in
  let resized = ref [] in
  let original_bytes =
    List.fold_left (fun acc c -> try acc + container_bytes env c with _ -> acc) 0
      (Graph.containers g)
  in
  List.iter
    (fun (name, (d : Graph.datadesc)) ->
      if d.shape <> [] then
        match subsets_of g name with
        | [] -> ()
        | subs -> (
            let dims = List.length d.shape in
            if List.for_all (fun s -> Symbolic.Subset.num_dims s = dims) subs then
              try
                let new_shape =
                  List.mapi
                    (fun i orig ->
                      (* bound = max over accesses of (hi + 1), kept symbolic *)
                      let bound =
                        List.fold_left
                          (fun acc s ->
                            let r = List.nth s i in
                            Symbolic.Expr.max_ acc
                              (Symbolic.Expr.add r.Symbolic.Subset.hi Symbolic.Expr.one))
                          (Symbolic.Expr.int 1) subs
                        |> Symbolic.Expr.simplify
                      in
                      (* must be evaluable and strictly smaller to shrink *)
                      let bv = Symbolic.Expr.eval env bound in
                      let ov = Symbolic.Expr.eval env orig in
                      if bv < ov && bv > 0 then bound else orig)
                    d.shape
                in
                if not (List.for_all2 Symbolic.Expr.equal new_shape d.shape) then begin
                  let old_n =
                    List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 d.shape
                  in
                  let new_n =
                    List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 new_shape
                  in
                  Graph.add_container g name { d with shape = new_shape };
                  resized := (name, old_n, new_n) :: !resized
                end
              with Symbolic.Expr.Unbound_symbol _ | Symbolic.Expr.Division_by_zero | Failure _ ->
                ()))
    (Graph.containers g);
  let shrunk_bytes =
    List.fold_left (fun acc c -> try acc + container_bytes env c with _ -> acc) 0
      (Graph.containers g)
  in
  ( { t with program = g },
    { original_bytes; shrunk_bytes; resized = List.rev !resized } )

let program_reads g =
  List.concat_map
    (fun (_, st) -> List.map fst (fst (accesses_of_state st)))
    (Graph.states g)
  @ List.concat_map (fun e -> List.map fst (interstate_reads g e)) (Graph.istate_edges g)
  |> List.sort_uniq compare

let input_elements t ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.fold_left
    (fun acc c ->
      match Graph.container_opt t.program c with
      | None -> acc
      | Some d ->
          acc + List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 d.shape)
    0 t.input_config

let input_bytes t ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.fold_left
    (fun acc c ->
      match Graph.container_opt t.program c with
      | None -> acc
      | Some d ->
          acc
          + Dtype.size_bytes d.dtype
            * List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 d.shape)
    0 t.input_config

let pp fmt t =
  let kind =
    match t.kind with
    | Dataflow { state; nodes } ->
        Printf.sprintf "dataflow(state %d, %d nodes)" state (List.length nodes)
    | Multistate { states } -> Printf.sprintf "multistate(%d states)" (List.length states)
  in
  Format.fprintf fmt "cutout %s: inputs {%s}; system state {%s}; symbols {%s}" kind
    (String.concat ", " t.input_config)
    (String.concat ", " t.system_state)
    (String.concat ", " t.free_symbols)
