(** Gray-box constraint derivation (Sec. 5.1).

    Static analysis of the cutout and the original program derives sampling
    constraints for each free symbol, reducing uninteresting crashes during
    differential fuzzing:

    - symbols used in container shapes are sizes, sampled in [1, max_size];
    - symbols used to index containers are bounded by the indexed dimension;
    - symbols that are loop iteration variables in the original program are
      bounded by the loop's bounds;
    - remaining symbols are sampled from a default interval;
    - engineers may override any of these with custom bounds. *)

type sym_constraint =
  | Size of int  (** sampled uniformly in [1, n] *)
  | Bounded of Symbolic.Expr.t * Symbolic.Expr.t
      (** inclusive symbolic bounds, evaluated under already-sampled sizes *)
  | Free of int  (** sampled uniformly in [-n, n] *)

type t = {
  sym_order : (string * sym_constraint) list;
      (** sizes first, then dependent symbols, in sampling order *)
  value_range : float * float;  (** container element sampling interval *)
}

(** [derive ~original cutout] runs both analyses of Sec. 5.1. [custom]
    bounds win over derived ones. *)
val derive :
  ?max_size:int ->
  ?value_range:float * float ->
  ?custom:(string * (int * int)) list ->
  original:Sdfg.Graph.t ->
  Cutout.t ->
  t

(** Constraints that sample every symbol uniformly from [1-n, n] with no
    analysis — the baseline uniform fuzzing of Sec. 5.1. *)
val uniform : ?bound:int -> Cutout.t -> t

val pp : Format.formatter -> t -> unit
