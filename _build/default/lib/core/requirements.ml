type capability =
  | Scalar_side_effects
  | Memory_side_effects
  | Subregion_side_effects
  | Input_generalization
  | Size_generalization

type support = Yes | No | Partial of string

type representation = { name : string; support : (capability * support) list }

let capabilities =
  [
    Scalar_side_effects;
    Memory_side_effects;
    Subregion_side_effects;
    Input_generalization;
    Size_generalization;
  ]

let capability_name = function
  | Scalar_side_effects -> "Scalar"
  | Memory_side_effects -> "Memory"
  | Subregion_side_effects -> "Sub-region"
  | Input_generalization -> "Inputs"
  | Size_generalization -> "Sizes"

let all v = List.map (fun c -> (c, v)) capabilities

let representations =
  [
    { name = "Abstract Syntax Tree (AST)"; support = all No };
    {
      name = "SSA-Form";
      support =
        [
          (Scalar_side_effects, Yes);
          (Memory_side_effects, No);
          (Subregion_side_effects, No);
          (Input_generalization, No);
          (Size_generalization, No);
        ];
    };
    {
      name = "PDG";
      support =
        [
          (Scalar_side_effects, Yes);
          (Memory_side_effects, Yes);
          (Subregion_side_effects, No);
          (Input_generalization, No);
          (Size_generalization, No);
        ];
    };
    {
      name = "MLIR";
      support =
        [
          (Scalar_side_effects, Yes);
          (Memory_side_effects, Yes);
          (Subregion_side_effects, Partial "constant sizes only");
          (Input_generalization, Yes);
          (Size_generalization, No);
        ];
    };
    { name = "Parametric Dataflow"; support = all Yes };
  ]

let parametric_dataflow_is_complete () =
  let complete r = List.for_all (fun (_, s) -> s = Yes) r.support in
  List.for_all
    (fun r -> complete r = (r.name = "Parametric Dataflow"))
    representations

let support_marker = function Yes -> "yes" | No -> "no" | Partial _ -> "partial"

let to_table () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%-28s" "Representation");
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %-12s" (capability_name c))) capabilities;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make 90 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "%-28s" r.name);
      List.iter
        (fun c ->
          let s = List.assoc c r.support in
          Buffer.add_string buf (Printf.sprintf " %-12s" (support_marker s)))
        capabilities;
      Buffer.add_char buf '\n')
    representations;
  Buffer.contents buf
