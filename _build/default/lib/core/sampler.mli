(** Input-configuration sampling for differential fuzzing.

    Uses a self-contained splitmix-style PRNG so trials are reproducible from
    a seed alone — a failing test case is fully described by (cutout, seed,
    trial number). *)

type rng

val create : int -> rng
val split : rng -> rng
(** An independent stream (for per-trial derivation). *)

val int_in : rng -> int -> int -> int
(** Uniform in [lo, hi]; [hi < lo] is treated as the singleton [lo]. *)

val float_in : rng -> float -> float -> float
val bool : rng -> bool

(** Sample concrete symbol values respecting constraint order: sizes first,
    then bounds evaluated under them. Unevaluable bounds fall back to
    [0, 8]. *)
val sample_symbols : rng -> Constraints.t -> (string * int) list

(** Sample the input configuration of a cutout: one array per input
    container, with values in the constraint range cast to the container
    dtype. *)
val sample_inputs :
  rng -> Constraints.t -> Cutout.t -> symbols:(string * int) list -> (string * float array) list

(** Mutate a sampled configuration in place-like fashion (returns copies):
    small symbol steps and sparse array perturbations — the mutation stage of
    coverage-guided fuzzing. *)
val mutate :
  rng ->
  Constraints.t ->
  Cutout.t ->
  (string * int) list * (string * float array) list ->
  (string * int) list * (string * float array) list
