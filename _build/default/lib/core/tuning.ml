type outcome = { param : int; verdict : Difftest.verdict; elapsed_s : float }

type result = { outcomes : outcome list; safe : int list; unsafe : int list }

let sweep ?(config = Difftest.default_config) g ~family ~params ~site =
  let outcomes =
    List.map
      (fun param ->
        let x = family param in
        let r = Difftest.test_instance ~config g x site in
        { param; verdict = r.verdict; elapsed_s = r.elapsed_s })
      params
  in
  {
    outcomes;
    safe =
      List.filter_map
        (fun o -> match o.verdict with Difftest.Pass -> Some o.param | _ -> None)
        outcomes;
    unsafe =
      List.filter_map
        (fun o -> match o.verdict with Difftest.Fail _ -> Some o.param | _ -> None)
        outcomes;
  }

let pp_result fmt r =
  List.iter
    (fun o ->
      Format.fprintf fmt "param %3d: %s@." o.param
        (match o.verdict with
        | Difftest.Pass -> "pass"
        | Difftest.Fail f -> "FAIL (" ^ Difftest.class_to_string f.Difftest.klass ^ ")"))
    r.outcomes;
  Format.fprintf fmt "safe: {%s}; unsafe: {%s}@."
    (String.concat ", " (List.map string_of_int r.safe))
    (String.concat ", " (List.map string_of_int r.unsafe))
