lib/core/sampler.mli: Constraints Cutout
