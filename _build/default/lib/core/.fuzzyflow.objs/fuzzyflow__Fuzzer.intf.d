lib/core/fuzzer.mli: Cutout Difftest Sdfg
