lib/core/difftest.ml: Array Constraints Cutout Diff Float Format Graph Interp List Min_cut Sampler Sdfg Transforms Unix Validate
