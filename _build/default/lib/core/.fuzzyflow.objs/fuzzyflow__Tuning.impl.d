lib/core/tuning.ml: Difftest Format List String
