lib/core/min_cut.ml: Array Cutout Flownet Graph Hashtbl List Memlet Node Option Queue Sdfg State Symbolic
