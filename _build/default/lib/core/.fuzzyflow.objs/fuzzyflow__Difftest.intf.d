lib/core/difftest.mli: Cutout Format Interp Min_cut Sdfg Transforms
