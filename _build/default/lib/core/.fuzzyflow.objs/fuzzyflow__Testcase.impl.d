lib/core/testcase.ml: Array Buffer Constraints Cutout Difftest Filename Format Interp List Option Printf Sampler Sdfg String Sys Transforms Unix
