lib/core/localize.ml: Array Cutout Difftest Float Format Graph Hashtbl Interp List Memlet Node Sdfg State Testcase Transforms
