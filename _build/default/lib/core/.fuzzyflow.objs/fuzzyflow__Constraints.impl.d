lib/core/constraints.ml: Cutout Format Graph List Memlet Option Sdfg State Symbolic Transforms
