lib/core/tuning.mli: Difftest Format Sdfg Transforms
