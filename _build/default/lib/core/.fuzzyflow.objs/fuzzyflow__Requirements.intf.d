lib/core/requirements.mli:
