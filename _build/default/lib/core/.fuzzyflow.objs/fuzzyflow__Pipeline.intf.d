lib/core/pipeline.mli: Difftest Format Sdfg Transforms
