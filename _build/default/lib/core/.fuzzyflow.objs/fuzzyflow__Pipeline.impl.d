lib/core/pipeline.ml: Difftest Format List Sdfg Transforms
