lib/core/cutout.mli: Format Sdfg
