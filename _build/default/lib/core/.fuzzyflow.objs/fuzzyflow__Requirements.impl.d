lib/core/requirements.ml: Buffer List Printf String
