lib/core/min_cut.mli: Cutout Flownet Sdfg
