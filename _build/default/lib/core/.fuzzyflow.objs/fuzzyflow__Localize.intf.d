lib/core/localize.mli: Cutout Difftest Format Sdfg Transforms
