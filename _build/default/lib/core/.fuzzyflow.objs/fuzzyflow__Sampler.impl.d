lib/core/sampler.ml: Array Constraints Cutout Dtype Graph Int64 Interp List Sdfg Symbolic
