lib/core/campaign.ml: Buffer Difftest List Printf String Transforms
