lib/core/campaign.mli: Difftest Sdfg Transforms
