lib/core/cutout.ml: Diff Dtype Format Graph Hashtbl List Memlet Node Printf Propagate Queue Sdfg State String Symbolic
