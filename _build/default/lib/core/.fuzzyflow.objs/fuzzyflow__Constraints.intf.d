lib/core/constraints.mli: Cutout Format Sdfg Symbolic
