lib/core/testcase.mli: Cutout Difftest Interp Sdfg
