lib/core/fuzzer.ml: Constraints Cutout Difftest Int Interp List Sampler Set
