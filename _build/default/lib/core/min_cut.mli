(** Minimum input-flow cut (Sec. 4 of the paper).

    Reduces a dataflow cutout's input-configuration size by optionally growing
    the cutout with upstream computation: finding the cheapest set of inputs
    is reformulated as a minimum s-t cut between the start of the program and
    the cutout, with data-movement volumes as edge capacities. Data-node
    out-edges get infinite capacity (a cut must happen {e before} a data
    node); reaching external data always costs its full size.

    Capacities are concretized under user-provided symbol values
    (symbolic max-flow is not computable, Sec. 4.2). *)

type stats = {
  original_elements : int;  (** input-configuration size before *)
  minimized_elements : int;  (** and after *)
  extension : int list;  (** nodes added to the cutout *)
  cut_value : Flownet.Cap.t;  (** the max-flow = min-cut value *)
}

(** [minimize p cutout ~symbols] returns the (possibly identical) cutout with
    the smallest input configuration, plus statistics. Multistate cutouts are
    returned unchanged (the min-cut operates on one dataflow graph). *)
val minimize :
  Sdfg.Graph.t -> Cutout.t -> symbols:(string * int) list -> Cutout.t * stats
