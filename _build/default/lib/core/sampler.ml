open Sdfg

(* Splitmix64: tiny, high-quality, reproducible. *)
type rng = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed lxor 0x1234567) }

let next r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split r = { state = next r }

let int_in r lo hi =
  if hi <= lo then lo
  else
    let span = hi - lo + 1 in
    let x = Int64.to_int (Int64.shift_right_logical (next r) 2) in
    lo + (x mod span)

let float_in r lo hi =
  let x = Int64.to_float (Int64.shift_right_logical (next r) 11) /. 9007199254740992.0 in
  lo +. (x *. (hi -. lo))

let bool r = Int64.to_int (Int64.logand (next r) 1L) = 1

let sample_symbols r (c : Constraints.t) =
  List.fold_left
    (fun acc (sym, sc) ->
      let v =
        match sc with
        | Constraints.Size n -> int_in r 1 n
        | Constraints.Free n -> int_in r (-n) n
        | Constraints.Bounded (lo, hi) -> (
            let env = Symbolic.Expr.Env.of_list acc in
            match (Symbolic.Expr.eval env lo, Symbolic.Expr.eval env hi) with
            | lo', hi' -> int_in r (min lo' hi') (max lo' hi')
            | exception (Symbolic.Expr.Unbound_symbol _ | Symbolic.Expr.Division_by_zero) ->
                int_in r 0 8)
      in
      acc @ [ (sym, v) ])
    [] c.sym_order

let fill_array r (c : Constraints.t) (dtype : Dtype.t) n =
  let lo, hi = c.value_range in
  Array.init n (fun _ ->
      match dtype with
      | Dtype.F64 | Dtype.F32 -> Interp.Value.cast dtype (float_in r lo hi)
      | Dtype.I64 | Dtype.I32 ->
          Interp.Value.cast dtype (float_of_int (int_in r (int_of_float lo) (int_of_float hi)))
      | Dtype.Bool -> if bool r then 1. else 0.)

let container_size g env c =
  match Graph.container_opt g c with
  | None -> 0
  | Some d -> List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 d.shape

let sample_inputs r (c : Constraints.t) (cut : Cutout.t) ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.map
    (fun name ->
      let dtype =
        match Graph.container_opt cut.program name with
        | Some d -> d.dtype
        | None -> Dtype.F64
      in
      let n = max 1 (container_size cut.program env name) in
      (name, fill_array r c dtype n))
    cut.input_config

let mutate r (c : Constraints.t) (cut : Cutout.t) (syms, inputs) =
  ignore cut;
  let mutate_sym (name, v) =
    match List.assoc_opt name c.sym_order with
    | Some (Constraints.Size n) ->
        if int_in r 0 3 = 0 then (name, max 1 (min n (v + int_in r (-2) 2))) else (name, v)
    | Some (Constraints.Free n) ->
        if int_in r 0 3 = 0 then (name, max (-n) (min n (v + int_in r (-2) 2))) else (name, v)
    | Some (Constraints.Bounded _) | None ->
        if int_in r 0 3 = 0 then (name, max 0 (v + int_in r (-1) 1)) else (name, v)
  in
  let syms' = List.map mutate_sym syms in
  if syms' <> syms then
    (* shapes may have changed: resample arrays under the new sizes *)
    (syms', sample_inputs r c cut ~symbols:syms')
  else
    let lo, hi = c.value_range in
    let inputs' =
      List.map
        (fun (name, arr) ->
          let arr = Array.copy arr in
          let n = Array.length arr in
          let k = 1 + int_in r 0 (min 7 (n - 1)) in
          for _ = 1 to k do
            let i = int_in r 0 (n - 1) in
            arr.(i) <-
              (match int_in r 0 4 with
              | 0 -> 0.
              | 1 -> arr.(i) *. -1.
              | 2 -> arr.(i) *. 2.
              | 3 -> float_in r lo hi
              | _ -> arr.(i) +. 1.)
          done;
          (name, arr))
        inputs
    in
    (syms, inputs')
