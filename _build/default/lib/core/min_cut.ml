open Sdfg

type stats = {
  original_elements : int;
  minimized_elements : int;
  extension : int list;
  cut_value : Flownet.Cap.t;
}

let container_elements g env c =
  match Graph.container_opt g c with
  | None -> Flownet.Cap.Inf
  | Some d -> (
      try
        Flownet.Cap.finite
          (List.fold_left (fun v e -> v * max 0 (Symbolic.Expr.eval env e)) 1 d.shape)
      with Symbolic.Expr.Unbound_symbol _ | Symbolic.Expr.Division_by_zero -> Flownet.Cap.Inf)

let memlet_volume env (m : Memlet.t option) =
  match m with
  | None -> Flownet.Cap.zero
  | Some m -> (
      try Flownet.Cap.finite (max 0 (Symbolic.Subset.volume_eval env m.subset))
      with Symbolic.Expr.Unbound_symbol _ | Symbolic.Expr.Division_by_zero -> Flownet.Cap.Inf)

let is_external g c =
  match Graph.container_opt g c with Some d -> not d.transient | None -> false

(* Build the prepared flow network of Sec. 4.2 and solve. *)
let minimize_dataflow p (cut : Cutout.t) ~symbols sid cnodes =
  let env = Symbolic.Expr.Env.of_list symbols in
  let st = Graph.state p sid in
  let in_c n = List.mem n cnodes in
  let fg = Flownet.Maxflow.create () in
  let s = Flownet.Maxflow.add_node fg in
  let t = Flownet.Maxflow.add_node fg in
  let outside = List.filter (fun n -> not (in_c n)) (State.node_ids st) in
  let fid = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace fid n (Flownet.Maxflow.add_node fg)) outside;
  let node_id n = Hashtbl.find fid n in
  (* Scope-internal edges carry per-iteration subsets (volume 1 per map
     point); a cut through the inside of a map scope is never meaningful —
     cutout extraction expands to whole scopes anyway — so such edges get
     infinite capacity and cuts land on the top-level dataflow. *)
  let scope_memo = Hashtbl.create 32 in
  let scoped n =
    match Hashtbl.find_opt scope_memo n with
    | Some v -> v
    | None ->
        let v = State.scope_of st n <> None in
        Hashtbl.replace scope_memo n v;
        v
  in
  (* original dataflow edges among outside nodes; capacities per Sec. 4.2 *)
  List.iter
    (fun (e : State.edge) ->
      if (not (in_c e.src)) && not (in_c e.dst) then begin
        let cap =
          if scoped e.src || scoped e.dst then Flownet.Cap.Inf
          else
            match State.node st e.src with
            | Node.Access _ -> Flownet.Cap.Inf (* cut before a data node, never after *)
            | _ -> (
                (* edges into external data nodes cannot be cut either *)
                match State.node st e.dst with
                | Node.Access c when is_external p c -> Flownet.Cap.Inf
                | _ -> memlet_volume env e.memlet)
        in
        Flownet.Maxflow.add_edge fg (node_id e.src) (node_id e.dst) cap
      end)
    (State.edges st);
  (* source hookups *)
  List.iter
    (fun n ->
      let is_src = State.in_edges st n = [] in
      match State.node st n with
      | Node.Access c when is_src || is_external p c ->
          Flownet.Maxflow.add_edge fg s (node_id n) (container_elements p env c)
      | _ -> if is_src then Flownet.Maxflow.add_edge fg s (node_id n) Flownet.Cap.zero)
    outside;
  (* sink hookups: input-configuration access nodes inside the cutout *)
  List.iter
    (fun n ->
      match State.node st n with
      | Node.Access c when in_c n && List.mem c cut.Cutout.input_config ->
          let ins = State.in_edges st n in
          if ins = [] then
            (* a pure input: unavoidable cost *)
            Flownet.Maxflow.add_edge fg s t (container_elements p env c)
          else
            List.iter
              (fun (e : State.edge) ->
                if not (in_c e.src) then
                  let cap =
                    match e.dst_memlet with
                    | Some _ -> memlet_volume env e.dst_memlet
                    | None -> memlet_volume env e.memlet
                  in
                  Flownet.Maxflow.add_edge fg (node_id e.src) t cap)
              ins
      | _ -> ())
    (State.node_ids st);
  let result = Flownet.Maxflow.max_flow fg ~s ~t in
  (* extension: sink-side nodes that can reach T through the prepared graph *)
  let reaches_t = Hashtbl.create 32 in
  Hashtbl.replace reaches_t t ();
  (* run a reverse reachability on the arcs we added; rebuild adjacency *)
  let rev = Hashtbl.create 64 in
  let add_rev u v = Hashtbl.replace rev v (u :: (Option.value ~default:[] (Hashtbl.find_opt rev v))) in
  (* recreate the same arcs for reverse traversal *)
  List.iter
    (fun (e : State.edge) ->
      if (not (in_c e.src)) && not (in_c e.dst) then add_rev (node_id e.src) (node_id e.dst))
    (State.edges st);
  List.iter
    (fun n ->
      match State.node st n with
      | Node.Access c when in_c n && List.mem c cut.Cutout.input_config ->
          List.iter
            (fun (e : State.edge) -> if not (in_c e.src) then add_rev (node_id e.src) t)
            (State.in_edges st n)
      | _ -> ())
    (State.node_ids st);
  let queue = Queue.create () in
  Queue.add t queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if not (Hashtbl.mem reaches_t u) then begin
          Hashtbl.replace reaches_t u ();
          Queue.add u queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt rev v))
  done;
  let extension =
    List.filter
      (fun n ->
        let id = node_id n in
        (not result.source_side.(id)) && Hashtbl.mem reaches_t id)
      outside
  in
  let original_elements = Cutout.input_elements cut ~symbols in
  if extension = [] then
    ( cut,
      {
        original_elements;
        minimized_elements = original_elements;
        extension = [];
        cut_value = result.max_flow;
      } )
  else begin
    let cut' =
      Cutout.extract_dataflow ~options:{ Cutout.symbols } p ~state:sid ~nodes:(cnodes @ extension)
    in
    let minimized_elements = Cutout.input_elements cut' ~symbols in
    if minimized_elements < original_elements then
      ( cut',
        { original_elements; minimized_elements; extension; cut_value = result.max_flow } )
    else
      ( cut,
        {
          original_elements;
          minimized_elements = original_elements;
          extension = [];
          cut_value = result.max_flow;
        } )
  end

let minimize p (cut : Cutout.t) ~symbols =
  match cut.kind with
  | Cutout.Multistate _ ->
      let n = Cutout.input_elements cut ~symbols in
      ( cut,
        { original_elements = n; minimized_elements = n; extension = []; cut_value = Flownet.Cap.zero }
      )
  | Cutout.Dataflow { state; nodes } -> minimize_dataflow p cut ~symbols state nodes
