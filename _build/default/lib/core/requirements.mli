(** The requirements matrix for localized optimization testing (Table 1).

    Encodes, per program representation, which of the five capabilities it
    provides: scalar / memory / sub-region side-effect analysis, and input /
    size generalization. The bench harness prints this as Table 1. *)

type capability =
  | Scalar_side_effects
  | Memory_side_effects
  | Subregion_side_effects
  | Input_generalization
  | Size_generalization

type support = Yes | No | Partial of string

type representation = {
  name : string;
  support : (capability * support) list;
}

val capabilities : capability list
val capability_name : capability -> string
val representations : representation list

(** Check that the parametric-dataflow row claims all five capabilities and
    that it is the only row that does — the paper's argument for the IR
    choice. *)
val parametric_dataflow_is_complete : unit -> bool

val to_table : unit -> string
