open Sdfg

type sym_constraint =
  | Size of int
  | Bounded of Symbolic.Expr.t * Symbolic.Expr.t
  | Free of int

type t = {
  sym_order : (string * sym_constraint) list;
  value_range : float * float;
}

(* Symbols appearing in container shapes. *)
let shape_syms g =
  List.concat_map
    (fun (_, (d : Graph.datadesc)) -> List.concat_map Symbolic.Expr.free_syms d.shape)
    (Graph.containers g)
  |> List.sort_uniq compare

(* For an index symbol: the shape expressions of every dimension it is used
   to address, across all memlets of the graph. *)
let indexed_dims g sym =
  let acc = ref [] in
  let scan_memlet (m : Memlet.t) =
    match Graph.container_opt g m.data with
    | None -> ()
    | Some desc ->
        List.iteri
          (fun i (r : Symbolic.Subset.range) ->
            let syms =
              Symbolic.Expr.free_syms r.lo @ Symbolic.Expr.free_syms r.hi
              @ Symbolic.Expr.free_syms r.step
            in
            if List.mem sym syms then
              match List.nth_opt desc.shape i with
              | Some dim -> acc := dim :: !acc
              | None -> ())
          m.subset
  in
  List.iter
    (fun (_, st) ->
      List.iter
        (fun (e : State.edge) ->
          Option.iter scan_memlet e.memlet;
          Option.iter scan_memlet e.dst_memlet)
        (State.edges st))
    (Graph.states g);
  List.sort_uniq compare !acc

(* Loop bounds of [sym] in the original program, when it is an iteration
   variable of a canonical loop with analyzable bounds. *)
let loop_bounds original sym =
  List.find_map
    (fun (l : Transforms.Xform.loop) ->
      if l.var <> sym then None
      else
        let bound_of_cond =
          match l.cond with
          | Symbolic.Cond.Le (Symbolic.Expr.Sym v, e) when v = sym -> Some e
          | Symbolic.Cond.Lt (Symbolic.Expr.Sym v, e) when v = sym ->
              Some (Symbolic.Expr.sub e Symbolic.Expr.one)
          | Symbolic.Cond.Ge (Symbolic.Expr.Sym v, e) when v = sym -> Some e
          | Symbolic.Cond.Gt (Symbolic.Expr.Sym v, e) when v = sym ->
              Some (Symbolic.Expr.add e Symbolic.Expr.one)
          | _ -> None
        in
        match bound_of_cond with
        | None -> None
        | Some b ->
            (* the loop spans [min(init, b), max(init, b)] regardless of
               direction *)
            Some (Symbolic.Expr.min_ l.init b, Symbolic.Expr.max_ l.init b))
    (Transforms.Xform.find_loops original)

let derive ?(max_size = 16) ?(value_range = (-100., 100.)) ?(custom = []) ~original
    (cutout : Cutout.t) =
  let g = cutout.program in
  let sizes = shape_syms g in
  let classify sym =
    match List.assoc_opt sym custom with
    | Some (lo, hi) -> Bounded (Symbolic.Expr.int lo, Symbolic.Expr.int hi)
    | None ->
        if List.mem sym sizes then Size max_size
        else (
          match loop_bounds original sym with
          | Some (lo, hi) -> Bounded (lo, hi)
          | None -> (
              match indexed_dims g sym with
              | [] -> Free 100
              | dims ->
                  let upper =
                    List.fold_left
                      (fun acc d -> Symbolic.Expr.min_ acc (Symbolic.Expr.sub d Symbolic.Expr.one))
                      (Symbolic.Expr.sub (List.hd dims) Symbolic.Expr.one)
                      (List.tl dims)
                  in
                  Bounded (Symbolic.Expr.zero, upper)))
  in
  let classified = List.map (fun s -> (s, classify s)) cutout.free_symbols in
  let order (_, c) = match c with Size _ -> 0 | Bounded _ -> 1 | Free _ -> 1 in
  let sym_order = List.stable_sort (fun a b -> compare (order a) (order b)) classified in
  { sym_order; value_range }

let uniform ?(bound = 64) (cutout : Cutout.t) =
  {
    sym_order = List.map (fun s -> (s, Free bound)) cutout.free_symbols;
    value_range = (-1e6, 1e6);
  }

let pp fmt t =
  List.iter
    (fun (s, c) ->
      match c with
      | Size n -> Format.fprintf fmt "%s: size [1, %d]@ " s n
      | Bounded (lo, hi) ->
          Format.fprintf fmt "%s: [%s, %s]@ " s (Symbolic.Expr.to_string lo)
            (Symbolic.Expr.to_string hi)
      | Free n -> Format.fprintf fmt "%s: free [%d, %d]@ " s (-n) n)
    t.sym_order
