(** Guarded optimization: the workflow of Fig. 1.

    Performance engineers apply custom transformations at scale; FuzzyFlow
    gates each instance — only instances whose cutout-level differential test
    passes are applied to the program. The result is an optimized program
    plus an audit log of what was applied, what was rejected and why. *)

type decision =
  | Applied
  | Rejected of Difftest.failing
  | Stale of string  (** the site no longer matched after earlier rewrites *)

type step = {
  xform_name : string;
  site : Transforms.Xform.site;
  decision : decision;
}

type log = {
  steps : step list;
  applied : int;
  rejected : int;
  stale : int;
}

val pp_log : Format.formatter -> log -> unit

(** [optimize g xforms] returns the optimized copy of [g] (never mutated) and
    the audit log. For each transformation, sites are discovered on the
    current program and tested one by one; passing instances are applied
    immediately, so later sites see the rewritten program. *)
val optimize :
  ?config:Difftest.config ->
  Sdfg.Graph.t ->
  Transforms.Xform.t list ->
  Sdfg.Graph.t * log
