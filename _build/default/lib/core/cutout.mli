(** Test-case (cutout) extraction — Sec. 3 of the paper.

    Given a change set Δ_T, extracts the minimal dataflow subgraph capturing
    the change into a standalone program, then determines

    - the {e system state}: every container written inside the cutout that is
      externally visible or read again later in the original program
      (external-data analysis + forward program-flow BFS, Sec. 3.1), and
    - the {e input configuration}: every container read inside the cutout
      that is externally visible or possibly written earlier (reverse BFS,
      Sec. 3.2).

    Node and state ids are preserved, so the transformation site remains
    valid on the extracted program and T can be applied to the cutout
    directly. *)

type t = {
  program : Sdfg.Graph.t;  (** standalone, runnable cutout program *)
  kind : kind;
  input_config : string list;  (** sampled & provided before each trial *)
  system_state : string list;  (** compared after each trial *)
  free_symbols : string list;  (** parameters to sample *)
}

and kind =
  | Dataflow of { state : int; nodes : int list }  (** single-state cutout *)
  | Multistate of { states : int list }  (** control-flow cutout *)

(** Overlap checks concretize subsets under these bindings; symbols missing
    from the list make the check conservatively report overlap. *)
type options = { symbols : (string * int) list }

val default_options : options

(** [extract ?options p change_set] builds the cutout for Δ_T = [change_set].
    Dataflow change sets confined to one state yield a [Dataflow] cutout; any
    state-level entries (or nodes spread over several states) yield a
    [Multistate] cutout covering those states.
    @raise Invalid_argument on an empty change set. *)
val extract : ?options:options -> Sdfg.Graph.t -> Sdfg.Diff.change_set -> t

(** Re-extract with the cutout grown to [nodes] (used after the minimum
    input-flow cut chose a larger, cheaper cutout). *)
val extract_dataflow :
  ?options:options -> Sdfg.Graph.t -> state:int -> nodes:int list -> t

(** Sub-region container minimization (Sec. 3, step 3): when every access to
    a container inside the cutout provably stays below a bound smaller than
    the declared dimension, the container is shrunk to that bound — e.g. a
    computation touching only indices 0–9 of [my_arr\[N\]] keeps a 10-element
    array. Bounds stay symbolic where the accesses are; containers whose
    access bounds cannot be evaluated under [symbols] (e.g. scope-local
    per-iteration views) are left unchanged. *)

type shrink_stats = {
  original_bytes : int;
  shrunk_bytes : int;
  resized : (string * int * int) list;  (** container, old elements, new *)
}

val shrink_containers : t -> symbols:(string * int) list -> t * shrink_stats

(** Containers read anywhere in a program (write-conflict-resolution writes
    count as reads). Differential testing extends a cutout's input
    configuration with the externally visible reads of the {e transformed}
    cutout: a transformation may introduce reads of prior contents (e.g.
    turning an overwrite into an accumulation) that the original cutout's
    analysis cannot see. *)
val program_reads : Sdfg.Graph.t -> string list

(** Total input-configuration size in elements under concrete symbols —
    the quantity the minimum input-flow cut shrinks (Sec. 4). *)
val input_elements : t -> symbols:(string * int) list -> int

(** Same, in bytes. *)
val input_bytes : t -> symbols:(string * int) list -> int

val pp : Format.formatter -> t -> unit
