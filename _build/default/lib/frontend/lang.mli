(** A small imperative frontend language, lowered to SDFGs.

    Plays the role of DaCe's Python/C/Fortran frontends: programs are written
    as text and compiled into the parametric dataflow IR, with maps for
    parallel loops, write-conflict resolution for reductions, and the
    canonical guard/body state pattern for sequential [for] loops.

    {v
    program jacobi1d
    symbol N, T
    inout  f64 A[N]
    inout  f64 B[N]

    for t = 0 to T-1 {
      map i = 1 to N-2 {
        B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1])
      }
      map i = 1 to N-2 {
        A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1])
      }
    }
    v}

    Declarations: [symbol a, b], and [input|output|inout|temp TYPE name[dims]]
    with TYPE one of f64 f32 i64 i32 bool ([temp] declares a transient;
    the others are externally visible). Scalars omit the brackets.

    Statements:
    - [map i = lo to hi (, j = lo to hi)* { assignments }] — a parallel map
      scope; [parallel map] marks it with the parallel schedule (a GPU-kernel
      candidate).
    - [for v = lo to hi { ... }] / [for v = lo downto hi { ... }] /
      [... step k] — a sequential state-machine loop.
    - assignments [dst[idx] = expr], with accumulation forms [+=], [*=],
      [min=], [max=] (lowered to write-conflict resolution). Right-hand
      sides use the tasklet expression language (see {!Sdfg.Tcode}) with
      container element references [X[i, j]].

    Statements in sequence are ordered through their data dependencies
    (producer access nodes are reused by consumers within one state). *)

exception Error of string
(** Parse or lowering failure, with a human-readable message. *)

(** Parse and lower a program.
    @raise Error on malformed input. *)
val compile : string -> Sdfg.Graph.t

(** Parse and lower, returning validation errors instead of trusting the
    lowering (used by property tests). *)
val compile_checked : string -> (Sdfg.Graph.t, string) result
