lib/frontend/lang.ml: Dtype Format Graph Hashtbl List Memlet Node Option Printf Propagate Sdfg State String Symbolic Tcode Validate
