lib/frontend/lang.mli: Sdfg
