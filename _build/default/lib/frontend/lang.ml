open Sdfg

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tnum of string
  | Tpunct of string  (* one of: [ ] { } ( ) , = += *= min= max= .. and ops *)
  | Teof

let keywords =
  [ "program"; "symbol"; "input"; "output"; "inout"; "temp"; "map"; "parallel"; "for"; "to";
    "downto"; "step" ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let j = ref !i in
      while
        !j < n
        && (is_digit src.[!j] || src.[!j] = '.'
           || src.[!j] = 'e' || src.[!j] = 'E'
           || ((src.[!j] = '+' || src.[!j] = '-') && !j > !i && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')))
      do
        incr j
      done;
      (* ".." must not be swallowed into a number *)
      let s = String.sub src !i (!j - !i) in
      let s =
        if String.length s >= 2 && String.sub s (String.length s - 2) 2 = ".." then begin
          String.sub s 0 (String.length s - 2)
        end
        else s
      in
      push (Tnum s);
      i := !i + String.length s
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && (is_alpha src.[!j] || is_digit src.[!j]) do incr j done;
      let word = String.sub src !i (!j - !i) in
      i := !j;
      (* accumulation tokens min= / max= *)
      if (word = "min" || word = "max") && !i < n && src.[!i] = '=' && not (!i + 1 < n && src.[!i + 1] = '=')
      then begin
        push (Tpunct (word ^ "="));
        incr i
      end
      else push (Tid word)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "+=" | "*=" | "**" | "<=" | ">=" | "==" | "!=" ->
          push (Tpunct two);
          i := !i + 2
      | _ -> (
          match c with
          | '[' | ']' | '{' | '}' | '(' | ')' | ',' | '=' | '+' | '-' | '*' | '/' | '%' | '<' | '>' ->
              push (Tpunct (String.make 1 c));
              incr i
          | _ -> err "line %d: unexpected character %c" !line c)
    end
  done;
  push Teof;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type pstate = { mutable toks : (token * int) list }

let peek p = match p.toks with [] -> (Teof, 0) | t :: _ -> t
let advance p = match p.toks with [] -> () | _ :: r -> p.toks <- r
let cur_line p = snd (peek p)

let expect_punct p s =
  match peek p with
  | Tpunct x, _ when x = s -> advance p
  | _, l -> err "line %d: expected '%s'" l s

let expect_kw p s =
  match peek p with
  | Tid x, _ when x = s -> advance p
  | _, l -> err "line %d: expected '%s'" l s

let ident p =
  match peek p with
  | Tid x, _ when not (List.mem x keywords) ->
      advance p;
      x
  | _, l -> err "line %d: expected identifier" l

let is_kw p s = match peek p with Tid x, _ -> x = s | _ -> false
let is_punct p s = match peek p with Tpunct x, _ -> x = s | _ -> false

(* ------------------------------------------------------------------ *)
(* Index (symbolic) expressions                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_sym_expr p = parse_sym_add p

and parse_sym_add p =
  let lhs = ref (parse_sym_mul p) in
  let continue = ref true in
  while !continue do
    if is_punct p "+" then begin advance p; lhs := Symbolic.Expr.add !lhs (parse_sym_mul p) end
    else if is_punct p "-" then begin advance p; lhs := Symbolic.Expr.sub !lhs (parse_sym_mul p) end
    else continue := false
  done;
  !lhs

and parse_sym_mul p =
  let lhs = ref (parse_sym_atom p) in
  let continue = ref true in
  while !continue do
    if is_punct p "*" then begin advance p; lhs := Symbolic.Expr.mul !lhs (parse_sym_atom p) end
    else if is_punct p "/" then begin advance p; lhs := Symbolic.Expr.div !lhs (parse_sym_atom p) end
    else if is_punct p "%" then begin advance p; lhs := Symbolic.Expr.modulo !lhs (parse_sym_atom p) end
    else continue := false
  done;
  !lhs

and parse_sym_atom p =
  match peek p with
  | Tnum s, l ->
      advance p;
      (try Symbolic.Expr.int (int_of_string s)
       with _ -> err "line %d: index expressions take integers, got %s" l s)
  | Tpunct "-", _ ->
      advance p;
      Symbolic.Expr.neg (parse_sym_atom p)
  | Tpunct "(", _ ->
      advance p;
      let e = parse_sym_expr p in
      expect_punct p ")";
      e
  | Tid ("min" | "max" as f), _ ->
      advance p;
      expect_punct p "(";
      let a = parse_sym_expr p in
      expect_punct p ",";
      let b = parse_sym_expr p in
      expect_punct p ")";
      if f = "min" then Symbolic.Expr.min_ a b else Symbolic.Expr.max_ a b
  | Tid x, _ when not (List.mem x keywords) ->
      advance p;
      Symbolic.Expr.sym x
  | _, l -> err "line %d: bad index expression" l

(* ------------------------------------------------------------------ *)
(* Value (tasklet) expressions with container references               *)
(* ------------------------------------------------------------------ *)

(* A reference table built while parsing one assignment's RHS: distinct
   (container, subset) pairs map to input connectors. *)
type refs = {
  mutable inputs : (string * (string * Symbolic.Subset.t)) list;  (* conn -> access *)
  mutable counter : int;
  containers : (string, Graph.datadesc) Hashtbl.t;
}

let conn_for refs container subset =
  let key = (container, subset) in
  match
    List.find_opt (fun (_, k) -> k = key) refs.inputs
  with
  | Some (conn, _) -> conn
  | None ->
      refs.counter <- refs.counter + 1;
      let conn = Printf.sprintf "__in%d" refs.counter in
      refs.inputs <- refs.inputs @ [ (conn, key) ];
      conn

let rec parse_val p refs = parse_val_cmp p refs

and parse_val_cmp p refs =
  let lhs = parse_val_add p refs in
  let op =
    if is_punct p "<" then Some Tcode.Lt
    else if is_punct p "<=" then Some Tcode.Le
    else if is_punct p ">" then Some Tcode.Gt
    else if is_punct p ">=" then Some Tcode.Ge
    else if is_punct p "==" then Some Tcode.Eq
    else if is_punct p "!=" then Some Tcode.Ne
    else None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance p;
      Tcode.Cmp (op, lhs, parse_val_add p refs)

and parse_val_add p refs =
  let lhs = ref (parse_val_mul p refs) in
  let continue = ref true in
  while !continue do
    if is_punct p "+" then begin advance p; lhs := Tcode.Bin (Tcode.Add, !lhs, parse_val_mul p refs) end
    else if is_punct p "-" then begin advance p; lhs := Tcode.Bin (Tcode.Sub, !lhs, parse_val_mul p refs) end
    else continue := false
  done;
  !lhs

and parse_val_mul p refs =
  let lhs = ref (parse_val_pow p refs) in
  let continue = ref true in
  while !continue do
    if is_punct p "*" then begin advance p; lhs := Tcode.Bin (Tcode.Mul, !lhs, parse_val_pow p refs) end
    else if is_punct p "/" then begin advance p; lhs := Tcode.Bin (Tcode.Div, !lhs, parse_val_pow p refs) end
    else if is_punct p "%" then begin advance p; lhs := Tcode.Bin (Tcode.Mod, !lhs, parse_val_pow p refs) end
    else continue := false
  done;
  !lhs

and parse_val_pow p refs =
  let base = parse_val_unary p refs in
  if is_punct p "**" then begin
    advance p;
    Tcode.Bin (Tcode.Pow, base, parse_val_pow p refs)
  end
  else base

and parse_val_unary p refs =
  if is_punct p "-" then begin
    advance p;
    Tcode.Un (Tcode.Neg, parse_val_unary p refs)
  end
  else parse_val_atom p refs

and parse_val_atom p refs =
  match peek p with
  | Tnum s, _ ->
      advance p;
      Tcode.Fconst (float_of_string s)
  | Tpunct "(", _ ->
      advance p;
      let e = parse_val p refs in
      expect_punct p ")";
      e
  | Tid name, l when not (List.mem name keywords) -> (
      advance p;
      if is_punct p "(" then begin
        (* function call *)
        advance p;
        let args = ref [] in
        if not (is_punct p ")") then begin
          args := [ parse_val p refs ];
          while is_punct p "," do
            advance p;
            args := !args @ [ parse_val p refs ]
          done
        end;
        expect_punct p ")";
        let un op = match !args with [ a ] -> Tcode.Un (op, a) | _ -> err "line %d: %s/1" l name in
        let bin op = match !args with [ a; b ] -> Tcode.Bin (op, a, b) | _ -> err "line %d: %s/2" l name in
        match name with
        | "sqrt" -> un Tcode.Sqrt
        | "exp" -> un Tcode.Exp
        | "log" -> un Tcode.Log
        | "abs" -> un Tcode.Abs
        | "floor" -> un Tcode.Floor
        | "sin" -> un Tcode.Sin
        | "cos" -> un Tcode.Cos
        | "tanh" -> un Tcode.Tanh
        | "min" -> bin Tcode.Min
        | "max" -> bin Tcode.Max
        | "select" -> (
            match !args with
            | [ c; a; b ] -> Tcode.Select (c, a, b)
            | _ -> err "line %d: select/3" l)
        | _ -> err "line %d: unknown function %s" l name
      end
      else if is_punct p "[" then begin
        (* container element reference *)
        advance p;
        let idxs = ref [ Symbolic.Subset.index (parse_sym_expr p) ] in
        while is_punct p "," do
          advance p;
          idxs := !idxs @ [ Symbolic.Subset.index (parse_sym_expr p) ]
        done;
        expect_punct p "]";
        if not (Hashtbl.mem refs.containers name) then
          err "line %d: undeclared container %s" l name;
        Tcode.Ref (conn_for refs name !idxs)
      end
      else if Hashtbl.mem refs.containers name then begin
        (* scalar container read *)
        match (Hashtbl.find refs.containers name).shape with
        | [] -> Tcode.Ref (conn_for refs name [])
        | _ -> err "line %d: array %s used without indices" l name
      end
      else
        (* symbol or map parameter *)
        Tcode.Ref name)
  | _, l -> err "line %d: bad expression" l

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type assign = {
  dst : string;
  dst_subset : Symbolic.Subset.t;
  wcr : Memlet.wcr option;
  rhs : Tcode.expr;
  rhs_refs : (string * (string * Symbolic.Subset.t)) list;
  line : int;
}

type stmt =
  | Sassign of assign
  | Smap of { params : (string * Symbolic.Expr.t * Symbolic.Expr.t) list; parallel : bool;
              body : assign list; line : int }
  | Sfor of { var : string; lo : Symbolic.Expr.t; hi : Symbolic.Expr.t; step : int;
              body : stmt list; line : int }

let parse_assign p containers =
  let l = cur_line p in
  let dst = ident p in
  if not (Hashtbl.mem containers dst) then err "line %d: undeclared container %s" l dst;
  let dst_subset =
    if is_punct p "[" then begin
      advance p;
      let idxs = ref [ Symbolic.Subset.index (parse_sym_expr p) ] in
      while is_punct p "," do
        advance p;
        idxs := !idxs @ [ Symbolic.Subset.index (parse_sym_expr p) ]
      done;
      expect_punct p "]";
      !idxs
    end
    else []
  in
  let wcr =
    if is_punct p "=" then begin advance p; None end
    else if is_punct p "+=" then begin advance p; Some Memlet.Wcr_sum end
    else if is_punct p "*=" then begin advance p; Some Memlet.Wcr_mul end
    else if is_punct p "min=" then begin advance p; Some Memlet.Wcr_min end
    else if is_punct p "max=" then begin advance p; Some Memlet.Wcr_max end
    else err "line %d: expected assignment operator" l
  in
  let refs = { inputs = []; counter = 0; containers } in
  let rhs = parse_val p refs in
  { dst; dst_subset; wcr; rhs; rhs_refs = refs.inputs; line = l }

let rec parse_stmt p containers =
  if is_kw p "for" then begin
    let l = cur_line p in
    advance p;
    let var = ident p in
    expect_punct p "=";
    let lo = parse_sym_expr p in
    let down =
      if is_kw p "to" then begin advance p; false end
      else if is_kw p "downto" then begin advance p; true end
      else err "line %d: expected 'to' or 'downto'" l
    in
    let hi = parse_sym_expr p in
    let step =
      if is_kw p "step" then begin
        advance p;
        match Symbolic.Expr.is_constant (parse_sym_expr p) with
        | Some s when s <> 0 -> s
        | _ -> err "line %d: step must be a nonzero constant" l
      end
      else if down then -1
      else 1
    in
    expect_punct p "{";
    let body = ref [] in
    while not (is_punct p "}") do
      body := !body @ [ parse_stmt p containers ]
    done;
    expect_punct p "}";
    Sfor { var; lo; hi; step; body = !body; line = l }
  end
  else if is_kw p "map" || is_kw p "parallel" then begin
    let l = cur_line p in
    let parallel = is_kw p "parallel" in
    if parallel then begin
      advance p;
      expect_kw p "map"
    end
    else advance p;
    let parse_param () =
      let v = ident p in
      expect_punct p "=";
      let lo = parse_sym_expr p in
      expect_kw p "to";
      let hi = parse_sym_expr p in
      (v, lo, hi)
    in
    let params = ref [ parse_param () ] in
    while is_punct p "," do
      advance p;
      params := !params @ [ parse_param () ]
    done;
    expect_punct p "{";
    let body = ref [] in
    while not (is_punct p "}") do
      body := !body @ [ parse_assign p containers ]
    done;
    expect_punct p "}";
    Smap { params = !params; parallel; body = !body; line = l }
  end
  else Sassign (parse_assign p containers)

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

(* Per-dataflow-state lowering context: the last access node that wrote each
   container (read-after-write, write-after-write) and the completion nodes
   of statements that read it since (write-after-read). *)
type lctx = {
  writers : (string, int) Hashtbl.t;
  readers : (string, int list) Hashtbl.t;
}

let dtype_of_string l = function
  | "f64" -> Dtype.F64
  | "f32" -> Dtype.F32
  | "i64" -> Dtype.I64
  | "i32" -> Dtype.I32
  | "bool" -> Dtype.Bool
  | s -> err "line %d: unknown type %s" l s

let lower_assigns _g st lctx ~params ~parallel (assigns : assign list) =
  (* one mapped (or plain) tasklet per assignment *)
  List.iter
    (fun a ->
      let out_conn = "__out" in
      let code = Tcode.make [ (out_conn, a.rhs) ] in
      let inputs =
        List.map (fun (conn, (c, sub)) -> (conn, Memlet.make c sub)) a.rhs_refs
      in
      let outputs = [ (out_conn, Memlet.make ?wcr:a.wcr a.dst a.dst_subset) ] in
      let input_nodes =
        List.filter_map
          (fun (_, (c, _)) ->
            match Hashtbl.find_opt lctx.writers c with
            | Some node -> Some (c, node)
            | None -> None)
          a.rhs_refs
        |> List.sort_uniq compare
      in
      let prev_writer = Hashtbl.find_opt lctx.writers a.dst in
      let prev_readers = Option.value ~default:[] (Hashtbl.find_opt lctx.readers a.dst) in
      let tasklet = State.add_node st (Node.Tasklet { label = Printf.sprintf "line%d" a.line; code }) in
      (* wire like Builder.mapped_tasklet, but we already have the code *)
      let find_or_create tbl provided c =
        match List.assoc_opt c !tbl with
        | Some id -> id
        | None ->
            let id =
              match List.assoc_opt c provided with
              | Some id -> id
              | None -> State.add_node st (Node.Access c)
            in
            tbl := (c, id) :: !tbl;
            id
      in
      let in_tbl = ref [] and out_tbl = ref [] in
      if params = [] then begin
        List.iter
          (fun (conn, (m : Memlet.t)) ->
            ignore
              (State.add_edge st ~dst_conn:conn ~memlet:m (find_or_create in_tbl input_nodes m.data)
                 tasklet))
          inputs;
        List.iter
          (fun (conn, (m : Memlet.t)) ->
            ignore (State.add_edge st ~src_conn:conn ~memlet:m tasklet (find_or_create out_tbl [] m.data)))
          outputs;
        (* order after the previous writer (WAW) and readers (WAR) of dst *)
        (match prev_writer with Some w -> ignore (State.add_edge st w tasklet) | None -> ());
        List.iter (fun r -> if r <> tasklet then ignore (State.add_edge st r tasklet)) prev_readers;
        Hashtbl.replace lctx.writers a.dst (List.assoc a.dst !out_tbl);
        Hashtbl.replace lctx.readers a.dst [];
        (* this statement reads its inputs until they are next written *)
        List.iter
          (fun (_, (c, _)) ->
            if c <> a.dst then
              Hashtbl.replace lctx.readers c
                (tasklet :: Option.value ~default:[] (Hashtbl.find_opt lctx.readers c)))
          a.rhs_refs
      end
      else begin
        let pnames = List.map (fun (v, _, _) -> v) params in
        let ranges = List.map (fun (_, lo, hi) -> Symbolic.Subset.dim lo hi) params in
        let schedule = if parallel then Node.Parallel else Node.Sequential in
        let entry =
          State.add_node st
            (Node.Map_entry { label = Printf.sprintf "map_line%d" a.line; params = pnames; ranges; schedule })
        in
        let exit = State.add_node st (Node.Map_exit { entry }) in
        let widen m = Propagate.memlet_through_map ~params:pnames ~ranges m in
        List.iter
          (fun (conn, (m : Memlet.t)) ->
            let acc = find_or_create in_tbl input_nodes m.data in
            ignore (State.add_edge st ~dst_conn:("IN_" ^ m.data) ~memlet:(widen m) acc entry);
            ignore (State.add_edge st ~src_conn:("OUT_" ^ m.data) ~dst_conn:conn ~memlet:m entry tasklet))
          inputs;
        if inputs = [] then ignore (State.add_edge st entry tasklet);
        List.iter
          (fun (conn, (m : Memlet.t)) ->
            let acc = find_or_create out_tbl [] m.data in
            ignore (State.add_edge st ~src_conn:conn ~dst_conn:("IN_" ^ m.data) ~memlet:m tasklet exit);
            ignore (State.add_edge st ~src_conn:("OUT_" ^ m.data) ~memlet:(widen m) exit acc))
          outputs;
        (match prev_writer with Some w -> ignore (State.add_edge st w entry) | None -> ());
        List.iter (fun r -> if r <> entry then ignore (State.add_edge st r entry)) prev_readers;
        Hashtbl.replace lctx.writers a.dst (List.assoc a.dst !out_tbl);
        Hashtbl.replace lctx.readers a.dst [];
        (* readers are recorded by their completion node (the map exit) *)
        List.iter
          (fun (_, (c, _)) ->
            if c <> a.dst then
              Hashtbl.replace lctx.readers c
                (exit :: Option.value ~default:[] (Hashtbl.find_opt lctx.readers c)))
          a.rhs_refs
      end)
    assigns

(* Lower a statement block; returns the state id control flow exits from. *)
let rec lower_block g ~entry stmts =
  (* dataflow statements accumulate in a current state, created lazily *)
  let cur = ref entry in
  let lctx = ref None in
  let dataflow_ctx () =
    match !lctx with
    | Some c -> c
    | None ->
        let c = { writers = Hashtbl.create 8; readers = Hashtbl.create 8 } in
        lctx := Some c;
        c
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Sassign a ->
          lower_assigns g (Graph.state g !cur) (dataflow_ctx ()) ~params:[] ~parallel:false [ a ]
      | Smap { params; parallel; body; _ } ->
          lower_assigns g (Graph.state g !cur) (dataflow_ctx ()) ~params ~parallel body
      | Sfor { var; lo; hi; step; body; line = _ } ->
          (* finalize the current dataflow state; build the canonical loop *)
          lctx := None;
          let guard = Graph.add_state g (Printf.sprintf "%s_guard" var) in
          ignore (Graph.add_istate_edge g ~assigns:[ (var, lo) ] !cur guard);
          let body_entry = Graph.add_state g (Printf.sprintf "%s_body" var) in
          let cond =
            if step > 0 then Symbolic.Cond.Le (Symbolic.Expr.sym var, hi)
            else Symbolic.Cond.Ge (Symbolic.Expr.sym var, hi)
          in
          ignore (Graph.add_istate_edge g ~cond guard body_entry);
          let body_exit = lower_block g ~entry:body_entry body in
          ignore
            (Graph.add_istate_edge g
               ~assigns:[ (var, Symbolic.Expr.add (Symbolic.Expr.sym var) (Symbolic.Expr.int step)) ]
               body_exit guard);
          let after = Graph.add_state g (Printf.sprintf "%s_after" var) in
          ignore (Graph.add_istate_edge g ~cond:(Symbolic.Cond.negate cond) guard after);
          cur := after)
    stmts;
  !cur

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let parse_program p =
  expect_kw p "program";
  let name = ident p in
  let g = Graph.create name in
  let containers = Hashtbl.create 16 in
  (* declarations *)
  let continue = ref true in
  while !continue do
    if is_kw p "symbol" then begin
      advance p;
      Graph.add_symbol g (ident p);
      while is_punct p "," do
        advance p;
        Graph.add_symbol g (ident p)
      done
    end
    else if is_kw p "input" || is_kw p "output" || is_kw p "inout" || is_kw p "temp" then begin
      let kind = (match peek p with Tid k, _ -> k | _ -> assert false) in
      advance p;
      let l = cur_line p in
      let ty = dtype_of_string l (ident p) in
      let cname = ident p in
      let shape =
        if is_punct p "[" then begin
          advance p;
          let dims = ref [ parse_sym_expr p ] in
          while is_punct p "," do
            advance p;
            dims := !dims @ [ parse_sym_expr p ]
          done;
          expect_punct p "]";
          !dims
        end
        else []
      in
      let transient = kind = "temp" in
      let desc = { Graph.shape; dtype = ty; transient; storage = Graph.Host } in
      Graph.add_container g cname desc;
      Hashtbl.replace containers cname desc
    end
    else continue := false
  done;
  (* body *)
  let stmts = ref [] in
  while peek p <> (Teof, cur_line p) && fst (peek p) <> Teof do
    stmts := !stmts @ [ parse_stmt p containers ]
  done;
  let entry = Graph.add_state g "entry" in
  ignore (lower_block g ~entry !stmts);
  g

let compile src =
  let p = { toks = tokenize src } in
  parse_program p

let compile_checked src =
  match compile src with
  | g -> (
      match Validate.check g with
      | [] -> Ok g
      | e :: _ -> Error (Format.asprintf "%a" Validate.pp_error e))
  | exception Error msg -> Error msg
  | exception Symbolic.Expr.Parse_error msg -> Error msg
