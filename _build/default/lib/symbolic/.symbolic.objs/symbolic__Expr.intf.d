lib/symbolic/expr.mli: Format Map
