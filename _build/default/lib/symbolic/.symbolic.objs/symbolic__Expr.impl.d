lib/symbolic/expr.ml: Format List Map Printf Set Stdlib String
