lib/symbolic/cond.mli: Expr Format
