lib/symbolic/cond.ml: Array Expr Format List Set String
