lib/symbolic/subset.ml: Expr Format List Set String
