(** Tasklet fusion / temporary-write elimination (Table 2 ✗, Sec. 6.4).

    Fuses [t1 -> access(tmp) -> t2] into a single tasklet, eliminating the
    write to [tmp]. The [Ignore_system_state] variant reproduces the bug the
    paper found in both NPBench and CLOUDSC: it removes the write even when
    [tmp] is read again later (i.e. belongs to the enclosing system state),
    silently dropping a live value. The [Correct] variant refuses in that
    case. *)

type variant = Correct | Ignore_system_state

val make : variant -> Xform.t
