(** State fusion: merge a state into its unique predecessor when the
    connecting edge is unconditional and assignment-free.

    The [Missing_dependencies] variant reproduces the classic fusion hazard:
    it copies the second state's dataflow without adding ordering edges
    between the first state's writers and the second state's readers of the
    same containers, so fused consumers can execute before their producers. *)

type variant = Correct | Missing_dependencies

val make : variant -> Xform.t
