(** Map-reduce fusion (Table 2 ✗).

    Fuses a map that materializes a transient tensor with the reduction that
    consumes it, turning the tasklet's write into a write-conflict-resolution
    accumulation directly into the reduction output. The [Missing_init]
    variant reproduces a semantics bug: it forgets to initialize the output
    to the reduction identity, so stale contents of the output container leak
    into the result. *)

type variant = Correct | Missing_init

val make : variant -> Xform.t
