(** Map expansion (Table 2).

    Expands a multi-dimensional map into a nest of one outer map (first
    parameter) and one inner map (remaining parameters). The
    [Bad_exit_wiring] variant reproduces the invalid-code bug class: the
    inner map exit is wired to the *outer* entry, leaving the inner entry
    without a matching exit — the transformed graph fails validation. *)

type variant = Correct | Bad_exit_wiring

val make : variant -> Xform.t
