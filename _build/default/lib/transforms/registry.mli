(** Catalog of built-in transformations.

    [as_shipped] is the set used for the campaign experiments (Sec. 6.3/6.4):
    it contains each transformation in the variant DaCe shipped it — i.e.
    including the seven bugs of Table 2. [all_correct] is the fixed set. *)

val as_shipped : unit -> Xform.t list
val all_correct : unit -> Xform.t list

(** Look a transformation up by name in a list. *)
val by_name : Xform.t list -> string -> Xform.t option
