(** Buffer tiling between loops (Table 2 ✗).

    Shrinks a transient buffer produced by one map and consumed by another to
    a tile-sized window, rewriting indices modulo the tile size. The
    [Wrong_scheduling] variant reproduces the semantics bug: it shrinks the
    buffer without restructuring the producer/consumer schedule, so the
    consumer observes only the last tile's values. The [Correct] variant only
    matches when the whole buffer provably fits in one tile. *)

type variant = Correct | Wrong_scheduling

val make : ?tile:int -> variant -> Xform.t
