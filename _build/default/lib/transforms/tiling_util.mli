(** Shared mechanics for scope-splitting transformations (MapTiling,
    Vectorization, MapExpansion): replace a map entry's parameters with an
    outer set and insert an inner entry/exit pair carrying the rest, rewiring
    every scope-crossing edge through the new pair. *)

(** How the inner (intra-tile) upper bound is formed; the non-[Exact] modes
    are the bugs of Fig. 2 and Table 2 of the paper. *)
type bound_mode =
  | Exact  (** min(t + ts - 1, hi) *)
  | Off_by_one  (** min(t + ts, hi): one extra iteration per tile *)
  | No_remainder  (** t + ts - 1: out of bounds unless the span divides evenly *)

val inner_hi :
  bound_mode -> tile_var:string -> tile_size:int -> orig_hi:Symbolic.Expr.t -> Symbolic.Expr.t

(** [split_map st entry ~outer ~inner ~miswire_exit] replaces [entry]'s map
    info by [outer] and inserts a fresh inner scope with map info [inner]
    directly inside it. When [miswire_exit] is set the inner exit references
    the outer entry — the invalid-code bug of MapExpansion. Returns the inner
    (entry, exit) node ids.
    @raise Xform.Cannot_apply when [entry] has no matching exit. *)
val split_map :
  Sdfg.State.t ->
  int ->
  outer:Sdfg.Node.map_info ->
  inner:Sdfg.Node.map_info ->
  miswire_exit:bool ->
  int * int

(** [tile_map g st entry ~tile_size ~mode ~dims] tiles the listed parameter
    indices of a map scope (all of them when [dims] is [None]). Returns the
    new inner entry/exit ids. *)
val tile_map :
  Sdfg.Graph.t ->
  Sdfg.State.t ->
  int ->
  tile_size:int ->
  mode:bound_mode ->
  dims:int list option ->
  int * int
