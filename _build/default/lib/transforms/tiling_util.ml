(* Shared mechanics for scope-splitting transformations (MapTiling,
   Vectorization, MapExpansion): replace a map entry's parameters with an
   outer set and insert an inner entry/exit pair carrying the rest, rewiring
   all scope-crossing edges through the new pair. *)

open Sdfg

(* How the inner (intra-tile) upper bound is formed; the non-[Exact] modes are
   the bugs of Fig. 2 and Table 2. *)
type bound_mode =
  | Exact  (* min(t + ts - 1, hi) *)
  | Off_by_one  (* min(t + ts, hi): one extra iteration per tile *)
  | No_remainder  (* t + ts - 1: out of bounds unless span divides evenly *)

let inner_hi mode ~tile_var ~tile_size ~orig_hi =
  let open Symbolic.Expr in
  let t = sym tile_var in
  match mode with
  | Exact -> min_ (add t (int (tile_size - 1))) orig_hi
  | Off_by_one -> min_ (add t (int tile_size)) orig_hi
  | No_remainder -> add t (int (tile_size - 1))

(* Replace [entry]'s map info by [outer] and insert a fresh inner scope with
   map info [inner] directly inside it, rewiring all edges that crossed the
   original boundary. When [miswire_exit] is set the inner exit references the
   outer entry — the invalid-code bug of MapExpansion in Table 2. *)
let split_map st entry ~(outer : Node.map_info) ~(inner : Node.map_info) ~miswire_exit =
  let exit =
    try State.exit_of st entry
    with Not_found -> raise (Xform.Cannot_apply "split_map: no matching exit")
  in
  State.replace_node st entry (Node.Map_entry outer);
  let inner_entry = State.add_node st (Node.Map_entry inner) in
  let inner_exit =
    State.add_node st (Node.Map_exit { entry = (if miswire_exit then entry else inner_entry) })
  in
  List.iter
    (fun (e : State.edge) ->
      State.remove_edge st e.e_id;
      ignore
        (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
           ?dst_memlet:e.dst_memlet inner_entry e.dst);
      match e.src_conn with
      | Some conn ->
          ignore (State.add_edge st ~src_conn:conn ~dst_conn:conn ?memlet:e.memlet entry inner_entry)
      | None -> ignore (State.add_edge st entry inner_entry))
    (State.out_edges st entry);
  List.iter
    (fun (e : State.edge) ->
      State.remove_edge st e.e_id;
      ignore
        (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
           ?dst_memlet:e.dst_memlet e.src inner_exit);
      match e.dst_conn with
      | Some conn ->
          ignore (State.add_edge st ~src_conn:conn ~dst_conn:conn ?memlet:e.memlet inner_exit exit)
      | None -> ignore (State.add_edge st inner_exit exit))
    (State.in_edges st exit);
  (inner_entry, inner_exit)

(* Tile the listed parameter indices of a map scope (all of them when [dims]
   is [None]). Returns the new inner entry/exit ids. *)
let tile_map g st entry ~tile_size ~mode ~dims =
  ignore g;
  let info =
    match State.node st entry with
    | Node.Map_entry i -> i
    | _ -> raise (Xform.Cannot_apply "tile_map: not a map entry")
  in
  let n = List.length info.params in
  let tiled = match dims with Some l -> l | None -> List.init n Fun.id in
  let tile_name p = p ^ "_tile" in
  let outer_params =
    List.mapi (fun i p -> if List.mem i tiled then tile_name p else p) info.params
  in
  let outer_ranges =
    List.mapi
      (fun i (r : Symbolic.Subset.range) ->
        if List.mem i tiled then { r with step = Symbolic.Expr.int tile_size } else r)
      info.ranges
  in
  let inner_params = List.filteri (fun i _ -> List.mem i tiled) info.params in
  let inner_ranges =
    List.concat
      (List.mapi
         (fun i (p, (r : Symbolic.Subset.range)) ->
           if List.mem i tiled then
             [
               {
                 Symbolic.Subset.lo = Symbolic.Expr.sym (tile_name p);
                 hi = inner_hi mode ~tile_var:(tile_name p) ~tile_size ~orig_hi:r.hi;
                 step = r.step;
               };
             ]
           else [])
         (List.combine info.params info.ranges))
  in
  split_map st entry
    ~outer:{ info with params = outer_params; ranges = outer_ranges }
    ~inner:
      {
        label = info.label ^ "_inner";
        params = inner_params;
        ranges = inner_ranges;
        schedule = info.schedule;
      }
    ~miswire_exit:false
