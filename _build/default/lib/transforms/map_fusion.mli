(** Map fusion: merge a producer map and a consumer map that agree on
    parameters and ranges, turning the transient between them into a
    scope-local buffer so each element is produced and consumed in the same
    iteration.

    The [Ignore_offsets] variant reproduces a classic fusion bug: it skips
    the check that the consumer reads the transient at exactly the iteration
    point the producer writes, so stencil-style consumers (reading
    [tmp\[i-1\]] or [tmp\[i+1\]]) get fused incorrectly and observe stale or
    unwritten values. *)

type variant = Correct | Ignore_offsets

val make : variant -> Xform.t
