(** Loop/map tiling (Fig. 2 of the paper).

    Splits every dimension of a map into an outer tile loop and an inner
    intra-tile loop. The [Off_by_one] variant reproduces the paper's
    motivating bug: the inner bound uses [<=] (one extra iteration per tile),
    which corrupts results whenever the scope accumulates (write-conflict
    resolution). The [No_remainder] variant reproduces the second bug of
    Sec. 2.1: the inner bound ignores the range end entirely, going out of
    bounds unless the span is a multiple of the tile size. *)

type variant = Correct | Off_by_one | No_remainder

val make : ?tile_size:int -> variant -> Xform.t
