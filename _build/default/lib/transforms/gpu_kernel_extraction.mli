(** GPU kernel extraction (Sec. 6.4, Fig. 7).

    Converts a top-level parallel map into a GPU-scheduled kernel: device
    copies of every container the scope touches are allocated, host→device
    copies feed the kernel, and device→host copies return results. The
    [Full_copy_back] variant reproduces the engineers' bug the paper
    debugged: the device→host copy moves the *entire* container while the
    host→device copy only covers containers the kernel reads — so when the
    kernel writes only a sub-region, uninitialized (garbage) device memory
    overwrites valid host data. The [Correct] variant also copies
    written containers to the device first. *)

type variant = Correct | Full_copy_back

val make : variant -> Xform.t
