(** Loop vectorization (Sec. 6.1 / Table 2).

    Tiles the innermost dimension of a map by the vector width. The
    [Assume_divisible] variant reproduces DaCe's input-size-dependent bug
    from Table 2 (⚠): it assumes the dimension span is a multiple of the
    vector width, going out of bounds — or computing spurious elements —
    otherwise. The [Correct] variant clamps the intra-vector bound. *)

type variant = Correct | Assume_divisible

val make : ?width:int -> variant -> Xform.t
