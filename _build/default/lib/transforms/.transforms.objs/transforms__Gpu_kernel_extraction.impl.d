lib/transforms/gpu_kernel_extraction.ml: Diff Graph List Memlet Node Option Sdfg State Symbolic Xform
