lib/transforms/map_collapse.ml: Diff Graph List Node Sdfg State Symbolic Xform
