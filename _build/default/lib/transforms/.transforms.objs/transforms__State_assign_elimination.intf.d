lib/transforms/state_assign_elimination.mli: Xform
