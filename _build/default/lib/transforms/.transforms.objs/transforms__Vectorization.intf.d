lib/transforms/vectorization.mli: Xform
