lib/transforms/loop_peeling.mli: Xform
