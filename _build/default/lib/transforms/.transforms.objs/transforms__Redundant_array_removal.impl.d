lib/transforms/redundant_array_removal.ml: Diff Graph List Memlet Node Printf Sdfg State Symbolic Xform
