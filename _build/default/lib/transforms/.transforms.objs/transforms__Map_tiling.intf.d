lib/transforms/map_tiling.mli: Xform
