lib/transforms/tiling_util.mli: Sdfg Symbolic
