lib/transforms/state_fusion.mli: Xform
