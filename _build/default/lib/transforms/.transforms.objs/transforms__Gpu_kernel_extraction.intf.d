lib/transforms/gpu_kernel_extraction.mli: Xform
