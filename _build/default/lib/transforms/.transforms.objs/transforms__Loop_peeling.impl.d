lib/transforms/loop_peeling.ml: Diff Graph List Printf Sdfg State Symbolic Xform
