lib/transforms/symbol_alias_promotion.mli: Xform
