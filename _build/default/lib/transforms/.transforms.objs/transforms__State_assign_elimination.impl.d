lib/transforms/state_assign_elimination.ml: Diff Graph List Memlet Node Printf Sdfg State Symbolic Tcode Xform
