lib/transforms/vectorization.ml: Diff Graph List Node Sdfg State String Symbolic Tiling_util Xform
