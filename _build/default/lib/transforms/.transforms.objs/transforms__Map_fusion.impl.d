lib/transforms/map_fusion.ml: Diff Graph Hashtbl List Node Sdfg State Symbolic Xform
