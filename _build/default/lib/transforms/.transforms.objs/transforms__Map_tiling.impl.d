lib/transforms/map_tiling.ml: Diff Graph List Node Sdfg State Symbolic Tiling_util Xform
