lib/transforms/symbol_alias_promotion.ml: Diff Graph List Printf Sdfg Symbolic Xform
