lib/transforms/loop_unrolling.ml: Diff Graph List Printf Sdfg State Symbolic Xform
