lib/transforms/map_expansion.mli: Xform
