lib/transforms/buffer_tiling.mli: Xform
