lib/transforms/xform.mli: Format Sdfg Symbolic
