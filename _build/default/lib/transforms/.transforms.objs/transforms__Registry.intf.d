lib/transforms/registry.mli: Xform
