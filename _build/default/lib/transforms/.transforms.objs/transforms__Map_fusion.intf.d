lib/transforms/map_fusion.mli: Xform
