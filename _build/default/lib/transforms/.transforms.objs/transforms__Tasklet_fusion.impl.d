lib/transforms/tasklet_fusion.ml: Diff Graph Hashtbl List Node Printf Sdfg State Tcode Xform
