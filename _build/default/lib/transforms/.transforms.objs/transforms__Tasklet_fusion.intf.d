lib/transforms/tasklet_fusion.mli: Xform
