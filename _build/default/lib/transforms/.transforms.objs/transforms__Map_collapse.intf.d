lib/transforms/map_collapse.mli: Xform
