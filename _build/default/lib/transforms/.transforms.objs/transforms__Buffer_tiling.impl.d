lib/transforms/buffer_tiling.ml: Diff Graph List Memlet Node Option Sdfg State Symbolic Xform
