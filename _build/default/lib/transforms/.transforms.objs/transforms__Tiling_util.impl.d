lib/transforms/tiling_util.ml: Fun List Node Sdfg State Symbolic Xform
