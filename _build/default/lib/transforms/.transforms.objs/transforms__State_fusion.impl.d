lib/transforms/state_fusion.ml: Diff Graph List Node Printf Sdfg State Symbolic Xform
