lib/transforms/map_reduce_fusion.ml: Diff Graph List Memlet Node Printf Sdfg State Symbolic Xform
