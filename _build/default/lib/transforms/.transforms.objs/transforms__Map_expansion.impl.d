lib/transforms/map_expansion.ml: Diff Graph List Node Sdfg State Tiling_util Xform
