lib/transforms/map_reduce_fusion.mli: Xform
