lib/transforms/xform.ml: Diff Format Graph List Memlet Node Option Printf Sdfg State String Symbolic Tcode
