lib/transforms/loop_unrolling.mli: Xform
