lib/transforms/redundant_array_removal.mli: Xform
