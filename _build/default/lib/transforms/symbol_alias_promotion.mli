(** Symbol-alias promotion (Table 2).

    When an interstate edge assigns [s2 := s1], every later use of [s2] can be
    replaced by [s1] and the assignment dropped. The [Clobber_redefinition]
    variant reproduces the bug class: it substitutes without checking that
    [s1] keeps its value — if [s1] or [s2] is reassigned downstream the
    promoted program reads the wrong value or an undefined symbol. *)

type variant = Correct | Clobber_redefinition

val make : variant -> Xform.t
