(** Loop peeling: hoist the first iteration of a canonical for-loop out in
    front of the guard, starting the remaining loop one step later.

    The [Assume_nonempty] variant reproduces a common peeling bug: it peels
    without proving the loop executes at least once, so for parameter values
    where the trip count is zero the peeled iteration runs anyway — an
    input-dependent semantic change. The [Correct] variant only matches loops
    whose first-iteration guard is a constant tautology. *)

type variant = Correct | Assume_nonempty

val make : variant -> Xform.t
