(** Interstate-assignment elimination (Table 2).

    Removes symbol assignments from interstate edges when the symbol appears
    dead. The [Ignore_conditions] variant reproduces the DaCe bug class: it
    only checks the destination state's dataflow for uses, missing uses in
    later interstate *conditions* — removing a loop counter update this way
    turns the loop infinite (a hang) or leaves the guard reading an unbound
    symbol. *)

type variant = Correct | Ignore_conditions

val make : variant -> Xform.t
