(** Redundant array removal: eliminate a transient copy [B] of a read-only
    container [A], rewiring all uses of [B] to [A]. Correct-only; contributes
    passing instances to campaigns. *)

val make : unit -> Xform.t
