let as_shipped () =
  [
    Map_tiling.make Map_tiling.Correct;
    Map_collapse.make ();
    Map_fusion.make Map_fusion.Correct;
    Loop_peeling.make Loop_peeling.Correct;
    State_fusion.make State_fusion.Correct;
    Redundant_array_removal.make ();
    Buffer_tiling.make Buffer_tiling.Wrong_scheduling;
    Tasklet_fusion.make Tasklet_fusion.Ignore_system_state;
    Vectorization.make Vectorization.Assume_divisible;
    Map_expansion.make Map_expansion.Bad_exit_wiring;
    Map_reduce_fusion.make Map_reduce_fusion.Missing_init;
    State_assign_elimination.make State_assign_elimination.Ignore_conditions;
    Symbol_alias_promotion.make Symbol_alias_promotion.Clobber_redefinition;
  ]

let all_correct () =
  [
    Map_tiling.make Map_tiling.Correct;
    Map_collapse.make ();
    Map_fusion.make Map_fusion.Correct;
    Loop_peeling.make Loop_peeling.Correct;
    State_fusion.make State_fusion.Correct;
    Redundant_array_removal.make ();
    Buffer_tiling.make Buffer_tiling.Correct;
    Tasklet_fusion.make Tasklet_fusion.Correct;
    Vectorization.make Vectorization.Correct;
    Map_expansion.make Map_expansion.Correct;
    Map_reduce_fusion.make Map_reduce_fusion.Correct;
    State_assign_elimination.make State_assign_elimination.Correct;
    Symbol_alias_promotion.make Symbol_alias_promotion.Correct;
  ]

let by_name xs name = List.find_opt (fun (x : Xform.t) -> x.name = name) xs
