(** Loop unrolling on the state machine (Sec. 6.4).

    Replaces a constant-trip-count for-loop (guard/body/back-edge pattern)
    with a chain of body copies, the iteration variable substituted as a
    constant in each. The [Negative_step_sign_error] variant reproduces the
    CLOUDSC bug: for negative-step loops it computes the trip count with the
    positive-step formula [(hi - lo + 1) / step], creating too few copies —
    exactly 2 instead of 4 for the paper's [i = 4 down to 1] example. *)

type variant = Correct | Negative_step_sign_error

(** Only loops with at most [max_trip] iterations are unrolled. *)
val make : ?max_trip:int -> variant -> Xform.t
