(** Map collapse: merge a perfectly nested pair of maps into one
    multi-dimensional map. Correct-only; contributes passing instances to the
    NPBench campaign (Sec. 6.3) like most of DaCe's built-ins. *)

val make : unit -> Xform.t
