type wcr = Wcr_sum | Wcr_mul | Wcr_min | Wcr_max

type t = { data : string; subset : Symbolic.Subset.t; wcr : wcr option }

let make ?wcr data subset = { data; subset; wcr }
let simple ?wcr data str = { data; subset = Symbolic.Subset.of_string str; wcr }
let volume t = Symbolic.Expr.simplify (Symbolic.Subset.volume t.subset)

let rename_data ~from ~into t = if t.data = from then { t with data = into } else t

let rename_sym ~from ~into t =
  { t with subset = Symbolic.Subset.rename_sym ~from ~into t.subset }

let subst map t = { t with subset = Symbolic.Subset.subst map t.subset }

let wcr_identity = function
  | Wcr_sum -> 0.
  | Wcr_mul -> 1.
  | Wcr_min -> infinity
  | Wcr_max -> neg_infinity

let apply_wcr op acc v =
  match op with
  | Wcr_sum -> acc +. v
  | Wcr_mul -> acc *. v
  | Wcr_min -> Float.min acc v
  | Wcr_max -> Float.max acc v

let wcr_to_string = function
  | Wcr_sum -> "sum"
  | Wcr_mul -> "mul"
  | Wcr_min -> "min"
  | Wcr_max -> "max"

let pp fmt t =
  Format.fprintf fmt "%s%a%s" t.data Symbolic.Subset.pp t.subset
    (match t.wcr with None -> "" | Some w -> " (wcr: " ^ wcr_to_string w ^ ")")

let to_string t = Format.asprintf "%a" pp t
