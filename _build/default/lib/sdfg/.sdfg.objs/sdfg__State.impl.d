lib/sdfg/state.ml: Hashtbl List Memlet Node Option Queue
