lib/sdfg/propagate.mli: Memlet Symbolic
