lib/sdfg/tcode.ml: Format List Printf Set String Symbolic
