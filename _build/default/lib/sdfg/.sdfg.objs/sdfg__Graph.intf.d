lib/sdfg/graph.mli: Dtype State Symbolic
