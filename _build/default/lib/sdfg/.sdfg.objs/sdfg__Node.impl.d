lib/sdfg/node.ml: Format List Memlet Printf String Symbolic Tcode
