lib/sdfg/tcode.mli: Format
