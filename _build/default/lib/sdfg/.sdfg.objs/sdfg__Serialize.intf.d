lib/sdfg/serialize.mli: Graph
