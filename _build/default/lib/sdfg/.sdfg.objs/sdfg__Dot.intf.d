lib/sdfg/dot.mli: Graph
