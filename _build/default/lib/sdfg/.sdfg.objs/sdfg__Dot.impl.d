lib/sdfg/dot.ml: Buffer Graph List Memlet Node Printf State String Symbolic
