lib/sdfg/serialize.ml: Buffer Dtype Graph List Memlet Node Option Printf State String Symbolic Tcode
