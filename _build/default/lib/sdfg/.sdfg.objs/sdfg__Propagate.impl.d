lib/sdfg/propagate.ml: Expr List Memlet Subset Symbolic
