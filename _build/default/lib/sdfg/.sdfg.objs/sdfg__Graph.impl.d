lib/sdfg/graph.ml: Dtype Hashtbl List Map Node Option Queue Set State String Symbolic
