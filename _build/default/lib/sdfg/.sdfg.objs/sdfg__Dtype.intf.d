lib/sdfg/dtype.mli: Format
