lib/sdfg/state.mli: Memlet Node
