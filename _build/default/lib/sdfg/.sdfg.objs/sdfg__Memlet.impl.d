lib/sdfg/memlet.ml: Float Format Symbolic
