lib/sdfg/validate.ml: Format Graph List Memlet Node Printf State Symbolic Tcode
