lib/sdfg/dtype.ml: Format Int32
