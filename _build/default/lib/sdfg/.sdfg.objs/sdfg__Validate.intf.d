lib/sdfg/validate.mli: Format Graph
