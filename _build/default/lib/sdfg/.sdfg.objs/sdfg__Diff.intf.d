lib/sdfg/diff.mli: Format Graph
