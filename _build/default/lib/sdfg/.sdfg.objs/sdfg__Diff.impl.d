lib/sdfg/diff.ml: Format Graph Hashtbl List Printf State String
