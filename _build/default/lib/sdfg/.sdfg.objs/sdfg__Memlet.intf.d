lib/sdfg/memlet.mli: Format Symbolic
