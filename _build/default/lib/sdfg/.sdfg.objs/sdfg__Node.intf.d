lib/sdfg/node.mli: Format Memlet Symbolic Tcode
