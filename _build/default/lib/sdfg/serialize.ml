exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* A minimal s-expression layer                                        *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

let needs_quoting s =
  s = ""
  || String.exists (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec print_sexp buf indent = function
  | Atom s -> Buffer.add_string buf (if needs_quoting s then quote s else s)
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then
            if List.exists (function List _ -> true | Atom _ -> false) items then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (indent + 1) ' ')
            end
            else Buffer.add_char buf ' ';
          print_sexp buf (indent + 1) item)
        items;
      Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 4096 in
  print_sexp buf 0 s;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let parse_sexp src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let skip_ws () =
    while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\n' || src.[!pos] = '\t' || src.[!pos] = '\r') do
      incr pos
    done
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        incr pos;
        let items = ref [] in
        skip_ws ();
        while peek () <> Some ')' do
          if peek () = None then raise (Parse_error "unclosed list");
          items := parse () :: !items;
          skip_ws ()
        done;
        incr pos;
        List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' ->
        incr pos;
        let buf = Buffer.create 16 in
        let rec go () =
          match peek () with
          | None -> raise (Parse_error "unclosed string")
          | Some '"' -> incr pos
          | Some '\\' ->
              incr pos;
              (match peek () with
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some c -> Buffer.add_char buf c
              | None -> raise (Parse_error "bad escape"));
              incr pos;
              go ()
          | Some c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
        in
        go ();
        Atom (Buffer.contents buf)
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && not
               (src.[!pos] = ' ' || src.[!pos] = '(' || src.[!pos] = ')' || src.[!pos] = '\n'
              || src.[!pos] = '\t' || src.[!pos] = '\r')
        do
          incr pos
        done;
        Atom (String.sub src start (!pos - start))
  in
  let s = parse () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing input");
  s

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let atom_int i = Atom (string_of_int i)
let atom_bool b = Atom (string_of_bool b)

let subset_to_atom s = Atom (Symbolic.Subset.to_string s)

let memlet_to_sexp tag (m : Memlet.t) =
  List
    ([ Atom tag; Atom m.data; subset_to_atom m.subset ]
    @ match m.wcr with None -> [] | Some w -> [ Atom (Memlet.wcr_to_string w) ])

let node_to_sexp (id, n) =
  let payload =
    match n with
    | Node.Access d -> List [ Atom "access"; Atom d ]
    | Node.Tasklet { label; code } -> List [ Atom "tasklet"; Atom label; Atom (Tcode.to_string code) ]
    | Node.Map_entry { label; params; ranges; schedule } ->
        List
          [
            Atom "map_entry";
            Atom label;
            List (Atom "params" :: List.map (fun p -> Atom p) params);
            List [ Atom "ranges"; subset_to_atom ranges ];
            Atom
              (match schedule with
              | Node.Sequential -> "seq"
              | Node.Parallel -> "par"
              | Node.Gpu_device -> "gpu");
          ]
    | Node.Map_exit { entry } -> List [ Atom "map_exit"; atom_int entry ]
    | Node.Library { label; kind } ->
        let k =
          match kind with
          | Node.Mat_mul -> [ Atom "matmul" ]
          | Node.Batched_mat_mul -> [ Atom "batched_matmul" ]
          | Node.Reduce (op, axes) ->
              [
                Atom "reduce";
                Atom (Memlet.wcr_to_string op);
                List (Atom "axes" :: List.map atom_int axes);
              ]
        in
        List (Atom "library" :: Atom label :: k)
  in
  List [ Atom "node"; atom_int id; payload ]

let edge_to_sexp (e : State.edge) =
  let opt tag = function None -> [] | Some v -> [ List [ Atom tag; Atom v ] ] in
  let optm tag = function None -> [] | Some m -> [ memlet_to_sexp tag m ] in
  List
    ([ Atom "edge"; atom_int e.src; atom_int e.dst ]
    @ opt "src_conn" e.src_conn @ opt "dst_conn" e.dst_conn @ optm "memlet" e.memlet
    @ optm "dst_memlet" e.dst_memlet)

let state_to_sexp (sid, st) =
  List
    [
      Atom "state";
      atom_int sid;
      Atom (State.label st);
      List (Atom "nodes" :: List.map node_to_sexp (State.nodes st));
      List (Atom "edges" :: List.map edge_to_sexp (State.edges st));
    ]

let iedge_to_sexp (e : Graph.istate_edge) =
  List
    [
      Atom "iedge";
      atom_int e.src;
      atom_int e.dst;
      List [ Atom "cond"; Atom (Symbolic.Cond.to_string e.cond) ];
      List
        (Atom "assigns"
        :: List.map
             (fun (s, rhs) -> List [ Atom s; Atom (Symbolic.Expr.to_string rhs) ])
             e.assigns);
    ]

let container_to_sexp (name, (d : Graph.datadesc)) =
  List
    [
      Atom "container";
      Atom name;
      List (Atom "shape" :: List.map (fun e -> Atom (Symbolic.Expr.to_string e)) d.shape);
      List [ Atom "dtype"; Atom (Dtype.to_string d.dtype) ];
      List [ Atom "transient"; atom_bool d.transient ];
      List [ Atom "storage"; Atom (match d.storage with Graph.Host -> "host" | Graph.Gpu -> "gpu") ];
    ]

let to_string g =
  sexp_to_string
    (List
       [
         Atom "sdfg";
         Atom (Graph.name g);
         List (Atom "symbols" :: List.map (fun s -> Atom s) (Graph.symbols g));
         List (Atom "containers" :: List.map container_to_sexp (Graph.containers g));
         List (Atom "states" :: List.map state_to_sexp (Graph.states g));
         List (Atom "iedges" :: List.map iedge_to_sexp (Graph.istate_edges g));
         List [ Atom "start"; atom_int (Graph.start_state g) ];
       ])

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let as_atom = function Atom s -> s | List _ -> fail "expected atom"
let as_int s = try int_of_string (as_atom s) with _ -> fail "expected integer"
let as_bool s = try bool_of_string (as_atom s) with _ -> fail "expected bool"

let tagged tag = function
  | List (Atom t :: rest) when t = tag -> rest
  | _ -> fail "expected (%s ...)" tag

let find_tagged tag items =
  List.find_map (function List (Atom t :: rest) when t = tag -> Some rest | _ -> None) items

let dtype_of_string = function
  | "f64" -> Dtype.F64
  | "f32" -> Dtype.F32
  | "i64" -> Dtype.I64
  | "i32" -> Dtype.I32
  | "bool" -> Dtype.Bool
  | s -> fail "unknown dtype %s" s

let wcr_of_string = function
  | "sum" -> Memlet.Wcr_sum
  | "mul" -> Memlet.Wcr_mul
  | "min" -> Memlet.Wcr_min
  | "max" -> Memlet.Wcr_max
  | s -> fail "unknown wcr %s" s

let memlet_of_sexp rest =
  match rest with
  | [ data; subset ] -> Memlet.make (as_atom data) (Symbolic.Subset.of_string (as_atom subset))
  | [ data; subset; wcr ] ->
      Memlet.make
        ~wcr:(wcr_of_string (as_atom wcr))
        (as_atom data)
        (Symbolic.Subset.of_string (as_atom subset))
  | _ -> fail "bad memlet"

let node_of_sexp = function
  | List [ Atom "node"; id; payload ] ->
      let n =
        match payload with
        | List [ Atom "access"; d ] -> Node.Access (as_atom d)
        | List [ Atom "tasklet"; label; code ] ->
            Node.Tasklet { label = as_atom label; code = Tcode.of_string (as_atom code) }
        | List [ Atom "map_entry"; label; params; ranges; schedule ] ->
            let params = List.map as_atom (tagged "params" params) in
            let ranges =
              match tagged "ranges" ranges with
              | [ r ] -> Symbolic.Subset.of_string (as_atom r)
              | _ -> fail "bad ranges"
            in
            let schedule =
              match as_atom schedule with
              | "seq" -> Node.Sequential
              | "par" -> Node.Parallel
              | "gpu" -> Node.Gpu_device
              | s -> fail "unknown schedule %s" s
            in
            Node.Map_entry { label = as_atom label; params; ranges; schedule }
        | List [ Atom "map_exit"; entry ] -> Node.Map_exit { entry = as_int entry }
        | List [ Atom "library"; label; Atom "matmul" ] ->
            Node.Library { label = as_atom label; kind = Node.Mat_mul }
        | List [ Atom "library"; label; Atom "batched_matmul" ] ->
            Node.Library { label = as_atom label; kind = Node.Batched_mat_mul }
        | List [ Atom "library"; label; Atom "reduce"; op; axes ] ->
            Node.Library
              {
                label = as_atom label;
                kind = Node.Reduce (wcr_of_string (as_atom op), List.map as_int (tagged "axes" axes));
              }
        | _ -> fail "bad node payload"
      in
      (as_int id, n)
  | _ -> fail "bad node"

let edge_of_sexp st = function
  | List (Atom "edge" :: src :: dst :: rest) ->
      let src_conn = Option.map (function [ c ] -> as_atom c | _ -> fail "bad src_conn") (find_tagged "src_conn" rest) in
      let dst_conn = Option.map (function [ c ] -> as_atom c | _ -> fail "bad dst_conn") (find_tagged "dst_conn" rest) in
      let memlet = Option.map memlet_of_sexp (find_tagged "memlet" rest) in
      let dst_memlet = Option.map memlet_of_sexp (find_tagged "dst_memlet" rest) in
      ignore
        (State.add_edge st ?src_conn ?dst_conn ?memlet ?dst_memlet (as_int src) (as_int dst))
  | _ -> fail "bad edge"

let state_of_sexp g = function
  | List [ Atom "state"; sid; label; nodes; edges ] ->
      let st = State.create (as_atom label) in
      List.iter
        (fun n ->
          let id, payload = node_of_sexp n in
          State.add_node_with_id st id payload)
        (tagged "nodes" nodes);
      List.iter (edge_of_sexp st) (tagged "edges" edges);
      Graph.add_state_with_id g (as_int sid) st
  | _ -> fail "bad state"

let iedge_of_sexp g = function
  | List [ Atom "iedge"; src; dst; cond; assigns ] ->
      let cond =
        match tagged "cond" cond with
        | [ c ] -> Symbolic.Cond.of_string (as_atom c)
        | _ -> fail "bad cond"
      in
      let assigns =
        List.map
          (function
            | List [ s; rhs ] -> (as_atom s, Symbolic.Expr.of_string (as_atom rhs))
            | _ -> fail "bad assign")
          (tagged "assigns" assigns)
      in
      ignore (Graph.add_istate_edge g ~cond ~assigns (as_int src) (as_int dst))
  | _ -> fail "bad iedge"

let container_of_sexp g = function
  | List [ Atom "container"; name; shape; dtype; transient; storage ] ->
      let shape = List.map (fun e -> Symbolic.Expr.of_string (as_atom e)) (tagged "shape" shape) in
      let dtype = match tagged "dtype" dtype with [ d ] -> dtype_of_string (as_atom d) | _ -> fail "bad dtype" in
      let transient = match tagged "transient" transient with [ b ] -> as_bool b | _ -> fail "bad transient" in
      let storage =
        match tagged "storage" storage with
        | [ Atom "host" ] -> Graph.Host
        | [ Atom "gpu" ] -> Graph.Gpu
        | _ -> fail "bad storage"
      in
      Graph.add_container g (as_atom name) { shape; dtype; transient; storage }
  | _ -> fail "bad container"

let of_string src =
  try
    match parse_sexp src with
    | List [ Atom "sdfg"; name; symbols; containers; states; iedges; start ] ->
        let g = Graph.create (as_atom name) in
        List.iter (fun s -> Graph.add_symbol g (as_atom s)) (tagged "symbols" symbols);
        List.iter (container_of_sexp g) (tagged "containers" containers);
        List.iter (state_of_sexp g) (tagged "states" states);
        List.iter (iedge_of_sexp g) (tagged "iedges" iedges);
        (match start with
        | List [ Atom "start"; s ] -> Graph.set_start_state g (as_int s)
        | _ -> fail "bad start");
        g
    | _ -> fail "expected (sdfg ...)"
  with Symbolic.Expr.Parse_error msg -> raise (Parse_error msg)

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
