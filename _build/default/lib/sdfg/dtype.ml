type t = F64 | F32 | I64 | I32 | Bool

let size_bytes = function F64 | I64 -> 8 | F32 | I32 -> 4 | Bool -> 1
let is_float = function F64 | F32 -> true | _ -> false
let is_int = function I64 | I32 | Bool -> true | _ -> false
let to_string = function F64 -> "f64" | F32 -> "f32" | I64 -> "i64" | I32 -> "i32" | Bool -> "bool"
let pp fmt t = Format.pp_print_string fmt (to_string t)

let min_value = function
  | F64 -> -1.797e308
  | F32 -> -3.4e38
  | I64 -> -9.007199254740992e15 (* 2^53, exactly representable *)
  | I32 -> Int32.to_float Int32.min_int
  | Bool -> 0.

let max_value = function
  | F64 -> 1.797e308
  | F32 -> 3.4e38
  | I64 -> 9.007199254740992e15
  | I32 -> Int32.to_float Int32.max_int
  | Bool -> 1.
