type binop = Add | Sub | Mul | Div | Pow | Mod | Min | Max
type unop = Neg | Sqrt | Exp | Log | Abs | Floor | Sin | Cos | Tanh
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Fconst of float
  | Ref of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cmp of cmpop * expr * expr
  | Select of expr * expr * expr

type t = { assignments : (string * expr) list }

let make assignments = { assignments }

module Sset = Set.Make (String)

let rec expr_refs acc = function
  | Fconst _ -> acc
  | Ref s -> Sset.add s acc
  | Bin (_, a, b) | Cmp (_, a, b) -> expr_refs (expr_refs acc a) b
  | Un (_, a) -> expr_refs acc a
  | Select (c, a, b) -> expr_refs (expr_refs (expr_refs acc c) a) b

let refs t =
  Sset.elements (List.fold_left (fun acc (_, e) -> expr_refs acc e) Sset.empty t.assignments)

let outputs t = List.map fst t.assignments

let rec map_refs f = function
  | Fconst _ as e -> e
  | Ref s -> Ref (f s)
  | Bin (op, a, b) -> Bin (op, map_refs f a, map_refs f b)
  | Un (op, a) -> Un (op, map_refs f a)
  | Cmp (op, a, b) -> Cmp (op, map_refs f a, map_refs f b)
  | Select (c, a, b) -> Select (map_refs f c, map_refs f a, map_refs f b)

let rename_ref ~from ~into t =
  let f s = if s = from then into else s in
  { assignments = List.map (fun (o, e) -> (o, map_refs f e)) t.assignments }

let rename_output ~from ~into t =
  { assignments = List.map (fun (o, e) -> ((if o = from then into else o), e)) t.assignments }

let rec subst_const_expr name v = function
  | Fconst _ as e -> e
  | Ref s -> if s = name then Fconst v else Ref s
  | Bin (op, a, b) -> Bin (op, subst_const_expr name v a, subst_const_expr name v b)
  | Un (op, a) -> Un (op, subst_const_expr name v a)
  | Cmp (op, a, b) -> Cmp (op, subst_const_expr name v a, subst_const_expr name v b)
  | Select (c, a, b) ->
      Select (subst_const_expr name v c, subst_const_expr name v a, subst_const_expr name v b)

let subst_const name v t =
  { assignments = List.map (fun (o, e) -> (o, subst_const_expr name v e)) t.assignments }

let inline ~producer ~out ~consumer ~conn =
  let internal = "__fused_" ^ out in
  let prod = rename_output ~from:out ~into:internal producer in
  let cons = rename_ref ~from:conn ~into:internal consumer in
  { assignments = prod.assignments @ cons.assignments }

let rec expr_selects = function
  | Fconst _ | Ref _ -> 0
  | Bin (_, a, b) | Cmp (_, a, b) -> expr_selects a + expr_selects b
  | Un (_, a) -> expr_selects a
  | Select (c, a, b) -> 1 + expr_selects c + expr_selects a + expr_selects b

let num_selects t = List.fold_left (fun acc (_, e) -> acc + expr_selects e) 0 t.assignments

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**" | Mod -> "%"
  | Min -> "min" | Max -> "max"

let unop_str = function
  | Neg -> "-" | Sqrt -> "sqrt" | Exp -> "exp" | Log -> "log" | Abs -> "abs"
  | Floor -> "floor" | Sin -> "sin" | Cos -> "cos" | Tanh -> "tanh"

let cmpop_str = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let rec pp_expr fmt = function
  | Fconst f -> Format.fprintf fmt "%g" f
  | Ref s -> Format.pp_print_string fmt s
  | Bin ((Min | Max) as op, a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Bin (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Un (Neg, a) -> Format.fprintf fmt "(-%a)" pp_expr a
  | Un (op, a) -> Format.fprintf fmt "%s(%a)" (unop_str op) pp_expr a
  | Cmp (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (cmpop_str op) pp_expr b
  | Select (c, a, b) -> Format.fprintf fmt "select(%a, %a, %a)" pp_expr c pp_expr a pp_expr b

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
    (fun fmt (o, e) -> Format.fprintf fmt "%s = %a" o pp_expr e)
    fmt t.assignments

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | TNum of float
  | TId of string
  | TOp of string
  | TLpar
  | TRpar
  | TComma
  | TEof

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let j = ref !i in
      while
        !j < n
        && (is_digit s.[!j] || s.[!j] = '.'
           || s.[!j] = 'e' || s.[!j] = 'E'
           || ((s.[!j] = '+' || s.[!j] = '-') && !j > !i && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        incr j
      done;
      toks := TNum (float_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && (is_alpha s.[!j] || is_digit s.[!j]) do incr j done;
      toks := TId (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      (match c with
      | '(' -> toks := TLpar :: !toks; incr i
      | ')' -> toks := TRpar :: !toks; incr i
      | ',' -> toks := TComma :: !toks; incr i
      | '*' when !i + 1 < n && s.[!i + 1] = '*' -> toks := TOp "**" :: !toks; i := !i + 2
      | '<' when !i + 1 < n && s.[!i + 1] = '=' -> toks := TOp "<=" :: !toks; i := !i + 2
      | '>' when !i + 1 < n && s.[!i + 1] = '=' -> toks := TOp ">=" :: !toks; i := !i + 2
      | '=' when !i + 1 < n && s.[!i + 1] = '=' -> toks := TOp "==" :: !toks; i := !i + 2
      | '!' when !i + 1 < n && s.[!i + 1] = '=' -> toks := TOp "!=" :: !toks; i := !i + 2
      | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' ->
          toks := TOp (String.make 1 c) :: !toks;
          incr i
      | _ -> raise (Symbolic.Expr.Parse_error (Printf.sprintf "tasklet code: bad character %c" c)))
    end
  done;
  List.rev (TEof :: !toks)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> TEof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok what =
  if peek st = tok then advance st
  else raise (Symbolic.Expr.Parse_error ("tasklet code: expected " ^ what))

let rec parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | TOp ("<" | "<=" | ">" | ">=" | "==" | "!=" as op) ->
      advance st;
      let rhs = parse_add st in
      let c = match op with
        | "<" -> Lt | "<=" -> Le | ">" -> Gt | ">=" -> Ge | "==" -> Eq | _ -> Ne
      in
      Cmp (c, lhs, rhs)
  | _ -> lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | TOp "+" -> advance st; lhs := Bin (Add, !lhs, parse_mul st)
    | TOp "-" -> advance st; lhs := Bin (Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_pow st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | TOp "*" -> advance st; lhs := Bin (Mul, !lhs, parse_pow st)
    | TOp "/" -> advance st; lhs := Bin (Div, !lhs, parse_pow st)
    | TOp "%" -> advance st; lhs := Bin (Mod, !lhs, parse_pow st)
    | _ -> continue := false
  done;
  !lhs

and parse_pow st =
  let base = parse_unary st in
  match peek st with
  | TOp "**" ->
      advance st;
      Bin (Pow, base, parse_pow st)
  | _ -> base

and parse_unary st =
  match peek st with
  | TOp "-" -> advance st; Un (Neg, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | TNum f -> advance st; Fconst f
  | TLpar ->
      advance st;
      let e = parse_cmp st in
      expect st TRpar ")";
      e
  | TId name -> (
      advance st;
      match peek st with
      | TLpar ->
          advance st;
          let args = parse_args st in
          expect st TRpar ")";
          apply_fn name args
      | _ -> Ref name)
  | _ -> raise (Symbolic.Expr.Parse_error "tasklet code: unexpected token")

and parse_args st =
  if peek st = TRpar then []
  else
    let rec go acc =
      let e = parse_cmp st in
      match peek st with
      | TComma -> advance st; go (e :: acc)
      | _ -> List.rev (e :: acc)
    in
    go []

and apply_fn name args =
  let un op = function
    | [ a ] -> Un (op, a)
    | _ -> raise (Symbolic.Expr.Parse_error (name ^ " takes 1 argument"))
  in
  let bin op = function
    | [ a; b ] -> Bin (op, a, b)
    | _ -> raise (Symbolic.Expr.Parse_error (name ^ " takes 2 arguments"))
  in
  match name with
  | "sqrt" -> un Sqrt args
  | "exp" -> un Exp args
  | "log" -> un Log args
  | "abs" -> un Abs args
  | "floor" -> un Floor args
  | "sin" -> un Sin args
  | "cos" -> un Cos args
  | "tanh" -> un Tanh args
  | "min" -> bin Min args
  | "max" -> bin Max args
  | "select" -> (
      match args with
      | [ c; a; b ] -> Select (c, a, b)
      | _ -> raise (Symbolic.Expr.Parse_error "select takes 3 arguments"))
  | _ -> raise (Symbolic.Expr.Parse_error ("unknown function " ^ name))

let parse_assignment s =
  match String.index_opt s '=' with
  | Some i
    when (i = 0 || (s.[i - 1] <> '<' && s.[i - 1] <> '>' && s.[i - 1] <> '!' && s.[i - 1] <> '='))
         && (i + 1 >= String.length s || s.[i + 1] <> '=') ->
      let lhs = String.trim (String.sub s 0 i) in
      let rhs = String.sub s (i + 1) (String.length s - i - 1) in
      let st = { toks = tokenize rhs } in
      let e = parse_cmp st in
      (match peek st with
      | TEof -> ()
      | _ -> raise (Symbolic.Expr.Parse_error ("tasklet code: trailing input in " ^ rhs)));
      (lhs, e)
  | _ -> raise (Symbolic.Expr.Parse_error ("tasklet code: missing '=' in " ^ s))

let of_string s =
  let stmts =
    String.split_on_char ';' s
    |> List.concat_map (String.split_on_char '\n')
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  { assignments = List.map parse_assignment stmts }
