let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_attrs = function
  | Node.Access _ -> "shape=ellipse"
  | Node.Tasklet _ -> "shape=octagon"
  | Node.Map_entry _ -> "shape=trapezium"
  | Node.Map_exit _ -> "shape=invtrapezium"
  | Node.Library _ -> "shape=box3d"

let state_body buf g sid =
  let st = Graph.state g sid in
  List.iter
    (fun (id, n) ->
      Buffer.add_string buf
        (Printf.sprintf "    s%d_n%d [label=\"%s\", %s];\n" sid id
           (escape (Node.to_string n)) (node_attrs n)))
    (State.nodes st);
  List.iter
    (fun (e : State.edge) ->
      let lbl =
        match e.memlet with
        | None -> ""
        | Some m -> escape (Memlet.to_string m)
      in
      Buffer.add_string buf
        (Printf.sprintf "    s%d_n%d -> s%d_n%d [label=\"%s\"];\n" sid e.src sid e.dst lbl))
    (State.edges st)

let state_to_dot g sid =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph state {\n";
  state_body buf g sid;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_dot g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  compound=true;\n" (escape (Graph.name g)));
  List.iter
    (fun (sid, st) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_s%d {\n    label=\"%s\";\n" sid (escape (State.label st)));
      state_body buf g sid;
      (* anchor for interstate edges *)
      Buffer.add_string buf (Printf.sprintf "    s%d_anchor [shape=point, style=invis];\n" sid);
      Buffer.add_string buf "  }\n")
    (Graph.states g);
  List.iter
    (fun (e : Graph.istate_edge) ->
      let lbl =
        let c = Symbolic.Cond.to_string e.cond in
        let a =
          String.concat "; "
            (List.map (fun (s, rhs) -> s ^ " = " ^ Symbolic.Expr.to_string rhs) e.assigns)
        in
        escape (if a = "" then c else c ^ " / " ^ a)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  s%d_anchor -> s%d_anchor [ltail=cluster_s%d, lhead=cluster_s%d, label=\"%s\"];\n"
           e.src e.dst e.src e.dst lbl))
    (Graph.istate_edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
