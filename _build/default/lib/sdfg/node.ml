type schedule = Sequential | Parallel | Gpu_device

type map_info = {
  label : string;
  params : string list;
  ranges : Symbolic.Subset.range list;
  schedule : schedule;
}

type lib_kind = Mat_mul | Batched_mat_mul | Reduce of Memlet.wcr * int list

type t =
  | Access of string
  | Tasklet of { label : string; code : Tcode.t }
  | Map_entry of map_info
  | Map_exit of { entry : int }
  | Library of { label : string; kind : lib_kind }

let tasklet label code = Tasklet { label; code = Tcode.of_string code }

let label = function
  | Access d -> d
  | Tasklet { label; _ } -> label
  | Map_entry { label; _ } -> label
  | Map_exit { entry } -> Printf.sprintf "exit(%d)" entry
  | Library { label; _ } -> label

let is_access = function Access _ -> true | _ -> false
let is_map_entry = function Map_entry _ -> true | _ -> false
let is_map_exit = function Map_exit _ -> true | _ -> false

let schedule_str = function
  | Sequential -> "seq"
  | Parallel -> "par"
  | Gpu_device -> "gpu"

let pp fmt = function
  | Access d -> Format.fprintf fmt "access(%s)" d
  | Tasklet { label; code } -> Format.fprintf fmt "tasklet(%s: %a)" label Tcode.pp code
  | Map_entry { label; params; ranges; schedule } ->
      Format.fprintf fmt "map_entry(%s[%s]: %a, %s)" label (String.concat ", " params)
        Symbolic.Subset.pp ranges (schedule_str schedule)
  | Map_exit { entry } -> Format.fprintf fmt "map_exit(entry=%d)" entry
  | Library { label; kind } ->
      let k =
        match kind with
        | Mat_mul -> "matmul"
        | Batched_mat_mul -> "batched_matmul"
        | Reduce (op, axes) ->
            Printf.sprintf "reduce(%s, [%s])" (Memlet.wcr_to_string op)
              (String.concat "," (List.map string_of_int axes))
      in
      Format.fprintf fmt "library(%s: %s)" label k

let to_string t = Format.asprintf "%a" pp t
