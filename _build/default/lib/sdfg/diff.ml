type change_set = { nodes : (int * int) list; states : int list }

let empty = { nodes = []; states = [] }

let union a b =
  {
    nodes = List.sort_uniq compare (a.nodes @ b.nodes);
    states = List.sort_uniq compare (a.states @ b.states);
  }

let is_empty c = c.nodes = [] && c.states = []

let pp fmt c =
  Format.fprintf fmt "{nodes: %s; states: %s}"
    (String.concat ", " (List.map (fun (s, n) -> Printf.sprintf "%d.%d" s n) c.nodes))
    (String.concat ", " (List.map string_of_int c.states))

let edge_key (e : State.edge) = (e.src, e.src_conn, e.dst, e.dst_conn, e.memlet, e.dst_memlet)

let diff_state ~sid ~(old_st : State.t) ~(new_st : State.t) =
  let changed = ref [] in
  let mark n = if State.has_node old_st n then changed := (sid, n) :: !changed in
  (* nodes removed or modified (same id, different payload) *)
  List.iter
    (fun (id, n_old) ->
      match State.node_opt new_st id with
      | None -> mark id
      | Some n_new -> if n_old <> n_new then mark id)
    (State.nodes old_st);
  (* nodes added: mark their original-graph neighbours *)
  List.iter
    (fun (id, _) ->
      if not (State.has_node old_st id) then begin
        List.iter mark (State.predecessors new_st id);
        List.iter mark (State.successors new_st id)
      end)
    (State.nodes new_st);
  (* edges: multiset comparison by structural key; endpoints of any
     added/removed edge are marked *)
  let count tbl k = match Hashtbl.find_opt tbl k with Some n -> n | None -> 0 in
  let old_keys = Hashtbl.create 16 and new_keys = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace old_keys (edge_key e) (count old_keys (edge_key e) + 1)) (State.edges old_st);
  List.iter (fun e -> Hashtbl.replace new_keys (edge_key e) (count new_keys (edge_key e) + 1)) (State.edges new_st);
  List.iter
    (fun (e : State.edge) ->
      if count new_keys (edge_key e) < count old_keys (edge_key e) then begin
        mark e.src;
        mark e.dst
      end)
    (State.edges old_st);
  List.iter
    (fun (e : State.edge) ->
      if count old_keys (edge_key e) < count new_keys (edge_key e) then begin
        mark e.src;
        mark e.dst
      end)
    (State.edges new_st);
  !changed

let iedge_key (e : Graph.istate_edge) = (e.src, e.dst, e.cond, e.assigns)

let compute ~original ~transformed =
  let nodes = ref [] in
  let states = ref [] in
  (* per-state dataflow diffs *)
  List.iter
    (fun (sid, old_st) ->
      match Graph.state_opt transformed sid with
      | None -> states := sid :: !states
      | Some new_st -> nodes := diff_state ~sid ~old_st ~new_st @ !nodes)
    (Graph.states original);
  (* states added: mark their neighbour states in the original *)
  List.iter
    (fun (sid, _) ->
      if Graph.state_opt original sid = None then
        List.iter
          (fun (e : Graph.istate_edge) ->
            if e.dst = sid && Graph.state_opt original e.src <> None then states := e.src :: !states;
            if e.src = sid && Graph.state_opt original e.dst <> None then states := e.dst :: !states)
          (Graph.istate_edges transformed))
    (Graph.states transformed);
  (* interstate edge changes mark endpoint states *)
  let count tbl k = match Hashtbl.find_opt tbl k with Some n -> n | None -> 0 in
  let old_keys = Hashtbl.create 16 and new_keys = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace old_keys (iedge_key e) (count old_keys (iedge_key e) + 1)) (Graph.istate_edges original);
  List.iter (fun e -> Hashtbl.replace new_keys (iedge_key e) (count new_keys (iedge_key e) + 1)) (Graph.istate_edges transformed);
  let mark_state s = if Graph.state_opt original s <> None then states := s :: !states in
  List.iter
    (fun (e : Graph.istate_edge) ->
      if count new_keys (iedge_key e) < count old_keys (iedge_key e) then begin
        mark_state e.src;
        mark_state e.dst
      end)
    (Graph.istate_edges original);
  List.iter
    (fun (e : Graph.istate_edge) ->
      if count old_keys (iedge_key e) < count new_keys (iedge_key e) then begin
        mark_state e.src;
        mark_state e.dst
      end)
    (Graph.istate_edges transformed);
  { nodes = List.sort_uniq compare !nodes; states = List.sort_uniq compare !states }
