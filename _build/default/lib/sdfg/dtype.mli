(** Element data types of data containers. *)

type t = F64 | F32 | I64 | I32 | Bool

val size_bytes : t -> int
val is_float : t -> bool
val is_int : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Smallest / largest representable value, used by the fuzzer to sample
    boundary inputs. *)
val min_value : t -> float

val max_value : t -> float
