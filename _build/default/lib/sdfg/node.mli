(** Dataflow graph nodes.

    A state's dataflow graph contains access nodes (data containers), tasklets
    (leaf computations), map entry/exit pairs (parametric parallel scopes) and
    library nodes (coarse-grained operators such as matrix products). *)

(** Execution schedule of a map scope. [Gpu_device] scopes read and write
    device-resident containers only; the interpreter faults otherwise,
    modelling invalid generated code. *)
type schedule = Sequential | Parallel | Gpu_device

type map_info = {
  label : string;
  params : string list;  (** one iteration variable per dimension *)
  ranges : Symbolic.Subset.range list;  (** one inclusive range per parameter *)
  schedule : schedule;
}

(** Coarse-grained library operators (stand-ins for MKL/cuBLAS calls). *)
type lib_kind =
  | Mat_mul  (** C\[M,N\] = A\[M,K\] · B\[K,N\] *)
  | Batched_mat_mul  (** C\[b,M,N\] = A\[b,M,K\] · B\[b,K,N\] for each batch b *)
  | Reduce of Memlet.wcr * int list
      (** reduce the input over the given axes with the given operator *)

type t =
  | Access of string  (** read/write point for a named data container *)
  | Tasklet of { label : string; code : Tcode.t }
  | Map_entry of map_info
  | Map_exit of { entry : int }  (** id of the matching {!Map_entry} node *)
  | Library of { label : string; kind : lib_kind }

val tasklet : string -> string -> t
(** [tasklet label code] parses [code] with {!Tcode.of_string}. *)

val label : t -> string
val is_access : t -> bool
val is_map_entry : t -> bool
val is_map_exit : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
