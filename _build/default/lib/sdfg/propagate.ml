open Symbolic

let widen_range ~param ~(prange : Subset.range) (r : Subset.range) =
  let has e = List.mem param (Expr.free_syms e) in
  if not (has r.lo || has r.hi) then r
  else begin
    (* Substitute both endpoints of the parameter's span and take the
       enclosing interval; handles decreasing ranges and negative
       coefficients conservatively. *)
    let at v e = Expr.simplify (Expr.subst (Expr.Env.singleton param v) e) in
    let lo1 = at prange.lo r.lo and lo2 = at prange.hi r.lo in
    let hi1 = at prange.lo r.hi and hi2 = at prange.hi r.hi in
    {
      Subset.lo = Expr.simplify (Expr.min_ lo1 lo2);
      hi = Expr.simplify (Expr.max_ hi1 hi2);
      step = Expr.one;
    }
  end

let through_map ~params ~ranges subset =
  List.fold_left2
    (fun acc param prange -> List.map (widen_range ~param ~prange) acc)
    subset params ranges

let memlet_through_map ~params ~ranges (m : Memlet.t) =
  { m with subset = through_map ~params ~ranges m.subset }
