(** SDFG serialization: a stable, human-readable s-expression format.

    Used by test-case artifacts so a failing cutout can be stored next to its
    fault-inducing inputs and reloaded for replay in a later session, and by
    tools exchanging graphs. Node, edge and state ids are preserved exactly —
    a transformation site recorded against a saved graph stays valid after a
    round-trip. *)

exception Parse_error of string

val to_string : Graph.t -> string

(** @raise Parse_error on malformed input. *)
val of_string : string -> Graph.t

val save : string -> Graph.t -> unit
(** [save path g] writes [to_string g] to [path]. *)

val load : string -> Graph.t
(** @raise Parse_error or [Sys_error]. *)
