(** Memlet propagation through map scopes.

    An edge crossing a map entry/exit covers the union over all parameter
    values of the inner accesses. We over-approximate that union with a
    bounding box, substituting each parameter by its range endpoints — the
    conservative direction required by side-effect analysis (Sec. 3.1). *)

(** [through_map ~params ~ranges subset] widens [subset] over all values each
    parameter takes in its range. *)
val through_map :
  params:string list ->
  ranges:Symbolic.Subset.range list ->
  Symbolic.Subset.t ->
  Symbolic.Subset.t

(** Widen a memlet. *)
val memlet_through_map :
  params:string list -> ranges:Symbolic.Subset.range list -> Memlet.t -> Memlet.t
