(** Graphviz export for debugging extracted cutouts and transformations. *)

val state_to_dot : Graph.t -> int -> string
val to_dot : Graph.t -> string
