(** The stateful dataflow multigraph: a state machine over dataflow states.

    Containers are declared once, with parametric shapes, a dtype, a storage
    location (host or simulated GPU) and a [transient] flag. Non-transient
    containers are the program's externally visible inputs/outputs
    (Sec. 3.1, external data analysis). *)

type storage = Host | Gpu

type datadesc = {
  shape : Symbolic.Expr.t list;  (** empty for scalars *)
  dtype : Dtype.t;
  transient : bool;
  storage : storage;
}

(** Interstate edge: taken when [cond] holds; then each [assigns] binding
    updates a symbol. Conditions and assignment right-hand sides may read
    SDFG symbols and scalar containers. *)
type istate_edge = {
  ie_id : int;
  src : int;
  dst : int;
  cond : Symbolic.Cond.t;
  assigns : (string * Symbolic.Expr.t) list;
}

type t

val create : string -> t
val name : t -> string
val copy : t -> t

(** {1 Containers and symbols} *)

val add_container : t -> string -> datadesc -> unit

val add_array :
  t -> ?transient:bool -> ?storage:storage -> string -> Dtype.t -> Symbolic.Expr.t list -> unit

val add_scalar : t -> ?transient:bool -> ?storage:storage -> string -> Dtype.t -> unit
val remove_container : t -> string -> unit
val container : t -> string -> datadesc
val container_opt : t -> string -> datadesc option
val has_container : t -> string -> bool
val containers : t -> (string * datadesc) list
(** Sorted by name. *)

val set_transient : t -> string -> bool -> unit
val set_storage : t -> string -> storage -> unit

val add_symbol : t -> string -> unit
val symbols : t -> string list
(** Declared free symbols (program parameters), sorted. *)

(** {1 States and control flow} *)

val add_state : t -> string -> int

(** Insert a state under a caller-chosen id (used by cutout extraction to
    keep original state ids). Raises [Invalid_argument] if the id is taken. *)
val add_state_with_id : t -> int -> State.t -> unit
val add_state_after : t -> int -> string -> int
(** Appends a state connected from [src] with an always-true edge. *)

val state : t -> int -> State.t
val state_opt : t -> int -> State.t option
val states : t -> (int * State.t) list
(** Sorted by state id. *)

val state_ids : t -> int list
val remove_state : t -> int -> unit
val set_start_state : t -> int -> unit
val start_state : t -> int

val add_istate_edge :
  t -> ?cond:Symbolic.Cond.t -> ?assigns:(string * Symbolic.Expr.t) list -> int -> int -> int

val istate_edges : t -> istate_edge list
(** Sorted by edge id. *)

val istate_edge : t -> int -> istate_edge
val remove_istate_edge : t -> int -> unit
val out_istate_edges : t -> int -> istate_edge list
val in_istate_edges : t -> int -> istate_edge list

(** State ids in a BFS order from the start state. *)
val states_bfs : t -> int list

(** States reachable from [src] (excluding [src] unless on a cycle). *)
val reachable_states : t -> int -> int list

(** States that can reach [dst] (excluding [dst] unless on a cycle). *)
val coreachable_states : t -> int -> int list

(** {1 Whole-program views} *)

(** Non-transient containers: the program's input/output interface, sorted. *)
val external_containers : t -> string list

(** Free symbols used anywhere (shapes, memlets, conditions) but also declared
    via {!add_symbol}. *)
val all_free_syms : t -> string list
