(** Structural difference between an SDFG and its transformed version.

    This implements the *black-box* change-isolation path of Sec. 3 (step 2):
    when a transformation does not self-report its change set, the set of
    modified nodes [Δ_T] is recovered by comparing the program graphs before
    and after. Node and state ids are stable across transformation
    application (transformations mutate a copy), so the diff is id-based. *)

(** A change set, expressed over the {e original} graph: the nodes to seed
    cutout extraction with (Sec. 3, step 3). *)
type change_set = {
  nodes : (int * int) list;  (** (state id, node id) pairs, in the original *)
  states : int list;
      (** states whose control-flow context changed (loop restructuring,
          state elimination); cutouts for these must include whole states *)
}

val empty : change_set
val union : change_set -> change_set -> change_set
val is_empty : change_set -> bool
val pp : Format.formatter -> change_set -> unit

(** [compute ~original ~transformed] recovers the change set. Modified, added
    and removed nodes and edges are detected per state; for elements that only
    exist in the transformed graph, their still-existing neighbours in the
    original are marked instead. Interstate-edge changes mark both endpoint
    states as control-flow-affected. *)
val compute : original:Graph.t -> transformed:Graph.t -> change_set
