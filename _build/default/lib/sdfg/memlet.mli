(** Memlets: data-movement annotations on dataflow edges.

    Every edge that moves data names the container it touches and the exact
    (parametric) subset accessed — the property that makes side-effect and
    sub-region analysis tractable (Table 1 of the paper). *)

(** Write-conflict resolution for accumulating writes (reductions). *)
type wcr = Wcr_sum | Wcr_mul | Wcr_min | Wcr_max

type t = {
  data : string;  (** container name *)
  subset : Symbolic.Subset.t;
  wcr : wcr option;
}

val make : ?wcr:wcr -> string -> Symbolic.Subset.t -> t

(** [simple data str] parses [str] as a subset, e.g. [simple "A" "i, 0:N-1"]. *)
val simple : ?wcr:wcr -> string -> string -> t

(** Symbolic element count moved across this memlet. *)
val volume : t -> Symbolic.Expr.t

val rename_data : from:string -> into:string -> t -> t
val rename_sym : from:string -> into:string -> t -> t
val subst : Symbolic.Expr.t Symbolic.Expr.Env.t -> t -> t
val wcr_identity : wcr -> float
val apply_wcr : wcr -> float -> float -> float
val wcr_to_string : wcr -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
