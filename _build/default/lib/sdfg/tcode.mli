(** The tasklet code language.

    Tasklets are the leaf computations of the dataflow graph. Their code is a
    list of assignments from pure expressions over input connectors, symbols
    (map parameters and SDFG symbols) and constants to output connectors.
    Branching is expressed with [Select], which the interpreter instruments
    for coverage-guided fuzzing (Sec. 5.1). *)

type binop = Add | Sub | Mul | Div | Pow | Mod | Min | Max
type unop = Neg | Sqrt | Exp | Log | Abs | Floor | Sin | Cos | Tanh

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Fconst of float
  | Ref of string  (** input connector or symbol; resolved at execution *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cmp of cmpop * expr * expr  (** evaluates to 1.0 / 0.0 *)
  | Select of expr * expr * expr
      (** [Select (c, a, b)] is [a] if [c <> 0.], else [b]; a coverage point *)

type t = {
  assignments : (string * expr) list;  (** output connector := expression *)
}

val make : (string * expr) list -> t

(** All [Ref] names appearing in the code, sorted, without duplicates. *)
val refs : t -> string list

(** Output connector names in assignment order. *)
val outputs : t -> string list

(** Rename a [Ref] (input connector or symbol) throughout the code. *)
val rename_ref : from:string -> into:string -> t -> t

(** Rename an output connector. *)
val rename_output : from:string -> into:string -> t -> t

(** Replace a [Ref] by a floating-point constant (e.g. a loop variable during
    unrolling). *)
val subst_const : string -> float -> t -> t

(** [inline ~producer ~out ~consumer ~conn] composes two tasklets: the
    producer's output [out] feeds the consumer's input connector [conn]
    through a fresh internal name; the result computes both codes. *)
val inline : producer:t -> out:string -> consumer:t -> conn:string -> t

(** Number of [Select] nodes, each a distinct coverage point. *)
val num_selects : t -> int

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse a semicolon- or newline-separated list of assignments, e.g.
    ["out = a * b + 1.5; aux = select(a < b, a, b)"]. Recognized functions:
    sqrt, exp, log, abs, floor, sin, cos, tanh, min, max, select; [**] is
    power.
    @raise Symbolic.Expr.Parse_error on malformed input. *)
val of_string : string -> t
