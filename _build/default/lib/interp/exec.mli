(** SDFG interpreter.

    Replaces DaCe's C++ code generation for this repository: runs a graph to
    completion over concrete symbol values and input arrays, producing the
    final memory image, an execution-coverage set (for coverage-guided
    fuzzing, Sec. 5.1) and precise fault signals — out-of-bounds accesses,
    step-limit "hangs" and invalid-graph conditions — that differential
    testing classifies (Sec. 5). *)

type fault =
  | Out_of_bounds of { container : string; index : int array; shape : int array; context : string }
  | Hang of { steps : int }  (** step limit exceeded *)
  | Invalid_graph of string  (** the "generates invalid code" failure class *)
  | Runtime_error of string

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string

type config = {
  step_limit : int;  (** abort as a hang beyond this many execution steps *)
  garbage_seed : int;  (** seed for deterministic GPU garbage allocation *)
  collect_coverage : bool;
}

val default_config : config

type outcome = {
  memory : Value.t;  (** final contents of every container *)
  coverage : int list;  (** sorted coverage-point hashes *)
  steps : int;  (** total execution steps consumed *)
}

(** [run g ~symbols ~inputs] validates and executes [g]. All free symbols must
    be bound in [symbols]. [inputs] initializes non-transient containers;
    missing ones are zero-filled, and each provided array must match the
    concretized element count. *)
val run :
  ?config:config ->
  Sdfg.Graph.t ->
  symbols:(string * int) list ->
  inputs:(string * float array) list ->
  (outcome, fault) result
