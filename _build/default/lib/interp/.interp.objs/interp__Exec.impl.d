lib/interp/exec.ml: Array Float Format Fun Graph Hashtbl List Memlet Node Option Printf Sdfg State String Symbolic Tcode Validate Value
