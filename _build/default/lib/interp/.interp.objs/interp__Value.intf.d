lib/interp/value.mli: Hashtbl Sdfg Symbolic
