lib/interp/value.ml: Array Float Hashtbl Int32 Int64 List Printf Sdfg Symbolic
