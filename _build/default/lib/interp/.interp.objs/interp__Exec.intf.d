lib/interp/exec.mli: Format Sdfg Value
