type comm = { n : int }

let create n =
  if n <= 0 then invalid_arg "Mpi.create: need at least one rank";
  { n }

let size c = c.n

let check_ranks c bufs name =
  if Array.length bufs <> c.n then
    invalid_arg (Printf.sprintf "Mpi.%s: %d buffers for %d ranks" name (Array.length bufs) c.n)

let bcast c ~root bufs =
  check_ranks c bufs "bcast";
  let src = bufs.(root) in
  Array.iteri
    (fun r b ->
      if r <> root then begin
        if Array.length b <> Array.length src then invalid_arg "Mpi.bcast: size mismatch";
        Array.blit src 0 b 0 (Array.length src)
      end)
    bufs

let allreduce_sum c bufs =
  check_ranks c bufs "allreduce_sum";
  let n = Array.length bufs.(0) in
  Array.iter (fun b -> if Array.length b <> n then invalid_arg "Mpi.allreduce_sum: size mismatch") bufs;
  for i = 0 to n - 1 do
    let total = Array.fold_left (fun acc b -> acc +. b.(i)) 0. bufs in
    Array.iter (fun b -> b.(i) <- total) bufs
  done

let scatter c ~root ~src bufs =
  ignore root;
  check_ranks c bufs "scatter";
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 bufs in
  if total <> Array.length src then invalid_arg "Mpi.scatter: size mismatch";
  let off = ref 0 in
  Array.iter
    (fun b ->
      Array.blit src !off b 0 (Array.length b);
      off := !off + Array.length b)
    bufs

let gather c ~root bufs ~dst =
  ignore root;
  check_ranks c bufs "gather";
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 bufs in
  if total <> Array.length dst then invalid_arg "Mpi.gather: size mismatch";
  let off = ref 0 in
  Array.iter
    (fun b ->
      Array.blit b 0 dst !off (Array.length b);
      off := !off + Array.length b)
    bufs

let bcast_messages c = c.n - 1
let allreduce_messages c = 2 * (c.n - 1)
