(** Simulated message passing for the multi-node experiments (Sec. 6.2).

    Ranks run sequentially in one process; each rank owns a buffer table.
    Collectives operate across the per-rank buffers exactly like their MPI
    counterparts operate across nodes. The point of Sec. 6.2 — that a cutout
    of a compute kernel excludes communication and can be tested on a single
    rank — is exercised by comparing a full simulated-distributed run against
    single-cutout trials. *)

type comm

val create : int -> comm
(** [create n] makes a communicator of [n] ranks.
    @raise Invalid_argument when [n <= 0]. *)

val size : comm -> int

(** Per-rank buffers: [buffers.(rank)] is that rank's local array. All
    collectives require one buffer per rank, equally sized where relevant. *)

val bcast : comm -> root:int -> float array array -> unit
(** Copy the root's buffer into every rank's buffer. *)

val allreduce_sum : comm -> float array array -> unit
(** Element-wise sum across ranks; every rank ends with the total. *)

val scatter : comm -> root:int -> src:float array -> float array array -> unit
(** Split [src] into [size] contiguous chunks; chunk i lands in rank i's
    buffer. [src] length must equal the sum of buffer lengths. *)

val gather : comm -> root:int -> float array array -> dst:float array -> unit
(** Concatenate rank buffers into [dst] (available at every rank here, since
    ranks share the process). *)

(** Number of simulated point-to-point messages a collective costs, used for
    the cost accounting in benches. *)
val bcast_messages : comm -> int

val allreduce_messages : comm -> int
