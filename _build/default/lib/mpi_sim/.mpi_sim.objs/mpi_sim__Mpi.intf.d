lib/mpi_sim/mpi.mli:
