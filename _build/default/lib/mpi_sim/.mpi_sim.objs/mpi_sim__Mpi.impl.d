lib/mpi_sim/mpi.ml: Array Printf
