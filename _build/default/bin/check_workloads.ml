(* Validates and executes every workload once; prints per-workload status. *)

let symbols_for name =
  match name with
  | "bert_encoder" -> Workloads.Bert.default_symbols
  | "cloudsc_synth" -> Workloads.Cloudsc.default_symbols
  | "sddmm_rank" -> [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ]
  | _ -> [ ("N", 8); ("T", 3) ]

let check (name, g) =
  match Sdfg.Validate.check g with
  | e :: _ ->
      Format.printf "%-16s VALIDATE FAIL: %a@." name Sdfg.Validate.pp_error e;
      false
  | [] -> (
      let symbols =
        List.filter
          (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g))
          (symbols_for (Sdfg.Graph.name g))
      in
      let env = Symbolic.Expr.Env.of_list symbols in
      let inputs =
        List.filter_map
          (fun (c, (d : Sdfg.Graph.datadesc)) ->
            if d.transient then None
            else
              let n =
                List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape
              in
              Some (c, Array.init n (fun i -> 0.01 *. float_of_int (i mod 17) +. 0.5)))
          (Sdfg.Graph.containers g)
      in
      match Interp.Exec.run g ~symbols ~inputs with
      | Ok o ->
          Format.printf "%-16s ok (%d steps, %d syms, %d containers)@." name o.steps
            (List.length symbols)
            (List.length (Sdfg.Graph.containers g));
          true
      | Error f ->
          Format.printf "%-16s RUN FAIL: %a@." name Interp.Exec.pp_fault f;
          false)

let () =
  let workloads =
    Workloads.Npbench.all ()
    @ [
        ("bert", Workloads.Bert.build ());
        ("cloudsc", Workloads.Cloudsc.build ());
        ("fig4", Workloads.Fig4.build ());
        ("sddmm", (let g, _, _ = Workloads.Sddmm.rank_program () in g));
      ]
  in
  let ok = List.for_all Fun.id (List.map check workloads) in
  (* distributed sddmm vs reference *)
  let rows = 8 and cols = 6 and k = 3 in
  let rng = ref 1 in
  let rand () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!rng mod 1000) /. 500.0 -. 1.0
  in
  let h1 = Array.init (rows * k) (fun _ -> rand ()) in
  let h2 = Array.init (cols * k) (fun _ -> rand ()) in
  let mask = Array.init (rows * cols) (fun i -> if i mod 3 = 0 then 1. else 0.) in
  let dist = Workloads.Sddmm.distributed ~ranks:4 ~rows ~cols ~k ~h1 ~h2 ~mask in
  let refr = Workloads.Sddmm.reference ~rows ~cols ~k ~h1 ~h2 ~mask in
  let close = Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) dist refr in
  Printf.printf "sddmm distributed vs reference: %s\n" (if close then "ok" else "MISMATCH");
  if not (ok && close) then exit 1;
  print_endline "ALL WORKLOADS OK"
