bin/check_workloads.ml: Array Float Format Fun Interp List Printf Sdfg Symbolic Workloads
