bin/fuzzyflow_cli.mli:
