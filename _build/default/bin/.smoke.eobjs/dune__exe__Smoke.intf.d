bin/smoke.mli:
