bin/check_workloads.mli:
