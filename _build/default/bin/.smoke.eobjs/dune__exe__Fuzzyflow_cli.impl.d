bin/fuzzyflow_cli.ml: Arg Cmd Cmdliner Format Fuzzyflow List Printf Sdfg String Term Transforms Workloads
