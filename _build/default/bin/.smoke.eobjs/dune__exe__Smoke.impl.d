bin/smoke.ml: Array Builder Dtype Format Fuzzyflow Graph Interp List Memlet Printf Sdfg Symbolic Transforms Validate
