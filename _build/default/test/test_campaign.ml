(* Campaign aggregation and the Table 1 requirements model. *)

open Fuzzyflow

let config =
  { Difftest.default_config with trials = 6; max_size = 8; concretization = [ ("N", 8) ] }

let campaign_tests =
  [
    Alcotest.test_case "rows aggregate instances and verdicts" `Quick (fun () ->
        let programs = [ ("scale", Workloads.Npbench.scale ()); ("axpy", Workloads.Npbench.axpy ()) ] in
        let good = Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.Correct in
        let bad = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
        let c = Campaign.run ~config programs [ good; bad ] in
        Alcotest.(check int) "two rows" 2 (List.length c.rows);
        let tiling = List.find (fun (r : Campaign.row) -> r.xform_name = good.name) c.rows in
        Alcotest.(check int) "tiling instances" 2 tiling.instances;
        Alcotest.(check int) "tiling all pass" 0 tiling.failed;
        let vec = List.find (fun (r : Campaign.row) -> r.xform_name = bad.name) c.rows in
        Alcotest.(check int) "vec instances" 2 vec.instances;
        Alcotest.(check int) "vec all fail" 2 vec.failed;
        Alcotest.(check int) "totals" 4 c.total_instances;
        Alcotest.(check int) "total failed" 2 c.total_failed);
    Alcotest.test_case "limit_per caps instance count" `Quick (fun () ->
        let programs = [ ("chain", Workloads.Chain.build ()) ] in
        let x = Transforms.Map_tiling.make Transforms.Map_tiling.Correct in
        let c = Campaign.run ~config ~limit_per:(Some 1) programs [ x ] in
        Alcotest.(check int) "one instance" 1 c.total_instances);
    Alcotest.test_case "table rendering mentions every transformation" `Quick (fun () ->
        let programs = [ ("scale", Workloads.Npbench.scale ()) ] in
        let x = Transforms.Map_tiling.make Transforms.Map_tiling.Correct in
        let c = Campaign.run ~config programs [ x ] in
        let table = Campaign.to_table c in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "mentions" true (contains table "MapTiling"));
  ]

let requirements_tests =
  [
    Alcotest.test_case "five capabilities, five representations" `Quick (fun () ->
        Alcotest.(check int) "caps" 5 (List.length Requirements.capabilities);
        Alcotest.(check int) "reprs" 5 (List.length Requirements.representations));
    Alcotest.test_case "parametric dataflow uniquely complete" `Quick (fun () ->
        Alcotest.(check bool) "unique" true (Requirements.parametric_dataflow_is_complete ()));
    Alcotest.test_case "MLIR sub-region support is partial" `Quick (fun () ->
        let mlir =
          List.find (fun (r : Requirements.representation) -> r.name = "MLIR")
            Requirements.representations
        in
        match List.assoc Requirements.Subregion_side_effects mlir.support with
        | Requirements.Partial _ -> ()
        | _ -> Alcotest.fail "expected partial");
    Alcotest.test_case "table renders" `Quick (fun () ->
        Alcotest.(check bool) "nonempty" true (String.length (Requirements.to_table ()) > 200));
  ]

let () =
  Alcotest.run "campaign"
    [ ("campaign", campaign_tests); ("requirements", requirements_tests) ]
