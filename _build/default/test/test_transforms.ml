(* Transformation semantics: every correct variant must preserve whole-program
   behaviour; every buggy variant must change it (or produce an invalid
   graph) on its target workload. *)

open Sdfg

let run_ok g ~symbols ~inputs =
  match Interp.Exec.run g ~symbols ~inputs with
  | Ok o -> o
  | Error f -> Alcotest.fail ("run failed: " ^ Interp.Exec.fault_to_string f)

let externals_equal g o1 o2 =
  List.for_all
    (fun c ->
      let b1 = (Interp.Value.buffer o1.Interp.Exec.memory c).data in
      let b2 = (Interp.Value.buffer o2.Interp.Exec.memory c).data in
      Array.length b1 = Array.length b2
      && Array.for_all2 (fun a b -> a = b || Float.abs (a -. b) < 1e-9) b1 b2)
    (Graph.external_containers g)

let default_inputs g ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if d.transient then None
      else
        let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
        Some (c, Array.init n (fun i -> (0.37 *. float_of_int ((i * 7 mod 23) - 11)) +. 0.25)))
    (Graph.containers g)

(* Apply the transformation at one site and compare whole-program results. *)
type behaviour = Same | Different | Invalid

let behaviour_after g (x : Transforms.Xform.t) site ~symbols =
  let inputs = default_inputs g ~symbols in
  let g' = Graph.copy g in
  match x.apply g' site with
  | exception Transforms.Xform.Cannot_apply _ -> Invalid
  | _ -> (
      match Validate.check g' with
      | _ :: _ -> Invalid
      | [] -> (
          let o1 = run_ok g ~symbols ~inputs in
          match Interp.Exec.run g' ~symbols ~inputs with
          | Error _ -> Different
          | Ok o2 -> if externals_equal g o1 o2 then Same else Different))

let check_all_sites name g (x : Transforms.Xform.t) ~symbols expected =
  Alcotest.test_case name `Quick (fun () ->
      let sites = x.find g in
      Alcotest.(check bool) "has sites" true (sites <> []);
      List.iter
        (fun site ->
          let b = behaviour_after g x site ~symbols in
          if b <> expected then
            Alcotest.fail
              (Format.asprintf "site %a: unexpected behaviour" Transforms.Xform.pp_site site))
        sites)

let check_some_site name g (x : Transforms.Xform.t) ~symbols expected =
  Alcotest.test_case name `Quick (fun () ->
      let sites = x.find g in
      Alcotest.(check bool) "has sites" true (sites <> []);
      Alcotest.(check bool) "some site shows behaviour" true
        (List.exists (fun site -> behaviour_after g x site ~symbols = expected) sites))

let n8 = [ ("N", 8) ]
let n9 = [ ("N", 9) ] (* not a multiple of common tile/vector sizes *)

let tiling_tests =
  [
    check_all_sites "correct tiling preserves matmul chain"
      (Workloads.Chain.build ())
      (Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct)
      ~symbols:n8 Same;
    check_all_sites "correct tiling preserves gemm (non-divisible size)"
      (Workloads.Npbench.gemm ())
      (Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.Correct)
      ~symbols:n9 Same;
    check_some_site "off-by-one tiling corrupts accumulation"
      (Workloads.Chain.build ())
      (Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one)
      ~symbols:n8 Different;
    check_all_sites "off-by-one tiling harmless on pure elementwise maps"
      (Workloads.Npbench.scale ())
      (Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one)
      ~symbols:n8 Same;
    check_some_site "no-remainder tiling breaks on non-multiple sizes"
      (Workloads.Npbench.scale ())
      (Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.No_remainder)
      ~symbols:n9 Different;
    check_all_sites "no-remainder tiling fine on multiples"
      (Workloads.Npbench.scale ())
      (Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.No_remainder)
      ~symbols:n8 Same;
  ]

let vectorization_tests =
  [
    check_all_sites "correct vectorization preserves semantics"
      (Workloads.Npbench.stencil5 ())
      (Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Correct)
      ~symbols:n9 Same;
    check_some_site "assume-divisible fails on odd sizes"
      (Workloads.Npbench.scale ())
      (Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible)
      ~symbols:n9 Different;
    check_all_sites "assume-divisible fine on exact multiples"
      (Workloads.Npbench.scale ())
      (Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible)
      ~symbols:n8 Same;
  ]

let fusion_tests =
  [
    check_all_sites "correct fusion preserves go_fast"
      (Workloads.Npbench.go_fast ())
      (Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Correct)
      ~symbols:n8 Same;
    Alcotest.test_case "correct fusion refuses live transient" `Quick (fun () ->
        let x = Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Correct in
        Alcotest.(check int) "no sites" 0 (List.length (x.find (Workloads.Npbench.fusion_live ()))));
    check_some_site "buggy fusion drops the live write"
      (Workloads.Npbench.fusion_live ())
      (Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Ignore_system_state)
      ~symbols:n8 Different;
    check_all_sites "buggy fusion harmless when transient truly dead"
      (Workloads.Npbench.go_fast ())
      (Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Ignore_system_state)
      ~symbols:n8 Same;
  ]

let buffer_tiling_tests =
  [
    check_some_site "wrong-schedule buffer tiling corrupts atax"
      (Workloads.Npbench.atax ())
      (Transforms.Buffer_tiling.make ~tile:4 Transforms.Buffer_tiling.Wrong_scheduling)
      ~symbols:[ ("N", 12) ] Different;
    Alcotest.test_case "correct buffer tiling only matches provably-fitting buffers" `Quick
      (fun () ->
        let x = Transforms.Buffer_tiling.make ~tile:4 Transforms.Buffer_tiling.Correct in
        Alcotest.(check int) "no sites on symbolic size" 0
          (List.length (x.find (Workloads.Npbench.atax ()))));
  ]

let expansion_tests =
  [
    check_all_sites "map expansion preserves semantics"
      (Workloads.Npbench.stencil5 ())
      (Transforms.Map_expansion.make Transforms.Map_expansion.Correct)
      ~symbols:n8 Same;
    check_all_sites "bad-exit expansion generates invalid graphs"
      (Workloads.Npbench.stencil5 ())
      (Transforms.Map_expansion.make Transforms.Map_expansion.Bad_exit_wiring)
      ~symbols:n8 Invalid;
    Alcotest.test_case "expansion then collapse round-trips" `Quick (fun () ->
        let g = Workloads.Npbench.stencil5 () in
        let expand = Transforms.Map_expansion.make Transforms.Map_expansion.Correct in
        let collapse = Transforms.Map_collapse.make () in
        let g' = Graph.copy g in
        (match expand.find g' with
        | s :: _ -> ignore (expand.apply g' s)
        | [] -> Alcotest.fail "no expansion site");
        (match collapse.find g' with
        | s :: _ -> ignore (collapse.apply g' s)
        | [] -> Alcotest.fail "no collapse site after expansion");
        let inputs = default_inputs g ~symbols:n8 in
        let o1 = run_ok g ~symbols:n8 ~inputs in
        let o2 = run_ok g' ~symbols:n8 ~inputs in
        Alcotest.(check bool) "equal" true (externals_equal g o1 o2));
  ]

let collapse_tests =
  [
    check_all_sites "map collapse preserves semantics"
      (Workloads.Npbench.nested_scale ())
      (Transforms.Map_collapse.make ())
      ~symbols:n8 Same;
  ]

let rar_tests =
  [
    check_all_sites "redundant array removal preserves semantics"
      (Workloads.Npbench.copy_chain ())
      (Transforms.Redundant_array_removal.make ())
      ~symbols:n8 Same;
    Alcotest.test_case "container actually removed" `Quick (fun () ->
        let g = Workloads.Npbench.copy_chain () in
        let x = Transforms.Redundant_array_removal.make () in
        let site = List.hd (x.find g) in
        ignore (x.apply g site);
        Alcotest.(check bool) "xc gone" false (Graph.has_container g "xc"));
  ]

let mrf_tests =
  [
    check_all_sites "correct map-reduce fusion preserves l2norm"
      (Workloads.Npbench.l2norm ())
      (Transforms.Map_reduce_fusion.make Transforms.Map_reduce_fusion.Correct)
      ~symbols:n8 Same;
    check_some_site "missing-init fusion leaks stale output"
      (Workloads.Npbench.l2norm ())
      (Transforms.Map_reduce_fusion.make Transforms.Map_reduce_fusion.Missing_init)
      ~symbols:n8 Different;
  ]

let unroll_tests =
  [
    Alcotest.test_case "correct unrolling preserves cloudsc" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let x = Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Correct in
        let sites = x.find g in
        Alcotest.(check int) "two constant loops" 2 (List.length sites);
        List.iter
          (fun site ->
            Alcotest.(check bool) "preserved" true (behaviour_after g x site ~symbols = Same))
          sites);
    Alcotest.test_case "sign-error unrolling breaks the negative-step loop only" `Quick
      (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let x = Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Negative_step_sign_error in
        let results = List.map (fun s -> behaviour_after g x s ~symbols) (x.find g) in
        Alcotest.(check int) "one broken" 1 (List.length (List.filter (fun b -> b = Different) results));
        Alcotest.(check int) "one fine" 1 (List.length (List.filter (fun b -> b = Same) results)));
    Alcotest.test_case "buggy trip count is exactly 2 for the paper's loop" `Quick (fun () ->
        (* i = 4 down to 1, step -1: 4 iterations, buggy formula gives 2 *)
        let g = Workloads.Cloudsc.build () in
        let x = Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Negative_step_sign_error in
        let site =
          List.find
            (fun (s : Transforms.Xform.site) ->
              let l =
                List.find
                  (fun (l : Transforms.Xform.loop) -> [ l.guard; l.body ] = s.states)
                  (Transforms.Xform.find_loops g)
              in
              l.var = "lev")
            (x.find g)
        in
        let g' = Graph.copy g in
        ignore (x.apply g' site);
        let unrolled =
          List.filter
            (fun (_, st) ->
              let l = State.label st in
              String.length l >= 15 && String.sub l 0 15 = "sediment_unroll")
            (Graph.states g')
        in
        Alcotest.(check int) "two copies" 2 (List.length unrolled));
  ]

let sae_tests =
  [
    Alcotest.test_case "buggy SAE matches loop bookkeeping, correct refuses" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let buggy = Transforms.State_assign_elimination.make Transforms.State_assign_elimination.Ignore_conditions in
        let correct = Transforms.State_assign_elimination.make Transforms.State_assign_elimination.Correct in
        Alcotest.(check bool) "buggy finds sites" true (buggy.find g <> []);
        Alcotest.(check int) "correct finds none" 0 (List.length (correct.find g)));
    Alcotest.test_case "removing the loop increment hangs the program" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let buggy = Transforms.State_assign_elimination.make Transforms.State_assign_elimination.Ignore_conditions in
        let results =
          List.map
            (fun site ->
              let g' = Graph.copy g in
              ignore (buggy.apply g' site);
              Interp.Exec.run
                ~config:{ Interp.Exec.default_config with step_limit = 50_000 }
                g' ~symbols:[ ("N", 6); ("T", 2) ]
                ~inputs:(default_inputs g ~symbols:[ ("N", 6) ]))
            (buggy.find g)
        in
        Alcotest.(check bool) "some run hangs or errors" true
          (List.exists (function Error _ -> true | Ok _ -> false) results));
  ]

let sap_tests =
  [
    check_some_site "clobbering alias promotion changes alias_chain"
      (Workloads.Npbench.alias_chain ())
      (Transforms.Symbol_alias_promotion.make Transforms.Symbol_alias_promotion.Clobber_redefinition)
      ~symbols:n8 Different;
    Alcotest.test_case "correct variant refuses the clobbered alias" `Quick (fun () ->
        let g = Workloads.Npbench.alias_chain () in
        let x = Transforms.Symbol_alias_promotion.make Transforms.Symbol_alias_promotion.Correct in
        Alcotest.(check int) "no sites" 0 (List.length (x.find g)));
  ]

let gpu_tests =
  [
    Alcotest.test_case "correct extraction preserves cloudsc" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let x = Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Correct in
        let sites = x.find g in
        Alcotest.(check bool) "many sites" true (List.length sites >= 10);
        List.iter
          (fun site ->
            match behaviour_after g x site ~symbols with
            | Same -> ()
            | _ -> Alcotest.fail (Format.asprintf "site %a broke" Transforms.Xform.pp_site site))
          sites);
    Alcotest.test_case "full-copy-back corrupts partial writers" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let x =
          Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Full_copy_back
        in
        let results = List.map (fun s -> behaviour_after g x s ~symbols) (x.find g) in
        let broken = List.length (List.filter (fun b -> b = Different) results) in
        Alcotest.(check bool) "majority broken" true (broken * 2 > List.length results));
    Alcotest.test_case "extraction schedules the map on the device" `Quick (fun () ->
        let g = Workloads.Npbench.stencil5 () in
        (* make the map parallel so it is a kernel candidate *)
        let sid = Graph.start_state g in
        let st = Graph.state g sid in
        List.iter
          (fun (id, n) ->
            match n with
            | Node.Map_entry i -> State.replace_node st id (Node.Map_entry { i with schedule = Node.Parallel })
            | _ -> ())
          (State.nodes st);
        let x = Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Correct in
        let site = List.hd (x.find g) in
        ignore (x.apply g site);
        let has_gpu_map =
          List.exists
            (fun (_, n) ->
              match n with
              | Node.Map_entry { schedule = Node.Gpu_device; _ } -> true
              | _ -> false)
            (State.nodes st)
        in
        Alcotest.(check bool) "gpu map" true has_gpu_map;
        Alcotest.(check int) "still valid" 0 (List.length (Validate.check g)));
  ]

let misc_tests =
  [
    Alcotest.test_case "Cannot_apply on stale sites" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = Transforms.Map_tiling.make Transforms.Map_tiling.Correct in
        let bad = Transforms.Xform.dataflow_site ~state:0 ~nodes:[ 999 ] ~descr:"stale" in
        match x.apply g bad with
        | exception Transforms.Xform.Cannot_apply _ -> ()
        | _ -> Alcotest.fail "expected Cannot_apply");
    Alcotest.test_case "registry sets are consistent" `Quick (fun () ->
        let shipped = Transforms.Registry.as_shipped () in
        let correct = Transforms.Registry.all_correct () in
        Alcotest.(check int) "same count" (List.length shipped) (List.length correct);
        Alcotest.(check bool) "lookup works" true
          (Transforms.Registry.by_name shipped "MapTiling" <> None));
  ]


(* ---------------- appended: MapFusion / LoopPeeling / StateFusion ------- *)

let fusion_chain () =
  (* producer/consumer maps with identical ranges over a transient *)
  Frontend.Lang.compile {|
    program fusable
    symbol N
    input  f64 x[N]
    temp   f64 t[N]
    output f64 y[N]
    map i = 0 to N-1 { t[i] = x[i] * 2.0 }
    map i = 0 to N-1 { y[i] = t[i] + 1.0 }
  |}

let fusion_stencil () =
  (* the consumer reads at a forward offset: fusion is illegal *)
  Frontend.Lang.compile {|
    program stencilish
    symbol N
    input  f64 x[N]
    temp   f64 t[N]
    output f64 y[N]
    map i = 1 to N-2 { t[i] = x[i] * 2.0 }
    map i = 1 to N-2 { y[i] = t[i+1] + 1.0 }
  |}

let map_fusion_tests =
  [
    check_all_sites "correct map fusion preserves semantics" (fusion_chain ())
      (Transforms.Map_fusion.make Transforms.Map_fusion.Correct)
      ~symbols:n8 Same;
    Alcotest.test_case "correct fusion refuses offset consumers" `Quick (fun () ->
        let x = Transforms.Map_fusion.make Transforms.Map_fusion.Correct in
        Alcotest.(check int) "no sites" 0 (List.length (x.find (fusion_stencil ()))));
    check_some_site "offset-ignoring fusion breaks the stencil consumer" (fusion_stencil ())
      (Transforms.Map_fusion.make Transforms.Map_fusion.Ignore_offsets)
      ~symbols:n8 Different;
    Alcotest.test_case "fusion leaves one map scope" `Quick (fun () ->
        let g = fusion_chain () in
        let x = Transforms.Map_fusion.make Transforms.Map_fusion.Correct in
        let site = List.hd (x.find g) in
        ignore (x.apply g site);
        let st = Graph.state g (Graph.start_state g) in
        Alcotest.(check int) "one entry" 1 (List.length (Transforms.Xform.map_entries st)));
  ]

let loop_peeling_tests =
  [
    Alcotest.test_case "correct peeling preserves constant loops" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let x = Transforms.Loop_peeling.make Transforms.Loop_peeling.Correct in
        let sites = x.find g in
        Alcotest.(check bool) "has sites" true (sites <> []);
        List.iter
          (fun site ->
            Alcotest.(check bool) "preserved" true (behaviour_after g x site ~symbols = Same))
          sites);
    Alcotest.test_case "correct peeling refuses possibly-empty loops" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let x = Transforms.Loop_peeling.make Transforms.Loop_peeling.Correct in
        Alcotest.(check int) "no sites" 0 (List.length (x.find g)));
    Alcotest.test_case "assume-nonempty peeling caught on empty trips" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let x = Transforms.Loop_peeling.make Transforms.Loop_peeling.Assume_nonempty in
        let site = List.hd (x.find g) in
        let config =
          {
            Fuzzyflow.Difftest.default_config with
            trials = 40;
            max_size = 8;
            concretization = [ ("N", 8); ("T", 3) ];
          }
        in
        let r = Fuzzyflow.Difftest.test_instance ~config g x site in
        match r.verdict with
        | Fuzzyflow.Difftest.Fail { klass = Fuzzyflow.Difftest.Input_dependent; _ } -> ()
        | Fuzzyflow.Difftest.Fail _ -> () (* acceptable: all sampled trips empty *)
        | Fuzzyflow.Difftest.Pass -> Alcotest.fail "empty-trip bug not caught");
    Alcotest.test_case "peeled loop still computes the same values" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let x = Transforms.Loop_peeling.make Transforms.Loop_peeling.Correct in
        let site = List.hd (x.find g) in
        Alcotest.(check bool) "same" true (behaviour_after g x site ~symbols = Same));
  ]

let state_fusion_workload () =
  (* two-stage producer in the first state, consumer in the second: fusing
     without dependency edges lets the consumer run before the producer *)
  let g = Graph.create "sf" in
  Graph.add_symbol g "N";
  let n = Symbolic.Expr.sym "N" in
  Graph.add_array g "x" Dtype.F64 [ n ];
  Graph.add_array g "y" Dtype.F64 [ n ];
  List.iter (fun c -> Graph.add_array g ~transient:true c Dtype.F64 [ n ]) [ "t1"; "t" ];
  let s1 = Graph.add_state g "produce" in
  let st1 = Graph.state g s1 in
  let m1 =
    Builder.Build.mapped_tasklet g st1 ~label:"stage1"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("v", Builder.Build.mem "x" "i") ]
      ~code:"o = v * 2.0"
      ~outputs:[ ("o", Builder.Build.mem "t1" "i") ]
      ()
  in
  ignore
    (Builder.Build.mapped_tasklet g st1 ~label:"stage2"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", Builder.Build.mem "t1" "i") ]
       ~code:"o = v + 1.0"
       ~outputs:[ ("o", Builder.Build.mem "t" "i") ]
       ~input_nodes:[ ("t1", List.assoc "t1" m1.out_access) ]
       ());
  let s2 = Graph.add_state_after g s1 "consume" in
  let st2 = Graph.state g s2 in
  ignore
    (Builder.Build.mapped_tasklet g st2 ~label:"consume"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", Builder.Build.mem "t" "i") ]
       ~code:"o = v * 3.0"
       ~outputs:[ ("o", Builder.Build.mem "y" "i") ]
       ());
  g

let fusion_legality_tests =
  [
    Alcotest.test_case "tasklet fusion refuses cycle-creating sites (durbin)" `Quick (fun () ->
        (* durbin chains scalars with side paths; fusing across them would
           create a dataflow cycle — found by the NPBench campaign itself *)
        let g = List.assoc "durbin" (Workloads.Npb_frontend.all ()) in
        let x = Transforms.Tasklet_fusion.make Transforms.Tasklet_fusion.Ignore_system_state in
        List.iter
          (fun site ->
            let g' = Graph.copy g in
            ignore (x.apply g' site);
            Alcotest.(check int) "valid after fusion" 0 (List.length (Validate.check g')))
          (x.find g));
    Alcotest.test_case "map fusion refuses intervening-overwrite sites" `Quick (fun () ->
        (* the consumer's other input is rewritten between producer and
           consumer: fusing would create a cycle *)
        let g = Frontend.Lang.compile {|
          program interleaved
          symbol N
          input  f64 x[N]
          temp   f64 t[N]
          inout  f64 w[N]
          output f64 y[N]
          map i = 0 to N-1 { t[i] = x[i] * w[i] }
          map i = 0 to N-1 { w[i] = x[i] + 1.0 }
          map i = 0 to N-1 { y[i] = t[i] + w[i] }
        |} in
        let x = Transforms.Map_fusion.make Transforms.Map_fusion.Correct in
        List.iter
          (fun site ->
            let g' = Graph.copy g in
            ignore (x.apply g' site);
            Alcotest.(check int) "valid after fusion" 0 (List.length (Validate.check g')))
          (x.find g));
  ]

let state_fusion_tests =
  [
    check_all_sites "correct state fusion preserves semantics" (state_fusion_workload ())
      (Transforms.State_fusion.make Transforms.State_fusion.Correct)
      ~symbols:n8 Same;
    check_some_site "missing-deps state fusion reorders the consumer" (state_fusion_workload ())
      (Transforms.State_fusion.make Transforms.State_fusion.Missing_dependencies)
      ~symbols:n8 Different;
    Alcotest.test_case "fused graph has one fewer state" `Quick (fun () ->
        let g = state_fusion_workload () in
        let x = Transforms.State_fusion.make Transforms.State_fusion.Correct in
        let before = List.length (Graph.state_ids g) in
        let site = List.hd (x.find g) in
        ignore (x.apply g site);
        Alcotest.(check int) "one fewer" (before - 1) (List.length (Graph.state_ids g)));
    Alcotest.test_case "conditional edges are not fusable" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let x = Transforms.State_fusion.make Transforms.State_fusion.Correct in
        (* the loop's guard edges carry conditions/assignments *)
        List.iter
          (fun (s : Transforms.Xform.site) ->
            let l = List.hd (Transforms.Xform.find_loops g) in
            Alcotest.(check bool) "not the guard pair" false
              (s.states = [ l.guard; l.body ] || s.states = [ l.body; l.guard ]))
          (x.find g));
  ]

let () =
  Alcotest.run "transforms"
    [
      ("map_tiling", tiling_tests);
      ("vectorization", vectorization_tests);
      ("tasklet_fusion", fusion_tests);
      ("buffer_tiling", buffer_tiling_tests);
      ("map_expansion", expansion_tests);
      ("map_collapse", collapse_tests);
      ("redundant_array_removal", rar_tests);
      ("map_reduce_fusion", mrf_tests);
      ("loop_unrolling", unroll_tests);
      ("state_assign_elimination", sae_tests);
      ("symbol_alias_promotion", sap_tests);
      ("gpu_kernel_extraction", gpu_tests);
      ("map_fusion", map_fusion_tests);
      ("loop_peeling", loop_peeling_tests);
      ("fusion_legality", fusion_legality_tests);
      ("state_fusion", state_fusion_tests);
      ("misc", misc_tests);
    ]
