(* Cutout extraction: closure, input configuration, system state,
   id preservation, multistate regions. *)

open Sdfg
open Fuzzyflow

let opts = { Cutout.symbols = [ ("N", 8) ] }

let chain_cutout () =
  let g, sid, mm2 = Workloads.Chain.build_with_site () in
  (g, sid, Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ mm2 ])

let extraction_tests =
  [
    Alcotest.test_case "Fig. 3: mm2 cutout has inputs {C,U} and state {V}" `Quick (fun () ->
        let _, _, cut = chain_cutout () in
        Alcotest.(check (list string)) "inputs" [ "C"; "U" ] cut.input_config;
        Alcotest.(check (list string)) "system state" [ "V" ] cut.system_state;
        Alcotest.(check (list string)) "free symbols" [ "N" ] cut.free_symbols);
    Alcotest.test_case "cutout is a valid standalone program" `Quick (fun () ->
        let _, _, cut = chain_cutout () in
        Alcotest.(check int) "valid" 0 (List.length (Validate.check cut.program)));
    Alcotest.test_case "cutout runs standalone" `Quick (fun () ->
        let _, _, cut = chain_cutout () in
        let n = 4 in
        let u = Array.init (n * n) (fun i -> float_of_int (i mod 5)) in
        let c = Array.init (n * n) (fun i -> float_of_int ((i mod 3) - 1)) in
        match
          Interp.Exec.run cut.program ~symbols:[ ("N", n) ] ~inputs:[ ("U", u); ("C", c) ]
        with
        | Ok o ->
            let v = (Interp.Value.buffer o.memory "V").data in
            (* reference V = U C *)
            let expect = Array.make (n * n) 0. in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                for k = 0 to n - 1 do
                  expect.((i * n) + j) <-
                    expect.((i * n) + j) +. (u.((i * n) + k) *. c.((k * n) + j))
                done
              done
            done;
            Alcotest.(check (array (float 1e-9))) "V" expect v
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
    Alcotest.test_case "node and state ids preserved" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let cut = Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ mm2 ] in
        Alcotest.(check bool) "state kept" true (Graph.state_opt cut.program sid <> None);
        Alcotest.(check bool) "entry kept" true (State.has_node (Graph.state cut.program sid) mm2));
    Alcotest.test_case "closure pulls whole scope" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let st = Graph.state g sid in
        let cut = Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ mm2 ] in
        (match cut.kind with
        | Cutout.Dataflow { nodes; _ } ->
            let exit = State.exit_of st mm2 in
            Alcotest.(check bool) "exit included" true (List.mem exit nodes);
            List.iter
              (fun n -> Alcotest.(check bool) "scope member" true (List.mem n nodes))
              (State.scope_nodes st mm2)
        | _ -> Alcotest.fail "expected dataflow cutout"));
    Alcotest.test_case "non-transient write always in system state" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let sid = Graph.start_state g in
        let st = Graph.state g sid in
        let entry = List.hd (Transforms.Xform.map_entries st) in
        let cut = Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ entry ] in
        Alcotest.(check (list string)) "y out" [ "y" ] cut.system_state;
        Alcotest.(check (list string)) "x,a in" [ "a"; "x" ] cut.input_config);
    Alcotest.test_case "transient unread downstream excluded from system state" `Quick
      (fun () ->
        let g = Workloads.Fig4.build () in
        let sid = Graph.start_state g in
        let st = Graph.state g sid in
        (* cutout of the f map alone: y is read later so it IS system state *)
        let f_entry =
          List.find
            (fun id ->
              match State.node st id with
              | Node.Map_entry { label = "f"; _ } -> true
              | _ -> false)
            (State.node_ids st)
        in
        let cut = Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ f_entry ] in
        Alcotest.(check (list string)) "y live" [ "y" ] cut.system_state;
        (* and the h map: w is external output; tmp/y are inputs *)
        let h_entry =
          List.find
            (fun id ->
              match State.node st id with
              | Node.Map_entry { label = "h"; _ } -> true
              | _ -> false)
            (State.node_ids st)
        in
        let cut2 = Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ h_entry ] in
        Alcotest.(check (list string)) "inputs" [ "tmp"; "y" ] cut2.input_config;
        Alcotest.(check (list string)) "w out" [ "w" ] cut2.system_state);
    Alcotest.test_case "wcr write makes the container an input too" `Quick (fun () ->
        (* mvt: x1 += ... ; the WCR read-modify-write needs x1's prior value *)
        let g = Workloads.Npbench.mvt () in
        let sid = Graph.start_state g in
        let st = Graph.state g sid in
        let entry = List.hd (Transforms.Xform.map_entries st) in
        let cut = Cutout.extract_dataflow ~options:opts g ~state:sid ~nodes:[ entry ] in
        Alcotest.(check bool) "x1 is input" true (List.mem "x1" cut.input_config));
    Alcotest.test_case "input volume accounting" `Quick (fun () ->
        let _, _, cut = chain_cutout () in
        Alcotest.(check int) "2 N^2 matrices" 128 (Cutout.input_elements cut ~symbols:[ ("N", 8) ]);
        Alcotest.(check int) "bytes" 1024 (Cutout.input_bytes cut ~symbols:[ ("N", 8) ]));
    Alcotest.test_case "empty change set rejected" `Quick (fun () ->
        let g, _, _ = Workloads.Chain.build_with_site () in
        match Cutout.extract g Diff.empty with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let multistate_tests =
  [
    Alcotest.test_case "loop region becomes runnable multistate cutout" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let loop = List.hd (Transforms.Xform.find_loops g) in
        let cs = { Diff.nodes = []; states = [ loop.guard; loop.body; loop.after ] } in
        let cut = Cutout.extract ~options:opts g cs in
        (match cut.kind with
        | Cutout.Multistate { states } ->
            Alcotest.(check bool) "guard in" true (List.mem loop.guard states)
        | _ -> Alcotest.fail "expected multistate");
        Alcotest.(check int) "valid" 0 (List.length (Validate.check cut.program));
        (* runnable: loop variable bound by the synthetic entry edge *)
        match
          Interp.Exec.run cut.program
            ~symbols:[ ("N", 6); ("T", 2) ]
            ~inputs:[ ("A", Array.make 6 1.); ("B", Array.make 6 0.) ]
        with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
    Alcotest.test_case "entering-edge assignments replicated" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let loop = List.hd (Transforms.Xform.find_loops g) in
        let cs = { Diff.nodes = []; states = [ loop.guard; loop.body ] } in
        let cut = Cutout.extract ~options:opts g cs in
        (* the loop variable t must not be free: bound by the synthetic edge *)
        Alcotest.(check bool) "t bound" true (not (List.mem "t" cut.free_symbols)));
    Alcotest.test_case "alias chain region keeps interstate assignments" `Quick (fun () ->
        let g = Workloads.Npbench.alias_chain () in
        let cs = { Diff.nodes = []; states = Graph.state_ids g } in
        let cut = Cutout.extract ~options:opts g cs in
        Alcotest.(check int) "valid" 0 (List.length (Validate.check cut.program));
        match
          Interp.Exec.run cut.program ~symbols:[ ("N", 8) ]
            ~inputs:[ ("x", Array.init 8 float_of_int); ("y", Array.make 8 0.); ("w", Array.make 8 0.) ]
        with
        | Ok o ->
            let w = (Interp.Value.buffer o.memory "w").data in
            (* w[off2=7] = x[0] + x[7] *)
            Alcotest.(check (float 1e-9)) "w[7]" 7. w.(7)
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
  ]


(* appended: sub-region container minimization *)
let shrink_tests =
  [
    Alcotest.test_case "constant-prefix access shrinks the container" `Quick (fun () ->
        let g = Frontend.Lang.compile {|
          program prefix
          symbol N
          input  f64 big[N]
          output f64 y[10]
          map i = 0 to 9 { y[i] = big[i] * 2.0 }
        |} in
        let sid = Sdfg.Graph.start_state g in
        let st = Sdfg.Graph.state g sid in
        let entry = List.hd (Transforms.Xform.map_entries st) in
        let symbols = [ ("N", 100) ] in
        let cut =
          Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
            ~nodes:[ entry ]
        in
        let cut', stats = Fuzzyflow.Cutout.shrink_containers cut ~symbols in
        (* big[100] shrinks to big[10] *)
        let d = Sdfg.Graph.container cut'.program "big" in
        let env = Symbolic.Expr.Env.of_list symbols in
        Alcotest.(check int) "big shrunk" 10
          (Symbolic.Expr.eval env (List.hd d.shape));
        Alcotest.(check bool) "bytes reduced" true (stats.shrunk_bytes < stats.original_bytes);
        (* the shrunk cutout still runs and computes the same values *)
        match
          Interp.Exec.run cut'.program ~symbols:[ ("N", 100) ]
            ~inputs:[ ("big", Array.init 10 float_of_int) ]
        with
        | Ok o ->
            let y = (Interp.Value.buffer o.memory "y").data in
            Alcotest.(check (float 1e-9)) "y[3]" 6. y.(3)
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
    Alcotest.test_case "full-range accesses do not shrink" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let symbols = [ ("N", 8) ] in
        let cut =
          Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
            ~nodes:[ mm2 ]
        in
        let _, stats = Fuzzyflow.Cutout.shrink_containers cut ~symbols in
        Alcotest.(check int) "nothing resized" 0 (List.length stats.resized));
    Alcotest.test_case "difftest with shrinking still catches the bug" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"t" in
        let config =
          {
            Fuzzyflow.Difftest.default_config with
            trials = 10;
            max_size = 8;
            shrink = true;
            concretization = [ ("N", 8) ];
          }
        in
        let r = Fuzzyflow.Difftest.test_instance ~config g x site in
        Alcotest.(check bool) "caught" true (r.verdict <> Fuzzyflow.Difftest.Pass));
  ]

let () =
  Alcotest.run "cutout"
    [
      ("extraction", extraction_tests);
      ("multistate", multistate_tests);
      ("shrink", shrink_tests);
    ]
