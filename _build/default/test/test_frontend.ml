(* Frontend language: parsing, lowering, execution semantics, error cases. *)

let farr = Alcotest.(array (float 1e-9))

let compile src =
  match Frontend.Lang.compile_checked src with
  | Ok g -> g
  | Error msg -> Alcotest.fail ("compile failed: " ^ msg)

let run g ~symbols ~inputs =
  match Interp.Exec.run g ~symbols ~inputs with
  | Ok o -> o
  | Error f -> Alcotest.fail ("run failed: " ^ Interp.Exec.fault_to_string f)

let buf o name = (Interp.Value.buffer o.Interp.Exec.memory name).data

let basic_tests =
  [
    Alcotest.test_case "scalar assignment" `Quick (fun () ->
        let g = compile {|
          program s
          input  f64 x
          output f64 y
          y = x * 2.0 + 1.0
        |} in
        let o = run g ~symbols:[] ~inputs:[ ("x", [| 3. |]) ] in
        Alcotest.check farr "y" [| 7. |] (buf o "y"));
    Alcotest.test_case "elementwise map" `Quick (fun () ->
        let g = compile {|
          program axpy
          symbol N
          input  f64 a
          input  f64 x[N]
          input  f64 y[N]
          output f64 z[N]
          map i = 0 to N-1 {
            z[i] = a * x[i] + y[i]
          }
        |} in
        let o =
          run g ~symbols:[ ("N", 4) ]
            ~inputs:[ ("a", [| 2. |]); ("x", [| 1.; 2.; 3.; 4. |]); ("y", [| 10.; 10.; 10.; 10. |]) ]
        in
        Alcotest.check farr "z" [| 12.; 14.; 16.; 18. |] (buf o "z"));
    Alcotest.test_case "accumulation lowers to WCR matmul" `Quick (fun () ->
        let g = compile {|
          program mm
          symbol N
          input  f64 A[N, N]
          input  f64 B[N, N]
          output f64 C[N, N]
          map i = 0 to N-1, j = 0 to N-1, k = 0 to N-1 {
            C[i, j] += A[i, k] * B[k, j]
          }
        |} in
        let n = 3 in
        let a = Array.init (n * n) (fun i -> float_of_int (i + 1)) in
        let b = Array.init (n * n) (fun i -> float_of_int (i mod 2)) in
        let o =
          run g ~symbols:[ ("N", n) ]
            ~inputs:[ ("A", a); ("B", b); ("C", Array.make (n * n) 0.) ]
        in
        let expect = Array.make (n * n) 0. in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            for k = 0 to n - 1 do
              expect.((i * n) + j) <- expect.((i * n) + j) +. (a.((i * n) + k) *. b.((k * n) + j))
            done
          done
        done;
        Alcotest.check farr "C" expect (buf o "C"));
    Alcotest.test_case "data dependencies order statements" `Quick (fun () ->
        let g = compile {|
          program chain
          symbol N
          input  f64 x[N]
          temp   f64 t[N]
          output f64 y[N]
          map i = 0 to N-1 { t[i] = x[i] + 1.0 }
          map i = 0 to N-1 { y[i] = t[i] * t[i] }
        |} in
        let o = run g ~symbols:[ ("N", 3) ] ~inputs:[ ("x", [| 0.; 1.; 2. |]) ] in
        Alcotest.check farr "y" [| 1.; 4.; 9. |] (buf o "y"));
    Alcotest.test_case "write-after-write is ordered" `Quick (fun () ->
        let g = compile {|
          program waw
          symbol N
          output f64 y[N]
          map i = 0 to N-1 { y[i] = 1.0 }
          map i = 0 to N-1 { y[i] = 2.0 }
        |} in
        let o = run g ~symbols:[ ("N", 3) ] ~inputs:[] in
        Alcotest.check farr "y" [| 2.; 2.; 2. |] (buf o "y"));
    Alcotest.test_case "min= and max= accumulate" `Quick (fun () ->
        let g = compile {|
          program extremes
          symbol N
          input  f64 x[N]
          output f64 lo
          output f64 hi
          map i = 0 to N-1 { lo min= x[i] }
          map i = 0 to N-1 { hi max= x[i] }
        |} in
        let o =
          run g ~symbols:[ ("N", 4) ]
            ~inputs:[ ("x", [| 3.; -7.; 5.; 1. |]); ("lo", [| 100. |]); ("hi", [| -100. |]) ]
        in
        Alcotest.check farr "lo" [| -7. |] (buf o "lo");
        Alcotest.check farr "hi" [| 5. |] (buf o "hi"));
    Alcotest.test_case "select and functions" `Quick (fun () ->
        let g = compile {|
          program reluish
          symbol N
          input  f64 x[N]
          output f64 y[N]
          map i = 0 to N-1 {
            y[i] = select(x[i] > 0.0, sqrt(x[i]), 0.0 - tanh(abs(x[i])))
          }
        |} in
        let o = run g ~symbols:[ ("N", 2) ] ~inputs:[ ("x", [| 4.; -1. |]) ] in
        Alcotest.check farr "y" [| 2.; -.Float.tanh 1. |] (buf o "y"));
  ]

let loop_tests =
  [
    Alcotest.test_case "for loop matches hand-built jacobi" `Quick (fun () ->
        let g = compile {|
          program jacobi1d
          symbol N, T
          inout  f64 A[N]
          inout  f64 B[N]
          for t = 0 to T-1 {
            map i = 1 to N-2 { B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]) }
            map i = 1 to N-2 { A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]) }
          }
        |} in
        let reference = Workloads.Npbench.jacobi_1d () in
        let n = 8 in
        let a0 = Array.init n (fun i -> float_of_int (i * i)) in
        let inputs () = [ ("A", Array.copy a0); ("B", Array.make n 0.) ] in
        let o1 = run g ~symbols:[ ("N", n); ("T", 3) ] ~inputs:(inputs ()) in
        let o2 = run reference ~symbols:[ ("N", n); ("T", 3) ] ~inputs:(inputs ()) in
        Alcotest.check farr "same A" (buf o2 "A") (buf o1 "A"));
    Alcotest.test_case "downto loop runs backwards" `Quick (fun () ->
        let g = compile {|
          program down
          input  f64 x[6]
          output f64 y[6]
          for i = 4 downto 1 {
            map c = 0 to 0 { y[i] = x[i] + i }
          }
        |} in
        let o = run g ~symbols:[] ~inputs:[ ("x", Array.make 6 0.) ] in
        Alcotest.check farr "y" [| 0.; 1.; 2.; 3.; 4.; 0. |] (buf o "y"));
    Alcotest.test_case "loop pattern is recognized by find_loops" `Quick (fun () ->
        let g = compile {|
          program l
          symbol N, T
          inout f64 A[N]
          for t = 0 to T-1 {
            map i = 0 to N-1 { A[i] = A[i] * 0.5 }
          }
        |} in
        Alcotest.(check int) "one loop" 1 (List.length (Transforms.Xform.find_loops g)));
    Alcotest.test_case "nested for loops" `Quick (fun () ->
        let g = compile {|
          program nest
          output f64 count
          for i = 0 to 2 {
            for j = 0 to 3 {
              count += 1.0
            }
          }
        |} in
        let o = run g ~symbols:[] ~inputs:[ ("count", [| 0. |]) ] in
        Alcotest.check farr "count" [| 12. |] (buf o "count"));
    Alcotest.test_case "step loops" `Quick (fun () ->
        let g = compile {|
          program strided
          output f64 acc
          for i = 0 to 9 step 3 {
            acc += 1.0
          }
        |} in
        let o = run g ~symbols:[] ~inputs:[ ("acc", [| 0. |]) ] in
        Alcotest.check farr "4 iterations" [| 4. |] (buf o "acc"));
  ]

let error_tests =
  let expect_error name src =
    Alcotest.test_case name `Quick (fun () ->
        match Frontend.Lang.compile_checked src with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a compile error")
  in
  [
    expect_error "undeclared container" {|
      program bad
      symbol N
      map i = 0 to N-1 { y[i] = 1.0 }
    |};
    expect_error "array used without indices" {|
      program bad
      symbol N
      input f64 x[N]
      output f64 y
      y = x + 1.0
    |};
    expect_error "missing brace" {|
      program bad
      symbol N
      output f64 y[N]
      map i = 0 to N-1 { y[i] = 1.0
    |};
    expect_error "bad operator" {|
      program bad
      output f64 y
      y == 1.0
    |};
    expect_error "unknown function" {|
      program bad
      output f64 y
      y = gamma(1.0)
    |};
    expect_error "float index" {|
      program bad
      symbol N
      output f64 y[N]
      map i = 0 to N-1 { y[i + 0.5] = 1.0 }
    |};
    expect_error "non-constant step" {|
      program bad
      symbol N, S
      output f64 y
      for i = 0 to N step S { y = 1.0 }
    |};
  ]

(* every frontend program is compatible with the full FuzzyFlow pipeline *)
let pipeline_tests =
  [
    Alcotest.test_case "frontend program through difftest" `Quick (fun () ->
        let g = compile {|
          program fe_scale
          symbol N
          input  f64 a
          input  f64 x[N]
          output f64 y[N]
          map i = 0 to N-1 { y[i] = a * x[i] }
        |} in
        let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
        let site = List.hd (x.find g) in
        let config =
          { Fuzzyflow.Difftest.default_config with trials = 20; max_size = 9; concretization = [ ("N", 8) ] }
        in
        let r = Fuzzyflow.Difftest.test_instance ~config g x site in
        match r.verdict with
        | Fuzzyflow.Difftest.Fail _ -> ()
        | Fuzzyflow.Difftest.Pass -> Alcotest.fail "size bug should be caught");
    Alcotest.test_case "parallel maps are GPU-extraction candidates" `Quick (fun () ->
        let g = compile {|
          program fe_kernel
          symbol N
          input  f64 x[N]
          output f64 y[N]
          parallel map i = 0 to N-2 { y[i] = x[i] * 2.0 }
        |} in
        let x = Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Full_copy_back in
        Alcotest.(check int) "one site" 1 (List.length (x.find g)));
  ]

let () =
  Alcotest.run "frontend"
    [
      ("basics", basic_tests);
      ("loops", loop_tests);
      ("errors", error_tests);
      ("pipeline", pipeline_tests);
    ]
