(* Max-flow / min-cut on known networks plus randomized invariants. *)

open Flownet

let cap = Alcotest.testable (fun fmt c -> Format.pp_print_string fmt (Cap.to_string c)) (fun a b -> Cap.compare a b = 0)

let cap_tests =
  [
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        Alcotest.check cap "add" (Cap.finite 5) (Cap.add (Cap.finite 2) (Cap.finite 3));
        Alcotest.check cap "add inf" Cap.Inf (Cap.add Cap.Inf (Cap.finite 3));
        Alcotest.check cap "sub" (Cap.finite 1) (Cap.sub (Cap.finite 3) (Cap.finite 2));
        Alcotest.check cap "min" (Cap.finite 2) (Cap.min (Cap.finite 2) Cap.Inf);
        Alcotest.(check bool) "cmp" true (Cap.compare (Cap.finite 5) Cap.Inf < 0));
    Alcotest.test_case "negative rejected" `Quick (fun () ->
        match Cap.finite (-1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "sub underflow rejected" `Quick (fun () ->
        match Cap.sub (Cap.finite 1) (Cap.finite 2) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected failure");
  ]

(* classic CLRS example: max flow 23 *)
let clrs () =
  let g = Maxflow.create () in
  let s = Maxflow.add_node g in
  let v1 = Maxflow.add_node g and v2 = Maxflow.add_node g in
  let v3 = Maxflow.add_node g and v4 = Maxflow.add_node g in
  let t = Maxflow.add_node g in
  Maxflow.add_edge g s v1 (Cap.finite 16);
  Maxflow.add_edge g s v2 (Cap.finite 13);
  Maxflow.add_edge g v1 v3 (Cap.finite 12);
  Maxflow.add_edge g v2 v1 (Cap.finite 4);
  Maxflow.add_edge g v2 v4 (Cap.finite 14);
  Maxflow.add_edge g v3 v2 (Cap.finite 9);
  Maxflow.add_edge g v3 t (Cap.finite 20);
  Maxflow.add_edge g v4 v3 (Cap.finite 7);
  Maxflow.add_edge g v4 t (Cap.finite 4);
  (g, s, t)

let flow_tests =
  [
    Alcotest.test_case "single edge" `Quick (fun () ->
        let g = Maxflow.create () in
        let s = Maxflow.add_node g and t = Maxflow.add_node g in
        Maxflow.add_edge g s t (Cap.finite 7);
        let r = Maxflow.max_flow g ~s ~t in
        Alcotest.check cap "flow" (Cap.finite 7) r.max_flow);
    Alcotest.test_case "disconnected = 0" `Quick (fun () ->
        let g = Maxflow.create () in
        let s = Maxflow.add_node g and t = Maxflow.add_node g in
        let r = Maxflow.max_flow g ~s ~t in
        Alcotest.check cap "flow" (Cap.finite 0) r.max_flow);
    Alcotest.test_case "CLRS network = 23" `Quick (fun () ->
        let g, s, t = clrs () in
        let r = Maxflow.max_flow g ~s ~t in
        Alcotest.check cap "flow" (Cap.finite 23) r.max_flow);
    Alcotest.test_case "cut value equals flow" `Quick (fun () ->
        let g, s, t = clrs () in
        let r = Maxflow.max_flow g ~s ~t in
        let cut = Maxflow.cut_edges g r in
        let total = List.fold_left (fun acc (_, _, c) -> Cap.add acc c) Cap.zero cut in
        Alcotest.check cap "cut = flow" r.max_flow total);
    Alcotest.test_case "infinite path reports Inf" `Quick (fun () ->
        let g = Maxflow.create () in
        let s = Maxflow.add_node g and m = Maxflow.add_node g and t = Maxflow.add_node g in
        Maxflow.add_edge g s m Cap.Inf;
        Maxflow.add_edge g m t Cap.Inf;
        let r = Maxflow.max_flow g ~s ~t in
        Alcotest.check cap "flow" Cap.Inf r.max_flow);
    Alcotest.test_case "inf edge avoided when finite path cheaper to cut" `Quick (fun () ->
        (* s -inf-> a -3-> t and s -5-> t : min cut = 8 across both paths *)
        let g = Maxflow.create () in
        let s = Maxflow.add_node g and a = Maxflow.add_node g and t = Maxflow.add_node g in
        Maxflow.add_edge g s a Cap.Inf;
        Maxflow.add_edge g a t (Cap.finite 3);
        Maxflow.add_edge g s t (Cap.finite 5);
        let r = Maxflow.max_flow g ~s ~t in
        Alcotest.check cap "flow" (Cap.finite 8) r.max_flow;
        Alcotest.(check bool) "a on source side" true r.source_side.(a));
    Alcotest.test_case "parallel edges accumulate" `Quick (fun () ->
        let g = Maxflow.create () in
        let s = Maxflow.add_node g and t = Maxflow.add_node g in
        Maxflow.add_edge g s t (Cap.finite 2);
        Maxflow.add_edge g s t (Cap.finite 3);
        let r = Maxflow.max_flow g ~s ~t in
        Alcotest.check cap "flow" (Cap.finite 5) r.max_flow);
    Alcotest.test_case "bad node rejected" `Quick (fun () ->
        let g = Maxflow.create () in
        let s = Maxflow.add_node g in
        match Maxflow.add_edge g s 99 (Cap.finite 1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected failure");
  ]

(* random DAG property: max-flow equals min-cut and never exceeds the
   capacity out of s *)
let gen_graph =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* edges =
      list_size (int_range 1 20)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 15))
    in
    return (n, edges))

let arb_graph = QCheck.make gen_graph

let build (n, edges) =
  let g = Maxflow.create () in
  let ids = Array.init n (fun _ -> Maxflow.add_node g) in
  List.iter (fun (u, v, c) -> if u <> v then Maxflow.add_edge g ids.(u) ids.(v) (Cap.finite c)) edges;
  (g, ids.(0), ids.(n - 1))

let prop_flow_bounded =
  QCheck.Test.make ~name:"flow bounded by source capacity" ~count:300 arb_graph (fun spec ->
      let n, edges = spec in
      let g, s, t = build (n, edges) in
      let out_s =
        List.fold_left (fun acc (u, v, c) -> if u = 0 && v <> 0 then acc + c else acc) 0 edges
      in
      let r = Maxflow.max_flow g ~s ~t in
      Cap.compare r.max_flow (Cap.finite out_s) <= 0)

let prop_cut_equals_flow =
  QCheck.Test.make ~name:"min-cut capacity equals max flow" ~count:300 arb_graph (fun spec ->
      let g, s, t = build spec in
      let r = Maxflow.max_flow g ~s ~t in
      let cut = Maxflow.cut_edges g r in
      let total = List.fold_left (fun acc (_, _, c) -> Cap.add acc c) Cap.zero cut in
      Cap.compare total r.max_flow = 0)

let prop_partition_separates =
  QCheck.Test.make ~name:"s and t end up on opposite sides (finite flow)" ~count:300 arb_graph
    (fun spec ->
      let g, s, t = build spec in
      let r = Maxflow.max_flow g ~s ~t in
      r.source_side.(s) && not r.source_side.(t))

let () =
  Alcotest.run "flownet"
    [
      ("cap", cap_tests);
      ("maxflow", flow_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flow_bounded; prop_cut_equals_flow; prop_partition_separates ] );
    ]
