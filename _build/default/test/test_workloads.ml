(* Workload sanity: every program validates and runs; semantic spot checks
   against references. *)

open Sdfg

let symbols_for name =
  match name with
  | "bert_encoder" -> Workloads.Bert.default_symbols
  | "cloudsc_synth" -> Workloads.Cloudsc.default_symbols
  | "sddmm_rank" -> [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ]
  | _ -> [ ("N", 8); ("T", 3) ]

let default_inputs g ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if d.transient then None
      else
        let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
        Some (c, Array.init n (fun i -> (0.01 *. float_of_int (i mod 17)) +. 0.5)))
    (Graph.containers g)

let all_workloads () =
  Workloads.Npbench.all ()
  @ [
      ("bert", Workloads.Bert.build ());
      ("cloudsc", Workloads.Cloudsc.build ());
      ("fig4", Workloads.Fig4.build ());
      ("sddmm", (let g, _, _ = Workloads.Sddmm.rank_program () in g));
    ]

let smoke_tests =
  List.map
    (fun (name, g) ->
      Alcotest.test_case name `Quick (fun () ->
          (match Validate.check g with
          | [] -> ()
          | e :: _ -> Alcotest.fail (Format.asprintf "%a" Validate.pp_error e));
          let symbols =
            List.filter
              (fun (s, _) -> List.mem s (Graph.all_free_syms g))
              (symbols_for (Graph.name g))
          in
          match Interp.Exec.run g ~symbols ~inputs:(default_inputs g ~symbols) with
          | Ok _ -> ()
          | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)))
    (all_workloads ())

let farr = Alcotest.(array (float 1e-9))

let semantic_tests =
  [
    Alcotest.test_case "softmax rows sum to one" `Quick (fun () ->
        let g = Workloads.Npbench.softmax () in
        let n = 5 in
        let inp = Array.init (n * n) (fun i -> Float.sin (float_of_int i)) in
        (match Interp.Exec.run g ~symbols:[ ("N", n) ] ~inputs:[ ("inp", inp); ("out", Array.make (n * n) 0.) ] with
        | Ok o ->
            let out = (Interp.Value.buffer o.memory "out").data in
            for i = 0 to n - 1 do
              let s = ref 0. in
              for j = 0 to n - 1 do
                s := !s +. out.((i * n) + j)
              done;
              Alcotest.(check (float 1e-6)) "row sum" 1.0 !s
            done
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
    Alcotest.test_case "matmul chain of identities is identity" `Quick (fun () ->
        let g = Workloads.Chain.build () in
        let n = 4 in
        let ident = Array.init (n * n) (fun i -> if i / n = i mod n then 1. else 0.) in
        (match
           Interp.Exec.run g ~symbols:[ ("N", n) ]
             ~inputs:
               [ ("A", ident); ("B", ident); ("C", ident); ("D", ident); ("R", Array.make (n * n) 0.) ]
         with
        | Ok o -> Alcotest.check farr "R = I" ident (Interp.Value.buffer o.memory "R").data
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
    Alcotest.test_case "distributed sddmm equals reference for several rank counts" `Quick
      (fun () ->
        let rows = 8 and cols = 6 and k = 3 in
        let h1 = Array.init (rows * k) (fun i -> Float.cos (float_of_int i)) in
        let h2 = Array.init (cols * k) (fun i -> Float.sin (float_of_int (i * 2))) in
        let mask = Array.init (rows * cols) (fun i -> if i mod 3 = 0 then 1. else 0.) in
        let reference = Workloads.Sddmm.reference ~rows ~cols ~k ~h1 ~h2 ~mask in
        List.iter
          (fun ranks ->
            let dist = Workloads.Sddmm.distributed ~ranks ~rows ~cols ~k ~h1 ~h2 ~mask in
            Alcotest.check farr (Printf.sprintf "%d ranks" ranks) reference dist)
          [ 1; 2; 4; 8 ]);
    Alcotest.test_case "bert encoder attention rows are convex weights" `Quick (fun () ->
        let g, _, _ = Workloads.Bert.build_with_site () in
        let symbols = [ ("B", 1); ("H", 1); ("SM", 8); ("P", 2) ] in
        let inputs = default_inputs g ~symbols in
        (match Interp.Exec.run g ~symbols ~inputs with
        | Ok o ->
            let w = (Interp.Value.buffer o.memory "omega").data in
            (* each row of omega sums to ~1 (softmax weights) *)
            for i = 0 to 7 do
              let s = ref 0. in
              for j = 0 to 7 do
                s := !s +. w.((i * 8) + j)
              done;
              Alcotest.(check (float 1e-6)) "row" 1.0 !s
            done
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
    Alcotest.test_case "cloudsc is deterministic" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = Workloads.Cloudsc.default_symbols in
        let inputs = default_inputs g ~symbols in
        let run () =
          match Interp.Exec.run g ~symbols ~inputs with
          | Ok o -> (Interp.Value.buffer o.memory "fplsl").data
          | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)
        in
        Alcotest.check farr "same" (run ()) (run ()));
    Alcotest.test_case "conv2d matches direct convolution" `Quick (fun () ->
        let g = Workloads.Npbench.conv2d () in
        let n = 5 in
        let inp = Array.init ((n + 2) * (n + 2)) (fun i -> float_of_int (i mod 7)) in
        let w = Array.init 9 (fun i -> float_of_int (i + 1) /. 10.) in
        (match
           Interp.Exec.run g ~symbols:[ ("N", n) ]
             ~inputs:[ ("inp", inp); ("w", w); ("out", Array.make (n * n) 0.) ]
         with
        | Ok o ->
            let out = (Interp.Value.buffer o.memory "out").data in
            let expect = Array.make (n * n) 0. in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                for ki = 0 to 2 do
                  for kj = 0 to 2 do
                    expect.((i * n) + j) <-
                      expect.((i * n) + j)
                      +. (inp.(((i + ki) * (n + 2)) + j + kj) *. w.((ki * 3) + kj))
                  done
                done
              done
            done;
            Alcotest.check farr "conv" expect out
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
  ]


(* appended: frontend-sourced NPBench kernels *)
let frontend_kernel_tests =
  List.map
    (fun (name, g) ->
      Alcotest.test_case ("frontend " ^ name) `Quick (fun () ->
          let symbols =
            List.filter
              (fun (s, _) -> List.mem s (Graph.all_free_syms g))
              [ ("N", 6); ("T", 2); ("H", 4); ("R", 3); ("Q", 4); ("P", 3) ]
          in
          match Interp.Exec.run g ~symbols ~inputs:(default_inputs g ~symbols) with
          | Ok _ -> ()
          | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)))
    (Workloads.Npb_frontend.all ())

let frontend_semantic_tests =
  [
    Alcotest.test_case "trisolv solves lower-triangular systems" `Quick (fun () ->
        let g = List.assoc "trisolv" (Workloads.Npb_frontend.all ()) in
        let n = 4 in
        (* L = unit lower-triangular with 0.5 below the diagonal *)
        let l =
          Array.init (n * n) (fun idx ->
              let i = idx / n and j = idx mod n in
              if i = j then 1. else if j < i then 0.5 else 0.)
        in
        let b = Array.init n (fun i -> float_of_int (i + 1)) in
        (match
           Interp.Exec.run g ~symbols:[ ("N", n) ]
             ~inputs:[ ("L", l); ("b", b); ("x", Array.make n 0.) ]
         with
        | Ok o ->
            let x = (Interp.Value.buffer o.memory "x").data in
            (* forward substitution reference *)
            let expect = Array.make n 0. in
            for i = 0 to n - 1 do
              let s = ref 0. in
              for j = 0 to i - 1 do
                s := !s +. (0.5 *. expect.(j))
              done;
              expect.(i) <- (b.(i) -. !s) /. (1. +. 1e-9)
            done;
            Alcotest.(check (array (float 1e-6))) "x" expect x
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
    Alcotest.test_case "floyd_warshall finds shortest paths" `Quick (fun () ->
        let g = List.assoc "floyd_warshall" (Workloads.Npb_frontend.all ()) in
        let inf = 1e6 in
        (* 0 -1-> 1 -1-> 2, plus a direct 0->2 edge of weight 5 *)
        let dist = [| 0.; 1.; 5.; inf; 0.; 1.; inf; inf; 0. |] in
        (match Interp.Exec.run g ~symbols:[ ("N", 3) ] ~inputs:[ ("dist", dist) ] with
        | Ok o ->
            let d = (Interp.Value.buffer o.memory "dist").data in
            Alcotest.(check (float 1e-9)) "0->2 via 1" 2. d.(2)
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
    Alcotest.test_case "syrk matches reference" `Quick (fun () ->
        let g = List.assoc "syrk" (Workloads.Npb_frontend.all ()) in
        let n = 3 in
        let a = Array.init (n * n) (fun i -> float_of_int (i mod 4) -. 1.5) in
        let c0 = Array.init (n * n) (fun i -> float_of_int i) in
        (match
           Interp.Exec.run g ~symbols:[ ("N", n) ]
             ~inputs:[ ("alpha", [| 2. |]); ("beta", [| 0.5 |]); ("A", a); ("C", Array.copy c0) ]
         with
        | Ok o ->
            let c = (Interp.Value.buffer o.memory "C").data in
            let expect = Array.map (fun v -> 0.5 *. v) c0 in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                for k = 0 to n - 1 do
                  expect.((i * n) + j) <-
                    expect.((i * n) + j) +. (2. *. a.((i * n) + k) *. a.((j * n) + k))
                done
              done
            done;
            Alcotest.(check (array (float 1e-9))) "C" expect c
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)));
  ]

let () =
  Alcotest.run "workloads"
    [
      ("smoke", smoke_tests);
      ("semantics", semantic_tests);
      ("frontend_kernels", frontend_kernel_tests);
      ("frontend_semantics", frontend_semantic_tests);
    ]
