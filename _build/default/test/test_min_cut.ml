(* Minimum input-flow cut: the Fig. 4 halving, the BERT 75 % reduction, and
   no-improvement cases. *)

open Fuzzyflow

let min_cut_tests =
  [
    Alcotest.test_case "Fig. 4: input space halves, inputs become {x}" `Quick (fun () ->
        let g, sid, seed = Workloads.Fig4.build_with_seed () in
        let symbols = [ ("N", 16) ] in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols } g ~state:sid ~nodes:seed in
        Alcotest.(check (list string)) "before" [ "y"; "z" ] cut.input_config;
        let cut', stats = Min_cut.minimize g cut ~symbols in
        Alcotest.(check (list string)) "after" [ "x" ] cut'.input_config;
        Alcotest.(check int) "halved" (stats.original_elements / 2) stats.minimized_elements);
    Alcotest.test_case "BERT: 75% input reduction with P = SM/8" `Quick (fun () ->
        let g, sid, scaling = Workloads.Bert.build_with_site () in
        let symbols = Workloads.Bert.default_symbols in
        let cut =
          Cutout.extract_dataflow ~options:{ Cutout.symbols } g ~state:sid ~nodes:[ scaling ]
        in
        Alcotest.(check (list string)) "before" [ "scale"; "tmp" ] cut.input_config;
        let cut', stats = Min_cut.minimize g cut ~symbols in
        Alcotest.(check (list string)) "after" [ "Aq"; "Bk"; "scale" ] cut'.input_config;
        let reduction =
          1. -. (float_of_int stats.minimized_elements /. float_of_int stats.original_elements)
        in
        Alcotest.(check bool) "about 75%" true (Float.abs (reduction -. 0.75) < 0.01));
    Alcotest.test_case "minimized cutout still behaves like the original region" `Quick
      (fun () ->
        let g, sid, seed = Workloads.Fig4.build_with_seed () in
        let symbols = [ ("N", 8) ] in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols } g ~state:sid ~nodes:seed in
        let cut', _ = Min_cut.minimize g cut ~symbols in
        let x = Array.init 8 (fun i -> 0.2 *. float_of_int (i - 4)) in
        match Interp.Exec.run cut'.program ~symbols ~inputs:[ ("x", x) ] with
        | Ok o ->
            let w = (Interp.Value.buffer o.memory "w").data in
            Array.iteri
              (fun i xi ->
                let y = Float.tanh xi in
                let z = (y *. y) +. 1. in
                let expect = Float.sqrt (Float.abs (z *. 2.)) +. y in
                Alcotest.(check (float 1e-9)) "w" expect w.(i))
              x
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
    Alcotest.test_case "no improvement keeps the cutout" `Quick (fun () ->
        (* the chain's mm2 cutout: upstream needs A,B (2N^2) = current (2N^2);
           the cut keeps the original *)
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let symbols = [ ("N", 8) ] in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols } g ~state:sid ~nodes:[ mm2 ] in
        let cut', stats = Min_cut.minimize g cut ~symbols in
        Alcotest.(check (list string)) "unchanged" cut.input_config cut'.input_config;
        Alcotest.(check int) "same size" stats.original_elements stats.minimized_elements);
    Alcotest.test_case "multistate cutouts pass through" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let loop = List.hd (Transforms.Xform.find_loops g) in
        let cs = { Sdfg.Diff.nodes = []; states = [ loop.guard; loop.body ] } in
        let cut = Cutout.extract g cs in
        let cut', stats = Min_cut.minimize g cut ~symbols:[ ("N", 8); ("T", 2) ] in
        Alcotest.(check (list string)) "unchanged" cut.input_config cut'.input_config;
        Alcotest.(check int) "no extension" 0 (List.length stats.extension));
    Alcotest.test_case "loop-carried accumulations block the reduction" `Quick (fun () ->
        (* inside the layer loop the attention scores accumulate across
           iterations: the previous iteration's tmp legitimately flows into
           the next, so the min-cut must NOT drop tmp from the inputs *)
        let g, sid, scaling = Workloads.Bert.build_with_site ~layers:4 () in
        let symbols = Workloads.Bert.default_symbols in
        let cut =
          Cutout.extract_dataflow ~options:{ Cutout.symbols } g ~state:sid ~nodes:[ scaling ]
        in
        let cut', _ = Min_cut.minimize g cut ~symbols in
        Alcotest.(check bool) "tmp stays an input" true (List.mem "tmp" cut'.input_config));
    Alcotest.test_case "cut value matches minimized input size" `Quick (fun () ->
        let g, sid, seed = Workloads.Fig4.build_with_seed () in
        let symbols = [ ("N", 16) ] in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols } g ~state:sid ~nodes:seed in
        let _, stats = Min_cut.minimize g cut ~symbols in
        match stats.cut_value with
        | Flownet.Cap.Finite v -> Alcotest.(check int) "flow = inputs" stats.minimized_elements v
        | Flownet.Cap.Inf -> Alcotest.fail "unexpected infinite cut");
  ]

let () = Alcotest.run "min_cut" [ ("min_cut", min_cut_tests) ]
