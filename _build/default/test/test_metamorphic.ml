(* Metamorphic property tests: random programs are generated in the frontend
   language; every *correct* transformation must preserve their semantics at
   every site, every cutout extracted from them must be a valid runnable
   program, and serialization must round-trip them. This is the library
   eating its own dog food: FuzzyFlow's premise is that correct
   transformations leave the system state untouched. *)

open Sdfg

(* ---------------- random program generation ---------------- *)

let arrays = [| "a0"; "a1"; "a2"; "a3" |]

(* One random map statement writing a random array from 1-3 reads. *)
let gen_stmt =
  QCheck.Gen.(
    let* dst = int_range 0 (Array.length arrays - 1) in
    let* acc = frequency [ (3, return ""); (1, return "+"); (1, return "max") ] in
    let* nreads = int_range 1 3 in
    let* reads =
      list_repeat nreads
        (oneof
           [
             map (fun i -> Printf.sprintf "%s[i]" arrays.(i)) (int_range 0 (Array.length arrays - 1));
             return "s0";
             map (fun c -> Printf.sprintf "%.1f" (float_of_int c /. 2.)) (int_range (-4) 8);
           ])
    in
    let* op = oneofl [ "+"; "*" ] in
    let* wrap = oneofl [ "%s"; "tanh(%s)"; "min(%s, 8.0)"; "abs(%s)" ] in
    let rhs = Printf.sprintf (Scanf.format_from_string wrap "%s") (String.concat (" " ^ op ^ " ") reads) in
    return (Printf.sprintf "  map i = 0 to N-1 { %s[i] %s= %s }" arrays.(dst) acc rhs))

let gen_program =
  QCheck.Gen.(
    let* nstmts = int_range 2 6 in
    let* stmts = list_repeat nstmts gen_stmt in
    let* temp_mask = int_range 0 3 in
    let decls =
      Array.to_list
        (Array.mapi
           (fun i a ->
             let kind = if i = temp_mask then "temp  " else "inout " in
             Printf.sprintf "%s f64 %s[N]" kind a)
           arrays)
    in
    return
      (String.concat "\n"
         (("program rnd" :: "symbol N" :: "input f64 s0" :: decls) @ stmts)))

let arb_program =
  QCheck.make ~print:(fun s -> s) gen_program

let compile_ok src =
  match Frontend.Lang.compile_checked src with
  | Ok g -> g
  | Error msg -> QCheck.Test.fail_reportf "generated program does not compile: %s\n%s" msg src

let deterministic_inputs g ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if d.transient then None
      else
        let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
        Some (c, Array.init n (fun i -> (0.125 *. float_of_int ((i * 7 mod 19) - 9)) +. 0.25)))
    (Graph.containers g)

let run g ~symbols ~inputs = Interp.Exec.run g ~symbols ~inputs

let outputs_equal g o1 o2 =
  List.for_all
    (fun c ->
      let b1 = (Interp.Value.buffer o1.Interp.Exec.memory c).data in
      let b2 = (Interp.Value.buffer o2.Interp.Exec.memory c).data in
      Array.for_all2 (fun a b -> a = b || Float.abs (a -. b) < 1e-9) b1 b2)
    (Graph.external_containers g)

let take n l =
  let rec go i = function [] -> [] | x :: r -> if i >= n then [] else x :: go (i + 1) r in
  go 0 l

(* ---------------- properties ---------------- *)

let symbols = [ ("N", 7) ]

let prop_programs_run =
  QCheck.Test.make ~name:"generated programs compile, validate and run" ~count:60 arb_program
    (fun src ->
      let g = compile_ok src in
      match run g ~symbols ~inputs:(deterministic_inputs g ~symbols) with
      | Ok _ -> true
      | Error f -> QCheck.Test.fail_reportf "run failed: %s\n%s" (Interp.Exec.fault_to_string f) src)

let prop_correct_transformations_preserve =
  QCheck.Test.make ~name:"every correct transformation preserves random programs" ~count:40
    arb_program (fun src ->
      let g = compile_ok src in
      let inputs = deterministic_inputs g ~symbols in
      let reference =
        match run g ~symbols ~inputs with
        | Ok o -> o
        | Error f -> QCheck.Test.fail_reportf "base run failed: %s" (Interp.Exec.fault_to_string f)
      in
      List.for_all
        (fun (x : Transforms.Xform.t) ->
          List.for_all
            (fun site ->
              let g' = Graph.copy g in
              match x.apply g' site with
              | exception Transforms.Xform.Cannot_apply _ -> true
              | _ -> (
                  match Validate.check g' with
                  | _ :: _ ->
                      QCheck.Test.fail_reportf "%s produced an invalid graph on\n%s" x.name src
                  | [] -> (
                      match run g' ~symbols ~inputs with
                      | Error f ->
                          QCheck.Test.fail_reportf "%s broke execution (%s) on\n%s" x.name
                            (Interp.Exec.fault_to_string f) src
                      | Ok o ->
                          outputs_equal g reference o
                          || QCheck.Test.fail_reportf "%s changed semantics on\n%s" x.name src)))
            (take 3 (x.find g)))
        (Transforms.Registry.all_correct ()))

let prop_cutouts_runnable =
  QCheck.Test.make ~name:"cutouts of random programs are valid and runnable" ~count:40
    arb_program (fun src ->
      let g = compile_ok src in
      let sid = Graph.start_state g in
      let st = Graph.state g sid in
      let entries = Transforms.Xform.map_entries st in
      QCheck.assume (entries <> []);
      List.for_all
        (fun entry ->
          let cut =
            Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
              ~nodes:[ entry ]
          in
          (match Validate.check cut.program with
          | [] -> ()
          | e :: _ ->
              ignore
                (QCheck.Test.fail_reportf "invalid cutout (%s) from\n%s"
                   (Format.asprintf "%a" Validate.pp_error e)
                   src));
          let env = Symbolic.Expr.Env.of_list symbols in
          let inputs =
            List.map
              (fun c ->
                let d = Graph.container cut.program c in
                let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
                (c, Array.init n (fun i -> float_of_int (i mod 5))))
              cut.input_config
          in
          match run cut.program ~symbols ~inputs with
          | Ok _ -> true
          | Error f ->
              QCheck.Test.fail_reportf "cutout failed to run (%s) from\n%s"
                (Interp.Exec.fault_to_string f) src)
        (take 3 entries))

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialization round-trips random programs" ~count:60 arb_program
    (fun src ->
      let g = compile_ok src in
      let g' = Serialize.of_string (Serialize.to_string g) in
      let inputs = deterministic_inputs g ~symbols in
      match (run g ~symbols ~inputs, run g' ~symbols ~inputs) with
      | Ok o1, Ok o2 -> outputs_equal g o1 o2
      | _ -> false)

let prop_minimized_cutouts_agree =
  QCheck.Test.make ~name:"min-cut-grown cutouts compute the same system state" ~count:25
    arb_program (fun src ->
      let g = compile_ok src in
      let sid = Graph.start_state g in
      let st = Graph.state g sid in
      let entries = Transforms.Xform.map_entries st in
      QCheck.assume (List.length entries >= 2);
      (* the last map usually depends on earlier ones: a min-cut candidate *)
      let entry = List.nth entries (List.length entries - 1) in
      let cut =
        Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols } g ~state:sid
          ~nodes:[ entry ]
      in
      let cut', _ = Fuzzyflow.Min_cut.minimize g cut ~symbols in
      (* both cutouts, run inside the full program's context, must produce
         identical values for the original cutout's system state; here we
         check the minimized one is at least valid and runnable *)
      (match Validate.check cut'.program with
      | [] -> ()
      | e :: _ ->
          ignore
            (QCheck.Test.fail_reportf "invalid minimized cutout (%s) from\n%s"
               (Format.asprintf "%a" Validate.pp_error e)
               src));
      let env = Symbolic.Expr.Env.of_list symbols in
      let inputs =
        List.map
          (fun c ->
            let d = Graph.container cut'.program c in
            let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
            (c, Array.init n (fun i -> float_of_int (i mod 3))))
          cut'.input_config
      in
      match run cut'.program ~symbols ~inputs with Ok _ -> true | Error _ -> false)

let () =
  Alcotest.run "metamorphic"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_programs_run;
            prop_correct_transformations_preserve;
            prop_cutouts_runnable;
            prop_serialize_roundtrip;
            prop_minimized_cutouts_agree;
          ] );
    ]
