(* Fuzzing strategies: all modes find the vectorization size bug, coverage
   grows over trials, runs are seed-deterministic. *)

open Fuzzyflow

let vec_setup () =
  let g = Workloads.Npbench.scale () in
  let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
  let site = List.hd (x.find g) in
  let g' = Sdfg.Graph.copy g in
  let cs = x.apply g' site in
  let cut = Cutout.extract ~options:{ Cutout.symbols = [ ("N", 8) ] } g cs in
  let transformed = Sdfg.Graph.copy cut.program in
  ignore (x.apply transformed site);
  (g, cut, transformed)

let config = { Fuzzer.default_config with max_trials = 120 }

let fuzzer_tests =
  [
    Alcotest.test_case "gray-box finds the size bug quickly" `Quick (fun () ->
        let g, cut, transformed = vec_setup () in
        let r = Fuzzer.run ~config Fuzzer.Graybox ~original:g ~cutout:cut ~transformed in
        match r.trials_to_failure with
        | Some t -> Alcotest.(check bool) "fast" true (t <= 10)
        | None -> Alcotest.fail "bug not found");
    Alcotest.test_case "uniform eventually finds it too" `Quick (fun () ->
        let g, cut, transformed = vec_setup () in
        let r = Fuzzer.run ~config Fuzzer.Uniform ~original:g ~cutout:cut ~transformed in
        Alcotest.(check bool) "found" true (r.trials_to_failure <> None));
    Alcotest.test_case "coverage mode accumulates coverage" `Quick (fun () ->
        let g, cut, transformed = vec_setup () in
        let r = Fuzzer.run ~config Fuzzer.Coverage ~original:g ~cutout:cut ~transformed in
        Alcotest.(check bool) "coverage nonzero" true (r.distinct_coverage > 0));
    Alcotest.test_case "no false positive on the correct variant" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Correct in
        let site = List.hd (x.find g) in
        let g' = Sdfg.Graph.copy g in
        let cs = x.apply g' site in
        let cut = Cutout.extract ~options:{ Cutout.symbols = [ ("N", 8) ] } g cs in
        let transformed = Sdfg.Graph.copy cut.program in
        ignore (x.apply transformed site);
        let r =
          Fuzzer.run ~config:{ config with max_trials = 40 } Fuzzer.Graybox ~original:g
            ~cutout:cut ~transformed
        in
        Alcotest.(check bool) "no failure" true (r.trials_to_failure = None);
        Alcotest.(check int) "all trials run" 40 r.trials_run);
    Alcotest.test_case "seed determinism" `Quick (fun () ->
        let g, cut, transformed = vec_setup () in
        let run seed =
          (Fuzzer.run ~config:{ config with seed } Fuzzer.Graybox ~original:g ~cutout:cut
             ~transformed).trials_to_failure
        in
        Alcotest.(check bool) "same seed same result" true (run 11 = run 11));
    Alcotest.test_case "coverage-guided explores rare select branches" `Quick (fun () ->
        (* nbody_force has an i != j select; coverage should include both
           branch outcomes after a few trials *)
        let g = Workloads.Npbench.nbody_force () in
        let sid = Sdfg.Graph.start_state g in
        let st = Sdfg.Graph.state g sid in
        let entry = List.hd (Transforms.Xform.map_entries st) in
        let cut =
          Cutout.extract_dataflow ~options:{ Cutout.symbols = [ ("N", 6) ] } g ~state:sid
            ~nodes:[ entry ]
        in
        let transformed = Sdfg.Graph.copy cut.program in
        let r =
          Fuzzer.run
            ~config:{ config with max_trials = 6 }
            Fuzzer.Coverage ~original:g ~cutout:cut ~transformed
        in
        Alcotest.(check bool) "covers selects" true (r.distinct_coverage >= 2));
  ]

let () = Alcotest.run "fuzzer" [ ("fuzzer", fuzzer_tests) ]
