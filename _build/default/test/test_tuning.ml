(* Black-box change isolation and transformation-parameter fuzzing. *)

open Fuzzyflow

let config =
  { Difftest.default_config with trials = 10; max_size = 8; concretization = [ ("N", 8) ] }

let blackbox_tests =
  [
    Alcotest.test_case "black-box and white-box agree on the tiling bug" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"t" in
        let white = Difftest.test_instance ~config g x site in
        let black = Difftest.test_instance ~config:{ config with black_box = true } g x site in
        let failed = function Difftest.Fail _ -> true | Difftest.Pass -> false in
        Alcotest.(check bool) "both fail" true (failed white.verdict && failed black.verdict);
        Alcotest.(check (list string)) "same inputs" white.cutout.input_config
          black.cutout.input_config;
        Alcotest.(check (list string)) "same system state" white.cutout.system_state
          black.cutout.system_state);
    Alcotest.test_case "black-box passes the correct variant" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"t" in
        let r = Difftest.test_instance ~config:{ config with black_box = true } g x site in
        Alcotest.(check bool) "pass" true (r.verdict = Difftest.Pass));
  ]

let tuning_tests =
  [
    Alcotest.test_case "tile-size sweep separates divisible from ragged" `Quick (fun () ->
        (* no-remainder tiling of a size-8 map: tile sizes dividing 8 are
           safe, others go out of bounds *)
        let g = Workloads.Npbench.scale () in
        let sid = Sdfg.Graph.start_state g in
        let entry =
          List.hd (Transforms.Xform.map_entries (Sdfg.Graph.state g sid))
        in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:"t" in
        let cfg =
          { config with custom_constraints = [ ("N", (8, 8)) ] (* pin the size *) }
        in
        let r =
          Tuning.sweep ~config:cfg g
            ~family:(fun ts -> Transforms.Map_tiling.make ~tile_size:ts Transforms.Map_tiling.No_remainder)
            ~params:[ 2; 3; 4; 5; 8 ] ~site
        in
        Alcotest.(check (list int)) "safe divisors" [ 2; 4; 8 ] r.safe;
        Alcotest.(check (list int)) "unsafe" [ 3; 5 ] r.unsafe);
    Alcotest.test_case "correct family safe everywhere" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let sid = Sdfg.Graph.start_state g in
        let entry = List.hd (Transforms.Xform.map_entries (Sdfg.Graph.state g sid)) in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:"t" in
        let r =
          Tuning.sweep ~config g
            ~family:(fun ts -> Transforms.Map_tiling.make ~tile_size:ts Transforms.Map_tiling.Correct)
            ~params:[ 2; 3; 5 ] ~site
        in
        Alcotest.(check (list int)) "all safe" [ 2; 3; 5 ] r.safe);
  ]

let () =
  Alcotest.run "tuning" [ ("black_box", blackbox_tests); ("param_sweep", tuning_tests) ]
