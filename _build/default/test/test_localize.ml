(* Divergence localization: the earliest corrupted container is identified. *)

open Fuzzyflow

let config =
  { Difftest.default_config with trials = 10; max_size = 10; concretization = [ ("N", 8) ] }

let localize_tests =
  [
    Alcotest.test_case "off-by-one tiling diverges first at V" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"tile" in
        let r = Difftest.test_instance ~config g x site in
        (match Localize.of_report ~config ~original:g ~xform:x r with
        | Some (d :: _) -> Alcotest.(check string) "first diverging" "V" d.container
        | Some [] -> Alcotest.fail "expected divergences"
        | None -> Alcotest.fail "expected localization"));
    Alcotest.test_case "agreement yields no divergence" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"tile" in
        let cut =
          Cutout.extract_dataflow ~options:{ Cutout.symbols = [ ("N", 8) ] } g ~state:sid
            ~nodes:[ mm2 ]
        in
        let transformed = Sdfg.Graph.copy cut.program in
        ignore (x.apply transformed site);
        let n = 4 in
        let inputs =
          [
            ("U", Array.init (n * n) float_of_int);
            ("C", Array.init (n * n) (fun i -> float_of_int (i mod 3)));
          ]
        in
        let ds = Localize.locate ~cutout:cut ~transformed ~symbols:[ ("N", n) ] ~inputs () in
        Alcotest.(check int) "none" 0 (List.length ds));
    Alcotest.test_case "earliest writer ranks before later ones" `Quick (fun () ->
        (* break the middle of a chain; the first divergence must be the
           middle temp, not the final output *)
        let g = Frontend.Lang.compile {|
          program chain3
          symbol N
          input  f64 x[N]
          temp   f64 t1[N]
          temp   f64 t2[N]
          output f64 y[N]
          map i = 0 to N-1 { t1[i] = x[i] + 1.0 }
          map i = 0 to N-1 { t2[i] = t1[i] * 2.0 }
          map i = 0 to N-1 { y[i] = t2[i] - 3.0 }
        |} in
        let sid = Sdfg.Graph.start_state g in
        let st = Sdfg.Graph.state g sid in
        (* cutout of everything *)
        let cut =
          Cutout.extract_dataflow ~options:{ Cutout.symbols = [ ("N", 4) ] } g ~state:sid
            ~nodes:(Sdfg.State.node_ids st)
        in
        (* transformed copy with the t2 tasklet corrupted *)
        let transformed = Sdfg.Graph.copy cut.program in
        let st' = Sdfg.Graph.state transformed sid in
        (* corrupt the producer of t2: the tasklet whose out-edge writes t2 *)
        List.iter
          (fun (id, n) ->
            match n with
            | Sdfg.Node.Tasklet { label; _ } ->
                let writes_t2 =
                  List.exists
                    (fun (e : Sdfg.State.edge) ->
                      match e.memlet with Some m -> m.data = "t2" | None -> false)
                    (Sdfg.State.out_edges st' id)
                in
                if writes_t2 then
                  Sdfg.State.replace_node st' id
                    (Sdfg.Node.Tasklet { label; code = Sdfg.Tcode.of_string "__out = __in1 * 2.5" })
            | _ -> ())
          (Sdfg.State.nodes st');
        let ds =
          Localize.locate ~cutout:cut ~transformed ~symbols:[ ("N", 4) ]
            ~inputs:[ ("x", [| 1.; 2.; 3.; 4. |]) ]
            ()
        in
        match ds with
        | d1 :: d2 :: _ ->
            Alcotest.(check string) "t2 first" "t2" d1.container;
            Alcotest.(check string) "y after" "y" d2.container
        | _ -> Alcotest.fail "expected two divergences");
  ]

let () = Alcotest.run "localize" [ ("localize", localize_tests) ]
