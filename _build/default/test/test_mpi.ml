(* Simulated collectives. *)

let farr = Alcotest.(array (float 1e-12))

let mpi_tests =
  [
    Alcotest.test_case "bcast copies root to all" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 3 in
        let bufs = [| [| 1.; 2. |]; [| 0.; 0. |]; [| 0.; 0. |] |] in
        Mpi_sim.Mpi.bcast c ~root:0 bufs;
        Array.iter (fun b -> Alcotest.check farr "same" [| 1.; 2. |] b) bufs);
    Alcotest.test_case "allreduce sums elementwise" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 3 in
        let bufs = [| [| 1.; 0. |]; [| 2.; 1. |]; [| 3.; 2. |] |] in
        Mpi_sim.Mpi.allreduce_sum c bufs;
        Array.iter (fun b -> Alcotest.check farr "sum" [| 6.; 3. |] b) bufs);
    Alcotest.test_case "scatter then gather round-trips" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 2 in
        let src = [| 1.; 2.; 3.; 4. |] in
        let bufs = [| Array.make 2 0.; Array.make 2 0. |] in
        Mpi_sim.Mpi.scatter c ~root:0 ~src bufs;
        Alcotest.check farr "rank1 chunk" [| 3.; 4. |] bufs.(1);
        let dst = Array.make 4 0. in
        Mpi_sim.Mpi.gather c ~root:0 bufs ~dst;
        Alcotest.check farr "roundtrip" src dst);
    Alcotest.test_case "size mismatch rejected" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 2 in
        match Mpi_sim.Mpi.allreduce_sum c [| [| 1. |]; [| 1.; 2. |] |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    Alcotest.test_case "zero ranks rejected" `Quick (fun () ->
        match Mpi_sim.Mpi.create 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    Alcotest.test_case "message cost accounting" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 4 in
        Alcotest.(check int) "bcast" 3 (Mpi_sim.Mpi.bcast_messages c);
        Alcotest.(check int) "allreduce" 6 (Mpi_sim.Mpi.allreduce_messages c));
  ]

let () = Alcotest.run "mpi_sim" [ ("collectives", mpi_tests) ]
