(* Guarded optimization: buggy instances are rejected, the optimized program
   stays semantically identical, and passing instances actually land. *)

open Fuzzyflow

let config =
  { Difftest.default_config with trials = 8; max_size = 8; concretization = [ ("N", 8) ] }

let externals_equal g o1 o2 =
  List.for_all
    (fun c ->
      let b1 = (Interp.Value.buffer o1.Interp.Exec.memory c).data in
      let b2 = (Interp.Value.buffer o2.Interp.Exec.memory c).data in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) b1 b2)
    (Sdfg.Graph.external_containers g)

let run_ok g ~symbols ~inputs =
  match Interp.Exec.run g ~symbols ~inputs with
  | Ok o -> o
  | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)

let pipeline_tests =
  [
    Alcotest.test_case "correct tiling applied, buggy vectorization rejected" `Quick (fun () ->
        let g = Workloads.Npbench.stencil5 () in
        let xforms =
          [
            Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.Correct;
            Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible;
          ]
        in
        let optimized, log = Pipeline.optimize ~config g xforms in
        Alcotest.(check bool) "something applied" true (log.applied >= 1);
        Alcotest.(check bool) "something rejected" true (log.rejected >= 1);
        (* the gated result is semantically identical to the original *)
        let n = 8 in
        let inputs =
          [ ("inp", Array.init (n * n) (fun i -> Float.sin (float_of_int i))); ("out", Array.make (n * n) 0.) ]
        in
        let o1 = run_ok g ~symbols:[ ("N", n) ] ~inputs in
        let o2 = run_ok optimized ~symbols:[ ("N", n) ] ~inputs in
        Alcotest.(check bool) "same results" true (externals_equal g o1 o2);
        Alcotest.(check int) "still valid" 0 (List.length (Sdfg.Validate.check optimized)));
    Alcotest.test_case "original program is never mutated" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let before = Sdfg.Serialize.to_string g in
        let _ =
          Pipeline.optimize ~config g [ Transforms.Map_tiling.make Transforms.Map_tiling.Correct ]
        in
        Alcotest.(check string) "unchanged" before (Sdfg.Serialize.to_string g));
    Alcotest.test_case "log accounts for every step" `Quick (fun () ->
        let g = Workloads.Npbench.atax () in
        let _, log =
          Pipeline.optimize ~config g
            [ Transforms.Buffer_tiling.make ~tile:4 Transforms.Buffer_tiling.Wrong_scheduling ]
        in
        Alcotest.(check int) "steps" (log.applied + log.rejected + log.stale)
          (List.length log.steps);
        Alcotest.(check bool) "buggy rejected" true (log.rejected >= 1));
  ]

let () = Alcotest.run "pipeline" [ ("pipeline", pipeline_tests) ]
