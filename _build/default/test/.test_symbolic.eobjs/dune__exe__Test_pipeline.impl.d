test/test_pipeline.ml: Alcotest Array Difftest Float Fuzzyflow Interp List Pipeline Sdfg Transforms Workloads
