test/test_flownet.mli:
