test/test_min_cut.mli:
