test/test_fuzzer.ml: Alcotest Cutout Fuzzer Fuzzyflow List Sdfg Transforms Workloads
