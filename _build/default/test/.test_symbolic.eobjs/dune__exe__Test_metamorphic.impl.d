test/test_metamorphic.ml: Alcotest Array Float Format Frontend Fuzzyflow Graph Interp List Printf QCheck QCheck_alcotest Scanf Sdfg Serialize String Symbolic Transforms Validate
