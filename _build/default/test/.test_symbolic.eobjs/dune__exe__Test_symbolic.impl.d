test/test_symbolic.ml: Alcotest Cond Expr List QCheck QCheck_alcotest Subset Symbolic
