test/test_localize.ml: Alcotest Array Cutout Difftest Frontend Fuzzyflow List Localize Sdfg Transforms Workloads
