test/test_cutout.mli:
