test/test_min_cut.ml: Alcotest Array Cutout Float Flownet Fuzzyflow Interp List Min_cut Sdfg Transforms Workloads
