test/test_transforms.ml: Alcotest Array Builder Dtype Float Format Frontend Fuzzyflow Graph Interp List Node Sdfg State String Symbolic Transforms Validate Workloads
