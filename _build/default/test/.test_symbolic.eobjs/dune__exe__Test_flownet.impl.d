test/test_flownet.ml: Alcotest Array Cap Flownet Format List Maxflow QCheck QCheck_alcotest
