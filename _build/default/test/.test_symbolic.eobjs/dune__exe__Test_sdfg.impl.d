test/test_sdfg.ml: Alcotest Builder Diff Dot Dtype Graph List Memlet Node Propagate Sdfg State String Symbolic Tcode Transforms Validate Workloads
