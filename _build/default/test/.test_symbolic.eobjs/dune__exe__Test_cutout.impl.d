test/test_cutout.ml: Alcotest Array Cutout Diff Frontend Fuzzyflow Graph Interp List Node Sdfg State Symbolic Transforms Validate Workloads
