test/test_builder.ml: Alcotest Array Builder Dtype Graph Interp List Node Printf Sdfg State Symbolic Transforms Validate Workloads
