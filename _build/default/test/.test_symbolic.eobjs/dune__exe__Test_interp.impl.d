test/test_interp.ml: Alcotest Array Builder Dtype Float Graph Interp List Memlet Node Sdfg State Symbolic Workloads
