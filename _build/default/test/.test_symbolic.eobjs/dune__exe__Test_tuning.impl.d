test/test_tuning.ml: Alcotest Difftest Fuzzyflow List Sdfg Transforms Tuning Workloads
