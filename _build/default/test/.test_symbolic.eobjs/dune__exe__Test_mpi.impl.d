test/test_mpi.ml: Alcotest Array Mpi_sim
