test/test_workloads.ml: Alcotest Array Float Format Graph Interp List Printf Sdfg Symbolic Validate Workloads
