test/test_frontend.ml: Alcotest Array Float Frontend Fuzzyflow Interp List Transforms Workloads
