test/test_difftest.ml: Alcotest Array Constraints Cutout Difftest Filename Format Fuzzyflow Hashtbl Interp List Sampler Sdfg String Symbolic Sys Testcase Transforms Workloads
