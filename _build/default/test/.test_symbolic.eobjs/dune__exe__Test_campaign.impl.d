test/test_campaign.ml: Alcotest Campaign Difftest Fuzzyflow List Requirements String Transforms Workloads
