test/test_serialize.ml: Alcotest Array Dtype Filename Float Graph Interp List Sdfg Serialize State Symbolic Sys Transforms Validate Workloads
