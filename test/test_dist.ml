(* The distributed campaign service: wire-protocol integrity, the supervisor's
   typed failure taxonomy (each failure forced by a hostile fake worker), and
   the chaos gates — whatever the fleet does, verdicts match the serial run. *)

open Fuzzyflow

let config =
  { Difftest.default_config with trials = 5; max_size = 8; concretization = [ ("N", 8) ] }

let good () = Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.Correct
let bad () = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible

let programs () =
  [ ("scale", Workloads.Npbench.scale ()); ("axpy", Workloads.Npbench.axpy ()) ]

let verdict_key (o : Campaign.outcome) =
  (o.o_program, o.o_xform, Transforms.Xform.site_slug o.o_site, o.o_verdict, o.o_seed)

let keys (c : Campaign.t) = List.map verdict_key c.Campaign.outcomes

(* quick-failing supervision so taxonomy tests stay fast *)
let fast_policy =
  {
    Engine.Supervisor.connect_timeout_s = 1.0;
    heartbeat_s = 0.4;
    hang_grace_s = 0.3;
    max_failures = 2;
    backoff_base_s = 0.02;
    backoff_max_s = 0.1;
  }

(* ---------------- wire protocol ---------------- *)

let pipe_pair () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0

let raw_write fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let wire_tests =
  [
    Alcotest.test_case "messages round-trip through a socketpair" `Quick (fun () ->
        let a, b = pipe_pair () in
        let sub =
          {
            Engine.Wire.s_workloads = [ "scale"; "axpy" ];
            s_correct = true;
            s_trials = 7;
            s_seed = 99;
            s_max_size = 16;
            s_defines = [ ("N", 8) ];
            s_limit_per = Some 2;
            s_static_gate = false;
            s_certify_gate = true;
            s_batch = 1;
          }
        in
        Engine.Wire.write_message a (Engine.Wire.Submit sub);
        (match Engine.Wire.read_message ~timeout_s:5. b with
        | Engine.Wire.Submit sub' -> Alcotest.(check bool) "submission" true (sub' = sub)
        | _ -> Alcotest.fail "expected Submit");
        Engine.Wire.write_message b (Engine.Wire.Pong 42);
        (match Engine.Wire.read_message ~timeout_s:5. a with
        | Engine.Wire.Pong 42 -> ()
        | _ -> Alcotest.fail "expected Pong 42");
        Unix.close a;
        Unix.close b);
    Alcotest.test_case "a flipped payload byte is a Protocol_error, not a message" `Quick
      (fun () ->
        let a, b = pipe_pair () in
        let frame = Bytes.of_string (Engine.Wire.encode (Engine.Wire.Ping 7)) in
        let off = Engine.Wire.header_len in
        Bytes.set frame off (Char.chr (Char.code (Bytes.get frame off) lxor 0x10));
        raw_write a (Bytes.to_string frame);
        (match Engine.Wire.read_message ~timeout_s:5. b with
        | _ -> Alcotest.fail "corrupt frame decoded"
        | exception Engine.Wire.Protocol_error d ->
            Alcotest.(check bool) "checksum named" true
              (String.length d > 0 && String.sub d 0 8 = "checksum"));
        Unix.close a;
        Unix.close b);
    Alcotest.test_case "a forged protocol version is Bad_version before any decode" `Quick
      (fun () ->
        let a, b = pipe_pair () in
        raw_write a (Engine.Wire.encode ~proto:99 (Engine.Wire.Ping 1));
        (match Engine.Wire.read_message ~timeout_s:5. b with
        | _ -> Alcotest.fail "mismatched frame decoded"
        | exception Engine.Wire.Bad_version { ours; theirs } ->
            Alcotest.(check int) "ours" Engine.Wire.protocol_version ours;
            Alcotest.(check int) "theirs" 99 theirs);
        Unix.close a;
        Unix.close b);
    Alcotest.test_case "EOF mid-frame is Closed" `Quick (fun () ->
        let a, b = pipe_pair () in
        let frame = Engine.Wire.encode (Engine.Wire.Ping 1) in
        raw_write a (String.sub frame 0 (Engine.Wire.header_len + 1));
        Unix.close a;
        (match Engine.Wire.read_message ~timeout_s:5. b with
        | _ -> Alcotest.fail "truncated frame decoded"
        | exception Engine.Wire.Closed -> ());
        Unix.close b);
    Alcotest.test_case "endpoints parse and print" `Quick (fun () ->
        let ep = Engine.Supervisor.endpoint_of_string "10.0.0.5:7411" in
        Alcotest.(check string) "host" "10.0.0.5" ep.Engine.Supervisor.host;
        Alcotest.(check int) "port" 7411 ep.Engine.Supervisor.port;
        Alcotest.(check string) "default host" "127.0.0.1"
          (Engine.Supervisor.endpoint_of_string ":8000").Engine.Supervisor.host;
        (match Engine.Supervisor.endpoint_of_string "nonsense" with
        | _ -> Alcotest.fail "parsed a portless endpoint"
        | exception Invalid_argument _ -> ()));
    Alcotest.test_case "backoff is deterministic, positive and bounded" `Quick (fun () ->
        let ep = { Engine.Supervisor.host = "127.0.0.1"; port = 7411 } in
        let d n =
          Engine.Supervisor.backoff_delay ~policy:fast_policy ~ep ~failures:n ~seed:1234
        in
        Alcotest.(check (float 1e-12)) "deterministic" (d 3) (d 3);
        List.iter
          (fun n ->
            Alcotest.(check bool) "positive" true (d n > 0.);
            Alcotest.(check bool) "bounded" true
              (d n <= fast_policy.Engine.Supervisor.backoff_max_s *. 2.))
          [ 1; 2; 3; 8 ]);
  ]

(* ---------------- fake workers forcing each failure class ---------------- *)

(* Fork a server whose per-connection behaviour is [behave]; returns its pid
   and port. The child never returns into the test runner. *)
let fake_server behave =
  let sock, port = Engine.Supervisor.listen_on ~port:0 () in
  match Unix.fork () with
  | 0 ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (try
         while true do
           let client, _ = Unix.accept sock in
           (try behave client with _ -> ());
           try Unix.close client with Unix.Unix_error _ -> ()
         done
       with _ -> ());
      Unix._exit 0
  | pid ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (pid, port)

let stop_server pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let handshake client =
  match Engine.Wire.read_message ~timeout_s:5. client with
  | Engine.Wire.Hello _ ->
      Engine.Wire.write_message ~timeout_s:5. client
        (Engine.Wire.Hello_ack { proto = Engine.Wire.protocol_version })
  | _ -> ()

(* an ephemeral port with nothing behind it: real ECONNREFUSED *)
let dead_port () =
  let sock, port = Engine.Supervisor.listen_on ~port:0 () in
  Unix.close sock;
  port

(* Run a small campaign against [port], collecting observed failure classes
   and the telemetry handle; returns (campaign, classes, degraded). *)
let run_against ?(deadline_s = 10.) port =
  let classes = ref [] in
  let events =
    {
      Engine.Supervisor.null_events with
      on_failure =
        (fun _ cls -> classes := Engine.Supervisor.failure_class_name cls :: !classes);
    }
  in
  let remote =
    Engine.Supervisor.executor ~policy:fast_policy ~events
      ~workers:[ { Engine.Supervisor.host = "127.0.0.1"; port } ]
      ()
  in
  let handle = ref None in
  let c =
    Engine.Worker.run_campaign
      ~options:
        {
          Engine.Worker.default_options with
          deadline_s;
          remote = Some remote;
          on_telemetry = Some (fun t -> handle := Some t);
        }
      ~config
      [ ("scale", Workloads.Npbench.scale ()) ]
      [ good () ]
  in
  let degraded =
    match !handle with Some t -> Engine.Telemetry.degraded t | None -> false
  in
  (c, List.sort_uniq compare !classes, degraded)

let reference () =
  Engine.Worker.run_campaign ~options:Engine.Worker.default_options ~config
    [ ("scale", Workloads.Npbench.scale ()) ]
    [ good () ]

let check_heals ~expect_class (c, classes, degraded) =
  Alcotest.(check bool) "verdicts match the local run" true (keys c = keys (reference ()));
  Alcotest.(check bool)
    (Printf.sprintf "observed %s (got: %s)" expect_class (String.concat "," classes))
    true (List.mem expect_class classes);
  Alcotest.(check bool) "degraded to local pool" true degraded

let taxonomy_tests =
  [
    Alcotest.test_case "dead endpoint: connect-refused, then local fallback" `Quick (fun () ->
        check_heals ~expect_class:"connect-refused" (run_against (dead_port ())));
    Alcotest.test_case "version-mismatched worker is rejected before payload decode" `Quick
      (fun () ->
        let pid, port =
          fake_server (fun client ->
              match Engine.Wire.read_message ~timeout_s:5. client with
              | Engine.Wire.Hello _ ->
                  raw_write client
                    (Engine.Wire.encode ~proto:99
                       (Engine.Wire.Hello_ack { proto = 99 }));
                  ignore (Unix.select [] [] [] 0.2)
              | _ -> ())
        in
        Fun.protect ~finally:(fun () -> stop_server pid) @@ fun () ->
        check_heals ~expect_class:"version-mismatch" (run_against port));
    Alcotest.test_case "disconnect mid-instance is typed, requeued, never a verdict" `Quick
      (fun () ->
        let pid, port =
          fake_server (fun client ->
              handshake client;
              (* accept the assignment, then die without answering *)
              ignore (Engine.Wire.read_message ~timeout_s:5. client))
        in
        Fun.protect ~finally:(fun () -> stop_server pid) @@ fun () ->
        check_heals ~expect_class:"disconnect" (run_against port));
    Alcotest.test_case "undecodable reply is a decode failure, not a verdict" `Quick (fun () ->
        let pid, port =
          fake_server (fun client ->
              handshake client;
              match Engine.Wire.read_message ~timeout_s:5. client with
              | Engine.Wire.Assign _ ->
                  (* valid header and checksum around garbage: only the
                     payload decode can catch this one *)
                  raw_write client (Engine.Wire.encode_frame "not a marshalled message");
                  ignore (Unix.select [] [] [] 0.2)
              | _ -> ())
        in
        Fun.protect ~finally:(fun () -> stop_server pid) @@ fun () ->
        check_heals ~expect_class:"decode-failure" (run_against port));
    Alcotest.test_case "a worker that hangs past the deadline is failed as a hang" `Quick
      (fun () ->
        let pid, port =
          fake_server (fun client ->
              handshake client;
              match Engine.Wire.read_message ~timeout_s:5. client with
              | Engine.Wire.Assign _ -> ignore (Unix.select [] [] [] 30.)
              | _ -> ())
        in
        Fun.protect ~finally:(fun () -> stop_server pid) @@ fun () ->
        check_heals ~expect_class:"hang" (run_against ~deadline_s:0.7 port));
    Alcotest.test_case "worker refusing an assignment: campaign still completes" `Quick
      (fun () ->
        let pid, port =
          fake_server (fun client ->
              handshake client;
              let rec serve () =
                match Engine.Wire.read_message ~timeout_s:5. client with
                | Engine.Wire.Assign { Engine.Wire.a_idx; _ } ->
                    Engine.Wire.write_message ~timeout_s:5. client
                      (Engine.Wire.Refused { r_idx = a_idx; r_detail = "not today" });
                    serve ()
                | _ -> ()
              in
              serve ())
        in
        Fun.protect ~finally:(fun () -> stop_server pid) @@ fun () ->
        check_heals ~expect_class:"decode-failure" (run_against port));
  ]

(* ---------------- real workers: happy path and chaos ---------------- *)

let spawn_worker xforms =
  let sock, port = Engine.Supervisor.listen_on ~port:0 () in
  match Unix.fork () with
  | 0 ->
      (try Engine.Supervisor.serve_worker ~catalog:xforms sock with _ -> ());
      Unix._exit 0
  | pid ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (pid, port)

let dist_tests =
  [
    Alcotest.test_case "two live workers produce the serial verdicts, no degradation" `Quick
      (fun () ->
        let xforms = [ good (); bad () ] in
        let p1, port1 = spawn_worker xforms in
        let p2, port2 = spawn_worker xforms in
        Fun.protect
          ~finally:(fun () ->
            stop_server p1;
            stop_server p2)
        @@ fun () ->
        let handle = ref None in
        let remote =
          Engine.Supervisor.executor ~policy:fast_policy
            ~workers:
              [
                { Engine.Supervisor.host = "127.0.0.1"; port = port1 };
                { Engine.Supervisor.host = "127.0.0.1"; port = port2 };
              ]
            ()
        in
        let c =
          Engine.Worker.run_campaign
            ~options:
              {
                Engine.Worker.default_options with
                remote = Some remote;
                on_telemetry = Some (fun t -> handle := Some t);
              }
            ~config (programs ()) xforms
        in
        let serial = Campaign.run ~config (programs ()) xforms in
        Alcotest.(check bool) "remote = serial" true (keys c = keys serial);
        Alcotest.(check int) "failures found" 2 c.Campaign.total_failed;
        (match !handle with
        | Some t -> Alcotest.(check bool) "not degraded" false (Engine.Telemetry.degraded t)
        | None -> Alcotest.fail "telemetry handle never arrived"));
    Alcotest.test_case "proxy-corrupted reply heals by retry on the same worker" `Quick
      (fun () ->
        let xforms = [ good () ] in
        let wpid, wport = spawn_worker xforms in
        let proxy =
          Faultlab.Netfault.start
            ~policy:
              {
                Faultlab.Netfault.kind = Faultlab.Netfault.Corrupt;
                victim_conn = 0;
                victim_chunk = 1;
                persistent = false;
                seed = 7;
              }
            ~target_port:wport ()
        in
        Fun.protect
          ~finally:(fun () ->
            Faultlab.Netfault.stop proxy;
            stop_server wpid)
        @@ fun () ->
        let c, classes, degraded = run_against proxy.Faultlab.Netfault.port in
        Alcotest.(check bool) "verdicts match" true (keys c = keys (reference ()));
        Alcotest.(check bool)
          (Printf.sprintf "decode failure observed (got: %s)" (String.concat "," classes))
          true
          (List.mem "decode-failure" classes);
        Alcotest.(check bool) "healed remotely, no degradation" false degraded);
    Alcotest.test_case "worker SIGKILLed mid-campaign: byte-identical journal, degraded" `Quick
      (fun () ->
        let xforms = [ good (); bad () ] in
        let wpid, wport = spawn_worker xforms in
        Fun.protect ~finally:(fun () -> stop_server wpid) @@ fun () ->
        let mk_journal () = Filename.temp_file "ffdistkill" ".jsonl" in
        let ref_path = mk_journal () and chaos_path = mk_journal () in
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ ref_path; chaos_path ])
        @@ fun () ->
        ignore
          (Engine.Worker.run_campaign
             ~options:{ Engine.Worker.default_options with journal_path = Some ref_path }
             ~config (programs ()) xforms);
        let is_instance l =
          String.length l >= 18 && String.sub l 0 18 = {|{"type":"instance"|}
        in
        let seen = ref 0 in
        let sink l =
          if is_instance l then begin
            incr seen;
            if !seen = 1 then try Unix.kill wpid Sys.sigkill with Unix.Unix_error _ -> ()
          end
        in
        let handle = ref None in
        let remote =
          Engine.Supervisor.executor ~policy:fast_policy
            ~workers:[ { Engine.Supervisor.host = "127.0.0.1"; port = wport } ]
            ()
        in
        ignore
          (Engine.Worker.run_campaign
             ~options:
               {
                 Engine.Worker.default_options with
                 journal_path = Some chaos_path;
                 remote = Some remote;
                 journal_sink = Some sink;
                 on_telemetry = Some (fun t -> handle := Some t);
               }
             ~config (programs ()) xforms);
        let lines path =
          let ic = open_in path in
          let ls = ref [] in
          (try
             while true do
               let l = input_line ic in
               if is_instance l then ls := l :: !ls
             done
           with End_of_file -> ());
          close_in ic;
          List.rev !ls
        in
        Alcotest.(check bool) "instance lines byte-identical" true
          (lines ref_path = lines chaos_path);
        Alcotest.(check bool) "instance lines nonempty" true (lines ref_path <> []);
        match !handle with
        | Some t ->
            Alcotest.(check bool) "degraded after losing the only worker" true
              (Engine.Telemetry.degraded t)
        | None -> Alcotest.fail "telemetry handle never arrived");
  ]

(* ---------------- torn-result robustness on the worker side -------------- *)

let assignment_tests =
  [
    Alcotest.test_case "an assignment naming an unknown transform is Refused" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = good () in
        let site = List.hd (x.Transforms.Xform.find g) in
        let a =
          {
            Engine.Wire.a_idx = 3;
            a_program = "scale";
            a_graph = Marshal.to_string g [];
            a_xform = "NoSuchTransform";
            a_site = site;
            a_config = config;
            a_static_gate = false;
            a_certify_gate = false;
            a_deadline_s = 10.;
          }
        in
        match Engine.Supervisor.run_assignment ~catalog:[ x ] a with
        | Engine.Wire.Refused { r_idx = 3; r_detail } ->
            Alcotest.(check bool) "detail names the transform" true
              (String.length r_detail > 0)
        | _ -> Alcotest.fail "expected Refused");
    Alcotest.test_case "a well-formed assignment executes like the local pool" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = good () in
        let site = List.hd (x.Transforms.Xform.find g) in
        let seed = Campaign.instance_seed ~global:config.Difftest.seed "whatever" in
        let iconfig = { config with Difftest.seed } in
        let a =
          {
            Engine.Wire.a_idx = 0;
            a_program = "scale";
            a_graph = Marshal.to_string g [];
            a_xform = x.Transforms.Xform.name;
            a_site = site;
            a_config = iconfig;
            a_static_gate = false;
            a_certify_gate = false;
            a_deadline_s = 10.;
          }
        in
        match Engine.Supervisor.run_assignment ~catalog:[ x ] a with
        | Engine.Wire.Result { r_idx = 0; r_status = Campaign.Completed; r_payload = Some r; _ }
          ->
            let local = Campaign.run_instance ~config:iconfig ~program:("scale", g) x site in
            (* everything verdict-bearing must agree; only wall-clock fields
               ([report.elapsed_s]) may differ between the two executions *)
            let key (r : Campaign.instance_result) =
              ( r.Campaign.program,
                r.Campaign.xform_name,
                Transforms.Xform.site_slug r.Campaign.site,
                Option.map (fun (rep : Difftest.report) -> rep.Difftest.verdict) r.Campaign.report
              )
            in
            Alcotest.(check bool) "same verdict-bearing result" true (key r = key local)
        | _ -> Alcotest.fail "expected a completed Result");
  ]

let () =
  Alcotest.run "dist"
    [
      ("wire", wire_tests);
      ("taxonomy", taxonomy_tests);
      ("dist", dist_tests);
      ("assignment", assignment_tests);
    ]
