(* Tests for the SDFG IR: tasklet code, memlets, state graphs, scopes,
   validation, structural diff and memlet propagation. *)

open Sdfg

let se = Symbolic.Expr.sym
let ienv = Symbolic.Expr.Env.of_list [ ("N", 8) ]

(* ---------------- tasklet code ---------------- *)

let tcode_tests =
  [
    Alcotest.test_case "parse refs and outputs" `Quick (fun () ->
        let c = Tcode.of_string "out = a * b + 1.5; aux = select(a < b, a, b)" in
        Alcotest.(check (list string)) "refs" [ "a"; "b" ] (Tcode.refs c);
        Alcotest.(check (list string)) "outs" [ "out"; "aux" ] (Tcode.outputs c);
        Alcotest.(check int) "selects" 1 (Tcode.num_selects c));
    Alcotest.test_case "parse functions" `Quick (fun () ->
        let c = Tcode.of_string "o = sqrt(abs(x)) + exp(y) - min(x, y) + x ** 2.0" in
        Alcotest.(check (list string)) "refs" [ "x"; "y" ] (Tcode.refs c));
    Alcotest.test_case "parse comparison in select" `Quick (fun () ->
        let c = Tcode.of_string "o = select(x >= 0.0, x, -x)" in
        Alcotest.(check int) "selects" 1 (Tcode.num_selects c));
    Alcotest.test_case "rename ref" `Quick (fun () ->
        let c = Tcode.rename_ref ~from:"a" ~into:"z" (Tcode.of_string "o = a + a * b") in
        Alcotest.(check (list string)) "refs" [ "b"; "z" ] (Tcode.refs c));
    Alcotest.test_case "rename output" `Quick (fun () ->
        let c = Tcode.rename_output ~from:"o" ~into:"w" (Tcode.of_string "o = a") in
        Alcotest.(check (list string)) "outs" [ "w" ] (Tcode.outputs c));
    Alcotest.test_case "subst const" `Quick (fun () ->
        let c = Tcode.subst_const "i" 3. (Tcode.of_string "o = i * x") in
        Alcotest.(check (list string)) "refs" [ "x" ] (Tcode.refs c));
    Alcotest.test_case "inline composes" `Quick (fun () ->
        let producer = Tcode.of_string "t = x * 2.0" in
        let consumer = Tcode.of_string "o = t + 1.0" in
        let c = Tcode.inline ~producer ~out:"t" ~consumer ~conn:"t" in
        Alcotest.(check (list string)) "only x free" [ "x" ]
          (List.filter (fun r -> not (List.mem r (Tcode.outputs c))) (Tcode.refs c));
        Alcotest.(check int) "two assignments" 2 (List.length (Tcode.outputs c)));
    Alcotest.test_case "print/parse roundtrip" `Quick (fun () ->
        let c = Tcode.of_string "o = (a + b) * max(a, 2.0); p = select(a != b, a, b)" in
        let c' = Tcode.of_string (Tcode.to_string c) in
        Alcotest.(check (list string)) "refs stable" (Tcode.refs c) (Tcode.refs c'));
    Alcotest.test_case "bad code raises" `Quick (fun () ->
        match Tcode.of_string "o = frobnicate(x)" with
        | exception Symbolic.Expr.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
  ]

(* ---------------- memlets ---------------- *)

let memlet_tests =
  [
    Alcotest.test_case "volume" `Quick (fun () ->
        let m = Memlet.simple "A" "0:N-1, 3" in
        Alcotest.(check int) "vol" 8 (Symbolic.Expr.eval ienv (Memlet.volume m)));
    Alcotest.test_case "wcr ops" `Quick (fun () ->
        Alcotest.(check (float 0.)) "sum id" 0. (Memlet.wcr_identity Memlet.Wcr_sum);
        Alcotest.(check (float 0.)) "mul id" 1. (Memlet.wcr_identity Memlet.Wcr_mul);
        Alcotest.(check (float 0.)) "apply sum" 5. (Memlet.apply_wcr Memlet.Wcr_sum 2. 3.);
        Alcotest.(check (float 0.)) "apply max" 3. (Memlet.apply_wcr Memlet.Wcr_max 2. 3.);
        Alcotest.(check (float 0.)) "apply min" 2. (Memlet.apply_wcr Memlet.Wcr_min 2. 3.));
    Alcotest.test_case "rename data" `Quick (fun () ->
        let m = Memlet.rename_data ~from:"A" ~into:"B" (Memlet.simple "A" "i") in
        Alcotest.(check string) "renamed" "B" m.data);
  ]

(* ---------------- state graphs & scopes ---------------- *)

let mk_simple_state () =
  (* x -> tasklet -> y *)
  let st = State.create "s" in
  let x = State.add_node st (Node.Access "x") in
  let t = State.add_node st (Node.tasklet "double" "o = v * 2.0") in
  let y = State.add_node st (Node.Access "y") in
  ignore (State.add_edge st ~dst_conn:"v" ~memlet:(Memlet.simple "x" "0") x t);
  ignore (State.add_edge st ~src_conn:"o" ~memlet:(Memlet.simple "y" "0") t y);
  (st, x, t, y)

let mk_map_state () =
  let g = Graph.create "g" in
  Graph.add_symbol g "N";
  Graph.add_array g "x" Dtype.F64 [ se "N" ];
  Graph.add_array g "y" Dtype.F64 [ se "N" ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  let m =
    Builder.Build.mapped_tasklet g st ~label:"scalemap"
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("v", Memlet.simple "x" "i") ]
      ~code:"o = v * 2.0"
      ~outputs:[ ("o", Memlet.simple "y" "i") ]
      ()
  in
  (g, sid, st, m)

let index_of x l =
  let rec go i = function
    | [] -> Alcotest.fail "element not found"
    | y :: r -> if x = y then i else go (i + 1) r
  in
  go 0 l

let state_tests =
  [
    Alcotest.test_case "add and query nodes/edges" `Quick (fun () ->
        let st, x, t, y = mk_simple_state () in
        Alcotest.(check int) "nodes" 3 (State.num_nodes st);
        Alcotest.(check int) "edges" 2 (State.num_edges st);
        Alcotest.(check (list int)) "succ x" [ t ] (State.successors st x);
        Alcotest.(check (list int)) "pred y" [ t ] (State.predecessors st y);
        Alcotest.(check (list int)) "sources" [ x ] (State.source_nodes st);
        Alcotest.(check (list int)) "sinks" [ y ] (State.sink_nodes st));
    Alcotest.test_case "remove node removes incident edges" `Quick (fun () ->
        let st, _, t, _ = mk_simple_state () in
        State.remove_node st t;
        Alcotest.(check int) "edges gone" 0 (State.num_edges st));
    Alcotest.test_case "topological respects edges" `Quick (fun () ->
        let st, x, t, y = mk_simple_state () in
        let order = State.topological st in
        Alcotest.(check bool) "x before t" true (index_of x order < index_of t order);
        Alcotest.(check bool) "t before y" true (index_of t order < index_of y order));
    Alcotest.test_case "topological rejects cycles" `Quick (fun () ->
        let st = State.create "c" in
        let a = State.add_node st (Node.Access "a") in
        let b = State.add_node st (Node.Access "b") in
        ignore (State.add_edge st a b);
        ignore (State.add_edge st b a);
        match State.topological st with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected cycle failure");
    Alcotest.test_case "scope structure of a mapped tasklet" `Quick (fun () ->
        let _, _, st, m = mk_map_state () in
        Alcotest.(check int) "exit found" m.exit (State.exit_of st m.entry);
        let inside = State.scope_nodes st m.entry in
        Alcotest.(check bool) "tasklet in scope" true (List.mem m.tasklet inside);
        Alcotest.(check (option int)) "tasklet scope" (Some m.entry) (State.scope_of st m.tasklet);
        Alcotest.(check (option int)) "entry at top" None (State.scope_of st m.entry));
    Alcotest.test_case "copy is deep w.r.t. structure" `Quick (fun () ->
        let st, _, t, _ = mk_simple_state () in
        let st' = State.copy st in
        State.remove_node st' t;
        Alcotest.(check int) "original intact" 3 (State.num_nodes st));
    Alcotest.test_case "access_nodes and referenced_containers" `Quick (fun () ->
        let st, _, _, _ = mk_simple_state () in
        Alcotest.(check int) "x nodes" 1 (List.length (State.access_nodes st "x"));
        Alcotest.(check (list string)) "containers" [ "x"; "y" ] (State.referenced_containers st));
    Alcotest.test_case "add_node_with_id preserves ids" `Quick (fun () ->
        let st = State.create "ids" in
        State.add_node_with_id st 7 (Node.Access "a");
        Alcotest.(check bool) "has 7" true (State.has_node st 7);
        let fresh = State.add_node st (Node.Access "b") in
        Alcotest.(check bool) "fresh above" true (fresh > 7));
  ]

(* ---------------- graph-level ---------------- *)

let graph_tests =
  [
    Alcotest.test_case "containers and symbols" `Quick (fun () ->
        let g = Graph.create "t" in
        Graph.add_symbol g "N";
        Graph.add_array g "A" Dtype.F64 [ se "N" ];
        Graph.add_scalar g ~transient:true "s" Dtype.I32;
        Alcotest.(check bool) "has A" true (Graph.has_container g "A");
        Alcotest.(check (list string)) "external" [ "A" ] (Graph.external_containers g);
        Graph.set_transient g "A" true;
        Alcotest.(check (list string)) "none external" [] (Graph.external_containers g));
    Alcotest.test_case "state machine edges" `Quick (fun () ->
        let g = Graph.create "t" in
        let a = Graph.add_state g "a" in
        let b = Graph.add_state_after g a "b" in
        let c = Graph.add_state_after g b "c" in
        Alcotest.(check (list int)) "bfs" [ a; b; c ] (Graph.states_bfs g);
        Alcotest.(check (list int)) "reach a" [ b; c ] (Graph.reachable_states g a);
        Alcotest.(check (list int)) "coreach c" [ b; a ] (Graph.coreachable_states g c));
    Alcotest.test_case "loop reachability includes cycle" `Quick (fun () ->
        let g = Graph.create "t" in
        let s0 = Graph.add_state g "s0" in
        let guard, body, after =
          Builder.Build.for_loop g ~entry_from:s0 ~var:"i" ~init:Symbolic.Expr.zero
            ~cond:(Symbolic.Cond.Lt (se "i", se "N"))
            ~update:(Symbolic.Expr.add (se "i") Symbolic.Expr.one)
            ~body_label:"body" ~after_label:"after"
        in
        let reach = Graph.reachable_states g body in
        Alcotest.(check bool) "guard reachable" true (List.mem guard reach);
        Alcotest.(check bool) "body re-reachable" true (List.mem body reach);
        Alcotest.(check bool) "after reachable" true (List.mem after reach));
    Alcotest.test_case "free symbols exclude bound ones" `Quick (fun () ->
        let g, _, _, _ = mk_map_state () in
        Alcotest.(check (list string)) "only N" [ "N" ] (Graph.all_free_syms g));
    Alcotest.test_case "graph copy is independent" `Quick (fun () ->
        let g, sid, _, m = mk_map_state () in
        let g' = Graph.copy g in
        State.remove_node (Graph.state g' sid) m.tasklet;
        Alcotest.(check bool) "original intact" true
          (State.has_node (Graph.state g sid) m.tasklet));
  ]

(* ---------------- validation ---------------- *)

let validate_tests =
  [
    Alcotest.test_case "valid graph passes" `Quick (fun () ->
        let g, _, _, _ = mk_map_state () in
        Alcotest.(check int) "no errors" 0 (List.length (Validate.check g)));
    Alcotest.test_case "undeclared container flagged" `Quick (fun () ->
        let g = Graph.create "bad" in
        let sid = Graph.add_state g "s" in
        let st = Graph.state g sid in
        ignore (State.add_node st (Node.Access "ghost"));
        Alcotest.(check bool) "errors" true (Validate.check g <> []));
    Alcotest.test_case "dimension mismatch flagged" `Quick (fun () ->
        let g = Graph.create "bad" in
        Graph.add_array g "A" Dtype.F64 [ se "N"; se "N" ];
        Graph.add_array g "y" Dtype.F64 [ se "N" ];
        let sid = Graph.add_state g "s" in
        let st = Graph.state g sid in
        let a = State.add_node st (Node.Access "A") in
        let t = State.add_node st (Node.tasklet "t" "o = v") in
        let y = State.add_node st (Node.Access "y") in
        ignore (State.add_edge st ~dst_conn:"v" ~memlet:(Memlet.simple "A" "0") a t);
        ignore (State.add_edge st ~src_conn:"o" ~memlet:(Memlet.simple "y" "0") t y);
        Alcotest.(check bool) "errors" true (Validate.check g <> []));
    Alcotest.test_case "unmatched map entry flagged" `Quick (fun () ->
        let g, sid, st, m = mk_map_state () in
        ignore sid;
        State.remove_node st m.exit;
        Alcotest.(check bool) "errors" true (Validate.check g <> []));
    Alcotest.test_case "tasklet bad out connector flagged" `Quick (fun () ->
        let g = Graph.create "bad" in
        Graph.add_array g "y" Dtype.F64 [ se "N" ];
        let sid = Graph.add_state g "s" in
        let st = Graph.state g sid in
        let t = State.add_node st (Node.tasklet "t" "o = 1.0") in
        let y = State.add_node st (Node.Access "y") in
        ignore (State.add_edge st ~src_conn:"nonexistent" ~memlet:(Memlet.simple "y" "0") t y);
        Alcotest.(check bool) "errors" true (Validate.check g <> []));
    Alcotest.test_case "gpu scope with host container flagged" `Quick (fun () ->
        let g = Graph.create "bad" in
        Graph.add_symbol g "N";
        Graph.add_array g "x" Dtype.F64 [ se "N" ];
        Graph.add_array g "y" Dtype.F64 [ se "N" ];
        let sid = Graph.add_state g "s" in
        let st = Graph.state g sid in
        ignore
          (Builder.Build.mapped_tasklet g st ~label:"k" ~schedule:Node.Gpu_device
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", Memlet.simple "x" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", Memlet.simple "y" "i") ]
             ());
        Alcotest.(check bool) "errors" true (Validate.check g <> []));
    Alcotest.test_case "library missing input flagged" `Quick (fun () ->
        let g = Graph.create "bad" in
        Graph.add_array g "C" Dtype.F64 [ se "N"; se "N" ];
        let sid = Graph.add_state g "s" in
        let st = Graph.state g sid in
        let l = State.add_node st (Node.Library { label = "mm"; kind = Node.Mat_mul }) in
        let c = State.add_node st (Node.Access "C") in
        ignore (State.add_edge st ~src_conn:"C" ~memlet:(Memlet.simple "C" "0:N-1, 0:N-1") l c);
        Alcotest.(check bool) "errors" true (Validate.check g <> []));
    Alcotest.test_case "all independent failures reported, sorted, deduped" `Quick (fun () ->
        (* three unrelated defects in one graph: an undeclared container, an
           unmatched map entry, and a rank-mismatched memlet — check must
           return every one of them, not stop at the first *)
        let g = Graph.create "multi" in
        Graph.add_symbol g "N";
        Graph.add_array g "A" Dtype.F64 [ se "N"; se "N" ];
        Graph.add_array g "y" Dtype.F64 [ se "N" ];
        let sid = Graph.add_state g "s" in
        let st = Graph.state g sid in
        ignore (State.add_node st (Node.Access "ghost"));
        ignore
          (State.add_node st
             (Node.Map_entry
                { label = "orphan"; params = [ "i" ]; ranges = []; schedule = Node.Sequential }));
        let a = State.add_node st (Node.Access "A") in
        let t = State.add_node st (Node.tasklet "t" "o = v") in
        let y = State.add_node st (Node.Access "y") in
        ignore (State.add_edge st ~dst_conn:"v" ~memlet:(Memlet.simple "A" "0") a t);
        ignore (State.add_edge st ~src_conn:"o" ~memlet:(Memlet.simple "y" "0") t y);
        let errors = Validate.check g in
        Alcotest.(check bool) "at least three failures" true (List.length errors >= 3);
        let resorted = List.sort_uniq Validate.compare_error errors in
        Alcotest.(check bool) "already sorted and deduped" true (errors = resorted));
  ]

(* ---------------- structural diff ---------------- *)

let diff_tests =
  [
    Alcotest.test_case "identical graphs diff empty" `Quick (fun () ->
        let g, _, _, _ = mk_map_state () in
        let d = Diff.compute ~original:g ~transformed:(Graph.copy g) in
        Alcotest.(check bool) "empty" true (Diff.is_empty d));
    Alcotest.test_case "payload change detected" `Quick (fun () ->
        let g, sid, _, m = mk_map_state () in
        let g' = Graph.copy g in
        State.replace_node (Graph.state g' sid) m.tasklet (Node.tasklet "double" "o = v * 3.0");
        let d = Diff.compute ~original:g ~transformed:g' in
        Alcotest.(check bool) "tasklet marked" true (List.mem (sid, m.tasklet) d.nodes));
    Alcotest.test_case "removed node detected" `Quick (fun () ->
        let g, sid, _, m = mk_map_state () in
        let g' = Graph.copy g in
        State.remove_node (Graph.state g' sid) m.tasklet;
        let d = Diff.compute ~original:g ~transformed:g' in
        Alcotest.(check bool) "tasklet marked" true (List.mem (sid, m.tasklet) d.nodes));
    Alcotest.test_case "added node marks neighbours" `Quick (fun () ->
        let g, sid, _, m = mk_map_state () in
        let g' = Graph.copy g in
        let st' = Graph.state g' sid in
        let extra = State.add_node st' (Node.tasklet "extra" "o = 1.0") in
        ignore
          (State.add_edge st' ~src_conn:"o" ~memlet:(Memlet.simple "y" "0") extra
             (List.assoc "y" m.out_access));
        let d = Diff.compute ~original:g ~transformed:g' in
        Alcotest.(check bool) "neighbour marked" true
          (List.mem (sid, List.assoc "y" m.out_access) d.nodes));
    Alcotest.test_case "interstate change marks states" `Quick (fun () ->
        let g = Graph.create "t" in
        let a = Graph.add_state g "a" in
        let b = Graph.add_state_after g a "b" in
        let g' = Graph.copy g in
        List.iter
          (fun (e : Graph.istate_edge) -> Graph.remove_istate_edge g' e.ie_id)
          (Graph.istate_edges g');
        ignore (Graph.add_istate_edge g' ~assigns:[ ("k", Symbolic.Expr.zero) ] a b);
        let d = Diff.compute ~original:g ~transformed:g' in
        Alcotest.(check bool) "states marked" true (List.mem a d.states && List.mem b d.states));
    Alcotest.test_case "black-box diff of a real transformation seeds a cutout" `Quick (fun () ->
        let g, sid, entry = Workloads.Chain.build_with_site () in
        let x = Transforms.Map_tiling.make Transforms.Map_tiling.Correct in
        let g' = Graph.copy g in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:"t" in
        ignore (x.apply g' site);
        let d = Diff.compute ~original:g ~transformed:g' in
        Alcotest.(check bool) "entry marked" true (List.mem (sid, entry) d.nodes));
  ]

(* ---------------- propagation ---------------- *)

let propagate_tests =
  [
    Alcotest.test_case "param widened to range bbox" `Quick (fun () ->
        let sub = Symbolic.Subset.of_string "i, 0:N-1" in
        let out =
          Propagate.through_map ~params:[ "i" ]
            ~ranges:
              [ Symbolic.Subset.dim Symbolic.Expr.zero (Symbolic.Expr.sub (se "N") Symbolic.Expr.one) ]
            sub
        in
        Alcotest.(check int) "vol" 64 (Symbolic.Subset.volume_eval ienv out));
    Alcotest.test_case "offset expressions widen conservatively" `Quick (fun () ->
        let sub = Symbolic.Subset.of_string "i+1" in
        let out =
          Propagate.through_map ~params:[ "i" ]
            ~ranges:[ Symbolic.Subset.dim (Symbolic.Expr.int 0) (Symbolic.Expr.int 5) ]
            sub
        in
        let cs = Symbolic.Subset.concretize ienv out in
        Alcotest.(check bool) "covers 1..6" true
          (Symbolic.Subset.covers cs
             (Symbolic.Subset.concretize ienv (Symbolic.Subset.of_string "1:6"))));
    Alcotest.test_case "independent dims untouched" `Quick (fun () ->
        let sub = Symbolic.Subset.of_string "3, j" in
        let out =
          Propagate.through_map ~params:[ "j" ]
            ~ranges:[ Symbolic.Subset.dim (Symbolic.Expr.int 0) (Symbolic.Expr.int 7) ]
            sub
        in
        Alcotest.(check int) "vol" 8 (Symbolic.Subset.volume_eval ienv out));
  ]

(* ---------------- dot export ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let dot_tests =
  [
    Alcotest.test_case "dot export contains nodes and states" `Quick (fun () ->
        let g, _, _, _ = mk_map_state () in
        let dot = Dot.to_dot g in
        Alcotest.(check bool) "digraph" true (contains dot "digraph");
        Alcotest.(check bool) "has map" true (contains dot "scalemap"));
  ]

let () =
  Alcotest.run "sdfg"
    [
      ("tcode", tcode_tests);
      ("memlet", memlet_tests);
      ("state", state_tests);
      ("graph", graph_tests);
      ("validate", validate_tests);
      ("diff", diff_tests);
      ("propagate", propagate_tests);
      ("dot", dot_tests);
    ]
