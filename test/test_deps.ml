(* The exact affine dependence engine: the Fourier–Motzkin core against brute
   force, subset queries against exhaustive enumeration, witness replay, the
   stride-preserving tile widening it depends on, and corpus-wide
   exact-vs-sampled consistency. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
module L = Symbolic.Linsys

let n = Expr.sym "N"
let i = Expr.int

(* ---- Fourier–Motzkin core vs brute-force enumeration ---------------------- *)

(* Deterministic pseudo-random small systems over x, y, z in [-5, 5]. *)
let rand_system st =
  let vars = [ "x"; "y"; "z" ] in
  let rand_lin () =
    L.of_terms
      (Random.State.int st 11 - 5)
      (List.filter_map
         (fun v ->
           match Random.State.int st 4 - 2 with 0 -> None | c -> Some (v, c))
         vars)
  in
  List.init
    (1 + Random.State.int st 4)
    (fun _ ->
      let l = rand_lin () in
      if Random.State.int st 4 = 0 then L.Eq0 l else L.Ge0 l)

let brute_sat sys =
  let sols = ref [] in
  for x = -5 to 5 do
    for y = -5 to 5 do
      for z = -5 to 5 do
        let v = [ ("x", x); ("y", y); ("z", z) ] in
        if List.for_all (L.holds v) sys then sols := v :: !sols
      done
    done
  done;
  !sols

(* box the variables so the solver's search space matches the enumeration *)
let boxed sys =
  List.concat_map
    (fun v -> [ L.ge (L.var v) (L.const (-5)); L.le (L.var v) (L.const 5) ])
    [ "x"; "y"; "z" ]
  @ sys

let linsys_tests =
  [
    Alcotest.test_case "solve agrees with brute force on 200 random systems" `Quick (fun () ->
        let st = Random.State.make [| 4217 |] in
        for _ = 1 to 200 do
          let sys = rand_system st in
          let sols = brute_sat sys in
          match L.solve (boxed sys) with
          | L.Unsat ->
              Alcotest.(check int)
                ("unsat but brute force found "
                ^ String.concat " " (List.map L.cstr_to_string sys))
                0 (List.length sols)
          | L.Sat m ->
              Alcotest.(check bool) "model satisfies every constraint" true
                (List.for_all (L.holds m) (boxed sys))
          | L.Unknown -> () (* never wrong, merely undecided *)
        done);
    Alcotest.test_case "gcd pre-test proves parity conflicts unsat" `Quick (fun () ->
        (* 2x = 2k + 1 has no integer solution *)
        let sys =
          [ L.eq (L.var ~coeff:2 "x") (L.add (L.var ~coeff:2 "k") (L.const 1)) ]
        in
        Alcotest.(check bool) "unsat" true (L.solve sys = L.Unsat));
    Alcotest.test_case "of_expr alternatives evaluate to the expression" `Quick (fun () ->
        let exprs =
          [
            Expr.min_ (Expr.add n (i 3)) (i 7);
            Expr.max_ n (Expr.sub (i 10) n);
            Expr.add (Expr.mul (i 2) n) (i 1);
            Expr.div n (i 3);
            Expr.modulo n (i 4);
          ]
        in
        List.iter
          (fun e ->
            match L.of_expr ~fresh:(L.gensym ()) e with
            | None -> Alcotest.fail "expected an affine lowering"
            | Some alts ->
                for v = 0 to 12 do
                  let env = [ ("N", v) ] in
                  let expected = Expr.eval (Expr.Env.of_list env) e in
                  (* exactly the alternatives whose guards admit v must agree;
                     aux variables are existential, so solve for them *)
                  let admitted =
                    List.filter
                      (fun (a : L.alt) ->
                        let pinned = L.eq (L.var "N") (L.const v) in
                        match L.solve (pinned :: a.L.guards) with
                        | L.Sat m -> L.eval_lin (("N", v) :: m) a.L.term = expected
                        | _ -> false)
                      alts
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "some alternative covers N=%d" v)
                    true (admitted <> [])
                done)
          exprs);
  ]

(* ---- subset queries vs exhaustive enumeration ----------------------------- *)

let unbounded _ = (None, None)
let range lo hi step = { Subset.lo; hi; step }

let elements env sub =
  (* all concrete index tuples of [sub] under [env] *)
  let per_dim (r : Subset.range) =
    Subset.crange_elements (Subset.concretize_range env r)
  in
  List.fold_right
    (fun r acc ->
      List.concat_map (fun e -> List.map (fun rest -> e :: rest) acc) (per_dim r))
    sub [ [] ]

let deps_tests =
  [
    Alcotest.test_case "overlap agrees with enumeration on concrete boxes" `Quick (fun () ->
        (* write A[2i : 2i+1], access A[2i' : 2i'+1] over i, i' in [0:3]:
           distinct iterations never share an element *)
        let two_i p = Expr.mul (i 2) (Expr.sym p) in
        let write = [ range (two_i "i") (Expr.add (two_i "i") (i 1)) (i 1) ] in
        let access = [ range (two_i "i'") (Expr.add (two_i "i'") (i 1)) (i 1) ] in
        let params = [ ("i", { Subset.clo = 0; chi = 3; cstep = 1 }) ] in
        let v =
          Analysis.Deps.overlap ~env:Expr.Env.empty ~bounds:unbounded ~params
            ~primed:[ ("i", "i'") ] ~write ~access
        in
        Alcotest.(check bool) "disjoint" true (v = Analysis.Deps.Disjoint);
        (* overlapping stencil: A[i : i+1] vs A[i' : i'+1] *)
        let w2 = [ range (Expr.sym "i") (Expr.add (Expr.sym "i") (i 1)) (i 1) ] in
        let a2 = [ range (Expr.sym "i'") (Expr.add (Expr.sym "i'") (i 1)) (i 1) ] in
        match
          Analysis.Deps.overlap ~env:Expr.Env.empty ~bounds:unbounded ~params
            ~primed:[ ("i", "i'") ] ~write:w2 ~access:a2
        with
        | Analysis.Deps.Overlap model ->
            (* the witness must be two distinct in-domain iterations whose
               intervals genuinely intersect *)
            let at p = List.assoc p model in
            let x = at "i" and x' = at "i'" in
            Alcotest.(check bool) "distinct" true (x <> x');
            Alcotest.(check bool) "in domain" true (x >= 0 && x <= 3 && x' >= 0 && x' <= 3);
            Alcotest.(check bool) "intervals intersect" true (abs (x - x') <= 1)
        | _ -> Alcotest.fail "expected a verified overlap witness");
    Alcotest.test_case "empty iteration domain is disjoint" `Quick (fun () ->
        let w = [ range (Expr.sym "i") (Expr.sym "i") (i 1) ] in
        let a = [ range (Expr.sym "i'") (Expr.sym "i'") (i 1) ] in
        let params = [ ("i", { Subset.clo = 0; chi = -1; cstep = 1 }) ] in
        Alcotest.(check bool) "disjoint" true
          (Analysis.Deps.overlap ~env:Expr.Env.empty ~bounds:unbounded ~params
             ~primed:[ ("i", "i'") ] ~write:w ~access:a
          = Analysis.Deps.Disjoint));
    Alcotest.test_case "equal_sets: same grid under different spellings" `Quick (fun () ->
        let bounds s = if s = "N" then (Some 1, None) else (None, None) in
        (* {0,2,4,6,8} written two ways *)
        let a = [ range (i 0) (i 9) (i 2) ] in
        let b = [ range (i 0) (i 8) (i 2) ] in
        Alcotest.(check bool) "strided equal" true (Analysis.Deps.equal_sets ~bounds a b);
        (* dense vs strided differ *)
        let c = [ range (i 0) (i 9) (i 1) ] in
        Alcotest.(check bool) "dense vs strided" false
          (Analysis.Deps.equal_sets ~bounds a c);
        (* symbolic: [0:N-1] = [0:N-1] but not [1:N-1] *)
        let d = [ range (i 0) (Expr.sub n (i 1)) (i 1) ] in
        let d' = [ range (i 0) (Expr.sub n (i 1)) (i 1) ] in
        let e = [ range (i 1) (Expr.sub n (i 1)) (i 1) ] in
        Alcotest.(check bool) "symbolic equal" true (Analysis.Deps.equal_sets ~bounds d d');
        Alcotest.(check bool) "shifted differs" false (Analysis.Deps.equal_sets ~bounds d e));
    Alcotest.test_case "difference witness is pinned, in-set, and replayable" `Quick (fun () ->
        let bounds s = if s = "N" then (Some 1, None) else (None, None) in
        let dense = [ range (i 0) (Expr.sub n (i 1)) (i 1) ] in
        let strided = [ range (i 0) (Expr.sub n (i 1)) (i 2) ] in
        match
          Analysis.Deps.difference_witness ~bounds ~symbols:[ ("N", 8) ] dense strided
        with
        | None -> Alcotest.fail "expected a witness"
        | Some (va, el) ->
            Alcotest.(check (list (pair string int))) "pinned to the concretization"
              [ ("N", 8) ] va;
            let env = Expr.Env.of_list va in
            let in_set sub e = List.mem e (elements env sub) in
            Alcotest.(check bool) "element in the dense set" true (in_set dense el);
            Alcotest.(check bool) "element off the stride" false (in_set strided el));
    Alcotest.test_case "no witness when sets differ only at degenerate sizes" `Quick
      (fun () ->
        let bounds s = if s = "N" then (Some 1, None) else (None, None) in
        (* [min(1,N-2) : max(1,N-2)] vs [1 : N-2]: same set for N >= 3, garbage
           below — pinned at N=8 there is no difference to report *)
        let a =
          [
            range
              (Expr.min_ (i 1) (Expr.sub n (i 2)))
              (Expr.max_ (i 1) (Expr.sub n (i 2)))
              (i 1);
          ]
        in
        let b = [ range (i 1) (Expr.sub n (i 2)) (i 1) ] in
        Alcotest.(check bool) "no spurious witness" true
          (Analysis.Deps.difference_witness ~bounds ~symbols:[ ("N", 8) ] a b = None));
    Alcotest.test_case "uncovered is one-directional" `Quick (fun () ->
        let bounds s = if s = "N" then (Some 1, None) else (None, None) in
        let small = [ range (i 1) (Expr.sub n (i 2)) (i 1) ] in
        let big = [ range (i 0) (Expr.sub n (i 1)) (i 1) ] in
        (* a read strictly inside the write set is fine... *)
        Alcotest.(check bool) "subset read is covered" true
          (Analysis.Deps.uncovered ~bounds ~symbols:[ ("N", 8) ] small big = None);
        (* ...but a read poking outside it has a witness *)
        match Analysis.Deps.uncovered ~bounds ~symbols:[ ("N", 8) ] big small with
        | Some (va, [ e ]) ->
            Alcotest.(check (list (pair string int))) "pinned" [ ("N", 8) ] va;
            Alcotest.(check bool) "witness element outside the write set" true
              (e = 0 || e = 7)
        | _ -> Alcotest.fail "expected a one-element witness");
  ]

(* ---- the stride-preserving widenings the refutations rest on -------------- *)

let propagate_tests =
  [
    Alcotest.test_case "bare-parameter index image keeps the map stride" `Quick (fun () ->
        let prange = range (i 0) (Expr.sub n (i 1)) (i 2) in
        let r = Sdfg.Propagate.widen_range ~param:"p" ~prange (range (Expr.sym "p") (Expr.sym "p") (i 1)) in
        Alcotest.(check string) "image is the map range" "[0:N - 1:2]"
          (Subset.to_string [ r ]));
    Alcotest.test_case "aligned tile of a strided inner range stays strided" `Quick (fun () ->
        (* inner [p : min(p+31, N-2) : 2] over tiles p ∈ [1 : N-2 : 32] *)
        let h = Expr.sub n (i 2) in
        let prange = range (i 1) h (i 32) in
        let inner =
          range (Expr.sym "p") (Expr.min_ (Expr.add (Expr.sym "p") (i 31)) h) (i 2)
        in
        let r = Sdfg.Propagate.widen_range ~param:"p" ~prange inner in
        Alcotest.(check string) "exact strided union" "[1:N - 2:2]"
          (Subset.to_string [ r ]);
        (* guard: a tile span shorter than one period must NOT take the exact
           case (the union has holes a strided range cannot express) *)
        let short =
          range (Expr.sym "p") (Expr.min_ (Expr.add (Expr.sym "p") (i 7)) h) (i 2)
        in
        let r' = Sdfg.Propagate.widen_range ~param:"p" ~prange short in
        Alcotest.(check bool) "short span collapses to the dense box" true
          (r'.Subset.step = Expr.one));
  ]

(* ---- corpus-wide consistency and determinism ------------------------------ *)

let all_workloads () = Workloads.Npbench.all () @ Workloads.Npb_frontend.all ()

let symbols_of g =
  List.filter
    (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g))
    [ ("N", 8); ("T", 3) ]

let corpus_tests =
  [
    Alcotest.test_case "exact tier never contradicts the sampled tier" `Slow (fun () ->
        (* a sampled race witness is a concrete overlap, so a sound exact tier
           can only add findings (by deciding pairs sampling missed), never
           lose one *)
        List.iter
          (fun (name, g) ->
            let flagged exact =
              let fs, _ =
                Analysis.Races.check_stats ~carried:true ~exact ~symbols:(symbols_of g) g
              in
              List.sort_uniq compare
                (List.map
                   (fun (f : Analysis.Report.finding) -> (f.state, f.container))
                   fs)
            in
            let on = flagged true and off = flagged false in
            List.iter
              (fun k ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: sampled race also flagged exactly" name)
                  true (List.mem k on))
              off)
          (all_workloads ()));
    Alcotest.test_case "every intra-scope pair on the corpus is decided exactly" `Slow
      (fun () ->
        let total =
          List.fold_left
            (fun acc (_, g) ->
              let _, s =
                Analysis.Oracle.analyze_stats ~carried:true ~symbols:(symbols_of g) g
              in
              Analysis.Races.stats_add acc s)
            Analysis.Races.stats_zero (all_workloads ())
        in
        Alcotest.(check bool) "corpus exercises the engine" true
          (total.Analysis.Races.pairs > 0);
        Alcotest.(check int) "no pair fell back to sampling" 0
          total.Analysis.Races.sampled);
    Alcotest.test_case "analysis is deterministic" `Slow (fun () ->
        List.iter
          (fun (name, g) ->
            let run () =
              let fs, s =
                Analysis.Oracle.analyze_stats ~carried:true ~symbols:(symbols_of g) g
              in
              (List.map Analysis.Report.to_string fs, s)
            in
            let a = run () and b = run () in
            Alcotest.(check bool) (name ^ " identical") true (a = b))
          (all_workloads ()));
  ]

let () =
  Alcotest.run "deps"
    [
      ("linsys", linsys_tests);
      ("deps", deps_tests);
      ("propagate", propagate_tests);
      ("corpus", corpus_tests);
    ]
