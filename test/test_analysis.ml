(* The static dataflow oracle: zero findings on every bundled workload,
   positive findings exactly on the known-buggy transformation variants, and
   the delta verifier / pipeline gate built on top of them. *)

open Sdfg
module B = Builder.Build

let sym = Symbolic.Expr.sym

let symbols_for name =
  match name with
  | "bert_encoder" -> Workloads.Bert.default_symbols
  | "cloudsc_synth" -> Workloads.Cloudsc.default_symbols
  | "sddmm_rank" -> [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ]
  | _ -> [ ("N", 8); ("T", 3) ]

let symbols_of g =
  List.filter (fun (s, _) -> List.mem s (Graph.all_free_syms g)) (symbols_for (Graph.name g))

let all_workloads () =
  Workloads.Npbench.all () @ Workloads.Npb_frontend.all ()
  @ [
      ("bert", Workloads.Bert.build ());
      ("cloudsc", Workloads.Cloudsc.build ());
      ("fig4", Workloads.Fig4.build ());
      ("sddmm", (let g, _, _ = Workloads.Sddmm.rank_program () in g));
    ]

(* producer tmp[i] -> consumer tmp[i-1]: fusable only when offsets are
   ignored, and then only incorrectly *)
let stencil_pair () =
  let g = Graph.create "stencil_pair" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_array g "out" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N" ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  let m1 =
    B.mapped_tasklet g st ~label:"prod"
      ~map:[ ("i", "1:N-1") ]
      ~inputs:[ ("v", B.mem "x" "i") ]
      ~code:"o = v * 2.0"
      ~outputs:[ ("o", B.mem "tmp" "i") ]
      ()
  in
  ignore
    (B.mapped_tasklet g st ~label:"cons"
       ~map:[ ("i", "1:N-1") ]
       ~inputs:[ ("v", B.mem "tmp" "i-1") ]
       ~code:"o = v + 1.0"
       ~outputs:[ ("o", B.mem "out" "i") ]
       ~input_nodes:[ ("tmp", List.assoc "tmp" m1.B.out_access) ]
       ());
  g

let finding_passes fs = List.map (fun (f : Analysis.Report.finding) -> f.pass) fs

let oracle_tests =
  [
    Alcotest.test_case "zero findings on every bundled workload" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            match Analysis.Oracle.analyze ~symbols:(symbols_of g) g with
            | [] -> ()
            | fs ->
                Alcotest.failf "%s: %d unexpected findings, first: %s" name (List.length fs)
                  (Analysis.Report.to_string (List.hd fs)))
          (all_workloads ()));
    Alcotest.test_case "race: silent on axpy" `Quick (fun () ->
        let g = List.assoc "axpy" (Workloads.Npbench.all ()) in
        Alcotest.(check int)
          "no races" 0
          (List.length (Analysis.Races.check ~carried:true ~symbols:[ ("N", 8) ] g)));
    Alcotest.test_case "race: fires on offset-ignoring map fusion" `Quick (fun () ->
        let g = stencil_pair () in
        let x = Transforms.Map_fusion.make Transforms.Map_fusion.Ignore_offsets in
        let sites = x.Transforms.Xform.find g in
        Alcotest.(check bool) "has a site" true (sites <> []);
        (match Analysis.Delta.verify ~symbols:[ ("N", 8) ] g x (List.hd sites) with
        | Some fs ->
            Alcotest.(check bool)
              "carried race on tmp" true
              (List.exists
                 (fun (f : Analysis.Report.finding) ->
                   f.pass = Analysis.Report.Race && f.container = "tmp")
                 fs)
        | None -> Alcotest.fail "site went stale");
        (* the correct variant refuses the offset site entirely *)
        let correct = Transforms.Map_fusion.make Transforms.Map_fusion.Correct in
        Alcotest.(check int) "no correct-fusion site" 0
          (List.length (correct.Transforms.Xform.find g)));
    Alcotest.test_case "race: off-by-one tiling duplicates accumulation" `Quick (fun () ->
        let g = Workloads.Npbench.gemm () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let sites = x.Transforms.Xform.find g in
        Alcotest.(check bool) "has a site" true (sites <> []);
        match Analysis.Delta.verify ~symbols:[ ("N", 8) ] g x (List.hd sites) with
        | Some fs ->
            Alcotest.(check bool)
              "error-severity race" true
              (List.exists
                 (fun (f : Analysis.Report.finding) ->
                   f.pass = Analysis.Report.Race && f.severity = Analysis.Report.Error)
                 fs)
        | None -> Alcotest.fail "site went stale");
  ]

let bounds_tests =
  [
    Alcotest.test_case "no-remainder tiling goes out of bounds" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.No_remainder in
        let sites = x.Transforms.Xform.find g in
        Alcotest.(check bool) "has sites" true (sites <> []);
        match Analysis.Delta.verify ~symbols:[ ("N", 8) ] g x (List.hd sites) with
        | Some fs ->
            Alcotest.(check bool)
              "OOB reported" true
              (List.mem Analysis.Report.Out_of_bounds (finding_passes fs))
        | None -> Alcotest.fail "site went stale");
    Alcotest.test_case "exact tiling stays clean" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        List.iter
          (fun site ->
            match Analysis.Delta.verify ~symbols:[ ("N", 8) ] g x site with
            | Some fs -> Alcotest.(check int) "no findings" 0 (List.length fs)
            | None -> Alcotest.fail "site went stale")
          (x.Transforms.Xform.find g));
    Alcotest.test_case "hand-built off-by-one read" `Quick (fun () ->
        let g = Graph.create "obo" in
        Graph.add_array g "x" Dtype.F64 [ sym "N" ];
        Graph.add_array g "y" Dtype.F64 [ sym "N" ];
        let sid = Graph.add_state g "main" in
        let st = Graph.state g sid in
        ignore
          (B.mapped_tasklet g st ~label:"shift"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", B.mem "x" "i+1") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem "y" "i") ]
             ());
        let fs = Analysis.Bounds.check ~symbols:[ ("N", 8) ] g in
        Alcotest.(check bool)
          "x[i+1] flagged" true
          (List.exists (fun (f : Analysis.Report.finding) -> f.container = "x") fs));
    Alcotest.test_case "triangular nests are not flagged" `Quick (fun () ->
        (* j in 0:i-1 is empty at i = 0; the checker must prune, not flag *)
        let g = Graph.create "tri" in
        Graph.add_array g "A" Dtype.F64 [ sym "N"; sym "N" ];
        Graph.add_array g "s" Dtype.F64 [ sym "N" ];
        let sid = Graph.add_state g "main" in
        let st = Graph.state g sid in
        ignore
          (B.mapped_tasklet g st ~label:"lower"
             ~map:[ ("i", "0:N-1"); ("j", "0:i-1") ]
             ~inputs:[ ("v", B.mem "A" "i, j") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem ~wcr:Sdfg.Memlet.Wcr_sum "s" "i") ]
             ());
        Alcotest.(check int) "clean" 0
          (List.length (Analysis.Bounds.check ~symbols:[ ("N", 8) ] g)));
  ]

let defuse_tests =
  [
    Alcotest.test_case "reads mirror the cutout extractor" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            Alcotest.(check (list string))
              (name ^ " reads") (Fuzzyflow.Cutout.program_reads g) (Analysis.Defuse.reads g))
          (all_workloads ()));
    Alcotest.test_case "uninitialized transient read" `Quick (fun () ->
        let g = Graph.create "ubd" in
        Graph.add_array g "y" Dtype.F64 [ sym "N" ];
        Graph.add_array g ~transient:true "ghost" Dtype.F64 [ sym "N" ];
        let sid = Graph.add_state g "main" in
        let st = Graph.state g sid in
        ignore
          (B.mapped_tasklet g st ~label:"use"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", B.mem "ghost" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem "y" "i") ]
             ());
        match Analysis.Defuse.check g with
        | [ f ] ->
            Alcotest.(check string) "container" "ghost" f.Analysis.Report.container;
            Alcotest.(check bool) "pass" true (f.pass = Analysis.Report.Use_before_def)
        | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
    Alcotest.test_case "dead transient write" `Quick (fun () ->
        let g = Graph.create "dead" in
        Graph.add_array g "x" Dtype.F64 [ sym "N" ];
        Graph.add_array g ~transient:true "sink" Dtype.F64 [ sym "N" ];
        let sid = Graph.add_state g "main" in
        let st = Graph.state g sid in
        ignore
          (B.mapped_tasklet g st ~label:"drop"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", B.mem "x" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem "sink" "i") ]
             ());
        match Analysis.Defuse.check g with
        | [ f ] ->
            Alcotest.(check string) "container" "sink" f.Analysis.Report.container;
            Alcotest.(check bool) "pass" true (f.pass = Analysis.Report.Dead_write)
        | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  ]

(* a graph with a pre-existing defect: the delta verifier must not blame the
   transformation for it *)
let with_preexisting_defect () =
  let g = Graph.create "dirty" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_array g "y" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "ghost" Dtype.F64 [ sym "N" ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  ignore
    (B.mapped_tasklet g st ~label:"haunt"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", B.mem "ghost" "i") ]
       ~code:"o = v"
       ~outputs:[ ("o", B.mem "y" "i") ]
       ());
  ignore
    (B.mapped_tasklet g st ~label:"scale"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", B.mem "x" "i") ]
       ~code:"o = v * 2.0"
       ~outputs:[ ("o", B.mem "y" "i") ]
       ());
  g

let delta_tests =
  [
    Alcotest.test_case "pre-existing findings are not attributed" `Quick (fun () ->
        let g = with_preexisting_defect () in
        Alcotest.(check bool)
          "baseline is dirty" true
          (Analysis.Oracle.analyze ~symbols:[ ("N", 8) ] g <> []);
        let correct = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        List.iter
          (fun site ->
            match Analysis.Delta.verify ~symbols:[ ("N", 8) ] g correct site with
            | Some fs -> Alcotest.(check int) "correct xform adds nothing" 0 (List.length fs)
            | None -> Alcotest.fail "site went stale")
          (correct.Transforms.Xform.find g));
    Alcotest.test_case "only new findings are reported" `Quick (fun () ->
        let g = with_preexisting_defect () in
        let buggy = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.No_remainder in
        let sites = buggy.Transforms.Xform.find g in
        Alcotest.(check bool) "has sites" true (sites <> []);
        match Analysis.Delta.verify ~symbols:[ ("N", 8) ] g buggy (List.hd sites) with
        | Some fs ->
            Alcotest.(check bool) "reports the new OOB" true
              (List.mem Analysis.Report.Out_of_bounds (finding_passes fs));
            Alcotest.(check bool) "omits the old use-before-def" true
              (not (List.mem Analysis.Report.Use_before_def (finding_passes fs)))
        | None -> Alcotest.fail "site went stale");
  ]

let pipeline_tests =
  [
    Alcotest.test_case "static gate rejects before fuzzing" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let config =
          {
            Fuzzyflow.Difftest.default_config with
            trials = 3;
            max_size = 8;
            concretization = [ ("N", 9) ];
          }
        in
        let xforms =
          [
            Transforms.Map_tiling.make Transforms.Map_tiling.Correct;
            Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible;
          ]
        in
        let _, log = Fuzzyflow.Pipeline.optimize ~config ~static_gate:true g xforms in
        let static_steps =
          List.filter_map
            (fun (s : Fuzzyflow.Pipeline.step) ->
              match s.decision with
              | Fuzzyflow.Pipeline.Rejected_static fs -> Some fs
              | _ -> None)
            log.steps
        in
        Alcotest.(check bool) "at least one static rejection" true (static_steps <> []);
        (* the audit log names the offending container and subsets *)
        let rendered = Format.asprintf "%a" Fuzzyflow.Pipeline.pp_log log in
        let first = List.hd (List.concat static_steps) in
        Alcotest.(check bool) "log names the container" true
          (let container = first.Analysis.Report.container in
           let cl = String.length container and rl = String.length rendered in
           let rec scan i =
             i + cl <= rl && (String.sub rendered i cl = container || scan (i + 1))
           in
           scan 0);
        Alcotest.(check bool) "findings carry subsets" true
          (first.Analysis.Report.subsets <> []));
    Alcotest.test_case "gate off preserves old behavior" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let config =
          {
            Fuzzyflow.Difftest.default_config with
            trials = 3;
            max_size = 8;
            concretization = [ ("N", 8) ];
          }
        in
        let _, log =
          Fuzzyflow.Pipeline.optimize ~config g
            [ Transforms.Map_tiling.make Transforms.Map_tiling.Correct ]
        in
        Alcotest.(check bool) "no static rejections" true
          (List.for_all
             (fun (s : Fuzzyflow.Pipeline.step) ->
               match s.decision with Fuzzyflow.Pipeline.Rejected_static _ -> false | _ -> true)
             log.steps));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("oracle", oracle_tests);
      ("bounds", bounds_tests);
      ("defuse", defuse_tests);
      ("delta", delta_tests);
      ("pipeline-gate", pipeline_tests);
    ]
