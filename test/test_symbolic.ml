(* Unit and property tests for the symbolic expression layer. *)

open Symbolic

let env = Expr.Env.of_list [ ("N", 10); ("M", 4); ("i", 3) ]

let check_eval name expected e =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check int) name expected (Expr.eval env e))

let expr_tests =
  [
    check_eval "const" 7 (Expr.int 7);
    check_eval "sym" 10 (Expr.sym "N");
    check_eval "add" 14 Expr.(add (sym "N") (sym "M"));
    check_eval "sub" 6 Expr.(sub (sym "N") (sym "M"));
    check_eval "mul" 40 Expr.(mul (sym "N") (sym "M"));
    check_eval "div floor" 2 Expr.(div (sym "N") (int 4));
    check_eval "div negative floors down" (-3) Expr.(div (int (-10)) (int 4));
    check_eval "mod" 2 Expr.(modulo (sym "N") (int 4));
    check_eval "mod negative stays non-negative" 2 Expr.(modulo (int (-10)) (int 4));
    check_eval "min" 4 Expr.(min_ (sym "N") (sym "M"));
    check_eval "max" 10 Expr.(max_ (sym "N") (sym "M"));
    check_eval "neg" (-10) Expr.(neg (sym "N"));
    check_eval "nested" 33 Expr.(add (mul (sym "i") (sym "N")) (int 3));
    Alcotest.test_case "unbound symbol raises" `Quick (fun () ->
        Alcotest.check_raises "unbound" (Expr.Unbound_symbol "Q") (fun () ->
            ignore (Expr.eval env (Expr.sym "Q"))));
    Alcotest.test_case "division by zero raises" `Quick (fun () ->
        Alcotest.check_raises "divzero" Expr.Division_by_zero (fun () ->
            ignore (Expr.eval env Expr.(div (sym "N") (int 0)))));
  ]

let simplify_tests =
  let eq name a b =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check bool) name true (Expr.equal a b))
  in
  [
    eq "x+0 = x" Expr.(add (sym "x") (int 0)) (Expr.sym "x");
    eq "0+x = x" Expr.(add (int 0) (sym "x")) (Expr.sym "x");
    eq "x*1 = x" Expr.(mul (sym "x") (int 1)) (Expr.sym "x");
    eq "x*0 = 0" Expr.(mul (sym "x") (int 0)) (Expr.int 0);
    eq "x-x = 0" Expr.(sub (sym "x") (sym "x")) (Expr.int 0);
    eq "x/1 = x" Expr.(div (sym "x") (int 1)) (Expr.sym "x");
    eq "x%1 = 0" Expr.(modulo (sym "x") (int 1)) (Expr.int 0);
    eq "min(x,x) = x" Expr.(min_ (sym "x") (sym "x")) (Expr.sym "x");
    eq "--x = x" Expr.(neg (neg (sym "x"))) (Expr.sym "x");
    eq "const folding" Expr.(add (int 2) (mul (int 3) (int 4))) (Expr.int 14);
    Alcotest.test_case "is_constant" `Quick (fun () ->
        Alcotest.(check (option int)) "const" (Some 14)
          (Expr.is_constant Expr.(add (int 2) (mul (int 3) (int 4))));
        Alcotest.(check (option int)) "sym" None (Expr.is_constant (Expr.sym "x")));
  ]

let parse_tests =
  let roundtrip name s expected =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check int) name expected (Expr.eval env (Expr.of_string s)))
  in
  [
    roundtrip "number" "42" 42;
    roundtrip "sym" "N" 10;
    roundtrip "precedence" "2 + 3 * N" 32;
    roundtrip "parens" "(2 + 3) * N" 50;
    roundtrip "sub chain left assoc" "N - 1 - 2" 7;
    roundtrip "div" "N / 3" 3;
    roundtrip "mod" "N % 3" 1;
    roundtrip "min fn" "min(N, M)" 4;
    roundtrip "max fn" "max(N, M + 20)" 24;
    roundtrip "unary minus" "-N + 12" 2;
    roundtrip "nested fn" "min(max(N, M), 7)" 7;
    Alcotest.test_case "parse error" `Quick (fun () ->
        match Expr.of_string "N +" with
        | exception Expr.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "free syms sorted unique" `Quick (fun () ->
        Alcotest.(check (list string)) "syms" [ "M"; "N" ]
          (Expr.free_syms (Expr.of_string "N * M + N - M")));
    Alcotest.test_case "subst" `Quick (fun () ->
        let e = Expr.subst (Expr.Env.singleton "N" (Expr.int 5)) (Expr.of_string "N * N") in
        Alcotest.(check int) "subst" 25 (Expr.eval Expr.Env.empty e));
    Alcotest.test_case "rename" `Quick (fun () ->
        let e = Expr.rename_sym ~from:"N" ~into:"M" (Expr.of_string "N + M") in
        Alcotest.(check int) "renamed" 8 (Expr.eval env e));
  ]

let cond_tests =
  let ev name expected s =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check bool) name expected (Cond.eval env (Cond.of_string s)))
  in
  [
    ev "lt true" true "M < N";
    ev "lt false" false "N < M";
    ev "le eq" true "N <= 10";
    ev "gt" true "N > 9";
    ev "ge" true "N >= 10";
    ev "eq" true "N == 10";
    ev "ne" true "N != M";
    ev "and" true "M < N and N <= 10";
    ev "or" true "N < M or M == 4";
    ev "not" true "not (N < M)";
    ev "parens" true "(N < M or M == 4) and N == 10";
    ev "arith inside" true "N * M >= 39";
    Alcotest.test_case "negate inverts" `Quick (fun () ->
        let c = Cond.of_string "i <= N - 1" in
        Alcotest.(check bool) "neg" (not (Cond.eval env c)) (Cond.eval env (Cond.negate c)));
    Alcotest.test_case "free syms" `Quick (fun () ->
        Alcotest.(check (list string)) "syms" [ "M"; "N" ] (Cond.free_syms (Cond.of_string "N < M")));
  ]

let subset_tests =
  let conc s = Subset.concretize env (Subset.of_string s) in
  [
    Alcotest.test_case "volume full" `Quick (fun () ->
        Alcotest.(check int) "N*N" 100 (Subset.volume_eval env (Subset.of_string "0:N-1, 0:N-1")));
    Alcotest.test_case "volume strided" `Quick (fun () ->
        Alcotest.(check int) "strided" 5 (Subset.volume_eval env (Subset.of_string "0:N-2:2")));
    Alcotest.test_case "volume index" `Quick (fun () ->
        Alcotest.(check int) "idx" 1 (Subset.volume_eval env (Subset.of_string "i")));
    Alcotest.test_case "volume scalar" `Quick (fun () ->
        Alcotest.(check int) "scalar" 1 (Subset.volume_eval env Subset.scalar));
    Alcotest.test_case "negative step count" `Quick (fun () ->
        let r = Subset.concretize_range env (Subset.dim ~step:(Expr.int (-1)) (Expr.int 4) (Expr.int 1)) in
        Alcotest.(check int) "count" 4 (Subset.crange_count r);
        Alcotest.(check (list int)) "elements" [ 4; 3; 2; 1 ] (Subset.crange_elements r));
    Alcotest.test_case "empty range" `Quick (fun () ->
        let r = Subset.concretize_range env (Subset.dim (Expr.int 5) (Expr.int 2)) in
        Alcotest.(check int) "count" 0 (Subset.crange_count r));
    Alcotest.test_case "overlap basic" `Quick (fun () ->
        Alcotest.(check bool) "yes" true (Subset.overlaps (conc "0:5") (conc "3:9"));
        Alcotest.(check bool) "no" false (Subset.overlaps (conc "0:2") (conc "3:9")));
    Alcotest.test_case "overlap multi-dim" `Quick (fun () ->
        Alcotest.(check bool) "disjoint row" false
          (Subset.overlaps (conc "0, 0:9") (conc "1, 0:9"));
        Alcotest.(check bool) "same cell" true (Subset.overlaps (conc "1, 2") (conc "1, 2")));
    Alcotest.test_case "covers" `Quick (fun () ->
        Alcotest.(check bool) "yes" true (Subset.covers (conc "0:9") (conc "2:5"));
        Alcotest.(check bool) "no" false (Subset.covers (conc "2:5") (conc "0:9")));
    Alcotest.test_case "full" `Quick (fun () ->
        Alcotest.(check int) "vol" 40
          (Subset.volume_eval env (Subset.full [ Expr.sym "N"; Expr.sym "M" ])));
    Alcotest.test_case "parse index vs range vs stride" `Quick (fun () ->
        Alcotest.(check int) "3 dims" 3 (Subset.num_dims (Subset.of_string "i, 0:N-1, 0:N-1:2")));
    Alcotest.test_case "subst and rename" `Quick (fun () ->
        let s = Subset.rename_sym ~from:"i" ~into:"j" (Subset.of_string "i:i+2") in
        let env' = Expr.Env.of_list [ ("j", 5) ] in
        Alcotest.(check int) "vol" 3 (Subset.volume_eval env' s));
  ]

(* Edge cases of the concrete and symbolic subset predicates: negative-step
   ranges iterate downwards ([hi] is their smallest element) and empty ranges
   cover nothing, so must neither overlap nor witness disjointness. *)
let subset_edge_tests =
  let down = { Subset.clo = 7; chi = 1; cstep = -2 } (* {7,5,3,1} *)
  and mid = { Subset.clo = 3; chi = 5; cstep = 1 }
  and empty = { Subset.clo = 0; chi = -1; cstep = 1 } in
  let sdown = [ Subset.dim ~step:(Expr.int (-2)) (Expr.int 7) (Expr.int 1) ]
  and smid = [ Subset.dim (Expr.int 3) (Expr.int 5) ]
  and shigh = [ Subset.dim (Expr.int 8) (Expr.int 9) ] in
  [
    Alcotest.test_case "negative-step range overlaps its span" `Quick (fun () ->
        Alcotest.(check bool) "7:1:-2 meets 3:5" true (Subset.overlaps [ down ] [ mid ]);
        Alcotest.(check bool) "symmetric" true (Subset.overlaps [ mid ] [ down ]));
    Alcotest.test_case "empty range overlaps nothing" `Quick (fun () ->
        Alcotest.(check bool) "empty vs mid" false (Subset.overlaps [ empty ] [ mid ]);
        Alcotest.(check bool) "empty vs itself" false (Subset.overlaps [ empty ] [ empty ]));
    Alcotest.test_case "covers across directions" `Quick (fun () ->
        Alcotest.(check bool) "1:7 covers the downward range" true
          (Subset.covers [ { Subset.clo = 1; chi = 7; cstep = 1 } ] [ down ]);
        Alcotest.(check bool) "downward stride-2 covers nothing" false
          (Subset.covers [ down ] [ mid ]);
        Alcotest.(check bool) "unit downward range covers" true
          (Subset.covers [ { Subset.clo = 7; chi = 1; cstep = -1 } ] [ mid ]));
    Alcotest.test_case "definitely_disjoint respects negative steps" `Quick (fun () ->
        (* hi(=1) < lo(=3) of the other range, but the downward range still
           covers {7,5,3,1}: a sound analysis must NOT claim disjointness *)
        Alcotest.(check bool) "7:1:-2 vs 3:5" false (Subset.definitely_disjoint sdown smid);
        Alcotest.(check bool) "7:1:-2 vs 8:9 is disjoint" true
          (Subset.definitely_disjoint sdown shigh);
        Alcotest.(check bool) "symmetric" true (Subset.definitely_disjoint shigh sdown));
    Alcotest.test_case "normalize mirrors constant downward ranges" `Quick (fun () ->
        let n = Subset.normalize sdown in
        Alcotest.(check bool) "equal to 1:7:2" true
          (Subset.equal n [ Subset.dim ~step:(Expr.int 2) (Expr.int 1) (Expr.int 7) ]));
    Alcotest.test_case "union and difference witness" `Quick (fun () ->
        let a = [ Subset.dim (Expr.int 0) (Expr.sub (Expr.sym "N") (Expr.int 1)) ]
        and b = [ Subset.dim (Expr.int 0) (Expr.sub (Expr.sym "N") (Expr.int 2)) ] in
        let u = Subset.union a b in
        Alcotest.(check bool) "union is the larger range" true (Subset.equal u a);
        match Subset.difference_witness ~symbols:[ ("N", (2, 9)) ] a b with
        | Some (valuation, el) ->
            let n = List.assoc "N" valuation in
            Alcotest.(check (list int)) "witness element is the last index" [ n - 1 ] el
        | None -> Alcotest.fail "expected a difference witness");
  ]

(* properties *)
let gen_expr =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then oneof [ map Expr.int (int_range (-20) 20); oneofl [ Expr.sym "N"; Expr.sym "M" ] ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Expr.int (int_range (-20) 20);
            oneofl [ Expr.sym "N"; Expr.sym "M" ];
            map2 Expr.add sub sub;
            map2 Expr.sub sub sub;
            map2 Expr.mul sub sub;
            map2 Expr.min_ sub sub;
            map2 Expr.max_ sub sub;
            map Expr.neg sub;
          ])

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:500 arb_expr (fun e ->
      Expr.eval env (Expr.simplify e) = Expr.eval env e)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip preserves evaluation" ~count:500 arb_expr
    (fun e -> Expr.eval env (Expr.of_string (Expr.to_string e)) = Expr.eval env e)

let prop_subst_commutes =
  QCheck.Test.make ~name:"substituting a constant equals binding it" ~count:300 arb_expr
    (fun e ->
      let bound = Expr.Env.add "N" 7 (Expr.Env.remove "N" env) in
      let substituted = Expr.subst (Expr.Env.singleton "N" (Expr.int 7)) e in
      Expr.eval bound e = Expr.eval bound substituted)

let gen_crange =
  QCheck.Gen.(
    map3
      (fun lo len step -> { Subset.clo = lo; chi = lo + len; cstep = 1 + step })
      (int_range (-10) 10) (int_range 0 20) (int_range 0 3))

let arb_crange = QCheck.make gen_crange

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:500 (QCheck.pair arb_crange arb_crange)
    (fun (a, b) -> Subset.overlaps [ a ] [ b ] = Subset.overlaps [ b ] [ a ])

let prop_overlap_reflexive =
  QCheck.Test.make ~name:"nonempty ranges overlap themselves" ~count:500 arb_crange (fun r ->
      QCheck.assume (Subset.crange_count r > 0);
      Subset.overlaps [ r ] [ r ])

let prop_count_matches_elements =
  QCheck.Test.make ~name:"crange_count = |crange_elements|" ~count:500 arb_crange (fun r ->
      Subset.crange_count r = List.length (Subset.crange_elements r))

let () =
  Alcotest.run "symbolic"
    [
      ("expr", expr_tests);
      ("simplify", simplify_tests);
      ("parse", parse_tests);
      ("cond", cond_tests);
      ("subset", subset_tests);
      ("subset-edge", subset_edge_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves_eval;
            prop_parse_print_roundtrip;
            prop_subst_commutes;
            prop_overlap_symmetric;
            prop_overlap_reflexive;
            prop_count_matches_elements;
          ] );
    ]
