(* The program generator: determinism, admission, style steering, shrinking. *)

open Sdfg

let styles = Gen.Styles.all

(* -- determinism -------------------------------------------------------- *)

let determinism_tests =
  [
    Alcotest.test_case "same seed, byte-identical serialization" `Quick (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            for index = 0 to 9 do
              let a = Gen.Generate.candidate ~style ~seed:42 index in
              let b = Gen.Generate.candidate ~style ~seed:42 index in
              Alcotest.(check string)
                (Printf.sprintf "%s/%d" style.Gen.Styles.name index)
                (Serialize.to_string a.Gen.Generate.graph)
                (Serialize.to_string b.Gen.Generate.graph)
            done)
          styles);
    Alcotest.test_case "different seeds diverge somewhere" `Quick (fun () ->
        let img seed =
          List.map
            (fun (style : Gen.Styles.t) ->
              Serialize.to_string (Gen.Generate.candidate ~style ~seed 0).Gen.Generate.graph)
            styles
        in
        Alcotest.(check bool) "seed 1 vs 2" false (img 1 = img 2));
    Alcotest.test_case "name round-trips the (style, seed, index) triple" `Quick (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            let c = Gen.Generate.candidate ~style ~seed:7 3 in
            (match Gen.Generate.parse_name c.Gen.Generate.name with
            | Some (s, seed, index) ->
                Alcotest.(check string) "style" style.Gen.Styles.name s;
                Alcotest.(check int) "seed" 7 seed;
                Alcotest.(check int) "index" 3 index
            | None -> Alcotest.fail ("unparseable: " ^ c.Gen.Generate.name));
            match Gen.Generate.by_name c.Gen.Generate.name with
            | Some c' ->
                Alcotest.(check string) "regenerated identical"
                  (Serialize.to_string c.Gen.Generate.graph)
                  (Serialize.to_string c'.Gen.Generate.graph)
            | None -> Alcotest.fail "by_name failed")
          styles);
  ]

(* -- serialization round-trip over the raw stream ------------------------ *)

let roundtrip_tests =
  [
    Alcotest.test_case "100 graphs per style survive serialize round-trip" `Slow (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            for index = 0 to 99 do
              let c = Gen.Generate.candidate ~style ~seed:11 index in
              let s = Serialize.to_string c.Gen.Generate.graph in
              let s' = Serialize.to_string (Serialize.of_string s) in
              Alcotest.(check string)
                (Printf.sprintf "%s/%d" style.Gen.Styles.name index)
                s s'
            done)
          styles);
  ]

(* -- admission ----------------------------------------------------------- *)

let batch style = Gen.Admit.batch ~style ~seed:42 ~n:20 ()

let admission_tests =
  [
    Alcotest.test_case "admitted candidates have zero definite findings" `Slow (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            let admitted, _ = batch style in
            List.iter
              (fun (c : Gen.Generate.t) ->
                Alcotest.(check int)
                  (c.Gen.Generate.name ^ " validates")
                  0
                  (List.length (Validate.check c.Gen.Generate.graph));
                let findings =
                  Analysis.Oracle.analyze ~symbols:(Gen.Admit.concretize c.Gen.Generate.graph)
                    c.Gen.Generate.graph
                in
                let definite =
                  List.filter
                    (fun (f : Analysis.Report.finding) ->
                      f.Analysis.Report.severity = Analysis.Report.Error)
                    findings
                in
                Alcotest.(check int) (c.Gen.Generate.name ^ " definite findings") 0
                  (List.length definite))
              admitted)
          styles);
    Alcotest.test_case "admission rate meets the 60% floor" `Slow (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            let _, stats = batch style in
            let rate =
              float_of_int stats.Gen.Admit.admitted /. float_of_int stats.Gen.Admit.generated
            in
            if rate < 0.6 then
              Alcotest.failf "%s admission %.0f%% below floor" style.Gen.Styles.name
                (100. *. rate))
          styles);
    Alcotest.test_case "every style target matches on its batch" `Slow (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            let admitted, _ = batch style in
            let counts =
              List.concat_map
                (fun (c : Gen.Generate.t) -> Gen.Styles.match_counts c.Gen.Generate.graph)
                admitted
            in
            List.iter
              (fun target ->
                let hits =
                  List.fold_left
                    (fun acc (n, k) -> if n = target then acc + k else acc)
                    0 counts
                in
                if hits = 0 then
                  Alcotest.failf "%s: target %s never matched" style.Gen.Styles.name target)
              style.Gen.Styles.targets)
          styles);
    Alcotest.test_case "rejections are attributable to risky rules" `Quick (fun () ->
        (* a candidate made only of benign elementwise fragments always admits *)
        let style =
          { (List.hd styles) with Gen.Styles.weights = [ (1, Gen.Grammar.Elementwise) ] }
        in
        for index = 0 to 9 do
          let c = Gen.Generate.candidate ~style ~seed:5 index in
          match Gen.Admit.check c with
          | Ok () -> ()
          | Error r ->
              Alcotest.failf "benign candidate %d rejected: %s" index
                (Gen.Admit.reject_to_string r)
        done);
  ]

(* -- shrink hints -------------------------------------------------------- *)

let shrink_tests =
  [
    Alcotest.test_case "shrink drops unconditional states under an invariant" `Quick (fun () ->
        (* loops style produces multi-state programs; shrink with a trivial
           invariant must keep the graph valid and never grow it *)
        let style = List.find (fun (s : Gen.Styles.t) -> s.Gen.Styles.name = "loops") styles in
        let admitted, _ = Gen.Admit.batch ~style ~seed:42 ~n:3 () in
        List.iter
          (fun (c : Gen.Generate.t) ->
            let g = c.Gen.Generate.graph in
            let keep g' = Validate.check g' = [] in
            let shrunk = Gen.Shrinkhint.shrink ~keep g in
            Alcotest.(check bool) "still valid" true (Validate.check shrunk = []);
            Alcotest.(check bool) "not larger" true
              (List.length (Graph.states shrunk) <= List.length (Graph.states g)))
          admitted);
    Alcotest.test_case "apply on a stale hint returns None" `Quick (fun () ->
        let style = List.hd styles in
        let c = Gen.Generate.candidate ~style ~seed:42 0 in
        let g = c.Gen.Generate.graph in
        match Gen.Shrinkhint.apply g (Gen.Shrinkhint.Drop_state 9999) with
        | None -> ()
        | Some _ -> Alcotest.fail "expected None for unknown state");
  ]

let () =
  Alcotest.run "gen"
    [
      ("determinism", determinism_tests);
      ("roundtrip", roundtrip_tests);
      ("admission", admission_tests);
      ("shrink", shrink_tests);
    ]
