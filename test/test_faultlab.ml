(* The fault-injection lab: catalog determinism, mutation arming, outcome
   classification, and a fast end-to-end selfcheck slice (the full campaign
   runs as `fuzzyflow selfcheck` in CI's smoke job). *)

open Faultlab

let spec_ids specs = List.map (fun (s : Plan.spec) -> s.Plan.id) specs

let interp_spec inject expect =
  {
    Plan.id = "interp/scale/test";
    level = Plan.L_interp;
    expect;
    descr = "test spec";
    payload = Plan.Interp_fault { workload = "scale"; inject };
  }

let verdict ?(klass = None) ?(localized = None) ?(audit_flagged = None) ?(dep_witness = None)
    ?(dep_confirmed = None) () =
  Selfcheck.R_verdict
    {
      klass;
      first_trial = 1;
      failing_trials = 1;
      localized;
      audit_flagged;
      dep_witness;
      dep_confirmed;
      detail = "d";
    }

let plan_tests =
  [
    Alcotest.test_case "catalog is deterministic for a seed" `Quick (fun () ->
        let a = Plan.catalog ~seed:7 () and b = Plan.catalog ~seed:7 () in
        Alcotest.(check (list string)) "same ids" (spec_ids a) (spec_ids b);
        Alcotest.(check bool) "non-empty" true (a <> []));
    Alcotest.test_case "spec ids are unique" `Quick (fun () ->
        let ids = spec_ids (Plan.catalog ~seed:42 ()) in
        Alcotest.(check int) "no duplicates" (List.length ids)
          (List.length (List.sort_uniq compare ids)));
    Alcotest.test_case "catalog covers all three levels" `Quick (fun () ->
        let specs = Plan.catalog ~seed:42 () in
        List.iter
          (fun l ->
            Alcotest.(check bool)
              ("has " ^ Plan.level_to_string l)
              true
              (List.exists (fun (s : Plan.spec) -> s.Plan.level = l) specs))
          [ Plan.L_interp; Plan.L_transform; Plan.L_mpi ]);
    Alcotest.test_case "level filter restricts the catalog" `Quick (fun () ->
        let mpi = Plan.catalog ~level:Plan.L_mpi ~seed:42 () in
        Alcotest.(check bool) "only mpi" true
          (mpi <> [] && List.for_all (fun (s : Plan.spec) -> s.Plan.level = Plan.L_mpi) mpi));
    Alcotest.test_case "every transform spec records its ground truth" `Quick (fun () ->
        List.iter
          (fun (s : Plan.spec) ->
            match s.Plan.payload with
            | Plan.Transform_fault { expected_containers; _ } ->
                Alcotest.(check bool) (s.Plan.id ^ " has containers") true
                  (expected_containers <> [])
            | _ -> ())
          (Plan.catalog ~level:Plan.L_transform ~seed:42 ()));
  ]

let mutate_tests =
  [
    Alcotest.test_case "identity transform does not change the graph" `Quick (fun () ->
        let g = Plan.workload_by_name "scale" in
        let before = Sdfg.Serialize.to_string g in
        let x = Mutate.identity () in
        let site = List.hd (x.Transforms.Xform.find g) in
        let _ = x.Transforms.Xform.apply g site in
        Alcotest.(check string) "unchanged" before (Sdfg.Serialize.to_string g));
    Alcotest.test_case "seeded mutations actually damage the graph" `Quick (fun () ->
        let base =
          Transforms.Map_tiling.make ~tile_size:32 Transforms.Map_tiling.Correct
        in
        List.iter
          (fun kind ->
            let g = Plan.workload_by_name "jacobi_1d" in
            match Mutate.probe ~seed:0 kind base g with
            | None -> Alcotest.fail (Mutate.kind_to_string kind ^ " did not arm")
            | Some (site, containers) ->
                Alcotest.(check bool) "names damaged containers" true (containers <> []);
                let clean = Sdfg.Graph.copy g and dirty = Sdfg.Graph.copy g in
                let _ = base.Transforms.Xform.apply clean site in
                let _ = (Mutate.seed_bug ~seed:0 kind base).Transforms.Xform.apply dirty site in
                Alcotest.(check bool)
                  (Mutate.kind_to_string kind ^ " differs from clean application")
                  false
                  (Sdfg.Serialize.to_string clean = Sdfg.Serialize.to_string dirty))
          [ Mutate.Subset_shift; Mutate.Drop_memlet; Mutate.Wrong_stride ]);
    Alcotest.test_case "seeded transforms claim Known_unsound" `Quick (fun () ->
        let base = Transforms.Map_tiling.make ~tile_size:32 Transforms.Map_tiling.Correct in
        let b = Mutate.seed_bug Mutate.Drop_memlet base in
        match b.Transforms.Xform.certify_hint with
        | Some (Transforms.Xform.Known_unsound _) -> ()
        | _ -> Alcotest.fail "expected Known_unsound certify hint");
    Alcotest.test_case "kind names round-trip" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool) "roundtrip" true
              (Mutate.kind_of_string (Mutate.kind_to_string k) = k))
          [ Mutate.Subset_shift; Mutate.Drop_memlet; Mutate.Wrong_stride ]);
  ]

let classify_tests =
  [
    Alcotest.test_case "semantics obligation met" `Quick (fun () ->
        let spec = interp_spec (Interp.Exec.Set_nan { nth_write = 0 }) Plan.Must_semantics in
        match Selfcheck.classify spec (verdict ~klass:(Some Fuzzyflow.Difftest.Semantics) ()) with
        | Selfcheck.Detected _ -> ()
        | o -> Alcotest.fail ("expected Detected, got " ^ Selfcheck.outcome_name o));
    Alcotest.test_case "wrong class is Misclassified, not Detected" `Quick (fun () ->
        let spec = interp_spec (Interp.Exec.Set_nan { nth_write = 0 }) Plan.Must_semantics in
        match
          Selfcheck.classify spec (verdict ~klass:(Some Fuzzyflow.Difftest.Input_dependent) ())
        with
        | Selfcheck.Misclassified _ -> ()
        | o -> Alcotest.fail ("expected Misclassified, got " ^ Selfcheck.outcome_name o));
    Alcotest.test_case "a silent oracle is a Miss" `Quick (fun () ->
        let spec = interp_spec (Interp.Exec.Set_nan { nth_write = 0 }) Plan.Must_semantics in
        match Selfcheck.classify spec (verdict ()) with
        | Selfcheck.Missed _ -> ()
        | o -> Alcotest.fail ("expected Missed, got " ^ Selfcheck.outcome_name o));
    Alcotest.test_case "any failing class satisfies Must_detect" `Quick (fun () ->
        let spec = interp_spec (Interp.Exec.Shift_index { nth_subset = 0; delta = 1 }) Plan.Must_detect in
        List.iter
          (fun klass ->
            match Selfcheck.classify spec (verdict ~klass:(Some klass) ()) with
            | Selfcheck.Detected _ -> ()
            | o -> Alcotest.fail ("expected Detected, got " ^ Selfcheck.outcome_name o))
          [ Fuzzyflow.Difftest.Semantics; Fuzzyflow.Difftest.Input_dependent; Fuzzyflow.Difftest.Invalid_code ]);
  ]

let selfcheck_tests =
  [
    Alcotest.test_case "interp probe catches a seeded NaN through the full pipeline" `Slow
      (fun () ->
        let spec = interp_spec (Interp.Exec.Set_nan { nth_write = 0 }) Plan.Must_semantics in
        match Selfcheck.probe_spec ~trials:4 ~seed:11 spec with
        | Selfcheck.R_verdict { klass = Some Fuzzyflow.Difftest.Semantics; _ } -> ()
        | Selfcheck.R_verdict { detail; _ } -> Alcotest.fail ("not semantics: " ^ detail)
        | Selfcheck.R_mpi _ | Selfcheck.R_net _ ->
            Alcotest.fail "unexpected non-verdict result");
    Alcotest.test_case "mpi campaign level: every disturbance detected, report deterministic"
      `Slow (fun () ->
        let run () = Selfcheck.run ~j:2 ~trials:2 ~level:Plan.L_mpi ~seed:42 () in
        let a = run () and b = run () in
        Alcotest.(check string) "byte-identical reports" (Selfcheck.to_jsonl a)
          (Selfcheck.to_jsonl b);
        Alcotest.(check bool) "gate passes" true (Selfcheck.passed a);
        let t = Selfcheck.totals a in
        Alcotest.(check int) "all mpi specs detected" t.Selfcheck.mpi_total
          t.Selfcheck.mpi_detected;
        Alcotest.(check int) "nothing quarantined" 0 t.Selfcheck.quarantined);
  ]

let () =
  Alcotest.run "faultlab"
    [
      ("plan", plan_tests);
      ("mutate", mutate_tests);
      ("classify", classify_tests);
      ("selfcheck", selfcheck_tests);
    ]
