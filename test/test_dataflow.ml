(* The interstate dataflow framework: the fixpoint solver itself, the
   liveness / reaching-definitions / interval passes built on it, the
   change-set audit, and the clean-corpus regressions that pin the whole
   suite to zero definite findings and bounded convergence. *)

open Sdfg
module B = Builder.Build
module Fx = Analysis.Fixpoint

let sym = Symbolic.Expr.sym

let symbols_for name =
  match name with
  | "bert_encoder" -> Workloads.Bert.default_symbols
  | "cloudsc_synth" -> Workloads.Cloudsc.default_symbols
  | "sddmm_rank" -> [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ]
  | _ -> [ ("N", 8); ("T", 3) ]

let symbols_of g =
  List.filter (fun (s, _) -> List.mem s (Graph.all_free_syms g)) (symbols_for (Graph.name g))

let all_workloads () =
  Workloads.Npbench.all () @ Workloads.Npb_frontend.all ()
  @ [
      ("bert", Workloads.Bert.build ());
      ("cloudsc", Workloads.Cloudsc.build ());
      ("fig4", Workloads.Fig4.build ());
      ("sddmm", (let g, _, _ = Workloads.Sddmm.rank_program () in g));
    ]

let registry_xforms () =
  Transforms.Registry.as_shipped () @ Transforms.Registry.all_correct ()
  |> List.fold_left
       (fun acc (x : Transforms.Xform.t) ->
         if List.exists (fun (y : Transforms.Xform.t) -> y.name = x.name) acc then acc
         else x :: acc)
       []
  |> List.rev

(* s0 -> {s1, s2} -> s3 *)
let diamond () =
  let g = Graph.create "diamond" in
  let s0 = Graph.add_state g "a" in
  let s1 = Graph.add_state g "b" in
  let s2 = Graph.add_state g "c" in
  let s3 = Graph.add_state g "d" in
  ignore (Graph.add_istate_edge g s0 s1);
  ignore (Graph.add_istate_edge g s0 s2);
  ignore (Graph.add_istate_edge g s1 s3);
  ignore (Graph.add_istate_edge g s2 s3);
  (g, s0, s1, s2, s3)

(* int-set lattice collecting visited state ids *)
let visited_lattice =
  {
    Fx.bottom = [];
    equal = ( = );
    join = (fun a b -> List.sort_uniq compare (a @ b));
    widen = None;
  }

let visit_all ?direction g =
  Fx.solve ?direction ~lattice:visited_lattice ~init:[]
    ~transfer:(fun sid f -> List.sort_uniq compare (sid :: f))
    ~edge:(fun _ f -> f)
    g

let fixpoint_tests =
  [
    Alcotest.test_case "forward facts flow through a diamond" `Quick (fun () ->
        let g, s0, s1, s2, s3 = diamond () in
        let sol = visit_all g in
        Alcotest.(check bool) "converged" true sol.Fx.converged;
        Alcotest.(check (option (list int)))
          "join of both arms at the sink"
          (Some [ s0; s1; s2 ])
          (Fx.entry_fact sol s3);
        Alcotest.(check (option (list int))) "root entry is init" (Some []) (Fx.entry_fact sol s0);
        Alcotest.(check bool) "few passes" true (sol.Fx.iterations <= 4));
    Alcotest.test_case "backward facts flow against control flow" `Quick (fun () ->
        let g, s0, _, _, s3 = diamond () in
        let sol = visit_all ~direction:Fx.Backward g in
        (match Fx.entry_fact sol s0 with
        | Some f -> Alcotest.(check bool) "sink reaches the source" true (List.mem s3 f)
        | None -> Alcotest.fail "no fact for the source");
        Alcotest.(check (option (list int))) "sink entry is init" (Some []) (Fx.entry_fact sol s3));
    Alcotest.test_case "pass cap reports non-convergence" `Quick (fun () ->
        (* a self-loop with a strictly growing counter can never stabilize *)
        let g = Graph.create "loop" in
        let s0 = Graph.add_state g "s" in
        ignore (Graph.add_istate_edge g s0 s0);
        let counting =
          { Fx.bottom = 0; equal = ( = ); join = max; widen = None }
        in
        let sol =
          Fx.solve ~max_passes:5 ~lattice:counting ~init:0
            ~transfer:(fun _ f -> f)
            ~edge:(fun _ f -> f + 1)
            g
        in
        Alcotest.(check bool) "cap hit" false sol.Fx.converged;
        Alcotest.(check int) "stopped at the cap" 5 sol.Fx.iterations);
    Alcotest.test_case "widening forces convergence" `Quick (fun () ->
        let g = Graph.create "loop" in
        let s0 = Graph.add_state g "s" in
        ignore (Graph.add_istate_edge g s0 s0);
        let widening =
          {
            Fx.bottom = 0;
            equal = ( = );
            join = max;
            widen = Some (fun old n -> if n > old then max_int else old);
          }
        in
        let sol =
          Fx.solve ~widen_after:2 ~lattice:widening ~init:0
            ~transfer:(fun _ f -> f)
            ~edge:(fun _ f -> if f = max_int then f else f + 1)
            g
        in
        Alcotest.(check bool) "converged after widening" true sol.Fx.converged);
  ]

(* ---- liveness ------------------------------------------------------------ *)

(* s0 writes tmp; s1 reads tmp into out; s2 overwrites tmp, never read again *)
let dead_tail_write () =
  let g = Graph.create "deadtail" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_array g "out" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N" ];
  let add label body =
    let sid = Graph.add_state g label in
    body (Graph.state g sid);
    sid
  in
  let copy st ~from ~into =
    ignore
      (B.mapped_tasklet g st ~label:("cp_" ^ into)
         ~map:[ ("i", "0:N-1") ]
         ~inputs:[ ("v", B.mem from "i") ]
         ~code:"o = v"
         ~outputs:[ ("o", B.mem into "i") ]
         ())
  in
  let s0 = add "produce" (fun st -> copy st ~from:"x" ~into:"tmp") in
  let s1 = add "consume" (fun st -> copy st ~from:"tmp" ~into:"out") in
  let s2 = add "waste" (fun st -> copy st ~from:"x" ~into:"tmp") in
  ignore (Graph.add_istate_edge g s0 s1);
  ignore (Graph.add_istate_edge g s1 s2);
  (g, s2)

let liveness_tests =
  [
    Alcotest.test_case "unobservable tail write is dead" `Quick (fun () ->
        let g, s2 = dead_tail_write () in
        Alcotest.(check (list (pair int string)))
          "exactly the tail write" [ (s2, "tmp") ] (Analysis.Liveness.dead_writes g);
        match Analysis.Liveness.check g with
        | [ f ] ->
            Alcotest.(check string) "container" "tmp" f.Analysis.Report.container;
            Alcotest.(check bool) "dead-write pass" true (f.pass = Analysis.Report.Dead_write);
            Alcotest.(check bool) "warning severity" true
              (f.severity = Analysis.Report.Warning)
        | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
    Alcotest.test_case "consumed writes stay live" `Quick (fun () ->
        let g, s2 = dead_tail_write () in
        (* wire a reader after the tail write: nothing is dead any more *)
        let s3 = Graph.add_state g "late" in
        ignore
          (B.mapped_tasklet g (Graph.state g s3) ~label:"late_read"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", B.mem "tmp" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem "out" "i") ]
             ());
        ignore (Graph.add_istate_edge g s2 s3);
        Alcotest.(check (list (pair int string))) "no dead writes" []
          (Analysis.Liveness.dead_writes g));
    Alcotest.test_case "fully dead transient is listed" `Quick (fun () ->
        let g = Graph.create "alldead" in
        Graph.add_array g "x" Dtype.F64 [ sym "N" ];
        Graph.add_array g "out" Dtype.F64 [ sym "N" ];
        Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N" ];
        let s0 = Graph.add_state g "w" in
        ignore
          (B.mapped_tasklet g (Graph.state g s0) ~label:"wr"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", B.mem "x" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem "tmp" "i") ]
             ());
        let s1 = Graph.add_state g "r" in
        ignore
          (B.mapped_tasklet g (Graph.state g s1) ~label:"rd"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", B.mem "x" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", B.mem "out" "i") ]
             ());
        (* tmp is written in s0 and read nowhere afterwards; but it IS read
           nowhere at all, which is Defuse's finding — liveness only reports
           containers that are read somewhere, so this one stays quiet here *)
        ignore (Graph.add_istate_edge g s0 s1);
        Alcotest.(check (list (pair int string))) "defuse's case, not ours" []
          (Analysis.Liveness.dead_writes g));
  ]

(* ---- reaching definitions ------------------------------------------------ *)

(* s0 reads tmp before s1 (the only writer) runs *)
let read_before_write () =
  let g = Graph.create "rbw" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_array g "out" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N" ];
  let s0 = Graph.add_state g "early" in
  ignore
    (B.mapped_tasklet g (Graph.state g s0) ~label:"early_read"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", B.mem "tmp" "i") ]
       ~code:"o = v"
       ~outputs:[ ("o", B.mem "out" "i") ]
       ());
  let s1 = Graph.add_state g "late" in
  ignore
    (B.mapped_tasklet g (Graph.state g s1) ~label:"late_write"
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("v", B.mem "x" "i") ]
       ~code:"o = v"
       ~outputs:[ ("o", B.mem "tmp" "i") ]
       ());
  ignore (Graph.add_istate_edge g s0 s1);
  (g, s0)

let reachdef_tests =
  [
    Alcotest.test_case "read before the only write is definite" `Quick (fun () ->
        let g, s0 = read_before_write () in
        (* whole-program def-use is satisfied (tmp is written somewhere) ... *)
        Alcotest.(check int) "defuse is blind to ordering" 0
          (List.length
             (List.filter
                (fun (f : Analysis.Report.finding) -> f.container = "tmp")
                (Analysis.Defuse.check g)));
        (* ... but no write reaches the early read on any path *)
        match Analysis.Reachdef.check g with
        | [ f ] ->
            Alcotest.(check string) "container" "tmp" f.Analysis.Report.container;
            Alcotest.(check int) "flagged in the reading state" s0 f.Analysis.Report.state;
            Alcotest.(check bool) "definite" true (f.severity = Analysis.Report.Error)
        | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
    Alcotest.test_case "write-then-read is clean" `Quick (fun () ->
        let g, _ = dead_tail_write () in
        Alcotest.(check int) "no findings" 0 (List.length (Analysis.Reachdef.check g)));
    Alcotest.test_case "loop-carried transients are not flagged by default" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            match Analysis.Reachdef.check g with
            | [] -> ()
            | f :: _ ->
                Alcotest.failf "%s: unexpected %s" name (Analysis.Report.to_string f))
          (all_workloads ()));
  ]

(* ---- intervals ----------------------------------------------------------- *)

let intervals_tests =
  [
    Alcotest.test_case "loop counter gets symbolic bounds" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let facts = Analysis.Intervals.facts ~symbols:[ ("N", 8); ("T", 3) ] g in
        match List.assoc_opt "t" facts with
        | Some f ->
            Alcotest.(check bool) "has a lower bound" true (f.Analysis.Intervals.lo <> None);
            Alcotest.(check bool) "has an upper bound" true (f.Analysis.Intervals.hi <> None)
        | None -> Alcotest.fail "no fact for the loop counter t");
    Alcotest.test_case "concrete bounds evaluate under pinned parameters" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let symbols = [ ("N", 8); ("T", 3) ] in
        let facts = Analysis.Intervals.facts ~symbols g in
        let bounds = Analysis.Intervals.concrete_bounds ~symbols g facts in
        match List.assoc_opt "t" bounds with
        | Some (Some lo, Some hi) ->
            Alcotest.(check bool) "0 <= t" true (lo >= 0);
            Alcotest.(check bool) "t <= T" true (hi <= 3)
        | _ -> Alcotest.fail "no concrete bounds for t");
    Alcotest.test_case "congruence tracks strides" `Quick (fun () ->
        (* for (k = 0; k < N; k += 2): k stays even *)
        let g = Graph.create "stride" in
        Graph.add_symbol g "N";
        let s0 = Graph.add_state g "init" in
        ignore
          (B.for_loop g ~entry_from:s0 ~var:"k" ~init:Symbolic.Expr.zero
             ~cond:(Symbolic.Cond.Lt (sym "k", sym "N"))
             ~update:(Symbolic.Expr.add (sym "k") (Symbolic.Expr.int 2))
             ~body_label:"body" ~after_label:"done");
        let facts = Analysis.Intervals.facts ~symbols:[ ("N", 8) ] g in
        match List.assoc_opt "k" facts with
        | Some { Analysis.Intervals.cong = Some (m, r); _ } ->
            Alcotest.(check int) "modulus 2" 2 m;
            Alcotest.(check int) "residue 0" 0 r
        | Some f ->
            Alcotest.failf "no stride: %s" (Format.asprintf "%a" Analysis.Intervals.pp_fact f)
        | None -> Alcotest.fail "no fact for k");
  ]

(* ---- change-set audit ---------------------------------------------------- *)

(* edits a state's memlets but declares an empty change set *)
let dishonest_xform () =
  {
    Transforms.Xform.name = "DishonestEdit";
    find =
      (fun g ->
        match Graph.states g with
        | (sid, _) :: _ -> [ Transforms.Xform.dataflow_site ~state:sid ~nodes:[] ~descr:"edit" ]
        | [] -> []);
    apply =
      (fun g site ->
        let st = Graph.state g site.Transforms.Xform.state in
        Transforms.Xform.subst_symbol_in_state st "N" (Symbolic.Expr.int 7);
        Sdfg.Diff.empty);
    certify_hint = None;
  }

let audit_tests =
  [
    Alcotest.test_case "under-declared change set is flagged" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = dishonest_xform () in
        match Analysis.Audit.check_xform g x (List.hd (x.Transforms.Xform.find g)) with
        | Some (f :: _ as fs) ->
            Alcotest.(check bool) "change-set pass" true
              (List.for_all
                 (fun (f : Analysis.Report.finding) -> f.pass = Analysis.Report.Change_set)
                 fs);
            Alcotest.(check bool) "definite" true (f.severity = Analysis.Report.Error)
        | Some [] -> Alcotest.fail "dishonest declaration passed the audit"
        | None -> Alcotest.fail "site went stale");
    Alcotest.test_case "honest declaration passes" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        List.iter
          (fun site ->
            match Analysis.Audit.check_xform g x site with
            | Some [] -> ()
            | Some (f :: _) -> Alcotest.failf "flagged: %s" (Analysis.Report.to_string f)
            | None -> Alcotest.fail "site went stale")
          (x.Transforms.Xform.find g));
    Alcotest.test_case "every registry declaration covers its true diff" `Quick (fun () ->
        (* the audit's false-positive regression: all instances of all
           registered transformations on all workloads must be audit-clean *)
        List.iter
          (fun (pname, g) ->
            List.iter
              (fun (x : Transforms.Xform.t) ->
                List.iter
                  (fun site ->
                    match Analysis.Audit.check_xform g x site with
                    | None | Some [] -> ()
                    | Some (f :: _) ->
                        Alcotest.failf "%s :: %s under-declared: %s" pname
                          x.Transforms.Xform.name (Analysis.Report.to_string f))
                  (x.Transforms.Xform.find g))
              (registry_xforms ()))
          (all_workloads ()));
  ]

(* ---- translation validation upgrades ------------------------------------- *)

let equiv_upgrade_tests =
  [
    Alcotest.test_case "interval facts upgrade Unknown verdicts" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = symbols_of g in
        let upgraded = ref 0 in
        List.iter
          (fun (x : Transforms.Xform.t) ->
            List.iter
              (fun site ->
                match Analysis.Equiv.certify ~use_intervals:false ~symbols g x site with
                | Some (Analysis.Equiv.Unknown _) -> (
                    match Analysis.Equiv.certify ~symbols g x site with
                    | Some (Analysis.Equiv.Equivalent _) -> incr upgraded
                    | _ -> ())
                | _ -> ())
              (x.Transforms.Xform.find g))
          (Transforms.Registry.all_correct ());
        Alcotest.(check bool) "at least one Unknown became Equivalent" true (!upgraded > 0));
    Alcotest.test_case "upgraded certificates still re-check" `Quick (fun () ->
        let g = Workloads.Cloudsc.build () in
        let symbols = symbols_of g in
        let checked = ref 0 in
        List.iter
          (fun (x : Transforms.Xform.t) ->
            List.iter
              (fun site ->
                match
                  ( Analysis.Equiv.certify ~use_intervals:false ~symbols g x site,
                    Analysis.Equiv.certify ~symbols g x site )
                with
                | Some (Analysis.Equiv.Unknown _), Some (Analysis.Equiv.Equivalent cert) ->
                    incr checked;
                    Alcotest.(check bool) "certificate verifies" true
                      (Analysis.Certificate.check cert)
                | _ -> ())
              (x.Transforms.Xform.find g))
          (Transforms.Registry.all_correct ());
        Alcotest.(check bool) "exercised at least one certificate" true (!checked > 0));
  ]

(* ---- determinism and clean-corpus regressions ----------------------------- *)

let mk ~pass ~severity ~state ~container detail =
  Analysis.Report.make ~pass ~severity ~state ~container detail

let regression_tests =
  [
    Alcotest.test_case "finding order is total and deterministic" `Quick (fun () ->
        let fs =
          [
            mk ~pass:Analysis.Report.Race ~severity:Analysis.Report.Warning ~state:2
              ~container:"b" "w1";
            mk ~pass:Analysis.Report.Change_set ~severity:Analysis.Report.Error ~state:0
              ~container:"z" "e1";
            mk ~pass:Analysis.Report.Race ~severity:Analysis.Report.Error ~state:1
              ~container:"a" "e2";
            mk ~pass:Analysis.Report.Dead_write ~severity:Analysis.Report.Warning ~state:2
              ~container:"b" "w2";
          ]
        in
        let sorted = Analysis.Report.sort fs in
        Alcotest.(check bool) "errors first" true
          ((List.hd sorted).Analysis.Report.severity = Analysis.Report.Error);
        (* any permutation sorts to the same list *)
        Alcotest.(check bool) "permutation invariant" true
          (Analysis.Report.sort (List.rev fs) = sorted);
        (* exact duplicates collapse *)
        Alcotest.(check int) "duplicates removed" (List.length sorted)
          (List.length (Analysis.Report.sort (fs @ fs))));
    Alcotest.test_case "zero definite findings on every workload" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            let errors =
              List.filter
                (fun (f : Analysis.Report.finding) -> f.severity = Analysis.Report.Error)
                (Analysis.Oracle.analyze ~symbols:(symbols_of g) g)
            in
            match errors with
            | [] -> ()
            | f :: _ -> Alcotest.failf "%s: %s" name (Analysis.Report.to_string f))
          (all_workloads ()));
    Alcotest.test_case "every fixpoint converges within bounds" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            let iv = Analysis.Intervals.solve ~symbols:(symbols_of g) g in
            let lv = Analysis.Liveness.solve g in
            let rd = Analysis.Reachdef.solve g in
            List.iter
              (fun (pass, (converged, iters)) ->
                Alcotest.(check bool) (name ^ " " ^ pass ^ " converged") true converged;
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s within 16 passes (took %d)" name pass iters)
                  true (iters <= 16))
              [
                ("intervals", (iv.Fx.converged, iv.Fx.iterations));
                ("liveness", (lv.Fx.converged, lv.Fx.iterations));
                ("reachdef", (rd.Fx.converged, rd.Fx.iterations));
              ])
          (all_workloads ()));
  ]

let () =
  Alcotest.run "dataflow"
    [
      ("fixpoint", fixpoint_tests);
      ("liveness", liveness_tests);
      ("reachdef", reachdef_tests);
      ("intervals", intervals_tests);
      ("audit", audit_tests);
      ("equiv-upgrade", equiv_upgrade_tests);
      ("regression", regression_tests);
    ]
