(* The campaign engine: journal round-trips, fork/deadline supervision, seed
   determinism across worker counts, resume, and the corpus regression gate. *)

open Fuzzyflow

let se = Symbolic.Expr.sym

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let config =
  { Difftest.default_config with trials = 5; max_size = 8; concretization = [ ("N", 8) ] }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let replace_once s ~from ~into =
  let n = String.length s and m = String.length from in
  let rec go i = if i + m > n then None else if String.sub s i m = from then Some i else go (i + 1) in
  match go 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ into ^ String.sub s (i + m) (n - i - m)

let good () = Transforms.Map_tiling.make ~tile_size:4 Transforms.Map_tiling.Correct
let bad () = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible

let programs () =
  [ ("scale", Workloads.Npbench.scale ()); ("axpy", Workloads.Npbench.axpy ()) ]

(* a graph whose canonical loop never exits: the step-limit-disabled cutout *)
let spin_graph () =
  let g = Sdfg.Graph.create "spin" in
  let s0 = Sdfg.Graph.add_state g "s0" in
  let _ =
    Builder.Build.for_loop g ~entry_from:s0 ~var:"i" ~init:Symbolic.Expr.zero
      ~cond:(Symbolic.Cond.Ge (se "i", Symbolic.Expr.zero))
      ~update:(Symbolic.Expr.add (se "i") Symbolic.Expr.one)
      ~body_label:"spin" ~after_label:"after"
  in
  g

(* ---------------- journal ---------------- *)

let sample_site = Transforms.Xform.dataflow_site ~state:0 ~nodes:[ 1; 3 ] ~descr:"tile \"x\""

let sample_outcome verdict status =
  {
    Campaign.o_program = "scale";
    o_xform = "MapTiling";
    o_site = sample_site;
    o_status = status;
    o_verdict = verdict;
    o_trials_run = 5;
    o_static_flagged = false;
    o_dep_pairs = 2;
    o_dep_decided = 2;
    o_dep_sampled = 0;
    o_elapsed_s = 0.;
    o_seed = 12345;
  }

let journal_tests =
  [
    Alcotest.test_case "json round-trips nesting and escapes" `Quick (fun () ->
        let open Engine.Journal.Json in
        let v =
          Obj
            [
              ("s", Str "a\"b\\c\nd\tt");
              ("n", Num 3.);
              ("f", Num 0.25);
              ("b", Bool true);
              ("z", Null);
              ("a", Arr [ Num 1.; Str "x"; Obj [ ("k", Bool false) ] ]);
            ]
        in
        Alcotest.(check bool) "round-trip" true (of_string (to_string v) = v);
        Alcotest.(check bool) "rejects garbage" true
          (match of_string "{\"a\": }" with _ -> false | exception _ -> true));
    Alcotest.test_case "every record kind round-trips through parse_line" `Quick (fun () ->
        let h =
          {
            Engine.Journal.seed = 42;
            trials = 5;
            j = 4;
            deadline_s = 30.;
            programs = [ "scale"; "axpy" ];
            xforms = [ "MapTiling" ];
          }
        in
        Alcotest.(check bool) "header" true
          (Engine.Journal.parse_line (Engine.Journal.header_line h) = Engine.Journal.Header h);
        let f =
          {
            Engine.Journal.total = 4;
            failed = 2;
            proved = 0;
            killed = 1;
            trials_spent = 15;
            wall_s = 1.5;
            instances_per_s = 2.6666;
            retries = 3;
            quarantined = 1;
            worker_lost = 2;
            degraded = true;
            recovered_records = 1;
          }
        in
        Alcotest.(check bool) "footer" true
          (Engine.Journal.parse_line (Engine.Journal.footer_line f) = Engine.Journal.Footer f);
        List.iter
          (fun o ->
            match Engine.Journal.parse_line (Engine.Journal.instance_line o) with
            | Engine.Journal.Instance o' ->
                Alcotest.(check bool) "instance" true (o' = o)
            | _ -> Alcotest.fail "not an instance record")
          [
            sample_outcome Campaign.O_passed Campaign.Completed;
            sample_outcome Campaign.O_proved Campaign.Completed;
            sample_outcome
              (Campaign.O_failed
                 { klass = Difftest.Input_dependent; first_trial = 2; failing_trials = 3 })
              Campaign.Completed;
            sample_outcome Campaign.O_killed (Campaign.Timed_out { deadline_s = 30. });
            sample_outcome Campaign.O_killed (Campaign.Crashed { detail = "signal 11" });
          ]);
    Alcotest.test_case "load drops a torn tail" `Quick (fun () ->
        let path = Filename.temp_file "ffjournal" ".jsonl" in
        let oc = open_out path in
        output_string oc
          (Engine.Journal.header_line
             {
               Engine.Journal.seed = 1;
               trials = 1;
               j = 1;
               deadline_s = 1.;
               programs = [];
               xforms = [];
             });
        output_char oc '\n';
        output_string oc
          (Engine.Journal.instance_line (sample_outcome Campaign.O_passed Campaign.Completed));
        output_char oc '\n';
        output_string oc "{\"type\":\"instance\",\"id\":\"torn";
        close_out oc;
        let records = Engine.Journal.load path in
        Sys.remove path;
        Alcotest.(check int) "two clean records" 2 (List.length records);
        Alcotest.(check int) "one completed" 1 (List.length (Engine.Journal.completed records)));
    Alcotest.test_case "load of a missing journal is empty" `Quick (fun () ->
        Alcotest.(check int) "empty" 0
          (List.length (Engine.Journal.load "/nonexistent/journal.jsonl")));
    Alcotest.test_case "a torn tail is reported through warn" `Quick (fun () ->
        let path = Filename.temp_file "ffjournal" ".jsonl" in
        let oc = open_out path in
        output_string oc
          (Engine.Journal.instance_line (sample_outcome Campaign.O_passed Campaign.Completed));
        output_char oc '\n';
        output_string oc "{\"type\":\"instance\",\"id\":\"torn-mid-wri";
        close_out oc;
        let warnings = ref [] in
        let records = Engine.Journal.load ~warn:(fun m -> warnings := m :: !warnings) path in
        Sys.remove path;
        Alcotest.(check int) "clean record kept" 1 (List.length records);
        Alcotest.(check int) "one warning" 1 (List.length !warnings);
        let w = List.hd !warnings in
        Alcotest.(check bool) "warning names the file" true (contains w path);
        Alcotest.(check bool) "warning carries the line number" true (contains w ":2:");
        Alcotest.(check bool) "warning previews the torn line" true (contains w "torn-mid-wri"));
    Alcotest.test_case "load_resume repairs a torn tail and counts the recovery" `Quick
      (fun () ->
        let path = Filename.temp_file "ffresume" ".jsonl" in
        let oc = open_out path in
        output_string oc
          (Engine.Journal.instance_line (sample_outcome Campaign.O_passed Campaign.Completed));
        output_char oc '\n';
        output_string oc
          (Engine.Journal.instance_line (sample_outcome Campaign.O_proved Campaign.Completed));
        output_char oc '\n';
        output_string oc "{\"type\":\"instance\",\"id\":\"torn";
        close_out oc;
        let loaded = Engine.Journal.load_resume path in
        Alcotest.(check int) "clean records kept" 2 (List.length loaded.Engine.Journal.records);
        Alcotest.(check int) "tear counted" 1 loaded.Engine.Journal.recovered_records;
        (* repair truncated the torn record on disk: a second load is clean *)
        let again = Engine.Journal.load_resume path in
        Sys.remove path;
        Alcotest.(check int) "repaired on disk" 0 again.Engine.Journal.recovered_records;
        Alcotest.(check int) "records stable" 2 (List.length again.Engine.Journal.records));
    Alcotest.test_case "load_resume refuses mid-file corruption with a typed error" `Quick
      (fun () ->
        let path = Filename.temp_file "ffcorrupt" ".jsonl" in
        let oc = open_out path in
        output_string oc "{\"type\":\"instance\",\"id\":\"damaged-in-place\n";
        output_string oc
          (Engine.Journal.instance_line (sample_outcome Campaign.O_passed Campaign.Completed));
        output_char oc '\n';
        close_out oc;
        (match Engine.Journal.load_resume path with
        | _ -> Alcotest.fail "mid-file corruption accepted"
        | exception Engine.Journal.Corrupt { lineno; path = p; _ } ->
            Alcotest.(check int) "corrupt line identified" 1 lineno;
            Alcotest.(check string) "path carried" path p);
        Sys.remove path);
  ]

(* ---------------- worker supervision ---------------- *)

let worker_tests =
  [
    Alcotest.test_case "supervise returns the child's value" `Quick (fun () ->
        match Engine.Worker.supervise ~deadline_s:10. (fun () -> 21 * 2) with
        | Ok v -> Alcotest.(check int) "value" 42 v
        | Error _ -> Alcotest.fail "expected Ok");
    Alcotest.test_case "child exiting without a result is Crashed, not an exception" `Quick
      (fun () ->
        match Engine.Worker.supervise ~deadline_s:10. (fun () -> Unix._exit 0) with
        | Error (Engine.Worker.Crashed { detail }) ->
            Alcotest.(check bool) "detail says no result" true
              (contains detail "without reporting")
        | Ok _ -> Alcotest.fail "expected Crashed"
        | Error (Engine.Worker.Timed_out _) -> Alcotest.fail "expected Crashed, got Timed_out");
    Alcotest.test_case "corrupt marshal result file reads as `Corrupt" `Quick (fun () ->
        let path = Filename.temp_file "ffresult" ".result" in
        let oc = open_out_bin path in
        output_string oc "this is not a marshalled value";
        close_out oc;
        (match (Engine.Worker.read_result path : [ `Result of (int, string) result | `Missing | `Corrupt ]) with
        | `Corrupt -> ()
        | `Missing -> Alcotest.fail "expected `Corrupt, got `Missing"
        | `Result _ -> Alcotest.fail "expected `Corrupt, got a value");
        Alcotest.(check bool) "result file consumed" false (Sys.file_exists path));
    Alcotest.test_case "truncated marshal result file reads as `Corrupt" `Quick (fun () ->
        let path = Filename.temp_file "ffresult" ".result" in
        let oc = open_out_bin path in
        Marshal.to_channel oc (Ok 42 : (int, string) result) [];
        close_out oc;
        let ic = open_in_bin path in
        let full = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 (String.length full - 1));
        close_out oc;
        (match (Engine.Worker.read_result path : [ `Result of (int, string) result | `Missing | `Corrupt ]) with
        | `Corrupt -> ()
        | `Missing -> Alcotest.fail "expected `Corrupt, got `Missing"
        | `Result _ -> Alcotest.fail "truncated payload accepted"));
    Alcotest.test_case "missing result file reads as `Missing" `Quick (fun () ->
        match
          (Engine.Worker.read_result "/nonexistent/worker.result"
            : [ `Result of (int, string) result | `Missing | `Corrupt ])
        with
        | `Missing -> ()
        | `Corrupt | `Result _ -> Alcotest.fail "expected `Missing");
    Alcotest.test_case "step-limit-disabled looping cutout is killed at the deadline" `Quick
      (fun () ->
        let g = spin_graph () in
        match
          Engine.Worker.supervise ~deadline_s:0.5 (fun () ->
              Interp.Exec.run
                ~config:{ Interp.Exec.default_config with step_limit = max_int }
                g ~symbols:[] ~inputs:[])
        with
        | Error (Engine.Worker.Timed_out { deadline_s }) ->
            Alcotest.(check (float 1e-9)) "deadline recorded" 0.5 deadline_s
        | Ok _ -> Alcotest.fail "interpreter should never finish"
        | Error (Engine.Worker.Crashed { detail }) -> Alcotest.fail ("crashed: " ^ detail));
    Alcotest.test_case "a raising child is a crash with detail" `Quick (fun () ->
        match Engine.Worker.supervise ~deadline_s:10. (fun () -> failwith "boom") with
        | Error (Engine.Worker.Crashed { detail }) ->
            Alcotest.(check bool) "mentions exception" true (contains detail "boom")
        | _ -> Alcotest.fail "expected Crashed");
    Alcotest.test_case "a child dying without reporting is a crash" `Quick (fun () ->
        match Engine.Worker.supervise ~deadline_s:10. (fun () -> Unix._exit 7) with
        | Error (Engine.Worker.Crashed _) -> ()
        | _ -> Alcotest.fail "expected Crashed");
    Alcotest.test_case "map_pool keeps input order under parallelism" `Quick (fun () ->
        let thunks =
          Array.init 6 (fun i ->
              fun () ->
                Unix.sleepf (if i mod 2 = 0 then 0.05 else 0.01);
                i * 10)
        in
        let rs = Engine.Worker.map_pool ~j:3 ~deadline_s:10. thunks in
        Array.iteri
          (fun i r ->
            match r with
            | Ok v -> Alcotest.(check int) "ordered" (i * 10) v
            | Error _ -> Alcotest.fail "unexpected failure")
          rs);
    Alcotest.test_case "sleep-waiting pool still kills close to the deadline" `Quick (fun () ->
        let t0 = Unix.gettimeofday () in
        let rs =
          Engine.Worker.map_pool ~j:2 ~deadline_s:0.5
            [|
              (fun () ->
                Unix.sleep 30;
                0);
              (fun () -> 1);
            |]
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        (match rs.(0) with
        | Error (Engine.Worker.Timed_out { deadline_s }) ->
            Alcotest.(check (float 1e-9)) "deadline recorded" 0.5 deadline_s
        | _ -> Alcotest.fail "expected Timed_out");
        (match rs.(1) with
        | Ok 1 -> ()
        | _ -> Alcotest.fail "fast sibling unaffected");
        (* the reap loop sleeps on the SIGCHLD self-pipe bounded by the next
           child deadline — overrun must stay close to the 0.5s budget, not
           drift to the old busy-poll granularity or a full select cap *)
        Alcotest.(check bool)
          (Printf.sprintf "killed near the deadline (%.2fs elapsed)" elapsed)
          true
          (elapsed >= 0.5 && elapsed < 1.5));
  ]

(* ---------------- engine campaigns ---------------- *)

let verdict_key (o : Campaign.outcome) =
  (o.o_program, o.o_xform, Transforms.Xform.site_slug o.o_site, o.o_verdict, o.o_seed)

let engine_tests =
  [
    Alcotest.test_case "verdicts identical for -j 1, -j 4 and the serial path" `Quick (fun () ->
        let xforms = [ good (); bad () ] in
        let run j =
          Engine.Worker.run_campaign
            ~options:{ Engine.Worker.default_options with j }
            ~config (programs ()) xforms
        in
        let c1 = run 1 and c4 = run 4 in
        let serial = Campaign.run ~config (programs ()) xforms in
        let keys c = List.map verdict_key c.Campaign.outcomes in
        Alcotest.(check bool) "j1 = j4" true (keys c1 = keys c4);
        Alcotest.(check bool) "j4 = serial" true (keys c4 = keys serial);
        Alcotest.(check int) "failures found" 2 c4.Campaign.total_failed);
    Alcotest.test_case "hung instance is killed and reported as an outcome" `Quick (fun () ->
        let hang =
          {
            Transforms.Xform.name = "Hang(test-only)";
            find = (fun _ -> [ Transforms.Xform.dataflow_site ~state:0 ~nodes:[ 1 ] ~descr:"hang" ]);
            apply =
              (fun _ _ ->
                while true do
                  ignore (Sys.opaque_identity ())
                done;
                { Sdfg.Diff.nodes = []; states = [] });
            certify_hint = None;
          }
        in
        let path = Filename.temp_file "ffhang" ".jsonl" in
        let c =
          Engine.Worker.run_campaign
            ~options:
              {
                Engine.Worker.default_options with
                j = 2;
                deadline_s = 0.5;
                journal_path = Some path;
              }
            ~config
            [ ("scale", Workloads.Npbench.scale ()) ]
            [ good (); hang ]
        in
        Alcotest.(check int) "one killed" 1 c.Campaign.total_killed;
        Alcotest.(check int) "killed counts as failed" 1 c.Campaign.total_failed;
        let row =
          List.find (fun (r : Campaign.row) -> r.xform_name = "Hang(test-only)") c.Campaign.rows
        in
        Alcotest.(check int) "row killed" 1 row.Campaign.killed;
        let killed_outcome =
          List.find (fun (o : Campaign.outcome) -> o.o_verdict = Campaign.O_killed)
            c.Campaign.outcomes
        in
        (match killed_outcome.Campaign.o_status with
        | Campaign.Timed_out { deadline_s } ->
            Alcotest.(check (float 1e-9)) "deadline" 0.5 deadline_s
        | _ -> Alcotest.fail "expected Timed_out status");
        (* and the journal agrees *)
        let records = Engine.Journal.load path in
        Sys.remove path;
        let journaled_killed =
          List.exists
            (function
              | Engine.Journal.Instance o -> o.Campaign.o_verdict = Campaign.O_killed
              | _ -> false)
            records
        in
        Alcotest.(check bool) "journaled as killed" true journaled_killed);
    Alcotest.test_case "resume replays journaled outcomes instead of re-fuzzing" `Quick
      (fun () ->
        let xforms = [ good (); bad () ] in
        let path = Filename.temp_file "ffresume" ".jsonl" in
        let options j =
          { Engine.Worker.default_options with j; journal_path = Some path }
        in
        let full =
          Engine.Worker.run_campaign ~options:(options 2) ~config (programs ()) xforms
        in
        let read_lines p =
          let ic = open_in p in
          let ls = ref [] in
          (try
             while true do
               ls := input_line ic :: !ls
             done
           with End_of_file -> ());
          close_in ic;
          List.rev !ls
        in
        let all_lines = read_lines path in
        let complete = List.filter (fun l -> l <> "") all_lines in
        (* interrupt after two instances — and tamper one journaled verdict so
           a re-fuzz (which would restore "pass") is detectable *)
        let truncated =
          match complete with
          | header :: i1 :: i2 :: _ ->
              let tampered =
                replace_once i1 ~from:"\"verdict\":\"pass\"" ~into:"\"verdict\":\"proved\""
              in
              [ header; tampered; i2 ]
          | _ -> Alcotest.fail "journal too short"
        in
        let oc = open_out path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          truncated;
        close_out oc;
        let resumed =
          Engine.Worker.run_campaign
            ~options:{ (options 2) with resume = true }
            ~config (programs ()) xforms
        in
        Sys.remove path;
        Alcotest.(check int) "all instances accounted for"
          full.Campaign.total_instances resumed.Campaign.total_instances;
        (* the tampered verdict survives: that instance was replayed from the
           journal, not re-executed *)
        Alcotest.(check int) "tampered instance not re-fuzzed" 1
          resumed.Campaign.total_proved;
        Alcotest.(check int) "fresh instances still fuzzed"
          full.Campaign.total_failed resumed.Campaign.total_failed);
    Alcotest.test_case "resume with a different seed is refused" `Quick (fun () ->
        let path = Filename.temp_file "ffseed" ".jsonl" in
        ignore
          (Engine.Worker.run_campaign
             ~options:{ Engine.Worker.default_options with journal_path = Some path }
             ~config
             [ ("scale", Workloads.Npbench.scale ()) ]
             [ good () ]);
        (match
           Engine.Worker.run_campaign
             ~options:
               { Engine.Worker.default_options with journal_path = Some path; resume = true }
             ~config:{ config with Difftest.seed = config.Difftest.seed + 1 }
             [ ("scale", Workloads.Npbench.scale ()) ]
             [ good () ]
         with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
        Sys.remove path);
    Alcotest.test_case "resume across a torn tail completes and counts the recovery" `Quick
      (fun () ->
        let xforms = [ good (); bad () ] in
        let path = Filename.temp_file "fftear" ".jsonl" in
        let options = { Engine.Worker.default_options with journal_path = Some path } in
        let full = Engine.Worker.run_campaign ~options ~config (programs ()) xforms in
        (* simulate a crash mid-append: a partial record with no newline *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "{\"type\":\"instance\",\"id\":\"crashed-mid-wri";
        close_out oc;
        let resumed =
          Engine.Worker.run_campaign
            ~options:{ options with resume = true }
            ~config (programs ()) xforms
        in
        Alcotest.(check int) "all instances accounted for" full.Campaign.total_instances
          resumed.Campaign.total_instances;
        Alcotest.(check int) "verdict totals preserved" full.Campaign.total_failed
          resumed.Campaign.total_failed;
        (* the repair is journaled: the resumed run's footer records it *)
        let footers =
          List.filter_map
            (function Engine.Journal.Footer f -> Some f | _ -> None)
            (Engine.Journal.load path)
        in
        Sys.remove path;
        match List.rev footers with
        | last :: _ ->
            Alcotest.(check int) "recovered record counted" 1
              last.Engine.Journal.recovered_records
        | [] -> Alcotest.fail "no footer after resume");
  ]

(* ---------------- corpus ---------------- *)

let failing_testcase () =
  let g = Workloads.Npbench.scale () in
  let x = bad () in
  let site = List.hd (x.find g) in
  let r = Difftest.test_instance ~config g x site in
  match r.Difftest.verdict with
  | Difftest.Fail f -> (
      match Testcase.of_report ~config ~original:g r with
      | Some tc -> (x, site, f.Difftest.klass, tc)
      | None -> Alcotest.fail "no test case from failing report")
  | Difftest.Pass -> Alcotest.fail "vectorization should fail on scale"

let corpus_tests =
  [
    Alcotest.test_case "save admits a reproducing case once" `Quick (fun () ->
        let dir = temp_dir "ffcorpus" in
        let x, site, klass, tc = failing_testcase () in
        let catalog = [ good (); bad () ] in
        let save () =
          Engine.Corpus.save ~dir ~catalog ~program:"scale" ~xform:x.Transforms.Xform.name
            ~klass ~site tc
        in
        (match save () with
        | Engine.Corpus.Saved _ -> ()
        | _ -> Alcotest.fail "expected Saved");
        (match save () with
        | Engine.Corpus.Duplicate _ -> ()
        | _ -> Alcotest.fail "expected Duplicate");
        let entries = Engine.Corpus.entries dir in
        Alcotest.(check int) "one entry" 1 (List.length entries);
        let m = List.hd entries in
        Alcotest.(check string) "xform recorded" x.Transforms.Xform.name
          m.Engine.Corpus.xform;
        rm_rf dir);
    Alcotest.test_case "replay reproduces a saved failing case" `Quick (fun () ->
        let dir = temp_dir "ffreplay" in
        let x, site, klass, tc = failing_testcase () in
        let catalog = [ good (); bad () ] in
        (match
           Engine.Corpus.save ~dir ~catalog ~program:"scale" ~xform:x.Transforms.Xform.name
             ~klass ~site tc
         with
        | Engine.Corpus.Saved _ -> ()
        | _ -> Alcotest.fail "expected Saved");
        (match Engine.Corpus.replay ~catalog dir with
        | [ o ] -> Alcotest.(check bool) "reproduced" true o.Engine.Corpus.reproduced
        | os -> Alcotest.fail (Printf.sprintf "expected one outcome, got %d" (List.length os)));
        rm_rf dir);
    Alcotest.test_case "entries are sharded by signature prefix" `Quick (fun () ->
        let dir = temp_dir "ffshard" in
        let x, site, klass, tc = failing_testcase () in
        let catalog = [ good (); bad () ] in
        let entry_dir =
          match
            Engine.Corpus.save ~dir ~catalog ~program:"scale" ~xform:x.Transforms.Xform.name
              ~klass ~site tc
          with
          | Engine.Corpus.Saved d -> d
          | _ -> Alcotest.fail "expected Saved"
        in
        let sig_ = (List.hd (Engine.Corpus.entries dir)).Engine.Corpus.signature in
        let shard = String.sub sig_ 0 2 in
        Alcotest.(check string) "entry under dir/<prefix>/<signature>"
          (Filename.concat (Filename.concat dir shard) sig_)
          entry_dir;
        Alcotest.(check bool) "shard dir exists" true
          (Sys.is_directory (Filename.concat dir shard));
        rm_rf dir);
    Alcotest.test_case "legacy flat layout is read and lazily migrated" `Quick (fun () ->
        let dir = temp_dir "fflegacy" in
        let x, site, klass, tc = failing_testcase () in
        let catalog = [ good (); bad () ] in
        (match
           Engine.Corpus.save ~dir ~catalog ~program:"scale" ~xform:x.Transforms.Xform.name
             ~klass ~site tc
         with
        | Engine.Corpus.Saved _ -> ()
        | _ -> Alcotest.fail "expected Saved");
        (* demote the sharded entry to the flat layout an older version wrote *)
        let m = List.hd (Engine.Corpus.entries dir) in
        let sig_ = m.Engine.Corpus.signature in
        let shard = Filename.concat dir (String.sub sig_ 0 2) in
        Unix.rename (Filename.concat shard sig_) (Filename.concat dir sig_);
        Unix.rmdir shard;
        Alcotest.(check int) "flat entry listed" 1 (List.length (Engine.Corpus.entries dir));
        (* a duplicate save must see the flat entry, not resave it *)
        (match
           Engine.Corpus.save ~dir ~catalog ~program:"scale" ~xform:x.Transforms.Xform.name
             ~klass ~site tc
         with
        | Engine.Corpus.Duplicate _ -> ()
        | _ -> Alcotest.fail "expected Duplicate against flat entry");
        (* touching the entry migrated it into its shard *)
        Alcotest.(check bool) "entry migrated into shard" true
          (Sys.is_directory (Filename.concat shard sig_));
        Alcotest.(check bool) "flat path gone" false
          (Sys.file_exists (Filename.concat dir sig_));
        (match Engine.Corpus.replay ~catalog dir with
        | [ o ] -> Alcotest.(check bool) "replay after migration" true o.Engine.Corpus.reproduced
        | os -> Alcotest.fail (Printf.sprintf "expected one outcome, got %d" (List.length os)));
        rm_rf dir);
    Alcotest.test_case "signature ignores workload identity but not the bug" `Quick (fun () ->
        let x = bad () in
        let g = Workloads.Npbench.scale () in
        let site = List.hd (x.Transforms.Xform.find g) in
        let r = Difftest.test_instance ~config g x site in
        let cut = r.Difftest.cutout in
        let s1 = Engine.Corpus.signature ~xform:"X" ~klass:Difftest.Semantics cut in
        let s2 = Engine.Corpus.signature ~xform:"X" ~klass:Difftest.Input_dependent cut in
        let s3 = Engine.Corpus.signature ~xform:"Y" ~klass:Difftest.Semantics cut in
        Alcotest.(check bool) "class distinguishes" true (s1 <> s2);
        Alcotest.(check bool) "xform distinguishes" true (s1 <> s3);
        Alcotest.(check string) "deterministic" s1
          (Engine.Corpus.signature ~xform:"X" ~klass:Difftest.Semantics cut));
  ]

let () =
  Alcotest.run "engine"
    [
      ("journal", journal_tests);
      ("worker", worker_tests);
      ("campaign", engine_tests);
      ("corpus", corpus_tests);
    ]
