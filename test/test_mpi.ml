(* Simulated collectives. *)

let farr = Alcotest.(array (float 1e-12))

let mpi_tests =
  [
    Alcotest.test_case "bcast copies root to all" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 3 in
        let bufs = [| [| 1.; 2. |]; [| 0.; 0. |]; [| 0.; 0. |] |] in
        Mpi_sim.Mpi.bcast c ~root:0 bufs;
        Array.iter (fun b -> Alcotest.check farr "same" [| 1.; 2. |] b) bufs);
    Alcotest.test_case "allreduce sums elementwise" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 3 in
        let bufs = [| [| 1.; 0. |]; [| 2.; 1. |]; [| 3.; 2. |] |] in
        Mpi_sim.Mpi.allreduce_sum c bufs;
        Array.iter (fun b -> Alcotest.check farr "sum" [| 6.; 3. |] b) bufs);
    Alcotest.test_case "scatter then gather round-trips" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 2 in
        let src = [| 1.; 2.; 3.; 4. |] in
        let bufs = [| Array.make 2 0.; Array.make 2 0. |] in
        Mpi_sim.Mpi.scatter c ~root:0 ~src bufs;
        Alcotest.check farr "rank1 chunk" [| 3.; 4. |] bufs.(1);
        let dst = Array.make 4 0. in
        Mpi_sim.Mpi.gather c ~root:0 bufs ~dst;
        Alcotest.check farr "roundtrip" src dst);
    Alcotest.test_case "size mismatch rejected" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 2 in
        match Mpi_sim.Mpi.allreduce_sum c [| [| 1. |]; [| 1.; 2. |] |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    Alcotest.test_case "zero ranks rejected" `Quick (fun () ->
        match Mpi_sim.Mpi.create 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    Alcotest.test_case "message cost accounting" `Quick (fun () ->
        let c = Mpi_sim.Mpi.create 4 in
        Alcotest.(check int) "bcast" 3 (Mpi_sim.Mpi.bcast_messages c);
        Alcotest.(check int) "allreduce" 6 (Mpi_sim.Mpi.allreduce_messages c));
  ]

(* The injectable delivery-layer faults: transient disturbances must heal to
   a bit-identical result with the recovery visible in the stats; persistent
   drop/corrupt must exhaust the retry budget and surface a typed fault. *)

(* bcast then allreduce over 4 ranks — enough traffic that every victim
   sequence number below ~18 lands on a real message *)
let scenario c =
  let bufs = Array.init 4 (fun r -> Array.init 8 (fun i -> float_of_int ((r * 8) + i) *. 0.5)) in
  Mpi_sim.Mpi.bcast c ~root:0 bufs;
  Mpi_sim.Mpi.allreduce_sum c bufs;
  bufs

let clean_result () = scenario (Mpi_sim.Mpi.create 4)

let fault_tests =
  [
    Alcotest.test_case "transient faults heal bit-identically" `Quick (fun () ->
        let reference = clean_result () in
        List.iter
          (fun kind ->
            let policy = { Mpi_sim.Mpi.kind; victim = 2; persistent = false; seed = 5 } in
            let c = Mpi_sim.Mpi.create ~policy 4 in
            let bufs = scenario c in
            Array.iteri
              (fun r b ->
                Alcotest.check farr
                  (Mpi_sim.Mpi.fault_kind_to_string kind ^ " rank " ^ string_of_int r)
                  reference.(r) b)
              bufs;
            let s = Mpi_sim.Mpi.stats c in
            Alcotest.(check bool)
              (Mpi_sim.Mpi.fault_kind_to_string kind ^ " recovery visible")
              true (s.Mpi_sim.Mpi.healed > 0))
          [ Mpi_sim.Mpi.Drop; Mpi_sim.Mpi.Duplicate; Mpi_sim.Mpi.Reorder; Mpi_sim.Mpi.Corrupt ]);
    Alcotest.test_case "drop and corrupt cost retransmits and backoff" `Quick (fun () ->
        List.iter
          (fun kind ->
            let policy = { Mpi_sim.Mpi.kind; victim = 1; persistent = false; seed = 3 } in
            let c = Mpi_sim.Mpi.create ~policy 4 in
            ignore (scenario c);
            let s = Mpi_sim.Mpi.stats c in
            Alcotest.(check bool) "retransmitted" true (s.Mpi_sim.Mpi.retransmits > 0);
            Alcotest.(check bool) "backoff spent" true (s.Mpi_sim.Mpi.backoff > 0))
          [ Mpi_sim.Mpi.Drop; Mpi_sim.Mpi.Corrupt ]);
    Alcotest.test_case "persistent drop/corrupt raise a typed fault" `Quick (fun () ->
        List.iter
          (fun kind ->
            let policy = { Mpi_sim.Mpi.kind; victim = 0; persistent = true; seed = 7 } in
            let c = Mpi_sim.Mpi.create ~policy 4 in
            match scenario c with
            | exception Mpi_sim.Mpi.Mpi_fault { kind = k; message; retries } ->
                Alcotest.(check bool) "same kind" true (k = kind);
                Alcotest.(check int) "victim message" 0 message;
                Alcotest.(check int) "budget exhausted" Mpi_sim.Mpi.max_retries retries
            | _ -> Alcotest.fail (Mpi_sim.Mpi.fault_kind_to_string kind ^ ": expected Mpi_fault"))
          [ Mpi_sim.Mpi.Drop; Mpi_sim.Mpi.Corrupt ]);
    Alcotest.test_case "persistent duplicate and reorder still heal" `Quick (fun () ->
        let reference = clean_result () in
        List.iter
          (fun kind ->
            let policy = { Mpi_sim.Mpi.kind; victim = 1; persistent = true; seed = 2 } in
            let c = Mpi_sim.Mpi.create ~policy 4 in
            let bufs = scenario c in
            Array.iteri
              (fun r b ->
                Alcotest.check farr
                  (Mpi_sim.Mpi.fault_kind_to_string kind ^ " rank " ^ string_of_int r)
                  reference.(r) b)
              bufs)
          [ Mpi_sim.Mpi.Duplicate; Mpi_sim.Mpi.Reorder ]);
    Alcotest.test_case "a victim past the traffic is a clean run" `Quick (fun () ->
        let reference = clean_result () in
        let policy =
          { Mpi_sim.Mpi.kind = Mpi_sim.Mpi.Drop; victim = 100_000; persistent = true; seed = 0 }
        in
        let c = Mpi_sim.Mpi.create ~policy 4 in
        let bufs = scenario c in
        Array.iteri (fun r b -> Alcotest.check farr ("rank " ^ string_of_int r) reference.(r) b) bufs;
        let s = Mpi_sim.Mpi.stats c in
        Alcotest.(check int) "no retransmits" 0 s.Mpi_sim.Mpi.retransmits;
        Alcotest.(check int) "nothing healed" 0 s.Mpi_sim.Mpi.healed);
  ]

let () = Alcotest.run "mpi_sim" [ ("collectives", mpi_tests); ("faults", fault_tests) ]
