(* Builder API: wiring validity, loop patterns, propagation of outer memlets. *)

open Sdfg

let se = Symbolic.Expr.sym

let builder_tests =
  [
    Alcotest.test_case "mapped tasklet validates" `Quick (fun () ->
        let g = Workloads.Npbench.axpy () in
        Alcotest.(check int) "valid" 0 (List.length (Validate.check g)));
    Alcotest.test_case "plain tasklet (no map) validates" `Quick (fun () ->
        let g = Workloads.Npbench.alias_chain () in
        Alcotest.(check int) "valid" 0 (List.length (Validate.check g)));
    Alcotest.test_case "input_nodes reuse access nodes" `Quick (fun () ->
        let g = Workloads.Npbench.atax () in
        let st = Graph.state g (Graph.start_state g) in
        (* tmp has exactly one access node reused between producer/consumer *)
        Alcotest.(check int) "tmp nodes" 1 (List.length (State.access_nodes st "tmp")));
    Alcotest.test_case "outer memlets are propagated" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let st = Graph.state g (Graph.start_state g) in
        let entry =
          List.find (fun id -> Node.is_map_entry (State.node st id)) (State.node_ids st)
        in
        let outer =
          List.find
            (fun (e : State.edge) ->
              match e.memlet with Some m -> m.data = "x" | None -> false)
            (State.in_edges st entry)
        in
        match outer.memlet with
        | Some m ->
            let env = Symbolic.Expr.Env.of_list [ ("N", 9) ] in
            Alcotest.(check int) "full container" 9 (Symbolic.Subset.volume_eval env m.subset)
        | None -> Alcotest.fail "missing outer memlet");
    Alcotest.test_case "for_loop pattern recognized" `Quick (fun () ->
        let g = Graph.create "l" in
        let s0 = Graph.add_state g "s0" in
        let guard, body, _ =
          Builder.Build.for_loop g ~entry_from:s0 ~var:"i" ~init:Symbolic.Expr.zero
            ~cond:(Symbolic.Cond.Lt (se "i", se "N"))
            ~update:(Symbolic.Expr.add (se "i") Symbolic.Expr.one)
            ~body_label:"b" ~after_label:"a"
        in
        match Transforms.Xform.find_loops g with
        | [ l ] ->
            Alcotest.(check int) "guard" guard l.guard;
            Alcotest.(check int) "body" body l.body;
            Alcotest.(check string) "var" "i" l.var
        | l -> Alcotest.fail (Printf.sprintf "expected 1 loop, got %d" (List.length l)));
    Alcotest.test_case "copy requires equal volumes at runtime" `Quick (fun () ->
        let g = Graph.create "cp" in
        Graph.add_array g "a" Dtype.F64 [ Symbolic.Expr.int 4 ];
        Graph.add_array g "b" Dtype.F64 [ Symbolic.Expr.int 2 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore (Builder.Build.copy g st ~src:"a" ~dst:"b" ());
        match Interp.Exec.run g ~symbols:[] ~inputs:[ ("a", Array.make 4 1.) ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected volume mismatch fault");
    Alcotest.test_case "library helper wires connectors" `Quick (fun () ->
        let g = Workloads.Npbench.mm_lib () in
        Alcotest.(check int) "valid" 0 (List.length (Validate.check g)));
    Alcotest.test_case "full memlet helper covers container" `Quick (fun () ->
        let g = Workloads.Npbench.mm_lib () in
        let m = Builder.Build.full g "A" in
        let env = Symbolic.Expr.Env.of_list [ ("N", 5) ] in
        Alcotest.(check int) "vol" 25 (Symbolic.Subset.volume_eval env m.subset));
  ]

module Ns = Builder.Build.Namespace

let namespace_tests =
  [
    Alcotest.test_case "of_graph reserves every existing name" `Quick (fun () ->
        let g = Workloads.Npbench.atax () in
        let ns = Ns.of_graph g in
        List.iter
          (fun c -> Alcotest.(check bool) ("container " ^ c) true (Ns.mem ns c))
          (List.map fst (Graph.containers g));
        List.iter
          (fun s -> Alcotest.(check bool) ("symbol " ^ s) true (Ns.mem ns s))
          (Graph.symbols g));
    Alcotest.test_case "fresh never returns a taken name" `Quick (fun () ->
        let g = Workloads.Npbench.atax () in
        let ns = Ns.of_graph g in
        let seen = Hashtbl.create 64 in
        List.iter (fun c -> Hashtbl.replace seen c ()) (List.map fst (Graph.containers g));
        for _ = 1 to 50 do
          List.iter
            (fun base ->
              let n = Ns.fresh ns base in
              Alcotest.(check bool) ("unique " ^ n) false (Hashtbl.mem seen n);
              Hashtbl.replace seen n ())
            [ "tmp"; "t"; "x"; "i" ]
        done);
    Alcotest.test_case "composition under one namespace is collision-free" `Quick (fun () ->
        (* two rounds of fragment emission over the same graph, all names
           drawn from one namespace: the result must validate (duplicate
           container names would fail add_array, duplicate labels confuse
           nothing but uniqueness is checked above) *)
        let g = Graph.create "compose" in
        Graph.add_symbol g "N";
        Graph.add_array g "x" Dtype.F64 [ se "N" ];
        let s = Graph.state g (Graph.add_state g "s0") in
        let ns = Ns.of_graph g in
        let src = ref "x" in
        for _ = 1 to 8 do
          let out = Ns.fresh ns "t" in
          Graph.add_array g ~transient:false out Dtype.F64 [ se "N" ];
          let m =
            Builder.Build.mapped_tasklet g s ~label:(Ns.fresh ns "frag")
              ~map:[ ("i", "0:N-1") ]
              ~inputs:[ ("xv", Builder.Build.mem !src "i") ]
              ~code:"o = xv + 1.0"
              ~outputs:[ ("o", Builder.Build.mem out "i") ]
              ()
          in
          ignore m;
          src := out
        done;
        Alcotest.(check int) "valid" 0 (List.length (Validate.check g)));
    Alcotest.test_case "reserve claims a name" `Quick (fun () ->
        let ns = Ns.create () in
        Ns.reserve ns "taken";
        Alcotest.(check bool) "mem" true (Ns.mem ns "taken");
        Alcotest.(check bool) "fresh avoids it" true (Ns.fresh ns "taken" <> "taken"));
  ]

let () =
  Alcotest.run "builder" [ ("builder", builder_tests); ("namespace", namespace_tests) ]
