(* Interpreter semantics: tasklets, maps, WCR, library nodes, copies, GPU
   garbage, faults (OOB / hang / invalid), control flow and coverage. *)

open Sdfg

let se = Symbolic.Expr.sym
let farr = Alcotest.(array (float 1e-9))

let run ?config g ~symbols ~inputs =
  match Interp.Exec.run ?config g ~symbols ~inputs with
  | Ok o -> o
  | Error f -> Alcotest.fail ("run failed: " ^ Interp.Exec.fault_to_string f)

let buf o name = (Interp.Value.buffer o.Interp.Exec.memory name).data

let expect_fault ?config g ~symbols ~inputs pred name =
  match Interp.Exec.run ?config g ~symbols ~inputs with
  | Ok _ -> Alcotest.fail (name ^ ": expected a fault")
  | Error f ->
      if not (pred f) then
        Alcotest.fail (name ^ ": wrong fault " ^ Interp.Exec.fault_to_string f)

(* y[i] = a * x[i] over a map *)
let value_tests =
  [
    Alcotest.test_case "mapped tasklet computes elementwise" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = Array.init 6 (fun i -> float_of_int i) in
        let o = run g ~symbols:[ ("N", 6) ] ~inputs:[ ("x", x); ("a", [| 3. |]) ] in
        Alcotest.check farr "y" (Array.map (fun v -> 3. *. v) x) (buf o "y"));
    Alcotest.test_case "axpy matches reference" `Quick (fun () ->
        let g = Workloads.Npbench.axpy () in
        let x = [| 1.; 2.; 3. |] and y = [| 10.; 20.; 30. |] in
        let o = run g ~symbols:[ ("N", 3) ] ~inputs:[ ("x", x); ("y", y); ("a", [| 2. |]) ] in
        Alcotest.check farr "z" [| 12.; 24.; 36. |] (buf o "z"));
    Alcotest.test_case "wcr accumulation computes matmul" `Quick (fun () ->
        let g = Workloads.Npbench.gemm () in
        let n = 3 in
        let a = Array.init (n * n) (fun i -> float_of_int (i + 1)) in
        let b = Array.init (n * n) (fun i -> float_of_int ((i mod 3) - 1)) in
        let c0 = Array.make (n * n) 1. in
        let o =
          run g ~symbols:[ ("N", n) ]
            ~inputs:[ ("A", a); ("B", b); ("C", c0); ("alpha", [| 1. |]); ("beta", [| 0. |]) ]
        in
        (* reference *)
        let expect = Array.make (n * n) 0. in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            for k = 0 to n - 1 do
              expect.((i * n) + j) <- expect.((i * n) + j) +. (a.((i * n) + k) *. b.((k * n) + j))
            done
          done
        done;
        Alcotest.check farr "C" expect (buf o "C"));
    Alcotest.test_case "library matmul equals wcr matmul" `Quick (fun () ->
        let n = 4 in
        let a = Array.init (n * n) (fun i -> Float.sin (float_of_int i)) in
        let b = Array.init (n * n) (fun i -> Float.cos (float_of_int i)) in
        let lib = Workloads.Npbench.mm_lib () in
        let o1 =
          run lib ~symbols:[ ("N", n) ] ~inputs:[ ("A", a); ("B", b); ("C", Array.make (n * n) 0.) ]
        in
        let gm = Workloads.Npbench.gemm () in
        let o2 =
          run gm ~symbols:[ ("N", n) ]
            ~inputs:
              [ ("A", a); ("B", b); ("C", Array.make (n * n) 0.); ("alpha", [| 1. |]); ("beta", [| 0. |]) ]
        in
        Alcotest.check farr "same" (buf o1 "C") (buf o2 "C"));
    Alcotest.test_case "reduce library sums" `Quick (fun () ->
        let g = Workloads.Npbench.sum1d () in
        let x = Array.init 10 (fun i -> float_of_int i) in
        let o = run g ~symbols:[ ("N", 10) ] ~inputs:[ ("x", x) ] in
        Alcotest.check farr "sum" [| 45. |] (buf o "out"));
    Alcotest.test_case "reduce over one axis of two" `Quick (fun () ->
        let g = Graph.create "r" in
        Graph.add_array g "A" Dtype.F64 [ Symbolic.Expr.int 2; Symbolic.Expr.int 3 ];
        Graph.add_array g "out" Dtype.F64 [ Symbolic.Expr.int 2 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.library g st ~label:"rowsum" ~kind:(Node.Reduce (Memlet.Wcr_sum, [ 1 ]))
             ~inputs:[ ("in", Builder.Build.mem "A" "0:1, 0:2") ]
             ~outputs:[ ("out", Builder.Build.mem "out" "0:1") ]
             ());
        let o = run g ~symbols:[] ~inputs:[ ("A", [| 1.; 2.; 3.; 4.; 5.; 6. |]) ] in
        Alcotest.check farr "rows" [| 6.; 15. |] (buf o "out"));
    Alcotest.test_case "copy edge moves subsets" `Quick (fun () ->
        let g = Graph.create "cp" in
        Graph.add_array g "a" Dtype.F64 [ Symbolic.Expr.int 6 ];
        Graph.add_array g "b" Dtype.F64 [ Symbolic.Expr.int 3 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.copy g st ~src:"a" ~dst:"b"
             ~src_subset:(Symbolic.Subset.of_string "1:3")
             ~dst_subset:(Symbolic.Subset.of_string "0:2")
             ());
        let o = run g ~symbols:[] ~inputs:[ ("a", [| 0.; 10.; 20.; 30.; 40.; 50. |]) ] in
        Alcotest.check farr "b" [| 10.; 20.; 30. |] (buf o "b"));
    Alcotest.test_case "f32 casting rounds" `Quick (fun () ->
        let v = Interp.Value.cast Dtype.F32 0.1 in
        Alcotest.(check bool) "lost precision" true (v <> 0.1);
        Alcotest.(check bool) "close" true (Float.abs (v -. 0.1) < 1e-7));
    Alcotest.test_case "int casting truncates" `Quick (fun () ->
        Alcotest.(check (float 0.)) "i64" 3. (Interp.Value.cast Dtype.I64 3.9);
        Alcotest.(check (float 0.)) "neg" (-3.) (Interp.Value.cast Dtype.I64 (-3.9));
        Alcotest.(check (float 0.)) "bool" 1. (Interp.Value.cast Dtype.Bool 0.5));
  ]

let fault_tests =
  [
    Alcotest.test_case "out of bounds read detected" `Quick (fun () ->
        let g = Graph.create "oob" in
        Graph.add_symbol g "N";
        Graph.add_array g "x" Dtype.F64 [ se "N" ];
        Graph.add_array g "y" Dtype.F64 [ se "N" ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.mapped_tasklet g st ~label:"shift"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", Memlet.simple "x" "i+1") ]
             ~code:"o = v"
             ~outputs:[ ("o", Memlet.simple "y" "i") ]
             ());
        expect_fault g ~symbols:[ ("N", 4) ]
          ~inputs:[ ("x", Array.make 4 0.) ]
          (function Interp.Exec.Out_of_bounds _ -> true | _ -> false)
          "oob");
    Alcotest.test_case "infinite loop detected as hang" `Quick (fun () ->
        let g = Graph.create "spin" in
        let s0 = Graph.add_state g "s0" in
        let _ =
          Builder.Build.for_loop g ~entry_from:s0 ~var:"i" ~init:Symbolic.Expr.zero
            ~cond:(Symbolic.Cond.Ge (se "i", Symbolic.Expr.zero))
            ~update:(Symbolic.Expr.add (se "i") Symbolic.Expr.one)
            ~body_label:"spin" ~after_label:"after"
        in
        expect_fault
          ~config:{ Interp.Exec.default_config with step_limit = 5000 }
          g ~symbols:[] ~inputs:[]
          (function Interp.Exec.Hang _ -> true | _ -> false)
          "hang");
    Alcotest.test_case "invalid graph rejected before running" `Quick (fun () ->
        let g = Graph.create "bad" in
        let st = Graph.state g (Graph.add_state g "s") in
        ignore (State.add_node st (Node.Access "ghost"));
        expect_fault g ~symbols:[] ~inputs:[]
          (function Interp.Exec.Invalid_graph _ -> true | _ -> false)
          "invalid");
    Alcotest.test_case "missing symbol is a runtime error" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        expect_fault g ~symbols:[] ~inputs:[]
          (function Interp.Exec.Runtime_error _ | Interp.Exec.Invalid_graph _ -> true | _ -> false)
          "missing symbol");
    Alcotest.test_case "wrong input size is a runtime error" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        expect_fault g ~symbols:[ ("N", 4) ]
          ~inputs:[ ("x", Array.make 3 0.); ("a", [| 1. |]) ]
          (function Interp.Exec.Runtime_error _ -> true | _ -> false)
          "size mismatch");
  ]

let gpu_tests =
  [
    Alcotest.test_case "gpu buffers garbage-initialized deterministically" `Quick (fun () ->
        let g = Graph.create "gpu" in
        Graph.add_array g ~transient:true ~storage:Graph.Gpu "d" Dtype.F64 [ Symbolic.Expr.int 8 ];
        Graph.add_array g "h" Dtype.F64 [ Symbolic.Expr.int 8 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore (Builder.Build.copy g st ~src:"d" ~dst:"h" ());
        let o1 = run g ~symbols:[] ~inputs:[] in
        let o2 = run g ~symbols:[] ~inputs:[] in
        Alcotest.check farr "deterministic" (buf o1 "h") (buf o2 "h");
        Alcotest.(check bool) "garbage nonzero" true (Array.exists (fun v -> v <> 0.) (buf o1 "h")));
    Alcotest.test_case "different seed different garbage" `Quick (fun () ->
        let g = Graph.create "gpu" in
        Graph.add_array g ~transient:true ~storage:Graph.Gpu "d" Dtype.F64 [ Symbolic.Expr.int 8 ];
        Graph.add_array g "h" Dtype.F64 [ Symbolic.Expr.int 8 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore (Builder.Build.copy g st ~src:"d" ~dst:"h" ());
        let c1 = { Interp.Exec.default_config with garbage_seed = 1 } in
        let c2 = { Interp.Exec.default_config with garbage_seed = 2 } in
        let o1 = run ~config:c1 g ~symbols:[] ~inputs:[] in
        let o2 = run ~config:c2 g ~symbols:[] ~inputs:[] in
        Alcotest.(check bool) "differs" true (buf o1 "h" <> buf o2 "h"));
    Alcotest.test_case "host transient zero-initialized" `Quick (fun () ->
        let g = Graph.create "z" in
        Graph.add_array g ~transient:true "t" Dtype.F64 [ Symbolic.Expr.int 4 ];
        Graph.add_array g "h" Dtype.F64 [ Symbolic.Expr.int 4 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore (Builder.Build.copy g st ~src:"t" ~dst:"h" ());
        let o = run g ~symbols:[] ~inputs:[] in
        Alcotest.check farr "zeros" [| 0.; 0.; 0.; 0. |] (buf o "h"));
  ]

let control_tests =
  [
    Alcotest.test_case "for loop executes trip-count times" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let n = 8 in
        let x = Array.init n (fun i -> float_of_int (i * i)) in
        let o = run g ~symbols:[ ("N", n); ("T", 2) ] ~inputs:[ ("A", Array.copy x); ("B", Array.make n 0.) ] in
        (* reference: 2 iterations of fwd+bwd smoothing *)
        let a = Array.copy x and b = Array.make n 0. in
        for _ = 1 to 2 do
          for i = 1 to n - 2 do
            b.(i) <- 0.33333 *. (a.(i - 1) +. a.(i) +. a.(i + 1))
          done;
          for i = 1 to n - 2 do
            a.(i) <- 0.33333 *. (b.(i - 1) +. b.(i) +. b.(i + 1))
          done
        done;
        Alcotest.check farr "A" a (buf o "A"));
    Alcotest.test_case "zero-trip loop skips body" `Quick (fun () ->
        let g = Workloads.Npbench.jacobi_1d () in
        let n = 6 in
        let x = Array.init n float_of_int in
        let o = run g ~symbols:[ ("N", n); ("T", 0) ] ~inputs:[ ("A", Array.copy x); ("B", Array.make n 0.) ] in
        Alcotest.check farr "unchanged" x (buf o "A"));
    Alcotest.test_case "scalar containers visible to conditions" `Quick (fun () ->
        (* loop until a scalar flag flips *)
        let g = Graph.create "flag" in
        Graph.add_scalar g "count" Dtype.I64;
        let s0 = Graph.add_state g "init" in
        let _, body, _ =
          Builder.Build.for_loop g ~entry_from:s0 ~var:"i" ~init:Symbolic.Expr.zero
            ~cond:(Symbolic.Cond.Lt (se "count", Symbolic.Expr.int 5))
            ~update:(Symbolic.Expr.add (se "i") Symbolic.Expr.one)
            ~body_label:"bump" ~after_label:"after"
        in
        let st = Graph.state g body in
        ignore
          (Builder.Build.mapped_tasklet g st ~label:"inc"
             ~inputs:[ ("c", Memlet.simple "count" "") ]
             ~code:"o = c + 1.0"
             ~outputs:[ ("o", Memlet.simple "count" "") ]
             ());
        let o = run g ~symbols:[] ~inputs:[ ("count", [| 0. |]) ] in
        Alcotest.check farr "stopped at 5" [| 5. |] (buf o "count"));
    Alcotest.test_case "negative step loop" `Quick (fun () ->
        let g = Graph.create "down" in
        Graph.add_array g "x" Dtype.F64 [ Symbolic.Expr.int 6 ];
        let s0 = Graph.add_state g "init" in
        let _, body, _ =
          Builder.Build.for_loop g ~entry_from:s0 ~var:"i" ~init:(Symbolic.Expr.int 4)
            ~cond:(Symbolic.Cond.Ge (se "i", Symbolic.Expr.one))
            ~update:(Symbolic.Expr.sub (se "i") Symbolic.Expr.one)
            ~body_label:"mark" ~after_label:"after"
        in
        let st = Graph.state g body in
        ignore
          (Builder.Build.mapped_tasklet g st ~label:"mark"
             ~inputs:[ ("v", Memlet.simple "x" "i") ]
             ~code:"o = v + i"
             ~outputs:[ ("o", Memlet.simple "x" "i") ]
             ());
        let o = run g ~symbols:[] ~inputs:[ ("x", Array.make 6 0.) ] in
        Alcotest.check farr "marked 4..1" [| 0.; 1.; 2.; 3.; 4.; 0. |] (buf o "x"));
  ]

let coverage_tests =
  [
    Alcotest.test_case "coverage reflects select outcomes" `Quick (fun () ->
        let g = Workloads.Npbench.crc_mix () in
        let cfg = { Interp.Exec.default_config with collect_coverage = true } in
        let run_with x =
          (run ~config:cfg g ~symbols:[ ("N", 4) ] ~inputs:[ ("x", x); ("bits", Array.make 4 0.); ("count", [| 0. |]) ]).coverage
        in
        let all_low = run_with (Array.make 4 0.) in
        let mixed = run_with [| 0.; 1.; 0.; 1. |] in
        Alcotest.(check bool) "mixed covers more" true
          (List.length mixed > List.length all_low));
    Alcotest.test_case "coverage off yields empty" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let o = run g ~symbols:[ ("N", 2) ] ~inputs:[ ("x", [| 1.; 2. |]); ("a", [| 1. |]) ] in
        Alcotest.(check (list int)) "empty" [] o.coverage);
    Alcotest.test_case "steps grow with problem size" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let steps n =
          (run g ~symbols:[ ("N", n) ] ~inputs:[ ("x", Array.make n 1.); ("a", [| 1. |]) ]).steps
        in
        Alcotest.(check bool) "monotone" true (steps 16 > steps 4));
  ]

let extra_tests =
  [
    Alcotest.test_case "batched matmul library node" `Quick (fun () ->
        let g = Graph.create "bmm" in
        let i2 = Symbolic.Expr.int 2 and i3 = Symbolic.Expr.int 3 in
        Graph.add_array g "A" Dtype.F64 [ i2; i2; i3 ];
        Graph.add_array g "B" Dtype.F64 [ i2; i3; i2 ];
        Graph.add_array g "C" Dtype.F64 [ i2; i2; i2 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.library g st ~label:"bmm" ~kind:Node.Batched_mat_mul
             ~inputs:
               [ ("A", Builder.Build.mem "A" "0:1, 0:1, 0:2"); ("B", Builder.Build.mem "B" "0:1, 0:2, 0:1") ]
             ~outputs:[ ("C", Builder.Build.mem "C" "0:1, 0:1, 0:1") ]
             ());
        let a = Array.init 12 (fun i -> float_of_int (i + 1)) in
        let b = Array.init 12 (fun i -> float_of_int (12 - i)) in
        let o = run g ~symbols:[] ~inputs:[ ("A", a); ("B", b); ("C", Array.make 8 0.) ] in
        (* reference batch 0, element (0,0): sum_k a[0,0,k] * b[0,k,0] *)
        let expect00 = (1. *. 12.) +. (2. *. 10.) +. (3. *. 8.) in
        Alcotest.(check (float 1e-9)) "C[0,0,0]" expect00 (buf o "C").(0));
    Alcotest.test_case "multiplicative WCR accumulates a product" `Quick (fun () ->
        let g = Graph.create "prod" in
        Graph.add_symbol g "N";
        Graph.add_array g "x" Dtype.F64 [ se "N" ];
        Graph.add_scalar g "p" Dtype.F64;
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.mapped_tasklet g st ~label:"prod"
             ~map:[ ("i", "0:N-1") ]
             ~inputs:[ ("v", Memlet.simple "x" "i") ]
             ~code:"o = v"
             ~outputs:[ ("o", Memlet.simple ~wcr:Memlet.Wcr_mul "p" "") ]
             ());
        let o = run g ~symbols:[ ("N", 4) ] ~inputs:[ ("x", [| 2.; 3.; 0.5; 4. |]); ("p", [| 1. |]) ] in
        Alcotest.check farr "p" [| 12. |] (buf o "p"));
    Alcotest.test_case "gpu-scheduled scope executes on device twins" `Quick (fun () ->
        let g = Graph.create "dev" in
        Graph.add_symbol g "N";
        Graph.add_array g "x" Dtype.F64 [ se "N" ];
        Graph.add_array g "y" Dtype.F64 [ se "N" ];
        List.iter
          (fun c -> Graph.add_array g ~transient:true ~storage:Graph.Gpu c Dtype.F64 [ se "N" ])
          [ "xg"; "yg" ];
        let st = Graph.state g (Graph.add_state g "s") in
        let xh, xg = Builder.Build.copy g st ~src:"x" ~dst:"xg" () in
        ignore xh;
        let m =
          Builder.Build.mapped_tasklet g st ~label:"k" ~schedule:Node.Gpu_device
            ~map:[ ("i", "0:N-1") ]
            ~inputs:[ ("v", Memlet.simple "xg" "i") ]
            ~code:"o = v + 1.0"
            ~outputs:[ ("o", Memlet.simple "yg" "i") ]
            ~input_nodes:[ ("xg", xg) ]
            ()
        in
        ignore
          (Builder.Build.copy g st ~src:"yg" ~dst:"y"
             ~src_node:(List.assoc "yg" m.out_access) ());
        let o = run g ~symbols:[ ("N", 3) ] ~inputs:[ ("x", [| 1.; 2.; 3. |]) ] in
        Alcotest.check farr "y" [| 2.; 3.; 4. |] (buf o "y"));
    Alcotest.test_case "f32 array storage loses double precision" `Quick (fun () ->
        let g = Graph.create "f32" in
        Graph.add_array g "x" Dtype.F64 [ Symbolic.Expr.int 1 ];
        Graph.add_array g "y" Dtype.F32 [ Symbolic.Expr.int 1 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.mapped_tasklet g st ~label:"t"
             ~inputs:[ ("v", Memlet.simple "x" "0") ]
             ~code:"o = v"
             ~outputs:[ ("o", Memlet.simple "y" "0") ]
             ());
        let o = run g ~symbols:[] ~inputs:[ ("x", [| 0.1 |]) ] in
        Alcotest.(check bool) "rounded" true ((buf o "y").(0) <> 0.1));
    Alcotest.test_case "strided copy moves every other element" `Quick (fun () ->
        let g = Graph.create "stride" in
        Graph.add_array g "a" Dtype.F64 [ Symbolic.Expr.int 8 ];
        Graph.add_array g "b" Dtype.F64 [ Symbolic.Expr.int 4 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore
          (Builder.Build.copy g st ~src:"a" ~dst:"b"
             ~src_subset:(Symbolic.Subset.of_string "0:7:2")
             ~dst_subset:(Symbolic.Subset.of_string "0:3")
             ());
        let o = run g ~symbols:[] ~inputs:[ ("a", Array.init 8 float_of_int) ] in
        Alcotest.check farr "b" [| 0.; 2.; 4.; 6. |] (buf o "b"));
  ]

(* Regression: coverage keys used to be hashed with [Hashtbl.hash], whose
   default traversal bounds make distinct structured keys collide; the FNV-1a
   digest in Defs must keep every realistic key distinct. *)
let digest_tests =
  [
    Alcotest.test_case "cov_digest is injective over realistic keys" `Quick (fun () ->
        let keys = ref [] in
        for state = 0 to 40 do
          keys := Interp.Defs.Cov_state state :: !keys;
          keys := Interp.Defs.Cov_iedge state :: !keys;
          for node = 0 to 40 do
            List.iter
              (fun empty -> keys := Interp.Defs.Cov_map { state; node; empty } :: !keys)
              [ false; true ];
            List.iter
              (fun taken ->
                keys := Interp.Defs.Cov_select { state; node; site = node mod 7; taken } :: !keys)
              [ false; true ]
          done
        done;
        let digests = List.map Interp.Defs.cov_digest !keys in
        let tbl = Hashtbl.create (List.length digests) in
        List.iter2
          (fun k d ->
            match Hashtbl.find_opt tbl d with
            | Some _ -> Alcotest.fail "cov_digest collision between distinct keys"
            | None -> Hashtbl.add tbl d k)
          !keys digests);
    Alcotest.test_case "distinct key kinds with equal ids stay distinct" `Quick (fun () ->
        let d1 = Interp.Defs.cov_digest (Interp.Defs.Cov_state 3) in
        let d2 = Interp.Defs.cov_digest (Interp.Defs.Cov_iedge 3) in
        Alcotest.(check bool) "state vs iedge" true (d1 <> d2));
  ]

(* Regression: interstate-edge assignments used to evaluate for free — a
   symbol-churning control loop could spin forever below the step budget. *)
let budget_tests =
  let spin_graph () =
    let g = Graph.create "spin" in
    Graph.add_symbol g "i";
    Graph.add_array g "x" Dtype.F64 [ Symbolic.Expr.int 1 ];
    let s = Graph.add_state g "loop" in
    Graph.set_start_state g s;
    ignore
      (Graph.add_istate_edge g
         ~cond:(Symbolic.Cond.Lt (se "i", Symbolic.Expr.int 100))
         ~assigns:[ ("i", Symbolic.Expr.Add (se "i", Symbolic.Expr.int 1)) ]
         s s);
    g
  in
  [
    Alcotest.test_case "interstate assignments consume steps" `Quick (fun () ->
        let o = run (spin_graph ()) ~symbols:[ ("i", 0) ] ~inputs:[] in
        (* 101 state executions plus 100 assignment evaluations *)
        Alcotest.(check int) "steps" 201 o.steps);
    Alcotest.test_case "a symbol-only loop trips the step budget" `Quick (fun () ->
        let config = { Interp.Exec.default_config with step_limit = 50 } in
        expect_fault ~config (spin_graph ()) ~symbols:[ ("i", 0) ] ~inputs:[]
          (function Interp.Exec.Hang _ -> true | _ -> false)
          "spin under budget");
  ]

let () =
  Alcotest.run "interp"
    [
      ("values", value_tests);
      ("faults", fault_tests);
      ("gpu", gpu_tests);
      ("control", control_tests);
      ("coverage", coverage_tests);
      ("extra", extra_tests);
      ("digest", digest_tests);
      ("budget", budget_tests);
    ]
