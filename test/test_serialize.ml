(* Serialization round-trips: structure and semantics preserved for every
   workload, ids stable, malformed input rejected. *)

open Sdfg

let structurally_equal g1 g2 =
  Graph.name g1 = Graph.name g2
  && Graph.symbols g1 = Graph.symbols g2
  && Graph.containers g1 = Graph.containers g2
  && Graph.start_state g1 = Graph.start_state g2
  && List.map fst (Graph.states g1) = List.map fst (Graph.states g2)
  && List.for_all2
       (fun (_, s1) (_, s2) ->
         State.nodes s1 = State.nodes s2
         && List.map (fun (e : State.edge) -> (e.src, e.src_conn, e.dst, e.dst_conn, e.memlet, e.dst_memlet))
              (State.edges s1)
            = List.map (fun (e : State.edge) -> (e.src, e.src_conn, e.dst, e.dst_conn, e.memlet, e.dst_memlet))
                (State.edges s2))
       (Graph.states g1) (Graph.states g2)
  && List.map (fun (e : Graph.istate_edge) -> (e.src, e.dst, e.cond, e.assigns)) (Graph.istate_edges g1)
     = List.map (fun (e : Graph.istate_edge) -> (e.src, e.dst, e.cond, e.assigns)) (Graph.istate_edges g2)

let all_workloads () =
  Workloads.Npbench.all ()
  @ [
      ("bert", Workloads.Bert.build ());
      ("cloudsc", Workloads.Cloudsc.build ());
      ("fig4", Workloads.Fig4.build ());
    ]

let roundtrip_tests =
  List.map
    (fun (name, g) ->
      Alcotest.test_case name `Quick (fun () ->
          let g' = Serialize.of_string (Serialize.to_string g) in
          Alcotest.(check bool) "structure preserved" true (structurally_equal g g');
          Alcotest.(check int) "still valid" (List.length (Validate.check g))
            (List.length (Validate.check g'))))
    (all_workloads ())

let semantic_tests =
  [
    Alcotest.test_case "loaded graph computes identically" `Quick (fun () ->
        let g = Workloads.Chain.build () in
        let g' = Serialize.of_string (Serialize.to_string g) in
        let n = 4 in
        let inputs =
          List.map
            (fun c -> (c, Array.init (n * n) (fun i -> Float.sin (float_of_int i))))
            [ "A"; "B"; "C"; "D"; "R" ]
        in
        match
          (Interp.Exec.run g ~symbols:[ ("N", n) ] ~inputs,
           Interp.Exec.run g' ~symbols:[ ("N", n) ] ~inputs)
        with
        | Ok o1, Ok o2 ->
            Alcotest.(check (array (float 1e-12)))
              "R equal"
              (Interp.Value.buffer o1.memory "R").data
              (Interp.Value.buffer o2.memory "R").data
        | _ -> Alcotest.fail "runs failed");
    Alcotest.test_case "sites survive a round-trip" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let g' = Serialize.of_string (Serialize.to_string g) in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"t" in
        (* applying at the recorded site works on the reloaded graph *)
        ignore (x.apply g' site);
        Alcotest.(check int) "valid after apply" 0 (List.length (Validate.check g')));
    Alcotest.test_case "save/load files" `Quick (fun () ->
        let g = Workloads.Npbench.softmax () in
        let path = Filename.temp_file "sdfg" ".sexp" in
        Serialize.save path g;
        let g' = Serialize.load path in
        Sys.remove path;
        Alcotest.(check bool) "equal" true (structurally_equal g g'));
    Alcotest.test_case "quoted atoms round-trip" `Quick (fun () ->
        let g = Graph.create "weird name (with parens)" in
        Graph.add_array g "A" Dtype.F64 [ Symbolic.Expr.of_string "N * (N + 1)" ];
        Graph.add_symbol g "N";
        let sid = Graph.add_state g "state with spaces" in
        ignore sid;
        let g' = Serialize.of_string (Serialize.to_string g) in
        Alcotest.(check string) "name" (Graph.name g) (Graph.name g');
        Alcotest.(check bool) "container" true (Graph.has_container g' "A"));
    Alcotest.test_case "malformed input rejected" `Quick (fun () ->
        List.iter
          (fun src ->
            match Serialize.of_string src with
            | exception Serialize.Parse_error _ -> ()
            | _ -> Alcotest.fail ("accepted: " ^ src))
          [ ""; "("; "(sdfg)"; "(sdfg x (symbols) (containers) (states) (iedges) (start z))";
            "(notasdfg a (symbols) (containers) (states) (iedges) (start 0))" ]);
  ]

(* Testcase.save writes a bundle Testcase.load can reconstruct exactly; the
   reloaded case still reproduces the failure via replay. *)
let testcase_tests =
  [
    Alcotest.test_case "testcase save -> load -> replay round-trip" `Quick (fun () ->
        let open Fuzzyflow in
        let config =
          { Difftest.default_config with trials = 5; max_size = 8; concretization = [ ("N", 8) ] }
        in
        let g = Workloads.Npbench.scale () in
        let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
        let site = List.hd (x.find g) in
        let r = Difftest.test_instance ~config g x site in
        let tc =
          match Testcase.of_report ~config ~original:g r with
          | Some tc -> tc
          | None -> Alcotest.fail "expected a failing test case"
        in
        let dir = Filename.temp_file "fftc" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let written = Testcase.save dir tc in
        let dat = List.find (fun p -> Filename.check_suffix p ".case.dat") written in
        let tc' =
          match Testcase.load dat with
          | Ok tc' -> tc'
          | Error { Testcase.reason; _ } -> Alcotest.fail ("load failed: " ^ reason)
        in
        Alcotest.(check string) "name" tc.name tc'.name;
        Alcotest.(check bool) "symbols" true (tc.symbols = tc'.symbols);
        Alcotest.(check bool) "inputs bit-exact" true (tc.inputs = tc'.inputs);
        Alcotest.(check bool) "failure" true (tc.failure = tc'.failure);
        Alcotest.(check bool) "cutout interface" true
          (tc.cutout.Cutout.input_config = tc'.cutout.Cutout.input_config
          && tc.cutout.Cutout.system_state = tc'.cutout.Cutout.system_state);
        Alcotest.(check bool) "cutout graph structure" true
          (structurally_equal tc.cutout.Cutout.program tc'.cutout.Cutout.program);
        (* the reloaded cutout still runs identically under the stored inputs *)
        (match (Testcase.replay tc, Testcase.replay tc') with
        | Ok o1, Ok o2 ->
            Alcotest.(check bool) "replay memory equal" true (o1.Interp.Exec.memory = o2.Interp.Exec.memory)
        | Error f1, Error f2 -> Alcotest.(check bool) "same fault" true (f1 = f2)
        | _ -> Alcotest.fail "replay diverged after reload");
        List.iter Sys.remove written;
        Unix.rmdir dir);
    Alcotest.test_case "load never raises on bit-flipped or truncated bundles" `Quick (fun () ->
        let open Fuzzyflow in
        let config =
          { Difftest.default_config with trials = 5; max_size = 8; concretization = [ ("N", 8) ] }
        in
        let g = Workloads.Npbench.scale () in
        let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
        let site = List.hd (x.find g) in
        let r = Difftest.test_instance ~config g x site in
        let tc =
          match Testcase.of_report ~config ~original:g r with
          | Some tc -> tc
          | None -> Alcotest.fail "expected a failing test case"
        in
        let dir = Filename.temp_file "fftcfuzz" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let written = Testcase.save dir tc in
        let dat = List.find (fun p -> Filename.check_suffix p ".case.dat") written in
        let sdfg = List.find (fun p -> Filename.check_suffix p ".cutout.sdfg" ) written in
        let read path =
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        let write path s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        let try_load () =
          match Testcase.load dat with
          | Ok _ | Error _ -> ()
          | exception e -> Alcotest.fail ("load raised: " ^ Printexc.to_string e)
        in
        List.iter
          (fun victim ->
            let pristine = read victim in
            let n = String.length pristine in
            (* deterministic walk: flip one bit at ~40 positions spread over
               the file, catching headers, numbers, separators, payload *)
            for k = 0 to 39 do
              let pos = k * (max 1 (n / 40)) mod n in
              let bit = k mod 8 in
              let damaged = Bytes.of_string pristine in
              Bytes.set damaged pos (Char.chr (Char.code pristine.[pos] lxor (1 lsl bit)));
              write victim (Bytes.to_string damaged);
              try_load ()
            done;
            (* truncations, including mid-line *)
            List.iter
              (fun keep -> write victim (String.sub pristine 0 (keep * n / 7)); try_load ())
              [ 0; 1; 2; 3; 4; 5; 6 ];
            write victim pristine)
          [ dat; sdfg ];
        (* missing graph file is a typed error too *)
        Sys.remove sdfg;
        (match Testcase.load dat with
        | Error { Testcase.reason; _ } ->
            Alcotest.(check bool) "reason non-empty" true (reason <> "")
        | Ok _ -> Alcotest.fail "loaded without its cutout graph"
        | exception e -> Alcotest.fail ("load raised: " ^ Printexc.to_string e));
        List.iter (fun p -> if Sys.file_exists p then Sys.remove p) written;
        Unix.rmdir dir);
  ]

let () =
  Alcotest.run "serialize"
    [
      ("roundtrip", roundtrip_tests);
      ("semantics", semantic_tests);
      ("testcase", testcase_tests);
    ]
