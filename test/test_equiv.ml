(* Translation validation: machine-checkable certificates for proved
   transformation instances, refutation witnesses that replay to concrete
   divergence under the interpreter, and the pipeline/campaign gates that
   skip fuzz trials on a proof. *)

open Sdfg
module B = Builder.Build
module X = Transforms.Xform
module E = Analysis.Equiv

let sym = Symbolic.Expr.sym

let symbols_of g =
  List.filter (fun (s, _) -> List.mem s (Graph.all_free_syms g)) [ ("N", 8); ("T", 3) ]

let first_site (x : X.t) g =
  match x.find g with
  | [] -> Alcotest.failf "%s: no site on %s" x.name (Graph.name g)
  | s :: _ -> s

let tiling = Transforms.Map_tiling.make ~tile_size:32 Transforms.Map_tiling.Correct

(* producer tmp[i] -> consumer tmp[i+1]: fusable only when offsets are
   ignored, and then incorrectly — the fused iteration reads an element no
   earlier iteration has produced, so divergence shows even under the
   interpreter's sequential ascending schedule *)
let stencil_pair () =
  let g = Graph.create "stencil_pair" in
  Graph.add_array g "x" Dtype.F64 [ sym "N" ];
  Graph.add_array g "out" Dtype.F64 [ sym "N" ];
  Graph.add_array g ~transient:true "tmp" Dtype.F64 [ sym "N" ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  let m1 =
    B.mapped_tasklet g st ~label:"prod"
      ~map:[ ("i", "1:N-2") ]
      ~inputs:[ ("v", B.mem "x" "i") ]
      ~code:"o = v * 2.0"
      ~outputs:[ ("o", B.mem "tmp" "i") ]
      ()
  in
  ignore
    (B.mapped_tasklet g st ~label:"cons"
       ~map:[ ("i", "1:N-2") ]
       ~inputs:[ ("v", B.mem "tmp" "i+1") ]
       ~code:"o = v + 1.0"
       ~outputs:[ ("o", B.mem "out" "i") ]
       ~input_nodes:[ ("tmp", List.assoc "tmp" m1.B.out_access) ]
       ());
  g

let certify_tests =
  [
    Alcotest.test_case "map tiling on scale yields a checkable certificate" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        match E.certify ~symbols:(symbols_of g) g tiling (first_site tiling g) with
        | Some (E.Equivalent cert) ->
            Alcotest.(check bool) "certificate re-checks" true (Analysis.Certificate.check cert);
            Alcotest.(check bool) "has entries" true (cert.entries <> []);
            Alcotest.(check bool)
              "covers an external write" true
              (List.exists
                 (fun (e : Analysis.Certificate.entry) -> e.side = Analysis.Certificate.Write)
                 cert.entries)
        | Some v -> Alcotest.failf "expected equivalent, got %s" (E.verdict_name v)
        | None -> Alcotest.fail "site went stale");
    Alcotest.test_case "one instance per workload family certifies equivalent" `Quick (fun () ->
        let npb = Workloads.Npbench.all () in
        let cases =
          [
            ("scale", List.assoc "scale" npb, tiling);
            ("axpy", List.assoc "axpy" npb, Transforms.Vectorization.make Transforms.Vectorization.Correct);
            ("gemm", List.assoc "gemm" npb, tiling);
            ("mvt", List.assoc "mvt" npb, tiling);
            ("softmax", List.assoc "softmax" npb, tiling);
            ("fig4", Workloads.Fig4.build (), tiling);
            ("copy_chain", List.assoc "copy_chain" npb, Transforms.Redundant_array_removal.make ());
            ("nested_scale", List.assoc "nested_scale" npb, Transforms.Map_collapse.make ());
            ( "doitgen",
              List.assoc "doitgen" (Workloads.Npb_frontend.all ()),
              Transforms.Map_expansion.make Transforms.Map_expansion.Correct );
          ]
        in
        List.iter
          (fun (name, g, (x : X.t)) ->
            let proved =
              List.exists
                (fun site ->
                  match E.certify ~symbols:(symbols_of g) g x site with
                  | Some (E.Equivalent _) -> true
                  | _ -> false)
                (x.find g)
            in
            if not proved then Alcotest.failf "%s: no %s instance certified equivalent" name x.name)
          cases);
    Alcotest.test_case "known-unsound hint vetoes certification" `Quick (fun () ->
        (* a no-op transformation trivially preserves all summaries, but a
           Known_unsound hint must still keep it from certifying *)
        let g = Workloads.Npbench.scale () in
        let noop =
          {
            X.name = "noop-marked-unsound";
            find = (fun _ -> [ X.dataflow_site ~state:0 ~nodes:[] ~descr:"whole program" ]);
            apply = (fun _ _ -> Diff.empty);
            certify_hint = Some (X.Known_unsound "marked for the veto test");
          }
        in
        match E.certify ~symbols:(symbols_of g) g noop (first_site noop g) with
        | Some (E.Unknown why) ->
            let contains hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
              at 0
            in
            Alcotest.(check bool) "mentions the unsound marker" true (contains why "unsound")
        | Some v -> Alcotest.failf "expected unknown, got %s" (E.verdict_name v)
        | None -> Alcotest.fail "site went stale");
  ]

let buf o name = (Interp.Value.buffer o.Interp.Exec.memory name).data

let refute_tests =
  [
    Alcotest.test_case "offset-ignoring fusion refuted; witness replays to divergence" `Quick
      (fun () ->
        let g = stencil_pair () in
        let x = Transforms.Map_fusion.make Transforms.Map_fusion.Ignore_offsets in
        let site = first_site x g in
        match E.certify ~symbols:[ ("N", 8) ] g x site with
        | Some (E.Refuted w) ->
            let n = List.assoc "N" w.valuation in
            Alcotest.(check bool) "valuation binds N >= 2" true (n >= 2);
            (* replay the witness valuation through the interpreter on the
               original and the transformed program: the fused consumer reads
               tmp[i] where it should read tmp[i-1], so out must diverge *)
            let g' = Graph.copy g in
            ignore (x.apply g' site);
            let inputs = [ ("x", Array.init n (fun i -> float_of_int (i + 1))) ] in
            let run h = Interp.Exec.run h ~symbols:w.valuation ~inputs in
            (match (run g, run g') with
            | Ok o1, Ok o2 ->
                Alcotest.(check bool)
                  "out buffers diverge" true
                  (buf o1 "out" <> buf o2 "out")
            | Ok _, Error _ -> () (* a fault in the transformed program is divergence too *)
            | Error f, _ ->
                Alcotest.failf "original program faulted: %s" (Interp.Exec.fault_to_string f))
        | Some v -> Alcotest.failf "expected refuted, got %s" (E.verdict_name v)
        | None -> Alcotest.fail "site went stale");
    Alcotest.test_case "no-remainder tiling is refuted" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.No_remainder in
        match E.certify ~symbols:[ ("N", 8) ] g x (first_site x g) with
        | Some (E.Refuted _) -> ()
        | Some v -> Alcotest.failf "expected refuted, got %s" (E.verdict_name v)
        | None -> Alcotest.fail "site went stale");
  ]

let propagate_tests =
  [
    Alcotest.test_case "widen_range collapses a parameter in the stride" `Quick (fun () ->
        let open Symbolic in
        let r = Subset.dim ~step:(sym "i") (Expr.int 0) (sym "N") in
        let prange = Subset.dim (Expr.int 1) (Expr.int 4) in
        let w = Propagate.widen_range ~param:"i" ~prange r in
        Alcotest.(check bool) "stride widens to 1" true (Expr.equal w.Subset.step Expr.one);
        Alcotest.(check bool)
          "parameter eliminated" true
          (not (List.mem "i" (Subset.free_syms [ w ])));
    );
    Alcotest.test_case "through_map rejects mismatched params/ranges" `Quick (fun () ->
        let open Symbolic in
        Alcotest.check_raises "length guard"
          (Invalid_argument "Propagate.through_map: 2 params vs 1 ranges (malformed map scope)")
          (fun () ->
            ignore
              (Propagate.through_map ~params:[ "i"; "j" ]
                 ~ranges:[ Subset.dim (Expr.int 0) (Expr.int 3) ]
                 [ Subset.index (sym "i") ])));
  ]

let gate_tests =
  [
    Alcotest.test_case "pipeline static gate proves and skips fuzzing" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let config =
          { Fuzzyflow.Difftest.default_config with trials = 8; max_size = 8; concretization = [ ("N", 8) ] }
        in
        let _, log = Fuzzyflow.Pipeline.optimize ~config ~static_gate:true g [ tiling ] in
        Alcotest.(check int) "one proved" 1 log.proved;
        Alcotest.(check bool)
          "a Proved_equivalent step with a valid certificate" true
          (List.exists
             (fun (s : Fuzzyflow.Pipeline.step) ->
               match s.decision with
               | Fuzzyflow.Pipeline.Proved_equivalent c -> Analysis.Certificate.check c
               | _ -> false)
             log.steps));
    Alcotest.test_case "campaign certify gate skips proved instances' trials" `Quick (fun () ->
        let programs = [ ("scale", Workloads.Npbench.scale ()) ] in
        let config =
          { Fuzzyflow.Difftest.default_config with trials = 6; max_size = 8; concretization = [ ("N", 8) ] }
        in
        let off = Fuzzyflow.Campaign.run ~config programs [ tiling ] in
        let on = Fuzzyflow.Campaign.run ~config ~certify_gate:true programs [ tiling ] in
        Alcotest.(check int) "same instances" off.total_instances on.total_instances;
        Alcotest.(check bool) "gate off spends trials" true (Fuzzyflow.Campaign.trials_spent off > 0);
        Alcotest.(check int) "gate on spends none" 0 (Fuzzyflow.Campaign.trials_spent on);
        Alcotest.(check int) "proved counted" on.total_instances on.total_proved;
        List.iter
          (fun (r : Fuzzyflow.Campaign.instance_result) ->
            Alcotest.(check bool) "no report on proved instance" true (r.report = None);
            match r.verdict with
            | Some (E.Equivalent _) -> ()
            | _ -> Alcotest.fail "expected an equivalent verdict")
          on.results);
  ]

let () =
  Alcotest.run "equiv"
    [
      ("certify", certify_tests);
      ("refute", refute_tests);
      ("propagate", propagate_tests);
      ("gate", gate_tests);
    ]
