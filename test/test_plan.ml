(* Differential proof obligation for compile-once execution plans: every
   workload in lib/workloads (including fig4 and the frontend-built NPB
   kernels) runs through both the reference tree-walk and the plan path, and
   the outcomes must be bit-identical — final memory down to the float bits,
   step counts, injection counters, and coverage sets. *)

open Sdfg

let exec_tree = Interp.Exec.run_tree
let exec_plan = Interp.Exec.run

(* deterministic, value-diverse inputs for every non-transient container *)
let inputs_for g ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if d.transient then None
      else
        let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
        Some (c, Array.init n (fun i -> (0.125 *. float_of_int ((i * 7 mod 23) - 11)) +. 0.5)))
    (Graph.containers g)

let symbols_for g =
  List.map (fun s -> (s, if s = "T" then 3 else 6)) (Graph.all_free_syms g)

let roster () =
  List.map (fun (n, g) -> (n, g, symbols_for g)) (Workloads.Npbench.all ())
  @ List.map (fun (n, g) -> ("frontend:" ^ n, g, symbols_for g)) (Workloads.Npb_frontend.all ())
  @ [
      ("fig4", Workloads.Fig4.build (), symbols_for (Workloads.Fig4.build ()));
      ("chain", Workloads.Chain.build (), symbols_for (Workloads.Chain.build ()));
      ("bert", Workloads.Bert.build (), Workloads.Bert.default_symbols);
      ("cloudsc", Workloads.Cloudsc.build (), Workloads.Cloudsc.default_symbols);
      ("sddmm",
       (let g, _, _ = Workloads.Sddmm.rank_program () in g),
       symbols_for (let g, _, _ = Workloads.Sddmm.rank_program () in g));
    ]

let check_same name a b =
  match (a, b) with
  | Error f1, Error f2 ->
      Alcotest.(check string)
        (name ^ ": fault") (Interp.Exec.fault_to_string f1) (Interp.Exec.fault_to_string f2)
  | Ok _, Error f ->
      Alcotest.fail (name ^ ": tree ok, plan faulted: " ^ Interp.Exec.fault_to_string f)
  | Error f, Ok _ ->
      Alcotest.fail (name ^ ": tree faulted, plan ok: " ^ Interp.Exec.fault_to_string f)
  | Ok o1, Ok o2 ->
      Alcotest.(check int) (name ^ ": steps") o1.Interp.Exec.steps o2.Interp.Exec.steps;
      Alcotest.(check int) (name ^ ": writes") o1.Interp.Exec.writes o2.Interp.Exec.writes;
      Alcotest.(check int) (name ^ ": subsets") o1.Interp.Exec.subsets o2.Interp.Exec.subsets;
      Alcotest.(check (list int)) (name ^ ": coverage") o1.Interp.Exec.coverage
        o2.Interp.Exec.coverage;
      let names m = Hashtbl.fold (fun k _ acc -> k :: acc) m [] |> List.sort compare in
      Alcotest.(check (list string))
        (name ^ ": containers")
        (names o1.Interp.Exec.memory) (names o2.Interp.Exec.memory);
      Hashtbl.iter
        (fun c (b1 : Interp.Value.buffer) ->
          let b2 = Interp.Value.buffer o2.Interp.Exec.memory c in
          Alcotest.(check (array int64))
            (name ^ ": memory of " ^ c)
            (Array.map Int64.bits_of_float b1.data)
            (Array.map Int64.bits_of_float b2.data))
        o1.Interp.Exec.memory

let differential ?config name g ~symbols ~inputs =
  check_same name (exec_tree ?config g ~symbols ~inputs) (exec_plan ?config g ~symbols ~inputs)

let cov_config = { Interp.Exec.default_config with collect_coverage = true }

let workload_tests =
  [
    Alcotest.test_case "plan matches tree-walk on every workload" `Quick (fun () ->
        List.iter
          (fun (name, g, symbols) ->
            differential ~config:cov_config name g ~symbols ~inputs:(inputs_for g ~symbols))
          (roster ()));
    Alcotest.test_case "parity holds with no inputs (garbage-free zero fill)" `Quick (fun () ->
        List.iter
          (fun (name, g, symbols) -> differential ~config:cov_config name g ~symbols ~inputs:[])
          (roster ()));
  ]

(* every injection kind, on workloads exercising tasklets, WCR, library
   nodes, interstate loops — counters and fault signatures must agree *)
let injection_tests =
  let injections =
    [
      Interp.Exec.Flip_bit { nth_write = 2; bit = 52 };
      Interp.Exec.Set_nan { nth_write = 0 };
      Interp.Exec.Set_inf { nth_write = 3 };
      Interp.Exec.Shift_index { nth_subset = 1; delta = 1 };
      Interp.Exec.Shift_index { nth_subset = 4; delta = -2 };
      Interp.Exec.Burn_steps { after = 10 };
    ]
  in
  let subjects () =
    [
      ("scale", Workloads.Npbench.scale ());
      ("gemm", Workloads.Npbench.gemm ());
      ("mm_lib", Workloads.Npbench.mm_lib ());
      ("softmax", Workloads.Npbench.softmax ());
      ("fig4", Workloads.Fig4.build ());
    ]
  in
  [
    Alcotest.test_case "injection parity across all fault kinds" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            let symbols = symbols_for g in
            let inputs = inputs_for g ~symbols in
            List.iter
              (fun inject ->
                let config =
                  { Interp.Exec.default_config with inject = Some inject; collect_coverage = true }
                in
                differential ~config
                  (name ^ " under " ^ Interp.Exec.injection_to_string inject)
                  g ~symbols ~inputs)
              injections)
          (subjects ()));
  ]

let fault_tests =
  [
    Alcotest.test_case "unbound symbol faults identically" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        differential "scale without N" g ~symbols:[] ~inputs:[]);
    Alcotest.test_case "hang faults identically at a tiny step budget" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let symbols = symbols_for g in
        let config = { Interp.Exec.default_config with step_limit = 17 } in
        (match exec_plan ~config g ~symbols ~inputs:[] with
        | Error (Interp.Exec.Hang _) -> ()
        | Ok _ -> Alcotest.fail "expected a hang"
        | Error f -> Alcotest.fail ("expected a hang, got " ^ Interp.Exec.fault_to_string f));
        differential ~config "fig4 at limit 17" g ~symbols ~inputs:[]);
    Alcotest.test_case "oversized input rejected identically" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        differential "scale bad input" g ~symbols:[ ("N", 4) ]
          ~inputs:[ ("x", Array.make 9 1.) ]);
    Alcotest.test_case "gpu garbage is identical under both paths" `Quick (fun () ->
        let g = Graph.create "gpu_garbage" in
        Graph.add_array g ~transient:true ~storage:Gpu "d" Dtype.F64 [ Symbolic.Expr.int 5 ];
        Graph.add_array g "y" Dtype.F64 [ Symbolic.Expr.int 5 ];
        let st = Graph.state g (Graph.add_state g "s") in
        ignore (Builder.Build.copy g st ~src:"d" ~dst:"y" ());
        differential "gpu garbage copy" g ~symbols:[] ~inputs:[];
        (* and the garbage really is the deterministic non-zero fill *)
        match exec_plan g ~symbols:[] ~inputs:[] with
        | Ok o ->
            let y = (Interp.Value.buffer o.Interp.Exec.memory "y").data in
            Alcotest.(check bool) "nonzero garbage" true (Array.exists (fun v -> v <> 0.) y)
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
  ]

let cache_tests =
  [
    Alcotest.test_case "cache hits on repeated (digest, symbols)" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let c = Interp.Plan.Cache.create () in
        let digest = Interp.Plan.Cache.digest_of g in
        (match Interp.Plan.Cache.compile ~digest c g ~symbols:[ ("N", 4) ] with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
        ignore (Interp.Plan.Cache.compile ~digest c g ~symbols:[ ("N", 4) ]);
        (* symbol order must not matter for the key *)
        let g2 = Workloads.Npbench.axpy () in
        let d2 = Interp.Plan.Cache.digest_of g2 in
        ignore (Interp.Plan.Cache.compile ~digest:d2 c g2 ~symbols:[ ("N", 4) ]);
        let hits, misses = Interp.Plan.Cache.stats c in
        Alcotest.(check int) "hits" 1 hits;
        Alcotest.(check int) "misses" 2 misses);
    Alcotest.test_case "cached plan executes identically to a fresh run" `Quick (fun () ->
        let g = Workloads.Npbench.gemm () in
        let symbols = [ ("N", 5) ] in
        let inputs = inputs_for g ~symbols in
        let c = Interp.Plan.Cache.create () in
        let p =
          match Interp.Plan.Cache.compile c g ~symbols with
          | Ok p -> p
          | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)
        in
        (* executing the same plan twice must not leak state between runs *)
        let o1 = Interp.Plan.execute ~config:cov_config p ~inputs in
        let o2 = Interp.Plan.execute ~config:cov_config p ~inputs in
        check_same "plan reuse" o1 o2;
        check_same "plan vs one-shot" (exec_plan ~config:cov_config g ~symbols ~inputs) o1);
    Alcotest.test_case "distinct valuations get distinct plans" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let c = Interp.Plan.Cache.create () in
        ignore (Interp.Plan.Cache.compile c g ~symbols:[ ("N", 4) ]);
        ignore (Interp.Plan.Cache.compile c g ~symbols:[ ("N", 5) ]);
        let _, misses = Interp.Plan.Cache.stats c in
        Alcotest.(check int) "misses" 2 misses;
        match Interp.Plan.Cache.compile c g ~symbols:[ ("N", 5) ] with
        | Ok p -> (
            match Interp.Plan.execute p ~inputs:[ ("x", Array.make 5 2.); ("a", [| 3. |]) ] with
            | Ok o ->
                Alcotest.(check int)
                  "N=5 plan allocates 5 elements" 5
                  (Array.length (Interp.Value.buffer o.Interp.Exec.memory "y").data)
            | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f))
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
  ]

(* difftest / fuzzer verdicts are unchanged by cache sharing *)
let consumer_tests =
  [
    Alcotest.test_case "difftest verdict is cache-oblivious" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"tile" in
        let config =
          { Fuzzyflow.Difftest.default_config with trials = 6; max_size = 6;
            concretization = [ ("N", 6) ] }
        in
        let run ?plan_cache () =
          List.map
            (fun variant ->
              let x = Transforms.Map_tiling.make ~tile_size:3 variant in
              let r = Fuzzyflow.Difftest.test_instance ?plan_cache ~config g x site in
              Format.asprintf "%a" Fuzzyflow.Difftest.pp_report r)
            [ Transforms.Map_tiling.Correct; Transforms.Map_tiling.Off_by_one ]
        in
        let shared = Interp.Plan.Cache.create () in
        Alcotest.(check (list string)) "verdicts" (run ()) (run ~plan_cache:shared ()));
  ]

let () =
  Alcotest.run "plan"
    [
      ("workloads", workload_tests);
      ("injection", injection_tests);
      ("faults", fault_tests);
      ("cache", cache_tests);
      ("consumers", consumer_tests);
    ]
