(* Differential testing pipeline: verdicts, failure classes, fault
   divergence handling, test-case artifacts, whole-program baseline. *)

open Fuzzyflow

let config =
  { Difftest.default_config with trials = 10; max_size = 10; concretization = [ ("N", 8) ] }

let chain_site () =
  let g, sid, mm2 = Workloads.Chain.build_with_site () in
  (g, Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"tile mm2")

let difftest_tests =
  [
    Alcotest.test_case "correct tiling passes" `Quick (fun () ->
        let g, site = chain_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let r = Difftest.test_instance ~config g x site in
        Alcotest.(check bool) "pass" true (r.verdict = Difftest.Pass));
    Alcotest.test_case "off-by-one tiling caught with the Fig. 3 cutout" `Quick (fun () ->
        let g, site = chain_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let r = Difftest.test_instance ~config g x site in
        (match r.verdict with
        | Difftest.Fail f ->
            Alcotest.(check bool) "early" true (f.first_trial <= 5);
            (match f.kind with
            | Difftest.Numerical { container = "V"; _ } -> ()
            | k -> Alcotest.fail (Format.asprintf "wrong kind: %a" Difftest.pp_failure k))
        | Difftest.Pass -> Alcotest.fail "expected failure");
        Alcotest.(check (list string)) "cutout inputs" [ "C"; "U" ] r.cutout.input_config);
    Alcotest.test_case "invalid transformation classified as invalid code" `Quick (fun () ->
        let g = Workloads.Npbench.stencil5 () in
        let x = Transforms.Map_expansion.make Transforms.Map_expansion.Bad_exit_wiring in
        let site = List.hd (x.find g) in
        let r = Difftest.test_instance ~config g x site in
        match r.verdict with
        | Difftest.Fail { klass = Difftest.Invalid_code; _ } -> ()
        | _ -> Alcotest.fail "expected invalid code");
    Alcotest.test_case "size-dependent bug classified input-dependent" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible in
        let site = List.hd (x.find g) in
        let r =
          Difftest.test_instance ~config:{ config with trials = 30; max_size = 9 } g x site
        in
        match r.verdict with
        | Difftest.Fail { klass = Difftest.Input_dependent; failing_trials; _ } ->
            Alcotest.(check bool) "some pass" true (failing_trials < 30)
        | _ -> Alcotest.fail "expected input-dependent failure");
    Alcotest.test_case "identical faults on both sides are uninteresting" `Quick (fun () ->
        let same = Difftest.compare_outcomes ~threshold:0. ~system_state:[ "x" ]
            (Error (Interp.Exec.Hang { steps = 1 }))
            (Error (Interp.Exec.Hang { steps = 2 })) in
        Alcotest.(check bool) "no failure" true (same = None);
        let diverge = Difftest.compare_outcomes ~threshold:0. ~system_state:[ "x" ]
            (Error (Interp.Exec.Hang { steps = 1 }))
            (Error (Interp.Exec.Invalid_graph "x")) in
        Alcotest.(check bool) "divergence" true (diverge <> None));
    Alcotest.test_case "threshold tolerates small drift" `Quick (fun () ->
        let mk v =
          let mem : Interp.Value.t = Hashtbl.create 1 in
          Hashtbl.replace mem "x"
            {
              Interp.Value.name = "x";
              desc = { Sdfg.Graph.shape = []; dtype = Sdfg.Dtype.F64; transient = false; storage = Sdfg.Graph.Host };
              cshape = [||];
              data = [| v |];
            };
          Ok { Interp.Exec.memory = mem; coverage = []; steps = 0; writes = 0; subsets = 0 }
        in
        Alcotest.(check bool) "within" true
          (Difftest.compare_outcomes ~threshold:1e-5 ~system_state:[ "x" ] (mk 1.0) (mk (1.0 +. 1e-9)) = None);
        Alcotest.(check bool) "beyond" true
          (Difftest.compare_outcomes ~threshold:1e-5 ~system_state:[ "x" ] (mk 1.0) (mk 1.1) <> None);
        Alcotest.(check bool) "bitwise when zero" true
          (Difftest.compare_outcomes ~threshold:0. ~system_state:[ "x" ] (mk 1.0) (mk (1.0 +. 1e-12)) <> None));
    Alcotest.test_case "transformed-only reads join the input configuration" `Quick (fun () ->
        (* MapReduceFusion(missing-init) turns an overwrite of [out] into an
           accumulation; the prior contents of [out] must be sampled or the
           bug is invisible (both sides would start from zeros) *)
        let g = Workloads.Npbench.l2norm () in
        let x = Transforms.Map_reduce_fusion.make Transforms.Map_reduce_fusion.Missing_init in
        let site = List.hd (x.find g) in
        let r = Difftest.test_instance ~config g x site in
        (match r.verdict with
        | Difftest.Fail { klass = Difftest.Semantics; _ } -> ()
        | _ -> Alcotest.fail "expected a semantic failure"));
    Alcotest.test_case "min-cut can be disabled" `Quick (fun () ->
        let g, site = chain_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let r = Difftest.test_instance ~config:{ config with use_min_cut = false } g x site in
        Alcotest.(check bool) "no stats" true (r.min_cut_stats = None));
    Alcotest.test_case "whole-program baseline agrees on verdicts" `Quick (fun () ->
        let g, site = chain_site () in
        let good = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let bad = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let v1, _ = Difftest.test_whole_program ~config g good site in
        let v2, _ = Difftest.test_whole_program ~config g bad site in
        Alcotest.(check bool) "good passes" true (v1 = Difftest.Pass);
        Alcotest.(check bool) "bad fails" true (v2 <> Difftest.Pass));
  ]

let testcase_tests =
  [
    Alcotest.test_case "failing report yields a reproducible test case" `Quick (fun () ->
        let g, site = chain_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let r = Difftest.test_instance ~config g x site in
        match Testcase.of_report ~config ~original:g r with
        | None -> Alcotest.fail "expected test case"
        | Some tc ->
            Alcotest.(check bool) "has symbols" true (tc.symbols <> []);
            Alcotest.(check bool) "has inputs" true (tc.inputs <> []);
            (match Testcase.replay tc with
            | Ok _ -> ()
            | Error f -> Alcotest.fail ("replay failed: " ^ Interp.Exec.fault_to_string f));
            let rendered = Testcase.render tc in
            Alcotest.(check bool) "rendered" true (String.length rendered > 100));
    Alcotest.test_case "save writes artifact files" `Quick (fun () ->
        let g, site = chain_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
        let r = Difftest.test_instance ~config g x site in
        match Testcase.of_report ~config ~original:g r with
        | None -> Alcotest.fail "expected test case"
        | Some tc ->
            let dir = Filename.temp_file "ff" "" in
            Sys.remove dir;
            let files = Testcase.save dir tc in
            Alcotest.(check int) "four files" 4 (List.length files);
            List.iter (fun f -> Alcotest.(check bool) f true (Sys.file_exists f)) files);
    Alcotest.test_case "passing report yields no test case" `Quick (fun () ->
        let g, site = chain_site () in
        let x = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
        let r = Difftest.test_instance ~config g x site in
        Alcotest.(check bool) "none" true (Testcase.of_report ~config ~original:g r = None));
  ]

let constraint_tests =
  [
    Alcotest.test_case "size symbols classified as sizes" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols = [] } g ~state:sid ~nodes:[ mm2 ] in
        let c = Constraints.derive ~original:g cut in
        match List.assoc "N" c.sym_order with
        | Constraints.Size _ -> ()
        | _ -> Alcotest.fail "N should be a size");
    Alcotest.test_case "loop variables bounded by loop context" `Quick (fun () ->
        (* the cloudsc sedimentation kernel indexes with the loop variable
           lev, which runs 4 down to 1 *)
        let g = Workloads.Cloudsc.build () in
        let loop =
          List.find (fun (l : Transforms.Xform.loop) -> l.var = "lev") (Transforms.Xform.find_loops g)
        in
        let st = Sdfg.Graph.state g loop.body in
        let entry = List.hd (Transforms.Xform.map_entries st) in
        let cut =
          Cutout.extract_dataflow ~options:{ Cutout.symbols = [] } g ~state:loop.body
            ~nodes:[ entry ]
        in
        Alcotest.(check bool) "lev free in cutout" true (List.mem "lev" cut.free_symbols);
        let c = Constraints.derive ~original:g cut in
        (match List.assoc "lev" c.sym_order with
        | Constraints.Bounded (lo, hi) ->
            let env = Symbolic.Expr.Env.empty in
            Alcotest.(check int) "lo" 1 (Symbolic.Expr.eval env lo);
            Alcotest.(check int) "hi" 4 (Symbolic.Expr.eval env hi)
        | _ -> Alcotest.fail "lev should be loop-bounded"));
    Alcotest.test_case "custom constraints override" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols = [] } g ~state:sid ~nodes:[ mm2 ] in
        let c = Constraints.derive ~custom:[ ("N", (4, 6)) ] ~original:g cut in
        match List.assoc "N" c.sym_order with
        | Constraints.Bounded (lo, hi) ->
            Alcotest.(check int) "lo" 4 (Symbolic.Expr.eval Symbolic.Expr.Env.empty lo);
            Alcotest.(check int) "hi" 6 (Symbolic.Expr.eval Symbolic.Expr.Env.empty hi)
        | _ -> Alcotest.fail "custom bound expected");
    Alcotest.test_case "sampler respects constraints and is deterministic" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols = [] } g ~state:sid ~nodes:[ mm2 ] in
        let c = Constraints.derive ~max_size:12 ~original:g cut in
        let sample seed =
          let r = Sampler.create seed in
          Sampler.sample_symbols r c
        in
        let s1 = sample 5 and s2 = sample 5 and s3 = sample 6 in
        Alcotest.(check bool) "deterministic" true (s1 = s2);
        Alcotest.(check bool) "seed-sensitive" true (s1 <> s3 || true);
        List.iter
          (fun (_, v) -> Alcotest.(check bool) "in range" true (v >= 1 && v <= 12))
          s1);
    Alcotest.test_case "sampled inputs match container sizes and dtypes" `Quick (fun () ->
        let g = Workloads.Npbench.crc_mix () in
        let sid = Sdfg.Graph.start_state g in
        let st = Sdfg.Graph.state g sid in
        let entry = List.hd (Transforms.Xform.map_entries st) in
        let cut = Cutout.extract_dataflow ~options:{ Cutout.symbols = [] } g ~state:sid ~nodes:[ entry ] in
        let c = Constraints.derive ~original:g cut in
        let r = Sampler.create 3 in
        let symbols = Sampler.sample_symbols r c in
        let inputs = Sampler.sample_inputs r c cut ~symbols in
        let n = List.assoc "N" symbols in
        List.iter
          (fun (name, arr) ->
            let d = Sdfg.Graph.container cut.program name in
            if d.shape <> [] then Alcotest.(check int) name n (Array.length arr))
          inputs);
  ]

let () =
  Alcotest.run "difftest"
    [
      ("difftest", difftest_tests);
      ("testcase", testcase_tests);
      ("constraints", constraint_tests);
    ]
