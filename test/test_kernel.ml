(* Differential proof obligation for the batched kernel tier: every workload
   (and a batch of admitted generated programs per style) runs through the
   reference tree-walk, the plan path and the kernel path, and every batched
   sweep must be per-lane bit-identical to its own width-1 run — outcomes
   down to the float bits, step counts, injection counters, coverage digests
   and fault messages. Lanes that fault exercise the per-lane replay path,
   so both the lockstep fast path and the fallback are under test. *)

open Sdfg

let exec_tree = Interp.Exec.run_tree
let exec_plan ?config g = Interp.Exec.run ?config ~tier:Interp.Exec.Plan g
let exec_kernel ?config g = Interp.Exec.run ?config ~tier:Interp.Exec.Kernel g

(* deterministic, value-diverse inputs; [lane] perturbs every element so no
   two lanes of a batch carry the same data *)
let inputs_for ?(lane = 0) g ~symbols =
  let env = Symbolic.Expr.Env.of_list symbols in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if d.transient then None
      else
        let n = List.fold_left (fun v e -> v * max 1 (Symbolic.Expr.eval env e)) 1 d.shape in
        Some
          ( c,
            Array.init n (fun i ->
                (0.125 *. float_of_int (((i * 7) + (lane * 3)) mod 23 - 11))
                +. 0.5
                +. (0.0625 *. float_of_int lane)) ))
    (Graph.containers g)

let symbols_for g =
  List.map (fun s -> (s, if s = "T" then 3 else 6)) (Graph.all_free_syms g)

let roster () =
  List.map (fun (n, g) -> (n, g, symbols_for g)) (Workloads.Npbench.all ())
  @ List.map (fun (n, g) -> ("frontend:" ^ n, g, symbols_for g)) (Workloads.Npb_frontend.all ())
  @ [
      ("fig4", Workloads.Fig4.build (), symbols_for (Workloads.Fig4.build ()));
      ("chain", Workloads.Chain.build (), symbols_for (Workloads.Chain.build ()));
      ("bert", Workloads.Bert.build (), Workloads.Bert.default_symbols);
      ("cloudsc", Workloads.Cloudsc.build (), Workloads.Cloudsc.default_symbols);
      ("sddmm",
       (let g, _, _ = Workloads.Sddmm.rank_program () in g),
       symbols_for (let g, _, _ = Workloads.Sddmm.rank_program () in g));
    ]

let check_same name a b =
  match (a, b) with
  | Error f1, Error f2 ->
      Alcotest.(check string)
        (name ^ ": fault") (Interp.Exec.fault_to_string f1) (Interp.Exec.fault_to_string f2)
  | Ok _, Error f ->
      Alcotest.fail (name ^ ": reference ok, kernel faulted: " ^ Interp.Exec.fault_to_string f)
  | Error f, Ok _ ->
      Alcotest.fail (name ^ ": reference faulted, kernel ok: " ^ Interp.Exec.fault_to_string f)
  | Ok o1, Ok o2 ->
      Alcotest.(check int) (name ^ ": steps") o1.Interp.Exec.steps o2.Interp.Exec.steps;
      Alcotest.(check int) (name ^ ": writes") o1.Interp.Exec.writes o2.Interp.Exec.writes;
      Alcotest.(check int) (name ^ ": subsets") o1.Interp.Exec.subsets o2.Interp.Exec.subsets;
      Alcotest.(check (list int)) (name ^ ": coverage") o1.Interp.Exec.coverage
        o2.Interp.Exec.coverage;
      let names m = Hashtbl.fold (fun k _ acc -> k :: acc) m [] |> List.sort compare in
      Alcotest.(check (list string))
        (name ^ ": containers")
        (names o1.Interp.Exec.memory) (names o2.Interp.Exec.memory);
      Hashtbl.iter
        (fun c (b1 : Interp.Value.buffer) ->
          let b2 = Interp.Value.buffer o2.Interp.Exec.memory c in
          Alcotest.(check (array int64))
            (name ^ ": memory of " ^ c)
            (Array.map Int64.bits_of_float b1.data)
            (Array.map Int64.bits_of_float b2.data))
        o1.Interp.Exec.memory

let cov_config = { Interp.Exec.default_config with collect_coverage = true }

(* three-tier parity: the tree-walk is ground truth for both compiled tiers *)
let differential ?config name g ~symbols ~inputs =
  let t = exec_tree ?config g ~symbols ~inputs in
  check_same (name ^ " [tree=plan]") t (exec_plan ?config g ~symbols ~inputs);
  check_same (name ^ " [tree=kernel]") t (exec_kernel ?config g ~symbols ~inputs)

let workload_tests =
  [
    Alcotest.test_case "kernel matches tree and plan on every workload" `Quick (fun () ->
        List.iter
          (fun (name, g, symbols) ->
            differential ~config:cov_config name g ~symbols ~inputs:(inputs_for g ~symbols))
          (roster ()));
    Alcotest.test_case "parity holds with no inputs (garbage-free zero fill)" `Quick (fun () ->
        List.iter
          (fun (name, g, symbols) -> differential ~config:cov_config name g ~symbols ~inputs:[])
          (roster ()));
  ]

(* ---------------- batched sweeps ---------------- *)

let batch_subjects () =
  [
    ("scale", Workloads.Npbench.scale ());
    ("gemm", Workloads.Npbench.gemm ());
    ("softmax", Workloads.Npbench.softmax ());
    ("fig4", Workloads.Fig4.build ());
  ]

(* every lane of a batched sweep must equal its own width-1 plan run *)
let check_lanes ?config name g ~symbols lanes =
  let results = Interp.Exec.run_batch ?config g ~symbols ~inputs:(Array.of_list lanes) in
  Alcotest.(check int) (name ^ ": lane count") (List.length lanes) (Array.length results);
  List.iteri
    (fun l inputs ->
      check_same
        (Printf.sprintf "%s lane %d/%d" name l (List.length lanes))
        (exec_plan ?config g ~symbols ~inputs)
        results.(l))
    lanes

let batch_tests =
  [
    Alcotest.test_case "each lane equals its own width-1 run (widths 1, 3, 8)" `Quick (fun () ->
        List.iter
          (fun (name, g) ->
            let symbols = symbols_for g in
            List.iter
              (fun width ->
                let lanes = List.init width (fun lane -> inputs_for ~lane g ~symbols) in
                check_lanes ~config:cov_config
                  (Printf.sprintf "%s@%d" name width)
                  g ~symbols lanes)
              [ 1; 3; 8 ])
          (batch_subjects ()));
    Alcotest.test_case "empty batch returns no lanes" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        Alcotest.(check int) "no lanes" 0
          (Array.length (Interp.Exec.run_batch g ~symbols:(symbols_for g) ~inputs:[||])));
    Alcotest.test_case "faulting lane replays without perturbing its neighbors" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let symbols = [ ("N", 4) ] in
        let lanes =
          [
            inputs_for ~lane:0 g ~symbols;
            [ ("x", Array.make 9 1.) ] (* wrong element count: this lane faults *);
            inputs_for ~lane:2 g ~symbols;
          ]
        in
        check_lanes ~config:cov_config "scale with one bad lane" g ~symbols lanes;
        (* the bad lane really did fault — the replay path ran *)
        let results =
          Interp.Exec.run_batch ~config:cov_config g ~symbols ~inputs:(Array.of_list lanes)
        in
        (match results.(1) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "oversized input should fault");
        match results.(0) with
        | Ok _ -> ()
        | Error f -> Alcotest.fail ("good lane faulted: " ^ Interp.Exec.fault_to_string f));
    Alcotest.test_case "all-faulting batch matches per-lane faults" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        (* unbound symbol: compile fails, every lane carries the same fault *)
        let lanes = [ []; [] ] in
        check_lanes "scale without N" g ~symbols:[] lanes);
    Alcotest.test_case "injected faults are bit-identical per lane" `Quick (fun () ->
        let injections =
          [
            Interp.Exec.Flip_bit { nth_write = 2; bit = 52 };
            Interp.Exec.Set_nan { nth_write = 0 };
            Interp.Exec.Set_inf { nth_write = 3 };
            Interp.Exec.Shift_index { nth_subset = 1; delta = 1 };
            Interp.Exec.Shift_index { nth_subset = 4; delta = -2 };
            Interp.Exec.Burn_steps { after = 10 };
          ]
        in
        List.iter
          (fun (name, g) ->
            let symbols = symbols_for g in
            let lanes = List.init 3 (fun lane -> inputs_for ~lane g ~symbols) in
            List.iter
              (fun inject ->
                let config =
                  { Interp.Exec.default_config with inject = Some inject; collect_coverage = true }
                in
                check_lanes ~config
                  (name ^ " under " ^ Interp.Exec.injection_to_string inject)
                  g ~symbols lanes)
              injections)
          [ ("scale", Workloads.Npbench.scale ()); ("fig4", Workloads.Fig4.build ()) ]);
    Alcotest.test_case "hang at a tiny step budget is identical per lane" `Quick (fun () ->
        let g = Workloads.Fig4.build () in
        let symbols = symbols_for g in
        let config = { Interp.Exec.default_config with step_limit = 17 } in
        let lanes = List.init 3 (fun lane -> inputs_for ~lane g ~symbols) in
        check_lanes ~config "fig4 at limit 17" g ~symbols lanes);
  ]

(* ---------------- generated programs ---------------- *)

let generated_tests =
  [
    Alcotest.test_case "50 admitted generated programs per style (three tiers + batch)" `Quick
      (fun () ->
        List.iter
          (fun (style : Gen.Styles.t) ->
            let admitted, _stats = Gen.Admit.batch ~style ~seed:7 ~n:50 () in
            Alcotest.(check int) (style.name ^ ": admitted") 50 (List.length admitted);
            List.iteri
              (fun i (c : Gen.Generate.t) ->
                let symbols = Gen.Admit.concretize c.graph in
                differential ~config:cov_config c.name c.graph ~symbols
                  ~inputs:(inputs_for c.graph ~symbols);
                (* batched sweep parity on a rotating sample (full width-1
                   parity above already covers every program) *)
                if i mod 5 = 0 then
                  let lanes =
                    List.init 3 (fun lane -> inputs_for ~lane c.graph ~symbols)
                  in
                  check_lanes ~config:cov_config (c.name ^ " batched") c.graph ~symbols lanes)
              admitted)
          Gen.Styles.all);
  ]

(* ---------------- kernel cache ---------------- *)

let cache_tests =
  [
    Alcotest.test_case "cache hits on repeated (digest, symbols)" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let c = Interp.Kernel.Cache.create () in
        let digest = Interp.Kernel.Cache.digest_of g in
        (match Interp.Kernel.Cache.compile ~digest c g ~symbols:[ ("N", 4) ] with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f));
        ignore (Interp.Kernel.Cache.compile ~digest c g ~symbols:[ ("N", 4) ]);
        let g2 = Workloads.Npbench.axpy () in
        ignore (Interp.Kernel.Cache.compile c g2 ~symbols:[ ("N", 4) ]);
        let hits, misses = Interp.Kernel.Cache.stats c in
        Alcotest.(check int) "hits" 1 hits;
        Alcotest.(check int) "misses" 2 misses);
    Alcotest.test_case "one digest keys both the plan and kernel caches" `Quick (fun () ->
        let g = Workloads.Npbench.gemm () in
        Alcotest.(check string)
          "same digest" (Interp.Plan.Cache.digest_of g) (Interp.Kernel.Cache.digest_of g));
    Alcotest.test_case "cached kernel re-executes without state leaks" `Quick (fun () ->
        let g = Workloads.Npbench.gemm () in
        let symbols = [ ("N", 5) ] in
        let c = Interp.Kernel.Cache.create () in
        let k =
          match Interp.Kernel.Cache.compile c g ~symbols with
          | Ok k -> k
          | Error f -> Alcotest.fail (Interp.Exec.fault_to_string f)
        in
        let lanes = Array.init 4 (fun lane -> inputs_for ~lane g ~symbols) in
        let r1 = Interp.Kernel.execute_batch ~config:cov_config k ~inputs:lanes in
        let r2 = Interp.Kernel.execute_batch ~config:cov_config k ~inputs:lanes in
        Array.iteri (fun l a -> check_same (Printf.sprintf "reuse lane %d" l) a r2.(l)) r1;
        check_same "batch vs one-shot"
          (exec_plan ~config:cov_config g ~symbols ~inputs:lanes.(2))
          r1.(2));
  ]

(* ---------------- consumers: difftest and fuzzer ---------------- *)

let consumer_tests =
  [
    Alcotest.test_case "difftest verdict identical at widths 1, 8, 64" `Quick (fun () ->
        let g, sid, mm2 = Workloads.Chain.build_with_site () in
        let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2 ] ~descr:"tile" in
        let run batch =
          let config =
            { Fuzzyflow.Difftest.default_config with trials = 12; max_size = 6;
              concretization = [ ("N", 6) ]; batch }
          in
          List.map
            (fun variant ->
              let x = Transforms.Map_tiling.make ~tile_size:3 variant in
              let r = Fuzzyflow.Difftest.test_instance ~config g x site in
              Format.asprintf "%a" Fuzzyflow.Difftest.pp_report r)
            [ Transforms.Map_tiling.Correct; Transforms.Map_tiling.Off_by_one ]
        in
        let serial = run 1 in
        Alcotest.(check (list string)) "width 8" serial (run 8);
        Alcotest.(check (list string)) "width 64" serial (run 64));
    Alcotest.test_case "fuzzer result identical at widths 1, 8, 64" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x =
          Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Assume_divisible
        in
        let site = List.hd (x.find g) in
        let g' = Graph.copy g in
        let cs = x.apply g' site in
        let cut = Fuzzyflow.Cutout.extract ~options:{ Fuzzyflow.Cutout.symbols = [ ("N", 8) ] } g cs in
        let transformed = Graph.copy cut.Fuzzyflow.Cutout.program in
        ignore (x.apply transformed site);
        let run mode batch =
          Fuzzyflow.Fuzzer.run
            ~config:{ Fuzzyflow.Fuzzer.default_config with max_trials = 120; batch }
            mode ~original:g ~cutout:cut ~transformed
        in
        List.iter
          (fun mode ->
            let serial = run mode 1 in
            Alcotest.(check bool) "width 8" true (serial = run mode 8);
            Alcotest.(check bool) "width 64" true (serial = run mode 64))
          [ Fuzzyflow.Fuzzer.Uniform; Fuzzyflow.Fuzzer.Graybox ]);
    Alcotest.test_case "no-failure fuzz run identical at width 8" `Quick (fun () ->
        let g = Workloads.Npbench.scale () in
        let x = Transforms.Vectorization.make ~width:4 Transforms.Vectorization.Correct in
        let site = List.hd (x.find g) in
        let g' = Graph.copy g in
        let cs = x.apply g' site in
        let cut = Fuzzyflow.Cutout.extract ~options:{ Fuzzyflow.Cutout.symbols = [ ("N", 8) ] } g cs in
        let transformed = Graph.copy cut.Fuzzyflow.Cutout.program in
        ignore (x.apply transformed site);
        let run batch =
          Fuzzyflow.Fuzzer.run
            ~config:{ Fuzzyflow.Fuzzer.default_config with max_trials = 40; batch }
            Fuzzyflow.Fuzzer.Graybox ~original:g ~cutout:cut ~transformed
        in
        let serial = run 1 in
        Alcotest.(check bool) "exhausted budget identically" true (serial = run 8);
        Alcotest.(check int) "all trials run" 40 serial.Fuzzyflow.Fuzzer.trials_run);
  ]

let () =
  Alcotest.run "kernel"
    [
      ("workloads", workload_tests);
      ("batch", batch_tests);
      ("generated", generated_tests);
      ("cache", cache_tests);
      ("consumers", consumer_tests);
    ]
