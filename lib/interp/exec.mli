(** SDFG interpreter.

    Replaces DaCe's C++ code generation for this repository: runs a graph to
    completion over concrete symbol values and input arrays, producing the
    final memory image, an execution-coverage set (for coverage-guided
    fuzzing, Sec. 5.1) and precise fault signals — out-of-bounds accesses,
    step-limit "hangs" and invalid-graph conditions — that differential
    testing classifies (Sec. 5).

    Execution has three tiers, all with bit-identical observable semantics:

    - {!tier.Tree} — the reference tree-walk ({!Tree}), re-deriving all
      structure per run; the differential baseline.
    - {!tier.Plan} — compile-once closure plans ({!Plan}); the default.
    - {!tier.Kernel} — batched imperative kernels ({!Kernel}): plans lowered
      one level further to a flat instruction array over [Bigarray] buffers
      carrying a batch axis, so one sweep evaluates N input sets
      structure-of-arrays style ({!run_batch}).

    [run] is the one-shot interface: it lowers the graph for the selected
    tier and runs it once. Loops that execute the same graph many times (the
    difftest trial loop, the fuzzer) should instead compile once — a
    {!Plan.Cache} or {!Kernel.Cache} — and call [execute] /
    [execute_batch] per trial. *)

type fault = Defs.fault =
  | Out_of_bounds of { container : string; index : int array; shape : int array; context : string }
  | Hang of { steps : int }  (** step limit exceeded *)
  | Invalid_graph of string  (** the "generates invalid code" failure class *)
  | Runtime_error of string

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string

(** Deterministic fault injection (faultlab level 1). A plan names an
    execution-order site — the nth container write, the nth concretized
    memlet subset, a step count — not a graph location, so the same plan
    injects at the same place on every run of a program over the same
    inputs. The self-validation campaign uses these to prove the
    differential tester catches interpreter-level corruption. *)
type injection = Defs.injection =
  | Flip_bit of { nth_write : int; bit : int }
      (** XOR IEEE-754 bit [bit] into the first value of write [nth_write] *)
  | Set_nan of { nth_write : int }  (** write a NaN instead *)
  | Set_inf of { nth_write : int }  (** write +inf instead *)
  | Shift_index of { nth_subset : int; delta : int }
      (** shift the first dimension of the nth concretized memlet subset by
          [delta] elements (an off-by-[delta] index computation); scalar
          subsets carry no index computation and are not counted *)
  | Burn_steps of { after : int }
      (** once [after] steps have run, burn the remaining step budget so the
          run surfaces as a {!fault.Hang} *)

val injection_to_string : injection -> string

type config = Defs.config = {
  step_limit : int;  (** abort as a hang beyond this many execution steps *)
  garbage_seed : int;  (** seed for deterministic GPU garbage allocation *)
  collect_coverage : bool;
  inject : injection option;  (** deterministic fault to inject, if any *)
}

val default_config : config

type outcome = Defs.outcome = {
  memory : Value.t;  (** final contents of every container *)
  coverage : int list;  (** sorted coverage-point digests *)
  steps : int;  (** total execution steps consumed *)
  writes : int;  (** container write operations performed (injection sites) *)
  subsets : int;  (** dimensioned memlet subsets concretized (injection sites) *)
}

(** Which execution machinery runs the graph. All three produce bit-identical
    outcomes; they differ only in throughput. *)
type tier = Tree | Plan | Kernel

(** [run g ~symbols ~inputs] validates and executes [g] on [tier] (default
    [Plan]). All free symbols must be bound in [symbols]. [inputs]
    initializes non-transient containers; missing ones are zero-filled, and
    each provided array must match the concretized element count. *)
val run :
  ?config:config ->
  ?tier:tier ->
  Sdfg.Graph.t ->
  symbols:(string * int) list ->
  inputs:(string * float array) list ->
  (outcome, fault) result

(** The reference tree-walk interpreter: identical observable semantics to
    {!run}, re-deriving all structure per run. Kept as the differential
    baseline and the slow side of [bench interp]. *)
val run_tree :
  ?config:config ->
  Sdfg.Graph.t ->
  symbols:(string * int) list ->
  inputs:(string * float array) list ->
  (outcome, fault) result

(** One-shot batched execution on the kernel tier: compile once, then run
    every element of [inputs] as one lane of a single batched sweep. Result
    [i] is bit-identical to [run ~tier:Kernel] over [inputs.(i)] (a compile
    failure is replicated to every lane). Trial loops should prefer a
    {!Kernel.Cache} plus {!Kernel.execute_batch}. *)
val run_batch :
  ?config:config ->
  Sdfg.Graph.t ->
  symbols:(string * int) list ->
  inputs:(string * float array) list array ->
  (outcome, fault) result array
