(* Shared vocabulary of the interpreter stack. Both execution engines — the
   reference tree-walk (Tree) and the compile-once plan path (Plan) — speak
   in these types, and the Exec facade re-exports them unchanged. *)

type fault =
  | Out_of_bounds of { container : string; index : int array; shape : int array; context : string }
  | Hang of { steps : int }
  | Invalid_graph of string
  | Runtime_error of string

let pp_fault fmt = function
  | Out_of_bounds { container; index; shape; context } ->
      Format.fprintf fmt "out-of-bounds access to %s[%s] (shape [%s]) in %s" container
        (String.concat "," (Array.to_list (Array.map string_of_int index)))
        (String.concat "," (Array.to_list (Array.map string_of_int shape)))
        context
  | Hang { steps } -> Format.fprintf fmt "step limit exceeded after %d steps (hang)" steps
  | Invalid_graph s -> Format.fprintf fmt "invalid graph: %s" s
  | Runtime_error s -> Format.fprintf fmt "runtime error: %s" s

let fault_to_string f = Format.asprintf "%a" pp_fault f

(* A plan names an execution-order site (the nth container write, the nth
   concretized memlet subset, a step count) rather than a graph location, so
   the same plan is meaningful on any program and two runs of the same
   program with the same inputs inject at the same place. *)
type injection =
  | Flip_bit of { nth_write : int; bit : int }
  | Set_nan of { nth_write : int }
  | Set_inf of { nth_write : int }
  | Shift_index of { nth_subset : int; delta : int }
  | Burn_steps of { after : int }

let injection_to_string = function
  | Flip_bit { nth_write; bit } -> Printf.sprintf "flip-bit w%d b%d" nth_write bit
  | Set_nan { nth_write } -> Printf.sprintf "set-nan w%d" nth_write
  | Set_inf { nth_write } -> Printf.sprintf "set-inf w%d" nth_write
  | Shift_index { nth_subset; delta } -> Printf.sprintf "shift-index s%d %+d" nth_subset delta
  | Burn_steps { after } -> Printf.sprintf "burn-steps @%d" after

type config = {
  step_limit : int;
  garbage_seed : int;
  collect_coverage : bool;
  inject : injection option;
}

let default_config =
  { step_limit = 50_000_000; garbage_seed = 0xC0FFEE; collect_coverage = false; inject = None }

type outcome = { memory : Value.t; coverage : int list; steps : int; writes : int; subsets : int }

exception F of fault

(* ------------------------------------------------------------------ *)
(* Coverage keys                                                       *)
(* ------------------------------------------------------------------ *)

(* Coverage points are structured keys; the stored representative is a
   collision-safe digest of the full structure, not OCaml's Hashtbl.hash
   (which folds a bounded prefix into ~30 bits and silently collides across
   distinct branch keys, under-reporting coverage). *)
type cov_key =
  | Cov_state of int  (** state [sid] executed *)
  | Cov_iedge of int  (** interstate edge [ie_id] taken *)
  | Cov_map of { state : int; node : int; empty : bool }
      (** map entry [node] entered with an empty / non-empty iteration space *)
  | Cov_select of { state : int; node : int; site : int; taken : bool }
      (** the [site]-th Select evaluated in one tasklet invocation *)

(* FNV-1a over an explicit byte serialization of the key, truncated to 62
   bits so the digest is a non-negative OCaml int on 64-bit platforms. *)
let cov_digest key =
  let h = ref 0xcbf29ce484222325L in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) 0x100000001b3L
  in
  let int64 n =
    let n = ref n in
    for _ = 0 to 7 do
      byte (!n land 0xff);
      n := !n asr 8
    done
  in
  (match key with
  | Cov_state sid ->
      byte 1;
      int64 sid
  | Cov_iedge ie ->
      byte 2;
      int64 ie
  | Cov_map { state; node; empty } ->
      byte 3;
      int64 state;
      int64 node;
      byte (Bool.to_int empty)
  | Cov_select { state; node; site; taken } ->
      byte 4;
      int64 state;
      int64 node;
      int64 site;
      byte (Bool.to_int taken));
  Int64.to_int (Int64.shift_right_logical !h 2)

(* ------------------------------------------------------------------ *)
(* Tasklet scalar operations                                           *)
(* ------------------------------------------------------------------ *)

let apply_bin (op : Sdfg.Tcode.binop) a b =
  match op with
  | Sdfg.Tcode.Add -> a +. b
  | Sdfg.Tcode.Sub -> a -. b
  | Sdfg.Tcode.Mul -> a *. b
  | Sdfg.Tcode.Div -> a /. b
  | Sdfg.Tcode.Pow -> Float.pow a b
  | Sdfg.Tcode.Mod -> Float.rem a b
  | Sdfg.Tcode.Min -> Float.min a b
  | Sdfg.Tcode.Max -> Float.max a b

let apply_un (op : Sdfg.Tcode.unop) a =
  match op with
  | Sdfg.Tcode.Neg -> -.a
  | Sdfg.Tcode.Sqrt -> Float.sqrt a
  | Sdfg.Tcode.Exp -> Float.exp a
  | Sdfg.Tcode.Log -> Float.log a
  | Sdfg.Tcode.Abs -> Float.abs a
  | Sdfg.Tcode.Floor -> Float.floor a
  | Sdfg.Tcode.Sin -> Float.sin a
  | Sdfg.Tcode.Cos -> Float.cos a
  | Sdfg.Tcode.Tanh -> Float.tanh a

let apply_cmp (op : Sdfg.Tcode.cmpop) a b =
  let r =
    match op with
    | Sdfg.Tcode.Lt -> a < b
    | Sdfg.Tcode.Le -> a <= b
    | Sdfg.Tcode.Gt -> a > b
    | Sdfg.Tcode.Ge -> a >= b
    | Sdfg.Tcode.Eq -> a = b
    | Sdfg.Tcode.Ne -> a <> b
  in
  if r then 1. else 0.
