(* Batched imperative kernel tier.

   [compile] lowers a validated graph plus a symbol valuation one level below
   Plan's closure trees into a flat imperative program: tasklet code becomes a
   typed array of instructions (loads/stores with pre-resolved strides, scalar
   ALU ops over an integer-indexed register file), maps and states become
   loop/scope frames over that stream. [execute_batch] runs the program over
   Bigarray-backed dense buffers carrying an extra batch axis, so one sweep
   over the instruction stream evaluates N mutated inputs structure-of-arrays
   style (element-major, lane-minor: element [e] of lane [l] lives at
   [e * nlanes + l]).

   The contract is the same differential obligation Plan carries against the
   tree-walk: verdicts, step/write/subset counters, per-lane coverage digests
   and fault messages must stay bit-identical to the serial plan path for
   every lane. The batch executes lanes in lockstep and that lockstep is only
   valid while control flow, addressing and counters are uniform across the
   batch — which they are whenever no lane faults and no interstate value
   diverges, the overwhelmingly common case in a fuzzing loop where all lanes
   share one symbol valuation. The moment any lane would diverge (a per-lane
   fault, a scalar-container-dependent condition or interstate assignment
   disagreeing between lanes), the sweep abandons the batch and replays every
   lane through the same machinery at batch width 1, where lockstep holds
   trivially and the width-1 kernel is a line-for-line port of Plan's
   execution order. Divergence is detected conservatively *before* it can
   contaminate an observable result, so the fast path never returns anything
   the replay path would not.

   test/test_kernel.ml holds the three-tier differential proof obligation. *)

open Sdfg
open Defs

(* ------------------------------------------------------------------ *)
(* Batched run-time state                                              *)
(* ------------------------------------------------------------------ *)

type kbuffer = {
  kb_name : string;
  kb_desc : Graph.datadesc;
  kb_shape : int array;
  kb_nelem : int;  (* elements per lane *)
  kb_data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (* kb_nelem * nlanes, lane-minor *)
}

type krt = {
  cfg : config;
  nl : int;  (* batch width (lane count) *)
  kbufs : kbuffer array;
  params : int array;  (* map-parameter registers, uniform across lanes *)
  dvals : int array;  (* dynamic symbol values, uniform by invariant *)
  dset : bool array;
  mutable steps : int;  (* counters are uniform across lanes by invariant *)
  mutable writes : int;
  mutable subsets : int;
  covs : (int, unit) Hashtbl.t array;  (* per-lane coverage *)
  sel : int array;  (* per-lane Select site counter within one invocation *)
  lanes0 : int array;  (* [|0; ..; nl-1|], the full active-lane set *)
}

(* Raised (batch width > 1 only) when lanes would stop being in lockstep;
   the batch is then replayed lane-by-lane at width 1. *)
exception Divergent

let tick ?(cost = 1) rt =
  rt.steps <- rt.steps + cost;
  (match rt.cfg.inject with
  | Some (Burn_steps { after }) when rt.steps >= after ->
      rt.steps <- rt.steps + rt.cfg.step_limit
  | _ -> ());
  if rt.steps > rt.cfg.step_limit then raise (F (Hang { steps = rt.steps }))

let record_all rt d =
  if rt.cfg.collect_coverage then
    for l = 0 to rt.nl - 1 do
      Hashtbl.replace rt.covs.(l) d ()
    done

(* ------------------------------------------------------------------ *)
(* Lowered integer expressions with uniformity tracking                *)
(* ------------------------------------------------------------------ *)

let ifdiv a b =
  if b = 0 then raise Symbolic.Expr.Division_by_zero
  else
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ifmod a b =
  if b = 0 then raise Symbolic.Expr.Division_by_zero
  else
    let r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then r + b else r

(* [sc] marks an expression that may read a scalar container — the only
   per-lane data source an integer expression can reach. Everything else
   (params, dynamic symbols, statics) is uniform across the batch, so a
   non-[sc] expression is evaluated once on lane 0. *)
type kexpr = Kc of int | Kd of { sc : bool; f : krt -> int -> int }

let kforce = function Kc k -> fun _ _ -> k | Kd d -> d.f
let ksc = function Kc _ -> false | Kd d -> d.sc

let klift1 f = function
  | Kc a -> Kc (f a)
  | Kd d -> Kd { sc = d.sc; f = (fun rt l -> f (d.f rt l)) }

(* Right operand first, as the reference interpreter and Plan.lift2; a
   constant division by zero refolds to a closure that raises at run time. *)
let klift2 f a b =
  match (a, b) with
  | Kc x, Kc y -> (
      match f x y with
      | v -> Kc v
      | exception Symbolic.Expr.Division_by_zero ->
          Kd { sc = false; f = (fun _ _ -> raise Symbolic.Expr.Division_by_zero) })
  | _ ->
      let fa = kforce a and fb = kforce b in
      Kd
        {
          sc = ksc a || ksc b;
          f =
            (fun rt l ->
              let vb = fb rt l in
              let va = fa rt l in
              f va vb);
        }

(* Uniform evaluation: lane 0's value, with a lockstep check over the other
   lanes when the expression can see per-lane data. A lane whose evaluation
   faults where lane 0's did not raises that fault, which the batch-level
   guard turns into a replay. *)
let ueval rt e =
  match e with
  | Kc k -> k
  | Kd { sc; f } ->
      let v = f rt 0 in
      if sc && rt.nl > 1 then
        for l = 1 to rt.nl - 1 do
          if f rt l <> v then raise Divergent
        done;
      v

(* ------------------------------------------------------------------ *)
(* Compile-time environment (same shape as Plan's)                     *)
(* ------------------------------------------------------------------ *)

type cenv = {
  cg : Graph.t;
  buf_idx : (string, int) Hashtbl.t;
  scalar_idx : (string, int) Hashtbl.t;
  dyn_idx : (string, int) Hashtbl.t;
  static : int Symbolic.Expr.Env.t;
  mutable nparams : int;
}

let scalar_read bid rt l = int_of_float (Bigarray.Array1.get rt.kbufs.(bid).kb_data l)

let klower_sym cv sparams ~interstate s =
  match List.assoc_opt s sparams with
  | Some slot -> Kd { sc = false; f = (fun rt _ -> rt.params.(slot)) }
  | None -> (
      match Hashtbl.find_opt cv.dyn_idx s with
      | Some i -> (
          match if interstate then Hashtbl.find_opt cv.scalar_idx s else None with
          | Some bid ->
              Kd
                {
                  sc = true;
                  f = (fun rt l -> if rt.dset.(i) then rt.dvals.(i) else scalar_read bid rt l);
                }
          | None ->
              Kd
                {
                  sc = false;
                  f =
                    (fun rt _ ->
                      if rt.dset.(i) then rt.dvals.(i)
                      else raise (Symbolic.Expr.Unbound_symbol s));
                })
      | None -> (
          match Symbolic.Expr.Env.find_opt s cv.static with
          | Some v -> Kc v
          | None -> (
              match if interstate then Hashtbl.find_opt cv.scalar_idx s else None with
              | Some bid -> Kd { sc = true; f = scalar_read bid }
              | None ->
                  Kd { sc = false; f = (fun _ _ -> raise (Symbolic.Expr.Unbound_symbol s)) })))

let rec klower_expr cv sparams ~interstate (e : Symbolic.Expr.t) =
  let go x = klower_expr cv sparams ~interstate x in
  match e with
  | Symbolic.Expr.Int n -> Kc n
  | Symbolic.Expr.Sym s -> klower_sym cv sparams ~interstate s
  | Symbolic.Expr.Add (a, b) -> klift2 ( + ) (go a) (go b)
  | Symbolic.Expr.Sub (a, b) -> klift2 ( - ) (go a) (go b)
  | Symbolic.Expr.Mul (a, b) -> klift2 ( * ) (go a) (go b)
  | Symbolic.Expr.Div (a, b) -> klift2 ifdiv (go a) (go b)
  | Symbolic.Expr.Mod (a, b) -> klift2 ifmod (go a) (go b)
  | Symbolic.Expr.Min (a, b) -> klift2 Stdlib.min (go a) (go b)
  | Symbolic.Expr.Max (a, b) -> klift2 Stdlib.max (go a) (go b)
  | Symbolic.Expr.Neg a -> klift1 (fun x -> -x) (go a)

type kcond = { csc : bool; cf : krt -> int -> bool }

(* Comparisons evaluate their right operand first; And/Or short-circuit
   left-first, exactly as Cond.eval. *)
let rec klower_cond cv (c : Symbolic.Cond.t) =
  let e x =
    let k = klower_expr cv [] ~interstate:true x in
    (ksc k, kforce k)
  in
  let cmp op a b =
    let sa, fa = e a and sb, fb = e b in
    {
      csc = sa || sb;
      cf =
        (fun rt l ->
          let vb = fb rt l in
          let va = fa rt l in
          op va vb);
    }
  in
  match c with
  | Symbolic.Cond.True -> { csc = false; cf = (fun _ _ -> true) }
  | Symbolic.Cond.False -> { csc = false; cf = (fun _ _ -> false) }
  | Symbolic.Cond.Lt (a, b) -> cmp ( < ) a b
  | Symbolic.Cond.Le (a, b) -> cmp ( <= ) a b
  | Symbolic.Cond.Gt (a, b) -> cmp ( > ) a b
  | Symbolic.Cond.Ge (a, b) -> cmp ( >= ) a b
  | Symbolic.Cond.Eq (a, b) -> cmp ( = ) a b
  | Symbolic.Cond.Ne (a, b) -> cmp ( <> ) a b
  | Symbolic.Cond.And (a, b) ->
      let la = klower_cond cv a and lb = klower_cond cv b in
      { csc = la.csc || lb.csc; cf = (fun rt l -> la.cf rt l && lb.cf rt l) }
  | Symbolic.Cond.Or (a, b) ->
      let la = klower_cond cv a and lb = klower_cond cv b in
      { csc = la.csc || lb.csc; cf = (fun rt l -> la.cf rt l || lb.cf rt l) }
  | Symbolic.Cond.Not a ->
      let la = klower_cond cv a in
      { csc = la.csc; cf = (fun rt l -> not (la.cf rt l)) }

let ueval_cond rt (c : kcond) =
  let v = c.cf rt 0 in
  if c.csc && rt.nl > 1 then
    for l = 1 to rt.nl - 1 do
      if c.cf rt l <> v then raise Divergent
    done;
  v

(* ------------------------------------------------------------------ *)
(* Lowered subsets                                                     *)
(* ------------------------------------------------------------------ *)

type klrange =
  | KLc of Symbolic.Subset.crange
  | KLd of (krt -> int -> int) * (krt -> int -> int) * (krt -> int -> int)  (* lo, hi, step *)

(* Memlet subsets never reach scalar containers (they are lowered with
   ~interstate:false), so ranges, points and subsets are uniform across the
   batch and evaluated on lane 0 only. *)
type klsub =
  | KSscalar
  | KSpoint of (krt -> int -> int) array
  | KSconst of Symbolic.Subset.crange list
  | KSdyn of klrange array

let klower_range cv sparams (r : Symbolic.Subset.range) =
  let lo = klower_expr cv sparams ~interstate:false r.lo in
  let hi = klower_expr cv sparams ~interstate:false r.hi in
  let step = klower_expr cv sparams ~interstate:false r.step in
  match (lo, hi, step) with
  | Kc l, Kc h, Kc s -> KLc { Symbolic.Subset.clo = l; chi = h; cstep = s }
  | _ -> KLd (kforce lo, kforce hi, kforce step)

(* Same point classification as Plan.lower_subset: lo and hi structurally
   equal (skipping hi cannot skip a distinct exception) and a constant-1
   step; requested only for tasklet memlets. *)
let klower_subset cv sparams ~point (s : Symbolic.Subset.t) =
  match s with
  | [] -> KSscalar
  | _ ->
      let is_point =
        point
        && List.for_all
             (fun (r : Symbolic.Subset.range) ->
               r.lo = r.hi
               &&
               match klower_expr cv sparams ~interstate:false r.step with
               | Kc 1 -> true
               | _ -> false)
             s
      in
      if is_point then
        KSpoint
          (Array.of_list
             (List.map
                (fun (r : Symbolic.Subset.range) ->
                  kforce (klower_expr cv sparams ~interstate:false r.lo))
                s))
      else
        let ls = List.map (klower_range cv sparams) s in
        if List.for_all (function KLc _ -> true | KLd _ -> false) ls then
          KSconst (List.map (function KLc c -> c | KLd _ -> assert false) ls)
        else KSdyn (Array.of_list ls)

(* step, then hi, then lo — Subset.concretize_range's record-literal order. *)
let keval_range rt = function
  | KLc c -> c
  | KLd (flo, fhi, fstep) ->
      let cstep = fstep rt 0 in
      let chi = fhi rt 0 in
      let clo = flo rt 0 in
      { Symbolic.Subset.clo; chi; cstep }

let subset_fault = function
  | Symbolic.Expr.Unbound_symbol s ->
      F (Runtime_error ("unbound symbol " ^ s ^ " in subset"))
  | Symbolic.Expr.Division_by_zero -> F (Runtime_error "division by zero in subset")
  | e -> e

let kconcretize_sub rt ls =
  let cs =
    match ls with
    | KSscalar -> []
    | KSconst cs -> cs
    | KSdyn lrs -> (
        try Array.to_list (Array.map (keval_range rt) lrs) with e -> raise (subset_fault e))
    | KSpoint _ -> assert false
  in
  match cs with
  | [] -> cs
  | (r : Symbolic.Subset.crange) :: rest ->
      let cs =
        match rt.cfg.inject with
        | Some (Shift_index { nth_subset; delta }) when rt.subsets = nth_subset ->
            { r with Symbolic.Subset.clo = r.clo + delta; chi = r.chi + delta } :: rest
        | _ -> cs
      in
      rt.subsets <- rt.subsets + 1;
      cs

let keval_point rt fs =
  let idx = try Array.map (fun f -> f rt 0) fs with e -> raise (subset_fault e) in
  (match rt.cfg.inject with
  | Some (Shift_index { nth_subset; delta }) when rt.subsets = nth_subset ->
      idx.(0) <- idx.(0) + delta
  | _ -> ());
  rt.subsets <- rt.subsets + 1;
  idx

(* ------------------------------------------------------------------ *)
(* Buffer addressing and write interception                            *)
(* ------------------------------------------------------------------ *)

type kbref = KBok of int | KBmissing of string

let kgetbuf rt = function
  | KBok i -> rt.kbufs.(i)
  | KBmissing name ->
      raise (F (Invalid_graph ("reference to unallocated container " ^ name)))

(* Same checks and order as Value.offset, against the per-lane shape. *)
let koffset b idx =
  let dims = Array.length b.kb_shape in
  if Array.length idx <> dims then
    raise (Value.Out_of_bounds { container = b.kb_name; index = idx; shape = b.kb_shape });
  let off = ref 0 in
  for d = 0 to dims - 1 do
    let i = idx.(d) in
    if i < 0 || i >= b.kb_shape.(d) then
      raise (Value.Out_of_bounds { container = b.kb_name; index = idx; shape = b.kb_shape });
    off := (!off * b.kb_shape.(d)) + i
  done;
  !off

let subset_volume cs =
  List.fold_left (fun acc r -> acc * Symbolic.Subset.crange_count r) 1 cs

(* Flat offsets of a concrete subset, visiting elements in exactly
   Value.iter_subset's row-major order so the first out-of-bounds element
   raises before any later element is touched. *)
let offsets_of_sub b cs =
  let ranges = Array.of_list cs in
  let dims = Array.length ranges in
  if dims = 0 then [| koffset b [||] |]
  else begin
    let counts = Array.map Symbolic.Subset.crange_count ranges in
    let total = Array.fold_left ( * ) 1 counts in
    if total <= 0 then [||]
    else begin
      let out = Array.make total 0 in
      let idx = Array.make dims 0 in
      for flat = 0 to total - 1 do
        let rem = ref flat in
        for d = dims - 1 downto 0 do
          let c = counts.(d) in
          let pos = !rem mod c in
          rem := !rem / c;
          idx.(d) <- ranges.(d).Symbolic.Subset.clo + (pos * ranges.(d).Symbolic.Subset.cstep)
        done;
        out.(flat) <- koffset b idx
      done;
      out
    end
  end

let oob_fault context = function
  | Value.Out_of_bounds { container; index; shape } ->
      F (Out_of_bounds { container; index; shape; context })
  | e -> e

(* The write counter advances once per write operation (uniform across
   lanes); the returned patch is then applied to every lane's own value at
   the injected position — which is what N serial runs at the same counter
   each do to their own value. *)
let wpatch rt =
  let k =
    match rt.cfg.inject with
    | Some (Flip_bit { nth_write; bit }) when rt.writes = nth_write -> `Flip bit
    | Some (Set_nan { nth_write }) when rt.writes = nth_write -> `Nan
    | Some (Set_inf { nth_write }) when rt.writes = nth_write -> `Inf
    | _ -> `No
  in
  rt.writes <- rt.writes + 1;
  k

let apply_patch k v =
  match k with
  | `No -> v
  | `Flip bit ->
      Int64.float_of_bits
        (Int64.logxor (Int64.bits_of_float v) (Int64.shift_left 1L (bit land 63)))
  | `Nan -> Float.nan
  | `Inf -> Float.infinity

(* ------------------------------------------------------------------ *)
(* Tasklet instruction stream                                          *)
(* ------------------------------------------------------------------ *)

(* Registers index a unified file: connector slots first, then expression
   temporaries; register [r] of lane [l] lives at [r * nlanes + l]. *)
type tinstr =
  | Iconst of int * float  (* dst, literal *)
  | Imov of int * int  (* dst, src *)
  | Iparam of int * int  (* dst, map-parameter slot *)
  | Idyn of int * int * fault  (* dst, dynamic slot, unbound fault *)
  | Ifail of fault  (* unbound reference *)
  | Ibin of Tcode.binop * int * int * int  (* dst, a, b *)
  | Iun of Tcode.unop * int * int
  | Icmp of Tcode.cmpop * int * int * int
  | Isel of { s_cond : int; s_then : tinstr array; s_else : tinstr array }
      (* both branch streams end by moving their result into the select's
         destination register for their partition of the lanes *)

type ktask_read = { krd_buf : kbref; krd_sub : klsub; krd_slot : int; krd_ctx : string }
type kwsrc = KWslot of int | KWmissing of string

type ktask_write = {
  kwr_src : kwsrc;
  kwr_buf : kbref;
  kwr_sub : klsub;
  kwr_wcr : Memlet.wcr option;
  kwr_ctx : string;
}

type ktask = {
  k_host_fault : fault option;
  k_reads : ktask_read array;  (* in in-edge order *)
  k_prog : tinstr array;  (* all assignments, flattened in order *)
  k_writes : ktask_write array;  (* in out-edge order *)
  k_nregs : int;
  mutable k_regs : float array;  (* k_nregs * nlanes, grown lazily *)
  k_sel_digests : int array;
  k_sid : int;
  k_nid : int;
}

(* Instruction interpreter. [lanes] is the active lane set — all lanes at
   tasklet entry, partitioned by Select conditions below. All effects are
   lane-local (registers, the per-lane select counter, per-lane coverage), so
   executing the taken partition before the untaken one is unobservable. *)
let rec exec_tinstrs rt (t : ktask) regs lanes prog =
  Array.iter (exec_tinstr rt t regs lanes) prog

and exec_tinstr rt (t : ktask) regs lanes instr =
  let nl = rt.nl in
  match instr with
  | Iconst (d, v) -> Array.iter (fun l -> regs.((d * nl) + l) <- v) lanes
  | Imov (d, s) -> Array.iter (fun l -> regs.((d * nl) + l) <- regs.((s * nl) + l)) lanes
  | Iparam (d, p) ->
      let v = float_of_int rt.params.(p) in
      Array.iter (fun l -> regs.((d * nl) + l) <- v) lanes
  | Idyn (d, i, unbound) ->
      if rt.dset.(i) then begin
        let v = float_of_int rt.dvals.(i) in
        Array.iter (fun l -> regs.((d * nl) + l) <- v) lanes
      end
      else raise (F unbound)
  | Ifail f -> raise (F f)
  | Ibin (op, d, a, b) ->
      Array.iter
        (fun l -> regs.((d * nl) + l) <- apply_bin op regs.((a * nl) + l) regs.((b * nl) + l))
        lanes
  | Iun (op, d, a) ->
      Array.iter (fun l -> regs.((d * nl) + l) <- apply_un op regs.((a * nl) + l)) lanes
  | Icmp (op, d, a, b) ->
      Array.iter
        (fun l -> regs.((d * nl) + l) <- apply_cmp op regs.((a * nl) + l) regs.((b * nl) + l))
        lanes
  | Isel { s_cond; s_then; s_else } ->
      let n = Array.length lanes in
      let taken = Array.make n false in
      let ntaken = ref 0 in
      for j = 0 to n - 1 do
        let l = lanes.(j) in
        let tk = regs.((s_cond * nl) + l) <> 0. in
        taken.(j) <- tk;
        if tk then incr ntaken;
        let k = rt.sel.(l) in
        rt.sel.(l) <- k + 1;
        if rt.cfg.collect_coverage then begin
          let i = (2 * k) + Bool.to_int tk in
          if i < Array.length t.k_sel_digests then
            Hashtbl.replace rt.covs.(l) t.k_sel_digests.(i) ()
          else
            Hashtbl.replace rt.covs.(l)
              (cov_digest (Cov_select { state = t.k_sid; node = t.k_nid; site = k; taken = tk }))
              ()
        end
      done;
      if !ntaken = n then exec_tinstrs rt t regs lanes s_then
      else if !ntaken = 0 then exec_tinstrs rt t regs lanes s_else
      else begin
        (* Divergent select: each partition runs only its own branch, so the
           untaken branch's effects (nested select counters, coverage,
           unbound-reference faults) stay lazily skipped per lane exactly as
           in a serial run. A fault inside a partial partition aborts the
           batch via the width-guard below. *)
        let tl = Array.make !ntaken 0 and el = Array.make (n - !ntaken) 0 in
        let ti = ref 0 and ei = ref 0 in
        for j = 0 to n - 1 do
          if taken.(j) then begin
            tl.(!ti) <- lanes.(j);
            incr ti
          end
          else begin
            el.(!ei) <- lanes.(j);
            incr ei
          end
        done;
        exec_tinstrs rt t regs tl s_then;
        exec_tinstrs rt t regs el s_else
      end

let kregs rt (t : ktask) =
  let need = max 1 (t.k_nregs * rt.nl) in
  if Array.length t.k_regs < need then t.k_regs <- Array.make need 0.;
  t.k_regs

(* ------------------------------------------------------------------ *)
(* Tasklet reads and writes                                            *)
(* ------------------------------------------------------------------ *)

let kread_single rt regs (r : ktask_read) =
  let nl = rt.nl in
  let b = kgetbuf rt r.krd_buf in
  let base = r.krd_slot * nl in
  match r.krd_sub with
  | KSpoint fs ->
      let idx = keval_point rt fs in
      let off = try koffset b idx with e -> raise (oob_fault r.krd_ctx e) in
      let ebase = off * nl in
      for l = 0 to nl - 1 do
        regs.(base + l) <- Bigarray.Array1.unsafe_get b.kb_data (ebase + l)
      done
  | ls ->
      let cs = kconcretize_sub rt ls in
      let vol = subset_volume cs in
      (* offsets (hence bounds faults) first, then the volume check, matching
         read_subset-then-length-test; volume 0 reads back read_subset's
         synthetic 0. *)
      let offs = try offsets_of_sub b cs with e -> raise (oob_fault r.krd_ctx e) in
      if max 1 vol <> 1 then
        raise
          (F
             (Invalid_graph
                (Printf.sprintf "%s: tasklet memlet must have volume 1 (got %d)" r.krd_ctx
                   (max 1 vol))))
      else if vol = 0 then
        for l = 0 to nl - 1 do
          regs.(base + l) <- 0.
        done
      else begin
        let ebase = offs.(0) * nl in
        for l = 0 to nl - 1 do
          regs.(base + l) <- Bigarray.Array1.unsafe_get b.kb_data (ebase + l)
        done
      end

let kwrite_single rt regs (w : ktask_write) src_slot =
  let nl = rt.nl in
  let b = kgetbuf rt w.kwr_buf in
  let dt = b.kb_desc.Graph.dtype in
  let base = src_slot * nl in
  match w.kwr_sub with
  | KSpoint fs -> (
      let idx = keval_point rt fs in
      let k = wpatch rt in
      let off = try koffset b idx with e -> raise (oob_fault w.kwr_ctx e) in
      let ebase = off * nl in
      match w.kwr_wcr with
      | None ->
          for l = 0 to nl - 1 do
            Bigarray.Array1.unsafe_set b.kb_data (ebase + l)
              (Value.cast dt (apply_patch k regs.(base + l)))
          done
      | Some wc ->
          for l = 0 to nl - 1 do
            let old = Bigarray.Array1.unsafe_get b.kb_data (ebase + l) in
            Bigarray.Array1.unsafe_set b.kb_data (ebase + l)
              (Value.cast dt (Memlet.apply_wcr wc old (apply_patch k regs.(base + l))))
          done)
  | ls -> (
      let cs = kconcretize_sub rt ls in
      let k = wpatch rt in
      (* write_subset's volume test fires before any element is touched *)
      let vol = max 1 (subset_volume cs) in
      if vol <> 1 then
        invalid_arg
          (Printf.sprintf "Value.%s: %d values for volume-%d subset of %s"
             (match w.kwr_wcr with None -> "write_subset" | Some _ -> "accumulate_subset")
             1 vol b.kb_name);
      if subset_volume cs = 0 then ()
      else
        let offs = try offsets_of_sub b cs with e -> raise (oob_fault w.kwr_ctx e) in
        let ebase = offs.(0) * nl in
        match w.kwr_wcr with
        | None ->
            for l = 0 to nl - 1 do
              Bigarray.Array1.unsafe_set b.kb_data (ebase + l)
                (Value.cast dt (apply_patch k regs.(base + l)))
            done
        | Some wc ->
            for l = 0 to nl - 1 do
              let old = Bigarray.Array1.unsafe_get b.kb_data (ebase + l) in
              Bigarray.Array1.unsafe_set b.kb_data (ebase + l)
                (Value.cast dt (Memlet.apply_wcr wc old (apply_patch k regs.(base + l))))
            done)

let exec_ktask rt (t : ktask) =
  (match t.k_host_fault with Some f -> raise (F f) | None -> ());
  tick rt;
  let regs = kregs rt t in
  Array.iter (fun r -> kread_single rt regs r) t.k_reads;
  Array.fill rt.sel 0 rt.nl 0;
  exec_tinstrs rt t regs rt.lanes0 t.k_prog;
  Array.iter
    (fun w ->
      match w.kwr_src with
      | KWslot i -> kwrite_single rt regs w i
      | KWmissing msg -> raise (F (Invalid_graph msg)))
    t.k_writes
(* ------------------------------------------------------------------ *)
(* Library nodes                                                       *)
(* ------------------------------------------------------------------ *)

type klib_conn =
  | KCok of { kc_buf : kbref; kc_sub : klsub; kc_wcr : Memlet.wcr option; kc_ctx : string }
  | KCmissing of string

type klib = {
  kl_nid : int;
  kl_kind : Node.lib_kind;
  kl_host_fault : fault option;
  kl_a : klib_conn;  (* "A" / "in" *)
  kl_b : klib_conn option;  (* "B"; None for Reduce *)
  kl_out : klib_conn;  (* "C" / "out" *)
}

(* Counters and bounds faults of the read happen once (uniform); the actual
   per-lane data gather is deferred to the compute loop. *)
let klib_read rt = function
  | KCmissing msg -> raise (F (Invalid_graph msg))
  | KCok { kc_buf; kc_sub; kc_ctx; _ } ->
      let b = kgetbuf rt kc_buf in
      let cs = kconcretize_sub rt kc_sub in
      let counts = List.map Symbolic.Subset.crange_count cs in
      let offs = try offsets_of_sub b cs with e -> raise (oob_fault kc_ctx e) in
      (b, offs, counts)

(* One lane's values of a pre-resolved offset list, with read_subset's
   synthetic element for volume-0 subsets. *)
let gather_lane (b : kbuffer) offs l nl =
  let n = Array.length offs in
  let out = Array.make (max 1 n) 0. in
  for i = 0 to n - 1 do
    out.(i) <- Bigarray.Array1.unsafe_get b.kb_data ((offs.(i) * nl) + l)
  done;
  out

(* [values] holds one equally-long array per lane (the library compute is
   shape-uniform); counter discipline and the write-subset volume test fire
   once, then every lane scatters its own values. *)
let klib_write rt conn (values : float array array) =
  match conn with
  | KCmissing msg -> raise (F (Invalid_graph msg))
  | KCok { kc_buf; kc_sub; kc_wcr; kc_ctx } ->
      let nl = rt.nl in
      let b = kgetbuf rt kc_buf in
      let dt = b.kb_desc.Graph.dtype in
      let cs = kconcretize_sub rt kc_sub in
      let k = wpatch rt in
      let len = Array.length values.(0) in
      let vol = max 1 (subset_volume cs) in
      if len <> vol then
        invalid_arg
          (Printf.sprintf "Value.%s: %d values for volume-%d subset of %s"
             (match kc_wcr with None -> "write_subset" | Some _ -> "accumulate_subset")
             len vol b.kb_name);
      if subset_volume cs = 0 then ()
      else begin
        let offs = try offsets_of_sub b cs with e -> raise (oob_fault kc_ctx e) in
        match kc_wcr with
        | None ->
            for l = 0 to nl - 1 do
              let v = values.(l) in
              for i = 0 to len - 1 do
                let x = if i = 0 then apply_patch k v.(0) else v.(i) in
                Bigarray.Array1.unsafe_set b.kb_data ((offs.(i) * nl) + l) (Value.cast dt x)
              done
            done
        | Some wc ->
            for l = 0 to nl - 1 do
              let v = values.(l) in
              for i = 0 to len - 1 do
                let x = if i = 0 then apply_patch k v.(0) else v.(i) in
                let old = Bigarray.Array1.unsafe_get b.kb_data ((offs.(i) * nl) + l) in
                Bigarray.Array1.unsafe_set b.kb_data ((offs.(i) * nl) + l)
                  (Value.cast dt (Memlet.apply_wcr wc old x))
              done
            done
      end

let exec_klib rt (lib : klib) =
  (match lib.kl_host_fault with Some f -> raise (F f) | None -> ());
  tick rt;
  let nl = rt.nl in
  match lib.kl_kind with
  | Node.Mat_mul -> (
      let ba, aoffs, adims = klib_read rt lib.kl_a in
      let bb, boffs, bdims = klib_read rt (Option.get lib.kl_b) in
      match (adims, bdims) with
      | [ m; k ], [ k'; n ] when k = k' ->
          tick rt ~cost:(m * n * k);
          let cvals =
            Array.init nl (fun l ->
                let a = gather_lane ba aoffs l nl in
                let b = gather_lane bb boffs l nl in
                let c = Array.make (m * n) 0. in
                for i = 0 to m - 1 do
                  for j = 0 to n - 1 do
                    let acc = ref 0. in
                    for p = 0 to k - 1 do
                      acc := !acc +. (a.((i * k) + p) *. b.((p * n) + j))
                    done;
                    c.((i * n) + j) <- !acc
                  done
                done;
                c)
          in
          klib_write rt lib.kl_out cvals
      | _ ->
          raise
            (F (Invalid_graph (Printf.sprintf "matmul node %d: incompatible shapes" lib.kl_nid)))
      )
  | Node.Batched_mat_mul -> (
      let ba, aoffs, adims = klib_read rt lib.kl_a in
      let bb, boffs, bdims = klib_read rt (Option.get lib.kl_b) in
      match (adims, bdims) with
      | [ bt; m; k ], [ bt'; k'; n ] when k = k' && bt = bt' ->
          tick rt ~cost:(bt * m * n * k);
          let cvals =
            Array.init nl (fun l ->
                let a = gather_lane ba aoffs l nl in
                let b = gather_lane bb boffs l nl in
                let c = Array.make (bt * m * n) 0. in
                for bi = 0 to bt - 1 do
                  for i = 0 to m - 1 do
                    for j = 0 to n - 1 do
                      let acc = ref 0. in
                      for p = 0 to k - 1 do
                        acc :=
                          !acc
                          +. (a.((bi * m * k) + (i * k) + p) *. b.((bi * k * n) + (p * n) + j))
                      done;
                      c.((bi * m * n) + (i * n) + j) <- !acc
                    done
                  done
                done;
                c)
          in
          klib_write rt lib.kl_out cvals
      | _ ->
          raise
            (F
               (Invalid_graph
                  (Printf.sprintf "batched matmul node %d: incompatible shapes" lib.kl_nid))))
  | Node.Reduce (op, axes) ->
      let bi, ioffs, dims = klib_read rt lib.kl_a in
      let ndims = List.length dims in
      List.iter
        (fun ax ->
          if ax < 0 || ax >= ndims then
            raise
              (F (Invalid_graph (Printf.sprintf "reduce node %d: bad axis %d" lib.kl_nid ax))))
        axes;
      tick rt ~cost:(List.fold_left ( * ) 1 dims);
      let dims_arr = Array.of_list dims in
      let keep = List.filter (fun d -> not (List.mem d axes)) (List.init ndims Fun.id) in
      let out_dims = List.map (fun d -> dims_arr.(d)) keep in
      let out_n = List.fold_left ( * ) 1 out_dims in
      let total = Array.fold_left ( * ) 1 dims_arr in
      let ovals =
        Array.init nl (fun l ->
            let input = gather_lane bi ioffs l nl in
            let out = Array.make out_n (Memlet.wcr_identity op) in
            let idx = Array.make ndims 0 in
            for flat = 0 to total - 1 do
              let rem = ref flat in
              for d = ndims - 1 downto 0 do
                idx.(d) <- !rem mod dims_arr.(d);
                rem := !rem / dims_arr.(d)
              done;
              let oflat = List.fold_left (fun acc d -> (acc * dims_arr.(d)) + idx.(d)) 0 keep in
              out.(oflat) <- Memlet.apply_wcr op out.(oflat) input.(flat)
            done;
            out)
      in
      klib_write rt lib.kl_out ovals

(* ------------------------------------------------------------------ *)
(* Copies                                                              *)
(* ------------------------------------------------------------------ *)

type kcopy =
  | KCopy_missing_desc  (* dst container has no descriptor: Not_found, verbatim *)
  | KCopy of {
      kcp_src : kbref;
      kcp_ssub : klsub;
      kcp_dst : kbref;
      kcp_dsub : klsub;
      kcp_wcr : Memlet.wcr option;
      kcp_ctx : string;
    }

let exec_kcopy rt = function
  | KCopy_missing_desc -> raise Not_found
  | KCopy { kcp_src; kcp_ssub; kcp_dst; kcp_dsub; kcp_wcr; kcp_ctx } -> (
      let nl = rt.nl in
      let sb = kgetbuf rt kcp_src in
      let db = kgetbuf rt kcp_dst in
      let scs = kconcretize_sub rt kcp_ssub in
      let dcs = kconcretize_sub rt kcp_dsub in
      let svol = subset_volume scs in
      let soffs = try offsets_of_sub sb scs with e -> raise (oob_fault kcp_ctx e) in
      let len = max 1 svol in
      tick rt ~cost:(max 1 (len / 64));
      let k = wpatch rt in
      let dt = db.kb_desc.Graph.dtype in
      let dvol = max 1 (subset_volume dcs) in
      if len <> dvol then
        invalid_arg
          (Printf.sprintf "Value.%s: %d values for volume-%d subset of %s"
             (match kcp_wcr with None -> "write_subset" | Some _ -> "accumulate_subset")
             len dvol db.kb_name);
      if subset_volume dcs = 0 then ()
      else
        let doffs = try offsets_of_sub db dcs with e -> raise (oob_fault kcp_ctx e) in
        let vals = Array.make len 0. in
        for l = 0 to nl - 1 do
          (* materialize this lane's reads before its writes — overlapping
             src/dst subsets must observe pre-copy values *)
          if svol = 0 then vals.(0) <- 0.
          else
            for i = 0 to len - 1 do
              vals.(i) <- Bigarray.Array1.unsafe_get sb.kb_data ((soffs.(i) * nl) + l)
            done;
          match kcp_wcr with
          | None ->
              for i = 0 to len - 1 do
                let x = if i = 0 then apply_patch k vals.(0) else vals.(i) in
                Bigarray.Array1.unsafe_set db.kb_data ((doffs.(i) * nl) + l) (Value.cast dt x)
              done
          | Some wc ->
              for i = 0 to len - 1 do
                let x = if i = 0 then apply_patch k vals.(0) else vals.(i) in
                let old = Bigarray.Array1.unsafe_get db.kb_data ((doffs.(i) * nl) + l) in
                Bigarray.Array1.unsafe_set db.kb_data ((doffs.(i) * nl) + l)
                  (Value.cast dt (Memlet.apply_wcr wc old x))
              done
        done)

(* ------------------------------------------------------------------ *)
(* Scope frames and program structure                                  *)
(* ------------------------------------------------------------------ *)

type kop = Kop_task of ktask | Kop_lib of klib | Kop_copies of kcopy array | Kop_map of kmap

and kmap = {
  km_nid : int;
  km_cov : int array;  (* coverage digests, indexed by Bool.to_int empty *)
  km_lranges : klrange array;
  km_pslots : int array;
  km_dmax : int;
  km_arity_ok : bool;
  km_body : kop array;
}

let rec exec_kop rt = function
  | Kop_task t -> exec_ktask rt t
  | Kop_lib l -> exec_klib rt l
  | Kop_copies cs -> Array.iter (exec_kcopy rt) cs
  | Kop_map m -> exec_kmap rt m

and exec_kmap rt (m : kmap) =
  (* map ranges never reach scalar containers, so they are uniform *)
  let cr =
    try Array.map (keval_range rt) m.km_lranges with
    | Symbolic.Expr.Unbound_symbol s ->
        raise (F (Runtime_error ("unbound symbol " ^ s ^ " in map range")))
    | Symbolic.Expr.Division_by_zero ->
        raise (F (Runtime_error "division by zero in map range"))
  in
  let empty = Array.for_all (fun r -> Symbolic.Subset.crange_count r = 0) cr in
  record_all rt m.km_cov.(Bool.to_int empty);
  let rec go d =
    if d = m.km_dmax then begin
      if m.km_arity_ok then Array.iter (exec_kop rt) m.km_body
      else
        raise
          (F (Invalid_graph (Printf.sprintf "map %d: params/ranges arity mismatch" m.km_nid)))
    end
    else begin
      let r = cr.(d) in
      let n = Symbolic.Subset.crange_count r in
      let pslot = m.km_pslots.(d) in
      for i = 0 to n - 1 do
        rt.params.(pslot) <- r.Symbolic.Subset.clo + (i * r.Symbolic.Subset.cstep);
        go (d + 1)
      done
    end
  in
  go 0

type kedge = {
  ke_cov : int;
  ke_cond : kcond;
  ke_assigns : (int * kexpr) array;  (* dynamic slot, lowered rhs *)
  ke_dst : int;  (* position in k_states *)
}

type kstate = { ks_cov : int; ks_ops : kop array; ks_edges : kedge array }
type bufspec = { b_name : string; b_desc : Graph.datadesc; b_shape : int array }

type t = {
  k_bufs : bufspec array;
  k_buf_idx : (string, int) Hashtbl.t;
  k_nparams : int;
  k_ndyn : int;
  k_dyn_init : (int * int) array;
  k_states : kstate array;
  k_start : int;  (* position in k_states, -1 when the graph has no start *)
}

(* Every rhs is evaluated uniformly (per-lane compare when it can see scalar
   containers) against the pre-edge environment before the commit, exactly as
   Plan.run_edge. *)
let run_kedge rt (e : kedge) =
  record_all rt e.ke_cov;
  let n = Array.length e.ke_assigns in
  let vals = Array.make n 0 in
  for i = 0 to n - 1 do
    let _, kx = e.ke_assigns.(i) in
    tick rt;
    vals.(i) <-
      (try ueval rt kx with
      | Symbolic.Expr.Unbound_symbol s -> raise (F (Runtime_error ("unbound symbol " ^ s)))
      | Symbolic.Expr.Division_by_zero ->
          raise (F (Runtime_error "division by zero in symbolic expression")))
  done;
  for i = 0 to n - 1 do
    let slot, _ = e.ke_assigns.(i) in
    rt.dvals.(slot) <- vals.(i);
    rt.dset.(slot) <- true
  done;
  e.ke_dst

let exec_kprogram (t : t) rt =
  if t.k_start >= 0 then begin
    let current = ref t.k_start in
    while !current >= 0 do
      let sp = t.k_states.(!current) in
      tick rt;
      record_all rt sp.ks_cov;
      Array.iter (exec_kop rt) sp.ks_ops;
      let rec find i =
        if i >= Array.length sp.ks_edges then -1
        else if
          try ueval_cond rt sp.ks_edges.(i).ke_cond
          with Symbolic.Expr.Unbound_symbol s ->
            raise (F (Runtime_error ("unbound symbol " ^ s ^ " in interstate condition")))
        then i
        else find (i + 1)
      in
      let next = find 0 in
      if next < 0 then current := -1 else current := run_kedge rt sp.ks_edges.(next)
    done
  end

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let kbref cv name =
  match Hashtbl.find_opt cv.buf_idx name with Some i -> KBok i | None -> KBmissing name

let kgpu_fault cv sc nid =
  List.find_map
    (fun (e : State.edge) ->
      match e.memlet with
      | Some (m : Memlet.t) -> (
          match Graph.container_opt cv.cg m.data with
          | Some d when d.storage = Graph.Host ->
              Some
                (Invalid_graph
                   (Printf.sprintf "GPU-scheduled code accesses host container %s" m.data))
          | _ -> None)
      | None -> None)
    (Tree.ins_of sc nid @ Tree.outs_of sc nid)

(* Expression -> instruction emission. Returns the reversed instruction list
   and the result register. Operand order matches the reference closures:
   a binary node's right operand is emitted (hence evaluated) first. *)
let klower_tcode cv sparams ~nid ~visible ~fresh expr =
  let rec lo acc e =
    match e with
    | Tcode.Fconst f ->
        let r = fresh () in
        (Iconst (r, f) :: acc, r)
    | Tcode.Ref s -> (
        match Hashtbl.find_opt visible s with
        | Some i -> (acc, i)
        | None -> (
            match List.assoc_opt s sparams with
            | Some slot ->
                let r = fresh () in
                (Iparam (r, slot) :: acc, r)
            | None -> (
                let unbound =
                  Invalid_graph (Printf.sprintf "tasklet %d: unbound ref %s" nid s)
                in
                match Hashtbl.find_opt cv.dyn_idx s with
                | Some i ->
                    let r = fresh () in
                    (Idyn (r, i, unbound) :: acc, r)
                | None -> (
                    match Symbolic.Expr.Env.find_opt s cv.static with
                    | Some v ->
                        let r = fresh () in
                        (Iconst (r, float_of_int v) :: acc, r)
                    | None ->
                        let r = fresh () in
                        (Ifail unbound :: acc, r)))))
    | Tcode.Bin (op, a, b) ->
        let acc, rb = lo acc b in
        let acc, ra = lo acc a in
        let r = fresh () in
        (Ibin (op, r, ra, rb) :: acc, r)
    | Tcode.Un (op, a) ->
        let acc, ra = lo acc a in
        let r = fresh () in
        (Iun (op, r, ra) :: acc, r)
    | Tcode.Cmp (op, a, b) ->
        let acc, rb = lo acc b in
        let acc, ra = lo acc a in
        let r = fresh () in
        (Icmp (op, r, ra, rb) :: acc, r)
    | Tcode.Select (c, a, b) ->
        let acc, rc = lo acc c in
        let r = fresh () in
        let ta, rt_ = lo [] a in
        let ea, re_ = lo [] b in
        let s_then = Array.of_list (List.rev (Imov (r, rt_) :: ta)) in
        let s_else = Array.of_list (List.rev (Imov (r, re_) :: ea)) in
        (Isel { s_cond = rc; s_then; s_else } :: acc, r)
  in
  lo [] expr

let klower_tasklet cv sc sid ~gpu sparams nid (code : Tcode.t) =
  let host_fault = if gpu then kgpu_fault cv sc nid else None in
  let slot_of = Hashtbl.create 8 in
  let nslots = ref 0 in
  let slot name =
    match Hashtbl.find_opt slot_of name with
    | Some i -> i
    | None ->
        let i = !nslots in
        incr nslots;
        Hashtbl.replace slot_of name i;
        i
  in
  let in_edges =
    List.filter_map
      (fun (e : State.edge) ->
        match (e.dst_conn, e.memlet) with
        | Some conn, Some m -> Some (conn, (m : Memlet.t))
        | _ -> None)
      (Tree.ins_of sc nid)
  in
  let reads =
    Array.of_list
      (List.map
         (fun (conn, (m : Memlet.t)) ->
           {
             krd_buf = kbref cv m.data;
             krd_sub = klower_subset cv sparams ~point:true m.subset;
             krd_slot = slot conn;
             krd_ctx = Printf.sprintf "tasklet %d input %s" nid conn;
           })
         in_edges)
  in
  List.iter (fun (o, _) -> ignore (slot o)) code.assignments;
  let nregs = ref !nslots in
  let fresh () =
    let r = !nregs in
    incr nregs;
    r
  in
  let sel_digests =
    Array.init
      (2 * Tcode.num_selects code)
      (fun i ->
        cov_digest (Cov_select { state = sid; node = nid; site = i / 2; taken = i mod 2 = 1 }))
  in
  let visible = Hashtbl.create 8 in
  List.iter (fun (conn, _) -> Hashtbl.replace visible conn (Hashtbl.find slot_of conn)) in_edges;
  let prog_rev = ref [] in
  List.iter
    (fun (o, expr) ->
      let acc, r = klower_tcode cv sparams ~nid ~visible ~fresh expr in
      let s = Hashtbl.find slot_of o in
      prog_rev := Imov (s, r) :: (acc @ !prog_rev);
      Hashtbl.replace visible o s)
    code.assignments;
  let targets = Hashtbl.create 8 in
  List.iter (fun (o, _) -> Hashtbl.replace targets o ()) code.assignments;
  let writes =
    Array.of_list
      (List.filter_map
         (fun (e : State.edge) ->
           match (e.src_conn, e.memlet) with
           | Some conn, Some (m : Memlet.t) ->
               Some
                 {
                   kwr_src =
                     (if Hashtbl.mem targets conn then KWslot (Hashtbl.find slot_of conn)
                      else
                        KWmissing
                          (Printf.sprintf "tasklet %d: no value for connector %s" nid conn));
                   kwr_buf = kbref cv m.data;
                   kwr_sub = klower_subset cv sparams ~point:true m.subset;
                   kwr_wcr = m.wcr;
                   kwr_ctx = Printf.sprintf "tasklet %d output %s" nid conn;
                 }
           | _ -> None)
         (Tree.outs_of sc nid))
  in
  {
    k_host_fault = host_fault;
    k_reads = reads;
    k_prog = Array.of_list (List.rev !prog_rev);
    k_writes = writes;
    k_nregs = !nregs;
    k_regs = [||];
    k_sel_digests = sel_digests;
    k_sid = sid;
    k_nid = nid;
  }

let klib_conn cv sparams nid ~dir conn (m : Memlet.t) =
  KCok
    {
      kc_buf = kbref cv m.data;
      kc_sub = klower_subset cv sparams ~point:false m.subset;
      kc_wcr = m.wcr;
      kc_ctx = Printf.sprintf "library node %d %s %s" nid dir conn;
    }

let klower_library cv sc ~gpu sparams nid (kind : Node.lib_kind) =
  let host_fault = if gpu then kgpu_fault cv sc nid else None in
  let find_in conn =
    match
      List.find_opt
        (fun (e : State.edge) -> e.dst_conn = Some conn && e.memlet <> None)
        (Tree.ins_of sc nid)
    with
    | Some e -> klib_conn cv sparams nid ~dir:"input" conn (Option.get e.memlet)
    | None -> KCmissing (Printf.sprintf "library node %d: missing input %s" nid conn)
  in
  let find_out conn =
    match
      List.find_opt
        (fun (e : State.edge) -> e.src_conn = Some conn && e.memlet <> None)
        (Tree.outs_of sc nid)
    with
    | Some e -> klib_conn cv sparams nid ~dir:"output" conn (Option.get e.memlet)
    | None -> KCmissing (Printf.sprintf "library node %d: missing output %s" nid conn)
  in
  match kind with
  | Node.Mat_mul | Node.Batched_mat_mul ->
      {
        kl_nid = nid;
        kl_kind = kind;
        kl_host_fault = host_fault;
        kl_a = find_in "A";
        kl_b = Some (find_in "B");
        kl_out = find_out "C";
      }
  | Node.Reduce _ ->
      {
        kl_nid = nid;
        kl_kind = kind;
        kl_host_fault = host_fault;
        kl_a = find_in "in";
        kl_b = None;
        kl_out = find_out "out";
      }

let klower_copy cv sparams ~dst_data (src_m : Memlet.t) (dst_memlet : Memlet.t option) =
  let dst_m =
    match dst_memlet with
    | Some m -> Some m
    | None -> (
        match Graph.container_opt cv.cg dst_data with
        | Some (desc : Graph.datadesc) ->
            Some (Memlet.make dst_data (Symbolic.Subset.full desc.shape))
        | None -> None)
  in
  match dst_m with
  | None -> KCopy_missing_desc
  | Some (dst_m : Memlet.t) ->
      KCopy
        {
          kcp_src = kbref cv src_m.data;
          kcp_ssub = klower_subset cv sparams ~point:false src_m.subset;
          kcp_dst = kbref cv dst_m.data;
          kcp_dsub = klower_subset cv sparams ~point:false dst_m.subset;
          kcp_wcr = dst_m.wcr;
          kcp_ctx = Printf.sprintf "copy %s -> %s" src_m.data dst_m.data;
        }

let rec klower_members cv sc sid ~gpu sparams entry =
  let st = sc.Tree.st in
  Array.of_list
    (List.filter_map
       (fun nid ->
         match State.node st nid with
         | Node.Access _ ->
             let copies =
               List.filter_map
                 (fun (e : State.edge) ->
                   match (State.node_opt st e.dst, e.memlet) with
                   | Some (Node.Access d), Some src_m ->
                       Some (klower_copy cv sparams ~dst_data:d src_m e.dst_memlet)
                   | _ -> None)
                 (Tree.outs_of sc nid)
             in
             if copies = [] then None else Some (Kop_copies (Array.of_list copies))
         | Node.Tasklet { code; _ } ->
             Some (Kop_task (klower_tasklet cv sc sid ~gpu sparams nid code))
         | Node.Library { kind; _ } ->
             Some (Kop_lib (klower_library cv sc ~gpu sparams nid kind))
         | Node.Map_entry info -> Some (Kop_map (klower_map cv sc sid sparams nid info))
         | Node.Map_exit _ -> None)
       (Tree.direct_members sc entry))

and klower_map cv sc sid sparams nid (info : Node.map_info) =
  let gpu = info.schedule = Node.Gpu_device in
  let lranges = Array.of_list (List.map (klower_range cv sparams) info.ranges) in
  let pslots =
    Array.of_list
      (List.map
         (fun _ ->
           let s = cv.nparams in
           cv.nparams <- s + 1;
           s)
         info.params)
  in
  let np = List.length info.params and nr = List.length info.ranges in
  let inner = List.rev (List.map2 (fun p s -> (p, s)) info.params (Array.to_list pslots)) in
  let body = klower_members cv sc sid ~gpu (inner @ sparams) (Some nid) in
  {
    km_nid = nid;
    km_cov =
      [|
        cov_digest (Cov_map { state = sid; node = nid; empty = false });
        cov_digest (Cov_map { state = sid; node = nid; empty = true });
      |];
    km_lranges = lranges;
    km_pslots = pslots;
    km_dmax = min np nr;
    km_arity_ok = np = nr;
    km_body = body;
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let compile g ~symbols =
  match Validate.check g with
  | e :: _ -> Error (Invalid_graph (Format.asprintf "%a" Validate.pp_error e))
  | [] -> (
      let env0 = Symbolic.Expr.Env.of_list symbols in
      let dyn_idx = Hashtbl.create 8 in
      List.iter
        (fun (e : Graph.istate_edge) ->
          List.iter
            (fun (sym, _) ->
              if not (Hashtbl.mem dyn_idx sym) then
                Hashtbl.add dyn_idx sym (Hashtbl.length dyn_idx))
            e.assigns)
        (Graph.istate_edges g);
      let static = Symbolic.Expr.Env.filter (fun s _ -> not (Hashtbl.mem dyn_idx s)) env0 in
      let dyn_init =
        Array.of_list
          (Hashtbl.fold
             (fun s i acc ->
               match Symbolic.Expr.Env.find_opt s env0 with
               | Some v -> (i, v) :: acc
               | None -> acc)
             dyn_idx [])
      in
      try
        let buf_idx = Hashtbl.create 16 in
        let scalar_idx = Hashtbl.create 8 in
        let bufs =
          Array.of_list
            (List.mapi
               (fun i (name, (desc : Graph.datadesc)) ->
                 Hashtbl.replace buf_idx name i;
                 if desc.shape = [] then Hashtbl.replace scalar_idx name i;
                 let shape =
                   try Value.concretize_shape env0 name desc with
                   | Invalid_argument msg -> raise (F (Invalid_graph msg))
                   | Symbolic.Expr.Unbound_symbol s ->
                       raise (F (Runtime_error ("unbound symbol " ^ s ^ " in shape of " ^ name)))
                 in
                 { b_name = name; b_desc = desc; b_shape = shape })
               (Graph.containers g))
        in
        let cv = { cg = g; buf_idx; scalar_idx; dyn_idx; static; nparams = 0 } in
        let states = Graph.states g in
        let pos_of = Hashtbl.create 8 in
        List.iteri (fun i (sid, _) -> Hashtbl.replace pos_of sid i) states;
        let state_plans =
          Array.of_list
            (List.map
               (fun (sid, st) ->
                 let sc = Tree.build_sctx st in
                 let ops = klower_members cv sc sid ~gpu:false [] None in
                 let edges =
                   Array.of_list
                     (List.map
                        (fun (e : Graph.istate_edge) ->
                          {
                            ke_cov = cov_digest (Cov_iedge e.ie_id);
                            ke_cond = klower_cond cv e.cond;
                            ke_assigns =
                              Array.of_list
                                (List.map
                                   (fun (sym, rhs) ->
                                     ( Hashtbl.find dyn_idx sym,
                                       klower_expr cv [] ~interstate:true rhs ))
                                   e.assigns);
                            ke_dst = Hashtbl.find pos_of e.dst;
                          })
                        (Graph.out_istate_edges g sid))
                 in
                 { ks_cov = cov_digest (Cov_state sid); ks_ops = ops; ks_edges = edges })
               states)
        in
        let start = Graph.start_state g in
        Ok
          {
            k_bufs = bufs;
            k_buf_idx = buf_idx;
            k_nparams = cv.nparams;
            k_ndyn = Hashtbl.length dyn_idx;
            k_dyn_init = dyn_init;
            k_states = state_plans;
            k_start = (if start < 0 then -1 else Hashtbl.find pos_of start);
          }
      with F f -> Error f)

let make_rt config (t : t) nl =
  let kbufs =
    Array.map
      (fun bs ->
        (* the width-1 prototype carries alloc_shaped's exact fill (zeros or
           deterministic garbage), broadcast across lanes *)
        let proto =
          Value.alloc_shaped ~garbage_seed:config.garbage_seed bs.b_name bs.b_desc bs.b_shape
        in
        let n = Array.length proto.Value.data in
        let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max 1 (n * nl)) in
        for e = 0 to n - 1 do
          let v = proto.Value.data.(e) in
          for l = 0 to nl - 1 do
            Bigarray.Array1.unsafe_set data ((e * nl) + l) v
          done
        done;
        { kb_name = bs.b_name; kb_desc = bs.b_desc; kb_shape = bs.b_shape; kb_nelem = n;
          kb_data = data })
      t.k_bufs
  in
  let rt =
    {
      cfg = config;
      nl;
      kbufs;
      params = Array.make (max 1 t.k_nparams) 0;
      dvals = Array.make (max 1 t.k_ndyn) 0;
      dset = Array.make (max 1 t.k_ndyn) false;
      steps = 0;
      writes = 0;
      subsets = 0;
      covs = Array.init nl (fun _ -> Hashtbl.create 64);
      sel = Array.make nl 0;
      lanes0 = Array.init nl Fun.id;
    }
  in
  Array.iter
    (fun (i, v) ->
      rt.dvals.(i) <- v;
      rt.dset.(i) <- true)
    t.k_dyn_init;
  rt

let fill_inputs rt (t : t) inputs_arr =
  let nl = rt.nl in
  Array.iteri
    (fun l inputs ->
      List.iter
        (fun (name, values) ->
          match Hashtbl.find_opt t.k_buf_idx name with
          | None -> raise (F (Runtime_error ("input for undeclared container " ^ name)))
          | Some i ->
              let b = rt.kbufs.(i) in
              if Array.length values <> b.kb_nelem then
                raise
                  (F
                     (Runtime_error
                        (Printf.sprintf "input %s has %d elements, expected %d" name
                           (Array.length values) b.kb_nelem)));
              for e = 0 to b.kb_nelem - 1 do
                Bigarray.Array1.unsafe_set b.kb_data ((e * nl) + l) values.(e)
              done)
        inputs)
    inputs_arr

let finalize rt l =
  let nl = rt.nl in
  let mem : Value.t = Hashtbl.create 16 in
  Array.iter
    (fun (b : kbuffer) ->
      let data =
        Array.init b.kb_nelem (fun e -> Bigarray.Array1.unsafe_get b.kb_data ((e * nl) + l))
      in
      Hashtbl.replace mem b.kb_name
        { Value.name = b.kb_name; desc = b.kb_desc; cshape = b.kb_shape; data })
    rt.kbufs;
  let coverage = Hashtbl.fold (fun k () acc -> k :: acc) rt.covs.(l) [] |> List.sort compare in
  { memory = mem; coverage; steps = rt.steps; writes = rt.writes; subsets = rt.subsets }

(* Width 1: lockstep is trivial, and the exception mapping is exactly
   Plan.execute's (Not_found and interstate Division_by_zero escape raw). *)
let run_width1 config t inputs =
  let rt = make_rt config t 1 in
  try
    fill_inputs rt t [| inputs |];
    exec_kprogram t rt;
    Ok (finalize rt 0)
  with
  | F fault -> Error fault
  | Invalid_argument msg -> Error (Runtime_error msg)
  | Stack_overflow -> Error (Hang { steps = rt.steps })

let execute_batch ?(config = default_config) t ~inputs =
  let nl = Array.length inputs in
  if nl = 0 then [||]
  else if nl = 1 then [| run_width1 config t inputs.(0) |]
  else
    let attempt () =
      let rt = make_rt config t nl in
      fill_inputs rt t inputs;
      exec_kprogram t rt;
      Array.init nl (fun l -> Ok (finalize rt l))
    in
    match attempt () with
    | res -> res
    | exception _ ->
        (* any fault or lockstep divergence: replay every lane at width 1,
           where semantics are the serial plan path's by construction *)
        Array.map (fun inp -> run_width1 config t inp) inputs

let execute ?(config = default_config) t ~inputs = run_width1 config t inputs

(* ------------------------------------------------------------------ *)
(* Kernel cache                                                        *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type kernel = t

  type t = {
    capacity : int;
    tbl : (string * (string * int) list, (kernel, fault) result) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(capacity = 64) () =
    { capacity = max 1 capacity; tbl = Hashtbl.create 16; hits = 0; misses = 0 }

  let digest_of g = Digest.to_hex (Digest.string (Serialize.to_string g))

  let compile ?digest c g ~symbols =
    let d = match digest with Some d -> d | None -> digest_of g in
    let key = (d, List.sort compare symbols) in
    match Hashtbl.find_opt c.tbl key with
    | Some r ->
        c.hits <- c.hits + 1;
        r
    | None ->
        c.misses <- c.misses + 1;
        let r = compile g ~symbols in
        if Hashtbl.length c.tbl >= c.capacity then Hashtbl.reset c.tbl;
        Hashtbl.add c.tbl key r;
        r

  let stats c = (c.hits, c.misses)
end
