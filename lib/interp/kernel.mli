(** Batched imperative kernels — the third execution tier.

    [compile] lowers a graph plus a symbol valuation one level further than
    {!Plan}: tasklet code becomes a flat typed instruction array over integer
    register slots, memlet subsets become pre-resolved offset vectors, and
    every container lives in one [Bigarray] buffer carrying an extra batch
    axis (element-major, lane-minor: element [e] of lane [l] sits at
    [e * nlanes + l]). One sweep over the instruction stream evaluates N
    input sets structure-of-arrays style.

    The contract is the same as {!Plan}'s, per lane: [execute_batch] lane [l]
    is bit-identical — outcome, final memory, step counts, injection
    counters, per-lane coverage digests (FNV-1a, folded in sorted order) and
    fault messages — to a width-1 run over lane [l]'s inputs, which is in
    turn bit-identical to {!Plan.execute} and {!Tree.run}. The batch executes
    all lanes in lockstep and falls back to per-lane width-1 replay whenever
    any lane faults or lane-dependent data reaches control flow, addressing
    or a counter, so the fast path only ever completes uniform, fault-free
    batches. test/test_kernel.ml holds the differential obligation. *)

type t

val compile : Sdfg.Graph.t -> symbols:(string * int) list -> (t, Defs.fault) result

(** Single-trial execution: semantically {!Plan.execute} on the kernel tier. *)
val execute :
  ?config:Defs.config -> t -> inputs:(string * float array) list ->
  (Defs.outcome, Defs.fault) result

(** [execute_batch t ~inputs] runs one sweep over [Array.length inputs]
    lanes; result [i] is the outcome of lane [i]'s inputs. Missing containers
    are zero-filled per lane exactly as in a single-trial run. *)
val execute_batch :
  ?config:Defs.config -> t -> inputs:(string * float array) list array ->
  (Defs.outcome, Defs.fault) result array

(** Memoizes compiled kernels by (graph digest, sorted symbol valuation),
    with the same bounded wholesale-drop policy as {!Plan.Cache}. *)
module Cache : sig
  type kernel = t
  type t

  val create : ?capacity:int -> unit -> t

  (** Digest of the graph's canonical serialization (same construction as
      {!Plan.Cache.digest_of}, so one digest can key both caches). *)
  val digest_of : Sdfg.Graph.t -> string

  val compile :
    ?digest:string -> t -> Sdfg.Graph.t -> symbols:(string * int) list ->
    (kernel, Defs.fault) result

  (** [(hits, misses)] since creation. *)
  val stats : t -> int * int
end
