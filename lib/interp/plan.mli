(** Compile-once execution plans.

    [compile] lowers a graph plus a symbol valuation into a flat immutable
    plan: topological order and scope nesting resolved once, tasklet code
    compiled to closures over integer-indexed registers, memlet subsets
    pre-evaluated to concrete strides wherever the valuation makes them
    constant, and containers addressed by dense ids. [execute] runs the plan
    over fresh buffers; a plan may be executed any number of times, under any
    {!Defs.config} (step limits, fault injection and coverage collection are
    all execution-time concerns).

    Semantics are bit-identical to the reference tree-walk ({!Tree.run}):
    same final memory, step counts, injection counters, coverage digests and
    fault messages. test/test_plan.ml holds the differential obligation. *)

type t

val compile : Sdfg.Graph.t -> symbols:(string * int) list -> (t, Defs.fault) result

val execute :
  ?config:Defs.config -> t -> inputs:(string * float array) list ->
  (Defs.outcome, Defs.fault) result

(** Memoizes compiled plans by (graph digest, sorted symbol valuation).
    Bounded: when [capacity] distinct keys are live the table is dropped
    wholesale (fuzzing loops revisit a tiny working set, so eviction finesse
    buys nothing). Compile failures are cached too — a graph that does not
    validate keeps not validating. *)
module Cache : sig
  type plan = t
  type t

  val create : ?capacity:int -> unit -> t

  (** Digest of the graph's canonical serialization. Compute once per graph
      and pass to {!compile} when the same graph is compiled under many
      valuations — re-serializing per call costs more than compiling. *)
  val digest_of : Sdfg.Graph.t -> string

  val compile :
    ?digest:string -> t -> Sdfg.Graph.t -> symbols:(string * int) list ->
    (plan, Defs.fault) result

  (** [(hits, misses)] since creation. *)
  val stats : t -> int * int
end
