type buffer = {
  name : string;
  desc : Sdfg.Graph.datadesc;
  cshape : int array;
  data : float array;
}

type t = (string, buffer) Hashtbl.t

exception Out_of_bounds of { container : string; index : int array; shape : int array }

(* FNV-1a over the container name, with the same constants and masking as
   Campaign.instance_seed: the per-container stream offset is then a
   specified function of the name, not of the unspecified Hashtbl.hash. *)
let fnv1a_name s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

(* Deterministic garbage: a simple 64-bit LCG seeded from the run seed and the
   container name, mapped into a "plausible but wrong" value range. *)
let garbage_fill seed name data =
  let state = ref (Int64.of_int (seed lxor fnv1a_name name lxor 0x9e3779b9)) in
  let next () =
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    let bits = Int64.to_int (Int64.shift_right_logical !state 17) land 0xFFFFFF in
    (float_of_int bits /. 16777216.0 *. 2000.0) -. 1000.0
  in
  for i = 0 to Array.length data - 1 do
    data.(i) <- next ()
  done

let num_elements b = Array.fold_left ( * ) 1 b.cshape

let concretize_shape env name (desc : Sdfg.Graph.datadesc) =
  Array.of_list
    (List.map
       (fun e ->
         let d = Symbolic.Expr.eval env e in
         if d <= 0 then
           invalid_arg
             (Printf.sprintf "Value.alloc: container %s has non-positive dimension %d" name d);
         d)
       desc.shape)

let alloc_shaped ~garbage_seed name (desc : Sdfg.Graph.datadesc) cshape =
  let n = Array.fold_left ( * ) 1 cshape in
  let data = Array.make n 0. in
  if desc.storage = Sdfg.Graph.Gpu then garbage_fill garbage_seed name data;
  { name; desc; cshape; data }

let alloc ~garbage_seed env name desc =
  alloc_shaped ~garbage_seed name desc (concretize_shape env name desc)

let cast (dt : Sdfg.Dtype.t) v =
  match dt with
  | Sdfg.Dtype.F64 -> v
  | Sdfg.Dtype.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
  | Sdfg.Dtype.I64 -> if Float.is_nan v then 0. else Float.of_int (Float.to_int (Float.trunc v))
  | Sdfg.Dtype.I32 ->
      if Float.is_nan v then 0.
      else
        let t = Float.to_int (Float.trunc v) in
        (* wrap into 32-bit range like C truncation would *)
        Float.of_int (Int32.to_int (Int32.of_int t))
  | Sdfg.Dtype.Bool -> if v <> 0. then 1. else 0.

let offset b idx =
  let dims = Array.length b.cshape in
  if Array.length idx <> dims then raise (Out_of_bounds { container = b.name; index = idx; shape = b.cshape });
  let off = ref 0 in
  for d = 0 to dims - 1 do
    let i = idx.(d) in
    if i < 0 || i >= b.cshape.(d) then
      raise (Out_of_bounds { container = b.name; index = idx; shape = b.cshape });
    off := (!off * b.cshape.(d)) + i
  done;
  !off

let get b idx = b.data.(offset b idx)
let set b idx v = b.data.(offset b idx) <- cast b.desc.dtype v

(* Iterate a concrete subset in row-major order, calling [f] with each full
   index. *)
let iter_subset b (cs : Symbolic.Subset.crange list) f =
  let ranges = Array.of_list cs in
  let dims = Array.length ranges in
  if dims = 0 then f [||]
  else begin
    let counts = Array.map Symbolic.Subset.crange_count ranges in
    let total = Array.fold_left ( * ) 1 counts in
    if total > 0 then begin
      let idx = Array.make dims 0 in
      for flat = 0 to total - 1 do
        let rem = ref flat in
        for d = dims - 1 downto 0 do
          let c = counts.(d) in
          let pos = !rem mod c in
          rem := !rem / c;
          idx.(d) <- ranges.(d).clo + (pos * ranges.(d).cstep)
        done;
        f idx
      done
    end
  end;
  ignore b

let subset_volume cs =
  List.fold_left (fun acc r -> acc * Symbolic.Subset.crange_count r) 1 cs

let read_subset b cs =
  let out = Array.make (max 1 (subset_volume cs)) 0. in
  let i = ref 0 in
  iter_subset b cs (fun idx ->
      out.(!i) <- get b idx;
      incr i);
  out

let write_subset b cs values =
  let vol = max 1 (subset_volume cs) in
  if Array.length values <> vol then
    invalid_arg
      (Printf.sprintf "Value.write_subset: %d values for volume-%d subset of %s"
         (Array.length values) vol b.name);
  let i = ref 0 in
  iter_subset b cs (fun idx ->
      set b idx values.(!i);
      incr i)

let accumulate_subset b cs wcr values =
  let vol = max 1 (subset_volume cs) in
  if Array.length values <> vol then
    invalid_arg
      (Printf.sprintf "Value.accumulate_subset: %d values for volume-%d subset of %s"
         (Array.length values) vol b.name);
  let i = ref 0 in
  iter_subset b cs (fun idx ->
      set b idx (Sdfg.Memlet.apply_wcr wcr (get b idx) values.(!i));
      incr i)

let copy_memory m =
  let m' = Hashtbl.create (Hashtbl.length m) in
  Hashtbl.iter (fun k b -> Hashtbl.replace m' k { b with data = Array.copy b.data }) m;
  m'

let buffer m name = Hashtbl.find m name
let buffer_opt m name = Hashtbl.find_opt m name
