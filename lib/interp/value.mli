(** Concrete memory for SDFG execution.

    Each container is backed by a flat [float array] in row-major order with
    its concretized shape. Device-resident (GPU) buffers are allocated with
    deterministic garbage values — uninitialized device memory is exactly what
    the GPU-kernel-extraction bug of Sec. 6.4 leaks back to the host. *)

type buffer = {
  name : string;
  desc : Sdfg.Graph.datadesc;
  cshape : int array;  (** concretized shape; [||] for scalars *)
  data : float array;  (** length = product of [cshape], or 1 for scalars *)
}

type t = (string, buffer) Hashtbl.t

exception Out_of_bounds of { container : string; index : int array; shape : int array }

(** [alloc ~garbage_seed env name desc] concretizes the shape under [env] and
    allocates: zero-filled for host storage, deterministic pseudo-random
    garbage for GPU storage. Shapes that concretize to a non-positive
    dimension raise [Invalid_argument]. *)
val alloc : garbage_seed:int -> int Symbolic.Expr.Env.t -> string -> Sdfg.Graph.datadesc -> buffer

(** The shape-evaluation half of {!alloc}, exposed so a compiled execution
    plan ({!Plan}) can resolve shapes once and allocate per run.
    @raise Invalid_argument on a non-positive dimension. *)
val concretize_shape : int Symbolic.Expr.Env.t -> string -> Sdfg.Graph.datadesc -> int array

(** The allocation half of {!alloc}: build a buffer over an already
    concretized shape (zero-filled for host storage, deterministic garbage
    for GPU storage). *)
val alloc_shaped : garbage_seed:int -> string -> Sdfg.Graph.datadesc -> int array -> buffer

val num_elements : buffer -> int

(** Round-trip a float through the container dtype (f32 rounding, integer
    truncation, bool saturation). *)
val cast : Sdfg.Dtype.t -> float -> float

(** Flat offset of a multi-dimensional index.
    @raise Out_of_bounds when outside the buffer shape. *)
val offset : buffer -> int array -> int

val get : buffer -> int array -> float

(** [set buf idx v] stores [cast dtype v]. *)
val set : buffer -> int array -> float -> unit

(** Elements of a concretized subset in row-major iteration order.
    @raise Out_of_bounds if any element falls outside the buffer. *)
val read_subset : buffer -> Symbolic.Subset.crange list -> float array

(** Writes values (cast to the buffer dtype) over a concretized subset; the
    value count must equal the subset volume.
    @raise Out_of_bounds as {!read_subset}. *)
val write_subset : buffer -> Symbolic.Subset.crange list -> float array -> unit

(** Like {!write_subset} but combining with the previous contents under a
    write-conflict resolution. *)
val accumulate_subset :
  buffer -> Symbolic.Subset.crange list -> Sdfg.Memlet.wcr -> float array -> unit

(** Deep copy of a whole memory (for snapshotting system state). *)
val copy_memory : t -> t

val buffer : t -> string -> buffer
val buffer_opt : t -> string -> buffer option
