(* The reference tree-walk interpreter: executes the SDFG directly off the
   graph structure, re-deriving topological order, scope membership and
   symbolic subsets on every run. Kept as the semantic baseline that the
   compiled Plan path is differentially tested against (and as the slow side
   of the `bench interp` comparison). *)

open Sdfg
open Defs

type ctx = {
  g : Graph.t;
  cfg : config;
  mem : Value.t;
  mutable steps : int;
  mutable writes : int;
  mutable subsets : int;
  cov : (int, unit) Hashtbl.t;
  mutable sym_env : int Symbolic.Expr.Env.t;
}

let tick ?(cost = 1) ctx =
  ctx.steps <- ctx.steps + cost;
  (match ctx.cfg.inject with
  | Some (Burn_steps { after }) when ctx.steps >= after ->
      ctx.steps <- ctx.steps + ctx.cfg.step_limit
  | _ -> ());
  if ctx.steps > ctx.cfg.step_limit then raise (F (Hang { steps = ctx.steps }))

let record ctx key = if ctx.cfg.collect_coverage then Hashtbl.replace ctx.cov (cov_digest key) ()

(* Interstate-edge expression evaluation consumes step budget: a symbol-driven
   loop that only ever updates symbols must still trip the hang detector. *)
let eval_expr ctx env e =
  tick ctx;
  try Symbolic.Expr.eval env e with
  | Symbolic.Expr.Unbound_symbol s -> raise (F (Runtime_error ("unbound symbol " ^ s)))
  | Symbolic.Expr.Division_by_zero -> raise (F (Runtime_error "division by zero in symbolic expression"))

let concretize ctx env subset =
  let cs =
    try Symbolic.Subset.concretize env subset with
    | Symbolic.Expr.Unbound_symbol s ->
        raise (F (Runtime_error ("unbound symbol " ^ s ^ " in subset")))
    | Symbolic.Expr.Division_by_zero -> raise (F (Runtime_error "division by zero in subset"))
  in
  (* scalar subsets carry no index computation, so they are not injection
     sites: only dimensioned subsets advance the counter *)
  match cs with
  | [] -> cs
  | (r : Symbolic.Subset.crange) :: rest ->
      let cs =
        match ctx.cfg.inject with
        | Some (Shift_index { nth_subset; delta }) when ctx.subsets = nth_subset ->
            { r with Symbolic.Subset.clo = r.clo + delta; chi = r.chi + delta } :: rest
        | _ -> cs
      in
      ctx.subsets <- ctx.subsets + 1;
      cs

let buffer ctx name =
  match Value.buffer_opt ctx.mem name with
  | Some b -> b
  | None -> raise (F (Invalid_graph ("reference to unallocated container " ^ name)))

let read_subset _ctx ~context b cs =
  try Value.read_subset b cs
  with Value.Out_of_bounds { container; index; shape } ->
    raise (F (Out_of_bounds { container; index; shape; context }))

(* Corrupt the value of one write according to the injection plan. Only the
   first element of a bulk write is touched: the point is a detectable wrong
   value, not a wholesale rewrite. *)
let corrupt_write ctx values =
  let patch v =
    if Array.length values = 0 then values
    else begin
      let values = Array.copy values in
      values.(0) <- v;
      values
    end
  in
  let values =
    match ctx.cfg.inject with
    | Some (Flip_bit { nth_write; bit }) when ctx.writes = nth_write ->
        if Array.length values = 0 then values
        else
          patch
            (Int64.float_of_bits
               (Int64.logxor (Int64.bits_of_float values.(0)) (Int64.shift_left 1L (bit land 63))))
    | Some (Set_nan { nth_write }) when ctx.writes = nth_write -> patch Float.nan
    | Some (Set_inf { nth_write }) when ctx.writes = nth_write -> patch Float.infinity
    | _ -> values
  in
  ctx.writes <- ctx.writes + 1;
  values

let write_subset ctx ~context b cs values =
  let values = corrupt_write ctx values in
  try Value.write_subset b cs values
  with Value.Out_of_bounds { container; index; shape } ->
    raise (F (Out_of_bounds { container; index; shape; context }))

let accumulate_subset ctx ~context b cs wcr values =
  let values = corrupt_write ctx values in
  try Value.accumulate_subset b cs wcr values
  with Value.Out_of_bounds { container; index; shape } ->
    raise (F (Out_of_bounds { container; index; shape; context }))

(* ------------------------------------------------------------------ *)
(* Tasklet code evaluation                                             *)
(* ------------------------------------------------------------------ *)

(* Evaluate tasklet code. [inputs] maps connector names to values; [env] binds
   map parameters and symbols (available as numbers inside tasklets). Select
   outcomes are recorded as coverage points keyed by (sid, nid, #select). *)
let eval_code ctx ~sid ~nid env inputs (code : Tcode.t) =
  let select_idx = ref 0 in
  let rec ev e =
    match e with
    | Tcode.Fconst f -> f
    | Tcode.Ref s -> (
        match Hashtbl.find_opt inputs s with
        | Some v -> v
        | None -> (
            match Symbolic.Expr.Env.find_opt s env with
            | Some i -> float_of_int i
            | None -> raise (F (Invalid_graph (Printf.sprintf "tasklet %d: unbound ref %s" nid s)))))
    | Tcode.Bin (op, a, b) -> apply_bin op (ev a) (ev b)
    | Tcode.Un (op, a) -> apply_un op (ev a)
    | Tcode.Cmp (op, a, b) -> apply_cmp op (ev a) (ev b)
    | Tcode.Select (c, a, b) ->
        let taken = ev c <> 0. in
        let k = !select_idx in
        incr select_idx;
        record ctx (Cov_select { state = sid; node = nid; site = k; taken });
        if taken then ev a else ev b
  in
  let out = Hashtbl.create 4 in
  List.iter
    (fun (o, e) ->
      let v = ev e in
      Hashtbl.replace out o v;
      (* later assignments may read earlier outputs *)
      Hashtbl.replace inputs o v)
    code.assignments;
  out

(* ------------------------------------------------------------------ *)
(* Per-state execution context: adjacency, topological order and scope
   membership are computed once per state execution, not per query — map
   bodies execute their tasklets once per iteration point.               *)
(* ------------------------------------------------------------------ *)

type sctx = {
  st : State.t;
  ins : (int, State.edge list) Hashtbl.t;
  outs : (int, State.edge list) Hashtbl.t;
  topo : int list;
  scope : (int, int option) Hashtbl.t;
}

let ins_of sc nid = Option.value ~default:[] (Hashtbl.find_opt sc.ins nid)
let outs_of sc nid = Option.value ~default:[] (Hashtbl.find_opt sc.outs nid)

(* ------------------------------------------------------------------ *)
(* Node execution                                                      *)
(* ------------------------------------------------------------------ *)

let single_value ctx ~context b cs =
  let values = read_subset ctx ~context b cs in
  if Array.length values <> 1 then
    raise (F (Invalid_graph (Printf.sprintf "%s: tasklet memlet must have volume 1 (got %d)" context (Array.length values))))
  else values.(0)

let exec_tasklet ctx sc sid nid env (code : Tcode.t) =
  tick ctx;
  let inputs = Hashtbl.create 8 in
  List.iter
    (fun (e : State.edge) ->
      match (e.dst_conn, e.memlet) with
      | Some conn, Some m ->
          let b = buffer ctx m.data in
          let cs = concretize ctx env m.subset in
          let context = Printf.sprintf "tasklet %d input %s" nid conn in
          Hashtbl.replace inputs conn (single_value ctx ~context b cs)
      | _ -> ())
    (ins_of sc nid);
  let out = eval_code ctx ~sid ~nid env inputs code in
  List.iter
    (fun (e : State.edge) ->
      match (e.src_conn, e.memlet) with
      | Some conn, Some m -> (
          match Hashtbl.find_opt out conn with
          | None -> raise (F (Invalid_graph (Printf.sprintf "tasklet %d: no value for connector %s" nid conn)))
          | Some v ->
              let b = buffer ctx m.data in
              let cs = concretize ctx env m.subset in
              let context = Printf.sprintf "tasklet %d output %s" nid conn in
              (match m.wcr with
              | None -> write_subset ctx ~context b cs [| v |]
              | Some w -> accumulate_subset ctx ~context b cs w [| v |]))
      | _ -> ())
    (outs_of sc nid)

let find_in _ctx sc nid conn =
  match
    List.find_opt
      (fun (e : State.edge) -> e.dst_conn = Some conn && e.memlet <> None)
      (ins_of sc nid)
  with
  | Some e -> Option.get e.memlet
  | None -> raise (F (Invalid_graph (Printf.sprintf "library node %d: missing input %s" nid conn)))

let find_out _ctx sc nid conn =
  match
    List.find_opt
      (fun (e : State.edge) -> e.src_conn = Some conn && e.memlet <> None)
      (outs_of sc nid)
  with
  | Some e -> Option.get e.memlet
  | None -> raise (F (Invalid_graph (Printf.sprintf "library node %d: missing output %s" nid conn)))

let subset_counts cs = List.map Symbolic.Subset.crange_count cs

let exec_library ctx sc nid env kind =
  let read conn =
    let m : Memlet.t = find_in ctx sc nid conn in
    let b = buffer ctx m.data in
    let cs = concretize ctx env m.subset in
    let context = Printf.sprintf "library node %d input %s" nid conn in
    (read_subset ctx ~context b cs, subset_counts cs)
  in
  let write conn values =
    let m : Memlet.t = find_out ctx sc nid conn in
    let b = buffer ctx m.data in
    let cs = concretize ctx env m.subset in
    let context = Printf.sprintf "library node %d output %s" nid conn in
    match m.wcr with
    | None -> write_subset ctx ~context b cs values
    | Some w -> accumulate_subset ctx ~context b cs w values
  in
  match kind with
  | Node.Mat_mul ->
      let a, adims = read "A" and b, bdims = read "B" in
      (match (adims, bdims) with
      | [ m; k ], [ k'; n ] when k = k' ->
          tick ctx ~cost:(m * n * k);
          let c = Array.make (m * n) 0. in
          for i = 0 to m - 1 do
            for j = 0 to n - 1 do
              let acc = ref 0. in
              for l = 0 to k - 1 do
                acc := !acc +. (a.((i * k) + l) *. b.((l * n) + j))
              done;
              c.((i * n) + j) <- !acc
            done
          done;
          write "C" c
      | _ -> raise (F (Invalid_graph (Printf.sprintf "matmul node %d: incompatible shapes" nid))))
  | Node.Batched_mat_mul ->
      let a, adims = read "A" and b, bdims = read "B" in
      (match (adims, bdims) with
      | [ bt; m; k ], [ bt'; k'; n ] when k = k' && bt = bt' ->
          tick ctx ~cost:(bt * m * n * k);
          let c = Array.make (bt * m * n) 0. in
          for bi = 0 to bt - 1 do
            for i = 0 to m - 1 do
              for j = 0 to n - 1 do
                let acc = ref 0. in
                for l = 0 to k - 1 do
                  acc := !acc +. (a.((bi * m * k) + (i * k) + l) *. b.((bi * k * n) + (l * n) + j))
                done;
                c.((bi * m * n) + (i * n) + j) <- !acc
              done
            done
          done;
          write "C" c
      | _ -> raise (F (Invalid_graph (Printf.sprintf "batched matmul node %d: incompatible shapes" nid))))
  | Node.Reduce (op, axes) ->
      let input, dims = read "in" in
      let ndims = List.length dims in
      List.iter
        (fun ax ->
          if ax < 0 || ax >= ndims then
            raise (F (Invalid_graph (Printf.sprintf "reduce node %d: bad axis %d" nid ax))))
        axes;
      tick ctx ~cost:(List.fold_left ( * ) 1 dims);
      let dims_arr = Array.of_list dims in
      let keep = List.filter (fun d -> not (List.mem d axes)) (List.init ndims Fun.id) in
      let out_dims = List.map (fun d -> dims_arr.(d)) keep in
      let out_n = List.fold_left ( * ) 1 out_dims in
      let out = Array.make out_n (Memlet.wcr_identity op) in
      let total = Array.fold_left ( * ) 1 dims_arr in
      let idx = Array.make ndims 0 in
      for flat = 0 to total - 1 do
        let rem = ref flat in
        for d = ndims - 1 downto 0 do
          idx.(d) <- !rem mod dims_arr.(d);
          rem := !rem / dims_arr.(d)
        done;
        let oflat = List.fold_left (fun acc d -> (acc * dims_arr.(d)) + idx.(d)) 0 keep in
        out.(oflat) <- Memlet.apply_wcr op out.(oflat) input.(flat)
      done;
      write "out" out

(* Copy edges between two access nodes: read the source subset, write the
   destination subset; volumes must match. This is also the host<->GPU copy
   mechanism. *)
let exec_copy ctx sc env (e : State.edge) =
  let st = sc.st in
  match e.memlet with
  | None -> ()
  | Some src_m ->
      let dst_data =
        match State.node st e.dst with
        | Node.Access d -> d
        | _ -> raise (F (Invalid_graph "copy edge must end at an access node"))
      in
      let dst_m =
        match e.dst_memlet with
        | Some m -> m
        | None ->
            let desc = Graph.container ctx.g dst_data in
            Memlet.make dst_data (Symbolic.Subset.full desc.shape)
      in
      let sb = buffer ctx src_m.data and db = buffer ctx dst_m.data in
      let scs = concretize ctx env src_m.subset and dcs = concretize ctx env dst_m.subset in
      let context = Printf.sprintf "copy %s -> %s" src_m.data dst_m.data in
      let values = read_subset ctx ~context sb scs in
      tick ctx ~cost:(max 1 (Array.length values / 64));
      (match dst_m.wcr with
      | None -> write_subset ctx ~context db dcs values
      | Some w -> accumulate_subset ctx ~context db dcs w values)

(* ------------------------------------------------------------------ *)
(* Scope and state execution                                           *)
(* ------------------------------------------------------------------ *)

(* Direct members of a scope (or of the state's top level when [entry] is
   None), in topological order. *)
let direct_members sc entry =
  List.filter (fun n -> Hashtbl.find_opt sc.scope n = Some entry) sc.topo
  |> List.filter (fun n ->
         match State.node sc.st n with Node.Map_exit _ -> false | _ -> true)

let check_gpu_storage ctx sc nid =
  List.iter
    (fun (e : State.edge) ->
      match e.memlet with
      | Some m -> (
          match Graph.container_opt ctx.g m.data with
          | Some d when d.storage = Graph.Host ->
              raise
                (F
                   (Invalid_graph
                      (Printf.sprintf "GPU-scheduled code accesses host container %s" m.data)))
          | _ -> ())
      | None -> ())
    (ins_of sc nid @ outs_of sc nid)

let rec exec_scope_member ctx sc sid ~gpu env nid =
  match State.node sc.st nid with
  | Node.Access _ ->
      (* execute outgoing copy edges (access -> access) *)
      List.iter
        (fun (e : State.edge) ->
          match State.node_opt sc.st e.dst with
          | Some (Node.Access _) -> exec_copy ctx sc env e
          | _ -> ())
        (outs_of sc nid)
  | Node.Tasklet { code; _ } ->
      if gpu then check_gpu_storage ctx sc nid;
      exec_tasklet ctx sc sid nid env code
  | Node.Library { kind; _ } ->
      if gpu then check_gpu_storage ctx sc nid;
      tick ctx;
      exec_library ctx sc nid env kind
  | Node.Map_entry info -> exec_map ctx sc sid env nid info
  | Node.Map_exit _ -> ()

and exec_map ctx sc sid env nid (info : Node.map_info) =
  let gpu = info.schedule = Node.Gpu_device in
  let members = direct_members sc (Some nid) in
  let ranges = List.map (fun (r : Symbolic.Subset.range) ->
      try Symbolic.Subset.concretize_range env r with
      | Symbolic.Expr.Unbound_symbol s -> raise (F (Runtime_error ("unbound symbol " ^ s ^ " in map range")))
      | Symbolic.Expr.Division_by_zero -> raise (F (Runtime_error "division by zero in map range")))
      info.ranges
  in
  record ctx
    (Cov_map
       {
         state = sid;
         node = nid;
         empty = List.for_all (fun r -> Symbolic.Subset.crange_count r = 0) ranges;
       });
  let rec iterate env params ranges =
    match (params, ranges) with
    | [], [] -> List.iter (exec_scope_member ctx sc sid ~gpu env) members
    | p :: ps, (r : Symbolic.Subset.crange) :: rs ->
        List.iter
          (fun v -> iterate (Symbolic.Expr.Env.add p v env) ps rs)
          (Symbolic.Subset.crange_elements r)
    | _ -> raise (F (Invalid_graph (Printf.sprintf "map %d: params/ranges arity mismatch" nid)))
  in
  iterate env info.params ranges

(* Scope cache: node id -> innermost enclosing map entry (None = top level).
   Computed once per state execution. *)
let build_scope_cache st =
  let cache = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace cache n None) (State.node_ids st);
  let entries =
    List.filter_map
      (fun (id, n) -> if Node.is_map_entry n then Some id else None)
      (State.nodes st)
  in
  (* Assign innermost scopes: process entries so that nested (deeper) entries
     overwrite outer assignments. An entry B nested in A appears in A's scope
     nodes; process outer scopes first by sorting entries by containment. *)
  let scope_sets = List.map (fun e -> (e, State.scope_nodes st e)) entries in
  let depth e =
    List.length (List.filter (fun (_, nodes) -> List.mem e nodes) scope_sets)
  in
  let ordered = List.sort (fun a b -> compare (depth (fst a)) (depth (fst b))) scope_sets in
  List.iter
    (fun (e, nodes) -> List.iter (fun n -> Hashtbl.replace cache n (Some e)) nodes)
    ordered;
  (* exit nodes belong to the parent scope of their entry *)
  List.iter
    (fun (id, n) ->
      match n with
      | Node.Map_exit { entry } -> Hashtbl.replace cache id (Hashtbl.find cache entry)
      | _ -> ())
    (State.nodes st);
  cache

let build_sctx st =
  let ins = Hashtbl.create 32 and outs = Hashtbl.create 32 in
  let push tbl k (e : State.edge) =
    Hashtbl.replace tbl k (e :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  (* State.edges is sorted by edge id; reversed cons keeps that order *)
  List.iter
    (fun (e : State.edge) ->
      push ins e.dst e;
      push outs e.src e)
    (List.rev (State.edges st));
  { st; ins; outs; topo = State.topological st; scope = build_scope_cache st }

let exec_state ctx sid =
  tick ctx;
  record ctx (Cov_state sid);
  let st = Graph.state ctx.g sid in
  let sc = build_sctx st in
  let members = direct_members sc None in
  List.iter (exec_scope_member ctx sc sid ~gpu:false ctx.sym_env) members

(* ------------------------------------------------------------------ *)
(* Control flow                                                        *)
(* ------------------------------------------------------------------ *)

(* Interstate conditions and assignments may read scalar containers; those are
   added (truncated to int) to the symbol environment unless shadowed. *)
let interstate_env ctx =
  Hashtbl.fold
    (fun name (b : Value.buffer) env ->
      if Array.length b.cshape = 0 && not (Symbolic.Expr.Env.mem name env) then
        Symbolic.Expr.Env.add name (int_of_float b.data.(0)) env
      else env)
    ctx.mem ctx.sym_env

let exec_program ctx =
  let start = Graph.start_state ctx.g in
  if start < 0 then ()
  else begin
    let current = ref (Some start) in
    while !current <> None do
      let sid = Option.get !current in
      exec_state ctx sid;
      let env = interstate_env ctx in
      let next =
        List.find_opt
          (fun (e : Graph.istate_edge) ->
            try Symbolic.Cond.eval env e.cond
            with Symbolic.Expr.Unbound_symbol s ->
              raise (F (Runtime_error ("unbound symbol " ^ s ^ " in interstate condition"))))
          (Graph.out_istate_edges ctx.g sid)
      in
      match next with
      | None -> current := None
      | Some e ->
          record ctx (Cov_iedge e.ie_id);
          List.iter
            (fun (sym, rhs) ->
              let v = eval_expr ctx env rhs in
              ctx.sym_env <- Symbolic.Expr.Env.add sym v ctx.sym_env)
            e.assigns;
          current := Some e.dst
    done
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) g ~symbols ~inputs =
  match Validate.check g with
  | e :: _ -> Error (Invalid_graph (Format.asprintf "%a" Validate.pp_error e))
  | [] -> (
      let sym_env = Symbolic.Expr.Env.of_list symbols in
      let mem : Value.t = Hashtbl.create 16 in
      let ctx =
        { g; cfg = config; mem; steps = 0; writes = 0; subsets = 0; cov = Hashtbl.create 64; sym_env }
      in
      try
        (* allocate every container *)
        List.iter
          (fun (name, desc) ->
            let b =
              try Value.alloc ~garbage_seed:config.garbage_seed sym_env name desc with
              | Invalid_argument msg -> raise (F (Invalid_graph msg))
              | Symbolic.Expr.Unbound_symbol s ->
                  raise (F (Runtime_error ("unbound symbol " ^ s ^ " in shape of " ^ name)))
            in
            Hashtbl.replace mem name b)
          (Graph.containers g);
        (* load provided inputs *)
        List.iter
          (fun (name, values) ->
            match Value.buffer_opt mem name with
            | None -> raise (F (Runtime_error ("input for undeclared container " ^ name)))
            | Some b ->
                let n = Value.num_elements b in
                if Array.length values <> n then
                  raise
                    (F
                       (Runtime_error
                          (Printf.sprintf "input %s has %d elements, expected %d" name
                             (Array.length values) n)));
                Array.blit values 0 b.data 0 n)
          inputs;
        exec_program ctx;
        let coverage = Hashtbl.fold (fun k () acc -> k :: acc) ctx.cov [] |> List.sort compare in
        Ok { memory = mem; coverage; steps = ctx.steps; writes = ctx.writes; subsets = ctx.subsets }
      with
      | F fault -> Error fault
      | Invalid_argument msg -> Error (Runtime_error msg)
      | Stack_overflow -> Error (Hang { steps = ctx.steps }))
