(* Public interpreter entry point.

   The execution machinery lives in four modules now: Defs (shared fault /
   injection / outcome vocabulary), Tree (the reference tree-walk
   interpreter), Plan (compile-once execution plans) and Kernel (batched
   imperative kernels over Bigarray buffers with a batch axis). [run] keeps
   the historical one-shot interface — compile then execute — with the tier
   made explicit; hot loops should compile once via Plan.Cache or
   Kernel.Cache and call execute / execute_batch per trial. *)

include Defs

type tier = Tree | Plan | Kernel

let run_tree = Tree.run

let run ?(config = default_config) ?(tier = Plan) g ~symbols ~inputs =
  match tier with
  | Tree -> Tree.run ~config g ~symbols ~inputs
  | Plan -> (
      match Plan.compile g ~symbols with
      | Error f -> Error f
      | Ok p -> Plan.execute ~config p ~inputs)
  | Kernel -> (
      match Kernel.compile g ~symbols with
      | Error f -> Error f
      | Ok k -> Kernel.execute ~config k ~inputs)

let run_batch ?(config = default_config) g ~symbols ~inputs =
  match Kernel.compile g ~symbols with
  | Error f -> Array.map (fun _ -> Error f) inputs
  | Ok k -> Kernel.execute_batch ~config k ~inputs
