(* Public interpreter entry point.

   The execution machinery lives in three modules now: Defs (shared fault /
   injection / outcome vocabulary), Tree (the reference tree-walk
   interpreter) and Plan (compile-once execution plans). [run] keeps the
   historical one-shot interface — compile then execute — so existing
   callers are untouched; hot loops should compile once via Plan (or
   Plan.Cache) and call Plan.execute per trial. *)

include Defs

let run_tree = Tree.run

let run ?(config = default_config) g ~symbols ~inputs =
  match Plan.compile g ~symbols with
  | Error f -> Error f
  | Ok p -> Plan.execute ~config p ~inputs
