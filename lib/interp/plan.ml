(* Compile-once execution plans.

   [compile] lowers a validated graph plus a symbol valuation into a flat,
   immutable plan: topological order and scope membership resolved once,
   tasklet code compiled to closures over an integer-slot scratch file,
   memlet subsets pre-evaluated to concrete ranges wherever the valuation
   makes them constant, and containers addressed by dense plan ids instead
   of string hashes. [execute] then runs the plan over fresh buffers as many
   times as the fuzzing loop needs.

   The observable semantics — step counts, write/subset injection counters,
   coverage digests, fault messages, even the evaluation order of failing
   subexpressions — are kept identical to the reference tree-walk
   interpreter (Tree); test/test_plan.ml holds the differential proof
   obligation over every workload in lib/workloads. *)

open Sdfg
open Defs

(* ------------------------------------------------------------------ *)
(* Run-time state: one register file per execution                     *)
(* ------------------------------------------------------------------ *)

type rt = {
  cfg : config;
  bufs : Value.buffer array;  (* dense plan ids -> fresh buffers *)
  params : int array;  (* map-parameter registers *)
  dvals : int array;  (* dynamic (interstate-assigned) symbol values *)
  dset : bool array;  (* which dynamic slots are currently bound *)
  mutable steps : int;
  mutable writes : int;
  mutable subsets : int;
  cov : (int, unit) Hashtbl.t;
}

let tick ?(cost = 1) rt =
  rt.steps <- rt.steps + cost;
  (match rt.cfg.inject with
  | Some (Burn_steps { after }) when rt.steps >= after ->
      rt.steps <- rt.steps + rt.cfg.step_limit
  | _ -> ());
  if rt.steps > rt.cfg.step_limit then raise (F (Hang { steps = rt.steps }))

(* ------------------------------------------------------------------ *)
(* Lowered integer expressions                                         *)
(* ------------------------------------------------------------------ *)

(* Floor division / euclidean modulo, same semantics as Symbolic.Expr.eval
   (fdiv/fmod are not exported there). *)
let ifdiv a b =
  if b = 0 then raise Symbolic.Expr.Division_by_zero
  else
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ifmod a b =
  if b = 0 then raise Symbolic.Expr.Division_by_zero
  else
    let r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then r + b else r

(* An integer expression lowered against the compile-time valuation: either a
   constant folded at compile time or a closure over the register file. *)
type lowered = Kconst of int | Kdyn of (rt -> int)

let force = function Kconst k -> fun _ -> k | Kdyn f -> f

let lift1 f = function
  | Kconst a -> Kconst (f a)
  | Kdyn fa -> Kdyn (fun rt -> f (fa rt))

(* Binary fold. The runtime closure evaluates its right operand first — the
   order OCaml's [eval env a + eval env b] evaluates operands in the
   reference interpreter — so when both sides raise, the same exception
   wins. A constant division by zero folds to a closure that re-raises at
   execution time, where the reference raises it. *)
let lift2 f a b =
  match (a, b) with
  | Kconst x, Kconst y -> (
      match f x y with
      | v -> Kconst v
      | exception Symbolic.Expr.Division_by_zero ->
          Kdyn (fun _ -> raise Symbolic.Expr.Division_by_zero))
  | _ ->
      let fa = force a and fb = force b in
      Kdyn
        (fun rt ->
          let vb = fb rt in
          let va = fa rt in
          f va vb)

(* ------------------------------------------------------------------ *)
(* Compile-time environment                                            *)
(* ------------------------------------------------------------------ *)

type cenv = {
  cg : Graph.t;
  buf_idx : (string, int) Hashtbl.t;  (* container name -> dense buffer id *)
  scalar_idx : (string, int) Hashtbl.t;  (* scalar containers only *)
  dyn_idx : (string, int) Hashtbl.t;  (* interstate-assigned symbol -> slot *)
  static : int Symbolic.Expr.Env.t;  (* compile-time constant symbols *)
  mutable nparams : int;  (* map-parameter registers allocated so far *)
}

(* [sparams] is the innermost-first association of enclosing map parameters
   to their registers: within a tasklet or memlet, a parameter shadows any
   symbol of the same name, and a deeper map shadows an outer one — the same
   shadowing [Env.add] produced in the tree-walk. *)
let lower_sym cv sparams ~interstate s =
  match List.assoc_opt s sparams with
  | Some slot -> Kdyn (fun rt -> rt.params.(slot))
  | None -> (
      match Hashtbl.find_opt cv.dyn_idx s with
      | Some i ->
          (* a dynamic symbol falls back, when unset, to what the reference
             env would have held: in interstate contexts a scalar container
             of the same name, otherwise an unbound-symbol fault *)
          let fallback =
            match if interstate then Hashtbl.find_opt cv.scalar_idx s else None with
            | Some bid -> fun rt -> int_of_float rt.bufs.(bid).Value.data.(0)
            | None -> fun _ -> raise (Symbolic.Expr.Unbound_symbol s)
          in
          Kdyn (fun rt -> if rt.dset.(i) then rt.dvals.(i) else fallback rt)
      | None -> (
          match Symbolic.Expr.Env.find_opt s cv.static with
          | Some v -> Kconst v
          | None -> (
              match if interstate then Hashtbl.find_opt cv.scalar_idx s else None with
              | Some bid -> Kdyn (fun rt -> int_of_float rt.bufs.(bid).Value.data.(0))
              | None -> Kdyn (fun _ -> raise (Symbolic.Expr.Unbound_symbol s)))))

let rec lower_expr cv sparams ~interstate (e : Symbolic.Expr.t) =
  let go x = lower_expr cv sparams ~interstate x in
  match e with
  | Symbolic.Expr.Int n -> Kconst n
  | Symbolic.Expr.Sym s -> lower_sym cv sparams ~interstate s
  | Symbolic.Expr.Add (a, b) -> lift2 ( + ) (go a) (go b)
  | Symbolic.Expr.Sub (a, b) -> lift2 ( - ) (go a) (go b)
  | Symbolic.Expr.Mul (a, b) -> lift2 ( * ) (go a) (go b)
  | Symbolic.Expr.Div (a, b) -> lift2 ifdiv (go a) (go b)
  | Symbolic.Expr.Mod (a, b) -> lift2 ifmod (go a) (go b)
  | Symbolic.Expr.Min (a, b) -> lift2 Stdlib.min (go a) (go b)
  | Symbolic.Expr.Max (a, b) -> lift2 Stdlib.max (go a) (go b)
  | Symbolic.Expr.Neg a -> lift1 (fun x -> -x) (go a)

(* Interstate conditions: comparisons evaluate their right operand first and
   And/Or short-circuit left-first, exactly as Cond.eval. *)
let rec lower_cond cv (c : Symbolic.Cond.t) =
  let e x = force (lower_expr cv [] ~interstate:true x) in
  let cmp op a b =
    let fa = e a and fb = e b in
    fun rt ->
      let vb = fb rt in
      let va = fa rt in
      op va vb
  in
  match c with
  | Symbolic.Cond.True -> fun _ -> true
  | Symbolic.Cond.False -> fun _ -> false
  | Symbolic.Cond.Lt (a, b) -> cmp ( < ) a b
  | Symbolic.Cond.Le (a, b) -> cmp ( <= ) a b
  | Symbolic.Cond.Gt (a, b) -> cmp ( > ) a b
  | Symbolic.Cond.Ge (a, b) -> cmp ( >= ) a b
  | Symbolic.Cond.Eq (a, b) -> cmp ( = ) a b
  | Symbolic.Cond.Ne (a, b) -> cmp ( <> ) a b
  | Symbolic.Cond.And (a, b) ->
      let la = lower_cond cv a and lb = lower_cond cv b in
      fun rt -> la rt && lb rt
  | Symbolic.Cond.Or (a, b) ->
      let la = lower_cond cv a and lb = lower_cond cv b in
      fun rt -> la rt || lb rt
  | Symbolic.Cond.Not a ->
      let la = lower_cond cv a in
      fun rt -> not (la rt)

(* ------------------------------------------------------------------ *)
(* Lowered subsets                                                     *)
(* ------------------------------------------------------------------ *)

type lrange =
  | Lconst of Symbolic.Subset.crange
  | Ldyn of (rt -> int) * (rt -> int) * (rt -> int)  (* lo, hi, step *)

(* Classification of a memlet subset at compile time, cheapest first:
   scalar (no index computation at all), a volume-1 point whose per-dimension
   index is one closure, fully constant ranges shared across all runs, or
   per-dimension closures. *)
type lsub =
  | Sscalar
  | Spoint of (rt -> int) array
  | Sconst of Symbolic.Subset.crange list
  | Sdyn of lrange array

let lower_range cv sparams (r : Symbolic.Subset.range) =
  let lo = lower_expr cv sparams ~interstate:false r.lo in
  let hi = lower_expr cv sparams ~interstate:false r.hi in
  let step = lower_expr cv sparams ~interstate:false r.step in
  match (lo, hi, step) with
  | Kconst l, Kconst h, Kconst s -> Lconst { Symbolic.Subset.clo = l; chi = h; cstep = s }
  | _ -> Ldyn (force lo, force hi, force step)

(* The point fast path requires lo and hi to be the same expression (so
   skipping the hi evaluation cannot skip a distinct exception) and the step
   to fold to the constant 1. [point] is only requested for tasklet memlets,
   where the volume-1 check makes points the common case. *)
let lower_subset cv sparams ~point (s : Symbolic.Subset.t) =
  match s with
  | [] -> Sscalar
  | _ ->
      let is_point =
        point
        && List.for_all
             (fun (r : Symbolic.Subset.range) ->
               r.lo = r.hi
               &&
               match lower_expr cv sparams ~interstate:false r.step with
               | Kconst 1 -> true
               | _ -> false)
             s
      in
      if is_point then
        Spoint
          (Array.of_list
             (List.map
                (fun (r : Symbolic.Subset.range) ->
                  force (lower_expr cv sparams ~interstate:false r.lo))
                s))
      else
        let ls = List.map (lower_range cv sparams) s in
        if List.for_all (function Lconst _ -> true | Ldyn _ -> false) ls then
          Sconst (List.map (function Lconst c -> c | Ldyn _ -> assert false) ls)
        else Sdyn (Array.of_list ls)

(* Concrete-range construction mirrors Subset.concretize_range's record
   literal, which evaluates step, then hi, then lo. *)
let eval_range rt = function
  | Lconst c -> c
  | Ldyn (flo, fhi, fstep) ->
      let cstep = fstep rt in
      let chi = fhi rt in
      let clo = flo rt in
      { Symbolic.Subset.clo; chi; cstep }

let subset_fault = function
  | Symbolic.Expr.Unbound_symbol s ->
      F (Runtime_error ("unbound symbol " ^ s ^ " in subset"))
  | Symbolic.Expr.Division_by_zero -> F (Runtime_error "division by zero in subset")
  | e -> e

(* Evaluate a non-point subset: concrete ranges, the Shift_index injection on
   the first dimension, and the subset counter (dimensioned subsets only, and
   only after a successful evaluation — the same points the tree-walk
   advances it). *)
let concretize_sub rt ls =
  let cs =
    match ls with
    | Sscalar -> []
    | Sconst cs -> cs
    | Sdyn lrs -> (
        try Array.to_list (Array.map (eval_range rt) lrs) with e -> raise (subset_fault e))
    | Spoint _ -> assert false (* points are evaluated by eval_point *)
  in
  match cs with
  | [] -> cs
  | (r : Symbolic.Subset.crange) :: rest ->
      let cs =
        match rt.cfg.inject with
        | Some (Shift_index { nth_subset; delta }) when rt.subsets = nth_subset ->
            { r with Symbolic.Subset.clo = r.clo + delta; chi = r.chi + delta } :: rest
        | _ -> cs
      in
      rt.subsets <- rt.subsets + 1;
      cs

let eval_point rt fs =
  let idx = try Array.map (fun f -> f rt) fs with e -> raise (subset_fault e) in
  (match rt.cfg.inject with
  | Some (Shift_index { nth_subset; delta }) when rt.subsets = nth_subset ->
      idx.(0) <- idx.(0) + delta
  | _ -> ());
  rt.subsets <- rt.subsets + 1;
  idx

(* ------------------------------------------------------------------ *)
(* Buffer references and write interception                            *)
(* ------------------------------------------------------------------ *)

type bref = Bok of int | Bmissing of string

let getbuf rt = function
  | Bok i -> rt.bufs.(i)
  | Bmissing name -> raise (F (Invalid_graph ("reference to unallocated container " ^ name)))

(* Single-value variant of the tree-walk's corrupt_write: same counter
   discipline (the write counter advances whether or not this write was the
   injection target). *)
let corrupt1 rt v =
  let v' =
    match rt.cfg.inject with
    | Some (Flip_bit { nth_write; bit }) when rt.writes = nth_write ->
        Int64.float_of_bits
          (Int64.logxor (Int64.bits_of_float v) (Int64.shift_left 1L (bit land 63)))
    | Some (Set_nan { nth_write }) when rt.writes = nth_write -> Float.nan
    | Some (Set_inf { nth_write }) when rt.writes = nth_write -> Float.infinity
    | _ -> v
  in
  rt.writes <- rt.writes + 1;
  v'

let corrupt_write rt values =
  let patch v =
    if Array.length values = 0 then values
    else begin
      let values = Array.copy values in
      values.(0) <- v;
      values
    end
  in
  let values =
    match rt.cfg.inject with
    | Some (Flip_bit { nth_write; bit }) when rt.writes = nth_write ->
        if Array.length values = 0 then values
        else
          patch
            (Int64.float_of_bits
               (Int64.logxor (Int64.bits_of_float values.(0)) (Int64.shift_left 1L (bit land 63))))
    | Some (Set_nan { nth_write }) when rt.writes = nth_write -> patch Float.nan
    | Some (Set_inf { nth_write }) when rt.writes = nth_write -> patch Float.infinity
    | _ -> values
  in
  rt.writes <- rt.writes + 1;
  values

let oob_fault context = function
  | Value.Out_of_bounds { container; index; shape } ->
      F (Out_of_bounds { container; index; shape; context })
  | e -> e

(* ------------------------------------------------------------------ *)
(* Lowered operations                                                  *)
(* ------------------------------------------------------------------ *)

type task_read = { rd_buf : bref; rd_sub : lsub; rd_slot : int; rd_ctx : string }
type wsrc = Wslot of int | Wmissing of string

type task_write = {
  wr_src : wsrc;
  wr_buf : bref;
  wr_sub : lsub;
  wr_wcr : Memlet.wcr option;
  wr_ctx : string;
}

type task_op = {
  t_host_fault : fault option;  (* GPU scope touching host storage *)
  t_reads : task_read array;  (* in in-edge order *)
  t_assigns : (int * (rt -> float)) array;  (* scratch slot, lowered rhs *)
  t_writes : task_write array;  (* in out-edge order *)
  t_scratch : float array;  (* connector register file, shared across runs *)
  t_sel : int ref;  (* Select site counter within one invocation *)
}

type lib_conn =
  | Cok of { c_buf : bref; c_sub : lsub; c_wcr : Memlet.wcr option; c_ctx : string }
  | Cmissing of string  (* precomputed missing-connector fault message *)

type lib_op = {
  l_nid : int;
  l_kind : Node.lib_kind;
  l_host_fault : fault option;
  l_a : lib_conn;  (* "A" / "in" *)
  l_b : lib_conn option;  (* "B"; None for Reduce *)
  l_out : lib_conn;  (* "C" / "out" *)
}

type copy_op =
  | Copy_missing_desc  (* dst container has no descriptor: Not_found, as the tree-walk *)
  | Copy of {
      cp_src : bref;
      cp_ssub : lsub;
      cp_dst : bref;
      cp_dsub : lsub;
      cp_wcr : Memlet.wcr option;
      cp_ctx : string;
    }

type op =
  | Op_task of task_op
  | Op_lib of lib_op
  | Op_copies of copy_op array
  | Op_map of map_op

and map_op = {
  m_nid : int;
  m_cov : int array;  (* coverage digests, indexed by Bool.to_int empty *)
  m_lranges : lrange array;  (* every declared range, params or not *)
  m_pslots : int array;  (* parameter registers *)
  m_dmax : int;  (* min(#params, #ranges): iteration depth *)
  m_arity_ok : bool;
  m_body : op array;
}

type ledge = {
  le_cov : int;
  le_cond : rt -> bool;
  le_assigns : (int * (rt -> int)) array;  (* dynamic slot, lowered rhs *)
  le_dst : int;  (* position in p_states *)
}

type state_plan = { sp_cov : int; sp_ops : op array; sp_edges : ledge array }

type bufspec = { b_name : string; b_desc : Graph.datadesc; b_shape : int array }

type t = {
  p_bufs : bufspec array;
  p_buf_idx : (string, int) Hashtbl.t;
  p_nparams : int;
  p_ndyn : int;
  p_dyn_init : (int * int) array;  (* initially bound dynamic symbols *)
  p_states : state_plan array;
  p_start : int;  (* position in p_states, -1 when the graph has no start *)
}

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let bref cv name =
  match Hashtbl.find_opt cv.buf_idx name with Some i -> Bok i | None -> Bmissing name

(* The first host-storage memlet on a GPU-scheduled node, precomputed: edge
   lists and storage classes are static. *)
let gpu_fault cv sc nid =
  List.find_map
    (fun (e : State.edge) ->
      match e.memlet with
      | Some (m : Memlet.t) -> (
          match Graph.container_opt cv.cg m.data with
          | Some d when d.storage = Graph.Host ->
              Some
                (Invalid_graph
                   (Printf.sprintf "GPU-scheduled code accesses host container %s" m.data))
          | _ -> None)
      | None -> None)
    (Tree.ins_of sc nid @ Tree.outs_of sc nid)

(* Tasklet code lowered to closures over a scratch register file. Reference
   resolution is frozen at compile time with the tree-walk's precedence:
   visible connectors (inputs, plus targets of earlier assignments), then
   enclosing map parameters innermost-first, then symbols. *)
let lower_tcode cv sparams ~sid ~nid ~visible ~scratch ~sel ~sel_digests expr =
  let rec lo e =
    match e with
    | Tcode.Fconst f -> fun _ -> f
    | Tcode.Ref s -> (
        match Hashtbl.find_opt visible s with
        | Some i -> fun _ -> scratch.(i)
        | None -> (
            match List.assoc_opt s sparams with
            | Some slot -> fun rt -> float_of_int rt.params.(slot)
            | None -> (
                let unbound =
                  F (Invalid_graph (Printf.sprintf "tasklet %d: unbound ref %s" nid s))
                in
                match Hashtbl.find_opt cv.dyn_idx s with
                | Some i ->
                    fun rt ->
                      if rt.dset.(i) then float_of_int rt.dvals.(i) else raise unbound
                | None -> (
                    match Symbolic.Expr.Env.find_opt s cv.static with
                    | Some v ->
                        let fv = float_of_int v in
                        fun _ -> fv
                    | None -> fun _ -> raise unbound))))
    | Tcode.Bin (op, a, b) ->
        let la = lo a and lb = lo b in
        fun rt ->
          let vb = lb rt in
          let va = la rt in
          apply_bin op va vb
    | Tcode.Un (op, a) ->
        let la = lo a in
        fun rt -> apply_un op (la rt)
    | Tcode.Cmp (op, a, b) ->
        let la = lo a and lb = lo b in
        fun rt ->
          let vb = lb rt in
          let va = la rt in
          apply_cmp op va vb
    | Tcode.Select (c, a, b) ->
        let lc = lo c and la = lo a and lb = lo b in
        fun rt ->
          let taken = lc rt <> 0. in
          let k = !sel in
          incr sel;
          if rt.cfg.collect_coverage then begin
            let i = (2 * k) + Bool.to_int taken in
            if i < Array.length sel_digests then Hashtbl.replace rt.cov sel_digests.(i) ()
            else
              Hashtbl.replace rt.cov
                (cov_digest (Cov_select { state = sid; node = nid; site = k; taken }))
                ()
          end;
          if taken then la rt else lb rt
  in
  lo expr

let lower_tasklet cv sc sid ~gpu sparams nid (code : Tcode.t) =
  let host_fault = if gpu then gpu_fault cv sc nid else None in
  let slot_of = Hashtbl.create 8 in
  let nslots = ref 0 in
  let slot name =
    match Hashtbl.find_opt slot_of name with
    | Some i -> i
    | None ->
        let i = !nslots in
        incr nslots;
        Hashtbl.replace slot_of name i;
        i
  in
  let in_edges =
    List.filter_map
      (fun (e : State.edge) ->
        match (e.dst_conn, e.memlet) with
        | Some conn, Some m -> Some (conn, (m : Memlet.t))
        | _ -> None)
      (Tree.ins_of sc nid)
  in
  let reads =
    Array.of_list
      (List.map
         (fun (conn, (m : Memlet.t)) ->
           {
             rd_buf = bref cv m.data;
             rd_sub = lower_subset cv sparams ~point:true m.subset;
             rd_slot = slot conn;
             rd_ctx = Printf.sprintf "tasklet %d input %s" nid conn;
           })
         in_edges)
  in
  List.iter (fun (o, _) -> ignore (slot o)) code.assignments;
  let scratch = Array.make (max 1 !nslots) 0. in
  let sel = ref 0 in
  let sel_digests =
    Array.init
      (2 * Tcode.num_selects code)
      (fun i ->
        cov_digest (Cov_select { state = sid; node = nid; site = i / 2; taken = i mod 2 = 1 }))
  in
  (* visibility grows as assignments are lowered: an assignment may read
     inputs and any earlier target, but not later ones *)
  let visible = Hashtbl.create 8 in
  List.iter (fun (conn, _) -> Hashtbl.replace visible conn (Hashtbl.find slot_of conn)) in_edges;
  let assigns =
    Array.of_list
      (List.map
         (fun (o, expr) ->
           let f = lower_tcode cv sparams ~sid ~nid ~visible ~scratch ~sel ~sel_digests expr in
           let s = Hashtbl.find slot_of o in
           Hashtbl.replace visible o s;
           (s, f))
         code.assignments)
  in
  (* output connectors resolve against assignment targets only: an out-edge
     from a pure input connector is a missing-value fault, as in eval_code *)
  let targets = Hashtbl.create 8 in
  List.iter (fun (o, _) -> Hashtbl.replace targets o ()) code.assignments;
  let writes =
    Array.of_list
      (List.filter_map
         (fun (e : State.edge) ->
           match (e.src_conn, e.memlet) with
           | Some conn, Some (m : Memlet.t) ->
               Some
                 {
                   wr_src =
                     (if Hashtbl.mem targets conn then Wslot (Hashtbl.find slot_of conn)
                      else
                        Wmissing
                          (Printf.sprintf "tasklet %d: no value for connector %s" nid conn));
                   wr_buf = bref cv m.data;
                   wr_sub = lower_subset cv sparams ~point:true m.subset;
                   wr_wcr = m.wcr;
                   wr_ctx = Printf.sprintf "tasklet %d output %s" nid conn;
                 }
           | _ -> None)
         (Tree.outs_of sc nid))
  in
  {
    t_host_fault = host_fault;
    t_reads = reads;
    t_assigns = assigns;
    t_writes = writes;
    t_scratch = scratch;
    t_sel = sel;
  }

let lib_conn cv sparams nid ~dir conn (m : Memlet.t) =
  Cok
    {
      c_buf = bref cv m.data;
      c_sub = lower_subset cv sparams ~point:false m.subset;
      c_wcr = m.wcr;
      c_ctx = Printf.sprintf "library node %d %s %s" nid dir conn;
    }

let lower_library cv sc ~gpu sparams nid (kind : Node.lib_kind) =
  let host_fault = if gpu then gpu_fault cv sc nid else None in
  let find_in conn =
    match
      List.find_opt
        (fun (e : State.edge) -> e.dst_conn = Some conn && e.memlet <> None)
        (Tree.ins_of sc nid)
    with
    | Some e -> lib_conn cv sparams nid ~dir:"input" conn (Option.get e.memlet)
    | None -> Cmissing (Printf.sprintf "library node %d: missing input %s" nid conn)
  in
  let find_out conn =
    match
      List.find_opt
        (fun (e : State.edge) -> e.src_conn = Some conn && e.memlet <> None)
        (Tree.outs_of sc nid)
    with
    | Some e -> lib_conn cv sparams nid ~dir:"output" conn (Option.get e.memlet)
    | None -> Cmissing (Printf.sprintf "library node %d: missing output %s" nid conn)
  in
  match kind with
  | Node.Mat_mul | Node.Batched_mat_mul ->
      {
        l_nid = nid;
        l_kind = kind;
        l_host_fault = host_fault;
        l_a = find_in "A";
        l_b = Some (find_in "B");
        l_out = find_out "C";
      }
  | Node.Reduce _ ->
      {
        l_nid = nid;
        l_kind = kind;
        l_host_fault = host_fault;
        l_a = find_in "in";
        l_b = None;
        l_out = find_out "out";
      }

let lower_copy cv sparams ~dst_data (src_m : Memlet.t) (dst_memlet : Memlet.t option) =
  let dst_m =
    match dst_memlet with
    | Some m -> Some m
    | None -> (
        match Graph.container_opt cv.cg dst_data with
        | Some (desc : Graph.datadesc) ->
            Some (Memlet.make dst_data (Symbolic.Subset.full desc.shape))
        | None -> None)
  in
  match dst_m with
  | None -> Copy_missing_desc
  | Some (dst_m : Memlet.t) ->
      Copy
        {
          cp_src = bref cv src_m.data;
          cp_ssub = lower_subset cv sparams ~point:false src_m.subset;
          cp_dst = bref cv dst_m.data;
          cp_dsub = lower_subset cv sparams ~point:false dst_m.subset;
          cp_wcr = dst_m.wcr;
          cp_ctx = Printf.sprintf "copy %s -> %s" src_m.data dst_m.data;
        }

let rec lower_members cv sc sid ~gpu sparams entry =
  let st = sc.Tree.st in
  Array.of_list
    (List.filter_map
       (fun nid ->
         match State.node st nid with
         | Node.Access _ ->
             let copies =
               List.filter_map
                 (fun (e : State.edge) ->
                   match (State.node_opt st e.dst, e.memlet) with
                   | Some (Node.Access d), Some src_m ->
                       Some (lower_copy cv sparams ~dst_data:d src_m e.dst_memlet)
                   | _ -> None)
                 (Tree.outs_of sc nid)
             in
             if copies = [] then None else Some (Op_copies (Array.of_list copies))
         | Node.Tasklet { code; _ } ->
             Some (Op_task (lower_tasklet cv sc sid ~gpu sparams nid code))
         | Node.Library { kind; _ } ->
             Some (Op_lib (lower_library cv sc ~gpu sparams nid kind))
         | Node.Map_entry info -> Some (Op_map (lower_map cv sc sid sparams nid info))
         | Node.Map_exit _ -> None)
       (Tree.direct_members sc entry))

and lower_map cv sc sid sparams nid (info : Node.map_info) =
  let gpu = info.schedule = Node.Gpu_device in
  (* ranges are concretized against the enclosing scope only — a map's own
     parameters are not in scope for its ranges *)
  let lranges = Array.of_list (List.map (lower_range cv sparams) info.ranges) in
  let pslots =
    Array.of_list
      (List.map
         (fun _ ->
           let s = cv.nparams in
           cv.nparams <- s + 1;
           s)
         info.params)
  in
  let np = List.length info.params and nr = List.length info.ranges in
  let inner = List.rev (List.map2 (fun p s -> (p, s)) info.params (Array.to_list pslots)) in
  let body = lower_members cv sc sid ~gpu (inner @ sparams) (Some nid) in
  {
    m_nid = nid;
    m_cov =
      [|
        cov_digest (Cov_map { state = sid; node = nid; empty = false });
        cov_digest (Cov_map { state = sid; node = nid; empty = true });
      |];
    m_lranges = lranges;
    m_pslots = pslots;
    m_dmax = min np nr;
    m_arity_ok = np = nr;
    m_body = body;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let read_single rt (r : task_read) =
  let b = getbuf rt r.rd_buf in
  match r.rd_sub with
  | Spoint fs -> (
      let idx = eval_point rt fs in
      try Value.get b idx with e -> raise (oob_fault r.rd_ctx e))
  | ls ->
      let cs = concretize_sub rt ls in
      let values = try Value.read_subset b cs with e -> raise (oob_fault r.rd_ctx e) in
      if Array.length values <> 1 then
        raise
          (F
             (Invalid_graph
                (Printf.sprintf "%s: tasklet memlet must have volume 1 (got %d)" r.rd_ctx
                   (Array.length values))));
      values.(0)

let write_single rt (w : task_write) v =
  let b = getbuf rt w.wr_buf in
  match w.wr_sub with
  | Spoint fs -> (
      let idx = eval_point rt fs in
      let v = corrupt1 rt v in
      try
        match w.wr_wcr with
        | None -> Value.set b idx v
        | Some wc -> Value.set b idx (Memlet.apply_wcr wc (Value.get b idx) v)
      with e -> raise (oob_fault w.wr_ctx e))
  | ls -> (
      let cs = concretize_sub rt ls in
      let values = corrupt_write rt [| v |] in
      try
        match w.wr_wcr with
        | None -> Value.write_subset b cs values
        | Some wc -> Value.accumulate_subset b cs wc values
      with e -> raise (oob_fault w.wr_ctx e))

let exec_task rt (t : task_op) =
  (match t.t_host_fault with Some f -> raise (F f) | None -> ());
  tick rt;
  Array.iter (fun r -> t.t_scratch.(r.rd_slot) <- read_single rt r) t.t_reads;
  t.t_sel := 0;
  Array.iter (fun (s, f) -> t.t_scratch.(s) <- f rt) t.t_assigns;
  Array.iter
    (fun w ->
      match w.wr_src with
      | Wslot i -> write_single rt w t.t_scratch.(i)
      | Wmissing msg -> raise (F (Invalid_graph msg)))
    t.t_writes

let lib_read rt = function
  | Cmissing msg -> raise (F (Invalid_graph msg))
  | Cok { c_buf; c_sub; c_ctx; _ } ->
      let b = getbuf rt c_buf in
      let cs = concretize_sub rt c_sub in
      (* counts before the read, matching the tree-walk's tuple order *)
      let counts = List.map Symbolic.Subset.crange_count cs in
      let values = try Value.read_subset b cs with e -> raise (oob_fault c_ctx e) in
      (values, counts)

let lib_write rt conn values =
  match conn with
  | Cmissing msg -> raise (F (Invalid_graph msg))
  | Cok { c_buf; c_sub; c_wcr; c_ctx } -> (
      let b = getbuf rt c_buf in
      let cs = concretize_sub rt c_sub in
      let values = corrupt_write rt values in
      try
        match c_wcr with
        | None -> Value.write_subset b cs values
        | Some w -> Value.accumulate_subset b cs w values
      with e -> raise (oob_fault c_ctx e))

let exec_lib rt (l : lib_op) =
  (match l.l_host_fault with Some f -> raise (F f) | None -> ());
  tick rt;
  match l.l_kind with
  | Node.Mat_mul -> (
      let a, adims = lib_read rt l.l_a in
      let b, bdims = lib_read rt (Option.get l.l_b) in
      match (adims, bdims) with
      | [ m; k ], [ k'; n ] when k = k' ->
          tick rt ~cost:(m * n * k);
          let c = Array.make (m * n) 0. in
          for i = 0 to m - 1 do
            for j = 0 to n - 1 do
              let acc = ref 0. in
              for l = 0 to k - 1 do
                acc := !acc +. (a.((i * k) + l) *. b.((l * n) + j))
              done;
              c.((i * n) + j) <- !acc
            done
          done;
          lib_write rt l.l_out c
      | _ ->
          raise (F (Invalid_graph (Printf.sprintf "matmul node %d: incompatible shapes" l.l_nid)))
      )
  | Node.Batched_mat_mul -> (
      let a, adims = lib_read rt l.l_a in
      let b, bdims = lib_read rt (Option.get l.l_b) in
      match (adims, bdims) with
      | [ bt; m; k ], [ bt'; k'; n ] when k = k' && bt = bt' ->
          tick rt ~cost:(bt * m * n * k);
          let c = Array.make (bt * m * n) 0. in
          for bi = 0 to bt - 1 do
            for i = 0 to m - 1 do
              for j = 0 to n - 1 do
                let acc = ref 0. in
                for l = 0 to k - 1 do
                  acc :=
                    !acc +. (a.((bi * m * k) + (i * k) + l) *. b.((bi * k * n) + (l * n) + j))
                done;
                c.((bi * m * n) + (i * n) + j) <- !acc
              done
            done
          done;
          lib_write rt l.l_out c
      | _ ->
          raise
            (F
               (Invalid_graph
                  (Printf.sprintf "batched matmul node %d: incompatible shapes" l.l_nid))))
  | Node.Reduce (op, axes) ->
      let input, dims = lib_read rt l.l_a in
      let ndims = List.length dims in
      List.iter
        (fun ax ->
          if ax < 0 || ax >= ndims then
            raise (F (Invalid_graph (Printf.sprintf "reduce node %d: bad axis %d" l.l_nid ax))))
        axes;
      tick rt ~cost:(List.fold_left ( * ) 1 dims);
      let dims_arr = Array.of_list dims in
      let keep = List.filter (fun d -> not (List.mem d axes)) (List.init ndims Fun.id) in
      let out_dims = List.map (fun d -> dims_arr.(d)) keep in
      let out_n = List.fold_left ( * ) 1 out_dims in
      let out = Array.make out_n (Memlet.wcr_identity op) in
      let total = Array.fold_left ( * ) 1 dims_arr in
      let idx = Array.make ndims 0 in
      for flat = 0 to total - 1 do
        let rem = ref flat in
        for d = ndims - 1 downto 0 do
          idx.(d) <- !rem mod dims_arr.(d);
          rem := !rem / dims_arr.(d)
        done;
        let oflat = List.fold_left (fun acc d -> (acc * dims_arr.(d)) + idx.(d)) 0 keep in
        out.(oflat) <- Memlet.apply_wcr op out.(oflat) input.(flat)
      done;
      lib_write rt l.l_out out

let exec_copy rt = function
  | Copy_missing_desc -> raise Not_found (* Graph.container's failure, verbatim *)
  | Copy { cp_src; cp_ssub; cp_dst; cp_dsub; cp_wcr; cp_ctx } -> (
      let sb = getbuf rt cp_src in
      let db = getbuf rt cp_dst in
      let scs = concretize_sub rt cp_ssub in
      let dcs = concretize_sub rt cp_dsub in
      let values = try Value.read_subset sb scs with e -> raise (oob_fault cp_ctx e) in
      tick rt ~cost:(max 1 (Array.length values / 64));
      let values = corrupt_write rt values in
      try
        match cp_wcr with
        | None -> Value.write_subset db dcs values
        | Some w -> Value.accumulate_subset db dcs w values
      with e -> raise (oob_fault cp_ctx e))

let rec exec_op rt = function
  | Op_task t -> exec_task rt t
  | Op_lib l -> exec_lib rt l
  | Op_copies cs -> Array.iter (exec_copy rt) cs
  | Op_map m -> exec_map rt m

and exec_map rt (m : map_op) =
  let cr =
    try Array.map (eval_range rt) m.m_lranges with
    | Symbolic.Expr.Unbound_symbol s ->
        raise (F (Runtime_error ("unbound symbol " ^ s ^ " in map range")))
    | Symbolic.Expr.Division_by_zero ->
        raise (F (Runtime_error "division by zero in map range"))
  in
  (* Array.for_all short-circuits at the first non-empty range, like the
     tree-walk's List.for_all: a zero-step range behind it only raises when
     iteration actually reaches its depth *)
  let empty = Array.for_all (fun r -> Symbolic.Subset.crange_count r = 0) cr in
  if rt.cfg.collect_coverage then Hashtbl.replace rt.cov m.m_cov.(Bool.to_int empty) ();
  let rec go d =
    if d = m.m_dmax then begin
      if m.m_arity_ok then Array.iter (exec_op rt) m.m_body
      else
        raise
          (F (Invalid_graph (Printf.sprintf "map %d: params/ranges arity mismatch" m.m_nid)))
    end
    else begin
      let r = cr.(d) in
      let n = Symbolic.Subset.crange_count r in
      let pslot = m.m_pslots.(d) in
      for i = 0 to n - 1 do
        rt.params.(pslot) <- r.Symbolic.Subset.clo + (i * r.Symbolic.Subset.cstep);
        go (d + 1)
      done
    end
  in
  go 0

(* One interstate transition: coverage, then every assignment's rhs against
   the pre-edge environment (ticking per assignment), then the commit. The
   tree-walk evaluates each rhs against a snapshot taken before the edge and
   only then folds values into its symbol environment; deferring the whole
   commit is observationally identical because nothing reads the environment
   between two assignments of the same edge. *)
let run_edge rt (e : ledge) =
  if rt.cfg.collect_coverage then Hashtbl.replace rt.cov e.le_cov ();
  let n = Array.length e.le_assigns in
  let vals = Array.make n 0 in
  for i = 0 to n - 1 do
    let _, f = e.le_assigns.(i) in
    tick rt;
    vals.(i) <-
      (try f rt with
      | Symbolic.Expr.Unbound_symbol s -> raise (F (Runtime_error ("unbound symbol " ^ s)))
      | Symbolic.Expr.Division_by_zero ->
          raise (F (Runtime_error "division by zero in symbolic expression")))
  done;
  for i = 0 to n - 1 do
    let slot, _ = e.le_assigns.(i) in
    rt.dvals.(slot) <- vals.(i);
    rt.dset.(slot) <- true
  done;
  e.le_dst

let exec_program p rt =
  if p.p_start >= 0 then begin
    let current = ref p.p_start in
    while !current >= 0 do
      let sp = p.p_states.(!current) in
      tick rt;
      if rt.cfg.collect_coverage then Hashtbl.replace rt.cov sp.sp_cov ();
      Array.iter (exec_op rt) sp.sp_ops;
      let rec find i =
        if i >= Array.length sp.sp_edges then -1
        else if
          try sp.sp_edges.(i).le_cond rt
          with Symbolic.Expr.Unbound_symbol s ->
            raise (F (Runtime_error ("unbound symbol " ^ s ^ " in interstate condition")))
        then i
        else find (i + 1)
      in
      let next = find 0 in
      if next < 0 then current := -1 else current := run_edge rt sp.sp_edges.(next)
    done
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let compile g ~symbols =
  match Validate.check g with
  | e :: _ -> Error (Invalid_graph (Format.asprintf "%a" Validate.pp_error e))
  | [] -> (
      let env0 = Symbolic.Expr.Env.of_list symbols in
      (* dynamic symbols: assigned on any interstate edge anywhere in the
         graph; everything else in the valuation folds to a constant *)
      let dyn_idx = Hashtbl.create 8 in
      List.iter
        (fun (e : Graph.istate_edge) ->
          List.iter
            (fun (sym, _) ->
              if not (Hashtbl.mem dyn_idx sym) then
                Hashtbl.add dyn_idx sym (Hashtbl.length dyn_idx))
            e.assigns)
        (Graph.istate_edges g);
      let static = Symbolic.Expr.Env.filter (fun s _ -> not (Hashtbl.mem dyn_idx s)) env0 in
      let dyn_init =
        Array.of_list
          (Hashtbl.fold
             (fun s i acc ->
               match Symbolic.Expr.Env.find_opt s env0 with
               | Some v -> (i, v) :: acc
               | None -> acc)
             dyn_idx [])
      in
      try
        let buf_idx = Hashtbl.create 16 in
        let scalar_idx = Hashtbl.create 8 in
        let bufs =
          Array.of_list
            (List.mapi
               (fun i (name, (desc : Graph.datadesc)) ->
                 Hashtbl.replace buf_idx name i;
                 if desc.shape = [] then Hashtbl.replace scalar_idx name i;
                 let shape =
                   try Value.concretize_shape env0 name desc with
                   | Invalid_argument msg -> raise (F (Invalid_graph msg))
                   | Symbolic.Expr.Unbound_symbol s ->
                       raise (F (Runtime_error ("unbound symbol " ^ s ^ " in shape of " ^ name)))
                 in
                 { b_name = name; b_desc = desc; b_shape = shape })
               (Graph.containers g))
        in
        let cv = { cg = g; buf_idx; scalar_idx; dyn_idx; static; nparams = 0 } in
        let states = Graph.states g in
        let pos_of = Hashtbl.create 8 in
        List.iteri (fun i (sid, _) -> Hashtbl.replace pos_of sid i) states;
        let state_plans =
          Array.of_list
            (List.map
               (fun (sid, st) ->
                 let sc = Tree.build_sctx st in
                 let ops = lower_members cv sc sid ~gpu:false [] None in
                 let edges =
                   Array.of_list
                     (List.map
                        (fun (e : Graph.istate_edge) ->
                          {
                            le_cov = cov_digest (Cov_iedge e.ie_id);
                            le_cond = lower_cond cv e.cond;
                            le_assigns =
                              Array.of_list
                                (List.map
                                   (fun (sym, rhs) ->
                                     ( Hashtbl.find dyn_idx sym,
                                       force (lower_expr cv [] ~interstate:true rhs) ))
                                   e.assigns);
                            le_dst = Hashtbl.find pos_of e.dst;
                          })
                        (Graph.out_istate_edges g sid))
                 in
                 { sp_cov = cov_digest (Cov_state sid); sp_ops = ops; sp_edges = edges })
               states)
        in
        let start = Graph.start_state g in
        Ok
          {
            p_bufs = bufs;
            p_buf_idx = buf_idx;
            p_nparams = cv.nparams;
            p_ndyn = Hashtbl.length dyn_idx;
            p_dyn_init = dyn_init;
            p_states = state_plans;
            p_start = (if start < 0 then -1 else Hashtbl.find pos_of start);
          }
      with F f -> Error f)

let execute ?(config = default_config) p ~inputs =
  let bufs =
    Array.map
      (fun bs -> Value.alloc_shaped ~garbage_seed:config.garbage_seed bs.b_name bs.b_desc bs.b_shape)
      p.p_bufs
  in
  let rt =
    {
      cfg = config;
      bufs;
      params = Array.make (max 1 p.p_nparams) 0;
      dvals = Array.make (max 1 p.p_ndyn) 0;
      dset = Array.make (max 1 p.p_ndyn) false;
      steps = 0;
      writes = 0;
      subsets = 0;
      cov = Hashtbl.create 64;
    }
  in
  Array.iter
    (fun (i, v) ->
      rt.dvals.(i) <- v;
      rt.dset.(i) <- true)
    p.p_dyn_init;
  try
    List.iter
      (fun (name, values) ->
        match Hashtbl.find_opt p.p_buf_idx name with
        | None -> raise (F (Runtime_error ("input for undeclared container " ^ name)))
        | Some i ->
            let b = rt.bufs.(i) in
            let n = Value.num_elements b in
            if Array.length values <> n then
              raise
                (F
                   (Runtime_error
                      (Printf.sprintf "input %s has %d elements, expected %d" name
                         (Array.length values) n)));
            Array.blit values 0 b.Value.data 0 n)
      inputs;
    exec_program p rt;
    let mem : Value.t = Hashtbl.create 16 in
    Array.iter (fun (b : Value.buffer) -> Hashtbl.replace mem b.Value.name b) rt.bufs;
    let coverage = Hashtbl.fold (fun k () acc -> k :: acc) rt.cov [] |> List.sort compare in
    Ok { memory = mem; coverage; steps = rt.steps; writes = rt.writes; subsets = rt.subsets }
  with
  | F fault -> Error fault
  | Invalid_argument msg -> Error (Runtime_error msg)
  | Stack_overflow -> Error (Hang { steps = rt.steps })

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type plan = t

  type t = {
    capacity : int;
    tbl : (string * (string * int) list, (plan, fault) result) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(capacity = 64) () =
    { capacity = max 1 capacity; tbl = Hashtbl.create 16; hits = 0; misses = 0 }

  (* Digest of the graph's canonical serialization. Callers holding a graph
     fixed across many compiles (the difftest trial loop) should compute
     this once and pass it to [compile] rather than re-serializing. *)
  let digest_of g = Digest.to_hex (Digest.string (Serialize.to_string g))

  let compile ?digest c g ~symbols =
    let d = match digest with Some d -> d | None -> digest_of g in
    let key = (d, List.sort compare symbols) in
    match Hashtbl.find_opt c.tbl key with
    | Some r ->
        c.hits <- c.hits + 1;
        r
    | None ->
        c.misses <- c.misses + 1;
        let r = compile g ~symbols in
        if Hashtbl.length c.tbl >= c.capacity then Hashtbl.reset c.tbl;
        Hashtbl.add c.tbl key r;
        r

  let stats c = (c.hits, c.misses)
end
