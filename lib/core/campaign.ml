type instance_result = {
  program : string;
  xform_name : string;
  site : Transforms.Xform.site;
  report : Difftest.report option;
  static : Analysis.Report.finding list;
  verdict : Analysis.Equiv.verdict option;
}

type row = {
  xform_name : string;
  instances : int;
  passed : int;
  proved : int;
  failed : int;
  static_flagged : int;
  classes : (Difftest.failure_class * int) list;
  avg_first_trial : float;
}

type t = {
  rows : row list;
  results : instance_result list;
  total_instances : int;
  total_failed : int;
  total_proved : int;
}

let take n l =
  let rec go i = function [] -> [] | x :: r -> if i >= n then [] else x :: go (i + 1) r in
  go 0 l

let trials_spent t =
  List.fold_left
    (fun acc r -> match r.report with Some rep -> acc + rep.Difftest.trials_run | None -> acc)
    0 t.results

let run ?(config = Difftest.default_config) ?(limit_per = None) ?(static_gate = false)
    ?(certify_gate = false) programs xforms =
  let results = ref [] in
  List.iter
    (fun (x : Transforms.Xform.t) ->
      List.iter
        (fun (pname, g) ->
          let sites = x.find g in
          let sites = match limit_per with Some n -> take n sites | None -> sites in
          List.iter
            (fun site ->
              (* translation validation first: a proved-equivalent instance
                 skips all its fuzz trials (report = None) *)
              let verdict =
                if certify_gate then
                  Analysis.Equiv.certify ~symbols:config.Difftest.concretization g x site
                else None
              in
              let report =
                match verdict with
                | Some (Analysis.Equiv.Equivalent _) -> None
                | _ -> Some (Difftest.test_instance ~config g x site)
              in
              (* second evidence channel: what the static oracle would have
                 said about this instance, independent of the fuzz verdict *)
              let static =
                if static_gate then
                  match
                    Analysis.Delta.verify ~symbols:config.Difftest.concretization g x site
                  with
                  | Some fs -> fs
                  | None -> []
                else []
              in
              results :=
                { program = pname; xform_name = x.name; site; report; static; verdict }
                :: !results)
            sites)
        programs)
    xforms;
  let results = List.rev !results in
  let is_proved r =
    match r.verdict with Some (Analysis.Equiv.Equivalent _) -> true | _ -> false
  in
  let rows =
    List.map
      (fun (x : Transforms.Xform.t) ->
        let mine = List.filter (fun (r : instance_result) -> r.xform_name = x.name) results in
        let failing =
          List.filter_map
            (fun r ->
              match r.report with
              | Some { Difftest.verdict = Difftest.Fail f; _ } -> Some f
              | _ -> None)
            mine
        in
        let count klass = List.length (List.filter (fun f -> f.Difftest.klass = klass) failing) in
        let classes =
          List.filter
            (fun (_, n) -> n > 0)
            [
              (Difftest.Semantics, count Difftest.Semantics);
              (Difftest.Input_dependent, count Difftest.Input_dependent);
              (Difftest.Invalid_code, count Difftest.Invalid_code);
            ]
        in
        let real_failures =
          List.filter (fun (f : Difftest.failing) -> f.first_trial > 0) failing
        in
        let avg_first_trial =
          match real_failures with
          | [] -> 0.
          | fs ->
              List.fold_left (fun a (f : Difftest.failing) -> a +. float_of_int f.first_trial) 0. fs
              /. float_of_int (List.length fs)
        in
        let proved = List.length (List.filter is_proved mine) in
        {
          xform_name = x.name;
          instances = List.length mine;
          passed = List.length mine - List.length failing - proved;
          proved;
          failed = List.length failing;
          static_flagged = List.length (List.filter (fun r -> r.static <> []) mine);
          classes;
          avg_first_trial;
        })
      xforms
  in
  {
    rows;
    results;
    total_instances = List.length results;
    total_failed =
      List.length
        (List.filter
           (fun r ->
             match r.report with
             | Some { Difftest.verdict = Difftest.Fail _; _ } -> true
             | _ -> false)
           results);
    total_proved = List.length (List.filter is_proved results);
  }

let class_marker = function
  | Difftest.Semantics -> "X"
  | Difftest.Input_dependent -> "/!\\"
  | Difftest.Invalid_code -> "->"

let to_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-42s %10s %8s %8s %8s %7s  %s\n" "Transformation" "Instances" "Passed"
       "Proved" "Failed" "Static" "Failure classes");
  Buffer.add_string buf (String.make 105 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      let classes =
        if r.classes = [] then "-"
        else
          String.concat ", "
            (List.map (fun (c, n) -> Printf.sprintf "%s x%d" (class_marker c) n) r.classes)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-42s %10d %8d %8d %8d %7d  %s\n" r.xform_name r.instances r.passed
           r.proved r.failed r.static_flagged classes))
    t.rows;
  Buffer.add_string buf (String.make 105 '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "total: %d instances tested, %d failing, %d proved equivalent\n"
       t.total_instances t.total_failed t.total_proved);
  Buffer.contents buf
