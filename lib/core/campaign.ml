type exec_status =
  | Completed
  | Timed_out of { deadline_s : float }
  | Crashed of { detail : string }

let status_name = function
  | Completed -> "completed"
  | Timed_out _ -> "timeout"
  | Crashed _ -> "crash"

type instance_result = {
  program : string;
  xform_name : string;
  site : Transforms.Xform.site;
  report : Difftest.report option;
  static : Analysis.Report.finding list;
  dep_stats : Analysis.Races.stats;
  verdict : Analysis.Equiv.verdict option;
}

type outcome_verdict =
  | O_passed
  | O_proved
  | O_failed of { klass : Difftest.failure_class; first_trial : int; failing_trials : int }
  | O_killed

type outcome = {
  o_program : string;
  o_xform : string;
  o_site : Transforms.Xform.site;
  o_status : exec_status;
  o_verdict : outcome_verdict;
  o_trials_run : int;
  o_static_flagged : bool;
  o_dep_pairs : int;
  o_dep_decided : int;
  o_dep_sampled : int;
  o_elapsed_s : float;
  o_seed : int;
}

type row = {
  xform_name : string;
  instances : int;
  passed : int;
  proved : int;
  failed : int;
  killed : int;
  static_flagged : int;
  classes : (Difftest.failure_class * int) list;
  avg_first_trial : float;
}

type t = {
  rows : row list;
  results : instance_result list;
  outcomes : outcome list;
  total_instances : int;
  total_failed : int;
  total_proved : int;
  total_killed : int;
}

let take n l =
  let rec go i = function [] -> [] | x :: r -> if i >= n then [] else x :: go (i + 1) r in
  go 0 l

(* ---------------- deterministic per-instance identity ---------------- *)

let instance_id ~program ~xform site =
  program ^ "::" ^ xform ^ "::" ^ Transforms.Xform.site_slug site

(* FNV-1a over the instance id mixed with the campaign seed: scheduling-order
   independent, so a parallel run and a serial run fuzz every instance with
   the same trial sequence. *)
let instance_seed ~global id =
  let h = ref 0x811c9dc5 in
  let mix c =
    h := !h lxor Char.code c;
    h := !h * 0x01000193 land 0x3FFFFFFF
  in
  String.iter mix (string_of_int global);
  mix ':';
  String.iter mix id;
  (* keep clear of 0: some PRNGs degenerate on a zero seed *)
  1 + (!h land 0x3FFFFFFF)

(* ---------------- per-instance execution ---------------- *)

let run_instance ?plan_cache ?kernel_cache ?(config = Difftest.default_config)
    ?(static_gate = false) ?(certify_gate = false) ~program:(pname, g) (x : Transforms.Xform.t)
    site =
  (* translation validation first: a proved-equivalent instance skips all its
     fuzz trials (report = None) *)
  let verdict =
    if certify_gate then Analysis.Equiv.certify ~symbols:config.Difftest.concretization g x site
    else None
  in
  let report =
    match verdict with
    | Some (Analysis.Equiv.Equivalent _) -> None
    | _ -> Some (Difftest.test_instance ?plan_cache ?kernel_cache ~config g x site)
  in
  (* second evidence channel: what the static oracle would have said about
     this instance, independent of the fuzz verdict — the change-set audit
     (declaration honesty) alongside the delta oracle (introduced defects) *)
  let static, dep_stats =
    if static_gate then
      let audit = Option.value ~default:[] (Analysis.Audit.check_xform g x site) in
      let delta, stats =
        match Analysis.Delta.verify_stats ~symbols:config.Difftest.concretization g x site with
        | Some (fs, st) -> (fs, st)
        | None -> ([], Analysis.Races.stats_zero)
      in
      (Analysis.Report.sort (audit @ delta), stats)
    else ([], Analysis.Races.stats_zero)
  in
  { program = pname; xform_name = x.name; site; report; static; dep_stats; verdict }

let outcome_of_result ?(status = Completed) ?(seed = 0) ?(elapsed_s = 0.) (r : instance_result) =
  let verdict =
    match (r.verdict, r.report) with
    | Some (Analysis.Equiv.Equivalent _), _ -> O_proved
    | _, Some { Difftest.verdict = Difftest.Fail f; _ } ->
        O_failed { klass = f.klass; first_trial = f.first_trial; failing_trials = f.failing_trials }
    | _, Some { Difftest.verdict = Difftest.Pass; _ } -> O_passed
    | _, None -> O_passed
  in
  let trials, elapsed =
    match r.report with
    | Some rep -> (rep.Difftest.trials_run, rep.Difftest.elapsed_s)
    | None -> (0, elapsed_s)
  in
  {
    o_program = r.program;
    o_xform = r.xform_name;
    o_site = r.site;
    o_status = status;
    o_verdict = verdict;
    o_trials_run = trials;
    o_static_flagged = r.static <> [];
    o_dep_pairs = r.dep_stats.Analysis.Races.pairs;
    o_dep_decided = r.dep_stats.Analysis.Races.exact_disjoint + r.dep_stats.Analysis.Races.exact_overlap;
    o_dep_sampled = r.dep_stats.Analysis.Races.sampled;
    o_elapsed_s = elapsed;
    o_seed = seed;
  }

(* ---------------- aggregation ---------------- *)

let is_killed o = match o.o_status with Completed -> false | _ -> true

let assemble ?(results = []) (xforms : Transforms.Xform.t list) outcomes =
  let rows =
    List.map
      (fun (x : Transforms.Xform.t) ->
        let mine = List.filter (fun o -> o.o_xform = x.name) outcomes in
        let failing =
          List.filter_map
            (fun o ->
              match o.o_verdict with
              | O_failed { klass; first_trial; _ } -> Some (klass, first_trial)
              | _ -> None)
            mine
        in
        let count klass = List.length (List.filter (fun (k, _) -> k = klass) failing) in
        let classes =
          List.filter
            (fun (_, n) -> n > 0)
            [
              (Difftest.Semantics, count Difftest.Semantics);
              (Difftest.Input_dependent, count Difftest.Input_dependent);
              (Difftest.Invalid_code, count Difftest.Invalid_code);
            ]
        in
        let real_failures = List.filter (fun (_, ft) -> ft > 0) failing in
        let avg_first_trial =
          match real_failures with
          | [] -> 0.
          | fs ->
              List.fold_left (fun a (_, ft) -> a +. float_of_int ft) 0. fs
              /. float_of_int (List.length fs)
        in
        let proved =
          List.length (List.filter (fun o -> o.o_verdict = O_proved) mine)
        in
        let killed = List.length (List.filter is_killed mine) in
        {
          xform_name = x.name;
          instances = List.length mine;
          passed = List.length mine - List.length failing - proved - killed;
          proved;
          failed = List.length failing;
          killed;
          static_flagged = List.length (List.filter (fun o -> o.o_static_flagged) mine);
          classes;
          avg_first_trial;
        })
      xforms
  in
  let failed =
    List.length
      (List.filter (fun o -> match o.o_verdict with O_failed _ -> true | _ -> false) outcomes)
  in
  let killed = List.length (List.filter is_killed outcomes) in
  {
    rows;
    results;
    outcomes;
    total_instances = List.length outcomes;
    (* a killed instance is a campaign failure too: the transformation (or the
       harness under it) hung or crashed instead of producing a verdict *)
    total_failed = failed + killed;
    total_proved = List.length (List.filter (fun o -> o.o_verdict = O_proved) outcomes);
    total_killed = killed;
  }

let trials_spent t = List.fold_left (fun acc o -> acc + o.o_trials_run) 0 t.outcomes

let run ?(config = Difftest.default_config) ?(limit_per = None) ?(static_gate = false)
    ?(certify_gate = false) programs xforms =
  let results = ref [] in
  (* one plan cache for the whole serial campaign: many instances of the same
     transformation share cutouts (and always share symbol valuations drawn
     from the same constraint ranges), so compiled plans are reused across
     instances, not just across trials *)
  let plan_cache = Interp.Plan.Cache.create ~capacity:256 () in
  List.iter
    (fun (x : Transforms.Xform.t) ->
      List.iter
        (fun (pname, g) ->
          let sites = x.find g in
          let sites = match limit_per with Some n -> take n sites | None -> sites in
          List.iter
            (fun site ->
              let id = instance_id ~program:pname ~xform:x.name site in
              let config =
                { config with Difftest.seed = instance_seed ~global:config.Difftest.seed id }
              in
              let r =
                run_instance ~plan_cache ~config ~static_gate ~certify_gate ~program:(pname, g) x
                  site
              in
              results := (r, config.Difftest.seed) :: !results)
            sites)
        programs)
    xforms;
  let results = List.rev !results in
  let outcomes = List.map (fun (r, seed) -> outcome_of_result ~seed r) results in
  assemble ~results:(List.map fst results) xforms outcomes

let class_marker = function
  | Difftest.Semantics -> "X"
  | Difftest.Input_dependent -> "/!\\"
  | Difftest.Invalid_code -> "->"

let to_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-42s %10s %8s %8s %8s %7s %7s  %s\n" "Transformation" "Instances" "Passed"
       "Proved" "Failed" "Killed" "Static" "Failure classes");
  Buffer.add_string buf (String.make 113 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      let classes =
        if r.classes = [] then "-"
        else
          String.concat ", "
            (List.map (fun (c, n) -> Printf.sprintf "%s x%d" (class_marker c) n) r.classes)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-42s %10d %8d %8d %8d %7d %7d  %s\n" r.xform_name r.instances r.passed
           r.proved r.failed r.killed r.static_flagged classes))
    t.rows;
  Buffer.add_string buf (String.make 113 '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf
       "total: %d instances tested, %d failing (%d hung/crashed), %d proved equivalent\n"
       t.total_instances t.total_failed t.total_killed t.total_proved);
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 t.outcomes in
  let pairs = sum (fun o -> o.o_dep_pairs) in
  if pairs > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "static evidence: %d access pairs, %d decided exactly, %d sampled\n"
         pairs
         (sum (fun o -> o.o_dep_decided))
         (sum (fun o -> o.o_dep_sampled)));
  Buffer.contents buf
