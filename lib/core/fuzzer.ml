type mode = Uniform | Graybox | Coverage

let mode_to_string = function
  | Uniform -> "uniform"
  | Graybox -> "gray-box"
  | Coverage -> "coverage-guided"

type config = {
  max_trials : int;
  seed : int;
  threshold : float;
  step_limit : int;
  corpus_init : int;
  batch : int;
}

let default_config =
  {
    max_trials = 200;
    seed = 7;
    threshold = 1e-5;
    step_limit = 5_000_000;
    corpus_init = 4;
    batch = 1;
  }

type result = {
  trials_to_failure : int option;
  trials_run : int;
  distinct_coverage : int;
  uninteresting_crashes : int;
  failure : Difftest.failure_kind option;
  failing_symbols : (string * int) list;
}

module ISet = Set.Make (Int)

let run ?plan_cache ?kernel_cache ?(config = default_config) mode ~original ~(cutout : Cutout.t)
    ~transformed =
  let constraints =
    match mode with
    | Uniform -> Constraints.uniform cutout
    | Graybox | Coverage -> Constraints.derive ~original cutout
  in
  let icfg collect =
    {
      Interp.Exec.default_config with
      step_limit = config.step_limit;
      collect_coverage = collect;
    }
  in
  (* compile-once: both programs are digested here and compiled at most once
     per symbol valuation; coverage collection is an execution-time flag, so
     the collecting and non-collecting runs share plans *)
  let cache = match plan_cache with Some c -> c | None -> Interp.Plan.Cache.create () in
  let dig_o = Interp.Plan.Cache.digest_of cutout.program in
  let dig_x = Interp.Plan.Cache.digest_of transformed in
  let exec ~config ~digest prog ~symbols ~inputs =
    match Interp.Plan.Cache.compile ~digest cache prog ~symbols with
    | Error f -> Error f
    | Ok p -> Interp.Plan.execute ~config p ~inputs
  in
  let rng = Sampler.create config.seed in
  let coverage = ref ISet.empty in
  let corpus = ref [] in
  let trials = ref 0 in
  let crashes = ref 0 in
  let outcome = ref None in
  let one_trial (symbols, inputs) =
    incr trials;
    let collect = mode = Coverage in
    let o1 = exec ~config:(icfg collect) ~digest:dig_o cutout.program ~symbols ~inputs in
    let o2 = exec ~config:(icfg false) ~digest:dig_x transformed ~symbols ~inputs in
    let newcov =
      match o1 with
      | Ok o ->
          let pts = ISet.of_list o.coverage in
          let grew = not (ISet.subset pts !coverage) in
          coverage := ISet.union pts !coverage;
          grew
      | Error _ -> false
    in
    (match (o1, o2) with
    | Error _, Error _ -> incr crashes (* both failed: uninteresting *)
    | _ -> ());
    (match
       Difftest.compare_outcomes ~threshold:config.threshold ~system_state:cutout.system_state o1
         o2
     with
    | Some kind -> outcome := Some (!trials, kind, symbols)
    | None -> ());
    newcov
  in
  let sample () =
    let r = Sampler.split rng in
    let symbols = Sampler.sample_symbols r constraints in
    let inputs = Sampler.sample_inputs r constraints cutout ~symbols in
    (symbols, inputs)
  in
  (* Batched trial processing for the stateless modes: a sweep's descriptors
     are presampled in serial RNG order, executed on the kernel tier (lanes
     grouped by symbol valuation), then examined one by one with exactly the
     serial loop's bookkeeping — so counters, the failing trial number and
     the failing symbols are byte-identical at every batch width. RNG draws
     past the failing trial are simply discarded, as the serial loop never
     observes them either. *)
  let run_batched () =
    let kcache =
      match kernel_cache with Some c -> c | None -> Interp.Kernel.Cache.create ()
    in
    let kdig_o = Interp.Kernel.Cache.digest_of cutout.program in
    let kdig_x = Interp.Kernel.Cache.digest_of transformed in
    let exec_batch ~config:icfg ~digest prog ~symbols inputs =
      match Interp.Kernel.Cache.compile ~digest kcache prog ~symbols with
      | Error f -> Array.map (fun _ -> Error f) inputs
      | Ok k -> Interp.Kernel.execute_batch ~config:icfg k ~inputs
    in
    while !outcome = None && !trials < config.max_trials do
      let w = min config.batch (config.max_trials - !trials) in
      let entries = Array.init w (fun _ -> sample ()) in
      let outs_o = Array.make w (Error (Interp.Exec.Invalid_graph "lane not executed")) in
      let outs_x = Array.make w (Error (Interp.Exec.Invalid_graph "lane not executed")) in
      (* group sweep lanes by symbol valuation: kernels compile per valuation *)
      let groups : ((string * int) list, int list ref) Hashtbl.t = Hashtbl.create 4 in
      let order = ref [] in
      Array.iteri
        (fun i (symbols, _) ->
          let key = List.sort compare symbols in
          match Hashtbl.find_opt groups key with
          | Some l -> l := i :: !l
          | None ->
              Hashtbl.add groups key (ref [ i ]);
              order := key :: !order)
        entries;
      List.iter
        (fun key ->
          let lanes = Array.of_list (List.rev !(Hashtbl.find groups key)) in
          let symbols, _ = entries.(lanes.(0)) in
          let inputs = Array.map (fun i -> snd entries.(i)) lanes in
          let o = exec_batch ~config:(icfg false) ~digest:kdig_o cutout.program ~symbols inputs in
          let x = exec_batch ~config:(icfg false) ~digest:kdig_x transformed ~symbols inputs in
          Array.iteri
            (fun j i ->
              outs_o.(i) <- o.(j);
              outs_x.(i) <- x.(j))
            lanes)
        (List.rev !order);
      let j = ref 0 in
      while !outcome = None && !j < w do
        let symbols, _ = entries.(!j) in
        let o1 = outs_o.(!j) and o2 = outs_x.(!j) in
        incr trials;
        (match o1 with
        | Ok o -> coverage := ISet.union (ISet.of_list o.Interp.Exec.coverage) !coverage
        | Error _ -> ());
        (match (o1, o2) with
        | Error _, Error _ -> incr crashes
        | _ -> ());
        (match
           Difftest.compare_outcomes ~threshold:config.threshold
             ~system_state:cutout.system_state o1 o2
         with
        | Some kind -> outcome := Some (!trials, kind, symbols)
        | None -> ());
        incr j
      done
    done
  in
  (match mode with
  | Uniform | Graybox ->
      if config.batch > 1 then run_batched ()
      else
        while !outcome = None && !trials < config.max_trials do
          ignore (one_trial (sample ()))
        done
  | Coverage ->
      (* seed the corpus *)
      let i = ref 0 in
      while !outcome = None && !trials < config.max_trials && !i < config.corpus_init do
        incr i;
        let entry = sample () in
        ignore (one_trial entry);
        corpus := entry :: !corpus
      done;
      while !outcome = None && !trials < config.max_trials do
        let n = List.length !corpus in
        let pick = List.nth !corpus (Sampler.int_in rng 0 (n - 1)) in
        let entry = Sampler.mutate rng constraints cutout pick in
        let grew = one_trial entry in
        if grew then corpus := entry :: !corpus
      done);
  match !outcome with
  | Some (t, kind, symbols) ->
      {
        trials_to_failure = Some t;
        trials_run = !trials;
        distinct_coverage = ISet.cardinal !coverage;
        uninteresting_crashes = !crashes;
        failure = Some kind;
        failing_symbols = symbols;
      }
  | None ->
      {
        trials_to_failure = None;
        trials_run = !trials;
        distinct_coverage = ISet.cardinal !coverage;
        uninteresting_crashes = !crashes;
        failure = None;
        failing_symbols = [];
      }
