(** Campaign runner: test every instance of a set of transformations on a set
    of programs — the NPBench experiment of Sec. 6.3 (Table 2) and the
    CLOUDSC campaigns of Sec. 6.4. *)

type instance_result = {
  program : string;
  report : Difftest.report;
  static : Analysis.Report.finding list;
      (** the static oracle's delta findings for this instance ([] when the
          gate is off or the instance analyzes clean) *)
}

(** Aggregate over all instances of one transformation. *)
type row = {
  xform_name : string;
  instances : int;
  passed : int;
  failed : int;
  static_flagged : int;  (** instances the static oracle flagged *)
  classes : (Difftest.failure_class * int) list;  (** failure counts by class *)
  avg_first_trial : float;  (** mean first failing trial over failing instances *)
}

type t = {
  rows : row list;
  results : instance_result list;
  total_instances : int;
  total_failed : int;
}

(** [run programs xforms] finds and tests every application site. [limit_per]
    caps the instances tested per (program, transformation) pair to bound
    campaign time; [None] tests everything. [static_gate] additionally runs
    the static oracle on every instance as an independent evidence channel —
    instances are still fuzzed either way, so the table shows how the two
    verdicts corroborate. *)
val run :
  ?config:Difftest.config ->
  ?limit_per:int option ->
  ?static_gate:bool ->
  (string * Sdfg.Graph.t) list ->
  Transforms.Xform.t list ->
  t

(** Render the Table 2-style summary: transformation, #instances, failure
    class markers (✗ semantics, ⚠ input dependent, → invalid code). *)
val to_table : t -> string
