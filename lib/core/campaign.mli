(** Campaign runner: test every instance of a set of transformations on a set
    of programs — the NPBench experiment of Sec. 6.3 (Table 2) and the
    CLOUDSC campaigns of Sec. 6.4.

    [run] is the serial in-process path. The parallel, fault-tolerant path
    lives in the [engine] library ([Engine.Worker.run_campaign]), which
    executes the same per-instance body ({!run_instance}) in forked workers
    and assembles its outcomes back into a {!t} via {!assemble}; [run] is its
    [-j 1] degenerate case and produces identical verdicts because both
    derive per-instance seeds with {!instance_seed}. *)

(** How the harness around one instance terminated. [Completed] means the
    instance produced a verdict; the other two are engine outcomes — a worker
    exceeded its wall-clock deadline and was killed, or died before reporting
    (crash, unhandled exception). *)
type exec_status =
  | Completed
  | Timed_out of { deadline_s : float }
  | Crashed of { detail : string }

val status_name : exec_status -> string

type instance_result = {
  program : string;
  xform_name : string;
  site : Transforms.Xform.site;
  report : Difftest.report option;
      (** [None] when the translation validator proved the instance
          equivalent — its fuzz trials were skipped entirely *)
  static : Analysis.Report.finding list;
      (** the static oracle's delta findings for this instance ([] when the
          gate is off or the instance analyzes clean) *)
  dep_stats : Analysis.Races.stats;
      (** exact-dependence-tier coverage of the static oracle's race check,
          summed over the pre- and post-transformation runs ({!Analysis.Delta.verify_stats});
          {!Analysis.Races.stats_zero} when the gate is off *)
  verdict : Analysis.Equiv.verdict option;
      (** the translation validator's verdict ([None] with the gate off or
          when the site went stale before certification) *)
}

(** The journal-able summary of one instance: everything aggregation and
    resume need, without the cutout graph a full {!instance_result} carries. *)
type outcome_verdict =
  | O_passed
  | O_proved
  | O_failed of { klass : Difftest.failure_class; first_trial : int; failing_trials : int }
  | O_killed  (** no verdict: the worker was killed or crashed *)

type outcome = {
  o_program : string;
  o_xform : string;
  o_site : Transforms.Xform.site;
  o_status : exec_status;
  o_verdict : outcome_verdict;
  o_trials_run : int;
  o_static_flagged : bool;
  o_dep_pairs : int;  (** intra-scope access pairs the static race check examined *)
  o_dep_decided : int;  (** pairs decided by the exact dependence tier *)
  o_dep_sampled : int;  (** pairs that fell back to sampled valuation search *)
  o_elapsed_s : float;
  o_seed : int;  (** the per-instance seed the trials ran under *)
}

(** Aggregate over all instances of one transformation. *)
type row = {
  xform_name : string;
  instances : int;
  passed : int;  (** fuzz-tested and passed (excludes [proved] and [killed]) *)
  proved : int;  (** proved equivalent, no trials spent *)
  failed : int;
  killed : int;  (** hung past the deadline or crashed the worker *)
  static_flagged : int;  (** instances the static oracle flagged *)
  classes : (Difftest.failure_class * int) list;  (** failure counts by class *)
  avg_first_trial : float;  (** mean first failing trial over failing instances *)
}

type t = {
  rows : row list;
  results : instance_result list;
      (** full per-instance results; under an engine resume only the freshly
          executed instances appear here (journaled ones have outcomes only) *)
  outcomes : outcome list;  (** one per instance, in queue order *)
  total_instances : int;
  total_failed : int;  (** failing verdicts plus killed instances *)
  total_proved : int;
  total_killed : int;
}

(** [instance_id ~program ~xform site] is the stable identity of one
    (program, transformation, site) instance — the journal key. *)
val instance_id : program:string -> xform:string -> Transforms.Xform.site -> string

(** Per-instance fuzzing seed derived from the campaign seed and the instance
    id (FNV-1a): deterministic and independent of scheduling order, so [-j N]
    and [-j 1] runs produce bit-identical verdicts. *)
val instance_seed : global:int -> string -> int

(** The per-instance campaign body: translation validation (optional), then
    differential testing, then the static oracle evidence channel. Both the
    serial [run] loop and the engine's forked workers execute exactly this.
    [plan_cache] / [kernel_cache] share compiled execution plans and batched
    kernels across instances; verdicts are cache-oblivious (both caches key
    by program digest and symbol valuation), so serial and parallel runs
    stay byte-identical. *)
val run_instance :
  ?plan_cache:Interp.Plan.Cache.t ->
  ?kernel_cache:Interp.Kernel.Cache.t ->
  ?config:Difftest.config ->
  ?static_gate:bool ->
  ?certify_gate:bool ->
  program:string * Sdfg.Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  instance_result

(** Summarize a completed in-process result ([status] defaults to
    [Completed]). [elapsed_s] is only used when there is no report to take it
    from (proved instances). *)
val outcome_of_result :
  ?status:exec_status -> ?seed:int -> ?elapsed_s:float -> instance_result -> outcome

(** Build the campaign summary from per-instance outcomes (engine or serial).
    Rows are produced for [xforms] in order; [results] carries whatever full
    results are available. *)
val assemble : ?results:instance_result list -> Transforms.Xform.t list -> outcome list -> t

(** Total fuzz trials actually executed across the campaign (proved-equivalent
    instances contribute zero) — the denominator of the trials-saved metric. *)
val trials_spent : t -> int

(** [run programs xforms] finds and tests every application site. [limit_per]
    caps the instances tested per (program, transformation) pair to bound
    campaign time; [None] tests everything. [static_gate] additionally runs
    the static oracle on every instance as an independent evidence channel —
    instances are still fuzzed either way, so the table shows how the two
    verdicts corroborate. [certify_gate] runs the translation validator first
    and skips the fuzz trials of instances it proves equivalent. *)
val run :
  ?config:Difftest.config ->
  ?limit_per:int option ->
  ?static_gate:bool ->
  ?certify_gate:bool ->
  (string * Sdfg.Graph.t) list ->
  Transforms.Xform.t list ->
  t

(** Render the Table 2-style summary: transformation, #instances, failure
    class markers (✗ semantics, ⚠ input dependent, → invalid code), and the
    hang/crash column sourced from engine outcomes. *)
val to_table : t -> string
