(** Campaign runner: test every instance of a set of transformations on a set
    of programs — the NPBench experiment of Sec. 6.3 (Table 2) and the
    CLOUDSC campaigns of Sec. 6.4. *)

type instance_result = {
  program : string;
  xform_name : string;
  site : Transforms.Xform.site;
  report : Difftest.report option;
      (** [None] when the translation validator proved the instance
          equivalent — its fuzz trials were skipped entirely *)
  static : Analysis.Report.finding list;
      (** the static oracle's delta findings for this instance ([] when the
          gate is off or the instance analyzes clean) *)
  verdict : Analysis.Equiv.verdict option;
      (** the translation validator's verdict ([None] with the gate off or
          when the site went stale before certification) *)
}

(** Aggregate over all instances of one transformation. *)
type row = {
  xform_name : string;
  instances : int;
  passed : int;  (** fuzz-tested and passed (excludes [proved]) *)
  proved : int;  (** proved equivalent, no trials spent *)
  failed : int;
  static_flagged : int;  (** instances the static oracle flagged *)
  classes : (Difftest.failure_class * int) list;  (** failure counts by class *)
  avg_first_trial : float;  (** mean first failing trial over failing instances *)
}

type t = {
  rows : row list;
  results : instance_result list;
  total_instances : int;
  total_failed : int;
  total_proved : int;
}

(** Total fuzz trials actually executed across the campaign (proved-equivalent
    instances contribute zero) — the denominator of the trials-saved metric. *)
val trials_spent : t -> int

(** [run programs xforms] finds and tests every application site. [limit_per]
    caps the instances tested per (program, transformation) pair to bound
    campaign time; [None] tests everything. [static_gate] additionally runs
    the static oracle on every instance as an independent evidence channel —
    instances are still fuzzed either way, so the table shows how the two
    verdicts corroborate. [certify_gate] runs the translation validator first
    and skips the fuzz trials of instances it proves equivalent. *)
val run :
  ?config:Difftest.config ->
  ?limit_per:int option ->
  ?static_gate:bool ->
  ?certify_gate:bool ->
  (string * Sdfg.Graph.t) list ->
  Transforms.Xform.t list ->
  t

(** Render the Table 2-style summary: transformation, #instances, failure
    class markers (✗ semantics, ⚠ input dependent, → invalid code). *)
val to_table : t -> string
