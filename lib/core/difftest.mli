(** Differential testing of transformations (Sec. 5).

    A transformation instance is tested by extracting its cutout c, applying
    T to a copy to get c' = T(c), then running both over sampled input
    configurations and comparing the system state. A trial fails when the two
    runs diverge: numerically beyond the threshold, or by fault behaviour
    (one crashes, hangs, or goes out of bounds while the other does not). *)

type failure_kind =
  | Numerical of { container : string; flat_index : int; original : float; transformed : float }
  | Fault_divergence of {
      original : Interp.Exec.fault option;
      transformed : Interp.Exec.fault option;
    }
  | Invalid_transformed of string
      (** T could not be applied to the cutout, or produced an invalid graph *)

val pp_failure : Format.formatter -> failure_kind -> unit

(** How an instance failed over the whole trial budget — the three failure
    classes of Table 2. *)
type failure_class =
  | Semantics  (** every trial diverged *)
  | Input_dependent  (** some trials passed, some diverged *)
  | Invalid_code

val class_to_string : failure_class -> string

type failing = {
  klass : failure_class;
  first_trial : int;  (** 1-based trial number of the first divergence *)
  failing_trials : int;
  kind : failure_kind;
  symbols : (string * int) list;  (** the fault-inducing configuration *)
}

type verdict = Pass | Fail of failing

type config = {
  trials : int;
  seed : int;
  threshold : float;  (** numerical tolerance t_Δ; 0 means bitwise *)
  max_size : int;  (** Size_max for size symbols *)
  step_limit : int;
  use_min_cut : bool;
  black_box : bool;
      (** recover Δ_T by structural diff ({!Sdfg.Diff.compute}) instead of
          trusting the transformation's self-reported change set (Sec. 3,
          step 2) *)
  shrink : bool;
      (** shrink cutout containers to their accessed sub-regions (Sec. 3) *)
  concretization : (string * int) list;
      (** symbol values used to concretize overlap checks and min-cut
          capacities *)
  custom_constraints : (string * (int * int)) list;
  inject_transformed : Interp.Exec.injection option;
      (** faultlab: deterministic fault injected into the transformed run
          only, so the self-validation campaign can attribute any divergence
          to the seeded fault *)
  batch : int;
      (** trial-loop batch width. 1 (the default) runs the serial plan path;
          [> 1] presamples trials in the same RNG order, groups them by
          symbol valuation and executes up to [batch] trials per sweep on
          the batched kernel tier ({!Interp.Kernel}). Verdicts are
          byte-identical at every width. *)
}

val default_config : config

type report = {
  xform_name : string;
  site : Transforms.Xform.site;
  verdict : verdict;
  cutout : Cutout.t;
  min_cut_stats : Min_cut.stats option;
  shrink_stats : Cutout.shrink_stats option;
  trials_run : int;
  elapsed_s : float;
}

val pp_report : Format.formatter -> report -> unit

(** Test one transformation instance through the full FuzzyFlow pipeline:
    apply-to-copy for the change set, cutout extraction, optional input
    minimization, constraint derivation, differential fuzzing. The trial
    loop compiles each program once per sampled symbol valuation — to an
    execution plan at [config.batch <= 1], to a batched kernel otherwise;
    pass [plan_cache] / [kernel_cache] to reuse compiled artifacts across
    instances (e.g. the same cutout re-tested under many seeds). *)
val test_instance :
  ?plan_cache:Interp.Plan.Cache.t ->
  ?kernel_cache:Interp.Kernel.Cache.t ->
  ?config:config ->
  Sdfg.Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  report

(** Baseline: run the whole program against its transformed version (no
    cutout) — what the paper's 528× speedup is measured against. Returns the
    verdict and elapsed seconds. *)
val test_whole_program :
  ?plan_cache:Interp.Plan.Cache.t ->
  ?kernel_cache:Interp.Kernel.Cache.t ->
  ?config:config ->
  Sdfg.Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  verdict * float

(** Compare two runs' system state; exposed for the fuzzer. *)
val compare_outcomes :
  threshold:float ->
  system_state:string list ->
  (Interp.Exec.outcome, Interp.Exec.fault) result ->
  (Interp.Exec.outcome, Interp.Exec.fault) result ->
  failure_kind option
