type t = {
  name : string;
  cutout : Cutout.t;
  symbols : (string * int) list;
  inputs : (string * float array) list;
  failure : Difftest.failure_kind;
}

let site_slug = Transforms.Xform.site_slug

(* Reconstruct the fault-inducing inputs: re-run the deterministic sampling
   sequence up to the failing trial. *)
let of_report ?(config = Difftest.default_config) ~original (report : Difftest.report) =
  match report.verdict with
  | Difftest.Pass -> None
  | Difftest.Fail f when f.first_trial <= 0 ->
      Some
        {
          name = report.xform_name ^ "." ^ site_slug report.site;
          cutout = report.cutout;
          symbols = [];
          inputs = [];
          failure = f.kind;
        }
  | Difftest.Fail f ->
      let constraints =
        Constraints.derive ~max_size:config.max_size ~custom:config.custom_constraints ~original
          report.cutout
      in
      let rng = Sampler.create config.seed in
      let result = ref None in
      for trial = 1 to f.first_trial do
        let r = Sampler.split rng in
        let symbols = Sampler.sample_symbols r constraints in
        let inputs = Sampler.sample_inputs r constraints report.cutout ~symbols in
        if trial = f.first_trial then result := Some (symbols, inputs)
      done;
      Option.map
        (fun (symbols, inputs) ->
          {
            name = report.xform_name ^ "." ^ site_slug report.site;
            cutout = report.cutout;
            symbols;
            inputs;
            failure = f.kind;
          })
        !result

let render tc =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== FuzzyFlow test case: %s ===\n" tc.name);
  Buffer.add_string buf (Format.asprintf "%a@." Cutout.pp tc.cutout);
  Buffer.add_string buf (Format.asprintf "failure: %a@." Difftest.pp_failure tc.failure);
  Buffer.add_string buf "symbols:\n";
  List.iter (fun (s, v) -> Buffer.add_string buf (Printf.sprintf "  %s = %d\n" s v)) tc.symbols;
  Buffer.add_string buf "inputs:\n";
  List.iter
    (fun (c, arr) ->
      let n = Array.length arr in
      let preview = Array.to_list (Array.sub arr 0 (min 8 n)) in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d elements [%s%s]\n" c n
           (String.concat ", " (List.map (Printf.sprintf "%g") preview))
           (if n > 8 then ", ..." else "")))
    tc.inputs;
  Buffer.contents buf

(* ------------- machine-readable bundle (.case.dat) ------------- *)

(* One key per line; strings that may contain whitespace (fault contexts,
   error messages) are escaped so every record stays line-oriented. Floats
   are stored as IEEE-754 bit patterns for a bit-exact round trip. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | ' ' -> Buffer.add_string buf "\\s"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | 's' -> Buffer.add_char buf ' '
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let float_bits f = Printf.sprintf "%Lx" (Int64.bits_of_float f)
let bits_float s = Int64.float_of_bits (Int64.of_string ("0x" ^ s))
let ints l = String.concat "," (List.map string_of_int l)

let of_ints s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char ',' s)

let fault_words = function
  | None -> [ "none" ]
  | Some (Interp.Exec.Out_of_bounds { container; index; shape; context }) ->
      [
        "oob";
        container;
        ints (Array.to_list index);
        ints (Array.to_list shape);
        escape context;
      ]
  | Some (Interp.Exec.Hang { steps }) -> [ "hang"; string_of_int steps ]
  | Some (Interp.Exec.Invalid_graph msg) -> [ "invalidg"; escape msg ]
  | Some (Interp.Exec.Runtime_error msg) -> [ "runtime"; escape msg ]

let fault_of_words = function
  | [ "none" ] -> None
  | [ "oob"; container; index; shape; context ] ->
      Some
        (Interp.Exec.Out_of_bounds
           {
             container;
             index = Array.of_list (of_ints index);
             shape = Array.of_list (of_ints shape);
             context = unescape context;
           })
  | [ "hang"; steps ] -> Some (Interp.Exec.Hang { steps = int_of_string steps })
  | [ "invalidg"; msg ] -> Some (Interp.Exec.Invalid_graph (unescape msg))
  | [ "runtime"; msg ] -> Some (Interp.Exec.Runtime_error (unescape msg))
  | ws -> failwith ("testcase: bad fault encoding: " ^ String.concat " " ws)

let failure_line = function
  | Difftest.Numerical { container; flat_index; original; transformed } ->
      Printf.sprintf "numerical %s %d %s %s" container flat_index (float_bits original)
        (float_bits transformed)
  | Difftest.Fault_divergence { original; transformed } ->
      Printf.sprintf "fault %s | %s"
        (String.concat " " (fault_words original))
        (String.concat " " (fault_words transformed))
  | Difftest.Invalid_transformed msg -> Printf.sprintf "invalid %s" (escape msg)

let failure_of_line line =
  match String.split_on_char ' ' line with
  | "numerical" :: container :: flat_index :: original :: [ transformed ] ->
      Difftest.Numerical
        {
          container;
          flat_index = int_of_string flat_index;
          original = bits_float original;
          transformed = bits_float transformed;
        }
  | "fault" :: rest ->
      let rec split_bar acc = function
        | "|" :: r -> (List.rev acc, r)
        | w :: r -> split_bar (w :: acc) r
        | [] -> failwith "testcase: fault encoding missing separator"
      in
      let l, r = split_bar [] rest in
      Difftest.Fault_divergence { original = fault_of_words l; transformed = fault_of_words r }
  | "invalid" :: rest -> Difftest.Invalid_transformed (unescape (String.concat " " rest))
  | _ -> failwith ("testcase: bad failure line: " ^ line)

let to_dat tc =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "fuzzyflow-case 1";
  line "name %s" tc.name;
  (match tc.cutout.kind with
  | Cutout.Dataflow { state; nodes } -> line "kind dataflow %d %s" state (ints nodes)
  | Cutout.Multistate { states } -> line "kind multistate %s" (ints states));
  line "inputcfg %s" (String.concat " " tc.cutout.input_config);
  line "sysstate %s" (String.concat " " tc.cutout.system_state);
  line "freesyms %s" (String.concat " " tc.cutout.free_symbols);
  List.iter (fun (s, v) -> line "symbol %s %d" s v) tc.symbols;
  List.iter
    (fun (c, arr) ->
      line "input %s %d" c (Array.length arr);
      line "%s" (String.concat " " (List.map float_bits (Array.to_list arr))))
    tc.inputs;
  line "failure %s" (failure_line tc.failure);
  Buffer.contents buf

let of_dat ~program content =
  let lines =
    String.split_on_char '\n' content |> List.filter (fun l -> String.trim l <> "")
  in
  let rest s prefix = String.sub s (String.length prefix) (String.length s - String.length prefix) in
  let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "") in
  match lines with
  | magic :: lines when String.length magic >= 15 && String.sub magic 0 15 = "fuzzyflow-case " ->
      let name = ref "" in
      let kind = ref None in
      let input_config = ref [] in
      let system_state = ref [] in
      let free_symbols = ref [] in
      let symbols = ref [] in
      let inputs = ref [] in
      let failure = ref None in
      let rec go = function
        | [] -> ()
        | l :: ls when String.length l >= 5 && String.sub l 0 5 = "name " ->
            name := rest l "name ";
            go ls
        | l :: ls when String.length l >= 5 && String.sub l 0 5 = "kind " ->
            (match words (rest l "kind ") with
            | "dataflow" :: state :: nodes ->
                kind :=
                  Some
                    (Cutout.Dataflow
                       {
                         state = int_of_string state;
                         nodes = of_ints (String.concat "" nodes);
                       })
            | [ "multistate"; states ] -> kind := Some (Cutout.Multistate { states = of_ints states })
            | [ "multistate" ] -> kind := Some (Cutout.Multistate { states = [] })
            | _ -> failwith ("testcase: bad kind line: " ^ l));
            go ls
        | l :: ls when String.length l >= 9 && String.sub l 0 9 = "inputcfg " ->
            input_config := words (rest l "inputcfg ");
            go ls
        | l :: ls when l = "inputcfg" -> input_config := []; go ls
        | l :: ls when String.length l >= 9 && String.sub l 0 9 = "sysstate " ->
            system_state := words (rest l "sysstate ");
            go ls
        | l :: ls when l = "sysstate" -> system_state := []; go ls
        | l :: ls when String.length l >= 9 && String.sub l 0 9 = "freesyms " ->
            free_symbols := words (rest l "freesyms ");
            go ls
        | l :: ls when l = "freesyms" -> free_symbols := []; go ls
        | l :: ls when String.length l >= 7 && String.sub l 0 7 = "symbol " -> (
            match words (rest l "symbol ") with
            | [ s; v ] ->
                symbols := (s, int_of_string v) :: !symbols;
                go ls
            | _ -> failwith ("testcase: bad symbol line: " ^ l))
        | l :: ls when String.length l >= 6 && String.sub l 0 6 = "input " -> (
            match (words (rest l "input "), ls) with
            | [ c; n ], data :: ls ->
                let n = int_of_string n in
                let vals = words data in
                if List.length vals <> n then
                  failwith (Printf.sprintf "testcase: input %s: expected %d values" c n);
                inputs := (c, Array.of_list (List.map bits_float vals)) :: !inputs;
                go ls
            | _ -> failwith ("testcase: bad input line: " ^ l))
        | l :: ls when String.length l >= 8 && String.sub l 0 8 = "failure " ->
            failure := Some (failure_of_line (rest l "failure "));
            go ls
        | l :: _ -> failwith ("testcase: unknown line: " ^ l)
      in
      go lines;
      let kind = match !kind with Some k -> k | None -> failwith "testcase: missing kind" in
      let failure =
        match !failure with Some f -> f | None -> failwith "testcase: missing failure"
      in
      {
        name = !name;
        cutout =
          {
            Cutout.program;
            kind;
            input_config = !input_config;
            system_state = !system_state;
            free_symbols = !free_symbols;
          };
        symbols = List.rev !symbols;
        inputs = List.rev !inputs;
        failure;
      }
  | _ -> failwith "testcase: not a fuzzyflow-case file"

let save dir tc =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let safe c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
    | _ -> '_'
  in
  let base = Filename.concat dir (String.map safe tc.name) in
  let txt = base ^ ".case.txt" in
  let dat = base ^ ".case.dat" in
  let dot = base ^ ".cutout.dot" in
  let sdfg = base ^ ".cutout.sdfg" in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  write txt (render tc);
  write dat (to_dat tc);
  write dot (Sdfg.Dot.to_dot tc.cutout.program);
  write sdfg (Sdfg.Serialize.to_string tc.cutout.program);
  [ txt; dat; dot; sdfg ]

let base_of_path path =
  let suffixes = [ ".case.txt"; ".case.dat"; ".cutout.dot"; ".cutout.sdfg" ] in
  match List.find_opt (fun s -> Filename.check_suffix path s) suffixes with
  | Some s -> String.sub path 0 (String.length path - String.length s)
  | None -> path

type load_error = { path : string; reason : string }

(* A saved bundle crosses machines and survives campaigns; by the time it is
   reloaded it may be truncated, bit-rotted, or half-synced. Every parse
   failure — ours or the serializer's — lands as a typed error, never an
   exception. *)
let load path =
  let base = base_of_path path in
  match
    let program = Sdfg.Serialize.load (base ^ ".cutout.sdfg") in
    let ic = open_in (base ^ ".case.dat") in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_dat ~program content
  with
  | tc -> Ok tc
  | exception Failure reason -> Error { path; reason }
  | exception Sys_error reason -> Error { path; reason }
  | exception Sdfg.Serialize.Parse_error reason -> Error { path; reason = "cutout graph: " ^ reason }
  | exception e -> Error { path; reason = Printexc.to_string e }

let replay ?(step_limit = 5_000_000) tc =
  let config = { Interp.Exec.default_config with step_limit } in
  Interp.Exec.run ~config tc.cutout.program ~symbols:tc.symbols ~inputs:tc.inputs
