(** Divergence localization.

    The paper's conclusion sketches this as future work: once a fault-inducing
    input is known, exploit the dataflow structure of the cutout to point at
    {e where along the dataflow path} values first diverge between the cutout
    and its transformed version — not just that the final system state
    differs.

    Both programs are run to completion on the same inputs; every container
    they share is then compared, and divergences are ordered by the dataflow
    position of the container's first writer (states in control-flow order,
    nodes in topological order). The first entry is the earliest corrupted
    value a debugger should look at. *)

type divergence = {
  container : string;
  flat_index : int;  (** first differing flat element *)
  original : float;
  transformed : float;
  writer_order : int;  (** dataflow position of the container's first writer *)
  writer : string;  (** label of that writer node, when identifiable *)
}

val pp_divergence : Format.formatter -> divergence -> unit

(** [locate ~cutout ~transformed ~symbols ~inputs ()] runs both programs and
    returns every diverging shared container, earliest writer first. An empty
    list means the runs agree (or a run faulted — divergence localization
    needs two completed runs; use {!Difftest} for fault divergence). *)
val locate :
  ?threshold:float ->
  ?step_limit:int ->
  cutout:Cutout.t ->
  transformed:Sdfg.Graph.t ->
  symbols:(string * int) list ->
  inputs:(string * float array) list ->
  unit ->
  divergence list

(** Static findings for the same failing instance, replayed on its cutout —
    a second, input-independent evidence channel next to the dynamic
    divergences. Empty when the oracle proves nothing (or the site went
    stale on the cutout). *)
val static_evidence :
  ?config:Difftest.config ->
  xform:Transforms.Xform.t ->
  Difftest.report ->
  Analysis.Report.finding list

(** Pair every divergence with the static findings naming its container:
    a divergence corroborated by a static finding pinpoints both {e where}
    values differ and {e why} (race, out-of-bounds, def-use). *)
val corroborated :
  divergence list ->
  Analysis.Report.finding list ->
  (divergence * Analysis.Report.finding list) list

(** Convenience: reconstruct the fault-inducing inputs of a failing report
    (like {!Testcase.of_report}) and localize. [None] when the report passed
    or failed without a reproducible trial. *)
val of_report :
  ?config:Difftest.config ->
  original:Sdfg.Graph.t ->
  xform:Transforms.Xform.t ->
  Difftest.report ->
  divergence list option
