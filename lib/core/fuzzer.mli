(** Fuzzing strategies over a cutout pair (Sec. 5.1).

    Three modes mirror the paper's comparison in Sec. 6.1:
    - [Uniform]: sample everything uniformly at random, no analysis — the
      black-box baseline (many uninteresting crashes, slow discovery);
    - [Graybox]: sample under the derived constraints of {!Constraints};
    - [Coverage]: AFL-style loop on top of the constraints — keep a corpus,
      mutate entries, retain inputs that reach new interpreter coverage. *)

type mode = Uniform | Graybox | Coverage

val mode_to_string : mode -> string

type config = {
  max_trials : int;
  seed : int;
  threshold : float;
  step_limit : int;
  corpus_init : int;  (** initial corpus size for [Coverage] *)
  batch : int;
      (** trial batch width for [Uniform] / [Graybox]: sweeps of up to
          [batch] trials run on the batched kernel tier, with results
          byte-identical to the serial loop at every width. [Coverage]
          evolves its corpus trial by trial and always runs serially. *)
}

val default_config : config

type result = {
  trials_to_failure : int option;  (** 1-based; [None] = no divergence found *)
  trials_run : int;
  distinct_coverage : int;  (** coverage points reached on the original cutout *)
  uninteresting_crashes : int;
      (** trials where both sides faulted identically — wasted effort that
          gray-box constraints exist to avoid (Sec. 5.1) *)
  failure : Difftest.failure_kind option;
  failing_symbols : (string * int) list;
}

(** [run mode ~original ~cutout ~transformed] fuzzes until divergence or the
    trial budget is exhausted. [original] is the full program (used for
    constraint derivation); [transformed] is T(cutout.program). Both programs
    are compiled to execution plans at most once per symbol valuation; pass
    [plan_cache] / [kernel_cache] to share compiled artifacts across
    calls. *)
val run :
  ?plan_cache:Interp.Plan.Cache.t ->
  ?kernel_cache:Interp.Kernel.Cache.t ->
  ?config:config ->
  mode ->
  original:Sdfg.Graph.t ->
  cutout:Cutout.t ->
  transformed:Sdfg.Graph.t ->
  result
