open Sdfg

type failure_kind =
  | Numerical of { container : string; flat_index : int; original : float; transformed : float }
  | Fault_divergence of {
      original : Interp.Exec.fault option;
      transformed : Interp.Exec.fault option;
    }
  | Invalid_transformed of string

let pp_fault_opt fmt = function
  | None -> Format.pp_print_string fmt "ok"
  | Some f -> Interp.Exec.pp_fault fmt f

let pp_failure fmt = function
  | Numerical { container; flat_index; original; transformed } ->
      Format.fprintf fmt "system state differs in %s[%d]: %.17g vs %.17g" container flat_index
        original transformed
  | Fault_divergence { original; transformed } ->
      Format.fprintf fmt "fault divergence: original %a, transformed %a" pp_fault_opt original
        pp_fault_opt transformed
  | Invalid_transformed msg -> Format.fprintf fmt "transformation invalid on cutout: %s" msg

type failure_class = Semantics | Input_dependent | Invalid_code

let class_to_string = function
  | Semantics -> "semantic change"
  | Input_dependent -> "input dependent"
  | Invalid_code -> "invalid code"

type failing = {
  klass : failure_class;
  first_trial : int;
  failing_trials : int;
  kind : failure_kind;
  symbols : (string * int) list;
}

type verdict = Pass | Fail of failing

type config = {
  trials : int;
  seed : int;
  threshold : float;
  max_size : int;
  step_limit : int;
  use_min_cut : bool;
  black_box : bool;
  shrink : bool;
  concretization : (string * int) list;
  custom_constraints : (string * (int * int)) list;
  inject_transformed : Interp.Exec.injection option;
  batch : int;
}

let default_config =
  {
    trials = 20;
    seed = 42;
    threshold = 1e-5;
    max_size = 16;
    step_limit = 400_000;
    use_min_cut = true;
    black_box = false;
    shrink = false;
    concretization = [];
    custom_constraints = [];
    inject_transformed = None;
    batch = 1;
  }

type report = {
  xform_name : string;
  site : Transforms.Xform.site;
  verdict : verdict;
  cutout : Cutout.t;
  min_cut_stats : Min_cut.stats option;
  shrink_stats : Cutout.shrink_stats option;
  trials_run : int;
  elapsed_s : float;
}

let pp_report fmt r =
  let v =
    match r.verdict with
    | Pass -> "PASS"
    | Fail f ->
        Format.asprintf "FAIL (%s, first trial %d, %d/%d failing): %a"
          (class_to_string f.klass) f.first_trial f.failing_trials r.trials_run pp_failure f.kind
  in
  Format.fprintf fmt "%s @@ %a: %s" r.xform_name Transforms.Xform.pp_site r.site v

(* The relative-tolerance clause must be guarded to finite values: with an
   infinity on either side, |a - b| and threshold * max(|a|,|b|) are both
   +inf and the comparison degenerates to inf <= inf — silently accepting
   inf against any finite value. Found by the faultlab selfcheck's Set_inf
   injection. *)
let values_match ~threshold a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.is_finite a && Float.is_finite b && threshold > 0.
     && Float.abs (a -. b) <= threshold *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let same_fault_class (a : Interp.Exec.fault) (b : Interp.Exec.fault) =
  match (a, b) with
  | Interp.Exec.Out_of_bounds _, Interp.Exec.Out_of_bounds _
  | Interp.Exec.Hang _, Interp.Exec.Hang _
  | Interp.Exec.Invalid_graph _, Interp.Exec.Invalid_graph _
  | Interp.Exec.Runtime_error _, Interp.Exec.Runtime_error _ ->
      true
  | _ -> false

let compare_outcomes ~threshold ~system_state orig xformed =
  match (orig, xformed) with
  | Error f1, Error f2 ->
      (* both crash in the same way: an uninteresting crash (Sec. 5.1) *)
      if same_fault_class f1 f2 then None
      else Some (Fault_divergence { original = Some f1; transformed = Some f2 })
  | Error f1, Ok _ -> Some (Fault_divergence { original = Some f1; transformed = None })
  | Ok _, Error f2 -> Some (Fault_divergence { original = None; transformed = Some f2 })
  | Ok o1, Ok o2 ->
      List.find_map
        (fun container ->
          match
            (Interp.Value.buffer_opt o1.Interp.Exec.memory container,
             Interp.Value.buffer_opt o2.Interp.Exec.memory container)
          with
          | Some b1, Some b2 ->
              if Array.length b1.data <> Array.length b2.data then
                Some
                  (Numerical
                     { container; flat_index = -1; original = 0.; transformed = 0. })
              else
                let n = Array.length b1.data in
                let rec scan i =
                  if i >= n then None
                  else if values_match ~threshold b1.data.(i) b2.data.(i) then scan (i + 1)
                  else
                    Some
                      (Numerical
                         {
                           container;
                           flat_index = i;
                           original = b1.data.(i);
                           transformed = b2.data.(i);
                         })
                in
                scan 0
          | _ ->
              Some
                (Fault_divergence
                   {
                     original = None;
                     transformed = Some (Interp.Exec.Invalid_graph (container ^ " missing"));
                   }))
        system_state

(* The fuzzing loop shared by cutout-level and whole-program testing. Both
   programs are compiled at most once per sampled symbol valuation —
   injection and step limits are execution-time configuration, so the clean
   and perturbed runs share one compilation — and the caches carry compiled
   artifacts across trials (and, when the caller passes them, across
   instances).

   With [config.batch > 1] the loop runs on the kernel tier: trials are
   presampled in the exact serial RNG order, grouped by symbol valuation
   (kernels are compiled per valuation), executed in batched sweeps of at
   most [batch] lanes, and the per-trial comparisons are then folded in the
   original trial order. Each lane's outcome is bit-identical to the serial
   plan path's, so the verdict — class, first failing trial, failing count,
   fault-inducing symbols — is byte-for-byte the serial one. *)
let run_trials ?plan_cache ?kernel_cache ~config ~constraints ~(cut : Cutout.t) ~original_prog
    ~transformed_prog () =
  let icfg =
    { Interp.Exec.default_config with step_limit = config.step_limit; collect_coverage = false }
  in
  (* faultlab: injected faults perturb only the transformed run, so any
     detection is attributable to the seeded fault *)
  let icfg_x = { icfg with Interp.Exec.inject = config.inject_transformed } in
  if config.batch <= 1 then begin
    let cache = match plan_cache with Some c -> c | None -> Interp.Plan.Cache.create () in
    (* serialize each program once, not once per trial *)
    let dig_o = Interp.Plan.Cache.digest_of original_prog in
    let dig_x = Interp.Plan.Cache.digest_of transformed_prog in
    let exec ~config:icfg ~digest prog ~symbols ~inputs =
      match Interp.Plan.Cache.compile ~digest cache prog ~symbols with
      | Error f -> Error f
      | Ok p -> Interp.Plan.execute ~config:icfg p ~inputs
    in
    let rng = Sampler.create config.seed in
    let failures = ref 0 in
    let first = ref None in
    for trial = 1 to config.trials do
      let r = Sampler.split rng in
      let symbols = Sampler.sample_symbols r constraints in
      let inputs = Sampler.sample_inputs r constraints cut ~symbols in
      let o1 = exec ~config:icfg ~digest:dig_o original_prog ~symbols ~inputs in
      let o2 = exec ~config:icfg_x ~digest:dig_x transformed_prog ~symbols ~inputs in
      match compare_outcomes ~threshold:config.threshold ~system_state:cut.system_state o1 o2 with
      | None -> ()
      | Some kind ->
          incr failures;
          if !first = None then first := Some (trial, kind, symbols)
    done;
    match !first with
    | None -> Pass
    | Some (first_trial, kind, symbols) ->
        let klass = if !failures = config.trials then Semantics else Input_dependent in
        Fail { klass; first_trial; failing_trials = !failures; kind; symbols }
  end
  else begin
    let kcache =
      match kernel_cache with Some c -> c | None -> Interp.Kernel.Cache.create ()
    in
    let dig_o = Interp.Kernel.Cache.digest_of original_prog in
    let dig_x = Interp.Kernel.Cache.digest_of transformed_prog in
    (* presample every trial in the serial RNG order: the descriptors, not
       the execution schedule, carry all the randomness *)
    let rng = Sampler.create config.seed in
    let descs =
      Array.init config.trials (fun _ ->
          let r = Sampler.split rng in
          let symbols = Sampler.sample_symbols r constraints in
          let inputs = Sampler.sample_inputs r constraints cut ~symbols in
          (symbols, inputs))
    in
    (* group trial indices by symbol valuation, preserving first-seen order *)
    let groups : ((string * int) list, int list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    Array.iteri
      (fun i (symbols, _) ->
        let key = List.sort compare symbols in
        match Hashtbl.find_opt groups key with
        | Some l -> l := i :: !l
        | None ->
            Hashtbl.add groups key (ref [ i ]);
            order := key :: !order)
      descs;
    (* per-trial comparison results; the outcomes themselves are dropped
       chunk by chunk, so memory stays bounded by one batch sweep *)
    let kinds : failure_kind option array = Array.make config.trials None in
    let compile ~digest prog ~symbols = Interp.Kernel.Cache.compile ~digest kcache prog ~symbols in
    let exec ~config:icfg kres lanes inputs =
      match kres with
      | Error f -> Array.map (fun _ -> Error f) lanes
      | Ok k -> Interp.Kernel.execute_batch ~config:icfg k ~inputs
    in
    List.iter
      (fun key ->
        let idxs = Array.of_list (List.rev !(Hashtbl.find groups key)) in
        let symbols, _ = descs.(idxs.(0)) in
        let k_o = compile ~digest:dig_o original_prog ~symbols in
        let k_x = compile ~digest:dig_x transformed_prog ~symbols in
        let n = Array.length idxs in
        let chunk = ref 0 in
        while !chunk < n do
          let w = min config.batch (n - !chunk) in
          let lanes = Array.sub idxs !chunk w in
          let inputs = Array.map (fun i -> snd descs.(i)) lanes in
          let outs_o = exec ~config:icfg k_o lanes inputs in
          let outs_x = exec ~config:icfg_x k_x lanes inputs in
          Array.iteri
            (fun j i ->
              kinds.(i) <-
                compare_outcomes ~threshold:config.threshold ~system_state:cut.system_state
                  outs_o.(j) outs_x.(j))
            lanes;
          chunk := !chunk + w
        done)
      (List.rev !order);
    (* fold the per-trial results in the original trial order *)
    let failures = ref 0 in
    let first = ref None in
    Array.iteri
      (fun i kind ->
        match kind with
        | None -> ()
        | Some kind ->
            incr failures;
            if !first = None then first := Some (i + 1, kind, fst descs.(i)))
      kinds;
    match !first with
    | None -> Pass
    | Some (first_trial, kind, symbols) ->
        let klass = if !failures = config.trials then Semantics else Input_dependent in
        Fail { klass; first_trial; failing_trials = !failures; kind; symbols }
  end

let apply_to_copy g (x : Transforms.Xform.t) site =
  let g' = Graph.copy g in
  match x.apply g' site with
  | cs -> Ok (g', cs)
  | exception Transforms.Xform.Cannot_apply msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Not_found -> Error "transformation failed with Not_found"

let invalid_report ~xform_name ~site ~cut ~elapsed msg =
  {
    xform_name;
    site;
    verdict =
      Fail
        {
          klass = Invalid_code;
          first_trial = 0;
          failing_trials = 0;
          kind = Invalid_transformed msg;
          symbols = [];
        };
    cutout = cut;
    min_cut_stats = None;
    shrink_stats = None;
    trials_run = 0;
    elapsed_s = elapsed;
  }

let test_instance ?plan_cache ?kernel_cache ?(config = default_config) g (x : Transforms.Xform.t) site =
  let t0 = Unix.gettimeofday () in
  (* 1. change isolation: white-box change set from applying T to a copy *)
  match apply_to_copy g x site with
  | Error msg ->
      let dummy =
        {
          Cutout.program = Graph.create "empty";
          kind = Cutout.Dataflow { state = -1; nodes = [] };
          input_config = [];
          system_state = [];
          free_symbols = [];
        }
      in
      invalid_report ~xform_name:x.name ~site ~cut:dummy ~elapsed:(Unix.gettimeofday () -. t0) msg
  | Ok (transformed_whole, reported_cs) -> (
      (* 2. cutout extraction; optionally recover the change set black-box *)
      let cs =
        if config.black_box then Diff.compute ~original:g ~transformed:transformed_whole
        else reported_cs
      in
      let options = { Cutout.symbols = config.concretization } in
      let cut = Cutout.extract ~options g cs in
      (* 3. input minimization *)
      let cut, min_cut_stats =
        if config.use_min_cut then
          let c', stats = Min_cut.minimize g cut ~symbols:config.concretization in
          (c', Some stats)
        else (cut, None)
      in
      (* 3b. sub-region container minimization *)
      let cut, shrink_stats =
        if config.shrink then
          let c', stats = Cutout.shrink_containers cut ~symbols:config.concretization in
          (c', Some stats)
        else (cut, None)
      in
      (* 4. apply T to the cutout *)
      match apply_to_copy cut.program x site with
      | Error msg ->
          invalid_report ~xform_name:x.name ~site ~cut ~elapsed:(Unix.gettimeofday () -. t0) msg
      | Ok (transformed, _) -> (
          match Validate.check transformed with
          | e :: _ ->
              invalid_report ~xform_name:x.name ~site ~cut
                ~elapsed:(Unix.gettimeofday () -. t0)
                (Format.asprintf "%a" Validate.pp_error e)
          | [] ->
              (* 5. the transformation may introduce reads of prior contents
                 (e.g. an overwrite turned into an accumulation); extend the
                 input configuration with T(c)'s externally visible reads *)
              let original_reads = Cutout.program_reads cut.program in
              let extra_inputs =
                List.filter
                  (fun c ->
                    (not (List.mem c cut.input_config))
                    && (not (List.mem c original_reads))
                    &&
                    match Graph.container_opt transformed c with
                    | Some d -> not d.transient
                    | None -> false)
                  (Cutout.program_reads transformed)
              in
              let cut =
                { cut with Cutout.input_config = List.sort compare (cut.input_config @ extra_inputs) }
              in
              (* 6. constraints + differential fuzzing *)
              let constraints =
                Constraints.derive ~max_size:config.max_size
                  ~custom:config.custom_constraints ~original:g cut
              in
              let verdict =
                run_trials ?plan_cache ?kernel_cache ~config ~constraints ~cut ~original_prog:cut.program
                  ~transformed_prog:transformed ()
              in
              {
                xform_name = x.name;
                site;
                verdict;
                cutout = cut;
                min_cut_stats;
                shrink_stats;
                trials_run = config.trials;
                elapsed_s = Unix.gettimeofday () -. t0;
              }))

let test_whole_program ?plan_cache ?kernel_cache ?(config = default_config) g (x : Transforms.Xform.t) site =
  let t0 = Unix.gettimeofday () in
  match apply_to_copy g x site with
  | Error msg ->
      ( Fail
          {
            klass = Invalid_code;
            first_trial = 0;
            failing_trials = 0;
            kind = Invalid_transformed msg;
            symbols = [];
          },
        Unix.gettimeofday () -. t0 )
  | Ok (transformed, _) ->
      (* whole-program pseudo-cutout: inputs and system state are all
         externally visible containers *)
      let ext = Graph.external_containers g in
      let cut =
        {
          Cutout.program = g;
          kind = Cutout.Multistate { states = Graph.state_ids g };
          input_config = ext;
          system_state = ext;
          free_symbols = Graph.all_free_syms g;
        }
      in
      let constraints =
        Constraints.derive ~max_size:config.max_size ~custom:config.custom_constraints
          ~original:g cut
      in
      let verdict =
        run_trials ?plan_cache ?kernel_cache ~config ~constraints ~cut ~original_prog:g
          ~transformed_prog:transformed ()
      in
      (verdict, Unix.gettimeofday () -. t0)
