open Sdfg

type divergence = {
  container : string;
  flat_index : int;
  original : float;
  transformed : float;
  writer_order : int;
  writer : string;
}

let pp_divergence fmt d =
  Format.fprintf fmt "%s[%d]: %.10g vs %.10g (first written by %s, dataflow position %d)"
    d.container d.flat_index d.original d.transformed d.writer d.writer_order

(* Dataflow position of each container's first writer: states in BFS order,
   nodes in topological order within each state. *)
let writer_orders g =
  let orders = Hashtbl.create 16 in
  let counter = ref 0 in
  List.iter
    (fun sid ->
      let st = Graph.state g sid in
      List.iter
        (fun nid ->
          incr counter;
          List.iter
            (fun (e : State.edge) ->
              match State.node_opt st e.dst with
              | Some (Node.Access _) -> (
                  let wm = match e.dst_memlet with Some m -> Some m | None -> e.memlet in
                  match wm with
                  | Some (m : Memlet.t) ->
                      if not (Hashtbl.mem orders m.data) then
                        Hashtbl.replace orders m.data (!counter, Node.label (State.node st nid))
                  | None -> ())
              | _ -> ())
            (State.out_edges st nid))
        (State.topological st))
    (Graph.states_bfs g);
  orders

let values_match ~threshold a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || (threshold > 0.
     && Float.abs (a -. b) <= threshold *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))

let locate ?(threshold = 1e-5) ?(step_limit = 400_000) ~(cutout : Cutout.t) ~transformed ~symbols
    ~inputs () =
  let config = { Interp.Exec.default_config with step_limit } in
  match
    ( Interp.Exec.run ~config cutout.program ~symbols ~inputs,
      Interp.Exec.run ~config transformed ~symbols ~inputs )
  with
  | Ok o1, Ok o2 ->
      let orders = writer_orders cutout.program in
      let shared =
        Hashtbl.fold
          (fun name _ acc ->
            if Interp.Value.buffer_opt o2.memory name <> None then name :: acc else acc)
          o1.memory []
      in
      List.filter_map
        (fun name ->
          let b1 = Interp.Value.buffer o1.memory name in
          let b2 = Interp.Value.buffer o2.memory name in
          if Array.length b1.data <> Array.length b2.data then None
          else
            let n = Array.length b1.data in
            let rec scan i =
              if i >= n then None
              else if values_match ~threshold b1.data.(i) b2.data.(i) then scan (i + 1)
              else
                let writer_order, writer =
                  match Hashtbl.find_opt orders name with
                  | Some (o, w) -> (o, w)
                  | None -> (max_int, "(input)")
                in
                Some
                  {
                    container = name;
                    flat_index = i;
                    original = b1.data.(i);
                    transformed = b2.data.(i);
                    writer_order;
                    writer;
                  }
            in
            scan 0)
        shared
      |> List.sort (fun a b -> compare (a.writer_order, a.container) (b.writer_order, b.container))
  | _ -> []

(* What the static oracle says about the same instance, replayed on the
   cutout: site ids survive extraction, so the delta is exactly "T on c". *)
let static_evidence ?(config = Difftest.default_config) ~(xform : Transforms.Xform.t)
    (report : Difftest.report) =
  match
    Analysis.Delta.verify ~symbols:config.Difftest.concretization report.cutout.Cutout.program
      xform report.site
  with
  | Some fs -> fs
  | None | (exception _) -> []

let corroborated divs findings =
  List.map
    (fun d ->
      (d, List.filter (fun (f : Analysis.Report.finding) -> f.container = d.container) findings))
    divs

let of_report ?(config = Difftest.default_config) ~original ~(xform : Transforms.Xform.t)
    (report : Difftest.report) =
  match Testcase.of_report ~config ~original report with
  | None -> None
  | Some tc when tc.symbols = [] && tc.inputs = [] -> None
  | Some tc -> (
      let transformed = Graph.copy report.cutout.program in
      match xform.apply transformed report.site with
      | exception _ -> None
      | _ ->
          Some
            (locate ~threshold:config.threshold ~step_limit:config.step_limit
               ~cutout:report.cutout ~transformed ~symbols:tc.symbols ~inputs:tc.inputs ()))
