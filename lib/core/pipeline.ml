type decision =
  | Applied
  | Proved_equivalent of Analysis.Certificate.t
  | Rejected of Difftest.failing
  | Rejected_static of Analysis.Report.finding list
  | Stale of string

type step = {
  xform_name : string;
  site : Transforms.Xform.site;
  decision : decision;
}

type log = {
  steps : step list;
  applied : int;
  proved : int;
  rejected : int;
  stale : int;
  witness_probes : int;
  witness_confirmed : int;
}

let pp_log fmt log =
  Format.fprintf fmt "%d applied (%d proved equivalent), %d rejected, %d stale@."
    (log.applied + log.proved) log.proved log.rejected log.stale;
  if log.witness_probes > 0 then
    Format.fprintf fmt "%d dependence witnesses probed, %d reproduced dynamically@."
      log.witness_probes log.witness_confirmed;
  List.iter
    (fun s ->
      let d =
        match s.decision with
        | Applied -> "applied"
        | Proved_equivalent _ -> "applied (proved equivalent, no trials)"
        | Rejected f -> "REJECTED: " ^ Difftest.class_to_string f.Difftest.klass
        | Rejected_static fs ->
            "REJECTED (static): "
            ^ String.concat "; " (List.map Analysis.Report.to_string fs)
        | Stale msg -> "stale: " ^ msg
      in
      Format.fprintf fmt "  %s @@ %a: %s@." s.xform_name Transforms.Xform.pp_site s.site d)
    log.steps

let optimize ?(config = Difftest.default_config) ?(static_gate = false) g xforms =
  let current = Sdfg.Graph.copy g in
  let steps = ref [] in
  let applied = ref 0 and proved = ref 0 and rejected = ref 0 and stale = ref 0 in
  let witness_probes = ref 0 and witness_confirmed = ref 0 in
  List.iter
    (fun (x : Transforms.Xform.t) ->
      (* discover on the current program; apply passing instances one by one *)
      List.iter
        (fun site ->
          let record decision = steps := { xform_name = x.name; site; decision } :: !steps in
          (* static pre-gate: veto with evidence before spending any trials.
             The change-set audit runs first — a declared change set that
             under-approximates the true diff would make the cutout (and so
             every trial) test the wrong subprogram *)
          let static_verdict =
            if static_gate then
              match Analysis.Audit.check_xform current x site with
              | None -> None
              | Some (_ :: _ as audit_findings) -> Some audit_findings
              | Some [] ->
                  Analysis.Delta.verify ~symbols:config.Difftest.concretization current x
                    site
            else Some []
          in
          match static_verdict with
          | None ->
              incr stale;
              record (Stale "static gate: site no longer matches")
          | Some (_ :: _ as findings) ->
              incr rejected;
              (* a race finding decided by the exact dependence tier carries a
                 solver witness; feed it to the fuzzer as a directed seed — one
                 pinned trial corroborating the static veto dynamically (pinned
                 names the cutout does not sample are simply ignored) *)
              (match List.find_map Analysis.Races.witness_of_finding findings with
              | Some valuation -> (
                  incr witness_probes;
                  let probe =
                    {
                      config with
                      Difftest.trials = 1;
                      custom_constraints =
                        List.map (fun (s, v) -> (s, (v, v))) valuation
                        @ config.Difftest.custom_constraints;
                    }
                  in
                  match Difftest.test_instance ~config:probe current x site with
                  | { verdict = Difftest.Fail _; _ } -> incr witness_confirmed
                  | { verdict = Difftest.Pass; _ } | (exception _) -> ())
              | None -> ());
              record (Rejected_static findings)
          | Some [] -> (
              let fuzz ~config () =
                match Difftest.test_instance ~config current x site with
                | { verdict = Difftest.Pass; _ } -> (
                    match x.apply current site with
                    | _ ->
                        incr applied;
                        record Applied
                    | exception Transforms.Xform.Cannot_apply msg ->
                        incr stale;
                        record (Stale msg))
                | { verdict = Difftest.Fail f; _ } ->
                    incr rejected;
                    record (Rejected f)
                | exception Transforms.Xform.Cannot_apply msg ->
                    incr stale;
                    record (Stale msg)
              in
              (* translation validation: a proved-equivalent instance is
                 applied without spending a single trial; a refutation
                 witness seeds one cheap probe trial pinned to the witness
                 valuation before the full-budget run *)
              let verdict =
                if static_gate then
                  Analysis.Equiv.certify ~symbols:config.Difftest.concretization
                    current x site
                else None
              in
              match verdict with
              | Some (Analysis.Equiv.Equivalent cert) -> (
                  match x.apply current site with
                  | _ ->
                      incr proved;
                      record (Proved_equivalent cert)
                  | exception Transforms.Xform.Cannot_apply msg ->
                      incr stale;
                      record (Stale msg))
              | Some (Analysis.Equiv.Refuted w) -> (
                  let probe =
                    {
                      config with
                      Difftest.trials = 1;
                      custom_constraints =
                        List.map (fun (s, v) -> (s, (v, v))) w.valuation
                        @ config.Difftest.custom_constraints;
                    }
                  in
                  match Difftest.test_instance ~config:probe current x site with
                  | { verdict = Difftest.Fail f; _ } ->
                      incr rejected;
                      record (Rejected f)
                  | { verdict = Difftest.Pass; _ } -> fuzz ~config ()
                  | exception Transforms.Xform.Cannot_apply msg ->
                      incr stale;
                      record (Stale msg))
              | Some (Analysis.Equiv.Unknown _) | None -> fuzz ~config ()))
        (x.find current))
    xforms;
  ( current,
    {
      steps = List.rev !steps;
      applied = !applied;
      proved = !proved;
      rejected = !rejected;
      stale = !stale;
      witness_probes = !witness_probes;
      witness_confirmed = !witness_confirmed;
    } )
