(** Guarded optimization: the workflow of Fig. 1.

    Performance engineers apply custom transformations at scale; FuzzyFlow
    gates each instance — only instances whose cutout-level differential test
    passes are applied to the program. The result is an optimized program
    plus an audit log of what was applied, what was rejected and why.

    With [~static_gate:true] each instance first passes through the static
    dataflow oracle ({!Analysis.Delta}): if the transformation introduces a
    race, out-of-bounds access or def-use violation that the oracle can
    prove under the configured concretization, the instance is rejected
    {e before any fuzzing trial runs}, with the findings (offending
    container and overlapping subsets) in the audit log.

    Instances that survive the oracle are handed to the translation
    validator ({!Analysis.Equiv}): a proved-equivalent instance is applied
    with {e zero} fuzz trials and its certificate recorded; a refuted
    instance gets one probe trial pinned to the refutation witness before
    the full-budget run; unknowns fall through to ordinary fuzzing. *)

type decision =
  | Applied
  | Proved_equivalent of Analysis.Certificate.t
      (** proved dataflow-equivalent — applied without any fuzz trials *)
  | Rejected of Difftest.failing
  | Rejected_static of Analysis.Report.finding list
      (** vetoed by the static oracle — no trials were spent *)
  | Stale of string  (** the site no longer matched after earlier rewrites *)

type step = {
  xform_name : string;
  site : Transforms.Xform.site;
  decision : decision;
}

type log = {
  steps : step list;
  applied : int;  (** applied after fuzzing (excludes [proved]) *)
  proved : int;  (** applied on a static equivalence proof, zero trials *)
  rejected : int;  (** dynamic and static rejections combined *)
  stale : int;
  witness_probes : int;
      (** static race rejections whose exact-tier witness was replayed as a
          directed one-trial fuzz seed *)
  witness_confirmed : int;  (** witness probes that also failed dynamically *)
}

val pp_log : Format.formatter -> log -> unit

(** [optimize g xforms] returns the optimized copy of [g] (never mutated) and
    the audit log. For each transformation, sites are discovered on the
    current program and tested one by one; passing instances are applied
    immediately, so later sites see the rewritten program. The static gate
    (default off) uses [config.concretization] as its symbol assumptions. *)
val optimize :
  ?config:Difftest.config ->
  ?static_gate:bool ->
  Sdfg.Graph.t ->
  Transforms.Xform.t list ->
  Sdfg.Graph.t * log
