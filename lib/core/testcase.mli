(** Reproducible minimal test cases.

    When FuzzyFlow finds a fault-inducing transformation instance it emits a
    self-contained artifact: the cutout graph (dot), the fault-inducing
    symbol values and inputs, and the failure description — everything needed
    to debug the transformation on a workstation (Sec. 6.4). *)

type t = {
  name : string;
  cutout : Cutout.t;
  symbols : (string * int) list;
  inputs : (string * float array) list;
  failure : Difftest.failure_kind;
}

(** Build a test case from a failing report by re-deriving the fault-inducing
    inputs from the recorded trial seed. *)
val of_report :
  ?config:Difftest.config -> original:Sdfg.Graph.t -> Difftest.report -> t option

(** Human-readable reproduction bundle. *)
val render : t -> string

(** [save dir tc] writes [render], a machine-readable bundle ([.case.dat]:
    symbols, bit-exact inputs, failure, cutout metadata), the cutout's dot
    file, and the serialized cutout graph ({!Sdfg.Serialize}) under [dir];
    returns the paths written. *)
val save : string -> t -> string list

type load_error = { path : string; reason : string }

(** Inverse of [save]: reload a test case from any of the paths [save]
    returned (or their common base path). The cutout graph is read back via
    {!Sdfg.Serialize}, so node/state ids — and hence the recorded
    transformation site — stay valid. A missing, truncated or corrupt bundle
    is a typed [Error], never an exception. *)
val load : string -> (t, load_error) result

(** Replay: run the cutout under the stored configuration and return the
    outcome — used to confirm a saved case still reproduces. *)
val replay :
  ?step_limit:int -> t -> (Interp.Exec.outcome, Interp.Exec.fault) result
