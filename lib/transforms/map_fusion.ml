open Sdfg

type variant = Correct | Ignore_offsets

(* The consumer reads the transient exactly at the producer's iteration
   point: every inner memlet on [tmp] inside B's scope indexes with B's
   parameters, one per dimension, in order. *)
let reads_at_point st entry_b tmp =
  let params =
    match State.node st entry_b with
    | Node.Map_entry { params; _ } -> params
    | _ -> []
  in
  let point =
    List.map (fun p -> Symbolic.Subset.index (Symbolic.Expr.sym p)) params
  in
  List.for_all
    (fun nid ->
      List.for_all
        (fun (e : State.edge) ->
          match e.memlet with
          | Some m when m.data = tmp ->
              (* compare up to the dimensionality of tmp *)
              List.length m.subset <= List.length point
              && List.for_all2
                   (fun a b -> a = b)
                   m.subset
                   (List.filteri (fun i _ -> i < List.length m.subset) point)
          | _ -> true)
        (State.in_edges st nid))
    (State.scope_nodes st entry_b)

(* Fusion legality: no dataflow path from the producer's exit to the
   consumer's entry other than through the transient — otherwise contracting
   the two scopes creates a cycle (e.g. an intermediate statement that
   overwrites one of the consumer's other inputs). *)
let independent st ~exit_a ~entry_b ~tmp_acc =
  let seen = Hashtbl.create 16 in
  let rec go n =
    n <> entry_b
    && (Hashtbl.mem seen n
       ||
       (Hashtbl.replace seen n ();
        n = tmp_acc || List.for_all go (State.successors st n)))
  in
  List.for_all go (List.filter (fun n -> n <> tmp_acc) (State.successors st exit_a))

(* Pattern: exit_a -> access(tmp, transient) -> entry_b with matching
   params/ranges. *)
let match_sites variant g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun (nid, n) ->
          match n with
          | Node.Access tmp -> (
              match Graph.container_opt g tmp with
              | Some desc when desc.transient -> (
                  match (State.in_edges st nid, State.out_edges st nid) with
                  | [ ein ], [ eout ] -> (
                      match (State.node_opt st ein.src, State.node_opt st eout.dst) with
                      | Some (Node.Map_exit { entry = entry_a }), Some (Node.Map_entry ib) -> (
                          let entry_b = eout.dst in
                          (* a WCR (reduction) producer is never fusable:
                             the transient holds partial accumulations until
                             the whole map completes *)
                          let wcr_free =
                            List.for_all
                              (fun (e : State.edge) ->
                                match e.memlet with
                                | Some m when m.data = tmp -> m.wcr = None
                                | _ -> true)
                              (State.in_edges st ein.src)
                          in
                          match State.node st entry_a with
                          | Node.Map_entry ia
                            when ia.params = ib.params && ia.ranges = ib.ranges
                                 && ia.schedule = ib.schedule
                                 && independent st ~exit_a:ein.src ~entry_b ~tmp_acc:nid
                                 && (variant = Ignore_offsets
                                    || (wcr_free && reads_at_point st entry_b tmp))
                            ->
                              Some
                                (Xform.dataflow_site ~state:sid
                                   ~nodes:[ entry_a; nid; entry_b ]
                                   ~descr:("fuse maps over " ^ tmp))
                          | _ -> None)
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
        (State.nodes st))
    (Graph.states g)

let apply g (site : Xform.site) =
  match site.nodes with
  | [ entry_a; tmp_acc; entry_b ] -> (
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "map_fusion: state not in graph")
      in
      List.iter
        (fun n ->
          if not (State.has_node st n) then raise (Xform.Cannot_apply "map_fusion: nodes missing"))
        site.nodes;
      let exit_a =
        try State.exit_of st entry_a with Not_found -> raise (Xform.Cannot_apply "no exit A")
      in
      let exit_b =
        try State.exit_of st entry_b with Not_found -> raise (Xform.Cannot_apply "no exit B")
      in
      let tmp =
        match State.node st tmp_acc with
        | Node.Access d -> d
        | _ -> raise (Xform.Cannot_apply "map_fusion: bad tmp access")
      in
      (* scope-local access node for the transient *)
      let acc_local = State.add_node st (Node.Access tmp) in
      (* producer writes now land on the local access *)
      List.iter
        (fun (e : State.edge) ->
          match e.memlet with
          | Some m when m.data = tmp ->
              State.remove_edge st e.e_id;
              ignore (State.add_edge st ?src_conn:e.src_conn ~memlet:m e.src acc_local)
          | _ -> ())
        (State.in_edges st exit_a);
      (* the stale exit_a -> tmp_acc routing disappears *)
      List.iter
        (fun (e : State.edge) ->
          match e.memlet with
          | Some m when m.data = tmp && e.dst = tmp_acc -> State.remove_edge st e.e_id
          | _ -> ())
        (State.out_edges st exit_a);
      (* B's inner reads of tmp come from the local access; other inner
         inputs route from A's entry *)
      List.iter
        (fun (e : State.edge) ->
          State.remove_edge st e.e_id;
          match e.memlet with
          | Some m when m.data = tmp ->
              ignore (State.add_edge st ?dst_conn:e.dst_conn ~memlet:m acc_local e.dst)
          | _ ->
              ignore
                (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
                   entry_a e.dst))
        (State.out_edges st entry_b);
      (* B's outer inputs re-point to A's entry *)
      List.iter
        (fun (e : State.edge) ->
          if e.src <> tmp_acc then begin
            State.remove_edge st e.e_id;
            ignore
              (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
                 ?dst_memlet:e.dst_memlet e.src entry_a)
          end)
        (State.in_edges st entry_b);
      (* B's inner and outer outputs go through A's exit *)
      List.iter
        (fun (e : State.edge) ->
          State.remove_edge st e.e_id;
          ignore
            (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
               ?dst_memlet:e.dst_memlet e.src exit_a))
        (State.in_edges st exit_b);
      List.iter
        (fun (e : State.edge) ->
          State.remove_edge st e.e_id;
          ignore
            (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
               ?dst_memlet:e.dst_memlet exit_a e.dst))
        (State.out_edges st exit_b);
      (* the old top-level transient access and B's scope frame disappear *)
      State.remove_node st entry_b;
      State.remove_node st exit_b;
      if State.in_edges st tmp_acc = [] && State.out_edges st tmp_acc = [] then
        State.remove_node st tmp_acc;
      {
        Diff.nodes =
          List.sort_uniq compare
            (List.map
               (fun n -> (site.state, n))
               [ entry_a; exit_a; tmp_acc; entry_b; exit_b ]);
        states = [];
      })
  | _ -> raise (Xform.Cannot_apply "map_fusion: bad site")

let make variant =
  let name = match variant with Correct -> "MapFusion" | Ignore_offsets -> "MapFusion(ignore-offsets)" in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Ignore_offsets ->
        Some (Xform.Known_unsound "fuses across a producer/consumer index offset")
  in
  { Xform.name; find = match_sites variant; apply; certify_hint }
