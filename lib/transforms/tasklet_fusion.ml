open Sdfg

type variant = Correct | Ignore_system_state

(* Is [tmp] read anywhere in the program other than through [reader_edge]?
   Reads are edges whose source is an access node of tmp. Writes elsewhere do
   not block fusion; later reads do. *)
let read_elsewhere g ~tmp ~except_state ~except_edge =
  List.exists
    (fun (sid, st) ->
      List.exists
        (fun acc ->
          List.exists
            (fun (e : State.edge) -> not (sid = except_state && e.e_id = except_edge))
            (State.out_edges st acc))
        (State.access_nodes st tmp))
    (Graph.states g)

(* Fusion legality: merging t1 and t2 must not create a cycle — no dataflow
   path from t1 to t2 other than through the transient access. *)
let independent st ~t1 ~t2 ~tmp_acc =
  let seen = Hashtbl.create 16 in
  let rec go n =
    n <> t2
    && (Hashtbl.mem seen n
       ||
       (Hashtbl.replace seen n ();
        n = tmp_acc || List.for_all go (State.successors st n)))
  in
  List.for_all go (List.filter (fun n -> n <> tmp_acc) (State.successors st t1))

(* Pattern: t1 --(out c1, volume-1 memlet on transient tmp)--> access(tmp)
   --(volume-1 memlet, conn c2)--> t2, all in the same scope. *)
let match_at g st sid t1 =
  match State.node st t1 with
  | Node.Tasklet _ ->
      List.filter_map
        (fun (e1 : State.edge) ->
          match (e1.memlet, State.node_opt st e1.dst) with
          | Some m1, Some (Node.Access tmp) when m1.wcr = None -> (
              match Graph.container_opt g tmp with
              | Some desc when desc.transient -> (
                  match (State.out_edges st e1.dst, State.in_edges st e1.dst) with
                  | [ e2 ], [ _ ] -> (
                      match (e2.memlet, State.node_opt st e2.dst) with
                      | Some m2, Some (Node.Tasklet _)
                        when m2.wcr = None && e2.dst <> t1
                             && independent st ~t1 ~t2:e2.dst ~tmp_acc:e1.dst ->
                          Some (e1, e2, tmp)
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
        (State.out_edges st t1)
      |> List.map (fun ((e1 : State.edge), (e2 : State.edge), tmp) ->
             Xform.dataflow_site ~state:sid
               ~nodes:[ t1; e1.dst; e2.dst ]
               ~descr:(Printf.sprintf "fuse tasklets %d+%d over %s" t1 e2.dst tmp))
  | _ -> []

let find variant g =
  List.concat_map
    (fun (sid, st) ->
      List.concat_map (fun (nid, _) -> match_at g st sid nid) (State.nodes st)
      |> List.filter (fun (s : Xform.site) ->
             match (variant, s.nodes) with
             | Ignore_system_state, _ -> true
             | Correct, [ _; acc; _ ] -> (
                 (* refuse when tmp is read anywhere else *)
                 match State.node st acc with
                 | Node.Access tmp ->
                     let reader = List.hd (State.out_edges st acc) in
                     not (read_elsewhere g ~tmp ~except_state:sid ~except_edge:reader.e_id)
                 | _ -> false)
             | _ -> false))
    (Graph.states g)

let apply g (site : Xform.site) =
  match site.nodes with
  | [ t1; acc; t2 ] -> (
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "tasklet_fusion: state not in graph")
      in
      if not (State.has_node st t1 && State.has_node st acc && State.has_node st t2) then
        raise (Xform.Cannot_apply "tasklet_fusion: nodes not in graph");
      match (State.node st t1, State.node st t2) with
      | Node.Tasklet p1, Node.Tasklet p2 ->
          let e1 =
            match List.find_opt (fun (e : State.edge) -> e.dst = acc) (State.out_edges st t1) with
            | Some e -> e
            | None -> raise (Xform.Cannot_apply "tasklet_fusion: producer edge gone")
          in
          let e2 =
            match List.find_opt (fun (e : State.edge) -> e.src = acc) (State.in_edges st t2) with
            | Some e -> e
            | None -> raise (Xform.Cannot_apply "tasklet_fusion: consumer edge gone")
          in
          (* t2's other neighbours get their edges rerouted onto t1 below —
             they are part of the change set *)
          let neighbours =
            List.filter_map
              (fun (e : State.edge) -> if e.src <> acc then Some e.src else None)
              (State.in_edges st t2)
            @ List.map (fun (e : State.edge) -> e.dst) (State.out_edges st t2)
          in
          let out_conn = match e1.src_conn with Some c -> c | None -> raise (Xform.Cannot_apply "no src conn") in
          let in_conn = match e2.dst_conn with Some c -> c | None -> raise (Xform.Cannot_apply "no dst conn") in
          (* rename the consumer's connectors that collide with producer
             names, in both its code and its edges *)
          let p1_names = Tcode.outputs p1.code @ Tcode.refs p1.code in
          let rename_needed c = List.mem c p1_names in
          let fresh c = "__f2_" ^ c in
          let consumer_in_conns =
            List.filter_map
              (fun (e : State.edge) -> if e.src <> acc then e.dst_conn else None)
              (State.in_edges st t2)
          in
          let consumer_outs = Tcode.outputs p2.code in
          let p2_code =
            List.fold_left
              (fun code c ->
                if rename_needed c then Tcode.rename_ref ~from:c ~into:(fresh c) code else code)
              p2.code consumer_in_conns
          in
          let p2_code =
            List.fold_left
              (fun code o ->
                if rename_needed o then Tcode.rename_output ~from:o ~into:(fresh o) code else code)
              p2_code consumer_outs
          in
          let fix_conn c = match c with Some c when rename_needed c -> Some (fresh c) | c -> c in
          let code = Tcode.inline ~producer:p1.code ~out:out_conn ~consumer:p2_code ~conn:in_conn in
          State.replace_node st t1 (Node.Tasklet { label = p1.label ^ "+" ^ p2.label; code });
          (* move t2's remaining inputs and all outputs onto t1 *)
          List.iter
            (fun (e : State.edge) ->
              if e.src <> acc then
                ignore
                  (State.add_edge st ?src_conn:e.src_conn ?dst_conn:(fix_conn e.dst_conn)
                     ?memlet:e.memlet ?dst_memlet:e.dst_memlet e.src t1))
            (State.in_edges st t2);
          List.iter
            (fun (e : State.edge) ->
              ignore
                (State.add_edge st ?src_conn:(fix_conn e.src_conn) ?dst_conn:e.dst_conn
                   ?memlet:e.memlet ?dst_memlet:e.dst_memlet t1 e.dst))
            (State.out_edges st t2);
          State.remove_node st t2;
          State.remove_node st acc;
          {
            Diff.nodes =
              List.sort_uniq compare
                (List.map (fun n -> (site.state, n)) (t1 :: acc :: t2 :: neighbours));
            states = [];
          }
      | _ -> raise (Xform.Cannot_apply "tasklet_fusion: not tasklets"))
  | _ -> raise (Xform.Cannot_apply "tasklet_fusion: bad site")

let make variant =
  let name =
    match variant with
    | Correct -> "TaskletFusion"
    | Ignore_system_state -> "TaskletFusion(drop-live-write)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Ignore_system_state ->
        Some (Xform.Known_unsound "drops the intermediate write even when it is observed elsewhere")
  in
  { Xform.name; find = find variant; apply; certify_hint }
