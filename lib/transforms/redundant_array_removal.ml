open Sdfg

(* [B] is redundant when it is transient, written exactly once by a
   whole-container copy from [A], the shapes match, and [A] is never written
   anywhere in the program. *)
let writes_anywhere g cont =
  List.exists
    (fun (_, st) ->
      List.exists
        (fun acc -> State.in_edges st acc <> [])
        (State.access_nodes st cont))
    (Graph.states g)

let full_copy g (e : State.edge) =
  match (e.memlet, e.dst_memlet) with
  | Some m, Some dm ->
      let full c (m : Memlet.t) =
        match Graph.container_opt g c with
        | Some desc -> m.subset = Symbolic.Subset.full desc.shape
        | None -> false
      in
      if full m.data m && full dm.data dm then Some (m.data, dm.data) else None
  | _ -> None

let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun (nid, n) ->
          match n with
          | Node.Access b -> (
              match Graph.container_opt g b with
              | Some bdesc when bdesc.transient -> (
                  match State.in_edges st nid with
                  | [ e ] -> (
                      match (full_copy g e, State.node_opt st e.src) with
                      | Some (a, _), Some (Node.Access a') when a = a' -> (
                          let adesc = Graph.container g a in
                          let same_shape =
                            List.length adesc.shape = List.length bdesc.shape
                            && List.for_all2 Symbolic.Expr.equal adesc.shape bdesc.shape
                          in
                          let b_written_once =
                            List.for_all
                              (fun (sid', st') ->
                                List.for_all
                                  (fun acc ->
                                    (sid' = sid && acc = nid) || State.in_edges st' acc = [])
                                  (State.access_nodes st' b))
                              (Graph.states g)
                          in
                          if same_shape && b_written_once && not (writes_anywhere g a) then
                            Some
                              (Xform.dataflow_site ~state:sid ~nodes:[ e.src; nid ]
                                 ~descr:(Printf.sprintf "remove redundant copy %s of %s" b a))
                          else None)
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
        (State.nodes st))
    (Graph.states g)

let apply g (site : Xform.site) =
  match site.nodes with
  | [ src_acc; b_acc ] -> (
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "redundant_array_removal: state not in graph")
      in
      if not (State.has_node st b_acc) then
        raise (Xform.Cannot_apply "redundant_array_removal: node not in graph");
      match (State.node st src_acc, State.node st b_acc) with
      | Node.Access a, Node.Access b ->
          (* every node whose edges reference B is modified by the rename and
             belongs to the change set (Sec. 3 step 2) *)
          let touched =
            List.concat_map
              (fun (sid', st') ->
                List.concat_map
                  (fun (e : State.edge) ->
                    let refs_b = function
                      | Some (m : Memlet.t) -> m.data = b
                      | None -> false
                    in
                    if refs_b e.memlet || refs_b e.dst_memlet then
                      [ (sid', e.src); (sid', e.dst) ]
                    else [])
                  (State.edges st'))
              (Graph.states g)
            |> List.sort_uniq compare
          in
          (* rewire all reads of B to A, in every state *)
          List.iter
            (fun (_, st') -> Xform.rename_container_in_state st' ~from:b ~into:a)
            (Graph.states g);
          (* the copy edge is now a self-copy A->A; drop it and the stale node *)
          List.iter
            (fun (e : State.edge) -> if e.src = src_acc && e.dst = b_acc then State.remove_edge st e.e_id)
            (State.edges st);
          if State.in_edges st b_acc = [] && State.out_edges st b_acc = [] then
            State.remove_node st b_acc;
          Graph.remove_container g b;
          {
            Diff.nodes =
              List.sort_uniq compare (((site.state, src_acc) :: (site.state, b_acc) :: touched));
            states = [];
          }
      | _ -> raise (Xform.Cannot_apply "redundant_array_removal: not access nodes"))
  | _ -> raise (Xform.Cannot_apply "redundant_array_removal: bad site")

let make () =
  { Xform.name = "RedundantArrayRemoval"; find; apply; certify_hint = Some Xform.Preserves_sets }
