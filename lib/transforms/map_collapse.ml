open Sdfg

(* Perfectly nested: every out-edge of the outer entry leads to the inner
   entry and every in-edge of the outer exit comes from the inner exit, and
   the inner ranges do not depend on the outer parameters. *)
let perfectly_nested st outer =
  match State.exit_of st outer with
  | exception Not_found -> None
  | outer_exit -> (
      let outs = State.out_edges st outer in
      let inner_candidates =
        List.filter_map
          (fun (e : State.edge) ->
            match State.node_opt st e.dst with
            | Some (Node.Map_entry _) -> Some e.dst
            | _ -> None)
          outs
        |> List.sort_uniq compare
      in
      match inner_candidates with
      | [ inner ] when List.for_all (fun (e : State.edge) -> e.dst = inner) outs -> (
          match State.exit_of st inner with
          | exception Not_found -> None
          | inner_exit ->
              if
                List.for_all
                  (fun (e : State.edge) -> e.src = inner_exit)
                  (State.in_edges st outer_exit)
              then
                match (State.node st outer, State.node st inner) with
                | Node.Map_entry oi, Node.Map_entry ii ->
                    let independent =
                      List.for_all
                        (fun (r : Symbolic.Subset.range) ->
                          List.for_all
                            (fun p -> not (List.mem p (Symbolic.Expr.free_syms r.lo
                                                       @ Symbolic.Expr.free_syms r.hi
                                                       @ Symbolic.Expr.free_syms r.step)))
                            oi.params)
                        ii.ranges
                    in
                    if independent && oi.schedule = ii.schedule then
                      Some (inner, inner_exit, outer_exit)
                    else None
                | _ -> None
              else None)
      | _ -> None)

let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun outer ->
          match perfectly_nested st outer with
          | Some _ ->
              Some (Xform.dataflow_site ~state:sid ~nodes:[ outer ] ~descr:"collapse nested maps")
          | None -> None)
        (Xform.map_entries st))
    (Graph.states g)

let apply g (site : Xform.site) =
  match site.nodes with
  | [ outer ] -> (
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "map_collapse: state not in graph")
      in
      if not (State.has_node st outer) then
        raise (Xform.Cannot_apply "map_collapse: node not in graph");
      match perfectly_nested st outer with
      | None -> raise (Xform.Cannot_apply "map_collapse: not perfectly nested")
      | Some (inner, inner_exit, outer_exit) -> (
          match (State.node st outer, State.node st inner) with
          | Node.Map_entry oi, Node.Map_entry ii ->
              State.replace_node st outer
                (Node.Map_entry
                   { oi with params = oi.params @ ii.params; ranges = oi.ranges @ ii.ranges });
              (* splice out the inner pair *)
              List.iter
                (fun (e : State.edge) ->
                  State.remove_edge st e.e_id;
                  ignore
                    (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
                       ?dst_memlet:e.dst_memlet outer e.dst))
                (State.out_edges st inner);
              List.iter
                (fun (e : State.edge) ->
                  State.remove_edge st e.e_id;
                  ignore
                    (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
                       ?dst_memlet:e.dst_memlet e.src outer_exit))
                (State.in_edges st inner_exit);
              State.remove_node st inner;
              State.remove_node st inner_exit;
              {
                Diff.nodes =
                  [ (site.state, outer); (site.state, inner); (site.state, inner_exit); (site.state, outer_exit) ];
                states = [];
              }
          | _ -> raise (Xform.Cannot_apply "map_collapse: not maps")))
  | _ -> raise (Xform.Cannot_apply "map_collapse: bad site")

let make () =
  { Xform.name = "MapCollapse"; find; apply; certify_hint = Some Xform.Preserves_sets }
