open Sdfg

type variant = Correct | Missing_dependencies

(* Fusable: s1 -> s2 is s1's only outgoing and s2's only incoming interstate
   edge, unconditional and without assignments. *)
let find g =
  List.filter_map
    (fun (e : Graph.istate_edge) ->
      if
        e.cond = Symbolic.Cond.True && e.assigns = []
        && List.length (Graph.out_istate_edges g e.src) = 1
        && List.length (Graph.in_istate_edges g e.dst) = 1
        && e.src <> e.dst
      then
        Some
          (Xform.controlflow_site ~states:[ e.src; e.dst ]
             ~descr:(Printf.sprintf "fuse states %d+%d" e.src e.dst))
      else None)
    (Graph.istate_edges g)

(* Containers written in a state, with the access nodes receiving them. *)
let written_accesses st =
  List.concat_map
    (fun (e : State.edge) ->
      match State.node_opt st e.dst with
      | Some (Node.Access d) when e.memlet <> None || e.dst_memlet <> None -> [ (d, e.dst) ]
      | _ -> [])
    (State.edges st)
  |> List.sort_uniq compare

let apply variant g (site : Xform.site) =
  match site.states with
  | [ s1; s2 ] -> (
      match (Graph.state_opt g s1, Graph.state_opt g s2) with
      | Some st1, Some st2 ->
          let edge =
            List.find_opt
              (fun (e : Graph.istate_edge) -> e.src = s1 && e.dst = s2)
              (Graph.istate_edges g)
          in
          if edge = None then raise (Xform.Cannot_apply "state_fusion: edge gone");
          let writers1 = written_accesses st1 in
          (* consumers in s1 reading each container (for write-after-read) *)
          let readers1 =
            List.concat_map
              (fun (e : State.edge) ->
                match (State.node_opt st1 e.src, e.memlet) with
                | Some (Node.Access d), Some _ -> [ (d, e.dst) ]
                | _ -> [])
              (State.edges st1)
            |> List.sort_uniq compare
          in
          let mapping = Xform.copy_state_into ~src:st2 ~dst:st1 in
          (* order: copied accesses run after s1's writers (RAW/WAW) and
             after s1's readers (WAR) of the same container *)
          if variant = Correct then
            List.iter
              (fun (old_id, new_id) ->
                match State.node st1 new_id with
                | Node.Access d ->
                    ignore old_id;
                    List.iter
                      (fun (d', w) -> if d' = d && w <> new_id then ignore (State.add_edge st1 w new_id))
                      writers1;
                    List.iter
                      (fun (d', r) -> if d' = d && r <> new_id then ignore (State.add_edge st1 r new_id))
                      readers1
                | _ -> ())
              mapping;
          (* s2's outgoing interstate edges leave from s1 now; the rerouting
             also changes the incoming control flow of their target states *)
          let succs = ref [] in
          List.iter
            (fun (e : Graph.istate_edge) ->
              if e.src = s2 then begin
                succs := e.dst :: !succs;
                Graph.remove_istate_edge g e.ie_id;
                ignore (Graph.add_istate_edge g ~cond:e.cond ~assigns:e.assigns s1 e.dst)
              end)
            (Graph.istate_edges g);
          Graph.remove_state g s2;
          { Diff.nodes = []; states = List.sort_uniq compare (s1 :: s2 :: !succs) }
      | _ -> raise (Xform.Cannot_apply "state_fusion: states missing"))
  | _ -> raise (Xform.Cannot_apply "state_fusion: bad site")

let make variant =
  let name =
    match variant with
    | Correct -> "StateFusion"
    | Missing_dependencies -> "StateFusion(missing-deps)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Missing_dependencies ->
        Some (Xform.Known_unsound "fuses states without sequencing their shared-container accesses")
  in
  { Xform.name; find; apply = apply variant; certify_hint }
