(** The transformation framework.

    A transformation is a named pair of [find] (enumerate application sites on
    a graph) and [apply] (mutate the graph at one site). [apply] returns the
    *white-box change set* of Sec. 3 step 2 — the Δ_T node/state set expressed
    over the pre-transformation ids — which seeds cutout extraction. Node and
    state ids are stable, so a site found on a program remains valid on an
    extracted cutout that preserves ids; applying the transformation to the
    cutout is therefore exactly "testing T on c" (Sec. 5).

    Transformations come in a correct and (where the paper found one) a buggy
    variant; the buggy variants reproduce the failures of Table 2 and
    Sec. 6.4. *)

type site = {
  state : int;  (** state of a dataflow site; [-1] for control-flow sites *)
  nodes : int list;  (** primary matched nodes in [state] *)
  states : int list;  (** matched states for control-flow sites *)
  descr : string;
}

val dataflow_site : state:int -> nodes:int list -> descr:string -> site
val controlflow_site : states:int list -> descr:string -> site
val pp_site : Format.formatter -> site -> unit

(** Stable, filesystem-safe identifier of a site: the matched state/node ids
    (not [descr]). Used for test-case file names, per-instance seed
    derivation and journal keys. *)
val site_slug : site -> string

exception Cannot_apply of string
(** Raised by [apply] when a site no longer matches (e.g. the cutout did not
    capture an element the transformation touches — itself a finding, see
    Sec. 3 step 2). *)

(** A transformation's own claim about its dataflow footprint, consumed by the
    translation-validation certifier ({!Analysis.Equiv} in the analysis
    library). The hint is advisory — the certifier re-proves preservation from
    the IR and never trusts [Preserves_sets] alone — but [Known_unsound]
    (the deliberately buggy variants) vetoes certification outright. *)
type certify_hint =
  | Preserves_sets
      (** intended to keep every container's propagated read/write set and
          their ordering intact *)
  | Known_unsound of string  (** deliberately buggy variant; the payload names the bug *)

type t = {
  name : string;
  find : Sdfg.Graph.t -> site list;
  apply : Sdfg.Graph.t -> site -> Sdfg.Diff.change_set;
  certify_hint : certify_hint option;
}

(** {1 Helpers shared by concrete transformations} *)

(** Substitute a symbol throughout one state: memlet subsets, map ranges and
    tasklet code (as a numeric constant). *)
val subst_symbol_in_state : Sdfg.State.t -> string -> Symbolic.Expr.t -> unit

(** Rename a container in all memlets and access nodes of a state. *)
val rename_container_in_state : Sdfg.State.t -> from:string -> into:string -> unit

(** Copy all nodes and edges of [src] into [dst] (fresh ids in [dst]);
    returns the node-id mapping. *)
val copy_state_into : src:Sdfg.State.t -> dst:Sdfg.State.t -> (int * int) list

(** A container name not yet declared in the graph, derived from [base]. *)
val fresh_container : Sdfg.Graph.t -> string -> string

(** All map-entry node ids of a state, sorted. *)
val map_entries : Sdfg.State.t -> int list

(** The detected canonical for-loop patterns of a graph
    (built by {!Builder.Build.for_loop}). *)
type loop = {
  guard : int;
  body : int;
  after : int;
  var : string;
  init : Symbolic.Expr.t;  (** from the entry edge assignment *)
  cond : Symbolic.Cond.t;  (** guard -> body condition *)
  update : Symbolic.Expr.t;  (** back-edge assignment *)
  entry_edge : int;  (** interstate edge carrying the init assignment *)
  enter_edge : int;  (** guard -> body edge *)
  back_edge : int;  (** body -> guard edge *)
  exit_edge : int;  (** guard -> after edge *)
}

val find_loops : Sdfg.Graph.t -> loop list
