open Sdfg

type variant = Correct | Negative_step_sign_error

(* A loop is unrollable when init is constant, the update is var +/- a
   constant step, and the guard compares the variable against a constant
   bound, yielding a constant trip count. *)
type parms = { lo : int; step : int; trips : int }

let analyze (l : Xform.loop) =
  match Symbolic.Expr.is_constant l.init with
  | None -> None
  | Some lo -> (
      let step =
        match Symbolic.Expr.simplify l.update with
        | Symbolic.Expr.Add (Symbolic.Expr.Sym v, Symbolic.Expr.Int s) when v = l.var -> Some s
        | Symbolic.Expr.Add (Symbolic.Expr.Int s, Symbolic.Expr.Sym v) when v = l.var -> Some s
        | Symbolic.Expr.Sub (Symbolic.Expr.Sym v, Symbolic.Expr.Int s) when v = l.var -> Some (-s)
        | _ -> None
      in
      match step with
      | None | Some 0 -> None
      | Some step -> (
          (* count satisfied guard iterations directly *)
          let holds i =
            try Symbolic.Cond.eval (Symbolic.Expr.Env.singleton l.var i) l.cond
            with Symbolic.Expr.Unbound_symbol _ -> false
          in
          let rec count i n =
            if n > 1024 || not (holds i) then n else count (i + step) (n + 1)
          in
          let trips = count lo 0 in
          match trips with 0 -> None | t when t > 1024 -> None | t -> Some { lo; step; trips = t }))

let find max_trip g =
  List.filter_map
    (fun l ->
      match analyze l with
      | Some p when p.trips <= max_trip ->
          Some
            (Xform.controlflow_site
               ~states:[ l.guard; l.body ]
               ~descr:(Printf.sprintf "unroll %s (%d trips)" l.var p.trips))
      | _ -> None)
    (Xform.find_loops g)

let apply variant g (site : Xform.site) =
  match site.states with
  | [ guard; body ] -> (
      let loop =
        List.find_opt (fun (l : Xform.loop) -> l.guard = guard && l.body = body) (Xform.find_loops g)
      in
      match loop with
      | None -> raise (Xform.Cannot_apply "loop_unrolling: loop pattern not found")
      | Some l -> (
          match analyze l with
          | None -> raise (Xform.Cannot_apply "loop_unrolling: not constant-trip")
          | Some p ->
              let copies =
                match variant with
                | Correct -> p.trips
                | Negative_step_sign_error ->
                    if p.step >= 0 then p.trips
                    else
                      (* positive-step formula applied blindly: (hi-lo+1)/step
                         where hi is the last satisfied value *)
                      let hi = p.lo + ((p.trips - 1) * p.step) in
                      max 1 ((hi - p.lo + 1) / p.step)
              in
              (* build the unrolled chain in place of the loop *)
              let entry = Graph.istate_edge g l.entry_edge in
              let after = l.after in
              Graph.remove_istate_edge g l.entry_edge;
              Graph.remove_istate_edge g l.enter_edge;
              Graph.remove_istate_edge g l.back_edge;
              Graph.remove_istate_edge g l.exit_edge;
              let body_st = Graph.state g l.body in
              let prev = ref entry.src in
              for k = 0 to copies - 1 do
                let v = p.lo + (k * p.step) in
                let sid = Graph.add_state g (Printf.sprintf "%s_unroll_%d" (State.label body_st) k) in
                let st = Graph.state g sid in
                ignore (Xform.copy_state_into ~src:body_st ~dst:st);
                Xform.subst_symbol_in_state st l.var (Symbolic.Expr.int v);
                ignore (Graph.add_istate_edge g !prev sid);
                prev := sid
              done;
              ignore (Graph.add_istate_edge g !prev after);
              Graph.remove_state g l.guard;
              Graph.remove_state g l.body;
              (* the after state is rewired, so a cutout must include it for
                 the transformation to re-apply *)
              { Diff.nodes = []; states = [ guard; body; after ] }))
  | _ -> raise (Xform.Cannot_apply "loop_unrolling: bad site")

let make ?(max_trip = 64) variant =
  let name =
    match variant with
    | Correct -> "LoopUnrolling"
    | Negative_step_sign_error -> "LoopUnrolling(negative-step)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Negative_step_sign_error ->
        Some (Xform.Known_unsound "flips the sign of a negative loop step when unrolling")
  in
  { Xform.name; find = find max_trip; apply = apply variant; certify_hint }
