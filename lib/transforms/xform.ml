open Sdfg

type site = { state : int; nodes : int list; states : int list; descr : string }

let dataflow_site ~state ~nodes ~descr = { state; nodes; states = []; descr }
let controlflow_site ~states ~descr = { state = -1; nodes = []; states; descr }

let site_slug s =
  if s.state >= 0 then
    Printf.sprintf "s%d_n%s" s.state (String.concat "-" (List.map string_of_int s.nodes))
  else Printf.sprintf "states_%s" (String.concat "-" (List.map string_of_int s.states))

let pp_site fmt s =
  if s.state >= 0 then
    Format.fprintf fmt "%s @@ state %d nodes [%s]" s.descr s.state
      (String.concat "," (List.map string_of_int s.nodes))
  else
    Format.fprintf fmt "%s @@ states [%s]" s.descr
      (String.concat "," (List.map string_of_int s.states))

exception Cannot_apply of string

type certify_hint = Preserves_sets | Known_unsound of string

type t = {
  name : string;
  find : Graph.t -> site list;
  apply : Graph.t -> site -> Diff.change_set;
  certify_hint : certify_hint option;
}

let subst_symbol_in_state st sym expr =
  let map = Symbolic.Expr.Env.singleton sym expr in
  List.iter
    (fun (e : State.edge) ->
      let s m = Option.map (Memlet.subst map) m in
      if e.memlet <> None || e.dst_memlet <> None then begin
        State.remove_edge st e.e_id;
        ignore
          (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:(s e.memlet)
             ?dst_memlet:(s e.dst_memlet) e.src e.dst)
      end)
    (State.edges st);
  List.iter
    (fun (id, n) ->
      match n with
      | Node.Map_entry info ->
          let ranges =
            List.map
              (fun (r : Symbolic.Subset.range) ->
                {
                  Symbolic.Subset.lo = Symbolic.Expr.subst map r.lo;
                  hi = Symbolic.Expr.subst map r.hi;
                  step = Symbolic.Expr.subst map r.step;
                })
              info.ranges
          in
          State.replace_node st id (Node.Map_entry { info with ranges })
      | Node.Tasklet { label; code } -> (
          match Symbolic.Expr.is_constant expr with
          | Some c when List.mem sym (Tcode.refs code) ->
              State.replace_node st id
                (Node.Tasklet { label; code = Tcode.subst_const sym (float_of_int c) code })
          | _ -> ())
      | _ -> ())
    (State.nodes st)

let rename_container_in_state st ~from ~into =
  List.iter
    (fun (e : State.edge) ->
      let r m = Option.map (Memlet.rename_data ~from ~into) m in
      if e.memlet <> None || e.dst_memlet <> None then begin
        State.remove_edge st e.e_id;
        ignore
          (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:(r e.memlet)
             ?dst_memlet:(r e.dst_memlet) e.src e.dst)
      end)
    (State.edges st);
  List.iter
    (fun (id, n) ->
      match n with
      | Node.Access d when d = from -> State.replace_node st id (Node.Access into)
      | _ -> ())
    (State.nodes st)

let copy_state_into ~src ~dst =
  let mapping =
    List.map (fun (id, n) -> (id, State.add_node dst n)) (State.nodes src)
  in
  (* fix map-exit entry references to the new ids *)
  List.iter
    (fun (old_id, new_id) ->
      match State.node dst new_id with
      | Node.Map_exit { entry } ->
          ignore old_id;
          State.replace_node dst new_id (Node.Map_exit { entry = List.assoc entry mapping })
      | _ -> ())
    mapping;
  List.iter
    (fun (e : State.edge) ->
      ignore
        (State.add_edge dst ?src_conn:e.src_conn ?dst_conn:e.dst_conn ?memlet:e.memlet
           ?dst_memlet:e.dst_memlet (List.assoc e.src mapping) (List.assoc e.dst mapping)))
    (State.edges src);
  mapping

let fresh_container g base =
  if not (Graph.has_container g base) then base
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if Graph.has_container g cand then go (i + 1) else cand
    in
    go 0

let map_entries st =
  List.filter_map (fun (id, n) -> if Node.is_map_entry n then Some id else None) (State.nodes st)

type loop = {
  guard : int;
  body : int;
  after : int;
  var : string;
  init : Symbolic.Expr.t;
  cond : Symbolic.Cond.t;
  update : Symbolic.Expr.t;
  entry_edge : int;
  enter_edge : int;
  back_edge : int;
  exit_edge : int;
}

let find_loops g =
  List.filter_map
    (fun guard ->
      match Graph.out_istate_edges g guard with
      | [ a; b ] -> (
          (* one conditional edge to the body, its negation to the after state *)
          let pick_enter_exit =
            if a.cond = Symbolic.Cond.negate b.cond || b.cond = Symbolic.Cond.negate a.cond then
              if a.cond <> Symbolic.Cond.True && b.cond <> Symbolic.Cond.True then
                (* heuristic: the body is the state with a back edge to guard *)
                let has_back s =
                  List.exists
                    (fun (e : Graph.istate_edge) -> e.dst = guard && e.assigns <> [])
                    (Graph.out_istate_edges g s)
                in
                if has_back a.dst then Some (a, b)
                else if has_back b.dst then Some (b, a)
                else None
              else None
            else None
          in
          match pick_enter_exit with
          | None -> None
          | Some (enter, exit_e) -> (
              let body = enter.dst in
              let back =
                List.find_opt
                  (fun (e : Graph.istate_edge) -> e.dst = guard)
                  (Graph.out_istate_edges g body)
              in
              let entry =
                List.find_opt
                  (fun (e : Graph.istate_edge) -> e.src <> body && e.assigns <> [])
                  (Graph.in_istate_edges g guard)
              in
              match (back, entry) with
              | Some back, Some entry -> (
                  match (entry.assigns, back.assigns) with
                  | [ (v1, init) ], [ (v2, update) ] when v1 = v2 ->
                      Some
                        {
                          guard;
                          body;
                          after = exit_e.dst;
                          var = v1;
                          init;
                          cond = enter.cond;
                          update;
                          entry_edge = entry.ie_id;
                          enter_edge = enter.ie_id;
                          back_edge = back.ie_id;
                          exit_edge = exit_e.ie_id;
                        }
                  | _ -> None)
              | _ -> None))
      | _ -> None)
    (Graph.state_ids g)
