open Sdfg

type variant = Correct | Full_copy_back

(* Kernel candidates: top-level Parallel maps whose scope contains no nested
   GPU scopes and whose surrounding edges connect to access nodes. *)
let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun entry ->
          match State.node st entry with
          | Node.Map_entry ({ schedule = Node.Parallel; _ } as info) -> (
              match State.scope_of st entry with
              | Some _ -> None
              | None ->
                  let boundary_ok =
                    List.for_all
                      (fun (e : State.edge) ->
                        match State.node_opt st e.src with
                        | Some (Node.Access _) -> true
                        | _ -> false)
                      (State.in_edges st entry)
                    &&
                    match State.exit_of st entry with
                    | exit ->
                        List.for_all
                          (fun (e : State.edge) ->
                            match State.node_opt st e.dst with
                            | Some (Node.Access _) -> true
                            | _ -> false)
                          (State.out_edges st exit)
                    | exception Not_found -> false
                  in
                  if boundary_ok then
                    Some
                      (Xform.dataflow_site ~state:sid ~nodes:[ entry ]
                         ~descr:("extract GPU kernel " ^ info.label))
                  else None)
          | _ -> None)
        (Xform.map_entries st))
    (Graph.states g)

let apply variant g (site : Xform.site) =
  match site.nodes with
  | [ entry ] ->
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "gpu_extraction: state not in graph")
      in
      if not (State.has_node st entry) then
        raise (Xform.Cannot_apply "gpu_extraction: entry not in graph");
      let info =
        match State.node st entry with
        | Node.Map_entry i -> i
        | _ -> raise (Xform.Cannot_apply "gpu_extraction: not a map entry")
      in
      let exit =
        try State.exit_of st entry
        with Not_found -> raise (Xform.Cannot_apply "gpu_extraction: no exit")
      in
      (* containers read / written across the scope boundary *)
      let read_edges = State.in_edges st entry in
      let write_edges = State.out_edges st exit in
      let memlet_data (e : State.edge) = Option.map (fun (m : Memlet.t) -> m.data) e.memlet in
      let reads = List.filter_map memlet_data read_edges |> List.sort_uniq compare in
      let writes = List.filter_map memlet_data write_edges |> List.sort_uniq compare in
      let touched = List.sort_uniq compare (reads @ writes) in
      (* declare device twins *)
      let twin =
        List.map
          (fun c ->
            let dev = Xform.fresh_container g (c ^ "_gpu") in
            let desc = Graph.container g c in
            Graph.add_container g dev { desc with transient = true; storage = Graph.Gpu };
            (c, dev))
          touched
      in
      let dev_of c = List.assoc c twin in
      (* device-side access nodes *)
      let dev_in_nodes = List.map (fun c -> (c, State.add_node st (Node.Access (dev_of c)))) touched in
      let dev_out_nodes =
        List.map (fun c -> (c, State.add_node st (Node.Access (dev_of c)))) writes
      in
      (* host->device copies: all touched containers when Correct, read-only
         containers when buggy *)
      let copied_in = match variant with Correct -> touched | Full_copy_back -> reads in
      List.iter
        (fun (e : State.edge) ->
          match e.memlet with
          | Some m ->
              (* host access -> entry becomes host -> device copy -> entry *)
              let dev_node = List.assoc m.data dev_in_nodes in
              State.remove_edge st e.e_id;
              if List.mem m.data copied_in then begin
                let desc = Graph.container g m.data in
                let fullsub = Symbolic.Subset.full desc.shape in
                ignore
                  (State.add_edge st
                     ~memlet:(Memlet.make m.data fullsub)
                     ~dst_memlet:(Memlet.make (dev_of m.data) fullsub)
                     e.src dev_node)
              end;
              ignore
                (State.add_edge st ?dst_conn:e.dst_conn
                   ~memlet:(Memlet.rename_data ~from:m.data ~into:(dev_of m.data) m) dev_node entry)
          | None -> ())
        read_edges;
      (* write-only containers still feed the kernel scope for ordering; when
         the variant copies them in (Correct), stage the host contents first *)
      List.iter
        (fun c ->
          if not (List.mem c reads) then begin
            let dev_node = List.assoc c dev_in_nodes in
            if List.mem c copied_in then begin
              let host = State.add_node st (Node.Access c) in
              let desc = Graph.container g c in
              let fullsub = Symbolic.Subset.full desc.shape in
              ignore
                (State.add_edge st
                   ~memlet:(Memlet.make c fullsub)
                   ~dst_memlet:(Memlet.make (dev_of c) fullsub)
                   host dev_node)
            end;
            ignore (State.add_edge st dev_node entry)
          end)
        writes;
      (* device->host copies after the exit *)
      List.iter
        (fun (e : State.edge) ->
          match e.memlet with
          | Some m ->
              let dev_node = List.assoc m.data dev_out_nodes in
              State.remove_edge st e.e_id;
              ignore
                (State.add_edge st ?src_conn:e.src_conn
                   ~memlet:(Memlet.rename_data ~from:m.data ~into:(dev_of m.data) m) exit dev_node);
              let copy_sub =
                match variant with
                | Full_copy_back ->
                    let desc = Graph.container g m.data in
                    Symbolic.Subset.full desc.shape
                | Correct -> m.subset
              in
              ignore
                (State.add_edge st
                   ~memlet:(Memlet.make (dev_of m.data) copy_sub)
                   ~dst_memlet:(Memlet.make m.data copy_sub)
                   dev_node e.dst)
          | None -> ())
        write_edges;
      (* scope-local containers (accessed only inside the kernel) get device
         twins too, with no copies — they live and die on the device *)
      let scope = State.scope_nodes st entry in
      let local_names =
        List.filter_map
          (fun nid ->
            match State.node_opt st nid with
            | Some (Node.Access c) when not (List.mem_assoc c twin) -> Some c
            | _ -> None)
          scope
        |> List.sort_uniq compare
      in
      let local_twins =
        List.map
          (fun c ->
            let dev = Xform.fresh_container g (c ^ "_gpu") in
            let desc = Graph.container g c in
            Graph.add_container g dev { desc with transient = true; storage = Graph.Gpu };
            (c, dev))
          local_names
      in
      let twin = twin @ local_twins in
      let dev_of c = List.assoc c twin in
      let in_scope n = n = entry || n = exit || List.mem n scope in
      List.iter
        (fun (e : State.edge) ->
          if in_scope e.src && in_scope e.dst then
            match e.memlet with
            | Some m when List.mem_assoc m.data twin ->
                State.remove_edge st e.e_id;
                ignore
                  (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn
                     ~memlet:(Memlet.rename_data ~from:m.data ~into:(dev_of m.data) m)
                     ?dst_memlet:e.dst_memlet e.src e.dst)
            | _ -> ())
        (State.edges st);
      (* in-scope access nodes to touched containers become device accesses *)
      List.iter
        (fun nid ->
          match State.node_opt st nid with
          | Some (Node.Access c) when List.mem_assoc c twin ->
              State.replace_node st nid (Node.Access (dev_of c))
          | _ -> ())
        scope;
      (* scope-local containers may be read later in the program: copy them
         back to the host after the kernel (ordered via a dependency edge) *)
      List.iter
        (fun (c, dev) ->
          let dev_acc = State.add_node st (Node.Access dev) in
          let host_acc = State.add_node st (Node.Access c) in
          ignore (State.add_edge st exit dev_acc);
          let desc = Graph.container g c in
          let fullsub = Symbolic.Subset.full desc.shape in
          ignore
            (State.add_edge st ~memlet:(Memlet.make dev fullsub)
               ~dst_memlet:(Memlet.make c fullsub) dev_acc host_acc))
        local_twins;
      State.replace_node st entry (Node.Map_entry { info with schedule = Node.Gpu_device });
      { Diff.nodes = [ (site.state, entry); (site.state, exit) ]; states = [] }
  | _ -> raise (Xform.Cannot_apply "gpu_extraction: bad site")

let make variant =
  let name =
    match variant with
    | Correct -> "GpuKernelExtraction"
    | Full_copy_back -> "GpuKernelExtraction(full-copy-back)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Full_copy_back ->
        Some (Xform.Known_unsound "copies the whole device buffer back, clobbering untouched host data")
  in
  { Xform.name; find; apply = apply variant; certify_hint }
