open Sdfg

type variant = Correct | Missing_init

(* Pattern, all in one state:
     map_exit(entry) --(full tmp)--> access(tmp) --in--> Reduce --out--> access(out)
   with tmp transient, written exactly once, where the in-scope tasklet writes
   tmp[params...] (one index expression per dimension). *)
let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun (nid, n) ->
          match n with
          | Node.Library { kind = Node.Reduce (_, _); _ } -> (
              let ins = State.in_edges st nid and outs = State.out_edges st nid in
              match (ins, outs) with
              | [ ein ], [ eout ] -> (
                  match (State.node_opt st ein.src, State.node_opt st eout.dst, ein.memlet) with
                  | Some (Node.Access tmp), Some (Node.Access _), Some m
                    when m.data = tmp -> (
                      match Graph.container_opt g tmp with
                      | Some desc when desc.transient -> (
                          (* producer: a map exit writing all of tmp *)
                          match State.in_edges st ein.src with
                          | [ eprod ] -> (
                              match State.node_opt st eprod.src with
                              | Some (Node.Map_exit { entry }) ->
                                  Some
                                    (Xform.dataflow_site ~state:sid
                                       ~nodes:[ entry; ein.src; nid; eout.dst ]
                                       ~descr:("fuse map+reduce over " ^ tmp))
                              | _ -> None)
                          | _ -> None)
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
        (State.nodes st))
    (Graph.states g)

(* Map a tasklet's tmp-subset (one range per tmp dim) to the reduced output
   subset by dropping the reduced axes. *)
let reduce_subset axes subset =
  List.filteri (fun i _ -> not (List.mem i axes)) subset

let apply variant g (site : Xform.site) =
  match site.nodes with
  | [ entry; tmp_acc; red; out_acc ] -> (
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "map_reduce_fusion: state not in graph")
      in
      List.iter
        (fun n ->
          if not (State.has_node st n) then
            raise (Xform.Cannot_apply "map_reduce_fusion: nodes not in graph"))
        site.nodes;
      let op, axes =
        match State.node st red with
        | Node.Library { kind = Node.Reduce (op, axes); _ } -> (op, axes)
        | _ -> raise (Xform.Cannot_apply "map_reduce_fusion: not a reduce")
      in
      let out_memlet =
        match List.find_opt (fun (e : State.edge) -> e.dst = out_acc) (State.out_edges st red) with
        | Some { memlet = Some m; _ } -> m
        | _ -> raise (Xform.Cannot_apply "map_reduce_fusion: reduce output edge gone")
      in
      let tmp =
        match State.node st tmp_acc with
        | Node.Access d -> d
        | _ -> raise (Xform.Cannot_apply "map_reduce_fusion: bad tmp access")
      in
      let exit = try State.exit_of st entry with Not_found -> raise (Xform.Cannot_apply "no exit") in
      (* rewrite every in-scope write to tmp into a WCR write to out *)
      let scope = State.scope_nodes st entry in
      List.iter
        (fun nid ->
          List.iter
            (fun (e : State.edge) ->
              match e.memlet with
              | Some m when m.data = tmp ->
                  let m' =
                    Memlet.make ~wcr:op out_memlet.data (reduce_subset axes m.subset)
                  in
                  State.remove_edge st e.e_id;
                  ignore
                    (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn ~memlet:m' e.src
                       e.dst)
              | _ -> ())
            (State.out_edges st nid))
        (scope @ [ exit ]);
      (* the exit now feeds the out access directly *)
      List.iter
        (fun (e : State.edge) ->
          match e.memlet with
          | Some m when m.data = tmp || m.data = out_memlet.data ->
              State.remove_edge st e.e_id;
              ignore
                (State.add_edge st ?src_conn:e.src_conn
                   ~memlet:(Memlet.make ~wcr:op out_memlet.data out_memlet.subset) exit out_acc)
          | _ -> ())
        (State.out_edges st exit);
      State.remove_node st red;
      State.remove_node st tmp_acc;
      (* Correct variant: initialize out to the reduction identity before the
         fused map runs (an init map writing the identity, ordered before the
         scope via a dependency edge). *)
      if variant = Correct then begin
        let init_acc = State.add_node st (Node.Access out_memlet.data) in
        let out_desc = Graph.container g out_memlet.data in
        let params = List.mapi (fun i _ -> Printf.sprintf "__init_i%d" i) out_desc.shape in
        let identity = Memlet.wcr_identity op in
        let id_str =
          if identity = 0. then "0.0"
          else if identity = infinity then "1e308"
          else if identity = neg_infinity then "-1e308"
          else "1.0"
        in
        if params = [] then begin
          let t =
            State.add_node st (Node.tasklet "init" (Printf.sprintf "o = %s" id_str))
          in
          ignore
            (State.add_edge st ~src_conn:"o" ~memlet:(Memlet.make out_memlet.data []) t init_acc)
        end
        else begin
          let ranges =
            List.map
              (fun d -> Symbolic.Subset.dim Symbolic.Expr.zero (Symbolic.Expr.sub d Symbolic.Expr.one))
              out_desc.shape
          in
          let ientry =
            State.add_node st
              (Node.Map_entry { label = "init_" ^ out_memlet.data; params; ranges; schedule = Node.Sequential })
          in
          let iexit = State.add_node st (Node.Map_exit { entry = ientry }) in
          let t = State.add_node st (Node.tasklet "init" (Printf.sprintf "o = %s" id_str)) in
          ignore (State.add_edge st ientry t);
          let inner =
            Memlet.make out_memlet.data
              (List.map (fun p -> Symbolic.Subset.index (Symbolic.Expr.sym p)) params)
          in
          ignore (State.add_edge st ~src_conn:"o" ~dst_conn:("IN_" ^ out_memlet.data) ~memlet:inner t iexit);
          ignore
            (State.add_edge st ~src_conn:("OUT_" ^ out_memlet.data)
               ~memlet:(Memlet.make out_memlet.data (Symbolic.Subset.full out_desc.shape)) iexit init_acc)
        end;
        (* order: init before the fused scope *)
        ignore (State.add_edge st init_acc entry)
      end;
      {
        Diff.nodes = List.map (fun n -> (site.state, n)) (entry :: exit :: site.nodes);
        states = [];
      })
  | _ -> raise (Xform.Cannot_apply "map_reduce_fusion: bad site")

let make variant =
  let name =
    match variant with Correct -> "MapReduceFusion" | Missing_init -> "MapReduceFusion(missing-init)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Missing_init ->
        Some (Xform.Known_unsound "skips initializing the accumulator before fused reduction")
  in
  { Xform.name; find; apply = apply variant; certify_hint }
