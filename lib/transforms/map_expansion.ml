open Sdfg

type variant = Correct | Bad_exit_wiring

let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun entry ->
          match State.node st entry with
          | Node.Map_entry info when List.length info.params >= 2 ->
              Some
                (Xform.dataflow_site ~state:sid ~nodes:[ entry ]
                   ~descr:("expand map " ^ info.label))
          | _ -> None)
        (Xform.map_entries st))
    (Graph.states g)

let apply variant g (site : Xform.site) =
  match site.nodes with
  | [ entry ] ->
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "map_expansion: state not in graph")
      in
      if not (State.has_node st entry) then
        raise (Xform.Cannot_apply "map_expansion: entry not in graph");
      let info =
        match State.node st entry with
        | Node.Map_entry i -> i
        | _ -> raise (Xform.Cannot_apply "map_expansion: not a map entry")
      in
      if List.length info.params < 2 then
        raise (Xform.Cannot_apply "map_expansion: not multi-dimensional");
      let exit =
        try State.exit_of st entry
        with Not_found -> raise (Xform.Cannot_apply "map_expansion: no exit")
      in
      let outer =
        {
          info with
          params = [ List.hd info.params ];
          ranges = [ List.hd info.ranges ];
        }
      in
      let inner =
        {
          Node.label = info.label ^ "_rest";
          params = List.tl info.params;
          ranges = List.tl info.ranges;
          schedule = info.schedule;
        }
      in
      ignore
        (Tiling_util.split_map st entry ~outer ~inner
           ~miswire_exit:(variant = Bad_exit_wiring));
      { Diff.nodes = [ (site.state, entry); (site.state, exit) ]; states = [] }
  | _ -> raise (Xform.Cannot_apply "map_expansion: bad site")

let make variant =
  let name =
    match variant with Correct -> "MapExpansion" | Bad_exit_wiring -> "MapExpansion(bad-exit)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Bad_exit_wiring ->
        Some (Xform.Known_unsound "miswires the inner map exit, dropping part of the output")
  in
  { Xform.name; find; apply = apply variant; certify_hint }
