open Sdfg

type variant = Correct | Ignore_conditions

(* Uses of a symbol inside one state's dataflow: memlet subsets and map
   ranges (tasklet code reads of symbols count too). *)
let used_in_state st sym =
  List.exists
    (fun (e : State.edge) ->
      let in_memlet = function
        | Some (m : Memlet.t) -> List.mem sym (Symbolic.Subset.free_syms m.subset)
        | None -> false
      in
      in_memlet e.memlet || in_memlet e.dst_memlet)
    (State.edges st)
  || List.exists
       (fun (_, n) ->
         match n with
         | Node.Map_entry { ranges; _ } ->
             List.exists
               (fun (r : Symbolic.Subset.range) ->
                 List.mem sym
                   (Symbolic.Expr.free_syms r.lo @ Symbolic.Expr.free_syms r.hi
                  @ Symbolic.Expr.free_syms r.step))
               ranges
         | Node.Tasklet { code; _ } -> List.mem sym (Tcode.refs code)
         | _ -> false)
       (State.nodes st)

(* Uses of a symbol anywhere at or after a state (conditions, assignments'
   right-hand sides, and state dataflow). *)
let used_downstream g start sym =
  let region = start :: Graph.reachable_states g start in
  List.exists (fun sid -> used_in_state (Graph.state g sid) sym) region
  || List.exists
       (fun (e : Graph.istate_edge) ->
         (List.mem e.src region || List.mem e.dst region)
         && (List.mem sym (Symbolic.Cond.free_syms e.cond)
            || List.exists (fun (_, rhs) -> List.mem sym (Symbolic.Expr.free_syms rhs)) e.assigns))
       (Graph.istate_edges g)

let find variant g =
  List.filter_map
    (fun (e : Graph.istate_edge) ->
      match e.assigns with
      | [ (sym, _) ] ->
          let dead =
            match variant with
            | Ignore_conditions -> not (used_in_state (Graph.state g e.dst) sym)
            | Correct -> not (used_downstream g e.dst sym)
          in
          if dead then
            Some
              (Xform.controlflow_site ~states:[ e.src; e.dst ]
                 ~descr:(Printf.sprintf "eliminate assignment %s on edge %d" sym e.ie_id))
          else None
      | _ -> None)
    (Graph.istate_edges g)

let apply g (site : Xform.site) =
  match site.states with
  | [ src; dst ] -> (
      let edge =
        List.find_opt
          (fun (e : Graph.istate_edge) -> e.src = src && e.dst = dst && e.assigns <> [])
          (Graph.istate_edges g)
      in
      match edge with
      | None -> raise (Xform.Cannot_apply "state_assign_elimination: edge not found")
      | Some e ->
          Graph.remove_istate_edge g e.ie_id;
          ignore (Graph.add_istate_edge g ~cond:e.cond ~assigns:[] e.src e.dst);
          { Diff.nodes = []; states = [ src; dst ] })
  | _ -> raise (Xform.Cannot_apply "state_assign_elimination: bad site")

let make variant =
  let name =
    match variant with
    | Correct -> "StateAssignElimination"
    | Ignore_conditions -> "StateAssignElimination(ignore-conditions)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Ignore_conditions ->
        Some (Xform.Known_unsound "propagates an assignment past conditional edges that may skip it")
  in
  { Xform.name; find = find variant; apply; certify_hint }
