open Sdfg

type variant = Correct | Clobber_redefinition

let assigned_downstream g start sym =
  let region = start :: Graph.reachable_states g start in
  List.exists
    (fun (e : Graph.istate_edge) ->
      List.mem e.src region && List.exists (fun (s, _) -> s = sym) e.assigns)
    (Graph.istate_edges g)

let find variant g =
  List.filter_map
    (fun (e : Graph.istate_edge) ->
      match e.assigns with
      | [ (s2, Symbolic.Expr.Sym s1) ] when s1 <> s2 ->
          let ok =
            match variant with
            | Clobber_redefinition -> true
            | Correct ->
                (not (assigned_downstream g e.dst s1)) && not (assigned_downstream g e.dst s2)
          in
          if ok then
            Some
              (Xform.controlflow_site ~states:[ e.src; e.dst ]
                 ~descr:(Printf.sprintf "promote alias %s := %s" s2 s1))
          else None
      | _ -> None)
    (Graph.istate_edges g)

let subst_state st ~from ~into =
  Xform.subst_symbol_in_state st from (Symbolic.Expr.sym into)

let apply g (site : Xform.site) =
  match site.states with
  | [ src; dst ] -> (
      let edge =
        List.find_opt
          (fun (e : Graph.istate_edge) ->
            e.src = src && e.dst = dst
            && match e.assigns with [ (_, Symbolic.Expr.Sym _) ] -> true | _ -> false)
          (Graph.istate_edges g)
      in
      match edge with
      | None -> raise (Xform.Cannot_apply "symbol_alias_promotion: edge not found")
      | Some e ->
          let s2, s1 =
            match e.assigns with
            | [ (s2, Symbolic.Expr.Sym s1) ] -> (s2, s1)
            | _ -> assert false
          in
          (* drop the aliasing assignment *)
          Graph.remove_istate_edge g e.ie_id;
          ignore (Graph.add_istate_edge g ~cond:e.cond ~assigns:[] e.src e.dst);
          (* substitute downstream: states, conditions and assignment RHSs *)
          let region = e.dst :: Graph.reachable_states g e.dst in
          List.iter
            (fun sid ->
              match Graph.state_opt g sid with
              | Some st -> subst_state st ~from:s2 ~into:s1
              | None -> ())
            region;
          List.iter
            (fun (ie : Graph.istate_edge) ->
              if List.mem ie.src region then begin
                let cond = Symbolic.Cond.rename_sym ~from:s2 ~into:s1 ie.cond in
                let assigns =
                  List.map
                    (fun (s, rhs) -> (s, Symbolic.Expr.rename_sym ~from:s2 ~into:s1 rhs))
                    ie.assigns
                in
                if cond <> ie.cond || assigns <> ie.assigns then begin
                  Graph.remove_istate_edge g ie.ie_id;
                  ignore (Graph.add_istate_edge g ~cond ~assigns ie.src ie.dst)
                end
              end)
            (Graph.istate_edges g);
          { Diff.nodes = []; states = List.sort_uniq compare (src :: dst :: region) })
  | _ -> raise (Xform.Cannot_apply "symbol_alias_promotion: bad site")

let make variant =
  let name =
    match variant with
    | Correct -> "SymbolAliasPromotion"
    | Clobber_redefinition -> "SymbolAliasPromotion(clobber)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Clobber_redefinition ->
        Some (Xform.Known_unsound "promotes an alias past a downstream redefinition of the symbol")
  in
  { Xform.name; find = find variant; apply; certify_hint }
