open Sdfg

type variant = Correct | Assume_divisible

(* Vectorize maps whose innermost range has unit step; skip already-vectorized
   scopes (label marker). *)
let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun entry ->
          match State.node st entry with
          | Node.Map_entry info
            when info.ranges <> []
                 && (not (String.length info.label > 4 && String.sub info.label 0 4 = "vec_"))
                 && Symbolic.Expr.equal
                      (List.nth info.ranges (List.length info.ranges - 1)).step Symbolic.Expr.one
            ->
              Some (Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:("vectorize " ^ info.label))
          | _ -> None)
        (Xform.map_entries st))
    (Graph.states g)

let apply width variant g (site : Xform.site) =
  match site.nodes with
  | [ entry ] ->
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "vectorization: state not in graph")
      in
      if not (State.has_node st entry) then
        raise (Xform.Cannot_apply "vectorization: entry not in graph");
      let info =
        match State.node st entry with
        | Node.Map_entry i -> i
        | _ -> raise (Xform.Cannot_apply "vectorization: not a map entry")
      in
      let exit =
        try State.exit_of st entry
        with Not_found -> raise (Xform.Cannot_apply "vectorization: no exit in graph")
      in
      let mode =
        match variant with
        | Correct -> Tiling_util.Exact
        | Assume_divisible -> Tiling_util.No_remainder
      in
      let last = List.length info.params - 1 in
      ignore (Tiling_util.tile_map g st entry ~tile_size:width ~mode ~dims:(Some [ last ]));
      (* mark as vectorized so find does not match it again *)
      (match State.node st entry with
      | Node.Map_entry i -> State.replace_node st entry (Node.Map_entry { i with label = "vec_" ^ i.label })
      | _ -> ());
      { Diff.nodes = [ (site.state, entry); (site.state, exit) ]; states = [] }
  | _ -> raise (Xform.Cannot_apply "vectorization: bad site")

let make ?(width = 4) variant =
  let name = match variant with Correct -> "Vectorization" | Assume_divisible -> "Vectorization(assume-divisible)" in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Assume_divisible ->
        Some (Xform.Known_unsound "assumes the range length divides the vector width")
  in
  { Xform.name; find; apply = apply width variant; certify_hint }
