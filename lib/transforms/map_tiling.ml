open Sdfg

type variant = Correct | Off_by_one | No_remainder

let mode_of = function
  | Correct -> Tiling_util.Exact
  | Off_by_one -> Tiling_util.Off_by_one
  | No_remainder -> Tiling_util.No_remainder

(* Tile only maps whose ranges all have step 1 (do not re-tile tile loops). *)
let tileable (info : Node.map_info) =
  info.ranges <> []
  && List.for_all (fun (r : Symbolic.Subset.range) -> Symbolic.Expr.equal r.step Symbolic.Expr.one) info.ranges

let find g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun entry ->
          match State.node st entry with
          | Node.Map_entry info when tileable info ->
              Some (Xform.dataflow_site ~state:sid ~nodes:[ entry ] ~descr:("tile " ^ info.label))
          | _ -> None)
        (Xform.map_entries st))
    (Graph.states g)

let apply tile_size variant g (site : Xform.site) =
  match site.nodes with
  | [ entry ] ->
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "map_tiling: state not in graph")
      in
      if not (State.has_node st entry) then raise (Xform.Cannot_apply "map_tiling: entry not in graph");
      let exit =
        try State.exit_of st entry
        with Not_found -> raise (Xform.Cannot_apply "map_tiling: no exit in graph")
      in
      ignore (Tiling_util.tile_map g st entry ~tile_size ~mode:(mode_of variant) ~dims:None);
      { Diff.nodes = [ (site.state, entry); (site.state, exit) ]; states = [] }
  | _ -> raise (Xform.Cannot_apply "map_tiling: bad site")

let make ?(tile_size = 32) variant =
  let name =
    match variant with
    | Correct -> "MapTiling"
    | Off_by_one -> "MapTiling(off-by-one)"
    | No_remainder -> "MapTiling(no-remainder)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Off_by_one -> Some (Xform.Known_unsound "duplicates the boundary iteration of every tile")
    | No_remainder ->
        Some (Xform.Known_unsound "overruns the range when the tile size does not divide the span")
  in
  { Xform.name; find; apply = apply tile_size variant; certify_hint }
