open Sdfg

type variant = Correct | Wrong_scheduling

(* Pattern: map_exit -> access(tmp) -> map_entry with tmp transient and
   one-dimensional. *)
let find tile variant g =
  List.concat_map
    (fun (sid, st) ->
      List.filter_map
        (fun (nid, n) ->
          match n with
          | Node.Access tmp -> (
              match Graph.container_opt g tmp with
              | Some desc when desc.transient && List.length desc.shape = 1 -> (
                  let produced =
                    List.exists
                      (fun (e : State.edge) ->
                        match State.node_opt st e.src with
                        | Some (Node.Map_exit _) -> true
                        | _ -> false)
                      (State.in_edges st nid)
                  and consumed =
                    List.exists
                      (fun (e : State.edge) ->
                        match State.node_opt st e.dst with
                        | Some (Node.Map_entry _) -> true
                        | _ -> false)
                      (State.out_edges st nid)
                  in
                  let size_fits =
                    match Symbolic.Expr.is_constant (List.hd desc.shape) with
                    | Some n -> n <= tile
                    | None -> false
                  in
                  if produced && consumed && (variant = Wrong_scheduling || size_fits) then
                    Some (Xform.dataflow_site ~state:sid ~nodes:[ nid ] ~descr:("tile buffer " ^ tmp))
                  else None)
              | _ -> None)
          | _ -> None)
        (State.nodes st))
    (Graph.states g)

let apply tile g (site : Xform.site) =
  match site.nodes with
  | [ acc ] -> (
      let st =
        match Graph.state_opt g site.state with
        | Some st -> st
        | None -> raise (Xform.Cannot_apply "buffer_tiling: state not in graph")
      in
      if not (State.has_node st acc) then raise (Xform.Cannot_apply "buffer_tiling: node not in graph");
      match State.node st acc with
      | Node.Access tmp ->
          let desc = Graph.container g tmp in
          Graph.add_container g tmp { desc with shape = [ Symbolic.Expr.int tile ] };
          (* rewrite every memlet on tmp in this state: index e -> e mod tile *)
          let rewrite (m : Memlet.t) =
            if m.data <> tmp then m
            else
              {
                m with
                subset =
                  List.map
                    (fun (r : Symbolic.Subset.range) ->
                      if Symbolic.Expr.equal r.lo r.hi then
                        Symbolic.Subset.index
                          (Symbolic.Expr.modulo r.lo (Symbolic.Expr.int tile))
                      else
                        Symbolic.Subset.dim Symbolic.Expr.zero
                          (Symbolic.Expr.int (tile - 1)))
                    m.subset;
              }
          in
          let touched = ref [] in
          List.iter
            (fun (e : State.edge) ->
              let has_tmp = function Some (m : Memlet.t) -> m.data = tmp | None -> false in
              if has_tmp e.memlet || has_tmp e.dst_memlet then begin
                touched := e.src :: e.dst :: !touched;
                State.remove_edge st e.e_id;
                ignore
                  (State.add_edge st ?src_conn:e.src_conn ?dst_conn:e.dst_conn
                     ?memlet:(Option.map rewrite e.memlet)
                     ?dst_memlet:(Option.map rewrite e.dst_memlet) e.src e.dst)
              end)
            (State.edges st);
          {
            Diff.nodes = List.sort_uniq compare (List.map (fun n -> (site.state, n)) (acc :: !touched));
            states = [];
          }
      | _ -> raise (Xform.Cannot_apply "buffer_tiling: not an access node"))
  | _ -> raise (Xform.Cannot_apply "buffer_tiling: bad site")

let make ?(tile = 8) variant =
  let name =
    match variant with Correct -> "BufferTiling" | Wrong_scheduling -> "BufferTiling(wrong-schedule)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Wrong_scheduling ->
        Some (Xform.Known_unsound "schedules the tiled consumer before its producer tile completes")
  in
  { Xform.name; find = find tile variant; apply = apply tile; certify_hint }
