open Sdfg

type variant = Correct | Assume_nonempty

(* Is the guard condition provably true at the first iteration? Only constant
   conditions qualify (e.g. [for i = 0 to 9]): symbolic bounds could be
   empty for some parameter values. *)
let provably_nonempty (l : Xform.loop) =
  match Symbolic.Expr.is_constant l.init with
  | None -> false
  | Some lo -> (
      let env = Symbolic.Expr.Env.singleton l.var lo in
      match Symbolic.Cond.eval env l.cond with
      | holds -> holds
      | exception Symbolic.Expr.Unbound_symbol _ -> false
      | exception Symbolic.Expr.Division_by_zero -> false)

let find variant g =
  List.filter_map
    (fun (l : Xform.loop) ->
      let const_init = Symbolic.Expr.is_constant l.init <> None in
      let const_step = Symbolic.Expr.is_constant l.update = None in
      ignore const_step;
      let ok =
        const_init
        && match variant with Correct -> provably_nonempty l | Assume_nonempty -> true
      in
      if ok then
        Some
          (Xform.controlflow_site ~states:[ l.guard; l.body ]
             ~descr:(Printf.sprintf "peel first iteration of %s" l.var))
      else None)
    (Xform.find_loops g)

let apply g (site : Xform.site) =
  match site.states with
  | [ guard; body ] -> (
      let loop =
        List.find_opt
          (fun (l : Xform.loop) -> l.guard = guard && l.body = body)
          (Xform.find_loops g)
      in
      match loop with
      | None -> raise (Xform.Cannot_apply "loop_peeling: loop pattern not found")
      | Some l -> (
          match Symbolic.Expr.is_constant l.init with
          | None -> raise (Xform.Cannot_apply "loop_peeling: non-constant init")
          | Some lo ->
              let entry = Graph.istate_edge g l.entry_edge in
              (* the peeled copy of the body, with the variable fixed to lo *)
              let peel =
                Graph.add_state g (State.label (Graph.state g l.body) ^ "_peel")
              in
              let pst = Graph.state g peel in
              ignore (Xform.copy_state_into ~src:(Graph.state g l.body) ~dst:pst);
              Xform.subst_symbol_in_state pst l.var (Symbolic.Expr.int lo);
              (* entry -> peel -> guard, with the loop starting one step in *)
              Graph.remove_istate_edge g l.entry_edge;
              ignore (Graph.add_istate_edge g ~cond:entry.cond entry.src peel);
              let update_at_lo =
                Symbolic.Expr.simplify
                  (Symbolic.Expr.subst
                     (Symbolic.Expr.Env.singleton l.var (Symbolic.Expr.int lo))
                     l.update)
              in
              ignore (Graph.add_istate_edge g ~assigns:[ (l.var, update_at_lo) ] peel guard);
              (* rerouting the entry edge also changes its source state's
                 outgoing control flow — it is part of the change set *)
              {
                Diff.nodes = [];
                states = List.sort_uniq compare [ entry.src; guard; body; l.after ];
              }))
  | _ -> raise (Xform.Cannot_apply "loop_peeling: bad site")

let make variant =
  let name =
    match variant with Correct -> "LoopPeeling" | Assume_nonempty -> "LoopPeeling(assume-nonempty)"
  in
  let certify_hint =
    match variant with
    | Correct -> Some Xform.Preserves_sets
    | Assume_nonempty ->
        Some (Xform.Known_unsound "peels the first iteration of a possibly empty loop")
  in
  { Xform.name; find = find variant; apply; certify_hint }
