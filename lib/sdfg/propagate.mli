(** Memlet propagation through map scopes and across states.

    An edge crossing a map entry/exit covers the union over all parameter
    values of the inner accesses. We over-approximate that union with a
    bounding box, substituting each parameter by its range endpoints — the
    conservative direction required by side-effect analysis (Sec. 3.1).

    On top of single-scope widening this module builds the fully propagated
    program summary the translation-validation certifier compares: per
    container, the read set and write set widened through every enclosing
    scope and unioned across all states, plus a coarse read/write ordering
    signature. *)

(** [through_map ~params ~ranges subset] widens [subset] over all values each
    parameter takes in its range. Two shapes widen exactly: a bare-parameter
    dimension maps to the parameter's grid itself, and an aligned tile body
    [p : min(p+k, H) : s] over tiles [p ∈ lo : H : ps] (with [ps mod s = 0]
    and [k >= ps-1]) has image exactly [lo : H : s] — keeping the stride
    visible to the dependence engine. Any other parameter occurring in a
    stride widens that dimension to stride 1 (a superset of every
    instantiation).
    @raise Invalid_argument when [params] and [ranges] differ in length. *)
val through_map :
  params:string list ->
  ranges:Symbolic.Subset.range list ->
  Symbolic.Subset.t ->
  Symbolic.Subset.t

(** Widen one range over one parameter's span; exposed for tests. *)
val widen_range :
  param:string -> prange:Symbolic.Subset.range -> Symbolic.Subset.range -> Symbolic.Subset.range

(** Widen a memlet. *)
val memlet_through_map :
  params:string list -> ranges:Symbolic.Subset.range list -> Memlet.t -> Memlet.t

(** {1 Propagated program summaries} *)

type kind = Read | Write of Memlet.wcr option

(** One fully propagated leaf access: its subset is widened through every
    enclosing map scope, and [phase] is the topological position of its
    outermost scope group within the state — accesses inside one parallel
    scope share a phase; sequenced groups get distinct ones. *)
type access = { container : string; subset : Symbolic.Subset.t; kind : kind; phase : int }

(** All propagated accesses of one state (tasklet/library connectors and
    copy-edge endpoints), widened to state top level. *)
val state_accesses : Graph.t -> State.t -> access list

(** Whole-program summary: per-container read/write unions (WCR writes count
    as reads too — they accumulate into their target), the containers
    receiving WCR writes, and the per-container R/W/RW event order over all
    phases of all states (BFS order), with consecutive duplicate events
    collapsed. Interstate-edge conditions and assignments reading scalar
    containers contribute read events sequenced after their source state. *)
type summary = {
  reads : (string * Symbolic.Subset.t) list;
  writes : (string * Symbolic.Subset.t) list;
  wcr_writes : string list;
  order : (string * [ `R | `W | `RW ]) list;
}

val summarize : ?bounds:(string -> int option * int option) -> Graph.t -> summary

(** Free symbols of all read/write subsets of a summary, sorted. *)
val free_syms_of_summary : summary -> string list
